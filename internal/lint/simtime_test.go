package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSimTime(t *testing.T) {
	linttest.Run(t, lint.SimTime,
		linttest.Package{Path: "repro/internal/sim", Dir: "testdata/simtime/sim"})
}

func TestSimTimeAllowsNonSimLayers(t *testing.T) {
	linttest.Run(t, lint.SimTime,
		linttest.Package{Path: "repro/internal/bench", Dir: "testdata/simtime/bench"})
}
