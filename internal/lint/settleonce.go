package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// SettleOnce checks the exactly-once billing invariant on molecule's
// dispatch and recovery code statically: every path through a function that
// settles invocations must call settleResult exactly once when it is
// responsible for settling — no successful return without a settle
// (under-billing), no path that settles twice (double-billing), and no
// settle when the caller passed settle=false (the recovery layer's losing
// attempts must never bill). The chaos soak asserts the same property
// dynamically; this pins it at compile time.
//
// The analysis runs a forward dataflow over the CFG tracking the set of
// possible settle counts {0, 1, 2+}. Functions with a `settle bool`
// parameter are checked twice — once assuming settle=true (branches on the
// parameter pruned accordingly; a call forwarding the parameter counts as
// one settle) and once assuming settle=false (forwarded calls settle
// nothing, and reaching a direct settleResult call is a violation).
// Returns whose final result is the literal nil are success returns and
// must carry count exactly 1 (in the settle=true pass); a return that
// forwards the settle parameter delegates the obligation to the callee and
// is neutral. Function literals are checked for double-settles only.
//
// //lint:settled <reason> on the reported line waives a finding the
// analysis cannot see through (mandatory reason, stale markers flagged).
var SettleOnce = &analysis.Analyzer{
	Name:     "settleonce",
	Doc:      "every path through molecule dispatch/recovery must settle exactly once (no zero, no double billing)",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runSettleOnce,
}

// settleFn identifies the settlement call.
var settleFn = apiRef{Recv: "repro/internal/molecule.Runtime", Method: "settleResult"}

// settleParamName is the conventional guard parameter.
const settleParamName = "settle"

// soCounts is a set of possible settle counts: bit 0 = zero settles so
// far, bit 1 = exactly one, bit 2 = two or more.
type soCounts uint8

const (
	soZero soCounts = 1 << iota
	soOne
	soMany
)

// bump advances every count in the set by one settle.
func (c soCounts) bump() soCounts {
	var out soCounts
	if c&soZero != 0 {
		out |= soOne
	}
	if c&(soOne|soMany) != 0 {
		out |= soMany
	}
	return out
}

// soEvent is one settle-relevant point in a block.
type soKind uint8

const (
	soSettle  soKind = iota // direct settleResult call
	soForward               // call forwarding the settle parameter (non-tail)
	soReturn
)

type soEvent struct {
	kind     soKind
	pos      token.Pos
	success  bool // soReturn: last result is the literal nil
	forwards bool // soReturn: results contain a settle-forwarding call
}

// soFunc is one function under analysis.
type soFunc struct {
	pass      *analysis.Pass
	graph     *cfg.CFG
	settleVar *types.Var // the settle bool parameter, if any
	hasReturn bool       // signature ends in error (enables return classification)
	litOnly   bool       // function literal: double-settle rule only
}

// isSettleCall reports whether call is a direct settleResult call.
func isSettleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	recv, method, ok := methodRef(pass, call)
	return ok && recv == settleFn.Recv && method == settleFn.Method
}

// forwardsSettle reports whether the call passes the settle parameter
// through as an argument.
func (f *soFunc) forwardsSettle(call *ast.CallExpr) bool {
	if f.settleVar == nil {
		return false
	}
	for _, a := range call.Args {
		if identVar(f.pass, ast.Unparen(a)) == f.settleVar {
			return true
		}
	}
	return false
}

// collect extracts the settle events of one block node in order. Nested
// function literals are analyzed separately and skipped here.
func (f *soFunc) collect(n ast.Node, out *[]soEvent) {
	if ret, ok := n.(*ast.ReturnStmt); ok {
		ev := soEvent{kind: soReturn, pos: ret.Pos()}
		if len(ret.Results) > 0 {
			if id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident); ok && id.Name == "nil" {
				ev.success = true
			}
		}
		for _, r := range ret.Results {
			ast.Inspect(r, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && (f.forwardsSettle(call) || isSettleCall(f.pass, call)) {
					ev.forwards = true
				}
				return !ev.forwards
			})
		}
		*out = append(*out, ev)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			f.collect(m, out)
			return false
		case *ast.CallExpr:
			if isSettleCall(f.pass, m) {
				*out = append(*out, soEvent{kind: soSettle, pos: m.Pos()})
			} else if f.forwardsSettle(m) {
				*out = append(*out, soEvent{kind: soForward, pos: m.Pos()})
			}
		}
		return true
	})
}

// settleFinding is one diagnostic with a stable position for dedup and
// waiver lookup.
type settleFinding struct {
	pos token.Pos
	msg string
}

// check runs the dataflow in one mode (settleTrue: the value assumed for
// the settle parameter) and returns the findings.
func (f *soFunc) check(settleTrue bool) []settleFinding {
	events := make([][]soEvent, len(f.graph.Blocks))
	for bi, b := range f.graph.Blocks {
		for _, n := range b.Nodes {
			f.collect(n, &events[bi])
		}
	}
	// Forward dataflow to a fixed point: union-join of possible counts.
	in := make([]soCounts, len(f.graph.Blocks))
	if len(f.graph.Blocks) == 0 {
		return nil
	}
	in[0] = soZero
	changed := true
	for changed {
		changed = false
		for bi, b := range f.graph.Blocks {
			state := in[bi]
			if state == 0 {
				continue // unreachable under the current mode's pruning
			}
			for _, ev := range events[bi] {
				switch ev.kind {
				case soSettle:
					state = state.bump()
				case soForward:
					if settleTrue {
						state = state.bump()
					}
				case soReturn:
					state = 0 // nothing flows past a return
				}
				if state == 0 {
					break
				}
			}
			if state == 0 {
				continue
			}
			for si, succ := range b.Succs {
				if f.prunedEdge(bi, si, settleTrue) {
					continue
				}
				if merged := in[succ.Index] | state; merged != in[succ.Index] {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}
	// Replay with final states and record findings.
	var findings []settleFinding
	seen := map[string]bool{}
	add := func(pos token.Pos, msg string) {
		key := f.pass.Fset.Position(pos).String() + "|" + msg
		if !seen[key] {
			seen[key] = true
			findings = append(findings, settleFinding{pos: pos, msg: msg})
		}
	}
	for bi := range f.graph.Blocks {
		state := in[bi]
		if state == 0 {
			continue
		}
		for _, ev := range events[bi] {
			switch ev.kind {
			case soSettle:
				if !settleTrue && f.settleVar != nil {
					add(ev.pos, "settleonce: path settles although the caller passed settle=false — a losing recovery attempt must never bill")
				}
				if state&(soOne|soMany) != 0 {
					add(ev.pos, "settleonce: path can settle twice — exactly-once billing requires a single settleResult per invocation")
				}
				state = state.bump()
			case soForward:
				if settleTrue {
					if state&(soOne|soMany) != 0 {
						add(ev.pos, "settleonce: path settles and then forwards the settle obligation — the callee will settle again")
					}
					state = state.bump()
				}
			case soReturn:
				if f.litOnly || !f.hasReturn {
					state = 0
					break
				}
				if ev.forwards {
					if settleTrue && state&(soOne|soMany) != 0 {
						add(ev.pos, "settleonce: path settles and then forwards the settle obligation — the callee will settle again")
					}
					state = 0
					break
				}
				if ev.success && settleTrue && state&soZero != 0 && state&(soOne|soMany) == 0 {
					// Only report when NO interleaving settles: a mixed
					// {0,1} state means some joined path settled and the
					// analysis cannot tell them apart soundly.
					add(ev.pos, "settleonce: path returns success without settling — the invocation is never billed or recorded")
				}
				// (No settle=false check at returns: in that mode only a
				// direct soSettle can bump the count, and soSettle already
				// reports itself — a return check would duplicate it.)
				if !ev.success && settleTrue && state&soZero == 0 {
					add(ev.pos, "settleonce: every path to this error return has already settled — a settled attempt must report success, or the settle must move after the last fallible step")
				}
				state = 0
			}
			if state == 0 {
				break
			}
		}
	}
	return findings
}

// prunedEdge reports whether the edge from block bi to its si-th successor
// is impossible under the assumed settle value: a two-way branch whose
// condition is the bare settle parameter (or its negation).
func (f *soFunc) prunedEdge(bi, si int, settleTrue bool) bool {
	if f.settleVar == nil {
		return false
	}
	b := f.graph.Blocks[bi]
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return false
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return false
	}
	cond = ast.Unparen(cond)
	negated := false
	if u, isNot := cond.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		cond, negated = ast.Unparen(u.X), true
	}
	if identVar(f.pass, cond) != f.settleVar {
		return false
	}
	// Succs[0] is the true branch. The edge the assumed value cannot take
	// is pruned.
	takesTrue := si == 0
	condTrue := settleTrue != negated
	return takesTrue != condTrue
}

func runSettleOnce(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() != "repro/internal/molecule" {
		return nil, nil
	}
	waivers := collectWaivers(pass, settledMarker)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	report := func(fd settleFinding) {
		posn := pass.Fset.Position(fd.pos)
		if reason, found := waivers.lookup(posn.Filename, posn.Line); found {
			if reason == "" {
				waivers.reportBare(pass, rng(fd.pos))
			}
			return
		}
		pass.Report(analysis.Diagnostic{Pos: fd.pos, Message: fd.msg})
	}

	analyze := func(graph *cfg.CFG, settleVar *types.Var, hasReturn, litOnly bool) {
		if graph == nil {
			return
		}
		f := &soFunc{pass: pass, graph: graph, settleVar: settleVar, hasReturn: hasReturn, litOnly: litOnly}
		for _, fd := range f.check(true) {
			report(fd)
		}
		if settleVar != nil {
			for _, fd := range f.check(false) {
				report(fd)
			}
		}
	}

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil || n.Name.Name == settleFn.Method {
				return
			}
			if isTestFile(pass, pass.Fset.Position(n.Pos()).Filename) {
				return
			}
			settleVar := settleParam(pass, n.Type)
			if settleVar == nil && !containsSettleCall(pass, n.Body) {
				return
			}
			hasReturn := funcReturnsError(pass, n.Type)
			analyze(cfgs.FuncDecl(n), settleVar, hasReturn, false)
		case *ast.FuncLit:
			if isTestFile(pass, pass.Fset.Position(n.Pos()).Filename) {
				return
			}
			if !containsSettleCall(pass, n.Body) {
				return
			}
			analyze(cfgs.FuncLit(n), nil, false, true)
		}
	})
	waivers.reportStale(pass, "settle finding")
	return nil, nil
}

// rng adapts a bare position to analysis.Range for reportBare.
type posRange token.Pos

func (p posRange) Pos() token.Pos { return token.Pos(p) }
func (p posRange) End() token.Pos { return token.Pos(p) }
func rng(p token.Pos) posRange    { return posRange(p) }

// settleParam finds a bool parameter named settle.
func settleParam(pass *analysis.Pass, ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name != settleParamName {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
					return v
				}
			}
		}
	}
	return nil
}

// funcReturnsError reports whether the last result is an error.
func funcReturnsError(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	return types.Identical(pass.TypesInfo.TypeOf(last.Type), errorType)
}

// containsSettleCall reports whether body directly calls settleResult
// (outside nested literals).
func containsSettleCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are analyzed on their own
		}
		if call, ok := n.(*ast.CallExpr); ok && isSettleCall(pass, call) {
			found = true
		}
		return true
	})
	return found
}
