// Package metrics provides latency recording, percentile summaries, and the
// formatted report tables the benchmark harness prints.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Recorder accumulates latency samples.
type Recorder struct {
	samples []time.Duration
	sorted  bool
}

// Add appends one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count reports the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Avg returns the mean latency (0 with no samples).
func (r *Recorder) Avg() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
// p <= 0 returns the minimum sample (so Min is Percentile(0)), p >= 100 the
// maximum, and an empty recorder returns 0 for any p.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	idx := int(p/100*float64(len(r.samples))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	return r.samples[idx]
}

// Min and Max return the extreme samples.
func (r *Recorder) Min() time.Duration { return r.Percentile(0) }

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration { return r.Percentile(100) }

// Merge appends all of other's samples into r. Other is unchanged; merging
// a nil or empty recorder is a no-op.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	r.samples = append(r.samples, other.samples...)
	r.sorted = false
}

// Reset drops all samples, keeping the allocated capacity for reuse.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
}

// Summary formats the avg/p50/p75/p90/p95/p99 line used by the artifact's
// result reports.
func (r *Recorder) Summary() string {
	return fmt.Sprintf("avg %.2fms  50%% %.2fms  75%% %.2fms  90%% %.2fms  95%% %.2fms  99%% %.2fms",
		ms(r.Avg()), ms(r.Percentile(50)), ms(r.Percentile(75)),
		ms(r.Percentile(90)), ms(r.Percentile(95)), ms(r.Percentile(99)))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Table is a formatted result table: one per reproduced figure/table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FmtDur renders a duration in the most readable unit for tables.
func FmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	}
}

// FmtRatio renders a speedup factor.
func FmtRatio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "*%s*\n\n", t.Note)
	}
	row := func(cells []string) {
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	fmt.Fprintln(w)
}
