// Package ocicli exposes the vectorized sandbox abstraction through the
// textual command interface of the paper's Table 3: the five OCI verbs
// (state / create / start / kill / delete), each accepting either a single
// sandbox or a vector.
//
// Grammar (one command per line, comma-separated vectors):
//
//	state  <id>[,<id>...]
//	create <id>:<func-id>[,<id>:<func-id>...] [lang=<runtime>]
//	start  <id>[,<id>...]
//	kill   <id>[,<id>...] <signal>
//	delete <id>[,<id>...]
//
// A shell is bound to one sandbox runtime (containers, runf, or rung) —
// exactly how a serverless platform drives heterogeneous sandboxes without
// knowing what is behind the interface.
package ocicli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

// Shell interprets Table 3 commands against one sandbox runtime.
type Shell struct {
	Runtime sandbox.Runtime
	// DefaultLang applies to container creates without a lang= option.
	DefaultLang lang.Kind
}

// New returns a shell over the runtime.
func New(rt sandbox.Runtime) *Shell {
	return &Shell{Runtime: rt, DefaultLang: lang.Python}
}

// Execute parses and runs one command line, returning its textual output.
func (s *Shell) Execute(p *sim.Proc, line string) (string, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return "", nil
	}
	verb := fields[0]
	args := fields[1:]
	switch verb {
	case "state":
		return s.state(args)
	case "create":
		return s.create(p, args)
	case "start":
		return s.start(p, args)
	case "kill":
		return s.kill(p, args)
	case "delete":
		return s.delete(p, args)
	default:
		return "", fmt.Errorf("ocicli: unknown verb %q (want state/create/start/kill/delete)", verb)
	}
}

// Script executes multiple newline-separated commands, concatenating their
// outputs; it stops at the first error.
func (s *Shell) Script(p *sim.Proc, script string) (string, error) {
	var out strings.Builder
	for ln, line := range strings.Split(script, "\n") {
		res, err := s.Execute(p, line)
		if err != nil {
			return out.String(), fmt.Errorf("line %d: %w", ln+1, err)
		}
		if res != "" {
			out.WriteString(res)
			if !strings.HasSuffix(res, "\n") {
				out.WriteString("\n")
			}
		}
	}
	return out.String(), nil
}

func splitVector(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (s *Shell) state(args []string) (string, error) {
	var ids []string
	if len(args) > 0 {
		ids = splitVector(args[0])
	}
	var out strings.Builder
	for _, st := range s.Runtime.State(ids) {
		fmt.Fprintf(&out, "%s\t%s\n", st.ID, st.State)
	}
	return out.String(), nil
}

func (s *Shell) create(p *sim.Proc, args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("ocicli: create needs <id>:<func-id> vector")
	}
	lk := s.DefaultLang
	for _, a := range args[1:] {
		if rest, ok := strings.CutPrefix(a, "lang="); ok {
			lk = lang.Kind(rest)
		}
	}
	var specs []sandbox.Spec
	for _, ent := range splitVector(args[0]) {
		id, fn, ok := strings.Cut(ent, ":")
		if !ok {
			return "", fmt.Errorf("ocicli: create entry %q is not <id>:<func-id>", ent)
		}
		specs = append(specs, sandbox.Spec{ID: id, FuncID: fn, Lang: lk})
	}
	if err := s.Runtime.Create(p, specs); err != nil {
		return "", err
	}
	return fmt.Sprintf("created %d sandbox(es)\n", len(specs)), nil
}

func (s *Shell) start(p *sim.Proc, args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("ocicli: start needs an id vector")
	}
	ids := splitVector(args[0])
	if err := s.Runtime.Start(p, ids); err != nil {
		return "", err
	}
	return fmt.Sprintf("started %d sandbox(es)\n", len(ids)), nil
}

func (s *Shell) kill(p *sim.Proc, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf("ocicli: kill needs an id vector and a signal")
	}
	sig, err := strconv.Atoi(args[1])
	if err != nil {
		return "", fmt.Errorf("ocicli: bad signal %q", args[1])
	}
	ids := splitVector(args[0])
	if err := s.Runtime.Kill(p, ids, sig); err != nil {
		return "", err
	}
	return fmt.Sprintf("signalled %d sandbox(es) with %d\n", len(ids), sig), nil
}

func (s *Shell) delete(p *sim.Proc, args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("ocicli: delete needs an id vector")
	}
	ids := splitVector(args[0])
	if err := s.Runtime.Delete(p, ids); err != nil {
		return "", err
	}
	return fmt.Sprintf("deleted %d sandbox(es)\n", len(ids)), nil
}
