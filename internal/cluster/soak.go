package cluster

// Deterministic cluster soak: the standard loadgen traffic model driven
// through a Boss, so the whole boss/worker control plane — rendezvous
// routing, work stealing, the central queue, cross-machine chains — runs
// under seeded load and folds into one canonical fingerprint. The bench
// harness wraps this with wall-clock timing for the scaling curve; this
// package stays wall-clock-free (it runs under the virtual clock and its
// fingerprints feed golden comparisons).

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/molecule"
	"repro/internal/sim"
)

// SoakConfig parameterizes one cluster soak run.
type SoakConfig struct {
	// Machines is the worker machine count.
	Machines int
	// HW configures each machine; zero value = CPU-only host.
	HW hw.Config
	// Capacity caps every general-purpose PU's instances (0 = default),
	// the saturation knob for work-stealing and queueing behavior.
	Capacity int

	// Seed/Functions/RatePerSec/Duration/ZipfS/Chains/ChainFraction are the
	// loadgen knobs (see loadgen.Config).
	Seed          int64
	Functions     []string
	RatePerSec    float64
	Duration      time.Duration
	ZipfS         float64
	Chains        [][]string
	ChainFraction float64
}

// DefaultSoakConfig is the checked-in soak shape: a mixed single-function
// population plus the MapReduce chain, hot enough to exercise stealing.
func DefaultSoakConfig(machines int) SoakConfig {
	return SoakConfig{
		Machines:      machines,
		HW:            hw.Config{DPUs: 2},
		Seed:          42,
		Functions:     []string{"pyaes", "matmul", "image-resize", "chameleon"},
		RatePerSec:    400,
		Duration:      2 * time.Second,
		ZipfS:         1.5,
		Chains:        [][]string{{"mr-splitter", "mr-mapper", "mr-reducer"}},
		ChainFraction: 0.2,
	}
}

// SoakResult is one soak run's outcome. Everything here is virtual-time
// state: two runs with the same SoakConfig produce identical results at
// any OS worker count.
type SoakResult struct {
	Stats      *loadgen.Stats
	FinalTime  sim.Time
	Events     int64
	Served     []int // per machine
	Stolen     int
	QueuedPeak int
}

// Fingerprint folds the run into one canonical string: the loadgen stats
// fingerprint plus the boss's routing counters, per-machine service
// counts, total scheduled events, and the final virtual clock. This is
// the byte-identity witness the determinism tests and the bench sweep
// compare across shard worker counts.
func (r *SoakResult) Fingerprint() string {
	return fmt.Sprintf("%s | served=%v stolen=%d qpeak=%d events=%d now=%d",
		r.Stats.Fingerprint(), r.Served, r.Stolen, r.QueuedPeak, r.Events, r.FinalTime)
}

// Soak builds a Boss per the config, drives the loadgen stream through it
// from a client process on the boss domain, and runs the cluster to
// quiescence on the given OS worker count (0 = GOMAXPROCS).
func Soak(cfg SoakConfig, workers int) (*SoakResult, error) {
	b, err := NewBoss(BossConfig{
		Machines: cfg.Machines,
		HW:       cfg.HW,
		Opts:     molecule.DefaultOptions(),
		Capacity: cfg.Capacity,
	})
	if err != nil {
		return nil, err
	}
	// CPU everywhere; DPU profiles too when the fleet has DPUs, so they
	// absorb overflow (the paper's density model).
	profiles := []molecule.Profile{molecule.DefaultProfile(hw.CPU)}
	if cfg.HW.DPUs > 0 {
		profiles = append(profiles, molecule.DefaultProfile(hw.DPU))
	}
	for _, fn := range cfg.Functions {
		if err := b.Register(fn, profiles...); err != nil {
			return nil, err
		}
	}
	for _, ch := range cfg.Chains {
		for _, fn := range ch {
			if _, ok := b.funcs[fn]; ok {
				continue
			}
			if err := b.Register(fn, profiles...); err != nil {
				return nil, err
			}
		}
	}

	var stats *loadgen.Stats
	var runErr error
	b.Env.Spawn("soak-client", func(p *sim.Proc) {
		stats, runErr = loadgen.Drive(p, b, loadgen.Config{
			Seed:          cfg.Seed,
			Functions:     cfg.Functions,
			ZipfS:         cfg.ZipfS,
			RatePerSec:    cfg.RatePerSec,
			Duration:      cfg.Duration,
			Chains:        cfg.Chains,
			ChainFraction: cfg.ChainFraction,
		})
	})
	final := b.Run(workers)
	if runErr != nil {
		return nil, runErr
	}
	if n := b.Inflight(); n != 0 {
		return nil, fmt.Errorf("cluster: soak left %d requests inflight", n)
	}
	res := &SoakResult{
		Stats:      stats,
		FinalTime:  final,
		Events:     b.Sharded.Scheduled(),
		Served:     make([]int, len(b.nodes)),
		Stolen:     b.stolen,
		QueuedPeak: b.queuedPeak,
	}
	for i, n := range b.nodes {
		res.Served[i] = n.served
	}
	return res, nil
}
