package cluster

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// shrinkCapacity pins every general-purpose PU on the worker to cap
// instances, so saturation is reachable with a handful of requests.
func shrinkCapacity(w *Worker, cap int) {
	for _, pu := range w.Machine.PUs() {
		if pu.Kind.GeneralPurpose() {
			w.RT.SetCapacity(pu.ID, cap)
		}
	}
}

// TestBurstAboveCapacityCompletes is the regression test for the
// burst-drop bug: a burst of 2× the cluster's total instance capacity must
// complete with zero errors — the overflow queues at the gateway and is
// served as completions free slots, instead of "no eligible worker".
func TestBurstAboveCapacityCompletes(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w0, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		w1, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		shrinkCapacity(w0, 2)
		shrinkCapacity(w1, 2) // total cluster capacity: 4
		if err := g.Register("pyaes"); err != nil {
			t.Fatal(err)
		}
		const burst = 8 // 2× capacity
		errs, done := 0, 0
		wg := sim.NewWaitGroup(g.Env)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			g.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				if _, err := g.Invoke(cp, "pyaes", molecule.DefaultInvokeOptions()); err != nil {
					errs++
					t.Errorf("burst request failed: %v", err)
					return
				}
				done++
			})
		}
		wg.Wait(p)
		if errs != 0 || done != burst {
			t.Errorf("burst: %d/%d completed, %d errors, want all %d with zero errors", done, burst, errs, burst)
		}
		if g.Inflight() != 0 || w0.Inflight() != 0 || w1.Inflight() != 0 {
			t.Errorf("inflight counters not drained: gateway=%d w0=%d w1=%d", g.Inflight(), w0.Inflight(), w1.Inflight())
		}
	})
}

// TestChainBurstAboveCapacityCompletes covers the same queue-on-saturation
// path for chains.
func TestChainBurstAboveCapacityCompletes(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w0, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		shrinkCapacity(w0, 2)
		chain := []string{"pyaes", "pyaes"}
		if err := g.Register("pyaes"); err != nil {
			t.Fatal(err)
		}
		wg := sim.NewWaitGroup(g.Env)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			g.Env.Spawn("chain", func(cp *sim.Proc) {
				defer wg.Done()
				if _, _, err := g.InvokeChain(cp, chain, molecule.PlaceChainAffinity); err != nil {
					t.Errorf("chain burst request failed: %v", err)
				}
			})
		}
		wg.Wait(p)
		if g.Inflight() != 0 {
			t.Errorf("gateway inflight = %d after burst, want 0", g.Inflight())
		}
	})
}

// TestSaturatedIdleClusterStillErrors pins the deadlock guard: when every
// eligible worker's capacity is zero and nothing is inflight, a request
// must fail fast (nothing will ever complete to wake it) — and the
// inflight counters must be back at zero afterwards.
func TestSaturatedIdleClusterStillErrors(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		shrinkCapacity(w, 0)
		if err := g.Register("pyaes"); err != nil {
			t.Fatal(err)
		}
		_, err := g.Invoke(p, "pyaes", molecule.DefaultInvokeOptions())
		if err == nil {
			t.Fatal("invoke on a zero-capacity cluster succeeded")
		}
		if !errors.Is(err, molecule.ErrNoCapacity) {
			t.Errorf("error %v does not wrap molecule.ErrNoCapacity", err)
		}
		if g.Inflight() != 0 || w.Inflight() != 0 {
			t.Errorf("inflight counters leaked on error path: gateway=%d worker=%d", g.Inflight(), w.Inflight())
		}
	})
}

// TestInflightZeroOnErrorPaths walks every request-rejection path and
// asserts the inflight accounting returns to zero each time.
func TestInflightZeroOnErrorPaths(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.Register("pyaes")
		check := func(when string) {
			if g.Inflight() != 0 || w.Inflight() != 0 {
				t.Errorf("%s: inflight gateway=%d worker=%d, want 0", when, g.Inflight(), w.Inflight())
			}
		}
		if _, err := g.Invoke(p, "unregistered", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("unregistered function scheduled")
		}
		check("unregistered function")
		g.Register("mscale", molecule.DefaultProfile(hw.FPGA))
		if _, err := g.Invoke(p, "mscale", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("FPGA function scheduled on CPU-only cluster")
		}
		check("kind mismatch")
		if _, _, err := g.InvokeChain(p, []string{"pyaes", "mscale"}, molecule.PlaceChainAffinity); err == nil {
			t.Error("mixed chain scheduled on CPU-only cluster")
		}
		check("ineligible chain")
		g.Drain(0)
		if _, err := g.Invoke(p, "pyaes", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("request scheduled on fully drained cluster")
		}
		check("fully drained")
		g.Undrain(0)
		if _, err := g.Invoke(p, "pyaes", molecule.DefaultInvokeOptions()); err != nil {
			t.Errorf("healthy invoke after error paths: %v", err)
		}
		check("after recovery")
	})
}

// TestDrainMidBurstStrandsNothing drains a worker while a burst is in
// flight: every request must still complete (the drained worker finishes
// what it accepted; queued work re-schedules to the survivor).
func TestDrainMidBurstStrandsNothing(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w0, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		w1, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		shrinkCapacity(w0, 2)
		shrinkCapacity(w1, 2)
		if err := g.Register("pyaes"); err != nil {
			t.Fatal(err)
		}
		const burst = 10
		done := 0
		wg := sim.NewWaitGroup(g.Env)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			g.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				if _, err := g.Invoke(cp, "pyaes", molecule.DefaultInvokeOptions()); err != nil {
					t.Errorf("request failed during drain: %v", err)
					return
				}
				done++
			})
		}
		// Drain worker 0 while the burst is mid-flight, undrain later.
		g.Env.Spawn("operator", func(cp *sim.Proc) {
			cp.Sleep(5e6) // 5ms: inside the burst's service window
			if err := g.Drain(0); err != nil {
				t.Error(err)
			}
		})
		wg.Wait(p)
		if done != burst {
			t.Errorf("%d/%d requests completed across drain", done, burst)
		}
		if g.Inflight() != 0 || w0.Inflight() != 0 || w1.Inflight() != 0 {
			t.Errorf("inflight not drained: gateway=%d w0=%d w1=%d", g.Inflight(), w0.Inflight(), w1.Inflight())
		}
	})
}

// TestScheduleZeroAlloc pins the scheduling hotpath at zero allocations:
// eligibility is a precomputed mask AND and load() walks the runtime's
// node table without building slices.
func TestScheduleZeroAlloc(t *testing.T) {
	env := sim.NewEnv()
	g := NewGateway(env, workloads.NewRegistry())
	env.Spawn("boot", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := g.AddWorker(p, hw.Config{DPUs: 1}, molecule.DefaultOptions()); err != nil {
				t.Error(err)
			}
		}
		g.Register("pyaes")
		g.Register("matmul")
	})
	env.Run()
	chain := []string{"pyaes", "matmul"}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := g.scheduleOne("pyaes"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("scheduleOne allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := g.scheduleChain(chain); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("scheduleChain allocates %v/op, want 0", n)
	}
}

// BenchmarkGatewaySchedule measures the per-request scheduling decision
// over a 4-worker heterogeneous cluster (run with -benchmem: 0 allocs/op).
func BenchmarkGatewaySchedule(b *testing.B) {
	env := sim.NewEnv()
	g := NewGateway(env, workloads.NewRegistry())
	env.Spawn("boot", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := g.AddWorker(p, hw.Config{DPUs: 2, FPGAs: 1}, molecule.DefaultOptions()); err != nil {
				b.Error(err)
			}
		}
		g.Register("pyaes")
	})
	env.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.scheduleOne("pyaes"); err != nil {
			b.Fatal(err)
		}
	}
}
