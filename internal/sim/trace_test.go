package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceDisabledByDefault(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		p.Tracef("hello")
	})
	env.Run()
	if len(env.TraceLog()) != 0 {
		t.Error("events recorded while tracing disabled")
	}
	if env.Tracing() {
		t.Error("tracing reported enabled")
	}
}

func TestTraceRecordsInOrder(t *testing.T) {
	env := NewEnv()
	env.EnableTrace()
	env.Spawn("a", func(p *Proc) {
		p.Tracef("start")
		p.Sleep(5 * time.Millisecond)
		p.Tracef("woke at %v", p.Now())
	})
	env.Spawn("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Tracef("b ran")
	})
	env.Run()
	log := env.TraceLog()
	if len(log) != 3 {
		t.Fatalf("events = %d, want 3", len(log))
	}
	if log[0].Proc != "a" || log[1].Proc != "b" || log[2].Proc != "a" {
		t.Errorf("event attribution wrong: %v", log)
	}
	for i := 1; i < len(log); i++ {
		if log[i].T < log[i-1].T {
			t.Error("trace not time-ordered")
		}
	}
	if !strings.Contains(log[2].Event, "woke at 5ms") {
		t.Errorf("formatting broken: %q", log[2].Event)
	}
}

func TestTraceSchedulerContext(t *testing.T) {
	env := NewEnv()
	env.EnableTrace()
	env.At(Time(time.Millisecond), func() { env.Tracef("timer fired") })
	env.Run()
	log := env.TraceLog()
	if len(log) != 1 || log[0].Proc != "" {
		t.Errorf("scheduler-context event wrong: %v", log)
	}
}

func TestTraceDumpAndClear(t *testing.T) {
	env := NewEnv()
	env.EnableTrace()
	env.Spawn("p", func(p *Proc) { p.Tracef("one") })
	env.Run()
	var buf bytes.Buffer
	env.DumpTrace(&buf)
	if !strings.Contains(buf.String(), "one") {
		t.Errorf("dump missing event: %q", buf.String())
	}
	env.ClearTrace()
	if len(env.TraceLog()) != 0 {
		t.Error("clear did not drop events")
	}
	env.DisableTrace()
	if env.Tracing() {
		t.Error("disable did not stick")
	}
}

func TestTraceLogIsACopy(t *testing.T) {
	env := NewEnv()
	env.EnableTrace()
	env.Spawn("p", func(p *Proc) { p.Tracef("one") })
	env.Run()
	log := env.TraceLog()
	log[0].Event = "corrupted"
	if env.TraceLog()[0].Event != "one" {
		t.Error("TraceLog aliases internal state; mutation leaked through")
	}
	// Appending to the returned slice must not clobber events the live log
	// records afterwards (the classic shared-backing-array bug).
	log = log[:1]
	_ = append(log, TraceEvent{Event: "hijack"})
	env.Spawn("q", func(p *Proc) { p.Tracef("two") })
	env.Run()
	if got := env.TraceLog(); len(got) != 2 || got[1].Event != "two" {
		t.Errorf("append through stale snapshot corrupted the log: %v", got)
	}
	env.ClearTrace()
	if env.TraceLog() != nil {
		t.Error("TraceLog of empty log should be nil")
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{T: Time(time.Millisecond), Proc: "worker", Event: "did a thing"}
	s := ev.String()
	if !strings.Contains(s, "worker") || !strings.Contains(s, "did a thing") {
		t.Errorf("String = %q", s)
	}
}
