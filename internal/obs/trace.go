package obs

import "repro/internal/sim"

// SpanID identifies a span within one Tracer. 0 is "no span" (the parent of
// roots).
type SpanID uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Span is one named interval of virtual time attributed to a PU, forming a
// tree through Parent. Spans are created by Tracer.Start and closed by
// Finish; an unfinished span has End == Start at export time semantics (it
// exports with zero duration until finished).
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for root spans
	Name   string
	PU     int // processing-unit track; -1 inherits the parent's PU
	Start  sim.Time
	End    sim.Time
	Attrs  []Attr

	tr   *Tracer
	open bool
}

// Tracer records a hierarchical span tree in virtual time. The zero value is
// not usable; create one with NewTracer. A nil *Tracer is the disabled state.
type Tracer struct {
	env     *sim.Env
	nextID  SpanID
	spans   []*Span
	puNames map[int]string
}

// NewTracer returns a Tracer stamping spans with env's virtual clock.
func NewTracer(env *sim.Env) *Tracer {
	return &Tracer{env: env, puNames: make(map[int]string)}
}

// NamePU registers a human-readable name for a PU track, used by the
// Chrome-trace exporter's thread metadata.
func (t *Tracer) NamePU(pu int, name string) {
	if t == nil {
		return
	}
	t.puNames[pu] = name
}

// Start opens a span named name on PU pu under parent (nil = root). pu == -1
// inherits the parent's PU (or stays -1 on roots, rendering on a shared
// track). Nil-safe: a nil Tracer returns a nil Span.
func (t *Tracer) Start(parent *Span, name string, pu int) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	s := &Span{ID: t.nextID, Name: name, PU: pu, Start: t.env.Now(), tr: t, open: true}
	if parent != nil {
		s.Parent = parent.ID
		if pu < 0 {
			s.PU = parent.PU
		}
	}
	t.spans = append(t.spans, s)
	return s
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetPU reassigns the span's PU track — for spans whose PU is only known
// after placement. Nil-safe.
func (s *Span) SetPU(pu int) {
	if s == nil {
		return
	}
	s.PU = pu
}

// Finish closes the span at the current virtual time. Finishing twice, or
// finishing a nil span, is a no-op.
func (s *Span) Finish() {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.End = s.tr.env.Now()
}

// Duration returns the span's virtual duration (0 while open).
func (s *Span) Duration() sim.Duration {
	if s == nil || s.open {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Open reports whether the span has not been finished. Exported so post-hoc
// analyzers (obs/attrib) can distinguish an abandoned span from a finished
// zero-length one — both report Duration() == 0.
func (s *Span) Open() bool {
	return s != nil && s.open
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns a snapshot of all recorded spans in creation order. The
// returned slice and each span's Attrs are copies — mutating them cannot
// corrupt the trace (unlike the pre-fix sim.Env.TraceLog aliasing bug).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
		out[i].tr = nil
	}
	return out
}

// Find returns a snapshot of the first span named name, and whether one
// exists.
func (t *Tracer) Find(name string) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	for _, s := range t.spans {
		if s.Name == name {
			cp := *s
			cp.Attrs = append([]Attr(nil), s.Attrs...)
			cp.tr = nil
			return cp, true
		}
	}
	return Span{}, false
}

// Children returns snapshots of the spans whose parent is id, in creation
// order.
func (t *Tracer) Children(id SpanID) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.spans {
		if s.Parent == id {
			cp := *s
			cp.Attrs = append([]Attr(nil), s.Attrs...)
			cp.tr = nil
			out = append(out, cp)
		}
	}
	return out
}

// Reset drops all recorded spans (PU names are kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.spans = nil
}
