package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CrossDomain checks the closures that cross kernel-domain boundaries: the
// callbacks handed to hw.Interconnect.Send/SendAfter and sim.Sharded.Send.
// Those closures run on the destination domain at a conservative barrier
// while the sending domain keeps executing in parallel, so any state they
// share with the sender is exactly the data race that makes the worker
// count observable and breaks the byte-identical-at-every-shard-count
// guarantee.
//
// A captured variable is accepted when it is provably harmless:
//
//   - destination-owned: the Send's `to` argument is rooted at the same
//     variable (ic.Send(env, n.Domain, sz, func(){ ...n... }) — n IS the
//     destination machine's state);
//   - a read-only value copy: its type contains no pointers, maps, slices,
//     channels, funcs, or interfaces at any depth, and the closure never
//     writes it (closures capture by reference, so even an int write would
//     alias the sender's variable);
//   - an error value (immutable by convention).
//
// Everything else — captured pointers, maps, slices, channels, funcs,
// written value captures — is rejected unless the call carries a
// //lint:owned <reason> waiver stating the ownership argument. This soundly
// over-approximates: some rejected captures are safe under a protocol the
// analyzer cannot see (the boss/worker request lifecycle), and the waiver
// records that protocol where the compiler can't.
var CrossDomain = &analysis.Analyzer{
	Name:     "crossdomain",
	Doc:      "cross-domain Interconnect/Sharded closures must capture only value copies and destination-owned state",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCrossDomain,
}

// crossDomainEdge matches one method whose final func() argument is
// delivered on another kernel domain.
type crossDomainEdge struct {
	recvPath string // package path of the receiver's named type
	recvName string // receiver type name
	method   string
	toArg    int // index of the destination-domain argument
}

// crossDomainEdges are the sanctioned cross-domain scheduling edges. The
// hw.Interconnect methods are the paper-faithful path; sim.Sharded.Send is
// the kernel primitive underneath them (its only non-test caller is the
// Interconnect itself, which forwards its parameter and is exempt under the
// forwarding rule).
var crossDomainEdges = []crossDomainEdge{
	{recvPath: "repro/internal/hw", recvName: "Interconnect", method: "Send", toArg: 1},
	{recvPath: "repro/internal/hw", recvName: "Interconnect", method: "SendAfter", toArg: 1},
	{recvPath: "repro/internal/sim", recvName: "Sharded", method: "Send", toArg: 1},
}

// edgeFor resolves a call to a cross-domain edge, or nil.
func edgeFor(pass *analysis.Pass, call *ast.CallExpr) *crossDomainEdge {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	for i := range crossDomainEdges {
		e := &crossDomainEdges[i]
		if fn.Name() == e.method && named.Obj().Name() == e.recvName &&
			named.Obj().Pkg().Path() == e.recvPath {
			return e
		}
	}
	return nil
}

// namedRecv unwraps a (possibly pointer) receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// rootIdent returns the identifier at the base of a selector chain
// (n.Domain -> n), or nil when the expression is not rooted in one.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// valueLike reports whether t is a pure value: copying it shares no mutable
// state with the original. Pointers, slices, maps, channels, funcs, and
// interfaces are not; structs and arrays are value-like iff all their
// elements are.
func valueLike(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !valueLike(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return valueLike(u.Elem(), seen)
	default:
		return false
	}
}

// isErrorType reports whether t is exactly the error interface.
var errorType = types.Universe.Lookup("error").Type()

// captureKind classifies why a capture is rejected; empty = accepted.
func captureKind(pass *analysis.Pass, v *types.Var, lit *ast.FuncLit) string {
	if types.Identical(v.Type(), errorType) {
		return "" // errors are immutable by convention
	}
	if !valueLike(v.Type(), make(map[types.Type]bool)) {
		return fmt.Sprintf("%s (shared mutable state)", v.Type())
	}
	if writesVar(pass, lit.Body, v) {
		return fmt.Sprintf("%s (value type, but the closure writes it — closures capture by reference)", v.Type())
	}
	return ""
}

// writesVar reports whether body assigns to, increments, or takes the
// address of v.
func writesVar(pass *analysis.Pass, body ast.Node, v *types.Var) bool {
	hit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if hit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					hit = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				hit = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					hit = true
				}
			}
		}
		return !hit
	})
	return hit
}

// enclosingFunc returns the outermost function boundary on the stack: the
// FuncDecl, or the outermost FuncLit for package-level initializers.
func enclosingFunc(stack []ast.Node) ast.Node {
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
	}
	return nil
}

// isParamOf reports whether id resolves to a parameter (or receiver) of any
// function literal or declaration on the stack — the forwarding idiom,
// where a wrapper passes its own callback parameter through.
func isParamOf(pass *analysis.Pass, stack []ast.Node, id *ast.Ident) bool {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	for _, n := range stack {
		var ft *ast.FuncType
		var recv *ast.FieldList
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft, recv = n.Type, n.Recv
		case *ast.FuncLit:
			ft = n.Type
		default:
			continue
		}
		lists := []*ast.FieldList{ft.Params, recv}
		for _, fl := range lists {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if pass.TypesInfo.Defs[name] == v {
						return true
					}
				}
			}
		}
	}
	return false
}

func runCrossDomain(pass *analysis.Pass) (interface{}, error) {
	waivers := collectWaivers(pass, ownedMarker)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		edge := edgeFor(pass, call)
		if edge == nil || len(call.Args) == 0 {
			return true
		}
		p := pass.Fset.Position(call.Pos())
		if isTestFile(pass, p.Filename) {
			return true
		}
		if reason, found := waivers.lookup(p.Filename, p.Line); found {
			if reason == "" {
				waivers.reportBare(pass, call)
			}
			return true
		}
		fnArg := call.Args[len(call.Args)-1]
		lit, ok := fnArg.(*ast.FuncLit)
		if !ok {
			if id, isIdent := fnArg.(*ast.Ident); isIdent && isParamOf(pass, stack, id) {
				return true // forwarding wrapper: checked at the caller's literal
			}
			pass.Reportf(fnArg.Pos(),
				"crossdomain: cannot prove the %s.%s callback is capture-free; pass a func literal (or annotate //lint:owned <reason>)",
				edge.recvName, edge.method)
			return true
		}
		outer := enclosingFunc(stack)
		if outer == nil {
			return true
		}
		// Destination-owned root: the variable the `to` argument is read
		// from, if any.
		var destOwned types.Object
		if edge.toArg < len(call.Args) {
			if root := rootIdent(call.Args[edge.toArg]); root != nil {
				destOwned = pass.TypesInfo.Uses[root]
			}
		}
		reportCaptures(pass, edge, outer, lit, destOwned)
		return true
	})
	waivers.reportStale(pass, "cross-domain send")
	return nil, nil
}

// reportCaptures flags every disallowed free variable of lit.
func reportCaptures(pass *analysis.Pass, edge *crossDomainEdge, outer ast.Node, lit *ast.FuncLit, destOwned types.Object) {
	seen := make(map[*types.Var]bool)
	var bad []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Free variable: declared inside the enclosing function but outside
		// the literal. Package-level state is a separate concern (it is
		// shared by construction and guarded by the Sim-layer rules).
		if v.Pos() < outer.Pos() || v.Pos() >= outer.End() ||
			(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			return true
		}
		seen[v] = true
		if v == destOwned {
			return true
		}
		if captureKind(pass, v, lit) != "" {
			bad = append(bad, v)
		}
		return true
	})
	sort.Slice(bad, func(i, j int) bool { return bad[i].Name() < bad[j].Name() })
	for _, v := range bad {
		pass.Reportf(lit.Pos(),
			"crossdomain: closure passed to %s.%s captures %q of type %s owned by the sending domain; cross-domain messages must carry data by value — copy it, target the destination's own state, or annotate //lint:owned <reason>",
			edge.recvName, edge.method, v.Name(), captureKind(pass, v, lit))
	}
}
