package workloads

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/lang"
)

// FunctionSpec is the JSON-serializable description of a custom function,
// so deployments can define workloads in configuration rather than code.
// Durations are in microseconds; linear cost models are expressed as
// fixed + per-unit terms.
type FunctionSpec struct {
	Name      string `json:"name"`
	Lang      string `json:"lang,omitempty"`      // "python" (default) or "nodejs"
	ExecUS    int64  `json:"exec_us"`             // handler CPU time
	DepImport int64  `json:"dep_import_us"`       // cold-start dependency import
	ArgBytes  int    `json:"arg_bytes,omitempty"` // request payload
	ResBytes  int    `json:"result_bytes,omitempty"`

	// Optional linear CPU cost model: exec = exec_us + per_byte_ns*Bytes +
	// per_item_ns*N (overrides ExecUS when an Arg carries Bytes/N).
	PerByteNS float64 `json:"per_byte_ns,omitempty"`
	PerItemNS float64 `json:"per_item_ns,omitempty"`

	// Optional FPGA implementation: fabric = fpga_us + fpga_per_byte_ns*Bytes
	// + fpga_per_item_ns*N.
	FPGAUS        int64   `json:"fpga_us,omitempty"`
	FPGAPerByteNS float64 `json:"fpga_per_byte_ns,omitempty"`
	FPGAPerItemNS float64 `json:"fpga_per_item_ns,omitempty"`

	// Optional GPU kernel time.
	GPUUS int64 `json:"gpu_us,omitempty"`
}

// Build converts the spec into a Function.
func (fs FunctionSpec) Build() (*Function, error) {
	if fs.Name == "" {
		return nil, fmt.Errorf("workloads: function spec without name")
	}
	if fs.ExecUS <= 0 {
		return nil, fmt.Errorf("workloads: function %q needs exec_us > 0", fs.Name)
	}
	lk := lang.Python
	switch fs.Lang {
	case "", "python":
	case "nodejs":
		lk = lang.Node
	default:
		return nil, fmt.Errorf("workloads: function %q has unsupported lang %q", fs.Name, fs.Lang)
	}
	f := &Function{
		Name:        fs.Name,
		Lang:        lk,
		ExecCPU:     time.Duration(fs.ExecUS) * time.Microsecond,
		DepImport:   time.Duration(fs.DepImport) * time.Microsecond,
		ArgBytes:    fs.ArgBytes,
		ResultBytes: fs.ResBytes,
		Fabric:      time.Duration(fs.FPGAUS) * time.Microsecond,
		GPUKernel:   time.Duration(fs.GPUUS) * time.Microsecond,
	}
	if fs.PerByteNS > 0 || fs.PerItemNS > 0 {
		base := f.ExecCPU
		perB, perI := fs.PerByteNS, fs.PerItemNS
		f.ExecCPUFor = func(a Arg) time.Duration {
			return base + time.Duration(perB*float64(a.Bytes)) + time.Duration(perI*float64(a.N))
		}
	}
	if fs.FPGAUS > 0 && (fs.FPGAPerByteNS > 0 || fs.FPGAPerItemNS > 0) {
		base := f.Fabric
		perB, perI := fs.FPGAPerByteNS, fs.FPGAPerItemNS
		f.FabricFor = func(a Arg) time.Duration {
			return base + time.Duration(perB*float64(a.Bytes)) + time.Duration(perI*float64(a.N))
		}
	}
	return f, nil
}

// LoadJSON parses a JSON array of FunctionSpec and registers each function.
// On error nothing is registered.
func (r *Registry) LoadJSON(data []byte) error {
	var specs []FunctionSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("workloads: bad function JSON: %w", err)
	}
	fns := make([]*Function, 0, len(specs))
	for _, fs := range specs {
		f, err := fs.Build()
		if err != nil {
			return err
		}
		fns = append(fns, f)
	}
	for _, f := range fns {
		r.Add(f)
	}
	return nil
}
