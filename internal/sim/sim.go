// Package sim implements a deterministic discrete-event simulation kernel.
//
// Every component of the Molecule reproduction — operating systems, XPU-Shim
// nodes, sandboxes, function instances — runs as a simulation process
// (a goroutine coordinated by an Env) that blocks on simulated primitives
// (Sleep, channel operations, resources) instead of real time. Exactly one
// process runs at any instant; the kernel hands control between the scheduler
// and processes over unbuffered channels, so event ordering is deterministic:
// events fire in (time, sequence-number) order.
//
// The virtual clock is a Time in nanoseconds. A complete benchmark run that
// models minutes of system activity executes in milliseconds of wall time.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for virtual delays; virtual durations use
// the same unit (nanoseconds) as wall-clock durations for readability.
type Duration = time.Duration

// After returns the time d after t.
func (t Time) After(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled occurrence. At time t either fn runs in scheduler
// context (generic callbacks: At, AfterFunc) or, when fn is nil, the parked
// process p is resumed with msg. The dedicated resume form is the hot path —
// Sleep, channel wake-ups, and spawn starts all use it — and avoids
// allocating a fresh closure per schedule. Fired events are recycled through
// Env.free, so steady-state scheduling allocates nothing.
type event struct {
	t   Time
	seq int64
	fn  func() // generic callback; nil for resume events
	p   *Proc  // resume target when fn is nil
	msg resumeMsg
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (x any) {
	old := *h
	n := len(old)
	x = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}
func (h eventHeap) peek() *event       { return h[0] }
func (h *eventHeap) pushEv(ev *event)  { heap.Push(h, ev) }
func (h *eventHeap) popEv() (e *event) { return heap.Pop(h).(*event) }

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, and drive it with Run.
// Env methods must be called either before Run or from within a running
// process; Env is not safe for concurrent use from unrelated goroutines.
type Env struct {
	now     Time
	seq     int64
	events  eventHeap
	parkCh  chan struct{} // process → scheduler: "I have parked or exited"
	running *Proc         // the process currently executing, if any
	nprocs  int           // live (spawned, not yet exited) processes
	stopped bool
	limit   Time // run-until horizon; 0 means none

	free []*event // recycled fired events, capped at maxFreeEvents

	// Sharded-execution fields. A standalone Env (NewEnv) has group == nil
	// and domain 0; an Env created by NewSharded is one domain of a group.
	// windowBound is the exclusive virtual-time bound of the window the
	// domain is currently executing: 0 means unbounded (the classic
	// single-heap loop), a positive value caps the Sleep fast path so a
	// process cannot advance past a barrier at which cross-domain messages
	// are delivered, and fastPathOff disables the fast path entirely (the
	// zero-lookahead sequential merge, where a cross-domain message may
	// arrive at any time >= now).
	group       *Sharded
	domain      int
	windowBound Time

	tracing bool
	trace   []TraceEvent
	spawned []*Proc // procs visible to BlockedProcs; compacted as procs exit
	exited  int     // exited procs still occupying a spawned slot
}

// fastPathOff is the windowBound sentinel that disables the Sleep fast path.
const fastPathOff Time = -1

// maxFreeEvents caps the recycle pool; beyond this, fired events are left
// for the GC. The cap bounds kernel memory on runs with huge event bursts.
const maxFreeEvents = 1024

// NewEnv returns an empty environment at time 0.
func NewEnv() *Env {
	return &Env{parkCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Domain returns the index of this Env within its sharded group (0 for a
// standalone Env).
func (e *Env) Domain() int { return e.domain }

// Scheduled reports the total number of events the environment has sequenced
// since creation, including wake-ups the Sleep fast path elides. It is a
// deterministic measure of kernel work: for a well-formed sharded workload it
// is identical at every shard and worker count, which makes it both the
// events/sec numerator of the scaling benchmarks and a cheap determinism
// fingerprint.
func (e *Env) Scheduled() int64 { return e.seq }

// newEvent takes an event from the recycle pool (or allocates one) and
// stamps it with the clamped time and the next sequence number.
func (e *Env) newEvent(t Time) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.t, ev.seq = t, e.seq
		return ev
	}
	return &event{t: t, seq: e.seq}
}

// recycle clears a fired event and returns it to the pool.
func (e *Env) recycle(ev *event) {
	ev.fn, ev.p, ev.msg = nil, nil, resumeMsg{}
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// schedule enqueues fn to run at time t (>= now) in scheduler context.
func (e *Env) schedule(t Time, fn func()) {
	ev := e.newEvent(t)
	ev.fn = fn
	e.events.pushEv(ev)
}

// scheduleResume enqueues "resume p with msg" at time t without allocating
// a closure. Resuming an exited process is a no-op, so callers need not
// guard against the target dying first.
func (e *Env) scheduleResume(t Time, p *Proc, msg resumeMsg) {
	ev := e.newEvent(t)
	ev.p, ev.msg = p, msg
	e.events.pushEv(ev)
}

// fire dispatches a dequeued event. The event is recycled first (its fields
// are copied out), so callbacks may immediately reuse the slot.
func (e *Env) fire(ev *event) {
	fn, p, msg := ev.fn, ev.p, ev.msg
	e.recycle(ev)
	if fn != nil {
		fn()
		return
	}
	e.resume(p, msg)
}

// At schedules fn to run at the given virtual time. fn runs in scheduler
// context: it must not block on simulation primitives, but it may spawn
// processes or trigger events.
func (e *Env) At(t Time, fn func()) { e.schedule(t, fn) }

// AfterFunc schedules fn to run d after the current time.
func (e *Env) AfterFunc(d Duration, fn func()) { e.schedule(e.now.After(d), fn) }

// Stop halts the simulation after the currently firing event completes.
func (e *Env) Stop() { e.stopped = true }

// Proc is a simulation process. A Proc's body runs on its own goroutine but
// executes only while the scheduler has handed it control; calling a blocking
// method (Sleep, channel Recv, ...) parks the body and returns control.
type Proc struct {
	env      *Env
	name     string
	resumeCh chan resumeMsg
	exited   bool
}

type resumeMsg struct {
	interrupted bool
	val         any
}

// Interrupted is the panic value delivered to a process that is interrupted
// while parked. Process bodies normally let it propagate; the kernel recovers
// it and terminates the process cleanly.
type Interrupted struct{ Proc string }

func (i Interrupted) Error() string { return "sim: process " + i.Proc + " interrupted" }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process named name whose body is fn and schedules it to
// start at the current virtual time. It returns immediately.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter is Spawn with a start delay of d.
func (e *Env) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resumeCh: make(chan resumeMsg)}
	e.nprocs++
	e.spawned = append(e.spawned, p)
	go func() {
		msg := <-p.resumeCh // wait for the start event
		defer func() {
			p.exited = true
			e.nprocs--
			e.noteExit()
			if r := recover(); r != nil {
				if _, ok := r.(Interrupted); ok {
					e.parkCh <- struct{}{}
					return
				}
				// Re-panicking here would crash a bare goroutine with a
				// useless trace; surface the original value instead.
				panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
			}
			e.parkCh <- struct{}{}
		}()
		if msg.interrupted {
			return // interrupted before first run
		}
		fn(p)
	}()
	e.scheduleResume(e.now.After(d), p, resumeMsg{})
	return p
}

// noteExit records a process exit and compacts e.spawned once exited procs
// dominate it, so long soak runs that spawn millions of short-lived procs
// keep BlockedProcs bookkeeping bounded by the number of live procs. It runs
// on the exiting proc's goroutine before control returns to the scheduler,
// the same discipline under which Spawn appends.
func (e *Env) noteExit() {
	e.exited++
	if e.exited < 64 || e.exited*2 < len(e.spawned) {
		return
	}
	live := e.spawned[:0]
	for _, q := range e.spawned {
		if !q.exited {
			live = append(live, q)
		}
	}
	for i := len(live); i < len(e.spawned); i++ {
		e.spawned[i] = nil
	}
	e.spawned = live
	e.exited = 0
}

// resume hands control to p and blocks until p parks again or exits.
func (e *Env) resume(p *Proc, msg resumeMsg) {
	if p.exited {
		return
	}
	prev := e.running
	e.running = p
	p.resumeCh <- msg
	<-e.parkCh
	e.running = prev
}

// park yields control back to the scheduler and blocks until resumed.
func (p *Proc) park() resumeMsg {
	p.env.parkCh <- struct{}{}
	msg := <-p.resumeCh
	if msg.interrupted {
		panic(Interrupted{Proc: p.name})
	}
	return msg
}

// Sleep advances the process by d of virtual time.
//
// Fast path: when p is the running process and its wake-up would be the very
// next event to fire (no other event is due at or before the wake time, no
// Stop, RunUntil horizon, or shard-window bound intervenes), the kernel
// advances the clock and
// returns directly — the outcome is identical to parking, having the
// scheduler pop the wake event, and resuming, but without the two channel
// handoffs or the heap traffic. Pending same-instant events (including
// Interrupts, which are scheduled at the current time) always have an
// earlier (time, seq) position and therefore disable the fast path, so
// event ordering is preserved exactly.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	env := p.env
	t := env.now.After(d)
	if env.running == p && !env.stopped && (env.limit == 0 || t <= env.limit) &&
		(env.windowBound == 0 || (env.windowBound > 0 && t < env.windowBound)) &&
		(len(env.events) == 0 || env.events.peek().t > t) {
		env.seq++ // account for the wake event this path elides
		env.now = t
		return
	}
	env.scheduleResume(t, p, resumeMsg{})
	p.park()
}

// Yield parks the process and reschedules it at the same virtual time, after
// all events already queued for this instant.
func (p *Proc) Yield() { p.Sleep(0) }

// Interrupt wakes a parked process by panicking Interrupted inside it. It is
// the simulation analogue of killing a blocked process. Interrupting a
// process that is not parked (or already exited) is a no-op.
func (p *Proc) Interrupt() {
	if p.exited {
		return
	}
	p.env.scheduleResume(p.env.now, p, resumeMsg{interrupted: true})
}

// Run drives the simulation until no events remain or Stop is called.
// It returns the final virtual time.
func (e *Env) Run() Time {
	e.limit = 0
	return e.loop()
}

// RunUntil drives the simulation until virtual time t; events scheduled
// later than t remain queued. It returns the final virtual time (<= t).
func (e *Env) RunUntil(t Time) Time {
	e.limit = t
	defer func() { e.limit = 0 }()
	return e.loop()
}

func (e *Env) loop() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.limit > 0 && e.events.peek().t > e.limit {
			e.now = e.limit
			break
		}
		ev := e.events.popEv()
		e.now = ev.t
		e.fire(ev)
	}
	return e.now
}

// window is the shard dispatch loop: it fires every queued event with
// t < bound and returns the number fired. Events at or beyond the bound stay
// queued for a later window, after the group barrier has delivered pending
// cross-domain messages. While the window is open the Sleep fast path is
// capped at the bound, so no process can advance past a barrier it must
// observe. The loop itself allocates nothing; all allocation happens (or is
// elided) inside the fired events, exactly as in the classic loop.
//
//molecule:hotpath
func (e *Env) window(bound Time) int {
	e.windowBound = bound
	n := 0
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().t >= bound {
			break
		}
		ev := e.events.popEv()
		e.now = ev.t
		e.fire(ev)
		n++
	}
	e.windowBound = 0
	return n
}

// fireNext pops and fires the single earliest event with the fast path
// disabled; the zero-lookahead sequential merge uses it, where a cross-domain
// message may arrive at any future instant and therefore no elided wake-up is
// safe. The caller has checked that an event is queued.
func (e *Env) fireNext() {
	e.windowBound = fastPathOff
	ev := e.events.popEv()
	e.now = ev.t
	e.fire(ev)
	e.windowBound = 0
}

// nextEventTime returns the time of the earliest queued event and whether
// one exists.
func (e *Env) nextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events.peek().t, true
}

// Pending reports the number of queued events.
func (e *Env) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not exited.
// After Run returns, a nonzero value means processes are blocked forever
// (deadlocked on channels or resources).
func (e *Env) LiveProcs() int { return e.nprocs }

// BlockedProcs returns the names of processes that were spawned and have
// not exited — after Run returns, these are parked forever. For diagnosing
// deadlocks in tests.
//
// The returned slice is sorted lexicographically. That order is a documented
// guarantee: spawn order is an implementation detail that differs between a
// monolithic run and a domain-sharded run of the same workload (and between
// shard counts), so diagnostics built on BlockedProcs compare equal at every
// shard and worker count.
func (e *Env) BlockedProcs() []string {
	var out []string
	for _, p := range e.spawned {
		if !p.exited {
			out = append(out, p.name)
		}
	}
	sort.Strings(out)
	return out
}
