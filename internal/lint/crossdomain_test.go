package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCrossDomain(t *testing.T) {
	linttest.Run(t, lint.CrossDomain,
		linttest.Package{Path: "repro/internal/hw", Dir: "testdata/crossdomain/hw"},
		linttest.Package{Path: "repro/internal/sim", Dir: "testdata/crossdomain/sim"},
		linttest.Package{Path: "repro/internal/cluster", Dir: "testdata/crossdomain/cluster"})
}
