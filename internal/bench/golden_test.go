package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment report")

// TestGoldenReport locks the entire harness output against a golden file:
// the simulation is deterministic, so any diff means a calibration or
// behavior change. Regenerate intentionally with:
//
//	go test ./internal/bench -run Golden -update
func TestGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var buf bytes.Buffer
	RunAll(&buf)
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden report rewritten (%d bytes)", buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden report; run with -update first: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		// Find the first differing line for a useful message.
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("report diverges from golden at line %d:\n  got:  %s\n  want: %s\n(run with -update if intentional)",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("report length changed: %d vs %d lines (run with -update if intentional)",
			len(gotLines), len(wantLines))
	}
}
