// Package mem implements the page-granular memory model used by the
// simulated operating systems.
//
// Address spaces map page numbers to physical pages. Fork shares every page
// copy-on-write, exactly like Unix: the page's reference count rises, and the
// first write by either side breaks the sharing by allocating a private copy.
// The model exists to reproduce the paper's Fig 11b/c memory results: cfork'd
// instances share template pages, so their PSS (proportional set size) is
// lower than plainly-booted instances even though RSS (resident set size)
// can be slightly higher due to the template's own footprint.
//
// Representation: instead of a map from virtual page number to a heap-allocated
// page, an address space holds a short sorted list of mappings, each a window
// into an extent — a contiguous run of per-page reference counts shared by
// every address space that maps it. Fork is one slice copy plus refcount
// increments over each window (no per-page allocation or map churn), which is
// what makes the cfork-heavy density experiments cheap in wall-clock time.
// The observable semantics (fault counts, RSS, PSS, shared-page counts) are
// identical to the per-page model.
package mem

// extent is a contiguous run of physical pages. refs[i] counts how many
// address spaces currently map page i of the extent; a page with refs 0 is
// orphaned and never counted again.
type extent struct {
	refs []int32
}

// mapping is a window of an extent mapped at a contiguous virtual range:
// virtual page vpn+i is backed by ext.refs[off+i] for i in [0, n).
type mapping struct {
	vpn int
	n   int
	off int
	ext *extent
}

// AddressSpace is a process's page table: a sorted, non-overlapping list of
// extent windows.
type AddressSpace struct {
	maps []mapping
	next int // next unused virtual page number for Map allocations
	// released guards the refcount decrement in Release: an address space
	// can be torn down from more than one path (keep-alive eviction vs an
	// in-flight fork's error cleanup), and decrementing shared extents
	// twice would silently corrupt every sharer's PSS.
	released bool
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{}
}

func newExtent(n int) *extent {
	e := &extent{refs: make([]int32, n)}
	for i := range e.refs {
		e.refs[i] = 1
	}
	return e
}

// search returns the index of the first mapping whose end lies beyond vpn —
// the mapping containing vpn if one exists, otherwise the insertion point.
func (as *AddressSpace) search(vpn int) int {
	lo, hi := 0, len(as.maps)
	for lo < hi {
		mid := (lo + hi) / 2
		if as.maps[mid].vpn+as.maps[mid].n <= vpn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splice replaces as.maps[i] with the given replacement mappings.
func (as *AddressSpace) splice(i int, repl ...mapping) {
	tail := as.maps[i+1:]
	out := make([]mapping, 0, len(as.maps)-1+len(repl))
	out = append(out, as.maps[:i]...)
	out = append(out, repl...)
	out = append(out, tail...)
	as.maps = out
}

// Map allocates n fresh private pages and returns the first virtual page
// number of the contiguous run.
func (as *AddressSpace) Map(n int) int {
	start := as.next
	if n > 0 {
		// as.next never lies inside an existing mapping (Map and demand
		// paging both advance it past what they touch), so appending keeps
		// the list sorted.
		as.maps = append(as.maps, mapping{vpn: start, n: n, off: 0, ext: newExtent(n)})
		as.next += n
		as.released = false // mapping into a released space revives it
	}
	return start
}

// Unmap releases n pages starting at virtual page vpn. Unmapping a hole is
// a no-op for the missing pages.
func (as *AddressSpace) Unmap(vpn, n int) {
	end := vpn + n
	cur := vpn
	for cur < end {
		i := as.search(cur)
		if i >= len(as.maps) {
			return
		}
		m := as.maps[i]
		if m.vpn >= end {
			return
		}
		if cur < m.vpn {
			cur = m.vpn
		}
		chunkEnd := m.vpn + m.n
		if end < chunkEnd {
			chunkEnd = end
		}
		for p := cur; p < chunkEnd; p++ {
			m.ext.refs[m.off+p-m.vpn]--
		}
		lo := cur - m.vpn
		hi := m.vpn + m.n - chunkEnd
		var repl []mapping
		if lo > 0 {
			repl = append(repl, mapping{vpn: m.vpn, n: lo, off: m.off, ext: m.ext})
		}
		if hi > 0 {
			repl = append(repl, mapping{vpn: chunkEnd, n: hi, off: m.off + m.n - hi, ext: m.ext})
		}
		as.splice(i, repl...)
		cur = chunkEnd
	}
}

// Fork returns a copy-on-write clone: every page is shared with the parent
// and each side's first write will privatize its copy.
func (as *AddressSpace) Fork() *AddressSpace {
	child := &AddressSpace{maps: make([]mapping, len(as.maps)), next: as.next}
	copy(child.maps, as.maps)
	for _, m := range as.maps {
		refs := m.ext.refs[m.off : m.off+m.n]
		for i := range refs {
			refs[i]++
		}
	}
	return child
}

// Write dirties n pages starting at vpn, breaking copy-on-write sharing.
// It returns the number of pages that were actually copied (i.e. the number
// of COW faults), which the OS model converts into fault latency.
func (as *AddressSpace) Write(vpn, n int) int {
	faults := 0
	end := vpn + n
	cur := vpn
	for cur < end {
		i := as.search(cur)
		if i == len(as.maps) || as.maps[i].vpn >= end {
			// Pure hole until end: demand-page it in one extent.
			faults += end - cur
			as.demandPage(i, cur, end)
			cur = end
			break
		}
		m := as.maps[i]
		if cur < m.vpn {
			// Hole before the next mapping.
			faults += m.vpn - cur
			as.demandPage(i, cur, m.vpn)
			cur = m.vpn
			continue
		}
		chunkEnd := m.vpn + m.n
		if end < chunkEnd {
			chunkEnd = end
		}
		refs := m.ext.refs[m.off+cur-m.vpn : m.off+chunkEnd-m.vpn]
		shared := false
		for _, r := range refs {
			if r > 1 {
				shared = true
				break
			}
		}
		if !shared {
			// Every page already private: a re-write is free.
			cur = chunkEnd
			continue
		}
		// Privatize the written window: shared pages COW-fault into the new
		// extent; already-private pages migrate with their count intact
		// (refs 1 -> this space is the sole owner, so the old slot orphans
		// to 0 and the page is simply re-homed).
		ne := &extent{refs: make([]int32, len(refs))}
		for j, r := range refs {
			if r > 1 {
				refs[j]--
				faults++
			} else {
				refs[j] = 0
			}
			ne.refs[j] = 1
		}
		lo := cur - m.vpn
		hi := m.vpn + m.n - chunkEnd
		repl := make([]mapping, 0, 3)
		if lo > 0 {
			repl = append(repl, mapping{vpn: m.vpn, n: lo, off: m.off, ext: m.ext})
		}
		repl = append(repl, mapping{vpn: cur, n: chunkEnd - cur, off: 0, ext: ne})
		if hi > 0 {
			repl = append(repl, mapping{vpn: chunkEnd, n: hi, off: m.off + m.n - hi, ext: m.ext})
		}
		as.splice(i, repl...)
		cur = chunkEnd
	}
	return faults
}

// demandPage maps [start, end) as fresh private pages, inserting the new
// mapping at index i (the caller's search result for start).
func (as *AddressSpace) demandPage(i, start, end int) {
	as.splice2(i, mapping{vpn: start, n: end - start, off: 0, ext: newExtent(end - start)})
	if end > as.next {
		as.next = end
	}
	as.released = false
}

// splice2 inserts a mapping before index i (without replacing anything).
func (as *AddressSpace) splice2(i int, m mapping) {
	as.maps = append(as.maps, mapping{})
	copy(as.maps[i+1:], as.maps[i:])
	as.maps[i] = m
}

// Release drops every page mapping, decrementing shared reference counts.
// The address space is empty (but reusable) afterwards. Release is
// idempotent: a second call is a no-op, so racing teardown paths (keep-alive
// eviction vs fork-error cleanup) cannot double-decrement shared extents.
func (as *AddressSpace) Release() {
	if as.released {
		return
	}
	as.released = true
	for _, m := range as.maps {
		refs := m.ext.refs[m.off : m.off+m.n]
		for i := range refs {
			refs[i]--
		}
	}
	as.maps = nil
}

// Released reports whether the address space has been released and not
// mapped into since.
func (as *AddressSpace) Released() bool { return as.released }

// RSSPages returns the resident set size in pages: every page mapped into
// this address space, shared or not.
func (as *AddressSpace) RSSPages() int {
	n := 0
	for _, m := range as.maps {
		n += m.n
	}
	return n
}

// PSSPages returns the proportional set size in pages: each page counts
// 1/refs, so shared pages are split among their sharers — the metric the
// paper uses to show cfork's memory savings (Fig 11c).
func (as *AddressSpace) PSSPages() float64 {
	var pss float64
	for _, m := range as.maps {
		for _, r := range m.ext.refs[m.off : m.off+m.n] {
			pss += 1.0 / float64(r)
		}
	}
	return pss
}

// SharedPages returns the number of mapped pages with more than one
// reference.
func (as *AddressSpace) SharedPages() int {
	n := 0
	for _, m := range as.maps {
		for _, r := range m.ext.refs[m.off : m.off+m.n] {
			if r > 1 {
				n++
			}
		}
	}
	return n
}
