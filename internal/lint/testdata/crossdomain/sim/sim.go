// Stand-in for repro/internal/sim: the sharded kernel's raw cross-domain
// Send primitive.
package sim

// Env stands in for a per-domain simulation environment.
type Env struct{ Domain int }

// Duration mirrors sim.Duration.
type Duration int64

// Sharded stands in for the sharded parallel kernel.
type Sharded struct{}

// Send schedules fn on domain `to` at a conservative barrier.
func (sh *Sharded) Send(from *Env, to int, delay Duration, fn func()) {}
