package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig2a",
		Title: "DPU for higher function density",
		Paper: "Concurrent instances: 1000 (CPU) -> 1256 (+1 DPU) -> 1512 (+2 DPU)",
		Run:   runFig2a,
	})
	register(Experiment{
		ID:    "fig2b",
		Title: "FPGA for better performance (matrix functions)",
		Paper: "FPGA functions are 2.15-2.82x faster (CPU: mscale 192us, madd 324us, vmult 3551us)",
		Run:   runFig2b,
	})
}

// runFig2a measures the maximum concurrent instances of the Python
// image-processing function as DPUs are added, by actually placing held
// instances until the machine is full.
func runFig2a() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 2a / §6.2 — Function density per machine",
		Note:   "Python image-processing; instances placed until capacity is exhausted",
		Header: []string{"machine", "max concurrent instances", "vs CPU-only"},
	}
	base := 0
	for _, dpus := range []int{0, 1, 2} {
		var placed int
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{DPUs: dpus}, molecule.DefaultOptions())
			if err := rt.Deploy(p, "image-processing",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
			for {
				//lint:released density probe: instances are held until the sandbox run ends — the experiment measures how many fit, not a request lifecycle
				if _, err := rt.AcquireHeld(p, "image-processing", -1); err != nil {
					break
				}
				placed++
			}
		})
		label := "CPU"
		if dpus > 0 {
			label = fmt.Sprintf("CPU + %d DPU", dpus)
		}
		if dpus == 0 {
			base = placed
		}
		t.AddRow(label, fmt.Sprintf("%d", placed), fr(float64(placed)/float64(base)))
	}
	return []*metrics.Table{t}
}

// runFig2b compares CPU and FPGA latencies for the three matrix functions.
func runFig2b() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 2b / §6.2 — Matrix functions: CPU vs FPGA",
		Note:   "warm instances; FPGA latency includes DMA transfers and wrapper command",
		Header: []string{"function", "CPU latency", "FPGA latency", "speedup"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0]
		for _, fn := range []string{"mscale", "madd", "vmult"} {
			if err := rt.Deploy(p, fn, molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
				panic(err)
			}
		}
		for _, fn := range []string{"mscale", "madd", "vmult"} {
			rt.Invoke(p, fn, molecule.InvokeOptions{PU: 0}) // warm the CPU instance
			cpu, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: 0})
			if err != nil {
				panic(err)
			}
			fp, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: fpga.ID})
			if err != nil {
				panic(err)
			}
			t.AddRow(fn, fd(cpu.Handler), fd(fp.Handler),
				fr(float64(cpu.Handler)/float64(fp.Handler)))
		}
	})
	return []*metrics.Table{t}
}

// measureWarm invokes twice and returns the second (warm) result.
func measureWarm(p *sim.Proc, rt *molecule.Runtime, fn string, opts molecule.InvokeOptions) (molecule.Result, error) {
	if _, err := rt.Invoke(p, fn, opts); err != nil {
		return molecule.Result{}, err
	}
	return rt.Invoke(p, fn, opts)
}

var _ = measureWarm // used by sibling experiment files
