package bench

// Cluster soak: the scaling workload behind BENCH_cluster.json.
//
// Every sweep point drives the same seeded loadgen stream through a Boss
// fronting M simulated machines (each its own hw.Machine + Molecule runtime
// on its own kernel domain, connected by the network interconnect). The
// arrival schedule is identical at every point; what changes is how much
// hardware absorbs it. With one machine the cluster saturates — requests
// park in the boss's central queue and drain long after arrivals stop — so
// the run's virtual span stretches far past the load window. More machines
// drain the same stream closer to real time, so served requests per
// simulated second climbs: that ratio is the scaling curve.
//
// Throughput here is virtual-time throughput (requests per simulated
// second), not wall-clock: the curve measures the control plane's placement
// quality, independent of how many OS cores happen to drive the kernel.
// Each timed point is re-run at a different OS worker count and must
// produce the byte-identical fingerprint before it is reported, so the
// curve can never come from a divergent simulation.

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/metrics"
)

// clusterSoakConfig is the checked-in sweep shape: hot enough that every
// point runs saturated, so throughput reflects how well the boss keeps the
// fleet's instance slots busy rather than the arrival rate.
func clusterSoakConfig(machines int) cluster.SoakConfig {
	cfg := cluster.DefaultSoakConfig(machines)
	cfg.HW = hw.Config{DPUs: 2}
	cfg.Capacity = 4
	// A wider, flatter function population than the default soak: with
	// eight homes and mild skew the rendezvous map spreads load evenly, so
	// the multi-machine points scale instead of colliding on one hot home.
	cfg.Functions = []string{
		"pyaes", "matmul", "image-resize", "chameleon",
		"gzip-compression", "linpack", "image-processing", "helloworld",
	}
	cfg.ZipfS = 1.1
	cfg.RatePerSec = 600
	cfg.Duration = 4 * time.Second
	return cfg
}

// ClusterSoakResult is one sweep point, serialized into BENCH_cluster.json.
type ClusterSoakResult struct {
	Machines    int     `json:"machines"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Stolen      int     `json:"stolen"`
	QueuedPeak  int     `json:"queued_peak"`
	Events      int64   `json:"events"`
	VirtualMS   float64 `json:"virtual_ms"`
	ReqPerVSec  float64 `json:"req_per_virtual_sec"`
	Speedup     float64 `json:"speedup_vs_machines1"` // filled by ClusterSoakSweep
	WallMS      float64 `json:"wall_ms"`
	Served      []int   `json:"served_per_machine"`
	Fingerprint string  `json:"fingerprint"`
}

// ClusterSoak runs the soak at one machine count, verifying byte-identity
// across the given kernel worker counts (the first entry is the timed,
// reported run).
func ClusterSoak(machines int, workerCounts []int) (ClusterSoakResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}
	cfg := clusterSoakConfig(machines)

	start := time.Now()
	res, err := cluster.Soak(cfg, workerCounts[0])
	wall := time.Since(start)
	if err != nil {
		return ClusterSoakResult{}, fmt.Errorf("machines=%d workers=%d: %w", machines, workerCounts[0], err)
	}
	fp := res.Fingerprint()
	for _, w := range workerCounts[1:] {
		other, err := cluster.Soak(cfg, w)
		if err != nil {
			return ClusterSoakResult{}, fmt.Errorf("machines=%d workers=%d: %w", machines, w, err)
		}
		if ofp := other.Fingerprint(); ofp != fp {
			return ClusterSoakResult{}, fmt.Errorf("machines=%d workers=%d diverged:\n  got  %s\n  want %s", machines, w, ofp, fp)
		}
	}
	if res.Stats.Errors != 0 {
		return ClusterSoakResult{}, fmt.Errorf("machines=%d: soak produced %d errors", machines, res.Stats.Errors)
	}

	vsec := time.Duration(res.FinalTime).Seconds()
	out := ClusterSoakResult{
		Machines:    machines,
		Requests:    res.Stats.Requests,
		Errors:      res.Stats.Errors,
		Stolen:      res.Stolen,
		QueuedPeak:  res.QueuedPeak,
		Events:      res.Events,
		VirtualMS:   time.Duration(res.FinalTime).Seconds() * 1000,
		ReqPerVSec:  float64(res.Stats.Requests) / vsec,
		WallMS:      float64(wall.Nanoseconds()) / 1e6,
		Served:      res.Served,
		Fingerprint: fp,
	}
	return out, nil
}

// ClusterSoakSweep runs the soak at each machine count (the first must be
// 1, the baseline) and computes virtual-throughput speedups relative to
// the single-machine point. Every point re-runs at each worker count in
// workerCounts and must fingerprint-match before it is reported.
func ClusterSoakSweep(machineCounts, workerCounts []int) ([]ClusterSoakResult, error) {
	if len(machineCounts) == 0 || machineCounts[0] != 1 {
		return nil, fmt.Errorf("sweep must start at machines=1 (the baseline), got %v", machineCounts)
	}
	out := make([]ClusterSoakResult, 0, len(machineCounts))
	for _, m := range machineCounts {
		r, err := ClusterSoak(m, workerCounts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	base := out[0].ReqPerVSec
	for i := range out {
		out[i].Speedup = out[i].ReqPerVSec / base
	}
	return out, nil
}

// ClusterSoakTable renders a sweep as a report table.
func ClusterSoakTable(results []ClusterSoakResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "Cluster soak — virtual req/sec vs machine count",
		Note:   "same seeded arrival stream at every point; fingerprint-checked across kernel worker counts",
		Header: []string{"machines", "requests", "stolen", "qpeak", "virtual ms", "req/vsec", "speedup", "wall ms"},
	}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", r.Machines),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Stolen),
			fmt.Sprintf("%d", r.QueuedPeak),
			fmt.Sprintf("%.1f", r.VirtualMS),
			fmt.Sprintf("%.1f", r.ReqPerVSec),
			fr(r.Speedup),
			fmt.Sprintf("%.1f", r.WallMS),
		)
	}
	return t
}
