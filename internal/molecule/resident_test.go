package molecule

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestResidentServesRequests(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		r, err := rt.StartResident(p, "matmul", 0)
		if err != nil {
			t.Fatal(err)
		}
		lat1, err := r.Call(p, workloads.Arg{})
		if err != nil {
			t.Fatal(err)
		}
		lat2, err := r.Call(p, workloads.Arg{})
		if err != nil {
			t.Fatal(err)
		}
		// Steady-state calls: dispatch + exec (~1.6ms), no startup.
		if lat2 > 3*time.Millisecond {
			t.Errorf("steady call = %v, want ~1.6ms", lat2)
		}
		if lat1 < lat2 {
			t.Errorf("first call (%v) cheaper than second (%v)?", lat1, lat2)
		}
		if r.Served() != 2 {
			t.Errorf("served = %d, want 2", r.Served())
		}
		r.Stop(p)
		if _, err := r.Call(p, workloads.Arg{}); err == nil {
			t.Error("call after Stop succeeded")
		}
		r.Stop(p) // idempotent
	})
}

// TestResidentQueueing: a single-threaded resident serializes concurrent
// callers, so the k-th caller waits ~k execution times.
func TestResidentQueueing(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil { // 19.5ms exec
			t.Fatal(err)
		}
		r, err := rt.StartResident(p, "pyaes", 0)
		if err != nil {
			t.Fatal(err)
		}
		const callers = 4
		lats := make([]time.Duration, callers)
		wg := sim.NewWaitGroup(rt.Env)
		for i := 0; i < callers; i++ {
			i := i
			wg.Add(1)
			rt.Env.Spawn("caller", func(cp *sim.Proc) {
				defer wg.Done()
				lat, err := r.Call(cp, workloads.Arg{})
				if err != nil {
					t.Error(err)
					return
				}
				lats[i] = lat
			})
		}
		wg.Wait(p)
		// Latencies spread by roughly one execution each.
		exec := 19500 * time.Microsecond
		for i := 1; i < callers; i++ {
			gap := lats[i] - lats[i-1]
			if gap < exec/2 || gap > 2*exec {
				t.Errorf("caller %d queueing gap = %v, want ~%v", i, gap, exec)
			}
		}
		r.Stop(p)
	})
}

// TestResidentScaleOut: two residents on different PUs halve the makespan
// of a request batch versus one resident.
func TestResidentScaleOut(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil {
			t.Fatal(err)
		}
		batch := func(rs []*Resident, calls int) time.Duration {
			start := p.Now()
			wg := sim.NewWaitGroup(rt.Env)
			for i := 0; i < calls; i++ {
				i := i
				wg.Add(1)
				rt.Env.Spawn("c", func(cp *sim.Proc) {
					defer wg.Done()
					if _, err := rs[i%len(rs)].Call(cp, workloads.Arg{}); err != nil {
						t.Error(err)
					}
				})
			}
			wg.Wait(p)
			return p.Now().Sub(start)
		}
		r1, err := rt.StartResident(p, "pyaes", 0)
		if err != nil {
			t.Fatal(err)
		}
		one := batch([]*Resident{r1}, 8)
		r2, err := rt.StartResident(p, "pyaes", 0)
		if err != nil {
			t.Fatal(err)
		}
		two := batch([]*Resident{r1, r2}, 8)
		ratio := float64(one) / float64(two)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("scale-out speedup = %.2f, want ~2x (one=%v two=%v)", ratio, one, two)
		}
		r1.Stop(p)
		r2.Stop(p)
	})
}

func TestResidentOnDPUViaNIPC(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		r, err := rt.StartResident(p, "matmul", dpu)
		if err != nil {
			t.Fatal(err)
		}
		if r.PU() != dpu {
			t.Errorf("resident on PU %d, want DPU %d", r.PU(), dpu)
		}
		lat, err := r.Call(p, workloads.Arg{})
		if err != nil {
			t.Fatal(err)
		}
		// DPU exec (8.8ms) + nIPC round trip; must be well under the
		// baseline network path yet above the local-CPU latency.
		if lat < 8*time.Millisecond || lat > 15*time.Millisecond {
			t.Errorf("DPU resident call = %v, want ~9-10ms", lat)
		}
		r.Stop(p)
	})
}

func TestStartResidentUndeployed(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.StartResident(p, "nope", 0); err == nil {
			t.Error("resident for undeployed function started")
		}
	})
}
