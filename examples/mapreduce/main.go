// MapReduce: a fan-out/fan-in DAG — one splitter, parallel mappers, one
// reducer — executing on Molecule's general DAG engine, with the word-count
// computation performed for real while the latency comes from the model.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

const corpus = `serverless computing on heterogeneous computers enables both
general purpose devices and domain specific accelerators for serverless
applications the vectorized sandbox abstraction handles hardware
heterogeneity while the distributed shim handles the multi OS system
serverless functions start in milliseconds with container fork`

func main() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1})

	env.Spawn("driver", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		for _, fn := range workloads.MapReduceChain() {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				log.Fatal(err)
			}
		}

		// Real computation: split -> map (parallel) -> reduce.
		const mappers = 2
		shards := workloads.SplitText(corpus, mappers)
		parts := make([]map[string]int, len(shards))
		for i, shard := range shards {
			parts[i] = workloads.MapWordCount(shard)
		}
		counts := workloads.ReduceWordCounts(parts)

		// Modeled execution: the same shape as a fan-out DAG on the machine,
		// warm vs the serialized equivalent.
		dag := molecule.MapReduceDAG(mappers)
		if _, err := rt.InvokeDAG(p, dag, molecule.DAGOptions{}); err != nil {
			log.Fatal(err) // boot instances
		}
		fan, err := rt.InvokeDAG(p, dag, molecule.DAGOptions{})
		if err != nil {
			log.Fatal(err)
		}
		serial, err := rt.InvokeDAG(p, molecule.Chain("mr-splitter", "mr-mapper", "mr-mapper", "mr-reducer"),
			molecule.DAGOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fan-out DAG (%d mappers): %v   serialized: %v   (%.2fx from parallel mappers)\n",
			mappers, fan.Total, serial.Total, float64(serial.Total)/float64(fan.Total))
		fmt.Printf("node finish times: %v\n\n", fan.NodeFinish)

		// Top words from the real computation.
		type wc struct {
			w string
			c int
		}
		var list []wc
		for w, c := range counts {
			list = append(list, wc{w, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].c != list[j].c {
				return list[i].c > list[j].c
			}
			return list[i].w < list[j].w
		})
		fmt.Println("top words (real word count):")
		for _, e := range list[:5] {
			fmt.Printf("  %-14s %d\n", e.w, e.c)
		}
	})
	env.Run()
}
