package lint

// Layer classifies one package under internal/ for the moleculelint suite.
// The table below is the single checked-in source of truth: the layering
// analyzer enforces the Level ordering and Deny lists, and the simtime,
// detrand, and maporder analyzers scope themselves by the Sim and Report
// flags. TestTableCoversInternalPackages asserts every package directory
// under internal/ has an entry, so a new package cannot dodge the rules by
// omission — it must be classified here first.
type Layer struct {
	// Level is the package's height in the import DAG. A package may import
	// only internal packages at a strictly lower level, which makes cycles
	// and layer inversions structurally impossible.
	Level int

	// Sim marks simulation-facing packages: everything that runs under the
	// virtual clock and feeds the golden reports and seeded chaos soaks.
	// simtime (no wall-clock calls) and detrand (no unseeded randomness)
	// apply to these packages.
	Sim bool

	// Report marks packages whose map iteration order can leak into
	// report, trace, metric, or placement output. maporder applies here.
	Report bool

	// Deny lists imports (by table key) that are forbidden even though the
	// Level ordering alone would allow them. The base layers deny faults,
	// obs, molecule, and bench: fault hooks and metric sinks reach them
	// only through consumer-side interfaces (hw.FaultInjector,
	// xpu.MetricSink, ...), never by direct import, so the simulation core
	// stays byte-identical when those subsystems are detached.
	Deny []string
}

// baseDeny is the shared deny list of the six base layers.
var baseDeny = []string{"faults", "obs", "molecule", "bench"}

// Table assigns every package under internal/ its layer. Keys are package
// paths relative to repro/internal/.
var Table = map[string]Layer{
	// Level 0: leaves. The simulation kernel, pure data, and self-contained
	// utilities. These import nothing from internal/.
	"sim":    {Level: 0, Sim: true, Report: true, Deny: baseDeny},
	"mem":    {Level: 0, Sim: true, Deny: baseDeny},
	"params": {Level: 0, Sim: true},
	"metrics": {
		Level: 0, Report: true,
	},
	"lint":          {Level: 0},
	"lint/linttest": {Level: 0},

	// Level 1: directly on the kernel.
	"hw":           {Level: 1, Sim: true, Deny: baseDeny},
	"obs":          {Level: 1, Report: true},
	"sim/simbench": {Level: 1, Sim: true},

	// Level 2: single-PU operating pieces, the fault plan, and the post-hoc
	// span analyzer (imports obs + metrics; produces report tables).
	"localos":    {Level: 2, Sim: true, Deny: baseDeny},
	"storage":    {Level: 2, Sim: true},
	"faults":     {Level: 2, Sim: true},
	"obs/attrib": {Level: 2, Report: true},

	// Level 3: the distributed shim and language runtimes.
	"xpu":  {Level: 3, Sim: true, Deny: baseDeny},
	"lang": {Level: 3, Sim: true},

	// Level 4: sandboxes and workload definitions.
	"sandbox":   {Level: 4, Sim: true, Deny: baseDeny},
	"workloads": {Level: 4, Sim: true, Report: true},

	// Level 5: the serverless runtime and its peers.
	"molecule": {Level: 5, Sim: true, Report: true},
	"baseline": {Level: 5, Sim: true},
	"ocicli":   {Level: 5, Sim: true},

	// Level 6: drivers over the runtime.
	"loadgen": {Level: 6, Sim: true},

	// Level 7: the cluster control plane. It sits above loadgen because the
	// cluster soak drives the boss with the standard traffic model.
	"cluster": {Level: 7, Sim: true, Report: true},

	// Level 8-9: the experiment harness and its HTTP front end. These
	// produce the human-facing output and may read the wall clock (to
	// report harness runtime), so Sim is off — but their own map iteration
	// still must not reorder that output.
	"bench": {Level: 8, Report: true},
	"httpd": {Level: 9, Report: true},
}
