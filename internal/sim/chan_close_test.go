package sim

import "testing"

// A sender parked on a full buffer must be woken by Close instead of
// hanging forever — the race behind the XPU-FIFO close bug.
func TestCloseWakesBlockedSender(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 1)
	var sent, woke bool
	env.Spawn("writer", func(p *Proc) {
		if !ch.SendOrClosed(p, 1) {
			t.Error("first send should fit the buffer")
		}
		sent = ch.SendOrClosed(p, 2) // parks: buffer full, no receiver
		woke = true
	})
	env.Spawn("closer", func(p *Proc) {
		p.Sleep(10)
		ch.Close()
	})
	env.Run()
	if !woke {
		t.Fatal("blocked sender never woke after Close")
	}
	if sent {
		t.Error("send woken by Close reported delivery")
	}
	if got := env.BlockedProcs(); len(got) != 0 {
		t.Errorf("blocked procs after Close: %v", got)
	}
}

func TestCloseWakesBlockedSendPanics(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	var panicked bool
	env.Spawn("writer", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		ch.Send(p, 1) // rendezvous: parks with no receiver
	})
	env.Spawn("closer", func(p *Proc) {
		p.Sleep(10)
		ch.Close()
	})
	env.Run()
	if !panicked {
		t.Error("Send woken by Close should panic like a native closed-channel send")
	}
}

func TestSendOrClosedUpfront(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 4)
	env.Spawn("writer", func(p *Proc) {
		ch.Close()
		if ch.SendOrClosed(p, 1) {
			t.Error("SendOrClosed on an already-closed channel reported delivery")
		}
		if ch.Len() != 0 {
			t.Error("value leaked into a closed channel's buffer")
		}
	})
	env.Run()
}

// A sender woken by a receiver (the normal path) still reports delivery.
func TestSendOrClosedDeliveredAfterPark(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	env.Spawn("writer", func(p *Proc) {
		if !ch.SendOrClosed(p, 7) {
			t.Error("rendezvous send should report delivery")
		}
	})
	env.Spawn("reader", func(p *Proc) {
		p.Sleep(5)
		if v, ok := ch.Recv(p); !ok || v != 7 {
			t.Errorf("Recv = (%d, %v), want (7, true)", v, ok)
		}
	})
	env.Run()
}
