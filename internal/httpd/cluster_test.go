package httpd

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/hw"
	"repro/internal/molecule"
)

func newTestClusterServer(t *testing.T, machines int) (*ClusterServer, *httptest.Server) {
	t.Helper()
	s, err := NewClusterServer(machines, hw.Config{DPUs: 1}, molecule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestClusterDeployInvokeRoundTrip(t *testing.T) {
	_, ts := newTestClusterServer(t, 2)
	code, body := post(t, ts, "/deploy", url.Values{"fn": {"pyaes"}, "profiles": {"cpu"}})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	code, body = post(t, ts, "/invoke", url.Values{"fn": {"pyaes"}})
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	if body["fn"] != "pyaes" {
		t.Fatalf("invoke reply fn = %v", body["fn"])
	}
	m, ok := body["machine"].(float64)
	if !ok || m < 0 || m > 1 {
		t.Fatalf("invoke reply machine = %v", body["machine"])
	}
	// Repeat invokes keep landing on the warm machine (affinity routing).
	for i := 0; i < 3; i++ {
		_, again := post(t, ts, "/invoke", url.Values{"fn": {"pyaes"}})
		if again["machine"] != body["machine"] {
			t.Fatalf("affinity broke: machine %v then %v", body["machine"], again["machine"])
		}
		if again["cold"] != false {
			t.Fatalf("repeat invoke was cold: %v", again)
		}
	}
}

func TestClusterChainAndStats(t *testing.T) {
	_, ts := newTestClusterServer(t, 2)
	for _, fn := range []string{"mr-splitter", "mr-mapper", "mr-reducer"} {
		if code, body := post(t, ts, "/deploy", url.Values{"fn": {fn}}); code != http.StatusOK {
			t.Fatalf("deploy %s: %d %v", fn, code, body)
		}
	}
	code, body := post(t, ts, "/chain", url.Values{"fns": {"mr-splitter,mr-mapper,mr-reducer"}})
	if code != http.StatusOK {
		t.Fatalf("chain: %d %v", code, body)
	}
	if body["total_ms"].(float64) <= 0 {
		t.Fatalf("chain total = %v", body["total_ms"])
	}
	code, body = get(t, ts, "/cluster/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	machines := body["machines"].([]any)
	if len(machines) != 2 {
		t.Fatalf("stats machines = %d", len(machines))
	}
	served := 0.0
	for _, m := range machines {
		served += m.(map[string]any)["served"].(float64)
	}
	if served == 0 {
		t.Fatalf("no machine served anything: %v", body)
	}
}

func TestClusterDrainRouting(t *testing.T) {
	s, ts := newTestClusterServer(t, 2)
	if code, body := post(t, ts, "/deploy", url.Values{"fn": {"pyaes"}}); code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	_, body := post(t, ts, "/invoke", url.Values{"fn": {"pyaes"}})
	home := int(body["machine"].(float64))
	if code, b := post(t, ts, "/cluster/drain", url.Values{"worker": {"1000"}}); code != http.StatusBadRequest {
		t.Fatalf("drain bad worker: %d %v", code, b)
	}
	if code, b := post(t, ts, "/cluster/drain", url.Values{"worker": {strconv.Itoa(home)}}); code != http.StatusOK {
		t.Fatalf("drain: %d %v", code, b)
	}
	_, body = post(t, ts, "/invoke", url.Values{"fn": {"pyaes"}})
	if got := int(body["machine"].(float64)); got == home {
		t.Fatalf("drained machine %d still serving", got)
	}
	if code, b := post(t, ts, "/cluster/undrain", url.Values{"worker": {strconv.Itoa(home)}}); code != http.StatusOK {
		t.Fatalf("undrain: %d %v", code, b)
	}
	_, body = post(t, ts, "/invoke", url.Values{"fn": {"pyaes"}})
	if got := int(body["machine"].(float64)); got != home {
		t.Fatalf("undrained home %d not serving (got %d)", home, got)
	}
	_ = s
}

func TestClusterUnknownFunction(t *testing.T) {
	_, ts := newTestClusterServer(t, 1)
	if code, body := post(t, ts, "/invoke", url.Values{"fn": {"nope"}}); code != http.StatusBadRequest {
		t.Fatalf("unknown fn: %d %v", code, body)
	}
}
