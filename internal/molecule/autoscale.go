package molecule

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// AutoScalerOptions tune a function's resident-pool autoscaler.
type AutoScalerOptions struct {
	// Min and Max bound the resident pool size.
	Min, Max int
	// TargetQueue is the queueing-delay threshold that triggers scale-out:
	// when a request waits longer than this for a free resident, a new one
	// is started (cold start off the request path).
	TargetQueue time.Duration
	// IdleTimeout retires residents that served nothing for this long.
	IdleTimeout time.Duration
}

// DefaultAutoScalerOptions returns sane bounds.
func DefaultAutoScalerOptions() AutoScalerOptions {
	return AutoScalerOptions{Min: 1, Max: 32, TargetQueue: 5 * time.Millisecond, IdleTimeout: 30 * time.Second}
}

// AutoScaler maintains a pool of resident instances for one function,
// growing it when requests queue and shrinking it when residents idle —
// the auto-scaling loop a serverless platform runs per function.
type AutoScaler struct {
	rt   *Runtime
	fn   string
	pu   hw.PUID
	opts AutoScalerOptions

	idle     []*Resident
	total    int
	reserved int // scale-outs in flight, counted against Max
	waiters  *sim.Chan[*Resident]
	lastBusy sim.Time

	scaleOuts, scaleIns int
	maxObserved         int
	closed              bool
}

// NewAutoScaler builds an autoscaler for fn on the given PU (use -1 for
// placement policy), pre-starting Min residents.
func (rt *Runtime) NewAutoScaler(p *sim.Proc, fn string, pu hw.PUID, opts AutoScalerOptions) (*AutoScaler, error) {
	if _, err := rt.Deployment(fn); err != nil {
		return nil, err
	}
	if opts.Min < 1 {
		opts.Min = 1
	}
	if opts.Max < opts.Min {
		opts.Max = opts.Min
	}
	a := &AutoScaler{
		rt: rt, fn: fn, pu: pu, opts: opts,
		waiters: sim.NewChan[*Resident](rt.Env, 0), // rendezvous: hand-off only to parked waiters
	}
	for i := 0; i < opts.Min; i++ {
		r, err := rt.StartResident(p, fn, pu)
		if err != nil {
			return nil, err
		}
		a.idle = append(a.idle, r)
		a.total++
	}
	a.maxObserved = a.total
	return a, nil
}

// Stats reports (current residents, peak residents, scale-outs, scale-ins).
func (a *AutoScaler) Stats() (current, peak, outs, ins int) {
	return a.total, a.maxObserved, a.scaleOuts, a.scaleIns
}

// Serve handles one request: take an idle resident, or wait TargetQueue for
// one and scale out if none frees up. Returns the end-to-end latency
// including queueing.
func (a *AutoScaler) Serve(p *sim.Proc, arg workloads.Arg) (time.Duration, error) {
	start := p.Now()
	r, err := a.obtain(p)
	if err != nil {
		return 0, err
	}
	if _, err := r.Call(p, arg); err != nil {
		return 0, err
	}
	a.replace(p, r)
	a.lastBusy = p.Now()
	return p.Now().Sub(start), nil
}

// obtain returns an idle resident, waiting up to TargetQueue before scaling
// out (or indefinitely once at Max).
func (a *AutoScaler) obtain(p *sim.Proc) (*Resident, error) {
	if len(a.idle) > 0 {
		r := a.idle[len(a.idle)-1]
		a.idle = a.idle[:len(a.idle)-1]
		return r, nil
	}
	if a.total+a.reserved < a.opts.Max {
		a.reserved++ // hold a slot against concurrent scale-outs
		// Wait briefly for a resident to free up; otherwise scale out.
		deadline := sim.NewEvent(a.rt.Env)
		a.rt.Env.AfterFunc(a.opts.TargetQueue, func() { deadline.Trigger(nil) })
		got := sim.NewEvent(a.rt.Env)
		abandoned := false
		a.rt.Env.Spawn("as-wait", func(wp *sim.Proc) {
			r, ok := a.waiters.Recv(wp)
			if !ok {
				return
			}
			if abandoned {
				// The requester scaled out instead; return the resident to
				// the pool rather than stranding it.
				a.replace(wp, r)
				return
			}
			got.Trigger(r)
		})
		idx, payload := sim.WaitAny(p, got, deadline)
		if idx == 0 {
			a.reserved--
			return payload.(*Resident), nil
		}
		abandoned = true
		got.Trigger(nil) // release WaitAny's relay on the losing event
		// Timed out: scale out off the idle path.
		r, err := a.rt.StartResident(p, a.fn, a.pu)
		a.reserved--
		if err != nil {
			return nil, err
		}
		a.total++
		a.scaleOuts++
		if o := a.rt.obs; o != nil {
			o.Counter("molecule_autoscale_scale_outs_total", obs.L("fn", a.fn)).Inc()
		}
		if a.total > a.maxObserved {
			a.maxObserved = a.total
		}
		return r, nil
	}
	// At Max: block until a resident frees.
	r, ok := a.waiters.Recv(p)
	if !ok {
		return nil, fmt.Errorf("molecule: autoscaler for %s closed", a.fn)
	}
	return r, nil
}

// replace returns a resident to the pool, handing it directly to a waiter
// when one is queued. After Close, late completions retire their resident
// so no server process leaks.
func (a *AutoScaler) replace(p *sim.Proc, r *Resident) {
	if a.closed {
		r.Stop(p)
		a.total--
		return
	}
	if a.waiters.TrySend(r) {
		return
	}
	a.idle = append(a.idle, r)
}

// ShrinkIdle retires idle residents beyond Min if the pool has been idle
// for IdleTimeout; called periodically by the platform (or tests).
func (a *AutoScaler) ShrinkIdle(p *sim.Proc) int {
	if p.Now().Sub(a.lastBusy) < a.opts.IdleTimeout {
		return 0
	}
	retired := 0
	for len(a.idle) > 0 && a.total > a.opts.Min {
		r := a.idle[len(a.idle)-1]
		a.idle = a.idle[:len(a.idle)-1]
		r.Stop(p)
		a.total--
		a.scaleIns++
		if o := a.rt.obs; o != nil {
			o.Counter("molecule_autoscale_scale_ins_total", obs.L("fn", a.fn)).Inc()
		}
		retired++
	}
	return retired
}

// Close stops every idle resident; in-flight residents retire as their
// requests complete.
func (a *AutoScaler) Close(p *sim.Proc) {
	if a.closed {
		return
	}
	a.closed = true
	for _, r := range a.idle {
		r.Stop(p)
		a.total--
	}
	a.idle = nil
	a.waiters.Close()
}
