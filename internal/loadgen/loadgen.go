// Package loadgen generates steady-state serverless request streams against
// a Molecule runtime: Poisson arrivals with Zipf-distributed function
// popularity, the standard model for production FaaS traces (Shahrad et al.,
// which the paper cites for its keep-alive policies).
//
// The generator is deterministic for a given seed — arrivals are scheduled
// in virtual time, and every request records its outcome into a
// per-arrival slot that is folded into Stats only after the last request
// completes, so two runs with the same configuration produce identical
// results at any shard worker count.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Config describes one load-generation run.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Functions is the invocation population (all must be deployed).
	Functions []string
	// ZipfS is the popularity skew (>1; larger = more skewed). 0 selects a
	// uniform popularity.
	ZipfS float64
	// RatePerSec is the mean Poisson arrival rate.
	RatePerSec float64
	// Duration is the virtual-time window during which requests arrive.
	Duration time.Duration
	// Arg parameterizes every invocation's cost model.
	Arg workloads.Arg
	// Chains, when non-empty, mixes chain invocations into the stream:
	// with probability ChainFraction a request invokes a random chain
	// instead of a single function.
	Chains        [][]string
	ChainFraction float64
}

// Stats aggregates one run's outcome. Latency holds single-function
// requests only; chain latencies go exclusively to ChainLatency, so the
// headline p50/p99 are not skewed by multi-function totals.
type Stats struct {
	Requests   int
	ColdStarts int
	Errors     int
	Latency    metrics.Recorder
	PerFunc    map[string]int
	// Chains counts chain-shaped requests and their latencies separately.
	Chains       int
	ChainLatency metrics.Recorder
}

// ColdRate returns the fraction of requests that cold-started.
func (s *Stats) ColdRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Requests)
}

// Fingerprint renders the run's outcome as a canonical string — the
// byte-identity witness compared across shard worker counts.
func (s *Stats) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d cold=%d err=%d chains=%d", s.Requests, s.ColdStarts, s.Errors, s.Chains)
	fmt.Fprintf(&b, " lat[n=%d avg=%v p50=%v p99=%v max=%v]",
		s.Latency.Count(), s.Latency.Avg(), s.Latency.Percentile(50), s.Latency.Percentile(99), s.Latency.Max())
	fmt.Fprintf(&b, " chain[n=%d avg=%v p99=%v]",
		s.ChainLatency.Count(), s.ChainLatency.Avg(), s.ChainLatency.Percentile(99))
	fns := make([]string, 0, len(s.PerFunc))
	for fn := range s.PerFunc {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		fmt.Fprintf(&b, " %s=%d", fn, s.PerFunc[fn])
	}
	return b.String()
}

// Invoker is the target a request stream drives: a single machine's
// Molecule runtime satisfies it directly, and the cluster boss/gateway
// adapt to it, so the same traffic model exercises one box or a whole
// cluster.
type Invoker interface {
	Invoke(p *sim.Proc, funcName string, opts molecule.InvokeOptions) (molecule.Result, error)
	InvokeChain(p *sim.Proc, names []string, opts molecule.ChainOptions) (molecule.ChainResult, error)
}

// outcome is one request's result slot, written by exactly one request
// process and read only after every request finished — no shared-state
// mutation races, and folding in arrival order keeps Stats deterministic.
type outcome struct {
	err   bool
	cold  int
	chain bool
	total time.Duration
}

// Run drives the configured request stream against rt from process p,
// returning once every request has completed. Requests execute concurrently
// (each in its own simulation process), so warm-pool contention and
// cold-start amplification behave as they would under real load.
func Run(p *sim.Proc, rt *molecule.Runtime, cfg Config) (*Stats, error) {
	for _, fn := range cfg.Functions {
		if _, err := rt.Deployment(fn); err != nil {
			return nil, err
		}
	}
	return Drive(p, rt, cfg)
}

// Drive is Run against any Invoker (a runtime, a gateway, a cluster boss);
// it does not pre-check deployments, since lazily-deploying targets have
// nothing deployed until first use.
func Drive(p *sim.Proc, target Invoker, cfg Config) (*Stats, error) {
	if len(cfg.Functions) == 0 {
		return nil, fmt.Errorf("loadgen: no functions")
	}
	if cfg.RatePerSec <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: rate and duration must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Functions)-1))
	}
	pick := func() string {
		if zipf != nil {
			return cfg.Functions[zipf.Uint64()]
		}
		return cfg.Functions[rng.Intn(len(cfg.Functions))]
	}

	stats := &Stats{PerFunc: make(map[string]int)}
	env := p.Env()
	wg := sim.NewWaitGroup(env)

	// Schedule arrivals up front (deterministic given the seed). Each
	// request writes only its own outcome slot.
	var slots []outcome
	meanGap := float64(time.Second) / cfg.RatePerSec
	for t := time.Duration(0); ; {
		gap := time.Duration(rng.ExpFloat64() * meanGap)
		t += gap
		if t > cfg.Duration {
			break
		}
		stats.Requests++
		slot := len(slots)
		slots = append(slots, outcome{})
		if len(cfg.Chains) > 0 && rng.Float64() < cfg.ChainFraction {
			chain := cfg.Chains[rng.Intn(len(cfg.Chains))]
			stats.Chains++
			for _, fn := range chain {
				stats.PerFunc[fn]++
			}
			wg.Add(1)
			env.At(p.Now().After(t), func() {
				env.Spawn("chain-req", func(rp *sim.Proc) {
					defer wg.Done()
					res, err := target.InvokeChain(rp, chain, molecule.ChainOptions{Arg: cfg.Arg})
					out := &slots[slot]
					out.chain = true
					if err != nil {
						out.err = true
						return
					}
					out.cold = res.ColdStarts
					out.total = res.Total
				})
			})
			continue
		}
		fn := pick()
		stats.PerFunc[fn]++
		wg.Add(1)
		env.At(p.Now().After(t), func() {
			env.Spawn("req-"+fn, func(rp *sim.Proc) {
				defer wg.Done()
				res, err := target.Invoke(rp, fn, molecule.InvokeOptions{PU: -1, Arg: cfg.Arg})
				out := &slots[slot]
				if err != nil {
					out.err = true
					return
				}
				if res.Cold {
					out.cold = 1
				}
				out.total = res.Total
			})
		})
	}
	wg.Wait(p)
	// Fold the slots in arrival order: single-function latencies feed the
	// headline recorder, chain latencies their own (the old conflation
	// skewed p50/p99).
	for i := range slots {
		out := &slots[i]
		if out.err {
			stats.Errors++
			continue
		}
		stats.ColdStarts += out.cold
		if out.chain {
			stats.ChainLatency.Add(out.total)
		} else {
			stats.Latency.Add(out.total)
		}
	}
	return stats, nil
}

// PoissonGap is exposed for tests: the expected inter-arrival gap for a
// rate.
func PoissonGap(ratePerSec float64) time.Duration {
	return time.Duration(math.Round(float64(time.Second) / ratePerSec))
}
