package xpu

import (
	"testing"

	"repro/internal/localos"
	"repro/internal/obs"
	"repro/internal/sim"
)

// obsSink adapts *obs.Observer to the shim's consumer-side MetricSink, the
// same shape molecule's production adapter uses. Tests keep the Observer in
// hand to read counters back.
type obsSink struct{ o *obs.Observer }

func (s obsSink) Counter(name, labelKey, labelValue string) Counter {
	return s.o.CounterSet(obs.Intern(name, obs.L(labelKey, labelValue)))
}

func (s obsSink) Gauge(name, labelKey, labelValue string) Gauge {
	return s.o.GaugeSet(obs.Intern(name, obs.L(labelKey, labelValue)))
}

// A FIFO created before the metric sink is attached must still materialize
// its depth gauge lazily on the next queue-depth change, and detaching must
// stop updates without disturbing the already-exported series.
func TestSetMetricsLateAttachAndDetach(t *testing.T) {
	r := newRig(t)
	o := obs.New(r.env)
	r.env.Spawn("test", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 4) // created detached
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.SetMetrics(obsSink{o})
		if err := fd.Write(p, localos.Message{Kind: "m"}); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if got := o.Gauge("xpu_fifo_depth", obs.L("fifo", "f")).Value(); got != 1 {
			t.Errorf("depth gauge after late attach = %v, want 1", got)
		}
		r.shim.SetMetrics(nil)
		if _, err := fd.Read(p); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if got := o.Gauge("xpu_fifo_depth", obs.L("fifo", "f")).Value(); got != 1 {
			t.Errorf("depth gauge after detach = %v, want stale 1 (no updates)", got)
		}
	})
	r.env.Run()
}
