package bench

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Neighbor IPC latency vs XPUcall implementation",
		Paper: "nIPC ranges 25-144us; nIPC-Poll (~25us) beats the DPU's Linux FIFO but not the CPU's",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Comparison with commercial serverless systems",
		Paper: "Molecule: 37-46x better startup, 68-300x better communication; homo: 5-6x / 4-19x",
		Run:   runFig9,
	})
}

// nipcLatency measures one xfifo_write from a DPU caller to a CPU-homed
// XPU-FIFO under the given transport mode.
func nipcLatency(mode xpu.TransportMode, size int) time.Duration {
	var lat time.Duration
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	shim := xpu.NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	dpuOS := localos.New(env, m.PU(1))
	cn := shim.AddNode(m.PU(0), cpuOS)
	dn := shim.AddNode(m.PU(1), dpuOS)
	dn.Mode = mode
	cpuX := cn.Register(cpuOS.NewDetachedProcess("reader"))
	dpuX := dn.Register(dpuOS.NewDetachedProcess("writer"))
	env.Spawn("reader", func(p *sim.Proc) {
		fd, err := cn.FIFOInit(p, cpuX, "bench", 8)
		if err != nil {
			panic(err)
		}
		obj := xpu.ObjID{Kind: "fifo", UUID: "bench"}
		if err := cn.GrantCap(p, cpuX, dpuX, obj, xpu.PermWrite); err != nil {
			panic(err)
		}
		fd.Read(p)
	})
	env.SpawnAfter(10*time.Millisecond, "writer", func(p *sim.Proc) {
		fd, err := dn.FIFOConnect(p, dpuX, "bench")
		if err != nil {
			panic(err)
		}
		start := p.Now()
		if err := fd.Write(p, localos.Message{Payload: make([]byte, size)}); err != nil {
			panic(err)
		}
		lat = p.Now().Sub(start)
	})
	env.Run()
	return lat
}

func runFig8() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 8 — nIPC latency (DPU caller, xfifo_write)",
		Note:   "three XPUcall implementations vs local Linux FIFOs",
		Header: []string{"msg size", "nIPC-Base", "nIPC-MPSC", "nIPC-Poll", "Linux (DPU)", "Linux (CPU)"},
	}
	linuxDPU := localos.CostsFor(&hw.PU{Kind: hw.DPU}).FIFOOp
	linuxCPU := localos.CostsFor(&hw.PU{Kind: hw.CPU}).FIFOOp
	for _, size := range []int{16, 32, 64, 128, 256, 512, 1024, 2048} {
		t.AddRow(fmt.Sprintf("%dB", size),
			fd(nipcLatency(xpu.TransportBase, size)),
			fd(nipcLatency(xpu.TransportMPSC, size)),
			fd(nipcLatency(xpu.TransportPoll, size)),
			fd(linuxDPU),
			fd(linuxCPU),
		)
	}
	return []*metrics.Table{t}
}

func runFig9() []*metrics.Table {
	start := &metrics.Table{
		Title:  "Fig 9a — Startup latency vs commercial platforms",
		Note:   "helloworld function, cold start",
		Header: []string{"system", "startup", "vs Molecule"},
	}
	comm := &metrics.Table{
		Title:  "Fig 9b — Communication latency vs commercial platforms",
		Note:   "image-processing chain hop, <1KB payload",
		Header: []string{"system", "comm latency", "vs Molecule"},
	}
	var molStart, molComm, homoStart, homoComm time.Duration
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "helloworld"); err != nil {
			panic(err)
		}
		if err := rt.Deploy(p, "image-processing"); err != nil {
			panic(err)
		}
		rt.ContainerRuntimeOn(0).EnsureTemplate(p, lang.Python)
		res, err := rt.Invoke(p, "helloworld", molecule.InvokeOptions{PU: -1, ForceCold: true})
		if err != nil {
			panic(err)
		}
		molStart = res.Startup

		// Communication: a warm 2-function chain's edge latency.
		chain := []string{"image-processing", "image-processing"}
		rt.InvokeChain(p, chain, molecule.ChainOptions{})
		cres, err := rt.InvokeChain(p, chain, molecule.ChainOptions{})
		if err != nil {
			panic(err)
		}
		molComm = cres.EdgeLatency[0]

		h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
		hres, err := h.Invoke(p, "helloworld", 0, workloads.Arg{}, true)
		if err != nil {
			panic(err)
		}
		homoStart = hres.Startup
		homoComm = h.EdgeLatencyOneWay(0, 0, lang.Python, 1<<10)
	})

	l, w := baseline.AWSLambda(), baseline.OpenWhisk()
	addStart := func(name string, d time.Duration) {
		start.AddRow(name, fd(d), fr(float64(d)/float64(molStart)))
	}
	addComm := func(name string, d time.Duration) {
		comm.AddRow(name, fd(d), fr(float64(d)/float64(molComm)))
	}
	addStart(l.Name, l.Startup)
	addStart(w.Name, w.Startup)
	addStart("Molecule-homo", homoStart)
	addStart("Molecule", molStart)
	addComm(l.Name, l.Comm)
	addComm(w.Name, w.Comm)
	addComm("Molecule-homo", homoComm)
	addComm("Molecule", molComm)
	return []*metrics.Table{start, comm}
}
