package bench

// Determinism tests for the sharded kernel at the harness level: the entire
// experiment report, the chaos soak, and the observability demo's Chrome
// trace must be byte-identical whether the simulations run on the classic
// sequential kernel or the sharded windowed driver at any worker count.

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// shardSweep is the worker counts the determinism tests exercise: the
// classic kernel (0), the windowed driver at 1, 2, 4 workers, and NumCPU.
func shardSweep() []int {
	return []int{0, 1, 2, 4, runtime.NumCPU()}
}

// withShards runs f at the given kernel worker count and restores the
// previous setting afterwards.
func withShards(n int, f func()) {
	prev := SimShards()
	SetSimShards(n)
	defer SetSimShards(prev)
	f()
}

// TestShardedGoldenReport renders the full experiment report under the
// sharded driver at every sweep point and requires the bytes to match the
// committed golden file — the same file the classic kernel is locked to.
func TestShardedGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "report.golden"))
	if err != nil {
		t.Fatalf("no golden report; run TestGoldenReport -update first: %v", err)
	}
	for _, n := range shardSweep() {
		withShards(n, func() {
			var buf bytes.Buffer
			RunAll(&buf)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("shards=%d: report diverges from golden (%d vs %d bytes)", n, buf.Len(), len(want))
			}
		})
	}
}

// TestShardedChaosDemo locks the seeded chaos soak — kill/revive plus fault
// injection, the most scheduling-sensitive workload in the repo — to the
// same bytes at every kernel worker count.
func TestShardedChaosDemo(t *testing.T) {
	const seed = 42 // the CI soak's seed (make chaos)
	var ref []byte
	for _, n := range shardSweep() {
		withShards(n, func() {
			var buf bytes.Buffer
			if err := ChaosDemo(&buf, seed); err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			if ref == nil {
				ref = buf.Bytes()
			} else if !bytes.Equal(buf.Bytes(), ref) {
				t.Fatalf("shards=%d: chaos soak output diverges from classic kernel", n)
			}
		})
	}
}

// TestShardedObsTrace locks the observability demo's Chrome trace and
// Prometheus exports across kernel worker counts: span timings come straight
// from the virtual clock, so a single ns of divergence shows up here.
func TestShardedObsTrace(t *testing.T) {
	var refTrace, refMetrics []byte
	for _, n := range shardSweep() {
		withShards(n, func() {
			o, err := ObsDemo()
			if err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			var trace, metrics bytes.Buffer
			if err := o.Tracer.WriteChromeTrace(&trace); err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			if err := o.Metrics.WritePrometheus(&metrics); err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			if refTrace == nil {
				refTrace, refMetrics = trace.Bytes(), metrics.Bytes()
				return
			}
			if !bytes.Equal(trace.Bytes(), refTrace) {
				t.Fatalf("shards=%d: Chrome trace diverges from classic kernel", n)
			}
			if !bytes.Equal(metrics.Bytes(), refMetrics) {
				t.Fatalf("shards=%d: metrics export diverges from classic kernel", n)
			}
		})
	}
}

// TestShardSoakSweepDeterminism runs the BENCH_sim.json soak sweep twice and
// checks both that every shard count fingerprints identically (enforced
// inside ShardSoakSweep) and that the whole sweep is repeatable.
func TestShardSoakSweepDeterminism(t *testing.T) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	a, err := ShardSoakSweep(4, 1500, counts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShardSoakSweep(4, 1500, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Fingerprint != b[i].Fingerprint {
			t.Fatalf("shards=%d: soak not repeatable:\n  run1 %s\n  run2 %s",
				a[i].Shards, a[i].Fingerprint, b[i].Fingerprint)
		}
		if a[i].Events != a[0].Events {
			t.Fatalf("shards=%d scheduled %d events, shards=%d scheduled %d — partitioning changed the event count",
				a[i].Shards, a[i].Events, a[0].Shards, a[0].Events)
		}
	}
}

// TestShardSoakRejectsBadSweep pins the sweep's guard rails: it must start
// from the monolithic baseline and must reject configurations that cannot
// partition the machines.
func TestShardSoakRejectsBadSweep(t *testing.T) {
	if _, err := ShardSoakSweep(4, 100, []int{2, 4}); err == nil {
		t.Fatal("sweep without a shards=1 baseline was accepted")
	}
	if _, err := ShardSoak(ShardSoakConfig{Machines: 2, Invocations: 10, Shards: 3}); err == nil {
		t.Fatal("more shards than machines was accepted")
	}
	if _, err := ShardSoak(ShardSoakConfig{Machines: 1, Invocations: 10, Shards: 1}); err == nil {
		t.Fatal("single-machine soak was accepted")
	}
}
