package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The gateway schedules an FPGA-profiled function onto the worker that has
// an FPGA, deploying it there on first use.
func Example() {
	env := sim.NewEnv()
	gw := cluster.NewGateway(env, workloads.NewRegistry())

	env.Spawn("platform", func(p *sim.Proc) {
		gw.AddWorker(p, hw.Config{}, molecule.DefaultOptions())         // worker 0: CPU only
		gw.AddWorker(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions()) // worker 1: CPU+FPGA
		gw.Register("mscale", molecule.DefaultProfile(hw.FPGA))
		res, _ := gw.Invoke(p, "mscale", molecule.DefaultInvokeOptions())
		fmt.Printf("mscale served by worker %d on %v\n", res.Worker, res.Kind)
	})
	env.Run()
	// Output:
	// mscale served by worker 1 on FPGA
}
