// Package xpu implements XPU-Shim, the distributed indirection layer that
// bridges a single serverless runtime and the multiple operating systems of
// a heterogeneous computer (§3 of the paper).
//
// One shim Node runs on every general-purpose PU; accelerators that cannot
// run programs get a *virtual* node hosted on a neighbor CPU/DPU (§4.1).
// Nodes synchronize global state by explicit message passing over the
// hardware interconnect — never by shared memory — following the multikernel
// tradition the paper cites.
//
// The two key primitives are:
//
//   - Distributed capabilities: every process has a CAP_Group replicated on
//     all nodes (capability updates synchronize immediately, so permission
//     checks are always local), addressed by a globally unique xpu_pid that
//     encodes (PU-ID, local UUID) — creation needs no synchronization.
//
//   - Neighbor IPC (nIPC): XPU-FIFOs let processes on different PUs
//     communicate over the direct interconnect (RDMA/DMA) instead of the
//     network, through the same FIFO interface local processes use.
package xpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

// ErrNodeDown marks an XPUcall or FIFO operation against a crashed PU.
// Operations fail fast with this error instead of hanging on a node that
// will never answer.
var ErrNodeDown = errors.New("xpu: node down")

// FaultView is the shim's read-only view of a fault plan. Declared
// consumer-side so xpu need not import the faults package; *faults.Plan
// implements it.
type FaultView interface {
	Down(id hw.PUID) bool
}

// Counter is a monotonically increasing metric series handle.
type Counter interface {
	Add(n int64)
}

// Gauge is a point-in-time metric series handle.
type Gauge interface {
	Set(v float64)
}

// MetricSink hands the shim interned handles into a metrics registry.
// Declared consumer-side so xpu need not import the obs package — the same
// inversion as FaultView — and molecule's observer adapter implements it
// over *obs.Observer. The shim caches the returned handles per link and per
// FIFO, so the data path performs zero registry lookups and zero
// allocations per message (pinned by TestFIFOWritePathZeroAlloc).
type MetricSink interface {
	Counter(name, labelKey, labelValue string) Counter
	Gauge(name, labelKey, labelValue string) Gauge
}

// XPID is a globally unique process identifier: the PU's ID plus the
// process's UUID (PID) on the local OS. The encoding statically partitions
// the ID space across PUs, so allocating one requires no synchronization
// (§3.2 "Global process").
type XPID struct {
	PU    hw.PUID
	Local localos.PID
}

func (x XPID) String() string { return fmt.Sprintf("xpid(%d:%d)", x.PU, x.Local) }

// Perm is a capability permission bitmask.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	// PermOwner may grant and revoke the capability to other processes.
	PermOwner
)

// Has reports whether p includes all bits of q.
func (p Perm) Has(q Perm) bool { return p&q == q }

// ObjID identifies a distributed object (currently XPU-FIFOs).
type ObjID struct {
	Kind string // "fifo"
	UUID string // global UUID
}

// TransportMode selects the XPUcall implementation between a user process
// and its local XPU-Shim (Fig 7).
type TransportMode int

const (
	// TransportBase uses request and response FIFOs: two IPC round trips.
	TransportBase TransportMode = iota
	// TransportMPSC posts requests into a shared MPSC queue polled by the
	// shim and uses IPC only for the response: one round trip.
	TransportMPSC
	// TransportPoll additionally has the caller poll shared memory for the
	// response, eliminating IPC entirely.
	TransportPoll
)

var transportNames = map[TransportMode]string{
	TransportBase: "base", TransportMPSC: "mpsc", TransportPoll: "poll",
}

func (m TransportMode) String() string {
	if s, ok := transportNames[m]; ok {
		return s
	}
	return fmt.Sprintf("TransportMode(%d)", int(m))
}

// CallOverhead returns the user↔shim XPUcall cost for the mode on the given
// PU kind. The per-round-trip IPC cost is much higher on slow DPU cores,
// which is what motivates the MPSC and polling optimizations (§5).
func (m TransportMode) CallOverhead(kind hw.PUKind) time.Duration {
	rt := params.XPUCallIPCRoundTripCPU
	if kind == hw.DPU {
		rt = params.XPUCallIPCRoundTripDPU
	}
	switch m {
	case TransportBase:
		return 2*rt + params.XPUCallShimHandling
	case TransportMPSC:
		return params.XPUCallMPSCEnqueue + rt + params.XPUCallShimHandling
	case TransportPoll:
		return params.XPUCallMPSCEnqueue + params.XPUCallShimHandling + params.XPUCallPollResponse
	default:
		return 2*rt + params.XPUCallShimHandling
	}
}

// SyncStats counts inter-node synchronization traffic, exposed for the
// lazy-vs-immediate ablation.
type SyncStats struct {
	ImmediateSyncs int // broadcasts performed eagerly
	LazyQueued     int // updates deferred
	LazyFlushes    int // batched broadcasts of deferred updates
}

// Shim is the distributed XPU-Shim instance spanning one machine.
type Shim struct {
	Env     *sim.Env
	Machine *hw.Machine

	nodes map[hw.PUID]*Node

	// Replicated global state. The replication is modeled (a single map)
	// but every mutation charges the synchronization cost the distributed
	// protocol would pay, per the strategies of §5.
	caps  map[XPID]map[ObjID]Perm
	fifos map[string]*XPUFIFO // by global UUID

	// capGen rises on every capability mutation; FD-level permission caches
	// are valid only while their generation matches. Starts at 1 so a
	// zero-valued cache is never mistaken for current.
	capGen uint64

	// topoGen rises when a node is added; per-node broadcast worst-link
	// caches are valid only while their generation matches.
	topoGen uint64

	// nipcLS interns the per-link nIPC counter label sets so the data path
	// never rebuilds them per message.
	nipcLS map[[2]hw.PUID]*nipcSeries

	lazyBatch     int // deletions queued for lazy sync
	lazyBatchSize int
	// EagerDeletes disables lazy synchronization of object reclamations,
	// broadcasting every delete immediately (the ablation against §5's
	// lazy strategy).
	EagerDeletes bool
	stats        SyncStats

	// metrics, when non-nil, records per-link nIPC traffic counters and
	// FIFO depth gauges. Nil (the default) costs nothing on the data path.
	// Set through SetMetrics so cached series handles never outlive the
	// sink they came from.
	metrics MetricSink

	// Faults, when non-nil, lets XPUcalls against crashed PUs fail fast
	// with ErrNodeDown. Nil keeps every path byte-identical.
	Faults FaultView
}

// NewShim creates a shim over the machine with no nodes yet.
func NewShim(env *sim.Env, m *hw.Machine) *Shim {
	return &Shim{
		Env:           env,
		Machine:       m,
		nodes:         make(map[hw.PUID]*Node),
		caps:          make(map[XPID]map[ObjID]Perm),
		fifos:         make(map[string]*XPUFIFO),
		capGen:        1,
		topoGen:       1,
		nipcLS:        make(map[[2]hw.PUID]*nipcSeries),
		lazyBatchSize: 16,
	}
}

// Stats returns synchronization counters.
func (s *Shim) Stats() SyncStats { return s.stats }

// SetMetrics attaches (or, with nil, detaches) the metric sink. Cached
// per-link and per-FIFO series handles are dropped so a reattached sink
// starts fresh instead of feeding series interned in a previous registry.
func (s *Shim) SetMetrics(m MetricSink) {
	s.metrics = m
	s.nipcLS = make(map[[2]hw.PUID]*nipcSeries)
	for _, f := range s.fifos {
		f.depth = nil
	}
}

// Node is the XPU-Shim instance on (or for) one PU.
type Node struct {
	Shim *Shim
	PU   *hw.PU           // the PU this node manages
	Host *hw.PU           // where the shim code actually runs (≠ PU for accelerators)
	OS   *localos.OS      // the local OS (the host's OS for virtual nodes)
	Mode TransportMode    // XPUcall transport for user processes on this node
	self *localos.Process // the shim daemon's own OS process

	// handlers bounds concurrent XPUcall handling: §5's multi-threaded
	// shim dedicates one MPSC queue per handler thread, so calls beyond
	// the thread count queue behind in-flight ones.
	handlers *sim.Resource

	// Broadcast worst-link cache: the slowest peer link only changes when
	// the node set does (Shim.topoGen), so broadcast need not walk every
	// node per sync. The charged virtual time is identical.
	bcastWorst time.Duration
	bcastGen   uint64
}

// AddNode installs a shim node on a general-purpose PU running os.
// The default transport is Base on CPUs (cheap IPC) and Poll on DPUs
// (the paper's default after the Fig 7 optimizations).
func (s *Shim) AddNode(pu *hw.PU, os *localos.OS) *Node {
	mode := TransportBase
	if pu.Kind == hw.DPU {
		mode = TransportPoll
	}
	n := &Node{Shim: s, PU: pu, Host: pu, OS: os, Mode: mode}
	n.self = os.NewDetachedProcess("xpu-shimd")
	n.handlers = sim.NewResource(s.Env, 1)
	s.nodes[pu.ID] = n
	s.topoGen++
	return n
}

// AddVirtualNode installs a shim node for an accelerator PU (FPGA/GPU),
// hosted on the neighbor general-purpose PU host whose OS is hostOS (§4.1:
// "we start a virtual XPU-Shim instance on the neighbor CPU/DPU").
func (s *Shim) AddVirtualNode(accel *hw.PU, host *hw.PU, hostOS *localos.OS) *Node {
	n := &Node{Shim: s, PU: accel, Host: host, OS: hostOS, Mode: TransportBase}
	n.self = hostOS.NewDetachedProcess("xpu-shimd-virt")
	n.handlers = sim.NewResource(s.Env, 1)
	s.nodes[accel.ID] = n
	s.topoGen++
	return n
}

// Node returns the shim node for a PU, or nil.
func (s *Shim) Node(id hw.PUID) *Node { return s.nodes[id] }

// Nodes returns all nodes keyed by PU ID.
func (s *Shim) Nodes() map[hw.PUID]*Node { return s.nodes }

// Virtual reports whether this node manages an accelerator from a neighbor
// host.
func (n *Node) Virtual() bool { return n.PU.ID != n.Host.ID }

// SetHandlerThreads configures the node's XPUcall handler thread count
// (§5: each thread polls a dedicated MPSC queue).
func (n *Node) SetHandlerThreads(threads int) {
	if threads < 1 {
		threads = 1
	}
	n.handlers = sim.NewResource(n.Shim.Env, threads)
}

// HandlerThreads reports the configured handler thread count.
func (n *Node) HandlerThreads() int { return n.handlers.Capacity() }

// down reports whether the fault plan (if any) has PU id crashed now.
func (s *Shim) down(id hw.PUID) bool { return s.Faults != nil && s.Faults.Down(id) }

// failfast returns ErrNodeDown when this node cannot answer an XPUcall:
// its PU is crashed, or — for a virtual node — the neighbor PU hosting the
// shim instance is crashed.
func (n *Node) failfast() error {
	if n.Shim.down(n.PU.ID) {
		return fmt.Errorf("xpu: PU %d: %w", n.PU.ID, ErrNodeDown)
	}
	if n.Virtual() && n.Shim.down(n.Host.ID) {
		return fmt.Errorf("xpu: host PU %d: %w", n.Host.ID, ErrNodeDown)
	}
	return nil
}

// xcall charges the user↔shim XPUcall transport cost on this node; the
// shim-side handling portion contends on the handler threads.
func (n *Node) xcall(p *sim.Proc) {
	overhead := n.Mode.CallOverhead(n.Host.Kind) - params.XPUCallShimHandling
	p.Sleep(overhead)
	n.handlers.Acquire(p)
	p.Sleep(params.XPUCallShimHandling)
	n.handlers.Release()
}

// broadcast charges the cost of an immediate state synchronization from this
// node to every other node: a small control message over each link, sent in
// parallel (the latency is the slowest peer's link). The worst-link latency
// is cached per node and invalidated by topology changes, so repeated syncs
// charge the identical virtual time without re-walking the node set.
func (n *Node) broadcast(p *sim.Proc) {
	if n.bcastGen != n.Shim.topoGen {
		var worst time.Duration
		for id := range n.Shim.nodes {
			if id == n.PU.ID {
				continue
			}
			if l, ok := n.Shim.Machine.LinkBetween(n.Host.ID, id); ok {
				if d := l.TransferTime(64); d > worst {
					worst = d
				}
			}
		}
		n.bcastWorst = worst
		n.bcastGen = n.Shim.topoGen
	}
	p.Sleep(n.bcastWorst)
	n.Shim.stats.ImmediateSyncs++
}

// lazySync queues a harmless-stale update (e.g. a FIFO UUID reclamation) and
// flushes the batch once it is full (§5 "Lazy synchronization"). With
// EagerDeletes set, every update broadcasts immediately instead.
func (n *Node) lazySync(p *sim.Proc) {
	if n.Shim.EagerDeletes {
		n.broadcast(p)
		return
	}
	n.Shim.lazyBatch++
	n.Shim.stats.LazyQueued++
	if n.Shim.lazyBatch >= n.Shim.lazyBatchSize {
		n.broadcast(p)
		n.Shim.stats.ImmediateSyncs-- // the broadcast was a lazy flush
		n.Shim.stats.LazyFlushes++
		n.Shim.lazyBatch = 0
	}
}

// Register makes an OS process globally visible, creating its CAP_Group and
// returning its xpu_pid. No synchronization is needed: the xpu_pid encoding
// statically partitions the namespace (§5 "No synchronization").
func (n *Node) Register(pr *localos.Process) XPID {
	x := XPID{PU: n.PU.ID, Local: pr.PID}
	if _, ok := n.Shim.caps[x]; !ok {
		n.Shim.caps[x] = make(map[ObjID]Perm)
	}
	return x
}

// GetXPUPID implements the get_xpupid XPUcall.
func (n *Node) GetXPUPID(p *sim.Proc, pr *localos.Process) XPID {
	n.xcall(p)
	return n.Register(pr)
}

// capsOf returns the capability set for x, creating it if needed.
func (s *Shim) capsOf(x XPID) map[ObjID]Perm {
	c, ok := s.caps[x]
	if !ok {
		c = make(map[ObjID]Perm)
		s.caps[x] = c
	}
	return c
}

// HasCap reports whether x holds perm on obj. Checks are always local —
// capability updates synchronize immediately so "permission checking can
// always finish locally" (§5). Read-only: a lookup for an unknown process
// must not materialize its capability set.
func (s *Shim) HasCap(x XPID, obj ObjID, perm Perm) bool {
	return s.caps[x][obj].Has(perm)
}

// GrantCap implements grant_cap: caller grants perm on obj to target.
// The caller must hold PermOwner on obj. The update is synchronized to all
// nodes immediately.
func (n *Node) GrantCap(p *sim.Proc, caller, target XPID, obj ObjID, perm Perm) error {
	if err := n.failfast(); err != nil {
		return err
	}
	n.xcall(p)
	if !n.Shim.HasCap(caller, obj, PermOwner) {
		return fmt.Errorf("xpu: %v is not an owner of %v", caller, obj)
	}
	n.Shim.capsOf(target)[obj] |= perm
	n.Shim.capGen++
	n.broadcast(p)
	return nil
}

// RevokeCap implements revoke_cap.
func (n *Node) RevokeCap(p *sim.Proc, caller, target XPID, obj ObjID, perm Perm) error {
	if err := n.failfast(); err != nil {
		return err
	}
	n.xcall(p)
	if !n.Shim.HasCap(caller, obj, PermOwner) {
		return fmt.Errorf("xpu: %v is not an owner of %v", caller, obj)
	}
	n.Shim.capsOf(target)[obj] &^= perm
	n.Shim.capGen++
	n.broadcast(p)
	return nil
}

// grantLocal installs a capability without charging call/sync costs; used
// when the shim itself creates an object on behalf of a process.
func (s *Shim) grantLocal(x XPID, obj ObjID, perm Perm) {
	s.capsOf(x)[obj] |= perm
	s.capGen++
}
