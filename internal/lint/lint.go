// Package lint implements moleculelint: eight go/analysis analyzers that
// machine-check the invariants this reproduction's correctness rests on but
// the compiler cannot see.
//
// The five syntactic analyzers from the original suite:
//
//   - simtime: simulation-facing packages advance virtual time only; any
//     wall-clock call (time.Now, time.Sleep, ...) silently breaks the
//     byte-identical golden reports and seed-reproducible chaos soaks.
//   - detrand: randomness in simulation-facing packages must flow from an
//     explicit seeded source (as internal/faults does); the global math/rand
//     state and crypto/rand are nondeterministic across runs.
//   - layering: the import DAG is data (Table in layers.go), not convention.
//     Base layers never import faults, obs, molecule, or bench — fault and
//     metric hooks are injected consumer-side through interfaces.
//   - maporder: report/trace/placement packages must not iterate maps in
//     Go's randomized order unless the loop only collects keys for sorting
//     or carries an explicit //lint:unordered <reason> marker.
//   - hotpath: functions annotated //molecule:hotpath are pinned at zero
//     allocations per op; fmt formatting, string concatenation, capturing
//     closures, and unguarded Tracef calls defeat that.
//
// And the three CFG/dataflow analyzers covering the invariant classes
// recent PRs tripped over dynamically before the soaks caught them:
//
//   - crossdomain: closures crossing kernel-domain boundaries
//     (hw.Interconnect.Send/SendAfter, sim.Sharded.Send) must capture only
//     value copies and destination-owned state — shared mutable captures
//     are exactly what makes the worker count observable
//     (//lint:owned <reason> waives a protocol the analyzer cannot see).
//   - releasepath: resources acquired through the pairings in ReleaseTable
//     (molecule acquire/release, mem.AddressSpace Fork/Release, lang zygote
//     Pin/Unpin) must reach a release on every path, with cleanup defers
//     registered before fallible steps, and never release twice
//     (//lint:released <reason>).
//   - settleonce: every path through molecule's dispatch/recovery code
//     settles an invocation exactly once — the exactly-once billing
//     invariant, checked at compile time instead of only by the chaos soak
//     (//lint:settled <reason>).
//
// A local nilness subset (definitely-nil dereferences; the SSA-based stock
// pass needs go/ssa, which the offline vendor does not carry) and the stock
// copylocks pass round out the suite. Every waiver marker requires a
// reason, and markers no analyzer consumes are reported as stale.
//
// The suite runs standalone or as `go vet -vettool` via cmd/moleculelint
// (`make lint`); each analyzer has an analysistest-style suite under
// testdata/ driven by internal/lint/linttest (`make lint-fixtures`).
package lint

import (
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full moleculelint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	SimTime,
	DetRand,
	Layering,
	MapOrder,
	HotPath,
	CrossDomain,
	ReleasePath,
	SettleOnce,
}

// Stock are the general-purpose passes the driver runs alongside the
// repo-specific suite: the vendored copylocks analyzer and the local
// nilness subset (see Nilness for why it is not the SSA-based stock pass).
// Split from Analyzers because they are not ours to fixture-test and carry
// no waiver markers.
var Stock []*analysis.Analyzer // populated in stock.go

// modulePrefix roots the layer table's keys: every entry in Table names a
// package directory below this prefix.
const modulePrefix = "repro/internal/"

// relInternal maps an import path to its layer-table key ("repro/internal/
// sim/simbench" -> "sim/simbench"). ok is false for packages outside the
// internal tree (cmd/, examples/, the repo root, other modules) and for the
// synthesized test packages go vet also feeds us ("foo_test" external test
// packages and ".test" mains), which are exempt from every layer rule.
func relInternal(path string) (string, bool) {
	// go list/vet name in-package test variants "pkg [pkg.test]".
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	rel, found := strings.CutPrefix(path, modulePrefix)
	if !found || rel == "" {
		return "", false
	}
	if strings.HasSuffix(rel, "_test") || strings.Contains(rel, ".test") {
		return "", false
	}
	return rel, true
}

// classify returns the layer-table entry for an import path, or ok=false
// when the package is outside the table's jurisdiction.
func classify(path string) (Layer, bool) {
	rel, ok := relInternal(path)
	if !ok {
		return Layer{}, false
	}
	l, ok := Table[rel]
	return l, ok
}

// isTestFile reports whether the file holding pos is a _test.go file. Test
// files may reach across layers, spend wall time, and iterate maps freely:
// they never run inside a simulation and the golden/chaos suites already
// pin their observable behavior.
func isTestFile(pass *analysis.Pass, name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
