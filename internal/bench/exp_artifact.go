package bench

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "artifact",
		Title: "Artifact-style FunctionBench report (appendix A.6)",
		Paper: "fork-startup avg ~6ms-class vs baseline-startup ~180ms-class, percentile format",
		Run:   runArtifact,
	})
}

// titleCase upper-cases the first letter (strings.Title is deprecated).
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// runArtifact reproduces the artifact's func_bench.sh output: per test case,
// the fork/baseline startup and end-to-end latency percentiles over repeated
// trials (with deterministic scheduling jitter so percentiles spread).
func runArtifact() []*metrics.Table {
	var tables []*metrics.Table
	const trials = 10
	for _, fname := range []string{"linpack", "chameleon", "matmul", "pyaes"} {
		var forkStart, forkE2E, baseStart, baseE2E metrics.Recorder
		sandboxed(func(p *sim.Proc) {
			opts := molecule.DefaultOptions()
			opts.CpusetMutexPatch = true // the artifact's desktop setup
			opts.JitterPct = 0.12
			rt := newMolecule(p, hw.Config{}, opts)
			h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
			h.JitterPct = 0.12
			if err := rt.Deploy(p, fname); err != nil {
				panic(err)
			}
			rt.ContainerRuntimeOn(0).EnsureTemplate(p, lang.Python)
			for i := 0; i < trials; i++ {
				mres, err := rt.Invoke(p, fname, molecule.InvokeOptions{PU: -1, ForceCold: true})
				if err != nil {
					panic(err)
				}
				forkStart.Add(mres.Startup)
				forkE2E.Add(mres.Total)
				bres, err := h.Invoke(p, fname, 0, workloads.Arg{}, true)
				if err != nil {
					panic(err)
				}
				baseStart.Add(bres.Startup)
				baseE2E.Add(bres.Total)
			}
		})
		t := &metrics.Table{
			Title:  fmt.Sprintf("Test-Case: %s (%d trials)", titleCase(fname), trials),
			Header: []string{"series", "latency (ms)"},
		}
		t.AddRow("fork-startup", forkStart.Summary())
		t.AddRow("fork-end2end", forkE2E.Summary())
		t.AddRow("baseline-startup", baseStart.Summary())
		t.AddRow("baseline-end2end", baseE2E.Summary())
		tables = append(tables, t)
	}
	return tables
}
