// Package simbench holds the kernel microbenchmark bodies shared by the
// internal/sim benchmark tests and the molecule-bench CLI (-json mode runs
// them via testing.Benchmark to pin ns/op and allocs/op in BENCH_kernel.json).
//
// Each body is a closed simulation: it builds a fresh Env, runs b.N
// operations of one kernel primitive, and drains the environment, so the
// numbers isolate kernel overhead from workload logic.
package simbench

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Result is one microbenchmark outcome in machine-readable form.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Sleep measures the cost of one Sleep/resume cycle for a lone process —
// the kernel's hottest path: every simulated delay in every component goes
// through it.
func Sleep(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv()
	env.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// SleepContended measures Sleep/resume with two processes interleaving, so
// every wake-up takes the full park/resume handoff through the scheduler
// rather than any lone-sleeper fast path.
func SleepContended(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv()
	for _, name := range []string{"a", "b"} {
		env.Spawn(name, func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	env.Run()
}

// Spawn measures process creation + exit, including the kernel's bookkeeping
// of spawned processes (long soak runs spawn millions).
func Spawn(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv()
	env.Spawn("spawner", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Env().Spawn("child", func(c *sim.Proc) {})
			p.Yield() // let the child run and exit before the next spawn
		}
	})
	b.ResetTimer()
	env.Run()
}

// ChanPingPong measures one rendezvous Send/Recv pair between two processes,
// the backbone of every simulated IPC path (XPU-Shim calls, executor queues).
func ChanPingPong(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv()
	ch := sim.NewChan[int](env, 0)
	env.Spawn("pinger", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ch.Send(p, i)
		}
	})
	env.Spawn("ponger", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ch.Recv(p)
		}
	})
	b.ResetTimer()
	env.Run()
}

// CrossShardSend measures one cross-domain message on a two-domain sharded
// group: outbox append, the barrier's deterministic merge, and delivery into
// the destination heap, amortized over the window the conservative driver
// opens per round. A single worker drives both domains so the number
// isolates kernel cost from OS-thread handoff noise; real-core dispatch is
// covered by the sharded soak scaling curve (BENCH_sim.json).
func CrossShardSend(b *testing.B) {
	b.ReportAllocs()
	sh := sim.NewSharded(2)
	sh.LimitLookahead(time.Microsecond)
	var received int
	sh.Domain(0).Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			//lint:owned bench counter: received is written only by domain 1's deliveries and read after Run returns
			sh.Send(p.Env(), 1, time.Microsecond, func() { received++ })
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	sh.Run(1)
	if received != b.N {
		b.Fatalf("lost cross-shard messages: %d of %d delivered", received, b.N)
	}
}

// AddressSpaceForkFanout measures forking many children off one warm
// template address space — the zygote-forest cold-start pattern, where one
// specialized template feeds every instance of its package cohort. Per op:
// fork fanout children, touch a small private working set in each (the COW
// break), read the PSS the kernel must keep consistent, then release all
// children. Fork itself must stay O(extents) with ~2 allocs; the fanout
// shape catches refcount churn that a single-child benchmark hides.
func AddressSpaceForkFanout(b *testing.B) {
	const (
		templatePages = 3072 // ~12MB template: base runtime + warm imports
		fanout        = 64
		privatePages  = 16
	)
	b.ReportAllocs()
	tmpl := mem.NewAddressSpace()
	tmpl.Map(templatePages)
	children := make([]*mem.AddressSpace, fanout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range children {
			//lint:released fanout child: every child is released in the drain loop at the end of this iteration; b.Fatalf exits abort the process
			c := tmpl.Fork()
			c.Write(0, privatePages)
			children[j] = c
		}
		if pss := tmpl.PSSPages(); pss <= 0 {
			b.Fatalf("template PSS = %v", pss)
		}
		for j, c := range children {
			c.Release()
			children[j] = nil
		}
	}
	b.StopTimer()
	if got := tmpl.PSSPages(); got != templatePages {
		b.Fatalf("template PSS after release = %v, want %d (leaked child refs)", got, templatePages)
	}
}

// All runs every kernel microbenchmark through testing.Benchmark and returns
// the results. Used by molecule-bench -json.
func All() []Result {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"KernelSleep", Sleep},
		{"KernelSleepContended", SleepContended},
		{"KernelSpawn", Spawn},
		{"ChanPingPong", ChanPingPong},
		{"KernelCrossShardSend", CrossShardSend},
		{"AddressSpaceForkFanout", AddressSpaceForkFanout},
	}
	out := make([]Result, 0, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		out = append(out, Result{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
