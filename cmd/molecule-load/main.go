// Command molecule-load runs a steady-state load test against a simulated
// heterogeneous machine: Poisson arrivals, Zipf function popularity, and a
// configurable keep-alive cache, reporting cold-start rate and latency
// percentiles.
//
//	molecule-load -rate 100 -duration 30s -zipf 1.2 -cache 16 -dpus 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/molecule"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// write renders into path ("-" = stdout), the same convention as
// molecule-bench -trace/-metrics.
func write(path string, render func(*os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	if err := render(f); err != nil {
		log.Fatal(err)
	}
	if path != "-" {
		log.Printf("wrote %s", path)
	}
}

func main() {
	var (
		rate     = flag.Float64("rate", 100, "mean request rate per second")
		duration = flag.Duration("duration", 30*time.Second, "virtual-time test duration")
		zipf     = flag.Float64("zipf", 1.2, "function popularity skew (0 = uniform)")
		cache    = flag.Int("cache", 16, "keep-alive warm instances per PU")
		dpus     = flag.Int("dpus", 1, "number of Bluefield DPUs")
		seed     = flag.Int64("seed", 1, "random seed")
		fns      = flag.String("functions", "matmul,pyaes,chameleon,image-resize,dd",
			"comma-separated function population")
		cfork   = flag.Bool("cfork", true, "use cfork-based cold starts")
		trace   = flag.String("trace", "", "write the load run's span tree as Chrome trace_event JSON to `file` (\"-\" = stdout)")
		metrics = flag.String("metrics", "", "write the load run's metrics as Prometheus text exposition to `file` (\"-\" = stdout)")
	)
	flag.Parse()

	functions := strings.Split(*fns, ",")
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: *dpus})

	// Observability rides the same path moleculed's -trace/-metrics use:
	// one Observer on the runtime, exporters dumped after the run.
	var o *obs.Observer
	if *trace != "" || *metrics != "" {
		o = obs.New(env)
	}

	env.Spawn("loadgen", func(p *sim.Proc) {
		opts := molecule.DefaultOptions()
		opts.KeepWarmPerPU = *cache
		opts.UseCfork = *cfork
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), opts)
		if err != nil {
			log.Fatal(err)
		}
		rt.SetObserver(o) // nil-safe: detached unless -trace/-metrics given
		for _, fn := range functions {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				log.Fatal(err)
			}
		}
		stats, err := loadgen.Run(p, rt, loadgen.Config{
			Seed:       *seed,
			Functions:  functions,
			ZipfS:      *zipf,
			RatePerSec: *rate,
			Duration:   *duration,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("requests:    %d over %v (rate %.0f/s, zipf %.2f, seed %d)\n",
			stats.Requests, *duration, *rate, *zipf, *seed)
		fmt.Printf("cold starts: %d (%.1f%%)   errors: %d\n",
			stats.ColdStarts, stats.ColdRate()*100, stats.Errors)
		fmt.Printf("latency:     %s\n", stats.Latency.Summary())
		fmt.Printf("billing:     %.1f units total\n", rt.Billing().Total())
		fmt.Println("\nper-function traffic:")
		for _, fn := range functions {
			fmt.Printf("  %-16s %5d requests\n", fn, stats.PerFunc[fn])
		}
		fmt.Printf("\nmachine: %d PUs, capacity %d instances, live at end %d\n",
			len(machine.PUs()), rt.Capacity(), rt.LiveInstances())
	})
	env.Run()

	if *trace != "" {
		write(*trace, func(f *os.File) error { return o.Tracer.WriteChromeTrace(f) })
	}
	if *metrics != "" {
		write(*metrics, func(f *os.File) error { return o.Metrics.WritePrometheus(f) })
	}
}
