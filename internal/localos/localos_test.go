package localos

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

func newTestOS(kind hw.PUKind) (*sim.Env, *OS) {
	env := sim.NewEnv()
	pu := &hw.PU{Kind: kind, Name: "test", Speed: 1}
	return env, New(env, pu)
}

func TestSpawnChargesCost(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		pr := os.Spawn(p, "worker")
		if pr == nil || pr.PID == 0 {
			t.Fatal("spawn returned invalid process")
		}
		if p.Now() != sim.Time(os.Costs.SpawnBase) {
			t.Errorf("spawn cost = %v, want %v", p.Now(), os.Costs.SpawnBase)
		}
	})
	env.Run()
	if os.NumProcesses() != 1 {
		t.Errorf("processes = %d, want 1", os.NumProcesses())
	}
}

func TestDPUCostsScaled(t *testing.T) {
	_, cpuOS := newTestOS(hw.CPU)
	_, dpuOS := newTestOS(hw.DPU)
	if dpuOS.Costs.FIFOOp != params.FIFOOpDPU || cpuOS.Costs.FIFOOp != params.FIFOOpCPU {
		t.Error("FIFO costs not per-PU")
	}
	if dpuOS.Costs.ForkBase <= cpuOS.Costs.ForkBase {
		t.Error("DPU fork not slower than CPU fork")
	}
}

func TestForkRequiresSingleThread(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		parent := os.Spawn(p, "rt")
		parent.Threads = 4
		if _, err := os.Fork(p, parent, "child"); err == nil {
			t.Error("fork of multi-threaded process succeeded")
		}
		parent.Threads = 1
		child, err := os.Fork(p, parent, "child")
		if err != nil {
			t.Fatal(err)
		}
		if child.Threads != 1 {
			t.Error("child not single-threaded")
		}
	})
	env.Run()
}

func TestForkSharesMemoryCOW(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		parent := os.Spawn(p, "rt")
		vpn := parent.AS.Map(100)
		child, err := os.Fork(p, parent, "child")
		if err != nil {
			t.Fatal(err)
		}
		if child.AS.RSSPages() != 100 {
			t.Errorf("child RSS = %d, want 100", child.AS.RSSPages())
		}
		before := p.Now()
		os.Touch(p, child, vpn, 10)
		faultTime := p.Now().Sub(before)
		if faultTime != 10*os.Costs.PageFault {
			t.Errorf("fault time = %v, want %v", faultTime, 10*os.Costs.PageFault)
		}
		// Touching again: no faults, no time.
		before = p.Now()
		os.Touch(p, child, vpn, 10)
		if p.Now() != before {
			t.Error("re-touch charged fault time")
		}
	})
	env.Run()
}

func TestForkInheritsNamespaceAndCgroup(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		parent := os.Spawn(p, "rt")
		ns := os.NewNamespace("tmpl")
		cg := os.NewCgroup("tmpl", 2, 1<<28)
		os.JoinNamespace(p, parent, ns)
		os.JoinCgroup(p, parent, cg, true)
		child, _ := os.Fork(p, parent, "c")
		if child.NS != ns || child.CG != cg {
			t.Error("child did not inherit namespace/cgroup")
		}
	})
	env.Run()
}

func TestForkExitedParentFails(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		parent := os.Spawn(p, "rt")
		os.Exit(parent)
		if _, err := os.Fork(p, parent, "c"); err == nil {
			t.Error("fork of exited process succeeded")
		}
		if !parent.Exited() {
			t.Error("Exited() false after Exit")
		}
	})
	env.Run()
}

func TestExitReleasesMemoryAndIdempotent(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		parent := os.Spawn(p, "rt")
		vpn := parent.AS.Map(50)
		child, _ := os.Fork(p, parent, "c")
		os.Exit(parent)
		os.Exit(parent) // idempotent
		if got := child.AS.PSSPages(); got != 50 {
			t.Errorf("child PSS after parent exit = %v, want 50", got)
		}
		_ = vpn
	})
	env.Run()
	if os.NumProcesses() != 1 {
		t.Errorf("processes = %d, want 1", os.NumProcesses())
	}
}

func TestCgroupJoinCostMutexVsSemaphore(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		pr := os.Spawn(p, "rt")
		cg := os.NewCgroup("fc", 1, 1<<27)
		start := p.Now()
		os.JoinCgroup(p, pr, cg, false)
		slow := p.Now().Sub(start)
		start = p.Now()
		os.JoinCgroup(p, pr, cg, true)
		fast := p.Now().Sub(start)
		if slow <= fast {
			t.Errorf("semaphore join (%v) not slower than mutex join (%v)", slow, fast)
		}
		if slow != params.CgroupCpusetSemaphoreTime || fast != params.CgroupCpusetMutexTime {
			t.Errorf("join costs = %v/%v, want %v/%v", slow, fast,
				params.CgroupCpusetSemaphoreTime, params.CgroupCpusetMutexTime)
		}
	})
	env.Run()
}

func TestFIFORoundTrip(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	f := os.CreateFIFO("pipe", 8)
	var got Message
	env.Spawn("reader", func(p *sim.Proc) {
		m, ok := f.Read(p)
		if !ok {
			t.Error("read failed")
		}
		got = m
	})
	env.Spawn("writer", func(p *sim.Proc) {
		f.Write(p, Message{From: "w", Kind: "req", Payload: []byte("hi")})
	})
	env.Run()
	if string(got.Payload) != "hi" || got.Kind != "req" {
		t.Errorf("got %+v", got)
	}
	if got.Size() != 2 {
		t.Errorf("size = %d, want 2", got.Size())
	}
}

func TestFIFOChargesPerOpCost(t *testing.T) {
	env, os := newTestOS(hw.DPU)
	f := os.CreateFIFO("pipe", 1)
	var readerDone sim.Time
	env.Spawn("w", func(p *sim.Proc) { f.Write(p, Message{}) })
	env.Spawn("r", func(p *sim.Proc) {
		f.Read(p)
		readerDone = p.Now()
	})
	env.Run()
	// Writer syscall then reader syscall; both at DPU cost. The reader's
	// read completes after its own syscall cost (write is buffered).
	if readerDone < sim.Time(params.FIFOOpDPU) {
		t.Errorf("reader done at %v, want >= one DPU FIFO op (%v)", readerDone, params.FIFOOpDPU)
	}
}

func TestFIFONamespaceIsPerOS(t *testing.T) {
	env := sim.NewEnv()
	os1 := New(env, &hw.PU{Kind: hw.CPU, Name: "cpu"})
	os2 := New(env, &hw.PU{Kind: hw.DPU, Name: "dpu"})
	os1.CreateFIFO("same-name", 1)
	if _, err := os2.OpenFIFO("same-name"); err == nil {
		t.Error("FIFO visible across OS instances — multi-OS isolation broken")
	}
	if _, err := os1.OpenFIFO("same-name"); err != nil {
		t.Error("FIFO not visible in its own OS")
	}
}

func TestCreateFIFOIdempotent(t *testing.T) {
	_, os := newTestOS(hw.CPU)
	a := os.CreateFIFO("f", 4)
	b := os.CreateFIFO("f", 99)
	if a != b {
		t.Error("CreateFIFO created a second FIFO with the same name")
	}
}

func TestRemoveFIFOWakesReaders(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	f := os.CreateFIFO("f", 0)
	env.Spawn("r", func(p *sim.Proc) {
		if _, ok := f.Read(p); ok {
			t.Error("read on removed FIFO returned ok")
		}
	})
	env.Spawn("rm", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		os.RemoveFIFO("f")
	})
	env.Run()
	if _, err := os.OpenFIFO("f"); err == nil {
		t.Error("removed FIFO still open-able")
	}
	if env.LiveProcs() != 0 {
		t.Errorf("blocked procs remain: %d", env.LiveProcs())
	}
}

func TestTryRead(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	f := os.CreateFIFO("f", 2)
	env.Spawn("x", func(p *sim.Proc) {
		if _, ok := f.TryRead(p); ok {
			t.Error("TryRead on empty FIFO returned ok")
		}
		if p.Now() != 0 {
			t.Error("failed TryRead charged syscall time")
		}
		f.Write(p, Message{Kind: "a"})
		m, ok := f.TryRead(p)
		if !ok || m.Kind != "a" {
			t.Error("TryRead missed buffered message")
		}
	})
	env.Run()
}

func TestSpawnFromImage(t *testing.T) {
	env, os := newTestOS(hw.CPU)
	env.Spawn("x", func(p *sim.Proc) {
		donor := os.Spawn(p, "donor")
		donor.AS.Map(32)
		start := p.Now()
		pr := os.SpawnFromImage(p, "restored", donor.AS.Fork(), 3)
		if p.Now().Sub(start) != os.Costs.SpawnBase {
			t.Error("SpawnFromImage did not charge spawn cost")
		}
		if pr.Threads != 3 || pr.AS.RSSPages() != 32 {
			t.Errorf("restored process: threads=%d rss=%d", pr.Threads, pr.AS.RSSPages())
		}
		if pr.AS.SharedPages() != 32 {
			t.Error("restored image not shared with donor")
		}
		if zero := os.SpawnFromImage(p, "z", donor.AS.Fork(), 0); zero.Threads != 1 {
			t.Error("thread clamp broken")
		}
	})
	env.Run()
}
