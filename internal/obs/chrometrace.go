package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON Array
// Format wrapped in an object, as Perfetto and chrome://tracing load it).
// Field order is fixed by the struct; map-valued Args render with sorted
// keys, so output bytes are deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`            // microseconds of virtual time
	Dur  *float64          `json:"dur,omitempty"` // microseconds, complete events only
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTrackOffset shifts PU IDs so the shared track for PU-less spans
// (PU == -1) gets tid 0 and PU n gets tid n+1.
const chromeTrackOffset = 1

func usec(t int64) float64 { return float64(t) / 1e3 }

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON:
// one process, one thread track per PU (named via NamePU), each span a
// complete ("ph":"X") event carrying its attrs plus span/parent IDs so the
// tree is recoverable in the UI. Open spans export with zero duration.
// Nil-safe: a nil Tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		// Thread-name metadata first, in tid order.
		tids := make([]int, 0, len(t.puNames))
		for pu := range t.puNames {
			tids = append(tids, pu)
		}
		sort.Ints(tids)
		for _, pu := range tids {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: pu + chromeTrackOffset,
				Args: map[string]string{"name": t.puNames[pu]},
			})
		}
		for _, s := range t.spans {
			dur := usec(int64(s.End - s.Start))
			if s.open {
				dur = 0
			}
			args := make(map[string]string, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
			args["span"] = strconv.FormatUint(uint64(s.ID), 10)
			if s.Parent != 0 {
				args["parent"] = strconv.FormatUint(uint64(s.Parent), 10)
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.Name, Ph: "X", Pid: 1, Tid: s.PU + chromeTrackOffset,
				Ts: usec(int64(s.Start)), Dur: &dur, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
