// Stand-in for repro/internal/xpu in layering fixtures.
package xpu

func Noop() {}
