package molecule

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/xpu"
)

// ErrUnavailable is returned when an invocation cannot be served: every
// attempt timed out or failed transiently and the retry budget is spent.
// Gateways map it to 503.
var ErrUnavailable = errors.New("molecule: function unavailable")

// RecoveryOptions configure Molecule's failure-recovery policy. The zero
// value disables recovery entirely — Invoke performs a single attempt on
// the exact pre-recovery code path, which is what keeps the no-fault golden
// report byte-identical.
type RecoveryOptions struct {
	// InvokeTimeout bounds one attempt in virtual time; 0 disables the
	// timeout. A timed-out attempt is abandoned (it still runs to
	// completion in the background, but is never billed) and retried.
	InvokeTimeout time.Duration
	// MaxRetries is how many times a transiently-failed attempt is retried;
	// the invocation makes at most MaxRetries+1 attempts.
	MaxRetries int
	// RetryBackoff is the virtual-time delay before the first retry,
	// doubling each retry (exponential backoff). 0 defaults to 1ms.
	RetryBackoff time.Duration
}

// Enabled reports whether any recovery behavior is configured.
func (r RecoveryOptions) Enabled() bool {
	return r.InvokeTimeout > 0 || r.MaxRetries > 0
}

// transientError reports whether err is worth retrying: an injected fault,
// a crashed or partitioned piece of infrastructure, or a timeout. Anything
// else (unknown function, no profile, capacity everywhere exhausted on a
// healthy machine, handler body errors) fails the invocation immediately.
func transientError(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, faults.ErrPUDown) ||
		errors.Is(err, faults.ErrPartitioned) ||
		errors.Is(err, faults.ErrInjected) ||
		errors.Is(err, xpu.ErrNodeDown)
}

// infrastructureError reports whether err means the *placement* is bad —
// the target PU or its links are down — as opposed to a probabilistic
// failure that may succeed on the same PU. Only infrastructure errors
// trigger failover re-placement of a pinned invocation.
func infrastructureError(err error) bool {
	return errors.Is(err, faults.ErrPUDown) ||
		errors.Is(err, faults.ErrPartitioned) ||
		errors.Is(err, xpu.ErrNodeDown) ||
		errors.Is(err, ErrUnavailable) // a timeout: the PU is unresponsive
}

// invokeWithRecovery wraps dispatch with the recovery policy: per-attempt
// timeout, bounded retries with exponential virtual-time backoff, and
// failover — a pinned invocation whose PU's infrastructure failed is
// re-placed onto the deterministic lowest-ordered surviving PU. Exactly one
// successful attempt is settled (billed + recorded), so retries can never
// double-bill.
func (rt *Runtime) invokeWithRecovery(p *sim.Proc, d *Deployment, opts InvokeOptions) (Result, error) {
	rec := rt.Opts.Recovery
	root := rt.obs.Span(opts.Span, "invoke.recover", int(rt.hostID))
	root.SetAttr("fn", d.Fn.Name)
	attemptOpts := opts
	attemptOpts.Span = root
	backoff := rec.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= rec.MaxRetries; attempt++ {
		if attempt > 0 {
			if o := rt.obs; o != nil {
				o.Counter("molecule_invoke_retries_total", obs.L("fn", d.Fn.Name)).Inc()
			}
			bs := rt.obs.Span(root, "retry.backoff", int(rt.hostID))
			p.Sleep(backoff)
			bs.Finish()
			backoff *= 2
			if attemptOpts.PU >= 0 && infrastructureError(lastErr) {
				// Failover: drop the pin and let placeGeneral's
				// deterministic scan pick the lowest-ordered surviving PU.
				p.Tracef("invoke %s: failing over from PU %d", d.Fn.Name, attemptOpts.PU)
				root.SetAttr("failover_from", strconv.Itoa(int(attemptOpts.PU)))
				attemptOpts.PU = -1
				if o := rt.obs; o != nil {
					o.Counter("molecule_failovers_total", obs.L("fn", d.Fn.Name)).Inc()
				}
			}
		}
		// Warm instances stranded on PUs that crashed since the last attempt
		// must not be served (or counted live); reap them first.
		if rt.faults != nil {
			rt.reapCrashed(p)
		}
		res, err := rt.attemptWithTimeout(p, d, attemptOpts)
		if err == nil {
			rt.settleResult(d, res)
			root.SetAttr("retries", strconv.Itoa(attempt))
			root.SetAttr("pu", strconv.Itoa(int(res.PU)))
			root.Finish()
			return res, nil
		}
		lastErr = err
		if !transientError(err) {
			root.SetAttr("error", err.Error())
			root.Finish()
			return Result{}, err
		}
		p.Tracef("invoke %s: attempt %d failed: %v", d.Fn.Name, attempt+1, err)
	}
	if o := rt.obs; o != nil {
		o.Counter("molecule_invoke_unavailable_total", obs.L("fn", d.Fn.Name)).Inc()
	}
	root.SetAttr("error", lastErr.Error())
	root.Finish()
	if errors.Is(lastErr, ErrUnavailable) {
		return Result{}, fmt.Errorf("molecule: %s failed after %d attempts: %w", d.Fn.Name, rec.MaxRetries+1, lastErr)
	}
	return Result{}, fmt.Errorf("molecule: %s failed after %d attempts: %w: %w", d.Fn.Name, rec.MaxRetries+1, ErrUnavailable, lastErr)
}

// attemptWithTimeout runs one unsettled dispatch, bounded by the configured
// per-invoke timeout. The attempt runs in its own simulation process and is
// *abandoned*, never interrupted, on timeout: interrupting a process queued
// on a shared resource (a link, a handler thread) would leak the unit, so
// the losing attempt simply finishes in the background without being
// settled — its instance lands back in the warm pool and nothing is billed.
func (rt *Runtime) attemptWithTimeout(p *sim.Proc, d *Deployment, opts InvokeOptions) (Result, error) {
	timeout := rt.Opts.Recovery.InvokeTimeout
	if timeout <= 0 {
		return rt.dispatch(p, d, opts, false)
	}
	type outcome struct {
		res Result
		err error
	}
	done := sim.NewEvent(rt.Env)
	rt.Env.Spawn("invoke-attempt", func(ap *sim.Proc) {
		res, err := rt.dispatch(ap, d, opts, false)
		done.Trigger(outcome{res: res, err: err})
	})
	expired := sim.NewEvent(rt.Env)
	rt.Env.AfterFunc(timeout, func() { expired.Trigger(nil) })
	idx, payload := sim.WaitAny(p, done, expired)
	if idx == 0 {
		oc := payload.(outcome)
		return oc.res, oc.err
	}
	if o := rt.obs; o != nil {
		o.Counter("molecule_invoke_timeouts_total", obs.L("fn", d.Fn.Name)).Inc()
	}
	return Result{}, fmt.Errorf("molecule: invoke %s on PU %v timed out after %v: %w",
		d.Fn.Name, hw.PUID(opts.PU), timeout, ErrUnavailable)
}
