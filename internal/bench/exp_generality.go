package bench

import (
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "tab5",
		Title: "Supporting different PUs (generality, §6.8)",
		Paper: "vectorized sandbox + XPU-Shim + programming model are all a new PU needs",
		Run:   runTab5,
	})
}

// runTab5 prints the Table 1/5 support matrix and demonstrates it by
// driving one function through every PU class of a fully heterogeneous
// machine via the same Molecule runtime.
func runTab5() []*metrics.Table {
	matrix := &metrics.Table{
		Title:  "Table 5 — Supporting different PUs",
		Header: []string{"PU", "VSandbox runtime", "XPU-Shim attachment", "Programming model"},
	}
	matrix.AddRow("CPU", "modified runc (+cfork)", "native node", "Python / Node.js")
	matrix.AddRow("DPU", "modified runc (+cfork)", "native node (RDMA)", "Python / Node.js")
	matrix.AddRow("FPGA", "runF (OpenCL-style)", "virtual node on host (DMA)", "OpenCL kernels")
	matrix.AddRow("GPU", "runG (CUDA-style)", "virtual node on host (DMA)", "CUDA C++ kernels")

	demo := &metrics.Table{
		Title:  "Generality demonstration — vmult on every PU class",
		Note:   "one deployment, four execution targets, same runtime and abstractions",
		Header: []string{"PU", "warm latency", "notes"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1, FPGAs: 1, GPUs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "vmult",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU),
			molecule.DefaultProfile(hw.FPGA), molecule.DefaultProfile(hw.GPU)); err != nil {
			panic(err)
		}
		for _, pu := range rt.Machine.PUs() {
			res, err := measureWarm(p, rt, "vmult", molecule.InvokeOptions{PU: pu.ID})
			if err != nil {
				panic(err)
			}
			note := ""
			switch pu.Kind {
			case hw.DPU:
				note = "slow cores; cheapest profile"
			case hw.FPGA:
				note = "vectorized image, DMA in/out"
			case hw.GPU:
				note = "CUDA kernel via runG"
			}
			demo.AddRow(pu.Kind.String(), metrics.FmtDur(time.Duration(res.Handler)), note)
		}
	})
	return []*metrics.Table{matrix, demo}
}
