package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapOrder flags `for range` over maps in packages whose iteration order can
// leak into report, trace, metric, or placement output (the Report flag in
// the layer table). Go randomizes map order per run, so an unsorted range is
// exactly the bug class the bench order() rewrite and the placement-cache
// equivalence tests guard against — here it is checked everywhere.
//
// A map range is accepted without annotation only when its body does nothing
// order-sensitive: every statement either appends to a slice (the canonical
// collect-then-sort idiom) or bumps a counter. Anything else needs the keys
// sorted first, or an explicit waiver on the line of (or above) the loop:
//
//	//lint:unordered <reason why order cannot be observed>
//
// The reason is mandatory — a bare marker is itself a violation.
var MapOrder = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag nondeterministic map iteration in report/trace/placement packages unless collected-and-sorted or //lint:unordered",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapOrder,
}

// collectOnly reports whether every statement in the loop body is order-
// insensitive, so the randomized iteration order cannot be observed. The
// accepted shapes are exactly the commutative ones:
//
//   - x = append(x, ...)        collect for a later sort
//   - n++ / n--                 counting
//   - n += <expr>               integer accumulation (ints commute; floats
//     do not and are rejected)
//   - m[key] = <expr>           building a map keyed by the range key —
//     each iteration writes a distinct entry
//   - if <cond> { ... }         a guard around any of the above
//
// Anything else — calls, sends, nested loops, writes through other keys —
// needs the keys sorted first or an explicit //lint:unordered waiver.
func collectOnly(pass *analysis.Pass, rangeKey string, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !collectStmt(pass, rangeKey, stmt) {
			return false
		}
	}
	return true
}

func collectStmt(pass *analysis.Pass, rangeKey string, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.IfStmt:
		if s.Else != nil {
			return false
		}
		return collectOnly(pass, rangeKey, s.Body)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ASSIGN:
			if isAppendSelf(s) {
				return true
			}
			return isRangeKeyStore(pass, rangeKey, s.Lhs[0])
		case token.ADD_ASSIGN:
			t := pass.TypesInfo.TypeOf(s.Lhs[0])
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		}
		return false
	default:
		return false
	}
}

// isRangeKeyStore matches `m[k] = v` where m is a map and k is the range
// statement's own key variable: every iteration writes a distinct entry, so
// the final map is order-independent.
func isRangeKeyStore(pass *analysis.Pass, rangeKey string, lhs ast.Expr) bool {
	if rangeKey == "" || rangeKey == "_" {
		return false
	}
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && id.Name == rangeKey
}

// isAppendSelf matches `x = append(x, ...)` (and x, ok-style single-pair
// variants are rejected: exactly one LHS and one RHS).
func isAppendSelf(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && first.Name == lhs.Name
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	layer, ok := classify(pass.Pkg.Path())
	if !ok || !layer.Report {
		return nil, nil
	}
	waivers := collectWaivers(pass, unorderedMarker)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		p := pass.Fset.Position(rs.Pos())
		if isTestFile(pass, p.Filename) {
			return
		}
		if reason, found := waivers.lookup(p.Filename, p.Line); found {
			if reason == "" {
				pass.Reportf(rs.Pos(), "maporder: //lint:unordered marker needs a reason explaining why iteration order cannot be observed")
			}
			return
		}
		rangeKey := ""
		if id, ok := rs.Key.(*ast.Ident); ok {
			rangeKey = id.Name
		}
		if collectOnly(pass, rangeKey, rs.Body) {
			return
		}
		pass.Reportf(rs.Pos(),
			"maporder: range over map in report path (%s): iteration order is randomized per run; collect and sort the keys first, or annotate //lint:unordered <reason>",
			pass.Pkg.Path())
	})
	// Stale-waiver audit: a marker no map range consumed excuses nothing
	// anymore (the loop moved, or was rewritten over a slice) and would
	// silently waive the next unrelated violation on its line.
	waivers.reportStale(pass, "map range")
	return nil, nil
}
