package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// Nilness reports dereferences of variables that are definitely nil on
// every path reaching the use: a pointer load or field access through a
// nil pointer, a store into a nil map, and a call of a nil function value.
//
// This is a CFG-based subset of the stock x/tools nilness analyzer. The
// stock pass is built on go/ssa, which the offline toolchain vendor does
// not ship, so this implementation reproduces its definitely-nil core on
// golang.org/x/tools/go/cfg instead: a forward must-analysis (a variable is
// tracked only while nil on ALL incoming paths) with branch refinement from
// `v == nil` / `v != nil` conditions. Variables whose address is taken or
// that are captured by a closure are never tracked, so the analysis only
// reports uses that cannot be anything but nil — no false positives by
// construction, at the cost of missing maybe-nil bugs the SSA version
// would catch.
var Nilness = &analysis.Analyzer{
	Name:     "nilness",
	Doc:      "report dereferences of definitely-nil pointers, stores to nil maps, and calls of nil functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runNilness,
}

// nilTrackable reports whether a variable's type has a meaningful nil:
// pointer, map, or func. (Slices, channels, and interfaces are omitted:
// reads of nil slices and sends on nil channels have defined — if
// surprising — semantics, and interface nilness needs the SSA analysis.)
func nilTrackable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Signature:
		return true
	}
	return false
}

// nilFuncScope gathers the trackable local variables of one function:
// declared inside it, never address-taken, never used in a nested literal.
func nilFuncScope(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) map[*types.Var]bool {
	track := make(map[*types.Var]bool)
	// Walk the whole function, not just the body: parameters and receivers
	// are defined on the signature and participate in branch refinement.
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok &&
				!v.IsField() && nilTrackable(v.Type()) &&
				v.Pos() >= fn.Pos() && v.Pos() < fn.End() {
				track[v] = true
			}
		}
		return true
	})
	// Disqualify escapes: &v anywhere, or any appearance inside a nested
	// function literal (the closure may write it at any time).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := identVar(pass, ast.Unparen(n.X)); v != nil {
					delete(track, v)
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						delete(track, v)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return track
}

// nilState is the set of variables definitely nil at a program point.
// States are compared and joined by intersection (must-analysis).
type nilState map[*types.Var]bool

func (s nilState) clone() nilState {
	out := make(nilState, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func (s nilState) equal(o nilState) bool {
	if len(s) != len(o) {
		return false
	}
	for v := range s {
		if !o[v] {
			return false
		}
	}
	return true
}

func (s nilState) intersect(o nilState) nilState {
	out := make(nilState)
	for v := range s {
		if o[v] {
			out[v] = true
		}
	}
	return out
}

// nilChecker runs the analysis over one function.
type nilChecker struct {
	pass  *analysis.Pass
	track map[*types.Var]bool
	seen  map[token.Pos]bool
}

// isNilLit reports whether e is the untyped nil literal.
func isNilLit(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// transfer applies one block node's gens and kills to the state: `var x *T`
// and `x = nil` make x definitely nil; any other assignment makes it
// unknown. Uses are reported (by the replay pass) against the state BEFORE
// the node's kills — RHS before LHS.
func (c *nilChecker) transfer(n ast.Node, state nilState) {
	switch n := n.(type) {
	case *ast.ValueSpec:
		// The cfg builder lowers `var x *T` DeclStmts to their ValueSpecs.
		for i, name := range n.Names {
			v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !c.track[v] {
				continue
			}
			if len(n.Values) == 0 || (i < len(n.Values) && isNilLit(n.Values[i])) {
				state[v] = true // var x *T — zero value is nil
			} else {
				delete(state, v)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				v := identVar(c.pass, lhs)
				if v == nil || !c.track[v] {
					continue
				}
				if isNilLit(n.Rhs[i]) {
					state[v] = true
				} else {
					delete(state, v)
				}
			}
		} else {
			for _, lhs := range n.Lhs {
				if v := identVar(c.pass, lhs); v != nil {
					delete(state, v) // multi-value: unknown
				}
			}
		}
	}
}

// reportUses flags every dereference of a definitely-nil variable in n.
func (c *nilChecker) reportUses(n ast.Node, state nilState) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if v := c.nilVarUse(m.X, state); v != nil {
				c.report(m.Pos(), "nilness: nil dereference in load of *%s", v.Name())
			}
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[m]; ok && sel.Kind() == types.FieldVal {
				if v := c.nilVarUse(m.X, state); v != nil {
					c.report(m.Pos(), "nilness: nil dereference in field access %s.%s", v.Name(), m.Sel.Name)
				}
			}
		case *ast.CallExpr:
			if v := c.nilVarUse(m.Fun, state); v != nil {
				c.report(m.Pos(), "nilness: call of nil function %s", v.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if v := c.nilVarUse(ix.X, state); v != nil {
						if _, isMap := v.Type().Underlying().(*types.Map); isMap {
							c.report(ix.Pos(), "nilness: store into nil map %s", v.Name())
						}
					}
				}
			}
		}
		return true
	})
}

// nilVarUse resolves e to a tracked variable that is definitely nil.
func (c *nilChecker) nilVarUse(e ast.Expr, state nilState) *types.Var {
	v := identVar(c.pass, ast.Unparen(e))
	if v != nil && state[v] {
		return v
	}
	return nil
}

func (c *nilChecker) report(pos token.Pos, format string, args ...interface{}) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// refineEdge adapts the outgoing state along a conditional edge: after
// `v == nil` the true branch knows v is nil and the false branch knows it
// is not (and vice versa for !=).
func (c *nilChecker) refineEdge(b *cfg.Block, si int, state nilState) nilState {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return state
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return state
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return state
	}
	var v *types.Var
	if isNilLit(bin.Y) {
		v = identVar(c.pass, ast.Unparen(bin.X))
	} else if isNilLit(bin.X) {
		v = identVar(c.pass, ast.Unparen(bin.Y))
	}
	if v == nil || !c.track[v] {
		return state
	}
	// nilOnTrue: taking the true edge proves v is nil.
	nilOnTrue := bin.Op == token.EQL
	takesTrue := si == 0
	out := state.clone()
	if nilOnTrue == takesTrue {
		out[v] = true
	} else {
		delete(out, v)
	}
	return out
}

func runNilness(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	analyze := func(fn ast.Node, body *ast.BlockStmt, graph *cfg.CFG) {
		if graph == nil || body == nil {
			return
		}
		track := nilFuncScope(pass, fn, body)
		if len(track) == 0 {
			return
		}
		c := &nilChecker{pass: pass, track: track, seen: map[token.Pos]bool{}}
		// Must-analysis to a fixed point. in[b] == nil means "not yet
		// reached"; the join of a reached and an unreached edge is the
		// reached one.
		in := make([]nilState, len(graph.Blocks))
		if len(graph.Blocks) == 0 {
			return
		}
		in[0] = nilState{}
		for changed := true; changed; {
			changed = false
			for bi, b := range graph.Blocks {
				if in[bi] == nil {
					continue
				}
				state := in[bi].clone()
				for _, n := range b.Nodes {
					// During iteration only the transfer matters; reports
					// happen in the replay pass below.
					c.transfer(n, state)
				}
				for si, succ := range b.Succs {
					out := c.refineEdge(b, si, state)
					if in[succ.Index] == nil {
						in[succ.Index] = out.clone()
						changed = true
					} else if merged := in[succ.Index].intersect(out); !merged.equal(in[succ.Index]) {
						in[succ.Index] = merged
						changed = true
					}
				}
			}
		}
		for bi, b := range graph.Blocks {
			if in[bi] == nil {
				continue
			}
			state := in[bi].clone()
			for _, n := range b.Nodes {
				c.reportUses(n, state)
				c.transfer(n, state)
			}
		}
	}
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				analyze(n, n.Body, cfgs.FuncDecl(n))
			}
		case *ast.FuncLit:
			analyze(n, n.Body, cfgs.FuncLit(n))
		}
	})
	return nil, nil
}

