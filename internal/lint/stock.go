package lint

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/copylock"
)

func init() {
	// copylock's analyzer is registered under the name "copylocks", matching
	// `go vet`. Nilness is the local CFG-based subset defined in nilness.go.
	Stock = []*analysis.Analyzer{
		copylock.Analyzer,
		Nilness,
	}
}
