// Package loadgen generates steady-state serverless request streams against
// a Molecule runtime: Poisson arrivals with Zipf-distributed function
// popularity, the standard model for production FaaS traces (Shahrad et al.,
// which the paper cites for its keep-alive policies).
//
// The generator is deterministic for a given seed — arrivals are scheduled
// in virtual time, so two runs with the same configuration produce identical
// results.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Config describes one load-generation run.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Functions is the invocation population (all must be deployed).
	Functions []string
	// ZipfS is the popularity skew (>1; larger = more skewed). 0 selects a
	// uniform popularity.
	ZipfS float64
	// RatePerSec is the mean Poisson arrival rate.
	RatePerSec float64
	// Duration is the virtual-time window during which requests arrive.
	Duration time.Duration
	// Arg parameterizes every invocation's cost model.
	Arg workloads.Arg
	// Chains, when non-empty, mixes chain invocations into the stream:
	// with probability ChainFraction a request invokes a random chain
	// instead of a single function.
	Chains        [][]string
	ChainFraction float64
}

// Stats aggregates one run's outcome.
type Stats struct {
	Requests   int
	ColdStarts int
	Errors     int
	Latency    metrics.Recorder
	PerFunc    map[string]int
	// Chains counts chain-shaped requests and their latencies separately.
	Chains       int
	ChainLatency metrics.Recorder
}

// ColdRate returns the fraction of requests that cold-started.
func (s *Stats) ColdRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Requests)
}

// Run drives the configured request stream against rt from process p,
// returning once every request has completed. Requests execute concurrently
// (each in its own simulation process), so warm-pool contention and
// cold-start amplification behave as they would under real load.
func Run(p *sim.Proc, rt *molecule.Runtime, cfg Config) (*Stats, error) {
	if len(cfg.Functions) == 0 {
		return nil, fmt.Errorf("loadgen: no functions")
	}
	if cfg.RatePerSec <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: rate and duration must be positive")
	}
	for _, fn := range cfg.Functions {
		if _, err := rt.Deployment(fn); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Functions)-1))
	}
	pick := func() string {
		if zipf != nil {
			return cfg.Functions[zipf.Uint64()]
		}
		return cfg.Functions[rng.Intn(len(cfg.Functions))]
	}

	stats := &Stats{PerFunc: make(map[string]int)}
	env := p.Env()
	wg := sim.NewWaitGroup(env)

	// Schedule arrivals up front (deterministic given the seed).
	meanGap := float64(time.Second) / cfg.RatePerSec
	for t := time.Duration(0); ; {
		gap := time.Duration(rng.ExpFloat64() * meanGap)
		t += gap
		if t > cfg.Duration {
			break
		}
		stats.Requests++
		if len(cfg.Chains) > 0 && rng.Float64() < cfg.ChainFraction {
			chain := cfg.Chains[rng.Intn(len(cfg.Chains))]
			stats.Chains++
			for _, fn := range chain {
				stats.PerFunc[fn]++
			}
			wg.Add(1)
			env.At(p.Now().After(t), func() {
				env.Spawn("chain-req", func(rp *sim.Proc) {
					defer wg.Done()
					res, err := rt.InvokeChain(rp, chain, molecule.ChainOptions{Arg: cfg.Arg})
					if err != nil {
						stats.Errors++
						return
					}
					stats.ColdStarts += res.ColdStarts
					stats.ChainLatency.Add(res.Total)
					stats.Latency.Add(res.Total)
				})
			})
			continue
		}
		fn := pick()
		stats.PerFunc[fn]++
		wg.Add(1)
		env.At(p.Now().After(t), func() {
			env.Spawn("req-"+fn, func(rp *sim.Proc) {
				defer wg.Done()
				res, err := rt.Invoke(rp, fn, molecule.InvokeOptions{PU: -1, Arg: cfg.Arg})
				if err != nil {
					stats.Errors++
					return
				}
				if res.Cold {
					stats.ColdStarts++
				}
				stats.Latency.Add(res.Total)
			})
		})
	}
	wg.Wait(p)
	return stats, nil
}

// PoissonGap is exposed for tests: the expected inter-arrival gap for a
// rate.
func PoissonGap(ratePerSec float64) time.Duration {
	return time.Duration(math.Round(float64(time.Second) / ratePerSec))
}
