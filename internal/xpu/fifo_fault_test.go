package xpu

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/sim"
)

// accelRig extends the CPU+DPU rig with an FPGA whose shim node is virtual,
// hosted on the CPU — the configuration that exposed the remote-path guard
// mismatch.
type accelRig struct {
	*rig
	fpgaNode *Node
	fpgaXPID XPID
}

func newAccelRig(t *testing.T) *accelRig {
	t.Helper()
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1})
	shim := NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	dpuOS := localos.New(env, m.PU(1))
	cn := shim.AddNode(m.PU(0), cpuOS)
	dn := shim.AddNode(m.PU(1), dpuOS)
	fn := shim.AddVirtualNode(m.PU(2), m.PU(0), cpuOS)
	r := &rig{env: env, m: m, shim: shim, cpuNode: cn, dpuNode: dn}
	r.cpuProc = cpuOS.NewDetachedProcess("cpu-app")
	r.dpuProc = dpuOS.NewDetachedProcess("dpu-app")
	r.cpuXPID = cn.Register(r.cpuProc)
	r.dpuXPID = dn.Register(r.dpuProc)
	ar := &accelRig{rig: r, fpgaNode: fn}
	fpgaProc := cpuOS.NewDetachedProcess("fpga-app")
	ar.fpgaXPID = fn.Register(fpgaProc)
	return ar
}

// A virtual node (FPGA logical PU, CPU host) accessing a FIFO homed on its
// own host must be a local operation: the old guard compared the *logical*
// PU against the home and charged a spurious CPU->CPU self-transfer.
func TestVirtualNodeLocalFIFOChargesNoTransfer(t *testing.T) {
	r := newAccelRig(t)
	o := obs.New(r.env)
	r.shim.SetMetrics(obsSink{o})
	r.env.Spawn("test", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 4) // Home = CPU (PU 0)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.grantLocal(r.fpgaXPID, ObjID{Kind: "fifo", UUID: "f"}, PermRead|PermWrite)
		vfd, err := r.fpgaNode.FIFOConnect(p, r.fpgaXPID, "f")
		if err != nil {
			t.Fatalf("FIFOConnect: %v", err)
		}

		start := r.env.Now()
		if err := vfd.Write(p, localos.Message{Payload: make([]byte, 64)}); err != nil {
			t.Fatalf("Write: %v", err)
		}
		elapsed := r.env.Now().Sub(start)
		// Virtual nodes run Base transport on their CPU host; a local write
		// costs exactly one XPUcall — any extra time is the spurious
		// self-transfer the old guard charged.
		if want := TransportBase.CallOverhead(hw.CPU); elapsed != want {
			t.Errorf("virtual-node local write took %v, want bare XPUcall %v", elapsed, want)
		}
		if got := o.Counter("xpu_nipc_messages_total", obs.L("link", "0->0")).Value(); got != 0 {
			t.Errorf("local write recorded %d self-link nIPC messages", got)
		}
		if _, err := fd.Read(p); err != nil {
			t.Fatalf("Read: %v", err)
		}
	})
	r.env.Run()
}

// A FIFO homed on a virtual node physically lives in the host's memory, so
// a remote writer must charge the link to the *host*, not to the
// accelerator's logical PU (the old code charged DPU->FPGA, a
// CPU-intercepted two-hop link, instead of the direct DPU->CPU RDMA link).
func TestFIFOOnVirtualNodeChargesHostLink(t *testing.T) {
	r := newAccelRig(t)
	o := obs.New(r.env)
	r.shim.SetMetrics(obsSink{o})
	r.env.Spawn("test", func(p *sim.Proc) {
		_, err := r.fpgaNode.FIFOInit(p, r.fpgaXPID, "vf", 4) // Home = FPGA (PU 2), hosted on CPU (PU 0)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.grantLocal(r.dpuXPID, ObjID{Kind: "fifo", UUID: "vf"}, PermWrite)
		dfd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "vf")
		if err != nil {
			t.Fatalf("FIFOConnect: %v", err)
		}

		start := r.env.Now()
		if err := dfd.Write(p, localos.Message{}); err != nil { // 0-byte payload: base latency only
			t.Fatalf("Write: %v", err)
		}
		elapsed := r.env.Now().Sub(start)
		// DPU -> CPU host is one RDMA hop; the old endpoints (DPU -> FPGA)
		// would charge the CPU-intercepted RDMA+DMA path.
		want := r.dpuNode.Mode.CallOverhead(hw.DPU) + params.RDMABaseLatency
		if elapsed != want {
			t.Errorf("remote write to virtual-node FIFO took %v, want XPUcall+RDMA %v", elapsed, want)
		}
		if got := o.Counter("xpu_nipc_messages_total", obs.L("link", "1->0")).Value(); got != 1 {
			t.Errorf("nIPC recorded on 1->0 = %d, want 1 (the physical DPU->host link)", got)
		}
		if got := o.Counter("xpu_nipc_messages_total", obs.L("link", "1->2")).Value(); got != 0 {
			t.Errorf("nIPC recorded on logical link 1->2 = %d, want 0", got)
		}
	})
	r.env.Run()
}

// Closing a FIFO while a writer is parked on its full buffer must wake the
// writer with a closed error instead of leaving it parked forever.
func TestFIFOCloseWakesBlockedWriter(t *testing.T) {
	r := newRig(t)
	var fd *FD
	var writeErr = errors.New("unset")
	r.env.Spawn("setup", func(p *sim.Proc) {
		var err error
		fd, err = r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		if err := fd.Write(p, localos.Message{Kind: "fill"}); err != nil {
			t.Fatalf("fill write: %v", err)
		}
		r.env.Spawn("blocked-writer", func(wp *sim.Proc) {
			writeErr = fd.Write(wp, localos.Message{Kind: "stuck"}) // parks: buffer full
		})
		p.Sleep(params.XPUCallIPCRoundTripCPU * 100) // let the writer park
		if err := fd.Close(p); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
	r.env.Run()
	if writeErr == nil {
		t.Error("write woken by Close reported success")
	} else if writeErr.Error() == "unset" {
		t.Error("blocked writer never completed")
	}
	if blocked := r.env.BlockedProcs(); len(blocked) != 0 {
		t.Errorf("procs still parked after Close: %v", blocked)
	}
}

// Every XPU operation against a crashed node must fail fast with
// ErrNodeDown — no time charged, no hang on handlers that will never run.
func TestOpsAgainstDownNodeFailFast(t *testing.T) {
	r := newRig(t)
	plan := faults.NewPlan(r.env, 1)
	r.shim.Faults = plan
	r.env.Spawn("test", func(p *sim.Proc) {
		dfd, err := r.dpuNode.FIFOInit(p, r.dpuXPID, "df", 1)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		plan.Kill(1)
		start := r.env.Now()
		check := func(op string, err error) {
			if !errors.Is(err, ErrNodeDown) {
				t.Errorf("%s against down PU: err = %v, want ErrNodeDown", op, err)
			}
		}
		check("Write", dfd.Write(p, localos.Message{}))
		_, err = dfd.Read(p)
		check("Read", err)
		_, err = r.dpuNode.FIFOInit(p, r.dpuXPID, "df2", 1)
		check("FIFOInit", err)
		_, err = r.dpuNode.FIFOConnect(p, r.dpuXPID, "df")
		check("FIFOConnect", err)
		_, err = r.cpuNode.XSpawn(p, 1, "child", nil, nil)
		check("XSpawn to down PU", err)
		check("GrantCap", r.dpuNode.GrantCap(p, r.dpuXPID, r.cpuXPID, ObjID{Kind: "fifo", UUID: "df"}, PermRead))
		check("RevokeCap", r.dpuNode.RevokeCap(p, r.dpuXPID, r.cpuXPID, ObjID{Kind: "fifo", UUID: "df"}, PermRead))
		check("Close", dfd.Close(p))
		if elapsed := r.env.Now().Sub(start); elapsed != 0 {
			t.Errorf("fail-fast ops charged %v of virtual time", elapsed)
		}

		// A FIFO homed on a crashed PU rejects access from live nodes too.
		r.shim.grantLocal(r.cpuXPID, ObjID{Kind: "fifo", UUID: "df"}, PermRead|PermWrite)
		cfd, err := r.cpuNode.FIFOConnect(p, r.cpuXPID, "df")
		if err != nil {
			t.Fatalf("FIFOConnect from CPU: %v", err)
		}
		check("Write to FIFO on down home", cfd.Write(p, localos.Message{}))

		// Revive: everything works again.
		plan.Revive(1)
		if err := cfd.Write(p, localos.Message{}); err != nil {
			t.Errorf("write after revive: %v", err)
		}
	})
	r.env.Run()
}
