package sim

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded partitions a simulation into domains — one Env per simulated
// machine (or other isolation unit) — and drives them with conservative
// (Chandy–Misra–Bryant-style) synchronization so independent domains execute
// on real OS threads in parallel while the observable execution stays
// byte-identical at every worker count.
//
// # Model
//
// Each domain is a complete Env: its own event heap, virtual clock, sequence
// counter, event pool, and process set. Processes spawned in a domain may
// only touch that domain's Env and state; the sole cross-domain edge is
// Send, which schedules a callback on another domain after a delay. Delays
// are bounded below by the group's lookahead — in the Molecule stack the
// lookahead is the base latency of the hw.Link connecting two machines, so
// any cross-machine message already pays at least that much virtual time in
// flight (see hw.NewInterconnect).
//
// # Synchronization
//
// The driver executes rounds. Each round computes the global horizon h (the
// minimum next-event time over all domains) and opens the window [h, h+L)
// where L is the lookahead. Every event inside the window is causally
// independent of every event in any other domain's window: a cross-domain
// message generated at time t >= h arrives at t+L >= h+L, strictly after the
// window closes. Domains therefore execute their windows concurrently with
// no locks on the hot path. At the barrier between rounds, pending
// cross-domain messages are merged in deterministic (arrival time, source
// domain, source sequence) order and enqueued on their destination heaps
// before any event at or beyond the old bound fires.
//
// # Determinism
//
// Within a domain, events fire in (time, sequence) order exactly as in a
// standalone Env. Across domains, the only interaction points are the
// barriers, whose delivery order is a pure function of virtual time — never
// of wall-clock interleaving — so a run with 1 worker and a run with N
// workers execute the same events in the same per-domain order and produce
// identical traces, clocks, and counters. A group with a single domain and
// no lookahead short-circuits to Env.Run, the classic single-heap loop —
// bit-for-bit the pre-sharding kernel.
//
// If no lookahead is configured (Lookahead() == 0), a multi-domain group
// falls back to a sequential deterministic merge: one event at a time,
// globally ordered by (time, domain), with the Sleep fast path disabled so a
// zero-delay cross-domain message can never be overtaken. This mode is
// always safe, never parallel.
type Sharded struct {
	doms      []*Env
	lookahead Duration
	outbox    [][]crossMsg // per source domain; owned by that domain's thread
	merge     []crossMsg   // barrier scratch buffer, reused between rounds

	// Window telemetry (SetWindowObserver). All nil/zero when detached;
	// the windowed driver then pays one nil check per round.
	winObs    WindowObserver
	winEvents []int   // per-domain events fired in the current window
	winFlow   []int64 // D×D src→dst messages delivered at the last barrier
	winRound  int64
}

// crossMsg is one cross-domain message parked in a source domain's outbox
// until the next barrier.
type crossMsg struct {
	at     Time  // arrival time on the destination domain
	src    int   // source domain
	srcSeq int64 // source domain's sequence counter at send time
	to     int   // destination domain
	fn     func()
}

// NewSharded returns a group of n independent domains (n >= 1) at time 0.
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	sh := &Sharded{
		doms:   make([]*Env, n),
		outbox: make([][]crossMsg, n),
	}
	for i := range sh.doms {
		e := NewEnv()
		e.group = sh
		e.domain = i
		sh.doms[i] = e
	}
	return sh
}

// Domains returns the number of domains in the group.
func (sh *Sharded) Domains() int { return len(sh.doms) }

// Domain returns the Env of domain i.
func (sh *Sharded) Domain(i int) *Env { return sh.doms[i] }

// LimitLookahead declares that every cross-domain delay is at least d,
// keeping the smallest bound declared so far. Larger lookahead means larger
// windows and fewer barriers; correctness requires only that no Send ever
// uses a delay below it, which Send enforces.
func (sh *Sharded) LimitLookahead(d Duration) {
	if d <= 0 {
		return
	}
	if sh.lookahead == 0 || d < sh.lookahead {
		sh.lookahead = d
	}
}

// Lookahead returns the configured lookahead (0 = unset).
func (sh *Sharded) Lookahead() Duration { return sh.lookahead }

// Send schedules fn to run in scheduler context of domain `to` at the
// sending domain's current time plus delay. It must be called from within
// domain `from` (one of its processes or scheduler callbacks). With a
// configured lookahead, delay must be at least the lookahead — that bound is
// what lets windows run in parallel — and violating it panics rather than
// silently racing. Messages are held in a per-domain outbox and delivered at
// the next barrier in deterministic (arrival time, source domain, source
// sequence) order.
func (sh *Sharded) Send(from *Env, to int, delay Duration, fn func()) {
	if from.group != sh {
		panic("sim: Send from an Env outside this sharded group")
	}
	if to < 0 || to >= len(sh.doms) {
		panic("sim: Send to out-of-range domain")
	}
	if sh.lookahead > 0 && delay < sh.lookahead {
		panic("sim: cross-domain send below the declared lookahead")
	}
	if delay < 0 {
		delay = 0
	}
	src := from.domain
	sh.outbox[src] = append(sh.outbox[src], crossMsg{
		at:     from.now.After(delay),
		src:    src,
		srcSeq: from.seq,
		to:     to,
		fn:     fn,
	})
}

// deliver drains every outbox, sorts the pending messages by (arrival time,
// source domain, source sequence) — a total deterministic order, since the
// sequence counter is unique per source — and enqueues them on their
// destination heaps. Runs only between windows, single-threaded. Returns
// the number of messages delivered.
func (sh *Sharded) deliver() int {
	msgs := sh.merge[:0]
	for i := range sh.outbox {
		msgs = append(msgs, sh.outbox[i]...)
		sh.outbox[i] = sh.outbox[i][:0]
	}
	if len(msgs) == 0 {
		sh.merge = msgs
		return 0
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].at != msgs[j].at {
			return msgs[i].at < msgs[j].at
		}
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].srcSeq < msgs[j].srcSeq
	})
	n := len(msgs)
	d := len(sh.doms)
	for _, m := range msgs {
		sh.doms[m.to].schedule(m.at, m.fn)
		if sh.winFlow != nil && sh.winObs != nil {
			sh.winFlow[m.src*d+m.to]++
		}
	}
	for i := range msgs {
		msgs[i].fn = nil
	}
	sh.merge = msgs[:0]
	return n
}

// horizon returns the minimum next-event time across all domains and whether
// any domain has a queued event.
func (sh *Sharded) horizon() (Time, bool) {
	var h Time
	found := false
	for _, d := range sh.doms {
		if t, ok := d.nextEventTime(); ok && (!found || t < h) {
			h, found = t, true
		}
	}
	return h, found
}

// anyStopped reports whether any domain called Stop.
func (sh *Sharded) anyStopped() bool {
	for _, d := range sh.doms {
		if d.stopped {
			return true
		}
	}
	return false
}

// Run drives every domain until all heaps and outboxes drain (or a domain
// calls Stop), using up to `workers` OS threads for the parallel windows
// (workers <= 0 means GOMAXPROCS; the count is capped at the number of
// domains). It returns the maximum final virtual time across domains.
//
// The execution mode depends only on the group's structure, never on the
// worker count, so `workers` is purely a performance knob:
//
//   - lookahead configured: the conservative windowed driver, at any domain
//     count (a single-domain group still runs in windows, which exercises
//     the same machinery and is provably equivalent to the classic loop);
//   - no lookahead, one domain: exactly Env.Run, the classic loop;
//   - no lookahead, several domains: the sequential deterministic merge.
//
// The execution — per-domain event order, traces, clocks, counters — is
// identical for every workers value: parallelism changes wall-clock time
// only.
func (sh *Sharded) Run(workers int) Time {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sh.doms) {
		workers = len(sh.doms)
	}
	switch {
	case sh.lookahead > 0:
		sh.runWindows(workers)
	case len(sh.doms) == 1:
		sh.doms[0].Run()
		if len(sh.outbox[0]) > 0 {
			panic("sim: Send on a single-domain group requires a lookahead (LimitLookahead)")
		}
	default:
		sh.runMerge()
	}
	var end Time
	for _, d := range sh.doms {
		if d.now > end {
			end = d.now
		}
	}
	return end
}

// runWindows is the conservative windowed driver: rounds of
// deliver → horizon → parallel windows, until quiescence.
func (sh *Sharded) runWindows(workers int) {
	for _, d := range sh.doms {
		d.stopped = false
		d.limit = 0
	}
	la := Time(sh.lookahead)
	for {
		delivered := sh.deliver()
		h, ok := sh.horizon()
		if !ok {
			return
		}
		bound := h + la
		if workers <= 1 {
			if sh.winObs != nil {
				for i, d := range sh.doms {
					sh.winEvents[i] = d.window(bound)
				}
			} else {
				for _, d := range sh.doms {
					d.window(bound)
				}
			}
		} else {
			sh.runRound(bound, workers)
		}
		if sh.winObs != nil {
			sh.winRound++
			sh.winObs.WindowRound(WindowStats{
				Round:     sh.winRound,
				Horizon:   h,
				Bound:     bound,
				Delivered: delivered,
				Events:    sh.winEvents,
				Flow:      sh.winFlow,
			})
			for i := range sh.winFlow {
				sh.winFlow[i] = 0
			}
		}
		if sh.anyStopped() {
			return
		}
	}
}

// runRound executes one window on every domain using a pool of worker
// goroutines. Domains are claimed from an atomic counter; since windows are
// mutually independent, the claim order cannot influence the execution.
// With telemetry attached each worker writes its domain's event count to a
// distinct index of winEvents — no two workers share an element, so the
// writes are race-free and the counts are identical to the sequential
// path's.
func (sh *Sharded) runRound(bound Time, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	events := ([]int)(nil)
	if sh.winObs != nil {
		events = sh.winEvents
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sh.doms) {
					return
				}
				n := sh.doms[i].window(bound)
				if events != nil {
					events[i] = n
				}
			}
		}()
	}
	wg.Wait()
}

// runMerge is the zero-lookahead fallback: a global deterministic merge that
// fires one event at a time from the domain with the earliest (time, domain)
// key, delivering outboxes before every pop so even zero-delay cross-domain
// messages order correctly. Sequential by construction.
func (sh *Sharded) runMerge() {
	for _, d := range sh.doms {
		d.stopped = false
		d.limit = 0
	}
	for {
		sh.deliver()
		best := -1
		var bt Time
		for i, d := range sh.doms {
			if t, ok := d.nextEventTime(); ok && (best < 0 || t < bt) {
				best, bt = i, t
			}
		}
		if best < 0 || sh.anyStopped() {
			return
		}
		sh.doms[best].fireNext()
	}
}

// Now returns the maximum current virtual time across domains.
func (sh *Sharded) Now() Time {
	var t Time
	for _, d := range sh.doms {
		if d.now > t {
			t = d.now
		}
	}
	return t
}

// Clocks returns each domain's current virtual time, indexed by domain.
func (sh *Sharded) Clocks() []Time {
	out := make([]Time, len(sh.doms))
	for i, d := range sh.doms {
		out[i] = d.now
	}
	return out
}

// Pending reports the total number of queued events across domains,
// including undelivered cross-domain messages.
func (sh *Sharded) Pending() int {
	n := 0
	for i, d := range sh.doms {
		n += d.Pending() + len(sh.outbox[i])
	}
	return n
}

// LiveProcs reports the number of live processes across all domains.
func (sh *Sharded) LiveProcs() int {
	n := 0
	for _, d := range sh.doms {
		n += d.LiveProcs()
	}
	return n
}

// Scheduled reports the total events sequenced across all domains; see
// Env.Scheduled.
func (sh *Sharded) Scheduled() int64 {
	var n int64
	for _, d := range sh.doms {
		n += d.seq
	}
	return n
}

// BlockedProcs returns the names of blocked processes across all domains,
// sorted lexicographically (the same documented guarantee as
// Env.BlockedProcs, so output is identical at every shard count).
func (sh *Sharded) BlockedProcs() []string {
	var out []string
	for _, d := range sh.doms {
		out = append(out, d.BlockedProcs()...)
	}
	sort.Strings(out)
	return out
}

// EnableTrace starts trace recording on every domain.
func (sh *Sharded) EnableTrace() {
	for _, d := range sh.doms {
		d.EnableTrace()
	}
}

// TraceLog returns the merged trace across domains: entries are ordered by
// virtual time, with ties broken by domain index and, within a domain, by
// emission order. The merge is a pure function of the per-domain logs, so it
// is identical at every worker count. Workloads that need the merged log to
// also be identical across different domain partitions should keep
// same-instant events on distinct domains disjoint in time (the sharded soak
// stamps each machine a distinct time residue for exactly this reason).
func (sh *Sharded) TraceLog() []TraceEvent {
	if len(sh.doms) == 1 {
		return sh.doms[0].TraceLog()
	}
	total := 0
	for _, d := range sh.doms {
		total += len(d.trace)
	}
	if total == 0 {
		return nil
	}
	out := make([]TraceEvent, 0, total)
	for _, d := range sh.doms {
		out = append(out, d.trace...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
