package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden -json report")

// TestReportGolden pins the -json schema byte for byte: the raw `go vet
// -json` stream in testdata/vet_stream.json must always transform into
// testdata/golden_report.json — field names, ordering, waiver-eligibility
// flags, and path relativization are all part of the contract.
func TestReportGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "vet_stream.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := buildReport(raw, "/work/repo")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "golden_report.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("-json report schema drifted from golden.\ngot:\n%s\nwant:\n%s\n(run `go test ./cmd/moleculelint -run Golden -update` after an intentional change)", got, want)
	}
}

// TestReportEmpty pins the no-findings document: diagnostics must be an
// empty array, never null.
func TestReportEmpty(t *testing.T) {
	rep, err := buildReport([]byte("# repro/internal/sim\n"), "/work/repo")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"schema":1,"diagnostics":[]}`
	if string(got) != want {
		t.Errorf("empty report = %s, want %s", got, want)
	}
}

// TestWaiverFlags pins the analyzer→marker mapping surfaced in the report.
func TestWaiverFlags(t *testing.T) {
	cases := map[string]string{
		"maporder":    "//lint:unordered",
		"crossdomain": "//lint:owned",
		"releasepath": "//lint:released",
		"settleonce":  "//lint:settled",
		"simtime":     "",
		"detrand":     "",
		"layering":    "",
		"hotpath":     "",
		"nilness":     "",
		"copylocks":   "",
	}
	for analyzer, marker := range cases {
		chunk := []byte(`{"p": {"` + analyzer + `": [{"posn": "f.go:1:1", "message": "m"}]}}`)
		rep, err := buildReport(chunk, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diagnostics) != 1 {
			t.Fatalf("%s: got %d diagnostics", analyzer, len(rep.Diagnostics))
		}
		d := rep.Diagnostics[0]
		if d.WaiverEligible != (marker != "") || d.WaiverMarker != marker {
			t.Errorf("%s: waiverEligible=%v marker=%q, want marker %q", analyzer, d.WaiverEligible, d.WaiverMarker, marker)
		}
	}
}
