package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// The -json output contract. The schema is stable: tooling (the CI artifact
// upload, editor integrations) may rely on these field names and on the
// diagnostic ordering (by file, line, column, analyzer, message).
//
//	{
//	  "schema": 1,
//	  "diagnostics": [
//	    {
//	      "analyzer": "maporder",
//	      "position": "internal/obs/report.go:41:2",
//	      "message": "maporder: range over map in report path (...)",
//	      "waiverEligible": true,
//	      "waiverMarker": "//lint:unordered"
//	    }
//	  ]
//	}
//
// waiverEligible reports whether the analyzer honors an in-source waiver
// marker; waiverMarker is that marker (omitted when not eligible). Positions
// are relative to the repository root when the file is under it.

// reportSchema is bumped only on incompatible changes to the structure.
const reportSchema = 1

// Diagnostic is one finding in the stable schema.
type Diagnostic struct {
	Analyzer       string `json:"analyzer"`
	Position       string `json:"position"`
	Message        string `json:"message"`
	WaiverEligible bool   `json:"waiverEligible"`
	WaiverMarker   string `json:"waiverMarker,omitempty"`
}

// Report is the top-level -json document.
type Report struct {
	Schema      int          `json:"schema"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// vetDiag mirrors the per-diagnostic object in `go vet -json` output.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// buildReport converts raw `go vet -json` output (a stream of
// pkg→analyzer→[]diagnostic JSON objects interleaved with `# pkg` comment
// lines) into the stable report, relativizing positions against base.
func buildReport(raw []byte, base string) (*Report, error) {
	var clean bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	rep := &Report{Schema: reportSchema, Diagnostics: []Diagnostic{}}
	dec := json.NewDecoder(&clean)
	for {
		var chunk map[string]map[string][]vetDiag
		if err := dec.Decode(&chunk); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go vet -json output: %v", err)
		}
		for _, byAnalyzer := range chunk {
			for analyzer, ds := range byAnalyzer {
				marker, eligible := lint.WaiverMarkerFor(analyzer)
				for _, d := range ds {
					rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
						Analyzer:       analyzer,
						Position:       relPosition(d.Posn, base),
						Message:        d.Message,
						WaiverEligible: eligible,
						WaiverMarker:   marker,
					})
				}
			}
		}
	}
	sort.Slice(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		af, al, ac := splitPosition(a.Position)
		bf, bl, bc := splitPosition(b.Position)
		if af != bf {
			return af < bf
		}
		if al != bl {
			return al < bl
		}
		if ac != bc {
			return ac < bc
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return rep, nil
}

// relPosition rewrites file:line:col with the file path relative to base.
func relPosition(posn, base string) string {
	file, rest := posn, ""
	// Split off the trailing :line[:col] — the file part may hold colons on
	// other platforms, so cut from the right.
	for i := 0; i < 2; i++ {
		if j := strings.LastIndex(file, ":"); j >= 0 {
			if _, err := strconv.Atoi(file[j+1:]); err == nil {
				rest = file[j:] + rest
				file = file[:j]
				continue
			}
		}
		break
	}
	if base != "" && filepath.IsAbs(file) {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return file + rest
}

// splitPosition parses "file:line:col" for ordering; absent parts sort as 0.
func splitPosition(posn string) (file string, line, col int) {
	file = posn
	for i := 0; i < 2; i++ {
		j := strings.LastIndex(file, ":")
		if j < 0 {
			break
		}
		n, err := strconv.Atoi(file[j+1:])
		if err != nil {
			break
		}
		line, col = n, line
		file = file[:j]
	}
	return file, line, col
}
