package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/loadgen"
	"repro/internal/localos"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

// The ablations below are not paper figures; they isolate the design
// choices DESIGN.md §5 calls out so each optimization's contribution is
// visible on its own.

func init() {
	register(Experiment{
		ID:    "abl-transport",
		Title: "Ablation: XPUcall transport per PU class",
		Paper: "Fig 7 design space: Base (2 IPC round trips) / MPSC (1) / Poll (0)",
		Run:   runAblTransport,
	})
	register(Experiment{
		ID:    "abl-placement",
		Title: "Ablation: chain placement policies",
		Paper: "§5 profile selection: chain affinity is the default for a reason",
		Run:   runAblPlacement,
	})
	register(Experiment{
		ID:    "abl-keepalive",
		Title: "Ablation: keep-alive cache sizing under Zipf load",
		Paper: "§4.2/§5 keep-alive policies (FaasCache-style greedy-dual)",
		Run:   runAblKeepalive,
	})
	register(Experiment{
		ID:    "abl-sync",
		Title: "Ablation: lazy vs eager state synchronization",
		Paper: "§5 inter-PU synchronization strategies",
		Run:   runAblSync,
	})
	register(Experiment{
		ID:    "abl-shimthreads",
		Title: "Ablation: multi-threaded XPUcall handling",
		Paper: "§5: per-thread MPSC queues for XPUcall-intensive scenarios",
		Run:   runAblShimThreads,
	})
	register(Experiment{
		ID:    "abl-erase",
		Title: "Ablation: FPGA erase policy under image churn",
		Paper: "§3.5: erasing is unnecessary; the next create replaces the image",
		Run:   runAblErase,
	})
}

func runAblTransport() []*metrics.Table {
	t := &metrics.Table{
		Title:  "XPUcall overhead by transport and PU",
		Note:   "user<->shim cost per call, before any interconnect transfer",
		Header: []string{"transport", "on CPU", "on BF-1 DPU", "DPU/CPU"},
	}
	for _, mode := range []xpu.TransportMode{xpu.TransportBase, xpu.TransportMPSC, xpu.TransportPoll} {
		cpu := mode.CallOverhead(hw.CPU)
		dpu := mode.CallOverhead(hw.DPU)
		t.AddRow(mode.String(), fd(cpu), fd(dpu), fr(float64(dpu)/float64(cpu)))
	}
	return []*metrics.Table{t}
}

func runAblPlacement() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Alexa chain under each placement policy (warm)",
		Header: []string{"policy", "placement", "e2e latency", "billed units"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
		chain := workloads.AlexaChain()
		for _, fn := range chain {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
		}
		for _, policy := range []molecule.PlacementPolicy{
			molecule.PlaceChainAffinity, molecule.PlaceFastest,
			molecule.PlaceCheapest, molecule.PlaceScatter,
		} {
			placement, err := rt.PlaceChain(chain, policy)
			if err != nil {
				panic(err)
			}
			// Warm, then measure latency and the billing delta.
			if _, err := rt.InvokeChain(p, chain, molecule.ChainOptions{Placement: placement}); err != nil {
				panic(err)
			}
			before := rt.Billing().Total()
			res, err := rt.InvokeChain(p, chain, molecule.ChainOptions{Placement: placement})
			if err != nil {
				panic(err)
			}
			cost := rt.Billing().Total() - before
			t.AddRow(policy.String(), fmt.Sprintf("%v", placement), fd(res.Total),
				fmt.Sprintf("%.1f", cost))
		}
	})
	return []*metrics.Table{t}
}

func runAblKeepalive() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Cold-start rate vs keep-alive cache size (Zipf 1.2, 50 req/s, 10s)",
		Header: []string{"warm cache per PU", "cold-start rate", "p50 latency", "p99 latency"},
	}
	for _, capacity := range []int{1, 2, 4, 8, 16, 32} {
		var stats *loadgen.Stats
		sandboxed(func(p *sim.Proc) {
			opts := molecule.DefaultOptions()
			opts.KeepWarmPerPU = capacity
			rt := newMolecule(p, hw.Config{DPUs: 1}, opts)
			cfg := loadgen.Config{
				Seed:       7,
				Functions:  []string{"matmul", "pyaes", "chameleon", "image-resize", "dd"},
				ZipfS:      1.2,
				RatePerSec: 50,
				Duration:   10 * time.Second,
			}
			for _, fn := range cfg.Functions {
				if err := rt.Deploy(p, fn,
					molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
					panic(err)
				}
			}
			var err error
			stats, err = loadgen.Run(p, rt, cfg)
			if err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprintf("%d", capacity),
			fmt.Sprintf("%.1f%%", stats.ColdRate()*100),
			fd(stats.Latency.Percentile(50)), fd(stats.Latency.Percentile(99)))
	}
	return []*metrics.Table{t}
}

func runAblSync() []*metrics.Table {
	t := &metrics.Table{
		Title:  "State synchronization: lazy vs eager deletes (64 FIFO create/close cycles)",
		Header: []string{"strategy", "broadcasts", "lazy flushes", "total sync time"},
	}
	for _, eager := range []bool{false, true} {
		var stats xpu.SyncStats
		var elapsed time.Duration
		sandboxed(func(p *sim.Proc) {
			env := p.Env()
			m := hw.Build(env, hw.Config{DPUs: 2})
			shim := xpu.NewShim(env, m)
			shim.EagerDeletes = eager
			cpuOS := localos.New(env, m.PU(0))
			node := shim.AddNode(m.PU(0), cpuOS)
			shim.AddNode(m.PU(1), localos.New(env, m.PU(1)))
			shim.AddNode(m.PU(2), localos.New(env, m.PU(2)))
			x := node.Register(cpuOS.NewDetachedProcess("app"))
			start := p.Now()
			for i := 0; i < 64; i++ {
				fd, err := node.FIFOInit(p, x, fmt.Sprintf("churn-%d", i), 1)
				if err != nil {
					panic(err)
				}
				if err := fd.Close(p); err != nil {
					panic(err)
				}
			}
			elapsed = p.Now().Sub(start)
			stats = shim.Stats()
		})
		name := "lazy (batched)"
		if eager {
			name = "eager (immediate)"
		}
		t.AddRow(name, fmt.Sprintf("%d", stats.ImmediateSyncs),
			fmt.Sprintf("%d", stats.LazyFlushes), fd(elapsed))
	}
	return []*metrics.Table{t}
}

func runAblShimThreads() []*metrics.Table {
	t := &metrics.Table{
		Title:  "XPUcall-intensive makespan vs shim handler threads (64 concurrent callers)",
		Header: []string{"handler threads", "makespan", "speedup"},
	}
	var base time.Duration
	for _, threads := range []int{1, 2, 4, 8} {
		var makespan time.Duration
		sandboxed(func(p *sim.Proc) {
			env := p.Env()
			m := hw.Build(env, hw.Config{DPUs: 1})
			shim := xpu.NewShim(env, m)
			dpuOS := localos.New(env, m.PU(1))
			node := shim.AddNode(m.PU(1), dpuOS)
			node.SetHandlerThreads(threads)
			x := node.Register(dpuOS.NewDetachedProcess("app"))
			wg := sim.NewWaitGroup(env)
			start := p.Now()
			for i := 0; i < 64; i++ {
				i := i
				wg.Add(1)
				env.Spawn("caller", func(cp *sim.Proc) {
					defer wg.Done()
					fd, err := node.FIFOInit(cp, x, fmt.Sprintf("t%d-%d", threads, i), 1)
					if err != nil {
						panic(err)
					}
					fd.Close(cp)
				})
			}
			wg.Wait(p)
			makespan = p.Now().Sub(start)
		})
		if threads == 1 {
			base = makespan
		}
		t.AddRow(fmt.Sprintf("%d", threads), fd(makespan), fr(float64(base)/float64(makespan)))
	}
	return []*metrics.Table{t}
}

func runAblErase() []*metrics.Table {
	t := &metrics.Table{
		Title:  "FPGA image churn: erase-always vs no-erase (8 image replacements)",
		Header: []string{"policy", "makespan", "erases performed"},
	}
	for _, policy := range []sandbox.ErasePolicy{sandbox.EraseAlways, sandbox.NoErase} {
		var makespan time.Duration
		var erases int
		sandboxed(func(p *sim.Proc) {
			m := hw.Build(p.Env(), hw.Config{FPGAs: 1})
			rf, err := sandbox.NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
			if err != nil {
				panic(err)
			}
			rf.Policy = policy
			start := p.Now()
			for i := 0; i < 8; i++ {
				if err := rf.Create(p, []sandbox.Spec{{ID: fmt.Sprintf("s%d", i), FuncID: "k"}}); err != nil {
					panic(err)
				}
			}
			makespan = p.Now().Sub(start)
			_, erases = rf.Device().ProgramCounts()
		})
		name := "erase-always"
		if policy == sandbox.NoErase {
			name = "no-erase"
		}
		t.AddRow(name, fd(makespan), fmt.Sprintf("%d", erases))
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-startupmode",
		Title: "Ablation: cold-start mechanism (plain / snapshot / cfork)",
		Paper: "Fig 15a design space: snapshot restores in ~45ms; cfork reaches <10ms",
		Run:   runAblStartupMode,
	})
}

func runAblStartupMode() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Cold-start latency by mechanism (Python image-processing, steady state)",
		Note:   "steady state: templates/snapshots already prepared; first-start cost shown separately",
		Header: []string{"mechanism", "first cold start", "steady cold start", "vs plain"},
	}
	type mode struct {
		name string
		opts molecule.Options
	}
	modes := []mode{
		{"plain boot", molecule.Options{Startup: molecule.StartupPlain, KeepWarmPerPU: 64}},
		{"snapshot restore", molecule.Options{Startup: molecule.StartupSnapshot, KeepWarmPerPU: 64}},
		{"cfork", molecule.DefaultOptions()},
	}
	var plainSteady time.Duration
	for _, md := range modes {
		var first, steady time.Duration
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{}, md.opts)
			if err := rt.Deploy(p, "image-processing"); err != nil {
				panic(err)
			}
			r1, err := rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				panic(err)
			}
			first = r1.Startup
			r2, err := rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				panic(err)
			}
			steady = r2.Startup
		})
		if md.name == "plain boot" {
			plainSteady = steady
		}
		t.AddRow(md.name, fd(first), fd(steady), fr(float64(plainSteady)/float64(steady)))
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-vertical",
		Title: "Ablation: vertical scaling under saturating load (Fig 1/2a story)",
		Paper: "DPUs absorb overflow concurrency: fewer rejected requests as devices are added",
		Run:   runAblVertical,
	})
}

// runAblVertical offers more concurrent work than the (scaled-down) host
// can hold and shows DPUs turning rejections into served requests.
func runAblVertical() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Saturating load (60 req/s of a 500ms function, host capped at 24 instances)",
		Header: []string{"machine", "served", "rejected", "p50 latency", "p99 latency"},
	}
	slow := &workloads.Function{
		Name: "slow-analytics", Lang: lang.Python,
		ExecCPU: 500 * time.Millisecond, DepImport: 50 * time.Millisecond,
		ArgBytes: 1 << 10, ResultBytes: 1 << 10,
	}
	for _, dpus := range []int{0, 1, 2} {
		var stats *loadgen.Stats
		sandboxed(func(p *sim.Proc) {
			opts := molecule.DefaultOptions()
			opts.KeepWarmPerPU = 64
			rt := newMolecule(p, hw.Config{DPUs: dpus}, opts)
			rt.Registry.Add(slow)
			rt.SetCapacity(0, 24)
			for _, pu := range rt.Machine.PUsOfKind(hw.DPU) {
				rt.SetCapacity(pu.ID, 12)
			}
			if err := rt.Deploy(p, "slow-analytics",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
			var err error
			stats, err = loadgen.Run(p, rt, loadgen.Config{
				Seed: 3, Functions: []string{"slow-analytics"},
				RatePerSec: 60, Duration: 10 * time.Second,
			})
			if err != nil {
				panic(err)
			}
		})
		label := "CPU"
		if dpus > 0 {
			label = fmt.Sprintf("CPU + %d DPU", dpus)
		}
		t.AddRow(label,
			fmt.Sprintf("%d", stats.Requests-stats.Errors),
			fmt.Sprintf("%d", stats.Errors),
			fd(stats.Latency.Percentile(50)), fd(stats.Latency.Percentile(99)))
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-contention",
		Title: "Ablation: PCIe link contention under concurrent bulk transfers",
		Paper: "shared-medium DMA: concurrent 50MB FPGA jobs queue on the link's bandwidth phase",
		Run:   runAblContention,
	})
}

func runAblContention() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Concurrent gzip(50MB) FPGA invocations: makespan vs concurrency",
		Header: []string{"concurrent requests", "makespan", "per-request avg"},
	}
	for _, conc := range []int{1, 2, 4} {
		var makespan time.Duration
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
			if err := rt.Deploy(p, "gzip-compression", molecule.DefaultProfile(hw.FPGA)); err != nil {
				panic(err)
			}
			arg := workloads.Arg{Bytes: 50 << 20}
			rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: -1, Arg: arg}) // warm
			wg := sim.NewWaitGroup(rt.Env)
			start := p.Now()
			for i := 0; i < conc; i++ {
				wg.Add(1)
				rt.Env.Spawn("req", func(cp *sim.Proc) {
					defer wg.Done()
					if _, err := rt.Invoke(cp, "gzip-compression", molecule.InvokeOptions{PU: -1, Arg: arg}); err != nil {
						panic(err)
					}
				})
			}
			wg.Wait(p)
			makespan = p.Now().Sub(start)
		})
		t.AddRow(fmt.Sprintf("%d", conc), fd(makespan),
			fd(makespan/time.Duration(conc)))
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-templates",
		Title: "Ablation: dedicated vs generic cfork templates (§4.2)",
		Paper: "dedicated templates keep per-function dependency import off the cold-start path",
		Run:   runAblTemplates,
	})
}

func runAblTemplates() []*metrics.Table {
	t := &metrics.Table{
		Title:  "cfork cold start by template kind (dependency-heavy functions)",
		Header: []string{"function", "generic template", "dedicated template", "saving"},
	}
	for _, fn := range []string{"linpack", "matmul", "pyaes"} {
		measure := func(generic bool) time.Duration {
			var d time.Duration
			sandboxed(func(p *sim.Proc) {
				opts := molecule.DefaultOptions()
				opts.GenericTemplates = generic
				rt := newMolecule(p, hw.Config{}, opts)
				if err := rt.Deploy(p, fn); err != nil {
					panic(err)
				}
				rt.ContainerRuntimeOn(0).EnsureTemplate(p, lang.Python)
				res, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: -1, ForceCold: true})
				if err != nil {
					panic(err)
				}
				d = res.Startup
			})
			return d
		}
		gen, ded := measure(true), measure(false)
		t.AddRow(fn, fd(gen), fd(ded), fd(gen-ded))
	}
	return []*metrics.Table{t}
}
