package sim

import (
	"repro/internal/newpkg" // want `not in the moleculelint layer table`
	"repro/internal/obs"    // want `base layer sim must not import obs`
)

func use() {
	obs.Noop()
	newpkg.Noop()
}
