package xpu

import "fmt"

type tracer struct{}

func (tracer) Tracef(format string, args ...any) {}

type shim struct {
	tr      tracer
	tracing bool
	prefix  string
}

// send is pinned at zero allocations per op; every construct below defeats
// that on the success path.
//
//molecule:hotpath
func (s *shim) send(id int, payload string) error {
	label := fmt.Sprintf("msg-%d", id)     // want `fmt\.Sprintf allocates on the success path`
	key := s.prefix + payload              // want `string concatenation allocates`
	s.tr.Tracef("send %s %s", label, key)  // want `unguarded Tracef`
	if s.tracing {
		s.tr.Tracef("send %s", label) // guarded: arguments box only when tracing
	}
	if payload == "" {
		return fmt.Errorf("empty payload for %q", label) // error exit: allowed
	}
	cb := func() string { return key } // want `closure captures "key"`
	_ = cb
	return nil
}

// fail builds its error in the return statement — the bail-out exit is not
// the pinned path.
//
//molecule:hotpath
func (s *shim) fail(id int) error {
	return fmt.Errorf("node %d down", id)
}

// coldSend has no directive: the check is opt-in and stays quiet here.
func (s *shim) coldSend(id int, payload string) string {
	label := fmt.Sprintf("msg-%d", id)
	return label + s.prefix + payload
}

// retired once held a pinned send loop; the directive drifted into the body
// when the function was gutted, so it pins nothing now.
func (s *shim) retired() {
	//molecule:hotpath // want `hotpath: stale //molecule:hotpath directive: not attached to a function declaration`
	_ = s.prefix
}
