package hw

// Cross-machine interconnect for sharded simulations.
//
// When a simulation spans several machines, each machine's event activity is
// independent except for messages that physically traverse the network
// between them — and those messages always pay at least the link's base
// latency in flight. That base latency is therefore a conservative lookahead
// window for parallel simulation: a machine can execute up to lookahead
// virtual time past the global horizon without any risk of an unseen
// cross-machine message landing inside the window. Interconnect packages
// that argument: it registers its link's BaseLat as the sharded group's
// lookahead and is the only sanctioned way to schedule work across domains.

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Interconnect is the network between the machines (domains) of a sharded
// simulation. It is the cross-shard scheduling edge: every cross-machine
// message travels over the same Link, pays its full transfer time, and is
// delivered at the destination domain's next conservative barrier in
// deterministic order.
type Interconnect struct {
	sh   *sim.Sharded
	link Link
}

// NewInterconnect binds a cross-machine link to a sharded group and
// registers the link's base latency as the group's lookahead — the
// conservative window within which domains may run in parallel. The link
// must have a positive BaseLat: a zero-latency interconnect admits no
// lookahead (the group would fall back to the sequential merge), and in the
// hardware model every network hop has a base cost anyway.
func NewInterconnect(sh *sim.Sharded, l Link) *Interconnect {
	if l.BaseLat <= 0 {
		panic("hw: interconnect link needs a positive BaseLat (it is the sharded lookahead)")
	}
	sh.LimitLookahead(l.BaseLat)
	return &Interconnect{sh: sh, link: l}
}

// Link returns the interconnect's link parameters.
func (ic *Interconnect) Link() Link { return ic.link }

// Lookahead returns the conservative window the interconnect grants: the
// link's base latency.
func (ic *Interconnect) Lookahead() time.Duration { return ic.link.BaseLat }

// TransferTime returns the one-way latency for n bytes over the
// interconnect.
func (ic *Interconnect) TransferTime(n int) time.Duration {
	return ic.link.TransferTime(n)
}

// Send transmits an n-byte message from the machine on domain `from` to
// domain `to`, scheduling fn there in scheduler context after the link's
// transfer time. The transfer time is at least the link's base latency —
// the group lookahead — so the conservative driver can always honor it; the
// message is merged at the next barrier in deterministic (arrival time,
// source domain, source sequence) order. fn runs on the destination domain
// and must touch only that domain's state.
func (ic *Interconnect) Send(from *sim.Env, to int, n int, fn func()) {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative interconnect payload size %d", n))
	}
	ic.sh.Send(from, to, ic.link.TransferTime(n), fn)
}

// SendAfter is Send with extra source-side latency (serialization, queueing)
// added on top of the link transfer time. extra must be non-negative.
func (ic *Interconnect) SendAfter(from *sim.Env, to int, n int, extra time.Duration, fn func()) {
	if extra < 0 {
		panic("hw: negative extra latency in interconnect SendAfter")
	}
	ic.sh.Send(from, to, ic.link.TransferTime(n)+extra, fn)
}

// HostLinkLat returns the base latency of the machine's host→k link — the
// intra-machine side of the interconnect-vs-network asymmetry a cluster
// placer weighs: reaching a PU kind inside the machine costs the host
// link's µs-scale BaseLat (PCIe RDMA/DMA), while reaching another machine
// costs the interconnect's ms-scale BaseLat. Returns (0, true) for the
// host's own kind and (0, false) when the machine has no PU of kind k.
func (m *Machine) HostLinkLat(k PUKind) (time.Duration, bool) {
	if len(m.pus) == 0 {
		return 0, false
	}
	host := m.pus[0]
	if k == host.Kind {
		return 0, true
	}
	best, found := time.Duration(0), false
	for _, pu := range m.pus {
		if pu.Kind != k {
			continue
		}
		l, ok := m.links[[2]PUID{host.ID, pu.ID}]
		if !ok {
			continue
		}
		if !found || l.BaseLat < best {
			best, found = l.BaseLat, true
		}
	}
	return best, found
}

// MinBaseLat returns the smallest base latency over the machine's installed
// non-local links — the machine-internal lookahead floor. A sharded
// simulation that partitions at sub-machine granularity (one domain per PU
// group) would use this as its window; the standard machine-per-domain
// partition uses the interconnect's BaseLat instead, which is far larger.
// Returns 0 when the machine has no non-local links.
func (m *Machine) MinBaseLat() time.Duration {
	var min time.Duration
	for _, a := range m.pus {
		for _, b := range m.pus {
			l, ok := m.links[[2]PUID{a.ID, b.ID}]
			if !ok || l.Kind == LinkLocal {
				continue
			}
			if min == 0 || l.BaseLat < min {
				min = l.BaseLat
			}
		}
	}
	return min
}
