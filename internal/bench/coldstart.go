package bench

// Cold-start sweep: flat cfork vs the package-aware zygote forest, the
// workload behind BENCH_coldstart.json.
//
// Both arms run the identical seeded Zipf stream of forced-cold invocations
// over the FunctionBench-style mix, on the identical machine (host CPU + one
// DPU), through the identical zygote cold-start path. The only difference is
// the template budget: the flat arm runs with a zero budget, so its forest
// never grows past the generic root and every cold start pays the function's
// full package closure plus private tail — by calibration exactly its
// DepImport, the flat-cfork baseline. The zygote arm gives the fitter the
// default budget, so repeated package sets earn specialized templates and
// later cold starts pay only residual imports.
//
// Reported per arm: cold-start latency (mean/p95), the fitted forest's size,
// and the end-state memory footprint as PSS — live warm instances plus all
// templates. The zygote arm must win latency at equal or lower PSS: ancestor
// pages are shared COW down the tree and into every forked instance, so
// specialization adds far less memory than it saves imports.
//
// Like every scaling artifact in this repo, each timed point re-runs at the
// other kernel worker counts and must produce a byte-identical fingerprint
// (per-invocation latencies, final tree shapes, PSS sums) before it is
// reported. Worker count 0 is the classic sequential kernel; n >= 1 drives
// the same simulation through the sharded windowed driver with n OS workers.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
)

// coldStartMix is the Zipf-weighted function population: a skewed mix of
// package profiles (shared numpy/blas stacks, image stack, singletons) so
// the fitter has real structure to find.
var coldStartMix = []string{
	"image-resize", "matmul", "pyaes", "chameleon", "linpack",
	"gzip-compression", "dd", "image-processing", "helloworld",
}

// coldStartConfig is the checked-in sweep shape.
type coldStartConfig struct {
	Invocations int
	ZipfS       float64
	Seed        uint64
	// DPUEvery pins every k-th invocation to the DPU, exercising a second
	// (runtime, PU) tree with the 6.5x startup scale.
	DPUEvery int
}

func defaultColdStartConfig() coldStartConfig {
	return coldStartConfig{Invocations: 600, ZipfS: 1.2, Seed: 42, DPUEvery: 4}
}

// ColdStartArm is one arm of the comparison, serialized into
// BENCH_coldstart.json.
type ColdStartArm struct {
	Mode          string  `json:"mode"` // "flat-cfork" | "zygote-tree"
	ColdStarts    int     `json:"cold_starts"`
	MeanStartupMS float64 `json:"mean_startup_ms"`
	P95StartupMS  float64 `json:"p95_startup_ms"`
	TreeNodes     int     `json:"tree_nodes"` // specialized templates, all (runtime, PU) trees
	FitRounds     int     `json:"fit_rounds"`
	Instances     int     `json:"live_instances"`
	InstPSSMB     float64 `json:"instance_pss_mb"`
	TemplatePSSMB float64 `json:"template_pss_mb"`
	TotalPSSMB    float64 `json:"total_pss_mb"`
	WallMS        float64 `json:"wall_ms"`
	Fingerprint   string  `json:"fingerprint"`
}

// ColdStartResult is the full comparison.
type ColdStartResult struct {
	WorkerCounts []int        `json:"worker_counts_checked"`
	Flat         ColdStartArm `json:"flat"`
	Zygote       ColdStartArm `json:"zygote"`
	// SpeedupMean is flat mean cold-start latency over zygote mean.
	SpeedupMean float64 `json:"speedup_mean"`
	// PSSRatio is zygote total PSS over flat total PSS (<= 1 means the
	// forest saves memory too).
	PSSRatio float64 `json:"pss_ratio"`
}

// coldStartRun is the raw outcome of one simulated run.
type coldStartRun struct {
	startups  []time.Duration
	treeNodes int
	fitRounds int
	instances int
	instPSS   float64
	tmplPSS   float64
	fp        uint64
}

// runColdStartArm drives one arm's seeded invocation stream at the given
// kernel worker count (0 = classic sequential kernel).
func runColdStartArm(cfg coldStartConfig, zygote bool, workers int) coldStartRun {
	var out coldStartRun
	body := func(p *sim.Proc) {
		opts := molecule.DefaultOptions()
		// Both arms run the zygote cold-start path so the package model is
		// identical; the flat arm's negative budget keeps its forest
		// root-only (flat cfork + full on-child imports).
		opts.ZygoteTree = true
		opts.ZygoteSeed = cfg.Seed
		if !zygote {
			opts.ZygoteBudgetMB = -1
		}
		rt := newMolecule(p, hw.Config{DPUs: 1}, opts)
		var dpu hw.PUID = -1
		for _, pu := range rt.Machine.PUs() {
			if pu.Kind == hw.DPU {
				dpu = pu.ID
				break
			}
		}
		for _, fn := range coldStartMix {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
		}

		// Zipf CDF over the mix, most popular first.
		cdf := make([]float64, len(coldStartMix))
		var total float64
		for i := range coldStartMix {
			total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
			cdf[i] = total
		}
		fp := fnvInit()
		rng := cfg.Seed
		for i := 0; i < cfg.Invocations; i++ {
			rng = mix64(rng)
			u := float64(rng>>11) / (1 << 53) * total
			fn := coldStartMix[len(coldStartMix)-1]
			for j, c := range cdf {
				if u <= c {
					fn = coldStartMix[j]
					break
				}
			}
			pin := hw.PUID(-1)
			if cfg.DPUEvery > 0 && i%cfg.DPUEvery == cfg.DPUEvery-1 && dpu >= 0 {
				pin = dpu
			}
			res, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: pin, ForceCold: true})
			if err != nil {
				panic(fmt.Sprintf("coldstart %s: %v", fn, err))
			}
			out.startups = append(out.startups, res.Startup)
			fp = fnvStr(fp, fn)
			fp = fnvU64(fp, uint64(res.PU))
			fp = fnvU64(fp, uint64(res.Startup))
		}

		// End-state accounting: live instances + templates, per PU, plus
		// the fitted tree shapes — all folded into the fingerprint.
		for _, pu := range rt.Machine.PUs() {
			cr := rt.ContainerRuntimeOn(pu.ID)
			if cr == nil {
				continue
			}
			inst, ipss, tpss := cr.MemoryStats()
			out.instances += inst
			out.instPSS += ipss
			out.tmplPSS += tpss
			for _, kind := range []lang.Kind{lang.Python, lang.Node} {
				if tr := cr.Forest(kind); tr != nil {
					out.treeNodes += tr.LiveNodes()
					out.fitRounds += tr.Rounds()
					fp = fnvStr(fp, tr.ShapeString())
				}
			}
			fp = fnvU64(fp, uint64(inst))
			fp = fnvStr(fp, fmt.Sprintf("%.3f/%.3f", ipss, tpss))
		}
		out.fp = fp
	}

	if workers <= 0 {
		env := sim.NewEnv()
		env.Spawn("coldstart-driver", func(p *sim.Proc) { body(p) })
		env.Run()
	} else {
		sh := sim.NewSharded(1)
		sh.LimitLookahead(time.Millisecond)
		sh.Domain(0).Spawn("coldstart-driver", func(p *sim.Proc) { body(p) })
		sh.Run(workers)
	}
	return out
}

// ColdStartArmSweep runs one arm, timing it at workerCounts[0] and
// verifying byte-identity at every remaining worker count.
func ColdStartArmSweep(cfg coldStartConfig, zygote bool, workerCounts []int) (ColdStartArm, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{0}
	}
	mode := "flat-cfork"
	if zygote {
		mode = "zygote-tree"
	}
	start := time.Now()
	run := runColdStartArm(cfg, zygote, workerCounts[0])
	wall := time.Since(start)
	for _, w := range workerCounts[1:] {
		other := runColdStartArm(cfg, zygote, w)
		if other.fp != run.fp {
			return ColdStartArm{}, fmt.Errorf("coldstart %s: workers=%d diverged:\n  got  %016x\n  want %016x (workers=%d)",
				mode, w, other.fp, run.fp, workerCounts[0])
		}
	}

	mean, p95 := latencyStats(run.startups)
	const mb = 1.0 / (1 << 20)
	return ColdStartArm{
		Mode:          mode,
		ColdStarts:    len(run.startups),
		MeanStartupMS: mean.Seconds() * 1000,
		P95StartupMS:  p95.Seconds() * 1000,
		TreeNodes:     run.treeNodes,
		FitRounds:     run.fitRounds,
		Instances:     run.instances,
		InstPSSMB:     run.instPSS * mb,
		TemplatePSSMB: run.tmplPSS * mb,
		TotalPSSMB:    (run.instPSS + run.tmplPSS) * mb,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		Fingerprint:   fmt.Sprintf("%016x", run.fp),
	}, nil
}

// ColdStartSweep runs both arms with byte-identity enforced across
// workerCounts at every point.
func ColdStartSweep(invocations int, workerCounts []int) (ColdStartResult, error) {
	cfg := defaultColdStartConfig()
	if invocations > 0 {
		cfg.Invocations = invocations
	}
	flat, err := ColdStartArmSweep(cfg, false, workerCounts)
	if err != nil {
		return ColdStartResult{}, err
	}
	zyg, err := ColdStartArmSweep(cfg, true, workerCounts)
	if err != nil {
		return ColdStartResult{}, err
	}
	res := ColdStartResult{
		WorkerCounts: append([]int(nil), workerCounts...),
		Flat:         flat,
		Zygote:       zyg,
	}
	if zyg.MeanStartupMS > 0 {
		res.SpeedupMean = flat.MeanStartupMS / zyg.MeanStartupMS
	}
	if flat.TotalPSSMB > 0 {
		res.PSSRatio = zyg.TotalPSSMB / flat.TotalPSSMB
	}
	return res, nil
}

// ColdStartTable renders the comparison as a report table.
func ColdStartTable(res ColdStartResult) *metrics.Table {
	t := &metrics.Table{
		Title: "Cold start — flat cfork vs zygote forest (Zipf mix)",
		Note: fmt.Sprintf("same seeded stream both arms; fingerprint-checked across kernel worker counts %v; speedup %.2fx at %.2fx the memory",
			res.WorkerCounts, res.SpeedupMean, res.PSSRatio),
		Header: []string{"mode", "colds", "mean ms", "p95 ms", "nodes", "fits", "inst", "inst PSS MB", "tmpl PSS MB", "total PSS MB"},
	}
	for _, a := range []ColdStartArm{res.Flat, res.Zygote} {
		t.AddRow(
			a.Mode,
			fmt.Sprintf("%d", a.ColdStarts),
			fmt.Sprintf("%.2f", a.MeanStartupMS),
			fmt.Sprintf("%.2f", a.P95StartupMS),
			fmt.Sprintf("%d", a.TreeNodes),
			fmt.Sprintf("%d", a.FitRounds),
			fmt.Sprintf("%d", a.Instances),
			fmt.Sprintf("%.1f", a.InstPSSMB),
			fmt.Sprintf("%.1f", a.TemplatePSSMB),
			fmt.Sprintf("%.1f", a.TotalPSSMB),
		)
	}
	return t
}

// latencyStats returns the mean and p95 of a latency series (in recorded
// order; the copy is sorted, the input left untouched).
func latencyStats(ds []time.Duration) (mean, p95 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	// Insertion-free nth-element would be overkill: n is small.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sum / time.Duration(len(sorted)), sorted[idx]
}

// fnvInit/fnvStr/fnvU64 build the run fingerprint with FNV-1a.
func fnvInit() uint64 { return 14695981039346656037 }

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// mix64 is splitmix64, the repo's standard seeded mixing function.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
