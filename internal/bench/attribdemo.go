package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/sim"
)

// AttribDemo runs the critical-path attribution demo: a workload that
// exercises every stage of the latency taxonomy — cold and warm CPU hits,
// a DPU-pinned cold start (nIPC cross-link commands), FPGA image extension
// and GPU kernel loading, and a cross-PU chain — with observability and an
// SLO engine attached, then attributes the resulting span tree. It returns
// the populated observer (tracer, metrics, SLO) and the analysis. The
// regular experiments never attach an observer, so their golden report
// bytes are unaffected.
func AttribDemo() (*obs.Observer, *attrib.Analysis, error) {
	var (
		o       *obs.Observer
		machine *hw.Machine
		demoErr error
	)
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1, FPGAs: 1, GPUs: 1}, molecule.DefaultOptions())
		machine = rt.Machine
		o = obs.New(p.Env())
		o.SLO = obs.NewSLOEngine(obs.SLOConfig{Objective: 10 * time.Millisecond, Target: 0.99})
		rt.SetObserver(o)

		if demoErr = rt.Deploy(p, "helloworld",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); demoErr != nil {
			return
		}
		// Cold start on the host, then a warm hit on the same instance.
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.DefaultInvokeOptions()); demoErr != nil {
			return
		}
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.DefaultInvokeOptions()); demoErr != nil {
			return
		}
		// A DPU-pinned cold start routes executor commands over the
		// interconnect, filling the nipc.crosslink stage.
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.InvokeOptions{PU: dpu}); demoErr != nil {
			return
		}
		// Accelerator cold starts: FPGA partial-reconfiguration image
		// extension and GPU kernel loading both land in coldstart.init.
		if demoErr = rt.Deploy(p, "mscale",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU),
			molecule.DefaultProfile(hw.FPGA), molecule.DefaultProfile(hw.GPU)); demoErr != nil {
			return
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		gpu := rt.Machine.PUsOfKind(hw.GPU)[0].ID
		if _, demoErr = rt.Invoke(p, "mscale", molecule.InvokeOptions{PU: fpga}); demoErr != nil {
			return
		}
		if _, demoErr = rt.Invoke(p, "mscale", molecule.InvokeOptions{PU: gpu}); demoErr != nil {
			return
		}
		// A chain scattered across host and DPU drives request/response
		// payloads through XPU-FIFOs.
		pair := []string{"alexa-frontend", "alexa-interact"}
		for _, fn := range pair {
			if demoErr = rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); demoErr != nil {
				return
			}
		}
		if _, demoErr = rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: []hw.PUID{0, dpu}}); demoErr != nil {
			return
		}
	})
	if demoErr != nil {
		return nil, nil, fmt.Errorf("bench: attribution demo: %w", demoErr)
	}
	an := attrib.Analyze(o.Tracer.Spans(), attrib.Options{PUKind: func(pu int) string {
		if u := machine.PU(hw.PUID(pu)); u != nil {
			return u.Kind.String()
		}
		return ""
	}})
	return o, an, nil
}
