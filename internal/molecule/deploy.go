package molecule

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ErrNoCapacity reports that placement failed because every eligible live
// PU is at its instance cap. Callers that admission-control (the cluster
// gateway and boss) match it with errors.Is to requeue instead of failing
// the request.
var ErrNoCapacity = errors.New("no capacity")

// Profile is one execution setting a user selects for a function: a PU kind
// plus its resource/price point (§4.1: Molecule requires end-users to
// explicitly assign resources and select PU types by price and ability).
type Profile struct {
	Kind hw.PUKind
	// MemoryMB is the per-instance memory reservation.
	MemoryMB int
	// PricePerMs is the billing rate; DPUs are cheapest, FPGAs most
	// expensive (§4.1).
	PricePerMs float64
}

// DefaultProfile returns the standard price point for a PU kind.
func DefaultProfile(kind hw.PUKind) Profile {
	switch kind {
	case hw.DPU:
		return Profile{Kind: hw.DPU, MemoryMB: 128, PricePerMs: 0.6}
	case hw.FPGA:
		return Profile{Kind: hw.FPGA, MemoryMB: 0, PricePerMs: 4.0}
	case hw.GPU:
		return Profile{Kind: hw.GPU, MemoryMB: 0, PricePerMs: 3.0}
	default:
		return Profile{Kind: hw.CPU, MemoryMB: 128, PricePerMs: 1.0}
	}
}

// Deployment is a function registered with the platform together with its
// selected profiles.
type Deployment struct {
	Fn       *workloads.Function
	Profiles []Profile

	// Pkgs is the deploy's dependency-closed package manifest — by default
	// the closure of the function's catalog imports, overridable per deploy
	// with DeployWithManifest. The zygote forest resolves cold starts
	// against it.
	Pkgs lang.PkgSet
	// PkgTail is the function's private import tail: DepImport minus the
	// manifest closure's import cost, the initialization no shared template
	// can pre-run. Zygote cold starts always pay it, so a root-only forest
	// pays exactly DepImport — the flat-cfork baseline.
	PkgTail time.Duration

	// preferred caches the placement decision for repeat invocations: the
	// first node the general-placement scan would consider for this
	// deployment. Topology and profiles are fixed after Deploy, so this is
	// static; placeGeneral still verifies the dynamic conditions (capacity,
	// liveness) and falls back to the full scan when they fail, making the
	// fast path provably identical to the scan.
	preferred *puNode
}

// SupportsKind reports whether the deployment has a profile for kind.
func (d *Deployment) SupportsKind(k hw.PUKind) bool {
	for _, pr := range d.Profiles {
		if pr.Kind == k {
			return true
		}
	}
	return false
}

// ProfileFor returns the profile for kind.
func (d *Deployment) ProfileFor(k hw.PUKind) (Profile, bool) {
	for _, pr := range d.Profiles {
		if pr.Kind == k {
			return pr, true
		}
	}
	return Profile{}, false
}

// Deploy registers a function under one or more profiles. FPGA/GPU profiles
// are validated against the function's accelerator implementations; FPGA
// deployment extends the device's vectorized image (one reprogramming per
// deploy batch — use DeployAll for whole applications).
func (rt *Runtime) Deploy(p *sim.Proc, funcName string, profiles ...Profile) error {
	return rt.deploy(p, funcName, nil, profiles...)
}

// DeployWithManifest registers a function with an explicit package manifest
// overriding the function's catalog imports — a deploy that vendors its own
// dependencies, or strips unused ones. The manifest is closed over package
// dependencies before use.
func (rt *Runtime) DeployWithManifest(p *sim.Proc, funcName string, packages []string, profiles ...Profile) error {
	if packages == nil {
		packages = []string{}
	}
	return rt.deploy(p, funcName, packages, profiles...)
}

func (rt *Runtime) deploy(p *sim.Proc, funcName string, manifest []string, profiles ...Profile) error {
	fn, err := rt.Registry.Get(funcName)
	if err != nil {
		return err
	}
	if len(profiles) == 0 {
		profiles = []Profile{DefaultProfile(hw.CPU)}
	}
	for _, pr := range profiles {
		switch pr.Kind {
		case hw.FPGA:
			if !fn.HasFPGA() {
				return fmt.Errorf("molecule: %q has no FPGA implementation", funcName)
			}
		case hw.GPU:
			if !fn.HasGPU() {
				return fmt.Errorf("molecule: %q has no GPU implementation", funcName)
			}
		}
	}
	d := &Deployment{Fn: fn, Profiles: profiles}
	direct := fn.Packages
	if manifest != nil {
		direct = manifest
	}
	if d.Pkgs, err = lang.Closure(direct); err != nil {
		return fmt.Errorf("molecule: deploy %q: %w", funcName, err)
	}
	if d.PkgTail = fn.DepImport - d.Pkgs.ImportCost(); d.PkgTail < 0 {
		d.PkgTail = 0
	}
	d.preferred = rt.preferredNode(d)
	rt.funcs[funcName] = d
	// Accelerator profiles: install the function into the device image.
	for _, pr := range profiles {
		switch pr.Kind {
		case hw.FPGA:
			if err := rt.extendFPGAImages(p, funcName); err != nil {
				return err
			}
		case hw.GPU:
			if err := rt.loadGPUKernel(p, funcName); err != nil {
				return err
			}
		}
	}
	return nil
}

// Undeploy removes a function from the platform: its warm instances are
// destroyed and FPGA devices drop it from their images at the next
// reprogramming (the deferred-destroy semantics of §3.5).
func (rt *Runtime) Undeploy(p *sim.Proc, funcName string) error {
	if _, ok := rt.funcs[funcName]; !ok {
		return fmt.Errorf("molecule: function %q not deployed", funcName)
	}
	delete(rt.funcs, funcName)
	for _, n := range rt.orderedNodes() {
		if n.cr != nil {
			for _, inst := range append([]*instance(nil), n.warm[funcName]...) {
				rt.destroy(p, inst)
			}
			delete(n.warm, funcName)
		}
		if n.runf != nil {
			for i, fn := range n.fpgaVector {
				if fn == funcName {
					n.fpgaVector = append(n.fpgaVector[:i], n.fpgaVector[i+1:]...)
					// Mark the live sandbox deleted; the fabric keeps the
					// configuration until the next create replaces it.
					for _, st := range n.runf.State(nil) {
						if sb := n.runf.Sandbox(st.ID); sb != nil && sb.Spec.FuncID == funcName {
							n.runf.Delete(p, []string{st.ID})
						}
					}
					break
				}
			}
		}
	}
	return nil
}

// Deployment returns the registered deployment for a function.
func (rt *Runtime) Deployment(funcName string) (*Deployment, error) {
	d, ok := rt.funcs[funcName]
	if !ok {
		return nil, fmt.Errorf("molecule: function %q not deployed", funcName)
	}
	return d, nil
}

// extendFPGAImages adds funcName to the vectorized image of the
// least-loaded FPGA and reprograms it (Create with the full vector, §4.2
// "caching FPGA function instances"). A device caches at most as many
// instances as it has DRAM banks; beyond that the keep-alive policy evicts
// the lowest-priority cached function, whose next request will reprogram
// the image again (a cold image miss).
func (rt *Runtime) extendFPGAImages(p *sim.Proc, funcName string) error {
	var target *puNode
	for _, n := range rt.orderedNodes() {
		if n.runf == nil {
			continue
		}
		if target == nil || len(n.fpgaVector) < len(target.fpgaVector) {
			target = n
		}
	}
	if target == nil {
		return fmt.Errorf("molecule: no FPGA available for %q", funcName)
	}
	for _, existing := range target.fpgaVector {
		if existing == funcName {
			return nil // already cached
		}
	}
	// Up to three instances share each DRAM bank (Table 4 caches 12
	// instances over an F1's four banks); the wrapper's bank locks keep
	// sharers from running concurrently.
	capSlots := 3 * len(target.pu.Device.Banks())
	for len(target.fpgaVector) >= capSlots {
		victim := 0
		for i := 1; i < len(target.fpgaVector); i++ {
			if rt.cache.Priority(target.fpgaVector[i]) < rt.cache.Priority(target.fpgaVector[victim]) {
				victim = i
			}
		}
		evicted := target.fpgaVector[victim]
		target.fpgaVector = append(target.fpgaVector[:victim], target.fpgaVector[victim+1:]...)
		target.pu.Device.ReleaseBank(evicted)
		p.Tracef("fpga image on PU %d evicted %s (keep-alive)", target.pu.ID, evicted)
	}
	target.fpgaVector = append(target.fpgaVector, funcName)
	rt.cache.hit(funcName) // cached functions participate in the policy
	return rt.reprogramFPGA(p, target)
}

// reprogramFPGA flushes the node's current vector as one image and starts
// (preps) every member so subsequent requests are warm.
func (rt *Runtime) reprogramFPGA(p *sim.Proc, n *puNode) error {
	if err := rt.remoteCommand(p, n.pu.ID, nil); err != nil {
		return err
	}
	specs := make([]sandbox.Spec, 0, len(n.fpgaVector))
	ids := make([]string, 0, len(n.fpgaVector))
	for _, fn := range n.fpgaVector {
		n.sandboxSeq++
		id := fmt.Sprintf("fpga-%s-%d", fn, n.sandboxSeq)
		specs = append(specs, sandbox.Spec{ID: id, FuncID: fn})
		ids = append(ids, id)
	}
	if err := n.runf.Create(p, specs); err != nil {
		return err
	}
	return n.runf.Start(p, ids)
}

// fpgaSandboxFor finds the running FPGA sandbox for funcName, returning the
// node as well.
func (rt *Runtime) fpgaSandboxFor(funcName string) (*puNode, string, error) {
	for _, n := range rt.orderedNodes() {
		if n.runf == nil {
			continue
		}
		for _, st := range n.runf.State(nil) {
			if st.State != sandbox.StateRunning {
				continue
			}
			if sb := n.runf.Sandbox(st.ID); sb != nil && sb.Spec.FuncID == funcName {
				return n, st.ID, nil
			}
		}
	}
	return nil, "", fmt.Errorf("molecule: no running FPGA sandbox for %q", funcName)
}

// loadGPUKernel installs funcName on the first GPU.
func (rt *Runtime) loadGPUKernel(p *sim.Proc, funcName string) error {
	for _, n := range rt.orderedNodes() {
		if n.rung == nil {
			continue
		}
		n.sandboxSeq++
		id := fmt.Sprintf("gpu-%s-%d", funcName, n.sandboxSeq)
		if err := rt.remoteCommand(p, n.pu.ID, nil); err != nil {
			return err
		}
		if err := n.rung.Create(p, []sandbox.Spec{{ID: id, FuncID: funcName}}); err != nil {
			return err
		}
		return n.rung.Start(p, []string{id})
	}
	return fmt.Errorf("molecule: no GPU available for %q", funcName)
}

// gpuSandboxFor finds the running GPU sandbox for funcName.
func (rt *Runtime) gpuSandboxFor(funcName string) (*puNode, string, error) {
	for _, n := range rt.orderedNodes() {
		if n.rung == nil {
			continue
		}
		for _, st := range n.rung.State(nil) {
			if st.State != sandbox.StateRunning {
				continue
			}
			if sb := n.rung.Sandbox(st.ID); sb != nil && sb.Spec.FuncID == funcName {
				return n, st.ID, nil
			}
		}
	}
	return nil, "", fmt.Errorf("molecule: no running GPU sandbox for %q", funcName)
}

// generalKinds is the deterministic placement preference for container
// functions: CPU first, then DPUs (hoisted so placeGeneral does not build
// the slice per call).
var generalKinds = [...]hw.PUKind{hw.CPU, hw.DPU}

// preferredNode returns the first node the unpinned placement scan would
// examine for d — the statically most-preferred host of its container
// instances. Nil when no general-purpose PU matches the profiles.
func (rt *Runtime) preferredNode(d *Deployment) *puNode {
	for _, kind := range generalKinds {
		if !d.SupportsKind(kind) {
			continue
		}
		for _, pu := range rt.Machine.PUsOfKind(kind) {
			if n := rt.nodes[pu.ID]; n != nil && n.cr != nil {
				return n
			}
		}
	}
	return nil
}

// placeGeneral picks a general-purpose PU for a new instance of d:
// explicit pin if given, else the first profile kind with free capacity
// (CPU first, then DPUs — matching the Fig 2a density experiment where DPU
// instances absorb overflow).
func (rt *Runtime) placeGeneral(d *Deployment, pin hw.PUID) (*puNode, error) {
	if pin >= 0 {
		n := rt.nodes[pin]
		if n == nil || n.cr == nil {
			return nil, fmt.Errorf("molecule: PU %d cannot host container functions", pin)
		}
		if rt.puDown(pin) {
			return nil, fmt.Errorf("molecule: PU %d: %w", pin, faults.ErrPUDown)
		}
		if !d.SupportsKind(n.pu.Kind) {
			return nil, fmt.Errorf("molecule: %q has no %v profile", d.Fn.Name, n.pu.Kind)
		}
		if n.liveCount >= n.capacity {
			return nil, fmt.Errorf("molecule: PU %d at capacity (%d): %w", pin, n.capacity, ErrNoCapacity)
		}
		return n, nil
	}
	// Cached placement: the preferred node is by construction the first
	// candidate the scan below would examine, so when it can take the
	// instance right now the scan's answer is exactly it — returned here
	// without walking the machine.
	if n := d.preferred; n != nil && n.liveCount < n.capacity && !rt.puDown(n.pu.ID) {
		return n, nil
	}
	// The kind-then-PU-ID scan is what makes failover deterministic: when a
	// preferred PU is down, the placement lands on the lowest-ordered
	// surviving PU with capacity.
	anyLive := false
	anyDown := false
	for _, kind := range generalKinds {
		if !d.SupportsKind(kind) {
			continue
		}
		for _, pu := range rt.Machine.PUsOfKind(kind) {
			n := rt.nodes[pu.ID]
			if n == nil || n.cr == nil {
				continue
			}
			if rt.puDown(pu.ID) {
				anyDown = true
				continue
			}
			anyLive = true
			if n.liveCount < n.capacity {
				return n, nil
			}
		}
	}
	if !anyLive && anyDown {
		// Not a capacity problem: every PU that could host the function is
		// crashed. Report infrastructure failure so callers that queue on
		// ErrNoCapacity (the cluster boss) fail over instead of waiting for
		// capacity that cannot free up.
		return nil, fmt.Errorf("molecule: every PU supporting %q is down: %w", d.Fn.Name, faults.ErrPUDown)
	}
	return nil, fmt.Errorf("molecule: %w for %q on any live PU", ErrNoCapacity, d.Fn.Name)
}
