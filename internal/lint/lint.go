// Package lint implements moleculelint: five go/analysis analyzers that
// machine-check the invariants this reproduction's correctness rests on but
// the compiler cannot see.
//
//   - simtime: simulation-facing packages advance virtual time only; any
//     wall-clock call (time.Now, time.Sleep, ...) silently breaks the
//     byte-identical golden reports and seed-reproducible chaos soaks.
//   - detrand: randomness in simulation-facing packages must flow from an
//     explicit seeded source (as internal/faults does); the global math/rand
//     state and crypto/rand are nondeterministic across runs.
//   - layering: the import DAG is data (Table in layers.go), not convention.
//     Base layers never import faults, obs, molecule, or bench — fault and
//     metric hooks are injected consumer-side through interfaces.
//   - maporder: report/trace/placement packages must not iterate maps in
//     Go's randomized order unless the loop only collects keys for sorting
//     or carries an explicit //lint:unordered <reason> marker.
//   - hotpath: functions annotated //molecule:hotpath are pinned at zero
//     allocations per op; fmt formatting, string concatenation, capturing
//     closures, and unguarded Tracef calls defeat that.
//
// The suite runs standalone or as `go vet -vettool` via cmd/moleculelint
// (`make lint`); each analyzer has an analysistest-style suite under
// testdata/ driven by internal/lint/linttest.
package lint

import (
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full moleculelint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	SimTime,
	DetRand,
	Layering,
	MapOrder,
	HotPath,
}

// modulePrefix roots the layer table's keys: every entry in Table names a
// package directory below this prefix.
const modulePrefix = "repro/internal/"

// relInternal maps an import path to its layer-table key ("repro/internal/
// sim/simbench" -> "sim/simbench"). ok is false for packages outside the
// internal tree (cmd/, examples/, the repo root, other modules) and for the
// synthesized test packages go vet also feeds us ("foo_test" external test
// packages and ".test" mains), which are exempt from every layer rule.
func relInternal(path string) (string, bool) {
	// go list/vet name in-package test variants "pkg [pkg.test]".
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	rel, found := strings.CutPrefix(path, modulePrefix)
	if !found || rel == "" {
		return "", false
	}
	if strings.HasSuffix(rel, "_test") || strings.Contains(rel, ".test") {
		return "", false
	}
	return rel, true
}

// classify returns the layer-table entry for an import path, or ok=false
// when the package is outside the table's jurisdiction.
func classify(path string) (Layer, bool) {
	rel, ok := relInternal(path)
	if !ok {
		return Layer{}, false
	}
	l, ok := Table[rel]
	return l, ok
}

// isTestFile reports whether the file holding pos is a _test.go file. Test
// files may reach across layers, spend wall time, and iterate maps freely:
// they never run inside a simulation and the golden/chaos suites already
// pin their observable behavior.
func isTestFile(pass *analysis.Pass, name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
