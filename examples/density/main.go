// Density: reproduce the Fig 2a scaling story interactively — how many
// concurrent function instances fit on the machine as DPUs are added, and
// what the pay-as-you-go ledger looks like when the cheap DPU profile
// absorbs overflow load.
//
//	go run ./examples/density
package main

import (
	"fmt"
	"log"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	for _, dpus := range []int{0, 1, 2} {
		env := sim.NewEnv()
		machine := hw.Build(env, hw.Config{DPUs: dpus})
		env.Spawn("operator", func(p *sim.Proc) {
			rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			if err := rt.Deploy(p, "image-processing",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				log.Fatal(err)
			}
			placed := 0
			for {
				//lint:released density probe: instances are held until the run ends — the example measures packing capacity, not a request lifecycle
				if _, err := rt.AcquireHeld(p, "image-processing", -1); err != nil {
					break
				}
				placed++
			}
			fmt.Printf("%d DPU(s): %4d concurrent instances (capacity %d)\n",
				dpus, placed, rt.Capacity())
		})
		env.Run()
	}

	// Billing: the same function invoked on the CPU vs the DPU profile.
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1})
	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.Deploy(p, "pyaes",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
			log.Fatal(err)
		}
		dpu := machine.PUsOfKind(hw.DPU)[0].ID
		for _, pin := range []hw.PUID{0, dpu} {
			rt.Invoke(p, "pyaes", molecule.InvokeOptions{PU: pin}) // warm up
			res, err := rt.Invoke(p, "pyaes", molecule.InvokeOptions{PU: pin})
			if err != nil {
				log.Fatal(err)
			}
			entry := rt.Billing().Entries()[len(rt.Billing().Entries())-1]
			fmt.Printf("pyaes on %-4v: latency %-10v billed %2dms x rate = %5.2f units\n",
				res.Kind, res.Total, entry.BilledMs, entry.Charge)
		}
		fmt.Println("(the DPU is slower but cheaper per millisecond — the §4.1 pricing model)")
	})
	env.Run()
}
