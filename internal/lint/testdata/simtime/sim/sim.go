package sim

import "time"

// Tick reads and waits on the host clock — every call is a violation in a
// simulation package.
func Tick() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now in simulation package`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulation package`
	return time.Since(start)     // want `wall-clock time\.Since in simulation package`
}

// Budget manipulates plain durations — values, not clock reads — and is
// fine anywhere.
func Budget(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}
