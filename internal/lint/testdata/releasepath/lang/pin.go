package lang

import "errors"

// Stand-in for the zygote-tree pin/unpin pairing (pin-style: the tracked
// resource is the argument, not a result).

type ZygoteNode struct{ refs int }

type ZygoteTree struct{}

func (t *ZygoteTree) Pin(n *ZygoteNode)   {}
func (t *ZygoteTree) Unpin(n *ZygoteNode) {}

var errCfork = errors.New("cfork failed")

func cfork(n *ZygoteNode) error { return nil }

// GrowOK unpins on both the error and the success path.
func GrowOK(t *ZygoteTree, parent *ZygoteNode) error {
	t.Pin(parent)
	if err := cfork(parent); err != nil {
		t.Unpin(parent)
		return err
	}
	t.Unpin(parent)
	return nil
}

// GrowLeak keeps the node pinned when cfork fails — the eviction scan can
// never reclaim it.
func GrowLeak(t *ZygoteTree, parent *ZygoteNode) error {
	t.Pin(parent) // want `releasepath: zygote pin "parent" acquired here can reach the return at`
	if err := cfork(parent); err != nil {
		return err
	}
	t.Unpin(parent)
	return nil
}

// PinExpr pins an expression the pairing check cannot name.
func PinExpr(t *ZygoteTree, nodes []*ZygoteNode) {
	t.Pin(nodes[0]) // want `releasepath: zygote pin pinned via a non-variable expression`
	t.Unpin(nodes[0])
}
