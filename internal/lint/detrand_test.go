package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand,
		linttest.Package{Path: "repro/internal/sim", Dir: "testdata/detrand/sim"})
}

func TestDetRandAllowsNonSimLayers(t *testing.T) {
	linttest.Run(t, lint.DetRand,
		linttest.Package{Path: "repro/internal/bench", Dir: "testdata/detrand/bench"})
}
