// Package bench is the benchmark harness: one experiment per table and
// figure of the paper's evaluation section. Each experiment builds the
// relevant simulated machine, runs the workload on Molecule and its
// baselines, and reports the same rows/series the paper reports.
//
// The harness backs both the root-level testing.B benchmarks and the
// cmd/molecule-bench CLI.
package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Experiment reproduces one table or figure.
type Experiment struct {
	ID    string // e.g. "fig10c", "tab4"
	Title string
	Paper string // the headline claim being reproduced
	Run   func() []*metrics.Table
}

var (
	registry []Experiment
	idIndex  = map[string]int{} // ID → position in registry
)

func register(e Experiment) {
	idIndex[e.ID] = len(registry)
	registry = append(registry, e)
}

// All returns every experiment in evaluation-section order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// evalOrder maps experiment IDs to their position in the paper's evaluation
// section, precomputed once so sorting is O(n log n) map lookups instead of
// rebuilding the ID slice on every comparison.
var evalOrder = func() map[string]int {
	m := map[string]int{}
	for i, k := range []string{
		"fig2a", "fig2b", "fig8", "fig9", "fig10ab", "fig10c", "tab4",
		"fig11a", "fig11bc", "fig12", "fig13", "fig14a", "fig14b", "fig14c",
		"fig14d", "fig14e", "fig14f", "fig14g", "fig14h", "fig15", "tab1", "tab5",
	} {
		m[k] = i
	}
	return m
}()

func order(id string) int {
	if i, ok := evalOrder[id]; ok {
		return i
	}
	return 1 << 20
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	if i, ok := idIndex[id]; ok {
		return registry[i], true
	}
	return Experiment{}, false
}

// Result is one executed experiment: its tables plus the wall-clock time
// Run took. Tables are pure data, so rendering can happen later, on a
// different goroutine, in any order.
type Result struct {
	Experiment
	Tables []*metrics.Table
	Wall   time.Duration
}

// RunEach executes every experiment and calls emit for each, always in
// evaluation-section order. workers > 1 runs experiments concurrently on
// that many goroutines (workers <= 0 means GOMAXPROCS); each experiment owns
// an isolated sim.Env, so concurrency cannot change any result, and emit is
// only ever called from the caller's goroutine, in order — output is
// byte-identical to a sequential run. An experiment's results are emitted as
// soon as it and all its predecessors have finished.
func RunEach(workers int, emit func(Result)) {
	exps := All()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers <= 1 {
		for _, e := range exps {
			emit(runOne(e))
		}
		return
	}
	results := make([]Result, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				results[i] = runOne(exps[i])
				close(done[i])
			}
		}()
	}
	for i := range exps {
		<-done[i]
		emit(results[i])
	}
}

func runOne(e Experiment) Result {
	start := time.Now()
	tables := e.Run()
	return Result{Experiment: e, Tables: tables, Wall: time.Since(start)}
}

// RunAll executes every experiment and prints its tables to w. Experiments
// run concurrently (GOMAXPROCS workers); output order and bytes are
// identical to a sequential run.
func RunAll(w io.Writer) { RunAllParallel(w, 0) }

// RunAllParallel is RunAll with an explicit worker count (1 = sequential).
func RunAllParallel(w io.Writer, workers int) {
	RunEach(workers, func(r Result) {
		fmt.Fprintf(w, "### %s — %s\n    paper: %s\n\n", r.ID, r.Title, r.Paper)
		for _, t := range r.Tables {
			t.Fprint(w)
		}
	})
}

// RunAllMarkdown executes every experiment and writes a markdown report.
// Like RunAll, it runs experiments on GOMAXPROCS workers.
func RunAllMarkdown(w io.Writer) { RunAllMarkdownParallel(w, 0) }

// RunAllMarkdownParallel is RunAllMarkdown with an explicit worker count.
func RunAllMarkdownParallel(w io.Writer, workers int) {
	fmt.Fprintln(w, "# Molecule reproduction — experiment report")
	fmt.Fprintln(w)
	RunEach(workers, func(r Result) {
		fmt.Fprintf(w, "## %s — %s\n\n> paper: %s\n\n", r.ID, r.Title, r.Paper)
		for _, t := range r.Tables {
			t.Markdown(w)
		}
	})
}

// simShards is the worker count sandboxed uses for its simulations.
// <= 1 runs the classic sequential kernel (sim.Env.Run); > 1 routes every
// experiment through the sharded windowed driver with that many OS workers.
// Results are byte-identical either way — that invariant is what the shard
// determinism tests pin — so this is purely a perf/regression knob.
var simShards atomic.Int32

func init() {
	if s := os.Getenv("MOLECULE_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			simShards.Store(int32(n))
		}
	}
}

// SetSimShards sets the kernel worker count used by every experiment's
// simulation (see simShards). It overrides the MOLECULE_SHARDS environment
// variable and may be changed between runs; 0 or 1 restores the classic
// sequential kernel.
func SetSimShards(n int) { simShards.Store(int32(n)) }

// SimShards reports the current kernel worker count (0 = classic).
func SimShards() int { return int(simShards.Load()) }

// sandboxed runs body as the driver process of a fresh simulation and
// returns after the simulation drains.
//
// With SimShards() <= 1 this is the original code path: one sim.Env, one
// heap, Env.Run. With SimShards() > 1 the same single-domain simulation is
// instead driven by the sharded conservative kernel (a 1ms lookahead window,
// SimShards() OS workers), which must — and, per the determinism tests, does
// — produce bit-identical results; running the full experiment suite through
// the windowed driver is the broadest regression test the sharded kernel has.
func sandboxed(body func(p *sim.Proc)) {
	workers := SimShards()
	if workers <= 1 {
		env := sim.NewEnv()
		env.Spawn("bench-driver", func(p *sim.Proc) { body(p) })
		env.Run()
		return
	}
	sh := sim.NewSharded(1)
	sh.LimitLookahead(time.Millisecond)
	sh.Domain(0).Spawn("bench-driver", func(p *sim.Proc) { body(p) })
	sh.Run(workers)
}

// newMolecule builds a Molecule runtime inside the driver process.
func newMolecule(p *sim.Proc, cfg hw.Config, opts molecule.Options) *molecule.Runtime {
	m := hw.Build(p.Env(), cfg)
	rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// fd formats a duration cell.
func fd(d time.Duration) string { return metrics.FmtDur(d) }

// fr formats a ratio cell.
func fr(r float64) string { return metrics.FmtRatio(r) }
