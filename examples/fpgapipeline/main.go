// FPGA pipeline: the paper's §4.1 motivating application — a frontend
// function pulls an image from storage and hands it to an FPGA gzip
// function for compression — plus a pure-FPGA chain showing the DRAM
// data-retention zero-copy optimization (§4.3).
//
//	go run ./examples/fpgapipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workloads"
)

func main() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}

		// Deploy: the frontend runs on CPU/DPU, gzip has an FPGA profile.
		if err := rt.Deploy(p, "image-processing",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
			log.Fatal(err)
		}
		if err := rt.Deploy(p, "gzip-compression",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			log.Fatal(err)
		}

		// The input image lives in the storage service on the host; the
		// frontend pulls it first (§4.1's motivating pipeline).
		store := storage.New(env, machine, 0)
		dpu := machine.PUsOfKind(hw.DPU)[0].ID
		if err := store.Put(p, 0, storage.Object{Key: "raw-image", Size: 25 << 20}); err != nil {
			log.Fatal(err)
		}
		pullStart := p.Now()
		if _, err := store.Get(p, dpu, "raw-image"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frontend (DPU) pulled 25MB from storage in %v\n", p.Now().Sub(pullStart))

		// Mixed chain: general-purpose frontend + FPGA compressor, driven by
		// the host executor. The 25MB payload is past the CPU/FPGA
		// crossover, so the FPGA profile wins.
		arg := workloads.Arg{Bytes: 25 << 20}
		res, err := rt.InvokeAccelChain(p, []string{"image-processing", "gzip-compression"},
			molecule.AccelChainOptions{Arg: arg})
		if err != nil {
			log.Fatal(err)
		}
		cpuOnly, err := rt.InvokeAccelChain(p, []string{"image-processing", "gzip-compression"},
			molecule.AccelChainOptions{Arg: arg, CPUFallback: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frontend -> gzip(25MB): FPGA pipeline %v vs CPU-only %v (%.1fx)\n",
			res.Total, cpuOnly.Total, float64(cpuOnly.Total)/float64(res.Total))

		// The compression is real: run the function body on an actual
		// repetitive payload.
		gz := rt.Registry.MustGet("gzip-compression")
		out, err := gz.Body(workloads.Arg{Payload: make([]byte, 1<<20)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("real gzip output: %v\n", out)

		// Pure FPGA chain: five vector stages with and without DRAM data
		// retention. With retention, intermediate results stay in the FPGA's
		// DRAM banks and never cross PCIe.
		if err := rt.Deploy(p, "vecstage", molecule.DefaultProfile(hw.FPGA)); err != nil {
			log.Fatal(err)
		}
		chain := []string{"vecstage", "vecstage", "vecstage", "vecstage", "vecstage"}
		copying, _ := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{ForceCopy: true})
		zerocopy, _ := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{})
		fmt.Printf("5-stage FPGA chain: copying %v, zero-copy %v (%.2fx)\n",
			copying.Total, zerocopy.Total, float64(copying.Total)/float64(zerocopy.Total))
	})

	env.Run()
}
