package hw

import (
	"fmt"
	"time"

	"repro/internal/params"
	"repro/internal/sim"
)

// FPGAResources is a bundle of reconfigurable-fabric resources (Table 4).
type FPGAResources struct {
	LUTs  int
	REGs  int
	BRAMs int
	DSPs  int
}

// Add returns the element-wise sum.
func (r FPGAResources) Add(o FPGAResources) FPGAResources {
	return FPGAResources{r.LUTs + o.LUTs, r.REGs + o.REGs, r.BRAMs + o.BRAMs, r.DSPs + o.DSPs}
}

// Fits reports whether r fits within total.
func (r FPGAResources) Fits(total FPGAResources) bool {
	return r.LUTs <= total.LUTs && r.REGs <= total.REGs && r.BRAMs <= total.BRAMs && r.DSPs <= total.DSPs
}

// Utilization returns each resource's fraction of total, in LUT/REG/BRAM/DSP
// order.
func (r FPGAResources) Utilization(total FPGAResources) [4]float64 {
	frac := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return [4]float64{
		frac(r.LUTs, total.LUTs), frac(r.REGs, total.REGs),
		frac(r.BRAMs, total.BRAMs), frac(r.DSPs, total.DSPs),
	}
}

// F1Resources returns the total resources of one AWS F1 UltraScale+ FPGA.
func F1Resources() FPGAResources {
	return FPGAResources{
		LUTs: params.F1TotalLUTs, REGs: params.F1TotalREGs,
		BRAMs: params.F1TotalBRAMs, DSPs: params.F1TotalDSPs,
	}
}

// WrapperBase returns the resources consumed by the vectorized-sandbox
// wrapper shell itself, before any instance slots.
func WrapperBase() FPGAResources {
	return FPGAResources{
		LUTs: params.FPGAWrapperBaseLUTs, REGs: params.FPGAWrapperBaseREGs,
		BRAMs: params.FPGAWrapperBaseBRAMs, DSPs: params.FPGAWrapperBaseDSPs,
	}
}

// PerInstance returns the wrapper resources consumed by one cached function
// instance slot.
func PerInstance() FPGAResources {
	return FPGAResources{
		LUTs: params.FPGAPerInstLUTs, REGs: params.FPGAPerInstREGs,
		BRAMs: params.FPGAPerInstBRAMs, DSPs: params.FPGAPerInstDSPs,
	}
}

// Image is a synthesized FPGA bitstream containing a wrapper plus a vector
// of function instances (the vectorized-sandbox unit of deployment).
type Image struct {
	Name      string
	Instances []string // kernel names baked into this image
	Resources FPGAResources
}

// BuildImage synthesizes an image for the given kernel names, charging the
// wrapper base cost plus one instance slot each. It fails if the vector does
// not fit the device.
func BuildImage(name string, kernels []string) (*Image, error) {
	res := WrapperBase()
	for range kernels {
		res = res.Add(PerInstance())
	}
	if !res.Fits(F1Resources()) {
		return nil, fmt.Errorf("hw: image %q with %d instances exceeds F1 resources", name, len(kernels))
	}
	return &Image{Name: name, Instances: append([]string(nil), kernels...), Resources: res}, nil
}

// Has reports whether the image contains the named kernel.
func (img *Image) Has(kernel string) bool {
	for _, k := range img.Instances {
		if k == kernel {
			return true
		}
	}
	return false
}

// DRAMBank is one FPGA-attached DRAM bank. Banks are statically assigned to
// instances by the wrapper; two instances may share a bank only when they
// never execute concurrently, which the wrapper enforces through the bank's
// exclusion lock (§5). With data retention enabled, the bank's contents
// survive reprogramming, enabling the zero-copy chain optimization (§4.3).
type DRAMBank struct {
	ID     int
	Owners []string // kernels assigned to this bank (sharing allowed)
	Data   []byte   // retained payload
	Valid  bool     // whether Data holds a live value

	// lock serializes execution of the bank's sharers (wrapper-enforced:
	// sharers never run concurrently).
	lock *sim.Resource
}

// Owned reports whether kernel is assigned to this bank.
func (b *DRAMBank) Owned(kernel string) bool {
	for _, o := range b.Owners {
		if o == kernel {
			return true
		}
	}
	return false
}

// Lock returns the bank's execution-exclusion lock.
func (b *DRAMBank) Lock() *sim.Resource { return b.lock }

func (b *DRAMBank) removeOwner(kernel string) {
	for i, o := range b.Owners {
		if o == kernel {
			b.Owners = append(b.Owners[:i], b.Owners[i+1:]...)
			return
		}
	}
}

// FPGADevice models one FPGA card: its programmed image, execution regions,
// DRAM banks, and the reprogramming state machine with paper-calibrated
// timings (Fig 10c).
type FPGADevice struct {
	env *sim.Env

	image     *Image
	erased    bool // true when fabric has been erased since last program
	regions   *sim.Resource
	banks     []*DRAMBank
	retention bool // DRAM data retention across reprogramming (§4.3)

	programs int // lifetime count of programming operations
	erases   int // lifetime count of erase operations
}

// NewFPGADevice returns a blank device with the given DRAM bank count and
// concurrent execution regions.
func NewFPGADevice(env *sim.Env, banks, regions int) *FPGADevice {
	d := &FPGADevice{env: env, erased: true, regions: sim.NewResource(env, regions)}
	for i := 0; i < banks; i++ {
		d.banks = append(d.banks, &DRAMBank{ID: i, lock: sim.NewResource(env, 1)})
	}
	return d
}

// Image returns the currently programmed image, or nil.
func (d *FPGADevice) Image() *Image { return d.image }

// SetRetention enables or disables DRAM data retention across reprogramming.
func (d *FPGADevice) SetRetention(on bool) { d.retention = on }

// Retention reports whether DRAM data retention is enabled.
func (d *FPGADevice) Retention() bool { return d.retention }

// Banks returns the device's DRAM banks.
func (d *FPGADevice) Banks() []*DRAMBank { return d.banks }

// Regions returns the execution-region semaphore.
func (d *FPGADevice) Regions() *sim.Resource { return d.regions }

// ProgramCounts reports lifetime (program, erase) operation counts.
func (d *FPGADevice) ProgramCounts() (programs, erases int) { return d.programs, d.erases }

// Erase wipes the fabric, sleeping the caller for the erase time. The
// paper's key observation: this step is unnecessary for serverless images
// because the next Program replaces the configuration anyway.
func (d *FPGADevice) Erase(p *sim.Proc) {
	p.Sleep(params.FPGAEraseTime)
	d.image = nil
	d.erased = true
	d.erases++
	if !d.retention {
		d.invalidateBanks()
	}
}

// Program flushes img onto the device, sleeping the caller for the image
// load time. If eraseFirst is true the fabric is erased beforehand (the
// naive baseline); otherwise the new image directly replaces the old one.
// Without data retention, reprogramming invalidates DRAM bank contents.
func (d *FPGADevice) Program(p *sim.Proc, img *Image, eraseFirst bool) {
	if eraseFirst && !d.erased {
		d.Erase(p)
	}
	p.Sleep(params.FPGAImageLoadTime)
	d.image = img
	d.erased = false
	d.programs++
	if !d.retention {
		d.invalidateBanks()
	}
	// Bank ownership follows the image's instances.
	for _, b := range d.banks {
		changed := false
		for _, o := range append([]string(nil), b.Owners...) {
			if !img.Has(o) {
				b.removeOwner(o)
				changed = true
			}
		}
		if changed && len(b.Owners) == 0 {
			b.Valid = false
			b.Data = nil
		}
	}
}

func (d *FPGADevice) invalidateBanks() {
	for _, b := range d.banks {
		b.Valid = false
		b.Data = nil
	}
}

// AssignBank assigns a free (exclusive) DRAM bank to a kernel, returning an
// error when none is free. Use AssignBankShared to fall back to sharing.
func (d *FPGADevice) AssignBank(kernel string) (*DRAMBank, error) {
	for _, b := range d.banks {
		if b.Owned(kernel) {
			return b, nil
		}
	}
	for _, b := range d.banks {
		if len(b.Owners) == 0 {
			b.Owners = append(b.Owners, kernel)
			return b, nil
		}
	}
	return nil, fmt.Errorf("hw: no free DRAM bank for kernel %q", kernel)
}

// AssignBankShared assigns a bank to the kernel, preferring a free bank and
// otherwise sharing the least-crowded one. Per §5, sharers never execute
// concurrently — the wrapper enforces that with the bank's lock.
func (d *FPGADevice) AssignBankShared(kernel string) (*DRAMBank, error) {
	if b, err := d.AssignBank(kernel); err == nil {
		return b, nil
	}
	if len(d.banks) == 0 {
		return nil, fmt.Errorf("hw: device has no DRAM banks")
	}
	best := d.banks[0]
	for _, b := range d.banks[1:] {
		if len(b.Owners) < len(best.Owners) {
			best = b
		}
	}
	best.Owners = append(best.Owners, kernel)
	return best, nil
}

// ReleaseBank removes a kernel's bank assignment; the bank's data is
// dropped once no owners remain.
func (d *FPGADevice) ReleaseBank(kernel string) {
	for _, b := range d.banks {
		if b.Owned(kernel) {
			b.removeOwner(kernel)
			if len(b.Owners) == 0 {
				b.Valid = false
				b.Data = nil
			}
		}
	}
}

// BankFor returns the bank assigned to kernel, or nil.
func (d *FPGADevice) BankFor(kernel string) *DRAMBank {
	for _, b := range d.banks {
		if b.Owned(kernel) {
			return b
		}
	}
	return nil
}

// Execute runs the named kernel for the given fabric time, holding one
// execution region for the duration. It fails if the kernel is not in the
// programmed image.
func (d *FPGADevice) Execute(p *sim.Proc, kernel string, fabricTime time.Duration) error {
	if d.image == nil || !d.image.Has(kernel) {
		return fmt.Errorf("hw: kernel %q not programmed", kernel)
	}
	d.regions.Acquire(p)
	p.Sleep(fabricTime)
	d.regions.Release()
	return nil
}
