package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The coupled workload: cm simulated machines, each a driver process doing
// quantized sleeps whose durations depend on how many cross-machine messages
// the machine has received so far (so the cross-domain edges are load-
// bearing: any synchronization bug changes the fingerprint). Every machine's
// events occupy a distinct residue class of the time quantum cq, so no two
// machines ever act at the same instant and the merged trace has one total
// order regardless of how machines are grouped into domains.
const (
	cm     = 6         // machines
	cq     = 2*cm + 2  // time quantum (ns): residues 1..cm for machines, cm+2..2cm+1 for arrivals
	cInv   = 40        // invocations per machine
	cLA    = 1000 * cq // lookahead (ns), a multiple of the quantum
	cEvery = 3         // send a cross-machine message every cEvery invocations
)

type coupledState struct {
	inv  [cm]int
	recv [cm]int
	done [cm]Time
}

// coupledBody returns machine m's driver. send schedules fn on machine k
// after delay, through whatever cross-machine mechanism the variant under
// test uses.
func coupledBody(st *coupledState, m int, send func(p *Proc, k int, delay Duration, fn func())) func(*Proc) {
	return func(p *Proc) {
		p.Sleep(Duration(m + 1)) // enter machine m's residue class
		for n := 0; n < cInv; n++ {
			service := Duration(cq * (50 + n%7 + 3*(st.recv[m]%5)))
			p.Sleep(service)
			st.inv[m]++
			p.Tracef("m%d inv %d recv %d", m, n, st.recv[m])
			if n%cEvery == 0 {
				k := (m + 1) % cm
				// delay >= lookahead, adjusted onto the arrival residue
				// class of machine k.
				delay := Duration(cLA + ((cm+2+k-(m+1))%cq+cq)%cq)
				send(p, k, delay, func() { st.recv[k]++ })
			}
		}
		st.done[m] = p.Now()
	}
}

type coupledRun struct {
	fp    string
	trace string
	sched int64
}

func fingerprint(st *coupledState, sched int64) string {
	return fmt.Sprintf("inv=%v recv=%v done=%v sched=%d", st.inv, st.recv, st.done, sched)
}

func renderTrace(evs []TraceEvent) string {
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// runCoupledSharded runs the workload on a Sharded group with the given
// domain and worker counts; machine m lives on domain m % domains. When
// lookahead is false the group runs in the zero-lookahead sequential merge.
func runCoupledSharded(domains, workers int, lookahead bool) coupledRun {
	sh := NewSharded(domains)
	if lookahead {
		sh.LimitLookahead(cLA)
	}
	sh.EnableTrace()
	var st coupledState
	for m := 0; m < cm; m++ {
		m := m
		dom := sh.Domain(m % domains)
		send := func(p *Proc, k int, delay Duration, fn func()) {
			dst := sh.Domain(k % domains)
			sh.Send(p.Env(), k%domains, delay, func() {
				fn()
				dst.Tracef("recv m%d", k)
			})
		}
		dom.Spawn(fmt.Sprintf("machine-%d", m), coupledBody(&st, m, send))
	}
	sh.Run(workers)
	return coupledRun{
		fp:    fingerprint(&st, sh.Scheduled()),
		trace: renderTrace(sh.TraceLog()),
		sched: sh.Scheduled(),
	}
}

// runCoupledPlain runs the identical workload on one classic Env — the
// pre-sharding kernel — with cross-machine messages as AfterFunc callbacks.
func runCoupledPlain() coupledRun {
	env := NewEnv()
	env.EnableTrace()
	var st coupledState
	for m := 0; m < cm; m++ {
		send := func(p *Proc, k int, delay Duration, fn func()) {
			env.AfterFunc(delay, func() {
				fn()
				env.Tracef("recv m%d", k)
			})
		}
		env.Spawn(fmt.Sprintf("machine-%d", m), coupledBody(&st, m, send))
	}
	env.Run()
	return coupledRun{
		fp:    fingerprint(&st, env.Scheduled()),
		trace: renderTrace(env.TraceLog()),
		sched: env.Scheduled(),
	}
}

// TestShardedMatchesSequential is the determinism contract of the sharded
// kernel: the coupled workload must produce bit-identical fingerprints and
// trace logs on the classic single-heap kernel and on every sharding —
// any domain partition, any worker count, windowed or sequential-merge.
func TestShardedMatchesSequential(t *testing.T) {
	ref := runCoupledPlain()
	if ref.sched == 0 || len(ref.trace) == 0 {
		t.Fatal("reference run produced no events")
	}
	cases := []struct {
		name      string
		domains   int
		workers   int
		lookahead bool
	}{
		{"d1-w1-windowed", 1, 1, true},
		{"d2-w1", 2, 1, true},
		{"d2-w2", 2, 2, true},
		{"d3-w4", 3, 4, true},
		{"d6-w1", 6, 1, true},
		{"d6-w4", 6, 4, true},
		{"d6-wNumCPU", 6, runtime.NumCPU(), true},
		{"d6-merge", 6, 1, false},
		{"d4-merge", 4, 1, false},
	}
	for _, c := range cases {
		got := runCoupledSharded(c.domains, c.workers, c.lookahead)
		if got.fp != ref.fp {
			t.Errorf("%s: fingerprint diverged\n got: %s\nwant: %s", c.name, got.fp, ref.fp)
		}
		if got.trace != ref.trace {
			t.Errorf("%s: trace log diverged (%d vs %d bytes)", c.name, len(got.trace), len(ref.trace))
		}
	}
}

// TestShardedRepeatable pins run-to-run determinism at a fixed configuration
// (the wall-clock schedule of the worker pool must not leak into results).
func TestShardedRepeatable(t *testing.T) {
	a := runCoupledSharded(3, 4, true)
	b := runCoupledSharded(3, 4, true)
	if a.fp != b.fp || a.trace != b.trace {
		t.Fatal("two identical sharded runs diverged")
	}
}

// TestShardedSingleDomainIsClassicRun: with one domain and no lookahead,
// Sharded.Run is exactly Env.Run — same code path, same bytes.
func TestShardedSingleDomainIsClassicRun(t *testing.T) {
	run := func(mk func() (*Env, func() Time)) string {
		env, drive := mk()
		env.EnableTrace()
		for i := 0; i < 3; i++ {
			i := i
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for n := 0; n < 5; n++ {
					p.Sleep(Duration(i+1) * time.Microsecond)
					p.Tracef("tick %d", n)
				}
			})
		}
		drive()
		return renderTrace(env.TraceLog())
	}
	plain := run(func() (*Env, func() Time) {
		e := NewEnv()
		return e, e.Run
	})
	sharded := run(func() (*Env, func() Time) {
		sh := NewSharded(1)
		return sh.Domain(0), func() Time { return sh.Run(1) }
	})
	if plain != sharded {
		t.Fatal("single-domain sharded run diverged from Env.Run")
	}
}

// TestShardedWindowedSingleDomain: a single-domain group with a lookahead
// runs through the windowed driver and must still match the classic loop —
// the window machinery is transparent when no cross-domain edges exist.
func TestShardedWindowedSingleDomain(t *testing.T) {
	build := func(env *Env) *coupledState {
		var st coupledState
		for m := 0; m < cm; m++ {
			send := func(p *Proc, k int, delay Duration, fn func()) {
				env.AfterFunc(delay, fn)
			}
			env.Spawn(fmt.Sprintf("machine-%d", m), coupledBody(&st, m, send))
		}
		return &st
	}
	plainEnv := NewEnv()
	plainEnv.EnableTrace()
	stPlain := build(plainEnv)
	plainEnv.Run()

	sh := NewSharded(1)
	sh.LimitLookahead(cLA)
	env := sh.Domain(0)
	env.EnableTrace()
	stSh := build(env)
	sh.Run(4)

	if fingerprint(stPlain, plainEnv.Scheduled()) != fingerprint(stSh, env.Scheduled()) {
		t.Fatal("windowed single-domain run diverged from classic loop")
	}
	if renderTrace(plainEnv.TraceLog()) != renderTrace(sh.TraceLog()) {
		t.Fatal("windowed single-domain trace diverged from classic loop")
	}
	if env.windowBound != 0 {
		t.Fatalf("windowBound not restored after Run: %d", env.windowBound)
	}
}

// TestSendBelowLookaheadPanics: violating the conservative bound is a
// programming error, not a silent race.
func TestSendBelowLookaheadPanics(t *testing.T) {
	sh := NewSharded(2)
	sh.LimitLookahead(time.Millisecond)
	sh.Domain(0).Spawn("sender", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Send below lookahead did not panic")
			}
			panic(Interrupted{Proc: "sender"}) // unwind cleanly
		}()
		sh.Send(p.Env(), 1, time.Microsecond, func() {})
	})
	sh.Run(1)
}

// TestSendOutsideGroupPanics: an Env can only send within its own group.
func TestSendOutsideGroupPanics(t *testing.T) {
	sh := NewSharded(2)
	other := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("Send from foreign Env did not panic")
		}
	}()
	sh.Send(other, 1, time.Millisecond, func() {})
}

// TestShardedBlockedProcs: blocked-process diagnostics merge across domains
// in sorted order, per the documented BlockedProcs guarantee.
func TestShardedBlockedProcs(t *testing.T) {
	sh := NewSharded(2)
	chA := NewChan[int](sh.Domain(0), 0)
	chB := NewChan[int](sh.Domain(1), 0)
	sh.Domain(1).Spawn("zeta-stuck", func(p *Proc) { chB.Recv(p) })
	sh.Domain(0).Spawn("alpha-stuck", func(p *Proc) { chA.Recv(p) })
	sh.Domain(0).Spawn("done", func(p *Proc) { p.Sleep(time.Microsecond) })
	sh.LimitLookahead(time.Millisecond)
	sh.Run(2)
	got := sh.BlockedProcs()
	if len(got) != 2 || got[0] != "alpha-stuck" || got[1] != "zeta-stuck" {
		t.Fatalf("BlockedProcs = %v, want [alpha-stuck zeta-stuck]", got)
	}
	if sh.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2", sh.LiveProcs())
	}
}

// TestShardedStop: Stop in any domain halts the whole group at the next
// barrier without deadlocking the driver.
func TestShardedStop(t *testing.T) {
	sh := NewSharded(2)
	sh.LimitLookahead(time.Millisecond)
	var after int
	sh.Domain(0).Spawn("stopper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Env().Stop()
	})
	sh.Domain(1).Spawn("worker", func(p *Proc) {
		for {
			p.Sleep(100 * time.Millisecond)
			after++
		}
	})
	end := sh.Run(2)
	if end < Time(10*time.Millisecond) {
		t.Fatalf("stopped too early: %v", end)
	}
	if after > 1 {
		t.Fatalf("worker kept running after Stop: %d iterations", after)
	}
}

// TestShardedClockMonotone: every domain's clock only moves forward, and
// Clocks/Now agree with per-domain observations.
func TestShardedClockMonotone(t *testing.T) {
	sh := NewSharded(3)
	sh.LimitLookahead(time.Millisecond)
	var last [3]Time
	for d := 0; d < 3; d++ {
		d := d
		sh.Domain(d).Spawn("ticker", func(p *Proc) {
			for n := 0; n < 100; n++ {
				p.Sleep(Duration(d+1) * 100 * time.Microsecond)
				if p.Now() < last[d] {
					t.Errorf("domain %d clock regressed: %v < %v", d, p.Now(), last[d])
				}
				last[d] = p.Now()
			}
		})
	}
	sh.Run(3)
	for d, c := range sh.Clocks() {
		if c != last[d] {
			t.Errorf("domain %d final clock %v != last observation %v", d, c, last[d])
		}
	}
	if sh.Now() != last[2] {
		t.Errorf("group Now %v != max domain clock %v", sh.Now(), last[2])
	}
}
