package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		woke = p.Now()
	})
	end := env.Run()
	if woke != Time(10*time.Millisecond) {
		t.Errorf("woke at %v, want 10ms", woke)
	}
	if end != woke {
		t.Errorf("Run returned %v, want %v", end, woke)
	}
}

func TestSleepNegativeClampsToZero(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		p.Sleep(-5 * time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	env.Run()
}

func TestEventOrderingDeterministic(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			p.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, name)
		})
	}
	env.Run()
	want := "abc"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("same-time events fired in order %q, want %q (FIFO by seq)", got, want)
	}
}

func TestSpawnAfter(t *testing.T) {
	env := NewEnv()
	var started Time
	env.SpawnAfter(3*time.Second, "late", func(p *Proc) { started = p.Now() })
	env.Run()
	if started != Time(3*time.Second) {
		t.Errorf("started at %v, want 3s", started)
	}
}

func TestAtAndAfterFunc(t *testing.T) {
	env := NewEnv()
	var times []Time
	env.At(Time(5*time.Millisecond), func() { times = append(times, env.Now()) })
	env.AfterFunc(2*time.Millisecond, func() { times = append(times, env.Now()) })
	env.Run()
	if len(times) != 2 || times[0] != Time(2*time.Millisecond) || times[1] != Time(5*time.Millisecond) {
		t.Errorf("callback times = %v, want [2ms 5ms]", times)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	env := NewEnv()
	fired := false
	env.At(Time(10*time.Second), func() { fired = true })
	end := env.RunUntil(Time(time.Second))
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != Time(time.Second) {
		t.Errorf("RunUntil returned %v, want 1s", end)
	}
	if env.Pending() != 1 {
		t.Errorf("pending = %d, want 1", env.Pending())
	}
	env.Run()
	if !fired {
		t.Error("event did not fire on resumed Run")
	}
}

func TestStop(t *testing.T) {
	env := NewEnv()
	count := 0
	env.Spawn("loop", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			count++
			if count == 3 {
				p.Env().Stop()
			}
		}
	})
	env.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (Stop should halt the loop)", count)
	}
}

func TestUnbufferedChanRendezvous(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	var got int
	var recvAt, sendDone Time
	env.Spawn("recv", func(p *Proc) {
		v, ok := ch.Recv(p)
		if !ok {
			t.Error("recv reported closed")
		}
		got = v
		recvAt = p.Now()
	})
	env.Spawn("send", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		ch.Send(p, 42)
		sendDone = p.Now()
	})
	env.Run()
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if recvAt != Time(7*time.Millisecond) {
		t.Errorf("receive completed at %v, want 7ms", recvAt)
	}
	if sendDone != Time(7*time.Millisecond) {
		t.Errorf("send completed at %v, want 7ms", sendDone)
	}
}

func TestBufferedChanDoesNotBlockUntilFull(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 2)
	var sendTimes []Time
	env.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ch.Send(p, i)
			sendTimes = append(sendTimes, p.Now())
		}
	})
	env.Spawn("recv", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			v, _ := ch.Recv(p)
			if v != i {
				t.Errorf("recv %d, want %d (FIFO order)", v, i)
			}
		}
	})
	env.Run()
	if sendTimes[0] != 0 || sendTimes[1] != 0 {
		t.Errorf("buffered sends blocked: times %v", sendTimes)
	}
	if sendTimes[2] != Time(time.Second) {
		t.Errorf("third send completed at %v, want 1s (after first recv)", sendTimes[2])
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	env := NewEnv()
	ch := NewChan[string](env, 0)
	var ok bool = true
	env.Spawn("recv", func(p *Proc) { _, ok = ch.Recv(p) })
	env.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Close()
	})
	env.Run()
	if ok {
		t.Error("receiver on closed channel got ok=true")
	}
	if env.LiveProcs() != 0 {
		t.Errorf("live procs = %d, want 0", env.LiveProcs())
	}
}

func TestChanDrainAfterClose(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 4)
	env.Spawn("p", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close()
		v, ok := ch.Recv(p)
		if !ok || v != 1 {
			t.Errorf("drain got (%d,%v), want (1,true)", v, ok)
		}
		v, ok = ch.Recv(p)
		if !ok || v != 2 {
			t.Errorf("drain got (%d,%v), want (2,true)", v, ok)
		}
		_, ok = ch.Recv(p)
		if ok {
			t.Error("drained channel still delivering ok=true")
		}
	})
	env.Run()
}

func TestTrySendTryRecv(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 1)
	env.Spawn("p", func(p *Proc) {
		if _, _, got := ch.TryRecv(); got {
			t.Error("TryRecv on empty chan reported a value")
		}
		if !ch.TrySend(9) {
			t.Error("TrySend into free buffer failed")
		}
		if ch.TrySend(10) {
			t.Error("TrySend into full buffer succeeded")
		}
		v, ok, got := ch.TryRecv()
		if !got || !ok || v != 9 {
			t.Errorf("TryRecv = (%d,%v,%v), want (9,true,true)", v, ok, got)
		}
	})
	env.Run()
}

func TestSendToWaitingReceiverDoesNotBlockSender(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	var senderDone Time = -1
	env.Spawn("recv", func(p *Proc) { ch.Recv(p) })
	env.Spawn("send", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(p, 1)
		senderDone = p.Now()
	})
	env.Run()
	if senderDone != Time(time.Millisecond) {
		t.Errorf("sender finished at %v, want 1ms", senderDone)
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	results := make([]any, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("w", func(p *Proc) { results[i] = ev.Wait(p) })
	}
	env.Spawn("trigger", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Trigger("done")
		ev.Trigger("again") // second trigger must be a no-op
	})
	env.Run()
	for i, r := range results {
		if r != "done" {
			t.Errorf("waiter %d got %v, want done", i, r)
		}
	}
	if ev.Payload() != "done" {
		t.Errorf("payload = %v, want done (second trigger ignored)", ev.Payload())
	}
}

func TestEventWaitAfterTrigger(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Trigger(7)
	env.Spawn("late", func(p *Proc) {
		if got := ev.Wait(p); got != 7 {
			t.Errorf("late waiter got %v, want 7", got)
		}
		if p.Now() != 0 {
			t.Error("late Wait blocked")
		}
	})
	env.Run()
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []string
	hold := func(name string, startDelay, holdFor Duration) {
		env.SpawnAfter(startDelay, name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(holdFor)
			r.Release()
		})
	}
	hold("first", 0, 10*time.Millisecond)
	hold("second", time.Millisecond, time.Millisecond)
	hold("third", 2*time.Millisecond, time.Millisecond)
	env.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v", order, want)
		}
	}
	if r.InUse() != 0 {
		t.Errorf("resource in use = %d after all released", r.InUse())
	}
}

func TestResourceCapacity(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var third Time
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			if i == 2 {
				third = p.Now()
			}
			p.Sleep(time.Second)
			r.Release()
		})
	}
	env.Run()
	if third != Time(time.Second) {
		t.Errorf("third acquirer ran at %v, want 1s (capacity 2)", third)
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on exhausted resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestWaitGroup(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env)
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		env.Spawn("worker", func(p *Proc) {
			p.Sleep(Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	env.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	env.Run()
	if doneAt != Time(3*time.Millisecond) {
		t.Errorf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env)
	env.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		if p.Now() != 0 {
			t.Error("Wait on zero-count group blocked")
		}
	})
	env.Run()
}

func TestInterruptParkedProcess(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	victim := env.Spawn("victim", func(p *Proc) {
		ch.Recv(p) // parks forever
		t.Error("victim ran past interrupted Recv")
	})
	env.Spawn("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Interrupt()
	})
	env.Run()
	if env.LiveProcs() != 0 {
		t.Errorf("live procs = %d, want 0 after interrupt", env.LiveProcs())
	}
}

func TestInterruptExitedProcessNoop(t *testing.T) {
	env := NewEnv()
	p1 := env.Spawn("quick", func(p *Proc) {})
	env.Spawn("late", func(p *Proc) {
		p.Sleep(time.Second)
		p1.Interrupt()
	})
	env.Run() // must not hang or panic
}

func TestLiveProcsCountsBlocked(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	env.Spawn("blocked", func(p *Proc) { ch.Recv(p) })
	env.Run()
	if env.LiveProcs() != 1 {
		t.Errorf("live procs = %d, want 1 (deadlock detector)", env.LiveProcs())
	}
}

func TestYieldRunsAfterQueuedEvents(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Spawn("b", func(p *Proc) { order = append(order, "b") })
	env.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Errorf("order = %v, want [a1 b a2]", order)
	}
}

func TestNestedSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childAt Time
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childAt = c.Now()
		})
		p.Sleep(5 * time.Millisecond)
	})
	env.Run()
	if childAt != Time(2*time.Millisecond) {
		t.Errorf("child finished at %v, want 2ms", childAt)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(time.Second)
	if tm.After(time.Second) != Time(2*time.Second) {
		t.Error("After broken")
	}
	if tm.Sub(Time(250*time.Millisecond)) != 750*time.Millisecond {
		t.Error("Sub broken")
	}
	if tm.Seconds() != 1.0 {
		t.Error("Seconds broken")
	}
	if tm.String() != "1s" {
		t.Errorf("String = %q, want 1s", tm.String())
	}
}

func TestManyProcessesStress(t *testing.T) {
	env := NewEnv()
	const n = 2000
	ch := NewChan[int](env, 0)
	sum := 0
	env.Spawn("collector", func(p *Proc) {
		for i := 0; i < n; i++ {
			v, _ := ch.Recv(p)
			sum += v
		}
	})
	for i := 1; i <= n; i++ {
		i := i
		env.Spawn("producer", func(p *Proc) {
			p.Sleep(Duration(i % 17))
			ch.Send(p, i)
		})
	}
	env.Run()
	if want := n * (n + 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if env.LiveProcs() != 0 {
		t.Errorf("live procs = %d, want 0", env.LiveProcs())
	}
}

func TestWaitAnyFirstWins(t *testing.T) {
	env := NewEnv()
	a, b, c := NewEvent(env), NewEvent(env), NewEvent(env)
	var idx int
	var payload any
	env.Spawn("waiter", func(p *Proc) { idx, payload = WaitAny(p, a, b, c) })
	env.Spawn("fire", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		b.Trigger("beta")
		p.Sleep(time.Millisecond)
		a.Trigger("alpha") // too late
		c.Trigger("gamma") // release the remaining relay
	})
	env.Run()
	if idx != 1 || payload != "beta" {
		t.Errorf("WaitAny = (%d,%v), want (1,beta)", idx, payload)
	}
	if env.LiveProcs() != 0 {
		t.Errorf("relays leaked: %d live procs", env.LiveProcs())
	}
}

func TestWaitAnyAlreadyTriggered(t *testing.T) {
	env := NewEnv()
	a, b := NewEvent(env), NewEvent(env)
	b.Trigger(7)
	env.Spawn("w", func(p *Proc) {
		idx, payload := WaitAny(p, a, b)
		if idx != 1 || payload != 7 {
			t.Errorf("WaitAny = (%d,%v), want (1,7)", idx, payload)
		}
		if p.Now() != 0 {
			t.Error("WaitAny on triggered event blocked")
		}
	})
	env.Run()
}

func TestBlockedProcsDiagnostics(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	env.Spawn("stuck-consumer", func(p *Proc) { ch.Recv(p) })
	env.Spawn("finisher", func(p *Proc) {})
	env.Run()
	blocked := env.BlockedProcs()
	if len(blocked) != 1 || blocked[0] != "stuck-consumer" {
		t.Errorf("blocked = %v, want [stuck-consumer]", blocked)
	}
}
