package hw

import (
	"errors"
	"testing"
	"time"

	"repro/internal/params"
	"repro/internal/sim"
)

// fakeInjector is a scriptable FaultInjector for Transfer tests.
type fakeInjector struct {
	inflate float64
	err     error
	calls   int
}

func (f *fakeInjector) TransferFault(a, b PUID) (float64, error) {
	f.calls++
	return f.inflate, f.err
}

func TestTransferFaultError(t *testing.T) {
	env, m := testMachine(t, Config{DPUs: 1})
	injected := errors.New("boom")
	fi := &fakeInjector{inflate: 1, err: injected}
	m.Faults = fi
	env.Spawn("xfer", func(p *sim.Proc) {
		start := p.Now()
		if _, err := m.Transfer(p, 0, 1, 4096); !errors.Is(err, injected) {
			t.Errorf("Transfer err = %v, want injected fault", err)
		}
		if p.Now() != start {
			t.Error("failed transfer charged virtual time")
		}
	})
	env.Run()
	if fi.calls != 1 {
		t.Errorf("injector consulted %d times, want 1", fi.calls)
	}
}

func TestTransferFaultInflation(t *testing.T) {
	baseline := func(inflate float64) time.Duration {
		env, m := testMachine(t, Config{DPUs: 1})
		if inflate > 0 {
			m.Faults = &fakeInjector{inflate: inflate}
		}
		var took sim.Time
		env.Spawn("xfer", func(p *sim.Proc) {
			if _, err := m.Transfer(p, 0, 1, 4096); err != nil {
				t.Error(err)
			}
			took = p.Now()
		})
		env.Run()
		return time.Duration(took)
	}
	healthy := baseline(0)
	identity := baseline(1)
	inflated := baseline(3)
	if identity != healthy {
		t.Errorf("inflate=1 changed timing: %v vs %v", identity, healthy)
	}
	bw := float64(params.RDMABandwidth)
	want := 3 * (params.RDMABaseLatency + time.Duration(4096/bw*float64(time.Second)))
	if inflated != want {
		t.Errorf("inflate=3 transfer took %v, want %v", inflated, want)
	}
}
