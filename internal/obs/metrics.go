package obs

import (
	"sort"
	"strings"
	"time"
)

// Label is one dimension of a metric series (e.g. {pu="1"}, {fn="matmul"},
// {link="0->1"}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. A nil *Counter no-ops.
type Counter struct {
	labels []Label
	v      int64
}

// Add increments the counter by n (negative n is ignored). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v += n
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can go up and down (e.g. FIFO queue depth). A nil
// *Gauge no-ops.
type Gauge struct {
	labels []Label
	v      float64
}

// Set replaces the gauge's value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add shifts the gauge by d. Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets are the virtual-time histogram upper bounds. They span the
// latencies this system produces — microsecond IPC round trips to multi-
// second plain cold boots — with decade-plus-midpoint resolution.
var histBuckets = []time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// numHistBuckets must equal len(histBuckets); the blank declaration below
// breaks the build if they drift apart.
const numHistBuckets = 14

var _ = [1]struct{}{}[len(histBuckets)-numHistBuckets]

// Histogram accumulates virtual-time durations into fixed exponential
// buckets (Prometheus classic histogram semantics: cumulative buckets plus
// sum and count). A nil *Histogram no-ops.
type Histogram struct {
	labels []Label
	counts [numHistBuckets]int64 // one per histBuckets entry
	inf    int64                 // +Inf overflow bucket
	sum    time.Duration
	max    time.Duration // largest observation; Quantile's +Inf-bucket answer
	n      int64
}

// Observe records one duration. Bucket upper bounds are inclusive
// (Prometheus le semantics): a value exactly on a bucket edge belongs to
// that bucket. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.sum += d
	h.n++
	if d > h.max {
		h.max = d
	}
	for i, ub := range histBuckets {
		if d <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) by
// nearest rank over the bucket CDF: the smallest bucket whose cumulative
// count reaches rank ceil(q*n), clamped to the largest observation. The
// >= rank comparison is what keeps bucket edges exact — with every
// observation equal to a bucket's upper bound, that bound itself is
// returned for every q, not the next bucket up. Returns 0 with no
// observations. Nil-safe.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	cum := int64(0)
	for i, ub := range histBuckets {
		cum += h.counts[i]
		if cum >= rank {
			if ub > h.max {
				return h.max
			}
			return ub
		}
	}
	return h.max
}

// Max returns the largest observation (0 on nil or empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total observed virtual time (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets returns a copy of the non-cumulative per-bucket counts, the +Inf
// overflow count last. Snapshot semantics: mutating the result cannot
// corrupt the histogram.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, 0, len(histBuckets)+1)
	out = append(out, h.counts[:]...)
	return append(out, h.inf)
}

// Registry is a metrics registry: counters, gauges, and histograms keyed by
// (name, label set). Get-or-create lookups make call sites declarative; the
// registry is not safe for concurrent use (the simulation is
// single-threaded; httpd serializes on its own mutex).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// seriesKey serializes name plus the sorted label set; it identifies one
// series. sortLabels returns the sorted copy stored on the instrument.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// LabelSet is a pre-interned series identity: the (name, sorted labels)
// series key is computed once at construction, so hot paths can look up
// instruments with a single map probe — no sorting or string building per
// call. A LabelSet is observer-independent: it stays valid across
// Registry/Observer swaps, which is why call sites cache LabelSets rather
// than instrument pointers.
type LabelSet struct {
	key    string
	labels []Label
}

// Intern builds the LabelSet for (name, labels). Construction pays the
// one-time sort+serialize cost that Counter/Gauge/Histogram would otherwise
// pay on every lookup.
func Intern(name string, labels ...Label) LabelSet {
	k, ls := seriesKey(name, labels)
	return LabelSet{key: k, labels: ls}
}

// CounterSet returns the counter series for a pre-interned LabelSet,
// creating it on first use. Zero allocations on the hit path. Nil-safe.
//
//molecule:hotpath
func (r *Registry) CounterSet(ls LabelSet) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[ls.key]
	if !ok {
		c = &Counter{labels: ls.labels}
		r.counters[ls.key] = c
	}
	return c
}

// GaugeSet returns the gauge series for a pre-interned LabelSet, creating it
// on first use. Zero allocations on the hit path. Nil-safe.
//
//molecule:hotpath
func (r *Registry) GaugeSet(ls LabelSet) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[ls.key]
	if !ok {
		g = &Gauge{labels: ls.labels}
		r.gauges[ls.key] = g
	}
	return g
}

// HistogramSet returns the histogram series for a pre-interned LabelSet,
// creating it on first use. Zero allocations on the hit path. Nil-safe.
//
//molecule:hotpath
func (r *Registry) HistogramSet(ls LabelSet) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[ls.key]
	if !ok {
		h = &Histogram{labels: ls.labels}
		r.hists[ls.key] = h
	}
	return h
}

// Counter returns the counter series for (name, labels), creating it on
// first use. Nil-safe: a nil Registry returns a nil Counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k, ls := seriesKey(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{labels: ls}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use. Nil-safe.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k, ls := seriesKey(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{labels: ls}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram series for (name, labels), creating it on
// first use. Nil-safe.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k, ls := seriesKey(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{labels: ls}
		r.hists[k] = h
	}
	return h
}

// SetHelp registers a HELP line for a metric family, emitted by the
// Prometheus exporter. Nil-safe.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.help[name] = help
}
