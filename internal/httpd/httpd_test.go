package httpd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServer(hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, form url.Values) (int, map[string]any) {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestDeployInvokeRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts, "/deploy", url.Values{"fn": {"helloworld"}})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	code, body = post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}, "body": {"1"}})
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	if body["cold"] != true {
		t.Error("first invoke not cold")
	}
	if body["output"] != "hello, heterogeneous world" {
		t.Errorf("output = %v", body["output"])
	}
	if body["total_ms"].(float64) <= 0 {
		t.Error("no virtual latency reported")
	}
	// Second invoke is warm.
	_, body = post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}})
	if body["cold"] != false {
		t.Error("second invoke not warm")
	}
}

func TestInvokeOnFPGA(t *testing.T) {
	ts := newTestServer(t)
	if code, body := post(t, ts, "/deploy", url.Values{
		"fn": {"gzip-compression"}, "profiles": {"cpu,fpga"},
	}); code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	_, body := post(t, ts, "/invoke", url.Values{
		"fn": {"gzip-compression"}, "bytes": {"52428800"},
	})
	if body["kind"] != "FPGA" {
		t.Errorf("kind = %v, want FPGA", body["kind"])
	}
}

func TestChainEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for _, fn := range []string{"mr-splitter", "mr-mapper", "mr-reducer"} {
		post(t, ts, "/deploy", url.Values{"fn": {fn}})
	}
	code, body := post(t, ts, "/chain", url.Values{"fns": {"mr-splitter,mr-mapper,mr-reducer"}})
	if code != http.StatusOK {
		t.Fatalf("chain: %d %v", code, body)
	}
	if int(body["cold_starts"].(float64)) != 3 {
		t.Errorf("cold starts = %v", body["cold_starts"])
	}
	edges := body["edge_ms"].([]any)
	if len(edges) != 2 {
		t.Errorf("edges = %v", edges)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		path string
		form url.Values
	}{
		{"/deploy", url.Values{}},
		{"/deploy", url.Values{"fn": {"no-such"}}},
		{"/deploy", url.Values{"fn": {"matmul"}, "profiles": {"quantum"}}},
		{"/invoke", url.Values{}},
		{"/invoke", url.Values{"fn": {"undeployed"}}},
		{"/invoke", url.Values{"fn": {"matmul"}, "pu": {"abc"}}},
		{"/chain", url.Values{}},
	} {
		if code, _ := post(t, ts, tc.path, tc.form); code != http.StatusBadRequest {
			t.Errorf("%s %v returned %d, want 400", tc.path, tc.form, code)
		}
	}
}

func TestStatsAndFunctions(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, "/deploy", url.Values{"fn": {"matmul"}})
	post(t, ts, "/invoke", url.Values{"fn": {"matmul"}})
	code, body := get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if int(body["invocations"].(float64)) != 1 {
		t.Errorf("invocations = %v", body["invocations"])
	}
	if len(body["pus"].([]any)) != 3 {
		t.Errorf("pus = %v", body["pus"])
	}
	if !strings.Contains(body["virtual_time"].(string), "s") {
		t.Errorf("virtual_time = %v", body["virtual_time"])
	}
	_, fns := get(t, ts, "/functions")
	if len(fns["functions"].([]any)) < 20 {
		t.Error("registry listing too small")
	}
}

func TestMetricsAndTraceEndpoints(t *testing.T) {
	s, err := NewServer(hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableObservability()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post(t, ts, "/deploy", url.Values{"fn": {"helloworld"}})
	post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}}) // cold
	post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}}) // warm

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	out := string(raw)
	// Exposition-format checks: HELP/TYPE lines, counter series with label
	// sets, and histogram buckets with the le label.
	for _, want := range []string{
		"# HELP molecule_cold_starts_total",
		"# TYPE molecule_cold_starts_total counter",
		`molecule_cold_starts_total{fn="helloworld",pu="0"} 1`,
		`molecule_warm_hits_total{fn="helloworld",pu="0"} 1`,
		"# TYPE molecule_invoke_latency_seconds histogram",
		`molecule_invoke_latency_seconds_bucket{pu="0",le="+Inf"} 2`,
		`molecule_invoke_latency_seconds_count{pu="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// /trace serves the gateway-rooted span tree as valid Chrome trace JSON.
	tresp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/trace: %d", tresp.StatusCode)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&file); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	names := make(map[string]int)
	for _, ev := range file.TraceEvents {
		names[ev.Name]++
	}
	for _, want := range []string{"gateway.request", "invoke", "sandbox.acquire", "handler"} {
		if names[want] == 0 {
			t.Errorf("/trace missing %q span (got %v)", want, names)
		}
	}
}

func TestMetricsDisabledBy404(t *testing.T) {
	ts := newTestServer(t) // no EnableObservability
	for _, path := range []string{"/metrics", "/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without observability: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestSLOEndpoint(t *testing.T) {
	s, err := NewServer(hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableSLO(obs.SLOConfig{Objective: 50 * time.Millisecond, Target: 0.99})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Deploy with a per-function objective override, then record two invokes.
	code, body := post(t, ts, "/deploy", url.Values{
		"fn": {"helloworld"}, "slo": {"5ms"}, "slo_target": {"0.9"},
	})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}}) // cold: blows the 5ms objective
	post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}}) // warm

	code, slo := get(t, ts, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: %d %v", code, slo)
	}
	def := slo["default"].(map[string]any)
	if def["objective_ms"].(float64) != 50 || def["target"].(float64) != 0.99 {
		t.Errorf("default objective = %v", def)
	}
	fns := slo["functions"].([]any)
	if len(fns) != 1 {
		t.Fatalf("functions = %v, want 1 entry", fns)
	}
	st := fns[0].(map[string]any)
	if st["fn"] != "helloworld" || st["objective_ms"].(float64) != 5 || st["target"].(float64) != 0.9 {
		t.Errorf("scored objective = %v", st)
	}
	if st["requests"].(float64) != 2 {
		t.Errorf("requests = %v, want 2", st["requests"])
	}
	if st["p99_ms"].(float64) <= 0 || st["max_ms"].(float64) <= 0 {
		t.Errorf("quantiles missing: %v", st)
	}

	// /metrics mirrors the scored state as slo_* gauges.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE slo_requests gauge",
		`slo_requests{fn="helloworld"} 2`,
		`slo_attainment_ratio{fn="helloworld"}`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Malformed SLO parameters are rejected before deploying.
	for _, form := range []url.Values{
		{"fn": {"matmul"}, "slo": {"fast"}},
		{"fn": {"matmul"}, "slo": {"5ms"}, "slo_target": {"2"}},
		{"fn": {"matmul"}, "slo": {"5ms"}, "slo_target": {"0"}},
	} {
		if code, _ := post(t, ts, "/deploy", form); code != http.StatusBadRequest {
			t.Errorf("deploy %v returned %d, want 400", form, code)
		}
	}
}

func TestSLODisabled(t *testing.T) {
	ts := newTestServer(t) // no EnableSLO
	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/slo without engine: %d, want 404", resp.StatusCode)
	}
	// A deploy asking for an objective with no engine attached is an error,
	// not a silent drop.
	if code, _ := post(t, ts, "/deploy", url.Values{"fn": {"matmul"}, "slo": {"5ms"}}); code != http.StatusBadRequest {
		t.Errorf("deploy with slo on disabled engine: %d, want 400", code)
	}
}

func TestConcurrentHTTPRequestsSerialize(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, "/deploy", url.Values{"fn": {"matmul"}})
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func() {
			code, _ := post(t, ts, "/invoke", url.Values{"fn": {"matmul"}})
			done <- code == http.StatusOK
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Error("concurrent invoke failed")
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts, "/experiments")
	if code != http.StatusOK {
		t.Fatalf("experiments: %d", code)
	}
	if len(body["experiments"].([]any)) < 20 {
		t.Error("experiment listing too small")
	}
	resp, err := http.Post(ts.URL+"/experiments/fig11a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run experiment: %d %v", resp.StatusCode, out)
	}
	tables := out["tables"].([]any)
	rows := tables[0].(map[string]any)["rows"].([]any)
	if len(rows) != 4 {
		t.Errorf("fig11a rows = %d, want 4", len(rows))
	}
	last := rows[3].([]any)
	if last[1] != "8.40ms" {
		t.Errorf("cpuset-opt cell = %v, want 8.40ms", last[1])
	}
	resp2, _ := http.Post(ts.URL+"/experiments/nope", "", nil)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: %d, want 404", resp2.StatusCode)
	}
}
