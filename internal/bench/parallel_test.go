package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestParallelMatchesSequential is the determinism contract of the parallel
// runner: every experiment owns an isolated sim.Env and results are emitted
// in evaluation-section order, so a 4-worker run must produce exactly the
// bytes of a 1-worker run — and both must match the golden report.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var seq, par bytes.Buffer
	RunAllParallel(&seq, 1)
	RunAllParallel(&par, 4)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("parallel report differs from sequential report")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "report.golden"))
	if err != nil {
		t.Fatalf("no golden report: %v", err)
	}
	if !bytes.Equal(par.Bytes(), want) {
		t.Fatal("parallel report differs from golden report")
	}
}

// TestMarkdownParallelMatchesSequential covers the markdown renderer's
// ordering the same way, on a cheaper two-worker run.
func TestMarkdownParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var seq, par bytes.Buffer
	RunAllMarkdownParallel(&seq, 1)
	RunAllMarkdownParallel(&par, 2)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("parallel markdown report differs from sequential")
	}
}

// TestByIDIndex pins the map-backed lookups that replaced the linear scans.
func TestByIDIndex(t *testing.T) {
	for _, e := range All() {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%q) = %v, %v", e.ID, got.ID, ok)
		}
	}
	if _, ok := ByID("no-such-experiment"); ok {
		t.Fatal("ByID invented an experiment")
	}
	// Known evaluation-section IDs sort ahead of unlisted (appendix) IDs.
	if order("fig2a") != 0 || order("tab5") >= order("zzz-unknown") {
		t.Fatal("evaluation-section ordering broken")
	}
}
