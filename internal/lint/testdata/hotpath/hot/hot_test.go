package xpu

import "fmt"

// Test files are exempt even with the directive present.
//
//molecule:hotpath
func benchLabel(id int) string {
	label := fmt.Sprintf("bench-%d", id)
	return label
}
