package sim_test

// Kernel microbenchmarks. The bodies live in simbench so the molecule-bench
// CLI can run the same measurements for BENCH_kernel.json; see that package
// for what each one isolates. Run with:
//
//	go test ./internal/sim -bench Kernel -benchmem
//	go test ./internal/sim -bench ChanPingPong -benchmem

import (
	"testing"

	"repro/internal/sim/simbench"
)

func BenchmarkKernelSleep(b *testing.B)          { simbench.Sleep(b) }
func BenchmarkKernelSleepContended(b *testing.B) { simbench.SleepContended(b) }
func BenchmarkKernelSpawn(b *testing.B)          { simbench.Spawn(b) }
func BenchmarkChanPingPong(b *testing.B)         { simbench.ChanPingPong(b) }
func BenchmarkKernelCrossShardSend(b *testing.B) { simbench.CrossShardSend(b) }
