package molecule

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestPolicyStrings(t *testing.T) {
	if PlaceChainAffinity.String() != "chain-affinity" || PlacementPolicy(9).String() == "" {
		t.Error("policy String broken")
	}
}

func deployAlexaBoth(t *testing.T, p *sim.Proc, rt *Runtime) {
	t.Helper()
	for _, fn := range workloads.AlexaChain() {
		if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlaceChainAffinityColocates(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		pl, err := rt.PlaceChain(workloads.AlexaChain(), PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		for i, pu := range pl {
			if pu != pl[0] {
				t.Errorf("function %d on PU %d, want co-located on %d", i, pu, pl[0])
			}
		}
		if pl[0] != 0 {
			t.Errorf("chain placed on PU %d, want the host", pl[0])
		}
	})
}

func TestPlaceChainAffinityOverflowsWhenHostFull(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		rt.Node(0).liveCount = rt.Node(0).capacity // host full
		pl, err := rt.PlaceChain(workloads.AlexaChain(), PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		if pl[0] != dpu {
			t.Errorf("chain placed on PU %d with full host, want DPU %d", pl[0], dpu)
		}
	})
}

func TestPlaceCheapestPrefersDPU(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		pl, err := rt.PlaceChain(workloads.AlexaChain(), PlaceCheapest)
		if err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		for i, pu := range pl {
			if pu != dpu {
				t.Errorf("function %d on PU %d, cheapest policy should pick the DPU", i, pu)
			}
		}
	})
}

func TestPlaceFastestPrefersCPU(t *testing.T) {
	run(t, hw.Config{DPUs: 2}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		pl, err := rt.PlaceChain(workloads.AlexaChain(), PlaceFastest)
		if err != nil {
			t.Fatal(err)
		}
		for i, pu := range pl {
			if pu != 0 {
				t.Errorf("function %d on PU %d, fastest policy should pick the host", i, pu)
			}
		}
	})
}

func TestPlaceScatterSpreads(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		pl, err := rt.PlaceChain(workloads.AlexaChain(), PlaceScatter)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[hw.PUID]bool{}
		for _, pu := range pl {
			seen[pu] = true
		}
		if len(seen) < 2 {
			t.Errorf("scatter used %d PUs, want >= 2 (placement %v)", len(seen), pl)
		}
	})
}

func TestPlaceChainUndeployed(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.PlaceChain([]string{"nope"}, PlaceChainAffinity); err == nil {
			t.Error("placement of undeployed chain succeeded")
		}
	})
}

func TestPlaceChainAffinityNoCommonPU(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		// One function CPU-only, one DPU-only: no single PU fits both.
		if err := rt.Deploy(p, "alexa-frontend", DefaultProfile(hw.CPU)); err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(p, "alexa-interact", DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.PlaceChain([]string{"alexa-frontend", "alexa-interact"}, PlaceChainAffinity); err == nil {
			t.Error("affinity placement succeeded with no common PU")
		}
	})
}

// TestChainAffinityBeatsScatter is the placement ablation DESIGN.md calls
// out: co-locating a chain must yield lower end-to-end latency than
// scattering it across PUs.
func TestChainAffinityBeatsScatter(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployAlexaBoth(t, p, rt)
		chain := workloads.AlexaChain()
		// Warm both placements.
		if _, err := rt.InvokeChainWithPolicy(p, chain, PlaceChainAffinity); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.InvokeChainWithPolicy(p, chain, PlaceScatter); err != nil {
			t.Fatal(err)
		}
		aff, err := rt.InvokeChainWithPolicy(p, chain, PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := rt.InvokeChainWithPolicy(p, chain, PlaceScatter)
		if err != nil {
			t.Fatal(err)
		}
		if aff.Total >= sc.Total {
			t.Errorf("affinity (%v) not faster than scatter (%v)", aff.Total, sc.Total)
		}
	})
}
