package molecule

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// run executes body inside a fresh simulation with a Molecule runtime built
// over the given machine config and options.
func run(t *testing.T, cfg hw.Config, opts Options, body func(p *sim.Proc, rt *Runtime)) {
	t.Helper()
	env := sim.NewEnv()
	m := hw.Build(env, cfg)
	reg := workloads.NewRegistry()
	env.Spawn("driver", func(p *sim.Proc) {
		rt, err := New(p, m, reg, opts)
		if err != nil {
			t.Fatal(err)
		}
		body(p, rt)
	})
	env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d processes still blocked after Run", env.LiveProcs())
	}
}

func TestNewBuildsAllNodes(t *testing.T) {
	run(t, hw.Config{DPUs: 2, FPGAs: 1, GPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if rt.ContainerRuntimeOn(0) == nil {
			t.Error("host has no container runtime")
		}
		for _, pu := range rt.Machine.PUsOfKind(hw.DPU) {
			if rt.ContainerRuntimeOn(pu.ID) == nil {
				t.Errorf("DPU %d has no container runtime", pu.ID)
			}
			if rt.Node(pu.ID).execXPID.PU != pu.ID {
				t.Errorf("DPU %d executor not xSpawned there", pu.ID)
			}
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0]
		if rt.RunFOn(fpga.ID) == nil {
			t.Error("FPGA has no runf")
		}
		if !rt.Shim.Node(fpga.ID).Virtual() {
			t.Error("FPGA shim node not virtual")
		}
		gpu := rt.Machine.PUsOfKind(hw.GPU)[0]
		if rt.RunGOn(gpu.ID) == nil {
			t.Error("GPU has no rung")
		}
	})
}

func TestInvokeColdThenWarm(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "image-processing"); err != nil {
			t.Fatal(err)
		}
		cold, err := rt.Invoke(p, "image-processing", DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !cold.Cold {
			t.Error("first invoke not cold")
		}
		warm, err := rt.Invoke(p, "image-processing", DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if warm.Cold {
			t.Error("second invoke not warm")
		}
		if warm.Total >= cold.Total {
			t.Errorf("warm (%v) not faster than cold (%v)", warm.Total, cold.Total)
		}
		if warm.Startup != 0 {
			t.Errorf("warm startup = %v, want 0", warm.Startup)
		}
	})
}

func TestInvokeUndeployed(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.Invoke(p, "image-processing", DefaultInvokeOptions()); err == nil {
			t.Error("invoke of undeployed function succeeded")
		}
		if err := rt.Deploy(p, "no-such-function"); err == nil {
			t.Error("deploy of unknown function succeeded")
		}
	})
}

// TestColdStartCforkVsPlainBoot verifies the Molecule-vs-baseline cold
// start gap on which Fig 9/10/14 rest: cfork cold start ≈ 30ms (without
// cpuset patch) vs plain boot + dependency import ≈ 184ms for
// image-processing.
func TestColdStartCforkVsPlainBoot(t *testing.T) {
	coldTotal := func(opts Options) time.Duration {
		var total time.Duration
		run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
			if err := rt.Deploy(p, "image-processing"); err != nil {
				t.Fatal(err)
			}
			// Warm the template off the measured path.
			if opts.UseCfork {
				rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")
			}
			res, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				t.Fatal(err)
			}
			total = res.Startup
		})
		return total
	}
	forked := coldTotal(DefaultOptions())
	plain := coldTotal(Options{UseCfork: false, KeepWarmPerPU: 64})
	if forked > 35*time.Millisecond || forked < 25*time.Millisecond {
		t.Errorf("cfork cold start = %v, want ~30ms", forked)
	}
	if plain < 150*time.Millisecond {
		t.Errorf("plain cold start = %v, want ~184ms (boot + dep import)", plain)
	}
	if ratio := float64(plain) / float64(forked); ratio < 5 {
		t.Errorf("cfork speedup %.1fx too small", ratio)
	}
}

// TestRemoteColdStartAddsNIPCCost reproduces the Fig 10a/b cfork-XPU
// finding: forking on a neighbor PU adds only ~1-3ms over a local fork.
func TestRemoteColdStartAddsNIPCCost(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "image-processing", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0]
		// Warm templates on both PUs.
		rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")
		rt.ContainerRuntimeOn(dpu.ID).EnsureTemplate(p, "python")

		local, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: dpu.ID, ForceCold: true})
		if err != nil {
			t.Fatal(err)
		}
		// A second cold start on the DPU, still commanded from the host:
		// compare against what a purely local cfork would cost by replaying
		// on the host and scaling.
		hostCold, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: 0, ForceCold: true})
		if err != nil {
			t.Fatal(err)
		}
		// remote extra = DPU cold - scaled host cold; must be ~1-3ms.
		scaled := time.Duration(float64(hostCold.Startup) * dpu.StartupFactor)
		extra := local.Startup - scaled
		if extra < 500*time.Microsecond || extra > 4*time.Millisecond {
			t.Errorf("remote cfork extra = %v, want ~1-3ms (dpu=%v scaledHost=%v)",
				extra, local.Startup, scaled)
		}
	})
}

// TestFig2aDensity: the host alone supports 1000 concurrent instances; each
// DPU adds 256 (1000 → 1256 → 1512).
func TestFig2aDensity(t *testing.T) {
	for _, tc := range []struct {
		dpus int
		want int
	}{{0, 1000}, {1, 1256}, {2, 1512}} {
		run(t, hw.Config{DPUs: tc.dpus}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
			if got := rt.Capacity(); got != tc.want {
				t.Errorf("%d DPUs: capacity = %d, want %d", tc.dpus, got, tc.want)
			}
		})
	}
}

func TestDensityPlacementOverflowsToDPU(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "image-processing", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		// Shrink capacities so the test is fast.
		rt.Node(0).capacity = 3
		rt.Node(1).capacity = 2
		var held []*instance
		for i := 0; i < 5; i++ {
			inst, err := rt.AcquireHeld(p, "image-processing", -1)
			if err != nil {
				t.Fatalf("placement %d failed: %v", i, err)
			}
			held = append(held, inst)
		}
		if rt.LiveInstances() != 5 {
			t.Errorf("live = %d, want 5", rt.LiveInstances())
		}
		// CPU must be full and DPU hosting the overflow.
		if rt.Node(0).liveCount != 3 || rt.Node(1).liveCount != 2 {
			t.Errorf("placement split = %d/%d, want 3/2",
				rt.Node(0).liveCount, rt.Node(1).liveCount)
		}
		if _, err := rt.AcquireHeld(p, "image-processing", -1); err == nil {
			t.Error("placement beyond machine capacity succeeded")
		}
		for _, inst := range held {
			rt.ReleaseHeld(p, inst)
		}
	})
}

// TestFig2bFPGAMatrixLatency: FPGA matrix functions are 2.15-2.82x faster
// end-to-end than their CPU versions.
func TestFig2bFPGAMatrixLatency(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		for _, fn := range []string{"mscale", "madd", "vmult"} {
			if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.FPGA)); err != nil {
				t.Fatal(err)
			}
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0]
		for _, fn := range []string{"mscale", "madd", "vmult"} {
			// Warm the CPU instance, then measure steady-state latencies.
			if _, err := rt.Invoke(p, fn, InvokeOptions{PU: 0}); err != nil {
				t.Fatal(err)
			}
			cpuRes, err := rt.Invoke(p, fn, InvokeOptions{PU: 0})
			if err != nil {
				t.Fatal(err)
			}
			fpgaRes, err := rt.Invoke(p, fn, InvokeOptions{PU: fpga.ID})
			if err != nil {
				t.Fatal(err)
			}
			// Compare function latencies: pure handler on CPU vs the FPGA
			// invocation including its data movement (what Fig 2b plots).
			ratio := float64(cpuRes.Handler) / float64(fpgaRes.Handler)
			if ratio < 2.15 || ratio > 2.82 {
				t.Errorf("%s CPU/FPGA = %.2f (cpu=%v fpga=%v), want 2.15-2.82",
					fn, ratio, cpuRes.Handler, fpgaRes.Handler)
			}
		}
	})
}

func TestDeployFPGARequiresImplementation(t *testing.T) {
	run(t, hw.Config{FPGAs: 1, GPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "chameleon", DefaultProfile(hw.FPGA)); err == nil {
			t.Error("FPGA deploy of CPU-only function succeeded")
		}
		if err := rt.Deploy(p, "mscale", DefaultProfile(hw.GPU)); err != nil {
			t.Errorf("GPU deploy of mscale failed: %v", err)
		}
	})
}

func TestDeployFPGAWithoutDevice(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "mscale", DefaultProfile(hw.FPGA)); err == nil {
			t.Error("FPGA deploy without FPGA succeeded")
		}
	})
}

func TestGPUInvoke(t *testing.T) {
	run(t, hw.Config{GPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "vmult", DefaultProfile(hw.CPU), DefaultProfile(hw.GPU)); err != nil {
			t.Fatal(err)
		}
		gpu := rt.Machine.PUsOfKind(hw.GPU)[0]
		res, err := rt.Invoke(p, "vmult", InvokeOptions{PU: gpu.ID})
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != hw.GPU {
			t.Errorf("ran on %v, want GPU", res.Kind)
		}
		cpuWarm, _ := rt.Invoke(p, "vmult", InvokeOptions{PU: 0, ForceCold: true})
		if res.Exec >= cpuWarm.Exec {
			t.Errorf("GPU exec (%v) not faster than CPU (%v)", res.Exec, cpuWarm.Exec)
		}
	})
}

func TestKeepAliveEviction(t *testing.T) {
	run(t, hw.Config{}, Options{UseCfork: true, KeepWarmPerPU: 2, PrewarmContainers: 4}, func(p *sim.Proc, rt *Runtime) {
		for _, fn := range []string{"matmul", "pyaes", "chameleon"} {
			if err := rt.Deploy(p, fn); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Invoke(p, fn, DefaultInvokeOptions()); err != nil {
				t.Fatal(err)
			}
		}
		// Cap 2: only two of the three stay warm.
		n := rt.Node(0)
		warm := 0
		for _, pool := range n.warm {
			warm += len(pool)
		}
		if warm != 2 {
			t.Errorf("warm pool = %d, want 2 (eviction)", warm)
		}
		if rt.LiveInstances() != 2 {
			t.Errorf("live = %d, want 2 after eviction", rt.LiveInstances())
		}
	})
}

func TestBillingLedger(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Deploy(p, "matmul")
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		b := rt.Billing()
		if len(b.Entries()) != 2 {
			t.Fatalf("entries = %d, want 2", len(b.Entries()))
		}
		if b.Total() <= 0 || b.TotalFor("matmul") != b.Total() {
			t.Error("billing totals wrong")
		}
		for _, e := range b.Entries() {
			if e.BilledMs < 1 {
				t.Error("billing granularity below 1ms")
			}
		}
	})
}

// --- chains ------------------------------------------------------------------

func TestInvokeChainLocalEdges(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		for _, fn := range workloads.AlexaChain() {
			if err := rt.Deploy(p, fn); err != nil {
				t.Fatal(err)
			}
		}
		// Pre-boot instances (the Fig 14e methodology).
		res1, err := rt.InvokeChain(p, workloads.AlexaChain(), ChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.InvokeChain(p, workloads.AlexaChain(), ChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ColdStarts != 0 {
			t.Errorf("second chain had %d cold starts", res.ColdStarts)
		}
		if res1.ColdStarts != 5 {
			t.Errorf("first chain had %d cold starts, want 5", res1.ColdStarts)
		}
		if len(res.EdgeLatency) != 4 {
			t.Fatalf("edges = %d, want 4", len(res.EdgeLatency))
		}
		// Fig 12-a: Molecule's local IPC edges are ~0.2ms.
		for i, el := range res.EdgeLatency {
			if el < 150*time.Microsecond || el > 300*time.Microsecond {
				t.Errorf("edge %d latency = %v, want ~0.2ms", i, el)
			}
		}
		// E2E ≈ execs + edge costs, well under the ~38.6ms baseline.
		if res.Total > 25*time.Millisecond {
			t.Errorf("warm Alexa chain = %v, too slow", res.Total)
		}
		if res.ExecTotal <= 0 || res.ExecTotal >= res.Total {
			t.Errorf("exec total %v vs total %v inconsistent", res.ExecTotal, res.Total)
		}
	})
}

func TestInvokeChainCrossPU(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		chain := workloads.AlexaChain()
		for _, fn := range chain {
			if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		// Alternate placement so every inter-function call crosses PUs
		// (the Fig 14e CrossPU setup).
		placement := []hw.PUID{0, dpu, 0, dpu, 0}
		warmup, err := rt.InvokeChain(p, chain, ChainOptions{Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		_ = warmup
		res, err := rt.InvokeChain(p, chain, ChainOptions{Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		// nIPC edges cost more than local IPC but stay well under the
		// baseline's ~4.5ms network edges (Fig 12-c/d: 10-13x better).
		for i, el := range res.EdgeLatency {
			if el > time.Millisecond {
				t.Errorf("cross-PU edge %d = %v, want <1ms", i, el)
			}
		}
		// DPU execution slows the chain; total must still be far below the
		// baseline CrossPU (which pays both slow exec and network edges).
		local, err := rt.InvokeChain(p, chain, ChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total <= local.Total {
			t.Errorf("cross-PU chain (%v) not slower than local (%v)", res.Total, local.Total)
		}
	})
}

func TestInvokeChainErrors(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.InvokeChain(p, nil, ChainOptions{}); err == nil {
			t.Error("empty chain accepted")
		}
		if _, err := rt.InvokeChain(p, []string{"nope"}, ChainOptions{}); err == nil {
			t.Error("chain with unknown function accepted")
		}
		rt.Deploy(p, "matmul")
		if _, err := rt.InvokeChain(p, []string{"matmul"}, ChainOptions{Placement: []hw.PUID{0, 0}}); err == nil {
			t.Error("mismatched placement accepted")
		}
	})
}

// TestFig13FPGAChainRetention: the zero-copy (data retention) chain is
// ~1.95x faster end-to-end than the copying chain for 5 stages.
func TestFig13FPGAChainRetention(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "vecstage", DefaultProfile(hw.FPGA)); err != nil {
			t.Fatal(err)
		}
		chain := []string{"vecstage", "vecstage", "vecstage", "vecstage", "vecstage"}
		copied, err := rt.InvokeAccelChain(p, chain, AccelChainOptions{ForceCopy: true})
		if err != nil {
			t.Fatal(err)
		}
		shm, err := rt.InvokeAccelChain(p, chain, AccelChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(copied.Total) / float64(shm.Total)
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("copy/shm = %.2f (copied=%v shm=%v), want ~1.95", ratio, copied.Total, shm.Total)
		}
		// Single-stage chains must cost the same either way.
		c1, _ := rt.InvokeAccelChain(p, chain[:1], AccelChainOptions{ForceCopy: true})
		s1, _ := rt.InvokeAccelChain(p, chain[:1], AccelChainOptions{})
		if c1.Total != s1.Total {
			t.Errorf("1-stage chain differs: copy=%v shm=%v", c1.Total, s1.Total)
		}
	})
}

func TestAccelChainCPUFallback(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matrix-comput", DefaultProfile(hw.CPU), DefaultProfile(hw.FPGA)); err != nil {
			t.Fatal(err)
		}
		chain := []string{"matrix-comput"}
		// Warm up the CPU instance.
		rt.InvokeAccelChain(p, chain, AccelChainOptions{CPUFallback: true})
		cpu, err := rt.InvokeAccelChain(p, chain, AccelChainOptions{CPUFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		fpga, err := rt.InvokeAccelChain(p, chain, AccelChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Fig 14h: FPGA ≈ 2.8x lower latency.
		ratio := float64(cpu.Total) / float64(fpga.Total)
		if ratio < 2.2 || ratio > 3.4 {
			t.Errorf("matrix-comput CPU/FPGA = %.2f, want ~2.8", ratio)
		}
	})
}

func TestProfileHelpers(t *testing.T) {
	d := &Deployment{Profiles: []Profile{DefaultProfile(hw.CPU), DefaultProfile(hw.FPGA)}}
	if !d.SupportsKind(hw.CPU) || d.SupportsKind(hw.DPU) {
		t.Error("SupportsKind wrong")
	}
	pr, ok := d.ProfileFor(hw.FPGA)
	if !ok || pr.PricePerMs <= DefaultProfile(hw.CPU).PricePerMs {
		t.Error("FPGA profile not priced above CPU")
	}
	if DefaultProfile(hw.DPU).PricePerMs >= DefaultProfile(hw.CPU).PricePerMs {
		t.Error("DPU must be the cheapest profile (§4.1)")
	}
}

// TestInvocationTrace verifies the milestone trace of a cold-then-warm
// invocation pair.
func TestInvocationTrace(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Env.EnableTrace()
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		log := rt.Env.TraceLog()
		var seq []string
		for _, ev := range log {
			seq = append(seq, ev.Event)
		}
		wantOrder := []string{
			"request accepted", "creating sandbox", "sandbox", "cold start complete",
			"done in", "request accepted", "warm hit", "done in",
		}
		i := 0
		for _, ev := range seq {
			if i < len(wantOrder) && strings.Contains(ev, wantOrder[i]) {
				i++
			}
		}
		if i != len(wantOrder) {
			t.Errorf("trace missing milestone %q; got:\n%s", wantOrder[i], strings.Join(seq, "\n"))
		}
	})
}

// TestSnapshotStartupMode verifies the Fig 15 design-space alternative: the
// first cold start pays boot + checkpoint, later cold starts restore in the
// Replayable-class ~45ms — slower than cfork (8-30ms), far faster than a
// plain boot.
func TestSnapshotStartupMode(t *testing.T) {
	opts := Options{Startup: StartupSnapshot, KeepWarmPerPU: 64}
	run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "image-processing"); err != nil {
			t.Fatal(err)
		}
		first, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: -1, ForceCold: true})
		if err != nil {
			t.Fatal(err)
		}
		second, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: -1, ForceCold: true})
		if err != nil {
			t.Fatal(err)
		}
		// First cold start includes the donor boot + checkpoint.
		if first.Startup < 250*time.Millisecond {
			t.Errorf("first snapshot cold start = %v, want donor boot + checkpoint", first.Startup)
		}
		// Subsequent restores are ~45ms.
		if second.Startup < 40*time.Millisecond || second.Startup > 55*time.Millisecond {
			t.Errorf("snapshot restore = %v, want ~45ms", second.Startup)
		}
		// Restored instances share pages with the snapshot image.
		sb := rt.ContainerRuntimeOn(0).Sandbox("s-image-processing-0-2")
		if sb == nil || sb.Inst.Proc.AS.SharedPages() == 0 {
			t.Error("restored instance shares no pages with the snapshot")
		}
	})

	// cfork remains faster than snapshot restore.
	var cforkCold time.Duration
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Deploy(p, "image-processing")
		rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")
		res, err := rt.Invoke(p, "image-processing", InvokeOptions{PU: -1, ForceCold: true})
		if err != nil {
			t.Fatal(err)
		}
		cforkCold = res.Startup
	})
	if cforkCold >= 42*time.Millisecond {
		t.Errorf("cfork (%v) not faster than snapshot restore", cforkCold)
	}
}

func TestStartupModeString(t *testing.T) {
	if StartupCfork.String() != "cfork" || StartupSnapshot.String() != "snapshot" ||
		StartupMode(9).String() == "" {
		t.Error("StartupMode String broken")
	}
}

// TestExecutorCrashAndRespawn injects an executor failure on the DPU: warm
// instances there are lost, but the next request transparently respawns the
// executor and cold-starts a fresh instance.
func TestExecutorCrashAndRespawn(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		if _, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu}); err != nil {
			t.Fatal(err)
		}
		if err := rt.KillExecutor(p, dpu); err != nil {
			t.Fatal(err)
		}
		if rt.ExecutorAlive(dpu) {
			t.Error("executor alive after kill")
		}
		if rt.Node(dpu).liveCount != 0 {
			t.Error("warm instances survived the executor crash")
		}
		res, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Error("post-crash request served warm from a dead executor")
		}
		if !rt.ExecutorAlive(dpu) {
			t.Error("executor not respawned")
		}
		if rt.Node(dpu).execXPID.PU != dpu {
			t.Error("respawned executor not on the DPU")
		}
	})
}

func TestKillExecutorValidation(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.KillExecutor(p, 0); err == nil {
			t.Error("killed the control-plane executor")
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		if err := rt.KillExecutor(p, fpga); err == nil {
			t.Error("killed a nonexistent accelerator executor")
		}
		if err := rt.KillExecutor(p, 99); err == nil {
			t.Error("killed an unknown PU's executor")
		}
	})
}

// TestKeepAliveGreedyDualPrefersExpensive: with one warm slot, the function
// that is costlier to recreate wins the cache over an equally-popular cheap
// one.
func TestKeepAliveGreedyDualPrefersExpensive(t *testing.T) {
	opts := Options{UseCfork: false, Startup: StartupPlain, KeepWarmPerPU: 1, PrewarmContainers: 4}
	run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
		// linpack's dependency import (280ms) dwarfs pyaes's (59ms).
		for _, fn := range []string{"linpack", "pyaes"} {
			if err := rt.Deploy(p, fn); err != nil {
				t.Fatal(err)
			}
		}
		// Alternate invocations so frequencies match; the expensive one
		// should end up owning the single warm slot.
		for i := 0; i < 4; i++ {
			if _, err := rt.Invoke(p, "linpack", DefaultInvokeOptions()); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Invoke(p, "pyaes", DefaultInvokeOptions()); err != nil {
				t.Fatal(err)
			}
		}
		if rt.cache.Priority("linpack") <= rt.cache.Priority("pyaes") {
			t.Errorf("expensive function priority (%.1f) not above cheap one (%.1f)",
				rt.cache.Priority("linpack"), rt.cache.Priority("pyaes"))
		}
	})
}

// TestFPGAImageEvictionUnderBankPressure: a device caches at most
// 3x banks instances (bank sharing); deploying beyond that evicts the
// least-valuable function, and invoking the evicted one reprograms the
// image (cold miss).
func TestFPGAImageEvictionUnderBankPressure(t *testing.T) {
	run(t, hw.Config{FPGAs: 1, FPGABanks: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0]
		fns := []string{"mscale", "madd", "vmult", "matrix-comput"}
		for _, fn := range fns {
			if err := rt.Deploy(p, fn, DefaultProfile(hw.FPGA)); err != nil {
				t.Fatal(err)
			}
		}
		rf := rt.RunFOn(fpga.ID)
		cached := 0
		for _, fn := range fns {
			if rf.Cached(fn) {
				cached++
			}
		}
		if cached != 3 {
			t.Errorf("cached = %d, want 3 (one bank, three sharers)", cached)
		}
		// Find the evicted function and invoke it: must still work via a
		// reprogram (cold image miss), evicting something else.
		var evicted string
		for _, fn := range fns {
			if !rf.Cached(fn) {
				evicted = fn
			}
		}
		if evicted == "" {
			t.Fatal("nothing evicted")
		}
		res, err := rt.Invoke(p, evicted, InvokeOptions{PU: fpga.ID})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Error("evicted function served warm")
		}
		if !rf.Cached(evicted) {
			t.Error("reprogram did not cache the requested function")
		}
	})
}

func TestNewRequiresHostCPU(t *testing.T) {
	env := sim.NewEnv()
	m := hw.NewMachine(env)
	m.AddPU(&hw.PU{Kind: hw.DPU, Name: "lonely-dpu", Speed: 1})
	env.Spawn("x", func(p *sim.Proc) {
		if _, err := New(p, m, workloads.NewRegistry(), DefaultOptions()); err == nil {
			t.Error("runtime built on a machine without a host CPU")
		}
	})
	env.Run()
}

func TestChainPlacementRejectsAccelerators(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		if _, err := rt.InvokeChain(p, []string{"matmul"}, ChainOptions{Placement: []hw.PUID{fpga}}); err == nil {
			t.Error("container chain placed on an FPGA")
		}
	})
}

func TestSnapshotObservability(t *testing.T) {
	run(t, hw.Config{DPUs: 1, FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Deploy(p, "matmul")
		rt.Deploy(p, "mscale", DefaultProfile(hw.FPGA))
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		snap := rt.Snapshot()
		if len(snap) != 3 {
			t.Fatalf("snapshot nodes = %d, want 3", len(snap))
		}
		host := snap[0]
		if host.Kind != hw.CPU || host.Live != 1 || host.WarmPerFunc["matmul"] != 1 {
			t.Errorf("host snapshot wrong: %+v", host)
		}
		if !host.ExecutorAlive || !snap[1].ExecutorAlive {
			t.Error("executors not alive in snapshot")
		}
		fpga := snap[2]
		if fpga.Kind != hw.FPGA || len(fpga.FPGAImage) != 1 || fpga.FPGAImage[0] != "mscale" {
			t.Errorf("fpga snapshot wrong: %+v", fpga)
		}
		if fpga.ExecutorAlive {
			t.Error("accelerator reported an executor")
		}
	})
}

func TestBillingReport(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Deploy(p, "matmul")
		rt.Deploy(p, "mscale", DefaultProfile(hw.FPGA))
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		rt.Invoke(p, "mscale", DefaultInvokeOptions())
		rep := rt.Billing().Report()
		if len(rep.Rows) != 3 { // matmul/CPU, mscale/FPGA, TOTAL
			t.Fatalf("report rows = %d: %v", len(rep.Rows), rep.Rows)
		}
		if rep.Rows[0][0] != "matmul" || rep.Rows[0][2] != "2" {
			t.Errorf("matmul row wrong: %v", rep.Rows[0])
		}
		if rep.Rows[1][0] != "mscale" || rep.Rows[1][1] != "FPGA" {
			t.Errorf("mscale row wrong: %v", rep.Rows[1])
		}
		if rep.Rows[2][0] != "TOTAL" {
			t.Errorf("total row wrong: %v", rep.Rows[2])
		}
	})
}

func TestUndeploy(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		if err := rt.Deploy(p, "mscale", DefaultProfile(hw.FPGA)); err != nil {
			t.Fatal(err)
		}
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		rt.Invoke(p, "mscale", DefaultInvokeOptions())
		if err := rt.Undeploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		if rt.LiveInstances() != 0 {
			t.Errorf("live = %d after undeploy, want 0", rt.LiveInstances())
		}
		if _, err := rt.Invoke(p, "matmul", DefaultInvokeOptions()); err == nil {
			t.Error("undeployed function still invocable")
		}
		// FPGA undeploy: the sandbox is marked deleted (fabric untouched
		// until the next create).
		if err := rt.Undeploy(p, "mscale"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Invoke(p, "mscale", DefaultInvokeOptions()); err == nil {
			t.Error("undeployed FPGA function still invocable")
		}
		if err := rt.Undeploy(p, "matmul"); err == nil {
			t.Error("double undeploy accepted")
		}
	})
}

func TestUtilizationAccounting(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		rt.Deploy(p, "pyaes")
		if rt.Utilization(0) != 0 {
			t.Error("utilization nonzero before any work")
		}
		for i := 0; i < 3; i++ {
			rt.Invoke(p, "pyaes", DefaultInvokeOptions())
		}
		u := rt.Utilization(0)
		if u <= 0 || u > 1 {
			t.Errorf("utilization = %v, want (0,1]", u)
		}
		snap := rt.Snapshot()
		// 3 x ~19.5ms execs accumulated.
		if snap[0].Busy < 55*time.Millisecond || snap[0].Busy > 70*time.Millisecond {
			t.Errorf("busy = %v, want ~60ms", snap[0].Busy)
		}
		if rt.Utilization(99) != 0 {
			t.Error("unknown PU utilization nonzero")
		}
	})
}

// TestDedicatedVsGenericTemplates: cfork from a generic template still pays
// the dependency import; dedicated templates keep it off the critical path
// (§4.2).
func TestDedicatedVsGenericTemplates(t *testing.T) {
	startup := func(generic bool) time.Duration {
		opts := DefaultOptions()
		opts.GenericTemplates = generic
		var d time.Duration
		run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
			if err := rt.Deploy(p, "linpack"); err != nil { // 280ms deps
				t.Fatal(err)
			}
			rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")
			res, err := rt.Invoke(p, "linpack", InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				t.Fatal(err)
			}
			d = res.Startup
		})
		return d
	}
	dedicated := startup(false)
	generic := startup(true)
	if generic-dedicated < 250*time.Millisecond {
		t.Errorf("generic templates (%v) should pay ~280ms deps over dedicated (%v)", generic, dedicated)
	}
}
