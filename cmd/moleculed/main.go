// Command moleculed serves a simulated Molecule platform over HTTP.
//
//	moleculed -addr :8080 -dpus 2 -fpgas 1
//
//	curl -X POST 'localhost:8080/deploy?fn=helloworld'
//	curl -X POST 'localhost:8080/invoke?fn=helloworld&body=1'
//	curl -X POST 'localhost:8080/chain?fns=mr-splitter,mr-mapper,mr-reducer'
//	curl 'localhost:8080/stats'
//
// With -cluster N it serves a boss/worker cluster of N machines instead:
//
//	moleculed -cluster 4 -dpus 2
//
//	curl -X POST 'localhost:8080/deploy?fn=pyaes'
//	curl -X POST 'localhost:8080/invoke?fn=pyaes'       # reply names the machine
//	curl 'localhost:8080/cluster/stats'
//	curl -X POST 'localhost:8080/cluster/drain?worker=0'
//
// Latencies in responses are virtual (simulated); outputs are real.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpd"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
)

// parseSLO parses "dur[@target]" specs like "50ms@0.999" (target defaults
// to 0.999).
func parseSLO(spec string) (obs.SLOConfig, error) {
	cfg := obs.SLOConfig{Target: 0.999}
	durPart, targetPart, hasTarget := strings.Cut(spec, "@")
	obj, err := time.ParseDuration(durPart)
	if err != nil || obj <= 0 {
		return cfg, fmt.Errorf("moleculed: bad -slo objective %q", durPart)
	}
	cfg.Objective = obj
	if hasTarget {
		t, err := strconv.ParseFloat(targetPart, 64)
		if err != nil || t <= 0 || t > 1 {
			return cfg, fmt.Errorf("moleculed: bad -slo target %q (want 0 < t <= 1)", targetPart)
		}
		cfg.Target = t
	}
	return cfg, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusterN := flag.Int("cluster", 0, "serve a boss/worker cluster of `N` machines instead of a single machine (each machine gets the -dpus/-fpgas/-gpus shape; routes gain /cluster/stats, /cluster/drain, /cluster/undrain)")
	dpus := flag.Int("dpus", 1, "Bluefield DPUs")
	fpgas := flag.Int("fpgas", 1, "FPGAs")
	gpus := flag.Int("gpus", 0, "GPUs")
	fnFile := flag.String("functions", "", "JSON file with custom function specs")
	trace := flag.Bool("trace", false, "record invocation spans; GET /trace serves Chrome trace_event JSON")
	metrics := flag.Bool("metrics", false, "record metrics; GET /metrics serves Prometheus text exposition")
	slo := flag.String("slo", "", "default latency objective as `dur[@target]`, e.g. \"50ms@0.999\"; enables GET /slo and the slo_* metric families (implies observability)")
	faultSpec := flag.String("fault", "", "fault plan `spec`, e.g. \"crash=1@2s+500ms,create-fail=0.01\" (see internal/faults)")
	faultSeed := flag.Uint64("fault-seed", 1, "PRNG seed for probabilistic faults")
	invokeTimeout := flag.Duration("invoke-timeout", 0, "per-attempt invocation timeout in virtual time (0 = no timeout)")
	retries := flag.Int("retries", 0, "max retries for transiently-failed invocations")
	retryBackoff := flag.Duration("retry-backoff", 0, "initial retry backoff in virtual time (doubles per retry; default 1ms)")
	zygoteTree := flag.Bool("zygote-tree", false, "grow package-aware zygote template forests per (runtime, PU): cold starts fork from the deepest pre-warmed template covering the function's package manifest and pay only residual imports")
	zygoteBudget := flag.Int("zygote-budget-mb", 0, "with -zygote-tree: page budget for specialized templates per forest in MB (0 = default, negative = root-only)")
	flag.Parse()

	opts := molecule.DefaultOptions()
	opts.Recovery = molecule.RecoveryOptions{
		InvokeTimeout: *invokeTimeout,
		MaxRetries:    *retries,
		RetryBackoff:  *retryBackoff,
	}
	opts.ZygoteTree = *zygoteTree
	opts.ZygoteBudgetMB = *zygoteBudget
	if *clusterN > 0 {
		if *faultSpec != "" || *slo != "" || *trace || *metrics || *fnFile != "" {
			log.Fatal("moleculed: -fault/-slo/-trace/-metrics/-functions are single-machine flags; not yet supported with -cluster")
		}
		cs, err := httpd.NewClusterServer(*clusterN, hw.Config{DPUs: *dpus, FPGAs: *fpgas, GPUs: *gpus}, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("moleculed cluster listening on %s (%d machines, each DPUs=%d FPGAs=%d GPUs=%d)", *addr, *clusterN, *dpus, *fpgas, *gpus)
		log.Fatal(http.ListenAndServe(*addr, cs.Handler()))
	}
	s, err := httpd.NewServer(hw.Config{DPUs: *dpus, FPGAs: *fpgas, GPUs: *gpus}, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *faultSpec != "" {
		if err := s.AttachFaults(*faultSeed, *faultSpec); err != nil {
			log.Fatal(err)
		}
		log.Printf("fault plan active (seed %d): %s", *faultSeed, *faultSpec)
	}
	if *trace || *metrics {
		s.EnableObservability()
		log.Printf("observability on: GET /metrics (Prometheus text), GET /trace (Chrome trace JSON)")
	}
	if *slo != "" {
		cfg, err := parseSLO(*slo)
		if err != nil {
			log.Fatal(err)
		}
		s.EnableSLO(cfg)
		log.Printf("slo engine on (default %v @ %.4g): GET /slo; per-deploy override via slo/slo_target", cfg.Objective, cfg.Target)
	}
	if *fnFile != "" {
		data, err := os.ReadFile(*fnFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.LoadFunctions(data); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded custom functions from %s", *fnFile)
	}
	log.Printf("moleculed listening on %s (DPUs=%d FPGAs=%d GPUs=%d)", *addr, *dpus, *fpgas, *gpus)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
