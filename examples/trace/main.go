// Trace: watch one request flow through the system in virtual time — the
// cold start's sandbox creation and cfork, the warm hit that follows, and
// an executor crash healed by an automatic respawn.
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	env := sim.NewEnv()
	env.EnableTrace()
	machine := hw.Build(env, hw.Config{DPUs: 1})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.Deploy(p, "image-processing",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
			log.Fatal(err)
		}
		dpu := machine.PUsOfKind(hw.DPU)[0].ID

		p.Tracef("--- cold start on the host ---")
		rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: 0})
		p.Tracef("--- warm hit ---")
		rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: 0})
		p.Tracef("--- remote cold start on the DPU ---")
		rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: dpu})
		p.Tracef("--- executor crash on the DPU, healed on next request ---")
		if err := rt.KillExecutor(p, dpu); err != nil {
			log.Fatal(err)
		}
		rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: dpu})
	})

	env.Run()
	fmt.Println("virtual-time trace:")
	env.DumpTrace(os.Stdout)
}
