package sim

// WindowStats describes one completed round of the conservative windowed
// driver: the window's position, how many events each domain fired inside
// it, and the cross-domain message flow delivered at its opening barrier.
//
// Every field is a pure function of virtual time — never of wall-clock
// interleaving or worker count — so a consumer accumulating WindowStats
// sees byte-identical telemetry at any parallelism level. That is the same
// determinism contract as the simulation itself, and it is what makes the
// telemetry usable for answering "is lookahead L the bottleneck" before
// scaling out: a domain that fires zero events in a round stalled at the
// barrier waiting for other domains' windows.
type WindowStats struct {
	// Round counts windows executed, starting at 1.
	Round int64
	// Horizon is the global minimum next-event time that opened this
	// window; the window spans [Horizon, Bound).
	Horizon Time
	// Bound is the exclusive end of the window (Horizon + lookahead).
	Bound Time
	// Delivered is the number of cross-domain messages merged at this
	// round's opening barrier.
	Delivered int
	// Events holds the number of events each domain fired inside this
	// window, indexed by domain. The slice is reused between rounds:
	// observers that retain it must copy.
	Events []int
	// Flow is the D×D row-major cross-domain message matrix for this
	// round: Flow[src*D+dst] messages were delivered from domain src to
	// domain dst at the opening barrier. Reused between rounds: copy to
	// retain.
	Flow []int64
}

// WindowObserver receives one callback per windowed round. Implementations
// live above the kernel (internal/obs provides one); sim only defines the
// interface, keeping the layering DAG intact — the kernel never imports
// its observers, observers import the kernel.
//
// WindowRound is called between rounds on the driver thread, never
// concurrently. It must not touch the group's Envs.
type WindowObserver interface {
	WindowRound(WindowStats)
}

// SetWindowObserver attaches o to the group (nil detaches). Only the
// conservative windowed driver reports rounds; the classic single-domain
// loop and the zero-lookahead sequential merge have no windows to report.
// With no observer attached the driver's per-round overhead is a single
// nil check — the golden-report fingerprint tests pin that the observed
// and unobserved executions are identical.
func (sh *Sharded) SetWindowObserver(o WindowObserver) {
	sh.winObs = o
	if o != nil {
		n := len(sh.doms)
		if sh.winEvents == nil {
			sh.winEvents = make([]int, n)
			sh.winFlow = make([]int64, n*n)
		}
	}
}
