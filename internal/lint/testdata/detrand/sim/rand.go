package sim

import (
	crand "crypto/rand" // want `crypto/rand in simulation package`
	"math/rand"
)

// Roll consults the hidden global generator — nondeterministic across runs.
func Roll() int {
	return rand.Intn(6) // want `global rand\.Intn in simulation package`
}

// Fill reads the OS entropy pool; the import alone is flagged above.
func Fill(b []byte) {
	crand.Read(b)
}

// Seeded threads an explicit source: the constructors and the methods on
// the resulting *rand.Rand are exactly the sanctioned pattern.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
