package molecule

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestDAGValidate(t *testing.T) {
	if _, err := (DAG{}).Validate(); err == nil {
		t.Error("empty DAG accepted")
	}
	if _, err := (DAG{Nodes: []DAGNode{{Fn: "a", Deps: []int{0}}}}).Validate(); err == nil {
		t.Error("self-dependency accepted")
	}
	if _, err := (DAG{Nodes: []DAGNode{{Fn: "a", Deps: []int{5}}}}).Validate(); err == nil {
		t.Error("out-of-range dependency accepted")
	}
	// Cycle: 0 → 1 → 0.
	cyc := DAG{Nodes: []DAGNode{{Fn: "a", Deps: []int{1}}, {Fn: "b", Deps: []int{0}}}}
	if _, err := cyc.Validate(); err == nil {
		t.Error("cycle accepted")
	}
	order, err := MapReduceDAG(2).Validate()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[3] && pos[2] < pos[3]) {
		t.Errorf("topological order wrong: %v", order)
	}
}

func TestChainBuilder(t *testing.T) {
	c := Chain("a", "b", "c")
	if len(c.Nodes) != 3 || len(c.Nodes[0].Deps) != 0 ||
		c.Nodes[2].Deps[0] != 1 {
		t.Errorf("chain structure wrong: %+v", c)
	}
}

func deployMapReduce(t *testing.T, p *sim.Proc, rt *Runtime) {
	t.Helper()
	for _, fn := range workloads.MapReduceChain() {
		if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInvokeDAGLinearMatchesChainShape(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployMapReduce(t, p, rt)
		dag := Chain(workloads.MapReduceChain()...)
		warm, err := rt.InvokeDAG(p, dag, DAGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.ColdStarts != 3 {
			t.Errorf("first run cold starts = %d, want 3", warm.ColdStarts)
		}
		res, err := rt.InvokeDAG(p, dag, DAGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ColdStarts != 0 {
			t.Errorf("second run cold starts = %d", res.ColdStarts)
		}
		// Linear DAG: finish times strictly increase along the chain.
		for i := 1; i < len(res.NodeFinish); i++ {
			if res.NodeFinish[i] <= res.NodeFinish[i-1] {
				t.Errorf("node %d finished at %v, not after node %d (%v)",
					i, res.NodeFinish[i], i-1, res.NodeFinish[i-1])
			}
		}
		if res.Total != res.NodeFinish[len(res.NodeFinish)-1] {
			t.Error("total != sink finish time")
		}
	})
}

// TestInvokeDAGFanOutParallelizes: two mappers that each take T must
// overlap, so the fan-out DAG's makespan is far below the serialized sum.
func TestInvokeDAGFanOutParallelizes(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployMapReduce(t, p, rt)
		fan := MapReduceDAG(2)
		serial := Chain("mr-splitter", "mr-mapper", "mr-mapper", "mr-reducer")
		// Warm both.
		if _, err := rt.InvokeDAG(p, fan, DAGOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.InvokeDAG(p, serial, DAGOptions{}); err != nil {
			t.Fatal(err)
		}
		fres, err := rt.InvokeDAG(p, fan, DAGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sres, err := rt.InvokeDAG(p, serial, DAGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fres.Total >= sres.Total {
			t.Errorf("fan-out makespan %v not below serialized %v", fres.Total, sres.Total)
		}
		// Both mappers finish at (nearly) the same time.
		m1, m2 := fres.NodeFinish[1], fres.NodeFinish[2]
		diff := m1 - m2
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Millisecond {
			t.Errorf("mappers finished %v apart — not parallel", diff)
		}
		// Exec totals match (same work, different schedule).
		if fres.ExecTotal != sres.ExecTotal {
			t.Errorf("exec totals differ: %v vs %v", fres.ExecTotal, sres.ExecTotal)
		}
	})
}

func TestInvokeDAGCrossPUEdges(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployMapReduce(t, p, rt)
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		dag := MapReduceDAG(2)
		local := DAGOptions{}
		cross := DAGOptions{Placement: []hw.PUID{0, dpu, 0, dpu}}
		if _, err := rt.InvokeDAG(p, dag, local); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.InvokeDAG(p, dag, cross); err != nil {
			t.Fatal(err)
		}
		lres, _ := rt.InvokeDAG(p, dag, local)
		cres, err := rt.InvokeDAG(p, dag, cross)
		if err != nil {
			t.Fatal(err)
		}
		if cres.Total <= lres.Total {
			t.Errorf("cross-PU DAG (%v) not slower than co-located (%v)", cres.Total, lres.Total)
		}
	})
}

func TestInvokeDAGErrors(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.InvokeDAG(p, DAG{}, DAGOptions{}); err == nil {
			t.Error("empty DAG invoked")
		}
		if _, err := rt.InvokeDAG(p, Chain("nope"), DAGOptions{}); err == nil {
			t.Error("undeployed DAG invoked")
		}
		rt.Deploy(p, "matmul")
		if _, err := rt.InvokeDAG(p, Chain("matmul"), DAGOptions{Placement: []hw.PUID{0, 0}}); err == nil {
			t.Error("bad placement length accepted")
		}
	})
}
