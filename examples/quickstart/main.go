// Quickstart: build a heterogeneous computer, start Molecule on it, deploy
// a function, and invoke it cold and warm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	// Everything runs inside a discrete-event simulation: one Env, one
	// machine, and a driver process that acts as the platform operator.
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println("Machine:")
		for _, pu := range machine.PUs() {
			fmt.Printf("  PU %d: %-5v %s\n", pu.ID, pu.Kind, pu.Name)
		}

		// Deploy helloworld with a CPU profile (the default).
		if err := rt.Deploy(p, "helloworld"); err != nil {
			log.Fatal(err)
		}

		// First invocation cold-starts an instance via container fork
		// (cfork) from the Python template.
		cold, err := rt.Invoke(p, "helloworld", molecule.InvokeOptions{PU: -1, RunBody: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncold start: total=%v (startup=%v exec=%v) on %v\n",
			cold.Total, cold.Startup, cold.Exec, cold.Kind)
		fmt.Printf("function output: %v\n", cold.Output)

		// The instance stays warm in the keep-alive cache.
		warm, err := rt.Invoke(p, "helloworld", molecule.InvokeOptions{PU: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm start: total=%v (%.1fx faster)\n",
			warm.Total, float64(cold.Total)/float64(warm.Total))

		fmt.Printf("\nbilled: %.2f units across %d invocations (1ms granularity)\n",
			rt.Billing().Total(), len(rt.Billing().Entries()))
	})

	env.Run()
	fmt.Printf("\nsimulated time elapsed: %v\n", env.Now())
}
