// Cluster: the platform view — an API Gateway (the paper's global manager,
// Fig 6) scheduling functions across several worker machines with different
// device mixes. FPGA work lands on FPGA-equipped workers; chains stay on one
// computer for communication locality.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	env := sim.NewEnv()
	gw := cluster.NewGateway(env, workloads.NewRegistry())

	env.Spawn("platform", func(p *sim.Proc) {
		// Three workers: CPU-only, CPU + 2 DPUs, CPU + FPGA.
		configs := []hw.Config{{}, {DPUs: 2}, {FPGAs: 1}}
		for i, cfg := range configs {
			w, err := gw.AddWorker(p, cfg, molecule.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("worker %d: %d PUs, capacity %d instances\n",
				i, len(w.Machine.PUs()), w.RT.Capacity())
		}

		// Register functions with their profiles once, platform-wide.
		must := func(err error) {
			if err != nil {
				log.Fatal(err)
			}
		}
		must(gw.Register("matmul", molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)))
		must(gw.Register("gzip-compression", molecule.DefaultProfile(hw.FPGA)))
		for _, fn := range workloads.MapReduceChain() {
			must(gw.Register(fn, molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)))
		}

		// CPU/DPU work spreads by load; FPGA work must find worker 2.
		for i := 0; i < 4; i++ {
			res, err := gw.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("matmul #%d -> worker %d (%v, cold=%v, total %v)\n",
				i, res.Worker, res.Kind, res.Cold, res.Total)
		}
		res, err := gw.Invoke(p, "gzip-compression",
			molecule.InvokeOptions{PU: -1, Arg: workloads.Arg{Bytes: 50 << 20}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gzip(50MB) -> worker %d on %v, total %v\n", res.Worker, res.Kind, res.Total)

		// A chain is scheduled onto one worker and co-located there.
		chainRes, worker, err := gw.InvokeChain(p, workloads.MapReduceChain(), molecule.PlaceChainAffinity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MapReduce chain -> worker %d, e2e %v (%d cold starts)\n",
			worker, chainRes.Total, chainRes.ColdStarts)
		chainRes, worker, err = gw.InvokeChain(p, workloads.MapReduceChain(), molecule.PlaceChainAffinity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MapReduce chain (warm) -> worker %d, e2e %v (%d cold starts)\n",
			worker, chainRes.Total, chainRes.ColdStarts)
	})

	env.Run()
}
