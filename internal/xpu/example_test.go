package xpu_test

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sim"
	"repro/internal/xpu"
)

// A process on the host creates an XPU-FIFO, grants a DPU process write
// access, and receives a message over the interconnect — the nIPC pattern
// serverless functions use for cross-PU chains.
func Example() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1})
	shim := xpu.NewShim(env, machine)
	hostOS := localos.New(env, machine.PU(0))
	dpuOS := localos.New(env, machine.PU(1))
	hostNode := shim.AddNode(machine.PU(0), hostOS)
	dpuNode := shim.AddNode(machine.PU(1), dpuOS)

	hostPID := hostNode.Register(hostOS.NewDetachedProcess("frontend"))
	dpuPID := dpuNode.Register(dpuOS.NewDetachedProcess("worker"))

	env.Spawn("frontend", func(p *sim.Proc) {
		fd, _ := hostNode.FIFOInit(p, hostPID, "results", 4)
		hostNode.GrantCap(p, hostPID, dpuPID,
			xpu.ObjID{Kind: "fifo", UUID: "results"}, xpu.PermWrite)
		msg, _ := fd.Read(p)
		fmt.Printf("host received %q via nIPC\n", msg.Payload)
	})
	env.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(1e6) // wait for the FIFO + capability
		fd, err := dpuNode.FIFOConnect(p, dpuPID, "results")
		if err != nil {
			fmt.Println(err)
			return
		}
		fd.Write(p, localos.Message{Payload: []byte("done")})
	})
	env.Run()
	// Output:
	// host received "done" via nIPC
}
