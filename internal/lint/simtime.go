package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SimTime forbids wall-clock calls in simulation-facing packages. Everything
// under the virtual clock must derive time from sim.Env / sim.Proc: a single
// time.Now or time.Sleep makes golden reports diverge across runs and
// -parallel settings, which is exactly the nondeterminism the byte-identical
// report tests exist to rule out. time.Duration and the time constants are
// fine — they are values, not clock reads.
var SimTime = &analysis.Analyzer{
	Name:     "simtime",
	Doc:      "forbid wall-clock time calls (time.Now, time.Sleep, ...) in simulation-facing packages; use the virtual clock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSimTime,
}

// wallClockFuncs are the package time functions that read or wait on the
// host's real clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runSimTime(pass *analysis.Pass) (interface{}, error) {
	layer, ok := classify(pass.Pkg.Path())
	if !ok || !layer.Sim {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		if !wallClockFuncs[fn.Name()] {
			return
		}
		if isTestFile(pass, pass.Fset.Position(sel.Pos()).Filename) {
			return
		}
		pass.Reportf(sel.Pos(),
			"wall-clock time.%s in simulation package %s: derive time from the virtual clock (sim.Env/sim.Proc) instead",
			fn.Name(), pass.Pkg.Path())
	})
	return nil, nil
}
