// Package cluster implements the platform layer above single machines: the
// API Gateway (global manager) of the paper's Fig 6. Users register
// functions with their profiles once; when requests arrive, the gateway
// schedules them to a worker machine that has at least one of the required
// PU kinds (§4.1), deploying the function there on first use. Function
// chains are scheduled onto one computer whenever possible, for
// communication locality (§4.1).
package cluster

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Worker is one heterogeneous computer managed by the gateway.
type Worker struct {
	ID      int
	Machine *hw.Machine
	RT      *molecule.Runtime

	deployed map[string]bool
	inflight int  // requests scheduled here but not yet completed
	draining bool // excluded from scheduling (maintenance)
}

// kinds returns the PU kinds present on the worker.
func (w *Worker) kinds() map[hw.PUKind]bool {
	out := make(map[hw.PUKind]bool)
	for _, pu := range w.Machine.PUs() {
		out[pu.Kind] = true
	}
	return out
}

// load returns the worker's utilization in [0,1]: placed instances plus
// requests already scheduled here but not yet served (so simultaneous
// arrivals spread instead of piling onto one worker).
func (w *Worker) load() float64 {
	c := w.RT.Capacity()
	if c == 0 {
		return 1
	}
	return float64(w.RT.LiveInstances()+w.inflight) / float64(c)
}

// registration is a function registered with the gateway.
type registration struct {
	profiles []molecule.Profile
}

// Gateway is the global manager.
type Gateway struct {
	Env      *sim.Env
	Registry *workloads.Registry

	workers []*Worker
	funcs   map[string]*registration
}

// NewGateway returns an empty gateway.
func NewGateway(env *sim.Env, reg *workloads.Registry) *Gateway {
	return &Gateway{Env: env, Registry: reg, funcs: make(map[string]*registration)}
}

// AddWorker builds a worker machine with its own Molecule runtime and
// attaches it to the gateway.
func (g *Gateway) AddWorker(p *sim.Proc, cfg hw.Config, opts molecule.Options) (*Worker, error) {
	m := hw.Build(g.Env, cfg)
	rt, err := molecule.New(p, m, g.Registry, opts)
	if err != nil {
		return nil, err
	}
	w := &Worker{ID: len(g.workers), Machine: m, RT: rt, deployed: make(map[string]bool)}
	g.workers = append(g.workers, w)
	return w, nil
}

// Workers returns the attached workers.
func (g *Gateway) Workers() []*Worker { return g.workers }

// Drain excludes a worker from scheduling (existing warm state stays until
// the operator retires the machine); Undrain re-admits it.
func (g *Gateway) Drain(workerID int) error {
	if workerID < 0 || workerID >= len(g.workers) {
		return fmt.Errorf("cluster: no worker %d", workerID)
	}
	g.workers[workerID].draining = true
	return nil
}

// Undrain re-admits a drained worker to scheduling.
func (g *Gateway) Undrain(workerID int) error {
	if workerID < 0 || workerID >= len(g.workers) {
		return fmt.Errorf("cluster: no worker %d", workerID)
	}
	g.workers[workerID].draining = false
	return nil
}

// Draining reports whether the worker is excluded from scheduling.
func (w *Worker) Draining() bool { return w.draining }

// Register records a function and its profiles with the platform. Nothing
// is deployed yet; deployment happens on first scheduling to each worker.
func (g *Gateway) Register(funcName string, profiles ...molecule.Profile) error {
	if _, err := g.Registry.Get(funcName); err != nil {
		return err
	}
	if len(profiles) == 0 {
		profiles = []molecule.Profile{molecule.DefaultProfile(hw.CPU)}
	}
	g.funcs[funcName] = &registration{profiles: profiles}
	return nil
}

// eligible reports whether the worker has at least one PU kind among the
// function's profiles (§4.1: "machines with at least one of the required
// kinds of PU where the function can execute").
func (g *Gateway) eligible(w *Worker, reg *registration) bool {
	kinds := w.kinds()
	for _, pr := range reg.profiles {
		if kinds[pr.Kind] {
			return true
		}
	}
	return false
}

// schedule picks the least-loaded eligible worker for every function in
// names (they must all fit one worker for chain locality); single functions
// are the one-element case.
func (g *Gateway) schedule(names []string) (*Worker, error) {
	regs := make([]*registration, len(names))
	for i, name := range names {
		r, ok := g.funcs[name]
		if !ok {
			return nil, fmt.Errorf("cluster: function %q not registered", name)
		}
		regs[i] = r
	}
	var best *Worker
	for _, w := range g.workers {
		ok := true
		for _, r := range regs {
			if !g.eligible(w, r) {
				ok = false
				break
			}
		}
		if !ok || w.draining || w.load() >= 1 {
			continue
		}
		if best == nil || w.load() < best.load() {
			best = w
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: no eligible worker for %v", names)
	}
	return best, nil
}

// ensureDeployed deploys the function on the worker on first use.
func (g *Gateway) ensureDeployed(p *sim.Proc, w *Worker, name string) error {
	if w.deployed[name] {
		return nil
	}
	reg := g.funcs[name]
	// Only deploy the profiles the worker can satisfy.
	kinds := w.kinds()
	var profiles []molecule.Profile
	for _, pr := range reg.profiles {
		if kinds[pr.Kind] {
			profiles = append(profiles, pr)
		}
	}
	if err := w.RT.Deploy(p, name, profiles...); err != nil {
		return err
	}
	w.deployed[name] = true
	return nil
}

// ingress charges the client→gateway→worker network path one way.
func ingress(p *sim.Proc) { p.Sleep(params.NetworkBaseLatency) }

// InvokeResult pairs an invocation result with the worker that served it.
type InvokeResult struct {
	molecule.Result
	Worker  int
	Gateway time.Duration // time spent in gateway + network, not the worker
}

// Invoke schedules one request through the gateway.
func (g *Gateway) Invoke(p *sim.Proc, funcName string, opts molecule.InvokeOptions) (InvokeResult, error) {
	start := p.Now()
	w, err := g.schedule([]string{funcName})
	if err != nil {
		return InvokeResult{}, err
	}
	w.inflight++
	defer func() { w.inflight-- }()
	ingress(p) // client → gateway → worker
	if err := g.ensureDeployed(p, w, funcName); err != nil {
		return InvokeResult{}, err
	}
	enter := p.Now()
	res, err := w.RT.Invoke(p, funcName, opts)
	if err != nil {
		return InvokeResult{}, err
	}
	exit := p.Now()
	ingress(p) // worker → gateway → client
	return InvokeResult{
		Result:  res,
		Worker:  w.ID,
		Gateway: p.Now().Sub(start) - exit.Sub(enter),
	}, nil
}

// InvokeChain schedules a whole chain onto one worker (chain locality) and
// runs it through the worker's direct-connect DAG engine.
func (g *Gateway) InvokeChain(p *sim.Proc, names []string, policy molecule.PlacementPolicy) (molecule.ChainResult, int, error) {
	w, err := g.schedule(names)
	if err != nil {
		return molecule.ChainResult{}, -1, err
	}
	w.inflight += len(names)
	defer func() { w.inflight -= len(names) }()
	ingress(p)
	for _, name := range names {
		if err := g.ensureDeployed(p, w, name); err != nil {
			return molecule.ChainResult{}, -1, err
		}
	}
	res, err := w.RT.InvokeChainWithPolicy(p, names, policy)
	if err != nil {
		return molecule.ChainResult{}, -1, err
	}
	ingress(p)
	return res, w.ID, nil
}
