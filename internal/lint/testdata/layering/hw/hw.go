package hw

import "repro/internal/xpu" // want `hw \(level 1\) must not import xpu \(level 3\)`

func use() { xpu.Noop() }
