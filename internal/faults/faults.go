// Package faults provides deterministic, virtual-time fault injection for
// the Molecule reproduction.
//
// Molecule's defining constraint is that every PU runs an independent OS
// with no shared kernel (§3, §5 of the paper), which makes partial failure —
// a DPU crash, a degraded PCIe link, a failed cfork — a first-class scenario
// rather than a whole-machine event. A Plan expresses those scenarios as
// data: PU crash windows, link partitions and latency inflations over
// intervals of virtual time, and probabilistic sandbox-create / fork /
// handler failures drawn from a seeded PRNG.
//
// The layers below the serverless runtime each consume the Plan through a
// small, locally declared interface (hw.FaultInjector, localos.FaultInjector,
// sandbox.FaultInjector, xpu.FaultView), so no package below faults imports
// it; one Plan value satisfies all of them. With no plan attached every hook
// is a nil check — the no-fault path is byte-identical to a build without
// fault injection, which is what keeps the golden experiment report stable.
//
// Determinism: windows are evaluated against the sim.Env clock and the PRNG
// is a splitmix64 stream seeded at construction, so a fixed seed plus a
// fixed workload reproduces the exact same failures — the property the
// chaos soak test asserts bit-for-bit.
package faults

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Sentinel errors, matched with errors.Is by the recovery layer.
var (
	// ErrPUDown marks an operation against a crashed processing unit.
	ErrPUDown = errors.New("faults: processing unit down")
	// ErrPartitioned marks a transfer over a partitioned link.
	ErrPartitioned = errors.New("faults: link partitioned")
	// ErrInjected marks a probabilistic injected failure (sandbox create,
	// fork, or handler crash).
	ErrInjected = errors.New("faults: injected failure")
)

// Window is a half-open interval of virtual time [From, To). To == 0 means
// open-ended (the fault persists until revived or forever).
type Window struct {
	From, To sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool {
	return t >= w.From && (w.To == 0 || t < w.To)
}

// linkWindow is one fault interval on a link: a partition drops transfers,
// an inflation factor > 1 stretches their latency.
type linkWindow struct {
	Window
	inflate   float64
	partition bool
}

// Plan is a deterministic fault schedule bound to one simulation
// environment. The zero value is unusable; construct with NewPlan.
//
// Plans are driven from within the single-threaded simulation, so no
// locking is needed — the same discipline as every other sim component.
type Plan struct {
	env *sim.Env
	rng uint64

	crashes map[hw.PUID][]Window
	links   map[[2]hw.PUID][]linkWindow

	// CreateFailProb is the probability that one sandbox creation fails
	// (injected at sandbox.ContainerRuntime.Create).
	CreateFailProb float64
	// ForkFailProb is the probability that one OS-level fork fails
	// (injected at localos.OS.Fork — the cfork path).
	ForkFailProb float64
	// HandlerFailProb is the probability that one handler invocation
	// crashes (injected by the Molecule runtime before handler dispatch).
	HandlerFailProb float64

	// Obs, when non-nil, counts every injected fault in
	// faults_injected_total{kind=...}. Nil costs nothing.
	Obs *obs.Observer
}

// NewPlan returns an empty fault plan reading env's virtual clock, with the
// probabilistic stream seeded by seed.
func NewPlan(env *sim.Env, seed uint64) *Plan {
	return &Plan{
		env:     env,
		rng:     seed,
		crashes: make(map[hw.PUID][]Window),
		links:   make(map[[2]hw.PUID][]linkWindow),
	}
}

// count records one injected fault of the given kind.
func (pl *Plan) count(kind string) {
	if pl.Obs != nil {
		pl.Obs.Counter("faults_injected_total", obs.L("kind", kind)).Inc()
	}
}

// roll draws the next value in [0, 1) from the seeded splitmix64 stream.
func (pl *Plan) roll() float64 {
	pl.rng += 0x9e3779b97f4a7c15
	z := pl.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// linkKey normalizes an undirected link endpoint pair.
func linkKey(a, b hw.PUID) [2]hw.PUID {
	if b < a {
		a, b = b, a
	}
	return [2]hw.PUID{a, b}
}

// --- schedule construction --------------------------------------------------

// CrashPU schedules PU id down over [from, to) of virtual time; to == 0
// keeps it down forever (or until Revive).
func (pl *Plan) CrashPU(id hw.PUID, from, to sim.Time) {
	pl.crashes[id] = append(pl.crashes[id], Window{From: from, To: to})
}

// Kill crashes PU id now, open-ended — the dynamic form used by chaos
// controllers. Killing an already-down PU is a no-op.
func (pl *Plan) Kill(id hw.PUID) {
	if pl.Down(id) {
		return
	}
	pl.crashes[id] = append(pl.crashes[id], Window{From: pl.env.Now()})
	pl.count("pu_crash")
}

// Revive closes PU id's open crash window at the current virtual time.
// Reviving a PU that is not down is a no-op.
func (pl *Plan) Revive(id hw.PUID) {
	now := pl.env.Now()
	ws := pl.crashes[id]
	for i := range ws {
		if ws[i].Contains(now) {
			ws[i].To = now
		}
	}
}

// PartitionLink schedules the (undirected) link a<->b to drop all transfers
// over [from, to); to == 0 partitions it forever.
func (pl *Plan) PartitionLink(a, b hw.PUID, from, to sim.Time) {
	k := linkKey(a, b)
	pl.links[k] = append(pl.links[k], linkWindow{Window: Window{From: from, To: to}, partition: true})
}

// InflateLink schedules the link a<->b to stretch transfer latency by
// factor (> 1) over [from, to) — a degraded PCIe link.
func (pl *Plan) InflateLink(a, b hw.PUID, factor float64, from, to sim.Time) {
	if factor < 1 {
		factor = 1
	}
	k := linkKey(a, b)
	pl.links[k] = append(pl.links[k], linkWindow{Window: Window{From: from, To: to}, inflate: factor})
}

// --- fault queries (the hook interfaces) ------------------------------------

// Down reports whether PU id is crashed at the current virtual time.
// Implements xpu.FaultView and the Molecule runtime's placement check.
func (pl *Plan) Down(id hw.PUID) bool {
	now := pl.env.Now()
	for _, w := range pl.crashes[id] {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// TransferFault vets a transfer between a and b at the current virtual
// time: a crashed endpoint or partitioned link fails it; active inflation
// windows stretch it. Implements hw.FaultInjector.
func (pl *Plan) TransferFault(a, b hw.PUID) (float64, error) {
	if pl.Down(a) {
		pl.count("transfer_pu_down")
		return 1, fmt.Errorf("transfer %d->%d: PU %d: %w", a, b, a, ErrPUDown)
	}
	if pl.Down(b) {
		pl.count("transfer_pu_down")
		return 1, fmt.Errorf("transfer %d->%d: PU %d: %w", a, b, b, ErrPUDown)
	}
	now := pl.env.Now()
	inflate := 1.0
	for _, lw := range pl.links[linkKey(a, b)] {
		if !lw.Contains(now) {
			continue
		}
		if lw.partition {
			pl.count("partition")
			return 1, fmt.Errorf("transfer %d->%d: %w", a, b, ErrPartitioned)
		}
		if lw.inflate > inflate {
			inflate = lw.inflate
		}
	}
	if inflate > 1 {
		pl.count("link_inflate")
	}
	return inflate, nil
}

// CreateFault rolls the sandbox-create failure probability. Implements
// sandbox.FaultInjector.
func (pl *Plan) CreateFault() error {
	if pl.CreateFailProb > 0 && pl.roll() < pl.CreateFailProb {
		pl.count("sandbox_create")
		return fmt.Errorf("sandbox create: %w", ErrInjected)
	}
	return nil
}

// ForkFault rolls the OS fork failure probability. Implements
// localos.FaultInjector.
func (pl *Plan) ForkFault() error {
	if pl.ForkFailProb > 0 && pl.roll() < pl.ForkFailProb {
		pl.count("fork")
		return fmt.Errorf("fork: %w", ErrInjected)
	}
	return nil
}

// HandlerFault rolls the handler crash probability; consulted by the
// Molecule runtime once per handler dispatch.
func (pl *Plan) HandlerFault() error {
	if pl.HandlerFailProb > 0 && pl.roll() < pl.HandlerFailProb {
		pl.count("handler")
		return fmt.Errorf("handler crash: %w", ErrInjected)
	}
	return nil
}
