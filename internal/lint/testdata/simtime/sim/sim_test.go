package sim

import "time"

// Test files never run inside a simulation; wall-clock reads are allowed.
func wallNow() time.Time { return time.Now() }
