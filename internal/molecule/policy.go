package molecule

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// PlacementPolicy selects a PU for each function of an application when a
// multi-setting request arrives (§5 "Profile selections"): users may deploy
// a function under several profiles, and the control plane chooses among
// them by platform policy.
type PlacementPolicy int

const (
	// PlaceChainAffinity locates every function of a chain on the same PU
	// (the paper's default: co-location minimizes communication latency).
	PlaceChainAffinity PlacementPolicy = iota
	// PlaceCheapest picks the lowest-price profile with free capacity
	// (DPU first) for each function independently.
	PlaceCheapest
	// PlaceFastest picks the highest-performance general-purpose profile
	// (CPU first), falling back to DPUs when the CPU is full.
	PlaceFastest
	// PlaceScatter round-robins functions across PUs — the adversarial
	// placement used as the ablation against chain affinity.
	PlaceScatter
)

var policyNames = map[PlacementPolicy]string{
	PlaceChainAffinity: "chain-affinity",
	PlaceCheapest:      "cheapest",
	PlaceFastest:       "fastest",
	PlaceScatter:       "scatter",
}

func (p PlacementPolicy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// firstIndex returns the first position of s in names.
func firstIndex(names []string, s string) int {
	for i, n := range names {
		if n == s {
			return i
		}
	}
	return -1
}

// candidatePUs returns the general-purpose PUs (in preference order) that
// can host deployment d under the policy.
func (rt *Runtime) candidatePUs(d *Deployment, policy PlacementPolicy) []hw.PUID {
	var cpus, dpus []hw.PUID
	for _, pu := range rt.Machine.PUs() {
		n := rt.nodes[pu.ID]
		if n == nil || n.cr == nil || !d.SupportsKind(pu.Kind) {
			continue
		}
		if n.liveCount >= n.capacity {
			continue
		}
		if pu.Kind == hw.CPU {
			cpus = append(cpus, pu.ID)
		} else {
			dpus = append(dpus, pu.ID)
		}
	}
	switch policy {
	case PlaceCheapest:
		return append(dpus, cpus...)
	default:
		return append(cpus, dpus...)
	}
}

// PlaceChain assigns each function of a chain to a PU according to the
// policy, respecting capacity and profile support. It returns one PUID per
// function.
func (rt *Runtime) PlaceChain(names []string, policy PlacementPolicy) ([]hw.PUID, error) {
	out := make([]hw.PUID, len(names))
	deps := make([]*Deployment, len(names))
	for i, name := range names {
		d, err := rt.Deployment(name)
		if err != nil {
			return nil, err
		}
		deps[i] = d
	}
	switch policy {
	case PlaceChainAffinity:
		// Find one PU every function supports, preferring the host.
		for _, cand := range rt.candidatePUs(deps[0], PlaceFastest) {
			ok := true
			kind := rt.Machine.PU(cand).Kind
			for _, d := range deps {
				if !d.SupportsKind(kind) {
					ok = false
					break
				}
			}
			if ok {
				for i := range out {
					out[i] = cand
				}
				return out, nil
			}
		}
		// Second chance: a PU at capacity can still run the chain when the
		// capacity is pinned by idle warm instances the chain will reuse.
		// This scan only runs where placement used to fail outright, so it
		// cannot change any previously-succeeding placement.
		for _, pu := range rt.Machine.PUs() {
			n := rt.nodes[pu.ID]
			if n == nil || n.cr == nil {
				continue
			}
			supported, need := true, 0
			for i, d := range deps {
				if !d.SupportsKind(pu.Kind) {
					supported = false
					break
				}
				// Count distinct functions with no warm instance here: each
				// needs a free slot (repeat occurrences reuse the released
				// instance).
				if len(n.warm[names[i]]) == 0 && firstIndex(names, names[i]) == i {
					need++
				}
			}
			// Idle warm instances beyond what the chain itself reuses are
			// reclaimable: the pinned cold starts evict them on demand
			// (evictForPlacement), so they count as free slots here.
			evictable := 0
			if supported {
				for fn, pool := range n.warm { //lint:unordered commutative sum of per-pool surpluses; no order-dependent choice
					keep := 0
					if firstIndex(names, fn) >= 0 {
						keep = 1
					}
					if len(pool) > keep {
						evictable += len(pool) - keep
					}
				}
			}
			// need==0 is accepted even when liveCount overshot capacity
			// (concurrent cold starts reserve only at start-finish): the
			// chain then runs purely on warm reuse.
			if supported && (need == 0 || n.capacity-n.liveCount+evictable >= need) {
				for i := range out {
					out[i] = pu.ID
				}
				return out, nil
			}
			if supported {
				// The right PU exists but is genuinely full: queueable at a
				// cluster gateway, so wrap ErrNoCapacity — unlike the
				// kind-mismatch below, which is a deployment error.
				return nil, fmt.Errorf("molecule: %w: every PU supporting the whole chain is full", ErrNoCapacity)
			}
		}
		return nil, fmt.Errorf("molecule: no single PU supports the whole chain")
	case PlaceScatter:
		// Round-robin across every eligible PU per function.
		rot := 0
		for i, d := range deps {
			cands := rt.candidatePUs(d, PlaceFastest)
			if len(cands) == 0 {
				return nil, fmt.Errorf("molecule: %w for %q", ErrNoCapacity, names[i])
			}
			out[i] = cands[rot%len(cands)]
			rot++
		}
		return out, nil
	default: // PlaceCheapest, PlaceFastest
		for i, d := range deps {
			cands := rt.candidatePUs(d, policy)
			if len(cands) == 0 {
				return nil, fmt.Errorf("molecule: %w for %q", ErrNoCapacity, names[i])
			}
			out[i] = cands[0]
		}
		return out, nil
	}
}

// InvokeChainWithPolicy places the chain under the policy and invokes it.
func (rt *Runtime) InvokeChainWithPolicy(p *sim.Proc, names []string, policy PlacementPolicy) (ChainResult, error) {
	placement, err := rt.PlaceChain(names, policy)
	if err != nil {
		return ChainResult{}, err
	}
	return rt.InvokeChain(p, names, ChainOptions{Placement: placement})
}
