package workloads

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryContainsEvaluationSet(t *testing.T) {
	r := NewRegistry()
	want := append(FunctionBenchNames(),
		"helloworld", "image-processing", "mscale", "madd", "vmult",
		"matrix-comput", "anti-moneyl", "vecstage")
	want = append(want, AlexaChain()...)
	want = append(want, MapReduceChain()...)
	for _, n := range want {
		if _, err := r.Get(n); err != nil {
			t.Errorf("missing function %q", n)
		}
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown function resolved")
	}
	if len(r.Names()) < len(want) {
		t.Errorf("registry has %d functions, want >= %d", len(r.Names()), len(want))
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	r.MustGet("missing")
}

func TestAddCustomFunction(t *testing.T) {
	r := NewRegistry()
	r.Add(&Function{Name: "custom", ExecCPU: time.Millisecond})
	if f := r.MustGet("custom"); f.ExecCPU != time.Millisecond {
		t.Error("custom function not stored")
	}
}

func TestCostModelDefaultsAndOverrides(t *testing.T) {
	r := NewRegistry()
	gz := r.MustGet("gzip-compression")
	if gz.CPUCost(Arg{}) != gz.ExecCPU {
		t.Error("default arg did not use fixed cost")
	}
	c25 := gz.CPUCost(Arg{Bytes: 25 << 20})
	c112 := gz.CPUCost(Arg{Bytes: 112 << 20})
	if c112 <= c25 {
		t.Error("gzip CPU cost not increasing in size")
	}
	a, res := gz.Sizes(Arg{Bytes: 1 << 20})
	if a != 1<<20 || res != 1<<18 {
		t.Errorf("gzip sizes = (%d,%d)", a, res)
	}
}

// TestFig14fGzipShape: FPGA wins above the crossover with 4.8-8.3x for the
// 25-112MB range, and loses for small files.
func TestFig14fGzipShape(t *testing.T) {
	r := NewRegistry()
	gz := r.MustGet("gzip-compression")
	if !gz.HasFPGA() {
		t.Fatal("gzip has no FPGA implementation")
	}
	ratio := func(bytes int) float64 {
		return float64(gz.CPUCost(Arg{Bytes: bytes})) / float64(gz.FabricCost(Arg{Bytes: bytes}))
	}
	if r := ratio(25 << 20); r < 4.2 || r > 5.4 {
		t.Errorf("25MB CPU/FPGA = %.2f, want ~4.8", r)
	}
	if r := ratio(112 << 20); r < 7.4 || r > 9.2 {
		t.Errorf("112MB CPU/FPGA = %.2f, want ~8.3", r)
	}
	if r := ratio(1 << 20); r >= 1 {
		t.Errorf("1MB CPU/FPGA = %.2f, want <1 (CPU wins small files)", r)
	}
}

// TestFig14gAMLShape: FPGA speedup grows from ~4.7x at 6K entries to ~34x
// at 6M entries.
func TestFig14gAMLShape(t *testing.T) {
	r := NewRegistry()
	aml := r.MustGet("anti-moneyl")
	ratio := func(n int) float64 {
		return float64(aml.CPUCost(Arg{N: n})) / float64(aml.FabricCost(Arg{N: n}))
	}
	if got := ratio(6000); got < 4.0 || got > 5.6 {
		t.Errorf("6K ratio = %.2f, want ~4.7", got)
	}
	if got := ratio(6000000); got < 30 || got > 38 {
		t.Errorf("6M ratio = %.2f, want ~34.6", got)
	}
	if ratio(6000) >= ratio(6000000) {
		t.Error("AML speedup not growing with entries")
	}
}

func TestChains(t *testing.T) {
	if len(AlexaChain()) != 5 {
		t.Errorf("Alexa chain has %d functions, want 5", len(AlexaChain()))
	}
	if len(MapReduceChain()) != 3 {
		t.Errorf("MapReduce chain has %d functions, want 3", len(MapReduceChain()))
	}
}

func TestHasFPGAClassification(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"mscale", "madd", "vmult", "gzip-compression", "anti-moneyl"} {
		if !r.MustGet(name).HasFPGA() {
			t.Errorf("%s should have an FPGA implementation", name)
		}
	}
	for _, name := range []string{"chameleon", "helloworld", "alexa-frontend"} {
		if r.MustGet(name).HasFPGA() {
			t.Errorf("%s should not have an FPGA implementation", name)
		}
	}
	if !r.MustGet("mscale").HasGPU() || r.MustGet("helloworld").HasGPU() {
		t.Error("GPU classification wrong")
	}
}

// --- compute bodies ----------------------------------------------------------

func TestBodiesProduceRealResults(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		fn  string
		arg Arg
	}{
		{"helloworld", Arg{}},
		{"gzip-compression", Arg{Bytes: 1 << 14}},
		{"pyaes", Arg{}},
		{"matmul", Arg{N: 16}},
		{"linpack", Arg{N: 16}},
		{"image-resize", Arg{N: 64}},
		{"chameleon", Arg{N: 10}},
		{"mscale", Arg{N: 16}},
		{"madd", Arg{N: 16}},
		{"vmult", Arg{N: 16}},
		{"anti-moneyl", Arg{N: 1000}},
	}
	for _, c := range cases {
		f := r.MustGet(c.fn)
		if f.Body == nil {
			if c.fn == "matmul" || c.fn == "linpack" {
				t.Errorf("%s has no body", c.fn)
			}
			continue
		}
		out, err := f.Body(c.arg)
		if err != nil {
			t.Errorf("%s body: %v", c.fn, err)
			continue
		}
		if out == nil {
			t.Errorf("%s body returned nil", c.fn)
		}
	}
}

func TestGzipBodyActuallyCompresses(t *testing.T) {
	out, err := bodyGzip(Arg{Payload: []byte(strings.Repeat("abcabcabc", 1000))})
	if err != nil {
		t.Fatal(err)
	}
	s := out.(string)
	if !strings.Contains(s, "9000 ->") {
		t.Errorf("unexpected gzip result %q", s)
	}
}

func TestMatmulTraceDeterministic(t *testing.T) {
	a, err := bodyMatmul(Arg{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := bodyMatmul(Arg{N: 8})
	if a != b {
		t.Error("matmul trace not deterministic")
	}
}

func TestLinpackSolves(t *testing.T) {
	out, err := bodyLinpack(Arg{N: 32})
	if err != nil {
		t.Fatal(err)
	}
	sum := out.(float64)
	// Diagonally dominant system with b=1: solution components ~1/n each;
	// the checksum must be finite and positive.
	if sum <= 0 || sum > 32 {
		t.Errorf("linpack checksum %v out of range", sum)
	}
}

func TestAMLFlagsStructuring(t *testing.T) {
	out, err := bodyAML(Arg{N: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.(string), "flagged") {
		t.Errorf("unexpected AML output %v", out)
	}
}

func TestWordCountPipeline(t *testing.T) {
	text := "a b a c. A b! b"
	shards := SplitText(text, 3)
	if len(shards) == 0 || len(shards) > 3 {
		t.Fatalf("shards = %d", len(shards))
	}
	joined := strings.Join(shards, " ")
	if len(strings.Fields(joined)) != len(strings.Fields(text)) {
		t.Error("split lost words")
	}
	parts := make([]map[string]int, len(shards))
	for i, s := range shards {
		parts[i] = MapWordCount(s)
	}
	total := ReduceWordCounts(parts)
	if total["a"] != 3 || total["b"] != 3 || total["c"] != 1 {
		t.Errorf("counts = %v", total)
	}
	if got := SplitText("", 4); len(got) != 0 {
		t.Errorf("empty text produced shards: %v", got)
	}
	if got := SplitText("one two", 0); len(got) != 1 {
		t.Errorf("n=0 not clamped: %v", got)
	}
}

func TestDDAndVideoBodies(t *testing.T) {
	out, err := bodyDD(Arg{Bytes: 10000})
	if err != nil || !strings.Contains(out.(string), "copied 10000 bytes") {
		t.Errorf("dd body: %v, %v", out, err)
	}
	// Deterministic checksum.
	out2, _ := bodyDD(Arg{Bytes: 10000})
	if out != out2 {
		t.Error("dd checksum not deterministic")
	}
	v, err := bodyVideo(Arg{N: 3})
	if err != nil || !strings.Contains(v.(string), "processed 3 frames") {
		t.Errorf("video body: %v, %v", v, err)
	}
}
