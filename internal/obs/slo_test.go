package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestSLOEngineScoring pins the attainment and burn-rate arithmetic,
// including the inclusive objective edge (d == Objective is good).
func TestSLOEngineScoring(t *testing.T) {
	e := NewSLOEngine(SLOConfig{Objective: 10 * time.Millisecond, Target: 0.9})
	for i := 0; i < 7; i++ {
		e.Record("f", 5*time.Millisecond)
	}
	e.Record("f", 10*time.Millisecond) // exactly on the objective: good
	e.Record("f", 11*time.Millisecond)
	e.Record("f", time.Second)

	sts := e.Status()
	if len(sts) != 1 {
		t.Fatalf("status entries = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Fn != "f" || st.Requests != 10 || st.Violations != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.Attainment != 0.8 {
		t.Fatalf("attainment = %v, want 0.8", st.Attainment)
	}
	// Violation rate 0.2 against a 0.1 budget: burning at 2x.
	if st.BurnRate < 1.999 || st.BurnRate > 2.001 {
		t.Fatalf("burn rate = %v, want 2.0", st.BurnRate)
	}
	if st.MaxMS != 1000 {
		t.Fatalf("max_ms = %v, want 1000", st.MaxMS)
	}

	// Per-function objectives override the default; unknown functions see
	// the default.
	e.SetObjective("g", SLOConfig{Objective: 5 * time.Millisecond, Target: 0.99})
	if got := e.Objective("g"); got.Objective != 5*time.Millisecond || got.Target != 0.99 {
		t.Fatalf("Objective(g) = %+v", got)
	}
	if got := e.Objective("nope"); got.Objective != 10*time.Millisecond {
		t.Fatalf("Objective(nope) = %+v, want the default", got)
	}
}

// TestSLOMergeMatchesSingle: splitting a latency stream across two engines
// and merging must produce byte-identical JSON to one engine observing
// everything — the rollup contract for per-shard scoring.
func TestSLOMergeMatchesSingle(t *testing.T) {
	def := SLOConfig{Objective: 20 * time.Millisecond, Target: 0.95}
	whole, a, b := NewSLOEngine(def), NewSLOEngine(def), NewSLOEngine(def)
	// Good/violation counts are scored at Record time, so every shard must
	// carry the same objective — just as SetObjective fans out in httpd.
	gCfg := SLOConfig{Objective: time.Millisecond, Target: 0.5}
	whole.SetObjective("g", gCfg)
	a.SetObjective("g", gCfg)
	b.SetObjective("g", gCfg)
	for i := 1; i <= 300; i++ {
		fn := "f"
		if i%3 == 0 {
			fn = "g"
		}
		d := time.Duration(i) * 173 * time.Microsecond
		whole.Record(fn, d)
		if i%2 == 0 {
			a.Record(fn, d)
		} else {
			b.Record(fn, d)
		}
	}
	a.Merge(b) // b's explicit objective for g must carry over

	var want, got bytes.Buffer
	if err := whole.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("merged JSON differs from single-engine JSON:\n%s\nvs\n%s", got.String(), want.String())
	}

	// An explicit objective on the merged-in engine overrides a default-only
	// series on the receiver.
	e1, e2 := NewSLOEngine(def), NewSLOEngine(def)
	e2.SetObjective("h", gCfg)
	e1.Merge(e2)
	if got := e1.Objective("h"); got != gCfg {
		t.Fatalf("merged objective = %+v, want %+v", got, gCfg)
	}
}

// TestSLOWriteJSONShape: the /slo document is valid JSON with a functions
// array (never null), even from a nil engine, and renders deterministically.
func TestSLOWriteJSONShape(t *testing.T) {
	var nilEngine *SLOEngine
	var buf bytes.Buffer
	if err := nilEngine.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var v struct {
		Default struct {
			ObjectiveMS float64 `json:"objective_ms"`
			Target      float64 `json:"target"`
		} `json:"default"`
		Functions []SLOStatus `json:"functions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("nil-engine JSON invalid: %v", err)
	}
	if v.Functions == nil {
		t.Fatal("functions is null, want []")
	}

	e := NewSLOEngine(SLOConfig{Objective: time.Millisecond, Target: 0.999})
	e.Record("f", time.Millisecond)
	var b1, b2 bytes.Buffer
	if err := e.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
}

// TestSLOExportGauges: Export mirrors the scored objectives into slo_*
// gauge families for the /metrics view.
func TestSLOExportGauges(t *testing.T) {
	e := NewSLOEngine(SLOConfig{Objective: 10 * time.Millisecond, Target: 0.9})
	for i := 0; i < 9; i++ {
		e.Record("f", time.Millisecond)
	}
	e.Record("f", time.Second)
	r := NewRegistry()
	e.Export(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`slo_requests{fn="f"} 10`,
		`slo_violations{fn="f"} 1`,
		`slo_attainment_ratio{fn="f"} 0.9`,
		`slo_error_budget_burn{fn="f"} 1`,
		"# TYPE slo_requests gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Nil-safety on both sides.
	e.Export(nil)
	var nilEngine *SLOEngine
	nilEngine.Export(r)
}

// TestObserverRecordSLO pins the wiring: RecordSLO is inert without an
// engine and feeds the engine when attached.
func TestObserverRecordSLO(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	o.RecordSLO("f", time.Millisecond) // no engine: no-op
	o.SLO = NewSLOEngine(SLOConfig{Objective: 10 * time.Millisecond, Target: 0.99})
	o.RecordSLO("f", time.Millisecond)
	o.RecordSLO("f", 20*time.Millisecond)
	sts := o.SLO.Status()
	if len(sts) != 1 || sts[0].Requests != 2 || sts[0].Violations != 1 {
		t.Fatalf("status = %+v", sts)
	}
	var nilObs *Observer
	nilObs.RecordSLO("f", time.Millisecond)
}
