package sim

// Chan is a simulated channel carrying values of type T between processes.
// A capacity of zero gives rendezvous semantics; a positive capacity buffers
// up to cap values. Closed channels deliver the zero value with ok=false to
// receivers, like native Go channels.
type Chan[T any] struct {
	env *Env
	// buf is a ring: count values starting at head, wrapping around. A ring
	// (rather than append/reslice) keeps steady-state send/recv allocation-
	// free — the storage grows geometrically up to cap and is then reused
	// forever.
	buf    []T
	head   int
	count  int
	cap    int
	sendq  []*sendWaiter[T]
	recvq  []*recvWaiter[T]
	closed bool
}

type sendWaiter[T any] struct {
	p   *Proc
	val T
}

type recvWaiter[T any] struct {
	p *Proc
}

type recvResult[T any] struct {
	val T
	ok  bool
}

// closedSend is the resume payload delivered to a parked sender when the
// channel closes underneath it.
type closedSend struct{}

// NewChan returns a simulated channel with the given buffer capacity.
func NewChan[T any](env *Env, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{env: env, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return c.count }

// push appends v to the ring buffer; the caller has checked count < cap.
func (c *Chan[T]) push(v T) {
	if c.count == len(c.buf) {
		n := len(c.buf) * 2
		if n == 0 {
			n = 4
		}
		if n > c.cap {
			n = c.cap
		}
		nb := make([]T, n)
		for i := 0; i < c.count; i++ {
			nb[i] = c.buf[(c.head+i)%len(c.buf)]
		}
		c.buf = nb
		c.head = 0
	}
	c.buf[(c.head+c.count)%len(c.buf)] = v
	c.count++
}

// pop removes and returns the oldest buffered value; the caller has checked
// count > 0. The vacated slot is zeroed so payloads are not retained.
func (c *Chan[T]) pop() T {
	v := c.buf[c.head]
	var zero T
	c.buf[c.head] = zero
	c.head = (c.head + 1) % len(c.buf)
	c.count--
	return v
}

// Cap reports the channel capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether the channel has been closed.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close closes the channel. Parked receivers are woken with ok=false, and
// parked senders are woken with a closed-channel signal: their value is
// dropped, Send panics (like native channels) and SendOrClosed returns
// false.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	waiters := c.recvq
	c.recvq = nil
	for _, w := range waiters {
		c.env.scheduleResume(c.env.now, w.p, resumeMsg{val: recvResult[T]{ok: false}})
	}
	senders := c.sendq
	c.sendq = nil
	for _, w := range senders {
		c.env.scheduleResume(c.env.now, w.p, resumeMsg{val: closedSend{}})
	}
}

// Send delivers v on the channel, parking p until a receiver or buffer slot
// is available. Sending on a closed channel — including a channel closed
// while the sender was parked — panics, as with native channels.
func (c *Chan[T]) Send(p *Proc, v T) {
	if !c.send(p, v) {
		panic("sim: send on closed channel")
	}
}

// SendOrClosed is Send for callers that must survive a concurrent Close: it
// reports whether the value was delivered, returning false instead of
// panicking when the channel is closed — whether upfront or while the
// sender was parked on a full buffer.
func (c *Chan[T]) SendOrClosed(p *Proc, v T) bool {
	return c.send(p, v)
}

// send delivers v, reporting false if the channel was (or became) closed.
func (c *Chan[T]) send(p *Proc, v T) bool {
	if c.closed {
		return false
	}
	// A waiting receiver takes the value directly.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		c.env.scheduleResume(c.env.now, w.p, resumeMsg{val: recvResult[T]{val: v, ok: true}})
		return true
	}
	if c.count < c.cap {
		c.push(v)
		return true
	}
	// Block until a receiver drains us — or Close wakes us empty-handed.
	c.sendq = append(c.sendq, &sendWaiter[T]{p: p, val: v})
	msg := p.park()
	if _, wasClosed := msg.val.(closedSend); wasClosed {
		return false
	}
	return true
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted (by a waiting receiver or a free buffer slot).
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed channel")
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		c.env.scheduleResume(c.env.now, w.p, resumeMsg{val: recvResult[T]{val: v, ok: true}})
		return true
	}
	if c.count < c.cap {
		c.push(v)
		return true
	}
	return false
}

// Recv receives a value, parking p until one is available. ok is false when
// the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if v, ok, got := c.tryRecvLocked(); got {
		return v, ok
	}
	c.recvq = append(c.recvq, &recvWaiter[T]{p: p})
	msg := p.park()
	res := msg.val.(recvResult[T])
	return res.val, res.ok
}

// TryRecv receives without blocking. got reports whether a value (or a
// closed-channel signal) was available.
func (c *Chan[T]) TryRecv() (v T, ok, got bool) {
	return c.tryRecvLocked()
}

func (c *Chan[T]) tryRecvLocked() (v T, ok, got bool) {
	if c.count > 0 {
		v = c.pop()
		// Promote a blocked sender's value into the freed slot.
		if len(c.sendq) > 0 {
			w := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.push(w.val)
			c.env.scheduleResume(c.env.now, w.p, resumeMsg{})
		}
		return v, true, true
	}
	if len(c.sendq) > 0 { // unbuffered rendezvous
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		c.env.scheduleResume(c.env.now, w.p, resumeMsg{})
		return w.val, true, true
	}
	if c.closed {
		var zero T
		return zero, false, true
	}
	return v, false, false
}

// Event is a one-shot broadcast: processes Wait until someone Triggers it,
// after which Wait returns immediately. The payload set at Trigger is
// delivered to every waiter.
type Event struct {
	env       *Env
	triggered bool
	payload   any
	waiters   []*Proc
}

// NewEvent returns an untriggered event.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Triggered reports whether Trigger has been called.
func (ev *Event) Triggered() bool { return ev.triggered }

// Payload returns the value passed to Trigger (nil before triggering).
func (ev *Event) Payload() any { return ev.payload }

// Trigger fires the event, waking all waiters. Triggering twice is a no-op.
func (ev *Event) Trigger(payload any) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.payload = payload
	waiters := ev.waiters
	ev.waiters = nil
	for _, p := range waiters {
		ev.env.scheduleResume(ev.env.now, p, resumeMsg{val: ev.payload})
	}
}

// Wait parks p until the event triggers, returning the trigger payload.
func (ev *Event) Wait(p *Proc) any {
	if ev.triggered {
		return ev.payload
	}
	ev.waiters = append(ev.waiters, p)
	msg := p.park()
	return msg.val
}

// Resource is a counting semaphore over virtual time: Acquire parks the
// caller until a unit is free. Units are granted in FIFO order.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waitq    []*Proc
}

// NewResource returns a resource with the given capacity (minimum 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: env, capacity: capacity}
}

// Capacity reports the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire obtains one unit, parking p until one is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waitq = append(r.waitq, p)
	p.park()
}

// TryAcquire obtains a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waitq) > 0 {
		p := r.waitq[0]
		r.waitq = r.waitq[1:]
		r.env.scheduleResume(r.env.now, p, resumeMsg{})
		return
	}
	if r.inUse > 0 {
		r.inUse--
	}
}

// WaitGroup counts outstanding tasks in virtual time; Wait parks until the
// count reaches zero.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a wait group with count zero.
func NewWaitGroup(env *Env) *WaitGroup { return &WaitGroup{env: env} }

// Add adds delta to the count. The count must not go negative.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		waiters := wg.waiters
		wg.waiters = nil
		for _, p := range waiters {
			wg.env.scheduleResume(wg.env.now, p, resumeMsg{})
		}
	}
}

// Done decrements the count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count reports the current count.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait parks p until the count is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// WaitAny parks p until any of the given events triggers, returning the
// index of the first event (and its payload). Already-triggered events win
// immediately, lowest index first.
func WaitAny(p *Proc, events ...*Event) (int, any) {
	if len(events) == 0 {
		panic("sim: WaitAny with no events")
	}
	for i, ev := range events {
		if ev.Triggered() {
			return i, ev.Payload()
		}
	}
	// Arm a relay process on every event; the first to fire wins. Each
	// relay exits when its own event eventually triggers (an event that
	// never triggers keeps its relay parked, like any abandoned waiter).
	winner := NewEvent(events[0].env)
	type hit struct {
		idx     int
		payload any
	}
	for i, ev := range events {
		i, ev := i, ev
		ev.env.Spawn("waitany-relay", func(rp *Proc) {
			payload := ev.Wait(rp)
			winner.Trigger(hit{idx: i, payload: payload})
		})
	}
	h := winner.Wait(p).(hit)
	return h.idx, h.payload
}
