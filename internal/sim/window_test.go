package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// recordingWindowObserver copies every WindowStats callback into a rendered
// log — sim cannot import obs (layering), so the kernel-side contract is
// pinned with this minimal in-package observer.
type recordingWindowObserver struct {
	rounds int
	events int
	log    strings.Builder
}

func (r *recordingWindowObserver) WindowRound(ws WindowStats) {
	r.rounds++
	for _, n := range ws.Events {
		r.events += n
	}
	// Render immediately: the Events/Flow buffers are reused next round.
	fmt.Fprintf(&r.log, "round=%d h=%d bound=%d delivered=%d events=%v flow=%v\n",
		ws.Round, ws.Horizon, ws.Bound, ws.Delivered, ws.Events, ws.Flow)
}

// runCoupledObserved is runCoupledSharded with a window observer attached.
func runCoupledObserved(domains, workers int) (coupledRun, *recordingWindowObserver) {
	sh := NewSharded(domains)
	sh.LimitLookahead(cLA)
	rec := &recordingWindowObserver{}
	sh.SetWindowObserver(rec)
	sh.EnableTrace()
	var st coupledState
	for m := 0; m < cm; m++ {
		m := m
		dom := sh.Domain(m % domains)
		send := func(p *Proc, k int, delay Duration, fn func()) {
			dst := sh.Domain(k % domains)
			sh.Send(p.Env(), k%domains, delay, func() {
				fn()
				dst.Tracef("recv m%d", k)
			})
		}
		dom.Spawn(fmt.Sprintf("machine-%d", m), coupledBody(&st, m, send))
	}
	sh.Run(workers)
	return coupledRun{
		fp:    fingerprint(&st, sh.Scheduled()),
		trace: renderTrace(sh.TraceLog()),
		sched: sh.Scheduled(),
	}, rec
}

// TestWindowTelemetryDeterministicAcrossWorkers pins the telemetry half of
// the determinism contract: the full per-round log — horizons, bounds,
// per-domain event counts, delivery counts, flow matrices — is byte-
// identical at every worker count.
func TestWindowTelemetryDeterministicAcrossWorkers(t *testing.T) {
	const domains = 3
	base, baseRec := runCoupledObserved(domains, 1)
	if baseRec.rounds == 0 {
		t.Fatal("windowed run reported no rounds")
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		run, rec := runCoupledObserved(domains, workers)
		if run.fp != base.fp {
			t.Fatalf("workers=%d: fingerprint diverged\n got  %s\n want %s", workers, run.fp, base.fp)
		}
		if rec.log.String() != baseRec.log.String() {
			t.Fatalf("workers=%d: telemetry log diverged\n got:\n%s\nwant:\n%s",
				workers, rec.log.String(), baseRec.log.String())
		}
	}
}

// TestWindowObserverInvisible pins zero observable cost: attaching the
// observer must not change the simulation — fingerprint, trace, and event
// totals all match the unobserved run — and every fired event must be
// accounted to exactly one window.
func TestWindowObserverInvisible(t *testing.T) {
	const domains = 3
	plain := runCoupledSharded(domains, 2, true)
	observed, rec := runCoupledObserved(domains, 2)
	if observed.fp != plain.fp {
		t.Fatalf("observer changed the fingerprint\n got  %s\n want %s", observed.fp, plain.fp)
	}
	if observed.trace != plain.trace {
		t.Fatal("observer changed the trace log")
	}
	if int64(rec.events) != observed.sched {
		t.Fatalf("window event counts sum to %d, scheduled %d — events escaped the windows",
			rec.events, observed.sched)
	}
}

// TestWindowObserverDetach: SetWindowObserver(nil) stops callbacks; the
// buffers stay allocated for a later re-attach.
func TestWindowObserverDetach(t *testing.T) {
	sh := NewSharded(2)
	sh.LimitLookahead(cLA)
	rec := &recordingWindowObserver{}
	sh.SetWindowObserver(rec)
	sh.SetWindowObserver(nil)
	var st coupledState
	for m := 0; m < cm; m++ {
		m := m
		dom := sh.Domain(m % 2)
		send := func(p *Proc, k int, delay Duration, fn func()) {
			sh.Send(p.Env(), k%2, delay, fn)
		}
		dom.Spawn(fmt.Sprintf("machine-%d", m), coupledBody(&st, m, send))
	}
	sh.Run(2)
	if rec.rounds != 0 {
		t.Fatalf("detached observer received %d rounds", rec.rounds)
	}
}
