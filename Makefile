# Convenience targets for the Molecule reproduction.

GO ?= go

.PHONY: all build vet test race bench report report-md golden examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (plus ablations) to stdout.
report:
	$(GO) run ./cmd/molecule-bench

report-md:
	$(GO) run ./cmd/molecule-bench -md

# Rewrite the golden experiment report after an intentional calibration change.
golden:
	$(GO) test ./internal/bench -run Golden -update

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fpgapipeline
	$(GO) run ./examples/alexachain
	$(GO) run ./examples/density
	$(GO) run ./examples/cluster
	$(GO) run ./examples/mapreduce
	$(GO) run ./examples/trace
	$(GO) run ./examples/newpu

# The artifacts the evaluation instructions ask for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
