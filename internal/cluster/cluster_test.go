package cluster

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func withGateway(t *testing.T, body func(p *sim.Proc, g *Gateway)) {
	t.Helper()
	env := sim.NewEnv()
	g := NewGateway(env, workloads.NewRegistry())
	env.Spawn("driver", func(p *sim.Proc) { body(p, g) })
	env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d procs blocked", env.LiveProcs())
	}
}

func TestRegisterValidation(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		if err := g.Register("nope"); err == nil {
			t.Error("unknown function registered")
		}
		if err := g.Register("matmul"); err != nil {
			t.Error(err)
		}
	})
}

func TestScheduleByPUKind(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		// Worker 0: CPU-only. Worker 1: CPU + FPGA.
		if _, err := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddWorker(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		// An FPGA-only registration must land on worker 1.
		if err := g.Register("mscale", molecule.DefaultProfile(hw.FPGA)); err != nil {
			t.Fatal(err)
		}
		res, err := g.Invoke(p, "mscale", molecule.DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Worker != 1 {
			t.Errorf("FPGA function scheduled to worker %d, want 1", res.Worker)
		}
		if res.Kind != hw.FPGA {
			t.Errorf("served by %v, want FPGA", res.Kind)
		}
		if res.Gateway <= 0 {
			t.Error("no gateway/network time recorded")
		}
	})
}

func TestScheduleLeastLoaded(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w0, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.Register("matmul")
		// Pre-load worker 0.
		g.ensureDeployed(p, w0, "matmul")
		for i := 0; i < 5; i++ {
			if _, err := w0.RT.AcquireHeld(p, "matmul", -1); err != nil {
				t.Fatal(err)
			}
		}
		res, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Worker != 1 {
			t.Errorf("request scheduled to loaded worker %d, want idle worker 1", res.Worker)
		}
	})
}

func TestNoEligibleWorker(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions()) // CPU only
		g.Register("mscale", molecule.DefaultProfile(hw.FPGA))
		if _, err := g.Invoke(p, "mscale", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("FPGA request scheduled onto CPU-only cluster")
		}
		if _, err := g.Invoke(p, "unregistered", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("unregistered function scheduled")
		}
	})
}

func TestLazyDeploymentPerWorker(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		w, _ := g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.Register("matmul")
		if w.deployed["matmul"] {
			t.Error("deployed before first use")
		}
		if _, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions()); err != nil {
			t.Fatal(err)
		}
		if !w.deployed["matmul"] {
			t.Error("not deployed after first use")
		}
		// Second invoke reuses the deployment (and the warm instance).
		res, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Cold {
			t.Error("second invoke cold — warm pool not reused")
		}
	})
}

func TestChainSchedulesToOneWorker(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		g.AddWorker(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
		g.AddWorker(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
		chain := workloads.MapReduceChain()
		for _, fn := range chain {
			if err := g.Register(fn); err != nil {
				t.Fatal(err)
			}
		}
		res, worker, err := g.InvokeChain(p, chain, molecule.PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		if worker < 0 {
			t.Error("no worker reported")
		}
		if res.Total <= 0 || res.ColdStarts != len(chain) {
			t.Errorf("first chain run: total=%v cold=%d", res.Total, res.ColdStarts)
		}
		// Chain profiles registered only for CPU: affinity keeps all on one
		// PU of one worker, so a warm re-run has no cold starts.
		res2, worker2, err := g.InvokeChain(p, chain, molecule.PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		if worker2 != worker {
			// Least-loaded may pick the other worker; both are valid, but
			// then cold starts happen there.
			if res2.ColdStarts == 0 {
				t.Error("chain moved workers yet reported warm starts")
			}
		}
	})
}

func TestMixedChainNeedsHeterogeneousWorker(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())         // CPU only
		g.AddWorker(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions()) // CPU+FPGA
		g.Register("image-processing")
		g.Register("mscale", molecule.DefaultProfile(hw.FPGA))
		_, worker, err := g.InvokeChain(p, []string{"image-processing", "image-processing"}, molecule.PlaceChainAffinity)
		if err != nil {
			t.Fatal(err)
		}
		_ = worker
		// A chain including the FPGA function must land on worker 1.
		res, err := g.Invoke(p, "mscale", molecule.DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Worker != 1 {
			t.Errorf("FPGA member scheduled to worker %d, want 1", res.Worker)
		}
	})
}

// TestGatewayLoadBalancesConcurrentTraffic drives concurrent requests
// through the gateway at two identical workers and checks both serve a
// share.
func TestGatewayLoadBalancesConcurrentTraffic(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		if err := g.Register("pyaes"); err != nil {
			t.Fatal(err)
		}
		served := make(map[int]int)
		wg := sim.NewWaitGroup(g.Env)
		for i := 0; i < 12; i++ {
			wg.Add(1)
			g.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				res, err := g.Invoke(cp, "pyaes", molecule.DefaultInvokeOptions())
				if err != nil {
					t.Error(err)
					return
				}
				served[res.Worker]++
			})
		}
		wg.Wait(p)
		if served[0] == 0 || served[1] == 0 {
			t.Errorf("load not balanced: %v", served)
		}
		if served[0]+served[1] != 12 {
			t.Errorf("served %v, want 12 total", served)
		}
	})
}

func TestDrainExcludesWorker(t *testing.T) {
	withGateway(t, func(p *sim.Proc, g *Gateway) {
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.AddWorker(p, hw.Config{}, molecule.DefaultOptions())
		g.Register("matmul")
		if err := g.Drain(0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
			if err != nil {
				t.Fatal(err)
			}
			if res.Worker != 1 {
				t.Errorf("request landed on draining worker %d", res.Worker)
			}
		}
		// Drain everything: scheduling fails.
		g.Drain(1)
		if _, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions()); err == nil {
			t.Error("request scheduled onto a fully drained cluster")
		}
		if err := g.Undrain(0); err != nil {
			t.Fatal(err)
		}
		res, err := g.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
		if err != nil || res.Worker != 0 {
			t.Errorf("undrained worker not used: %v %v", res.Worker, err)
		}
		if err := g.Drain(9); err == nil {
			t.Error("drain of unknown worker accepted")
		}
		if err := g.Undrain(-1); err == nil {
			t.Error("undrain of unknown worker accepted")
		}
	})
}
