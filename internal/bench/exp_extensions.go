package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "abl-autoscale",
		Title: "Ablation: resident-pool autoscaling under a burst",
		Paper: "serverless auto-scalability (§1): queueing-driven scale-out vs a fixed pool",
		Run:   runAblAutoscale,
	})
	register(Experiment{
		ID:    "case-gnn",
		Title: "Representative case: GNN training step on a GPU function (§2.4)",
		Paper: "Dorylus-style GNN work 'can be improved by using accelerators like GPU with the help of Molecule'",
		Run:   runCaseGNN,
	})
	register(Experiment{
		ID:    "abl-pricing",
		Title: "Ablation: cost vs latency across PU profiles (§4.1 pricing model)",
		Paper: "DPU lowest price, FPGA highest; users pick profiles by price and ability",
		Run:   runAblPricing,
	})
}

// runAblAutoscale fires a 16-request burst of a 19.5ms function at a
// 1-resident pool with and without autoscaling.
func runAblAutoscale() []*metrics.Table {
	t := &metrics.Table{
		Title:  "16-request burst of pyaes (19.5ms handler)",
		Header: []string{"configuration", "peak residents", "p50", "worst", "scale-outs"},
	}
	runBurst := func(maxResidents int) (lat metrics.Recorder, peak, outs int) {
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{}, molecule.DefaultOptions())
			if err := rt.Deploy(p, "pyaes"); err != nil {
				panic(err)
			}
			opts := molecule.DefaultAutoScalerOptions()
			opts.TargetQueue = 2 * time.Millisecond
			opts.Max = maxResidents
			a, err := rt.NewAutoScaler(p, "pyaes", 0, opts)
			if err != nil {
				panic(err)
			}
			wg := sim.NewWaitGroup(rt.Env)
			for i := 0; i < 16; i++ {
				wg.Add(1)
				rt.Env.Spawn("req", func(cp *sim.Proc) {
					defer wg.Done()
					l, err := a.Serve(cp, workloads.Arg{})
					if err != nil {
						panic(err)
					}
					lat.Add(l)
				})
			}
			wg.Wait(p)
			_, peak, outs, _ = a.Stats()
			a.Close(p)
		})
		return lat, peak, outs
	}
	for _, tc := range []struct {
		label string
		max   int
	}{{"fixed pool (max=1)", 1}, {"autoscaled (max=16)", 16}} {
		lat, peak, outs := runBurst(tc.max)
		t.AddRow(tc.label, fmt.Sprintf("%d", peak),
			fd(lat.Percentile(50)), fd(lat.Max()), fmt.Sprintf("%d", outs))
	}
	return []*metrics.Table{t}
}

// runCaseGNN adds the §2.4 GNN aggregation kernel and compares the
// CPU-only execution (Dorylus today) with the GPU profile Molecule enables.
func runCaseGNN() []*metrics.Table {
	t := &metrics.Table{
		Title:  "GNN neighborhood-aggregation step, 64K vertices",
		Header: []string{"profile", "step latency", "speedup"},
	}
	gnn := &workloads.Function{
		Name: "gnn-aggregate", Lang: lang.Python,
		ExecCPU:   48 * time.Millisecond, // sparse matmul on CPU
		DepImport: 220 * time.Millisecond,
		ArgBytes:  16 << 20, ResultBytes: 4 << 20,
		GPUKernel: 2500 * time.Microsecond,
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{GPUs: 1}, molecule.DefaultOptions())
		rt.Registry.Add(gnn)
		if err := rt.Deploy(p, "gnn-aggregate",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.GPU)); err != nil {
			panic(err)
		}
		gpu := rt.Machine.PUsOfKind(hw.GPU)[0].ID
		cpu, err := measureWarm(p, rt, "gnn-aggregate", molecule.InvokeOptions{PU: 0})
		if err != nil {
			panic(err)
		}
		g, err := measureWarm(p, rt, "gnn-aggregate", molecule.InvokeOptions{PU: gpu})
		if err != nil {
			panic(err)
		}
		t.AddRow("CPU (Dorylus today)", fd(cpu.Handler), "1.00x")
		t.AddRow("GPU via runG", fd(g.Handler), fr(float64(cpu.Handler)/float64(g.Handler)))
	})
	return []*metrics.Table{t}
}

// runAblPricing invokes the same function on each PU profile and reports
// the latency/charge trade-off.
func runAblPricing() []*metrics.Table {
	t := &metrics.Table{
		Title:  "mscale on each profile: what the user pays vs what they wait",
		Note:   "rates per §4.1 ordering: DPU cheapest, CPU middle, GPU/FPGA premium",
		Header: []string{"profile", "rate/ms", "warm latency", "billed", "charge"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1, FPGAs: 1, GPUs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "mscale",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU),
			molecule.DefaultProfile(hw.FPGA), molecule.DefaultProfile(hw.GPU)); err != nil {
			panic(err)
		}
		for _, pu := range rt.Machine.PUs() {
			res, err := measureWarm(p, rt, "mscale", molecule.InvokeOptions{PU: pu.ID})
			if err != nil {
				panic(err)
			}
			entries := rt.Billing().Entries()
			e := entries[len(entries)-1]
			pr := molecule.DefaultProfile(pu.Kind)
			t.AddRow(pu.Kind.String(), fmt.Sprintf("%.1f", pr.PricePerMs),
				fd(res.Total), fmt.Sprintf("%dms", e.BilledMs), fmt.Sprintf("%.2f", e.Charge))
		}
	})
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-throughput",
		Title: "Ablation: goodput and tail latency vs offered load",
		Paper: "the machine saturates gracefully; DPUs extend the service region",
		Run:   runAblThroughput,
	})
}

// runAblThroughput sweeps the offered rate against a capacity-capped
// machine and reports goodput and tail latency.
func runAblThroughput() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Offered load sweep (pyaes, host capped at 8 concurrent instances, 5s)",
		Header: []string{"offered req/s", "served", "rejected", "p50", "p99"},
	}
	for _, rate := range []float64{25, 100, 400, 800} {
		var stats *loadgen.Stats
		sandboxed(func(p *sim.Proc) {
			opts := molecule.DefaultOptions()
			rt := newMolecule(p, hw.Config{}, opts)
			rt.SetCapacity(0, 8)
			if err := rt.Deploy(p, "pyaes"); err != nil {
				panic(err)
			}
			var err error
			stats, err = loadgen.Run(p, rt, loadgen.Config{
				Seed: 11, Functions: []string{"pyaes"},
				RatePerSec: rate, Duration: 5 * time.Second,
			})
			if err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%d", stats.Requests-stats.Errors),
			fmt.Sprintf("%d", stats.Errors),
			fd(stats.Latency.Percentile(50)), fd(stats.Latency.Percentile(99)))
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "case-util",
		Title: "Representative case: accelerator utilization via fine-grained sharing (§2.3)",
		Paper: "serverless multiplexing lifts accelerator utilization vs a dedicated tenant",
		Run:   runCaseUtil,
	})
}

// runCaseUtil compares accelerator work served over a fixed window when the
// device is dedicated to one tenant vs shared by four serverless functions
// through the vectorized image: the same fabric does several tenants' work.
func runCaseUtil() []*metrics.Table {
	const window = 5 * time.Second
	t := &metrics.Table{
		Title:  "FPGA work served over a 5s window (20 req/s per function)",
		Header: []string{"scenario", "requests", "device busy", "window utilization", "vs dedicated"},
	}
	scenario := func(fns []string) (reqs int, busy time.Duration) {
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
			for _, fn := range fns {
				if err := rt.Deploy(p, fn, molecule.DefaultProfile(hw.FPGA)); err != nil {
					panic(err)
				}
			}
			fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
			stats, err := loadgen.Run(p, rt, loadgen.Config{
				Seed: 5, Functions: fns,
				RatePerSec: 20 * float64(len(fns)),
				Duration:   window,
			})
			if err != nil {
				panic(err)
			}
			reqs = stats.Requests
			for _, n := range rt.Snapshot() {
				if n.PU == fpga {
					busy = n.Busy
				}
			}
		})
		return
	}
	oneReqs, oneBusy := scenario([]string{"vmult"})
	t.AddRow("dedicated tenant (1 function)", fmt.Sprintf("%d", oneReqs),
		fd(oneBusy), fmt.Sprintf("%.1f%%", 100*float64(oneBusy)/float64(window)), "1.00x")
	manyReqs, manyBusy := scenario([]string{"vmult", "matrix-comput", "anti-moneyl", "madd"})
	t.AddRow("serverless sharing (4 tenants)", fmt.Sprintf("%d", manyReqs),
		fd(manyBusy), fmt.Sprintf("%.1f%%", 100*float64(manyBusy)/float64(window)),
		fr(float64(manyBusy)/float64(oneBusy)))
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "abl-slo",
		Title: "Ablation: deadline/price-driven profile selection (§4.1)",
		Paper: "multi-setting functions: the platform picks the cheapest profile that meets the deadline",
		Run:   runAblSLO,
	})
}

func runAblSLO() []*metrics.Table {
	t := &metrics.Table{
		Title:  "gzip(50MB) deployed on CPU and FPGA: deadline and objective decide",
		Header: []string{"deadline", "objective", "chosen", "estimate", "measured", "charge"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "gzip-compression",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			panic(err)
		}
		arg := workloads.Arg{Bytes: 50 << 20}
		// Warm the CPU path so its estimate is steady-state.
		rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: 0, Arg: arg})
		cases := []struct {
			deadline time.Duration
			obj      molecule.SLOObjective
			objName  string
		}{
			{0, molecule.MinimizeRate, "min rate"},
			{0, molecule.MinimizeCharge, "min charge"},
			{10 * time.Second, molecule.MinimizeRate, "min rate"},
			{time.Second, molecule.MinimizeRate, "min rate"},
			{time.Second, molecule.MinimizeCharge, "min charge"},
		}
		for _, c := range cases {
			before := rt.Billing().Total()
			res, kind, est, err := rt.InvokeWithSLO(p, "gzip-compression",
				molecule.SLOOptions{Deadline: c.deadline, Objective: c.obj, Arg: arg})
			if err != nil {
				panic(err)
			}
			label := "none"
			if c.deadline > 0 {
				label = c.deadline.String()
			}
			t.AddRow(label, c.objName, kind.String(), fd(est), fd(res.Total),
				fmt.Sprintf("%.0f", rt.Billing().Total()-before))
		}
	})
	return []*metrics.Table{t}
}
