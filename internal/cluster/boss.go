// The boss/worker control plane: the cluster-scale version of the Gateway.
//
// A Boss owns N simulated machines, each a full heterogeneous computer —
// its own hw.Machine, XPU shim, and Molecule runtime — living on its own
// sim.Sharded event domain, connected by a hw.Interconnect. Domain 0 is
// the boss itself: clients, routing state, and the admission queue live
// there, and every boss↔machine interaction is an interconnect message
// that pays the cross-machine link's latency. Because the interconnect is
// the only cross-domain edge, the whole cluster runs under the
// conservative windowed driver at any OS worker count with byte-identical
// results.
//
// Routing (the paper's Fig 6 global manager, scaled out):
//   - warm-instance affinity: a rendezvous hash over the live eligible
//     machines gives every function a stable home, so repeat invocations
//     land where their warm instances are;
//   - work stealing: when the home machine is saturated, the request is
//     stolen by the least-loaded eligible machine with headroom instead of
//     erroring;
//   - central queue: when every eligible machine is saturated, requests
//     queue FIFO at the boss and drain as completions free slots;
//   - chains: placed on one machine whenever possible (the interconnect's
//     ms-scale base latency dwarfs the µs-scale intra-machine links — the
//     hw model's asymmetry), and only split into contiguous segments
//     across machines when no single machine has every required PU kind.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Message sizes for boss↔machine interconnect traffic: a request envelope,
// a reply envelope, and a chain's intermediate payload handed from one
// machine to the next.
const (
	requestBytes      = 1 << 10
	replyBytes        = 1 << 9
	intermediateBytes = 1 << 12
)

// Node is one worker machine of a Boss cluster: a shard domain owning its
// own hardware and Molecule runtime. Boss-side fields (inflight, draining,
// down, counters) are only touched from domain 0; machine-side fields
// (deployed, deploying) only from the node's own domain.
type Node struct {
	Domain int // shard domain index (boss is domain 0)
	Env    *sim.Env
	HW     *hw.Machine
	RT     *molecule.Runtime

	kinds    kindMask
	capacity int // boot-time snapshot of RT.Capacity()

	// Boss-side scheduling state.
	inflight int
	draining bool
	down     bool
	served   int // requests completed here
	stolen   int // requests that landed here via work stealing

	// Machine-side deployment state.
	regs      map[string][]molecule.Profile // kind-filtered, written before Run
	deployed  map[string]bool
	deploying map[string]*sim.WaitGroup

	// Machine-side admission state (the Gateway's epoch queue, local to
	// this machine): a request that hits ErrNoCapacity parks here and
	// retries when a local completion frees an instance slot, instead of
	// bouncing back to the boss. FIFO-fair against the warm pool and free
	// of the cross-machine round trip.
	active  int                   // local execs inside an RT call
	epoch   int                   // bumped on every successful completion
	waiters []*sim.Chan[struct{}] // parked local requests
}

// ID returns the node's worker index (0-based; domain minus one).
func (n *Node) ID() int { return n.Domain - 1 }

// Inflight reports requests dispatched to the node but not yet completed.
func (n *Node) Inflight() int { return n.inflight }

// Served reports requests completed by the node.
func (n *Node) Served() int { return n.served }

// Stolen reports requests that landed here via work stealing.
func (n *Node) Stolen() int { return n.stolen }

// Down reports whether the boss has marked the node failed.
func (n *Node) Down() bool { return n.down }

// Draining reports whether the node is administratively excluded from
// routing (Drain without a failure).
func (n *Node) Draining() bool { return n.draining }

// Capacity reports the node's boot-time instance-slot snapshot — the
// boss's admission window.
func (n *Node) Capacity() int { return n.capacity }

// hasRoom is the boss's admission window for a node: requests dispatched
// but not completed, against the boot-time capacity snapshot. The boss
// never reads the machine's runtime state during a run (it lives in
// another domain); inflight-vs-capacity is its entire load model.
func (n *Node) hasRoom() bool { return n.capacity > 0 && n.inflight < n.capacity }

// BossConfig sizes a cluster.
type BossConfig struct {
	// Machines is the worker machine count (≥1).
	Machines int
	// HW configures every machine (homogeneous fleet; heterogeneous
	// fleets use AddMachineConfigs in a later iteration).
	HW hw.Config
	// Opts configures every machine's Molecule runtime.
	Opts molecule.Options
	// Link is the cross-machine interconnect; zero value selects the
	// standard datacenter network (params.NetworkBaseLatency/Bandwidth).
	Link hw.Link
	// Capacity, when positive, overrides every general-purpose PU's
	// instance capacity — the scaled-down-cluster knob for experiments
	// that need saturation without millions of requests.
	Capacity int
}

// reply carries a completed request's outcome back to the submitting
// client process.
type reply struct {
	res     molecule.Result
	cres    molecule.ChainResult
	machine int
	err     error
}

// chainSeg is one contiguous run of chain functions placed on one node.
type chainSeg struct {
	node  *Node
	names []string
}

// request is one unit of routed work. Boss-side fields only; execution
// state crosses domains by value inside interconnect closures.
type request struct {
	fn    string
	opts  molecule.InvokeOptions
	chain []string
	copts molecule.ChainOptions
	plan  []chainSeg

	attempts int // failover budget: distinct placements tried
	requeues int // capacity-requeue budget (see maxRequeues)
	done     *sim.Chan[reply]
}

// maxRequeues bounds how often one request may bounce dispatch → machine
// ErrNoCapacity → central queue. Machine-level eviction makes capacity
// rejections transient, so real traffic requeues at most a handful of
// times; the bound is the deterministic backstop that turns any residual
// pathological cycle into a visible error instead of a livelock.
const maxRequeues = 64

func (r *request) slots() int {
	if r.chain != nil {
		return len(r.chain)
	}
	return 1
}

// Boss is the cluster-scale global manager: it owns the sharded group, the
// interconnect, and N worker machines, and routes every request from
// domain 0.
type Boss struct {
	Sharded  *sim.Sharded
	IC       *hw.Interconnect
	Env      *sim.Env // domain 0: boss + clients
	Registry *workloads.Registry

	nodes    []*Node
	funcs    map[string]*registration
	inflight int

	queue      []*request // central FIFO: every eligible machine saturated
	queuedPeak int
	stolen     int
}

// NewBoss builds a cluster of cfg.Machines worker machines, boots every
// machine's runtime (running the group to quiescence once), and snapshots
// each machine's capacity and PU kinds into the boss's routing state.
func NewBoss(cfg BossConfig) (*Boss, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: boss needs at least 1 machine, got %d", cfg.Machines)
	}
	link := cfg.Link
	if link == (hw.Link{}) {
		link = hw.Link{Kind: hw.LinkNetwork, BaseLat: params.NetworkBaseLatency, Bandwith: params.NetworkBandwidth}
	}
	sh := sim.NewSharded(cfg.Machines + 1)
	b := &Boss{
		Sharded:  sh,
		IC:       hw.NewInterconnect(sh, link),
		Env:      sh.Domain(0),
		Registry: workloads.NewRegistry(),
		funcs:    make(map[string]*registration),
	}
	bootErrs := make([]error, cfg.Machines)
	for i := 0; i < cfg.Machines; i++ {
		n := &Node{
			Domain:    i + 1,
			Env:       sh.Domain(i + 1),
			regs:      make(map[string][]molecule.Profile),
			deployed:  make(map[string]bool),
			deploying: make(map[string]*sim.WaitGroup),
		}
		b.nodes = append(b.nodes, n)
		idx := i
		n.Env.Spawn("boot", func(p *sim.Proc) {
			n.HW = hw.Build(n.Env, cfg.HW)
			rt, err := molecule.New(p, n.HW, workloads.NewRegistry(), cfg.Opts)
			if err != nil {
				bootErrs[idx] = err
				return
			}
			n.RT = rt
			if cfg.Capacity > 0 {
				for _, pu := range n.HW.PUs() {
					if pu.Kind.GeneralPurpose() {
						rt.SetCapacity(pu.ID, cfg.Capacity)
					}
				}
			}
		})
	}
	sh.Run(1) // boot to quiescence, single worker: nothing to parallelize yet
	for i, n := range b.nodes {
		if bootErrs[i] != nil {
			return nil, fmt.Errorf("cluster: machine %d boot: %w", i, bootErrs[i])
		}
		n.kinds = machineKinds(n.HW)
		n.capacity = n.RT.Capacity()
	}
	return b, nil
}

// Nodes returns the cluster's worker machines.
func (b *Boss) Nodes() []*Node { return b.nodes }

// Inflight reports requests inside the cluster (dispatched or queued but
// not yet replied). Zero when quiescent.
func (b *Boss) Inflight() int { return b.inflight + len(b.queue) }

// Queued reports requests parked in the central queue right now.
func (b *Boss) Queued() int { return len(b.queue) }

// QueuedPeak reports the central queue's high-water mark.
func (b *Boss) QueuedPeak() int { return b.queuedPeak }

// Stolen reports requests that were routed away from their affinity home
// because it was saturated.
func (b *Boss) Stolen() int { return b.stolen }

// Run drives the whole cluster to quiescence on the given OS worker count
// (0 = GOMAXPROCS) and returns the final virtual time. Results are
// byte-identical at every worker count.
func (b *Boss) Run(workers int) sim.Time {
	return b.Sharded.Run(workers)
}

// Register records a function with the boss and pushes its kind-filtered
// profile list to every machine. Call before Run — registrations are
// setup-time state shared with the machine domains.
func (b *Boss) Register(funcName string, profiles ...molecule.Profile) error {
	if _, err := b.Registry.Get(funcName); err != nil {
		return err
	}
	if len(profiles) == 0 {
		profiles = []molecule.Profile{molecule.DefaultProfile(hw.CPU)}
	}
	var mask kindMask
	for _, pr := range profiles {
		mask |= maskOf(pr.Kind)
	}
	b.funcs[funcName] = &registration{profiles: profiles, mask: mask}
	for _, n := range b.nodes {
		var local []molecule.Profile
		for _, pr := range profiles {
			if n.kinds.has(pr.Kind) {
				local = append(local, pr)
			}
		}
		if len(local) > 0 {
			n.regs[funcName] = local
		}
	}
	return nil
}

// Drain excludes a machine from routing; Undrain re-admits it. Both pump
// the central queue, since the eligible set changed.
func (b *Boss) Drain(worker int) error {
	if worker < 0 || worker >= len(b.nodes) {
		return fmt.Errorf("cluster: no machine %d", worker)
	}
	b.nodes[worker].draining = true
	b.pump()
	return nil
}

// Undrain re-admits a drained machine to routing.
func (b *Boss) Undrain(worker int) error {
	if worker < 0 || worker >= len(b.nodes) {
		return fmt.Errorf("cluster: no machine %d", worker)
	}
	b.nodes[worker].draining = false
	b.pump()
	return nil
}

// Readmit clears a machine's down mark after the operator revived it
// (faults.Revive), letting routing use it again.
func (b *Boss) Readmit(worker int) error {
	if worker < 0 || worker >= len(b.nodes) {
		return fmt.Errorf("cluster: no machine %d", worker)
	}
	b.nodes[worker].down = false
	b.pump()
	return nil
}

// rendezvous scores (fn, node) with a 64-bit FNV-1a hash: every function
// gets a stable, deterministic preference order over machines, so repeat
// invocations land on their warm instances (highest-random-weight
// hashing). Seeded data only — no global randomness — so the detrand
// invariant holds.
func rendezvous(fn string, domain int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(fn))
	h.Write([]byte{byte(domain), byte(domain >> 8)})
	return h.Sum64()
}

// eligibleFor reports whether the node can run fn's registration at all.
func (b *Boss) eligibleFor(n *Node, mask kindMask) bool {
	return !n.draining && !n.down && n.kinds&mask != 0
}

// routeOne picks the node for a single-function request: affinity home if
// it has room; else steal to the least-loaded eligible node with room;
// else nil (caller queues). The error is non-nil only when no live
// eligible node exists at all.
func (b *Boss) routeOne(fn string) (*Node, bool, error) {
	r, ok := b.funcs[fn]
	if !ok {
		return nil, false, fmt.Errorf("cluster: function %q not registered", fn)
	}
	var home *Node
	var homeScore uint64
	var spill *Node
	spillLoad := 0.0
	any := false
	for _, n := range b.nodes {
		if !b.eligibleFor(n, r.mask) {
			continue
		}
		any = true
		if s := rendezvous(fn, n.Domain); home == nil || s > homeScore {
			home, homeScore = n, s
		}
		if !n.hasRoom() {
			continue
		}
		l := float64(n.inflight) / float64(n.capacity)
		if spill == nil || l < spillLoad {
			spill, spillLoad = n, l
		}
	}
	if !any {
		return nil, false, fmt.Errorf("cluster: no eligible machine for %q", fn)
	}
	if home != nil && home.hasRoom() {
		return home, false, nil
	}
	if spill != nil {
		return spill, true, nil // work stealing: home saturated
	}
	return nil, false, nil // all saturated: queue
}

// planChain places a chain: one machine whenever some eligible machine
// supports every function (the interconnect's base latency is ~10³× the
// intra-machine links, so locality always wins — the hw asymmetry made
// explicit), otherwise contiguous maximal segments, each on the machine
// whose intra-machine host links reach the segment's PU kinds cheapest
// (hw.Machine.HostLinkLat), tie-broken by load then domain order.
func (b *Boss) planChain(names []string) ([]chainSeg, error) {
	masks := make([]kindMask, len(names))
	for i, fn := range names {
		r, ok := b.funcs[fn]
		if !ok {
			return nil, fmt.Errorf("cluster: function %q not registered", fn)
		}
		masks[i] = r.mask
	}
	// Locality first: the affinity-preferred machine among those eligible
	// for the whole chain.
	if n := b.wholeChainHome(names, masks); n != nil {
		return []chainSeg{{node: n, names: names}}, nil
	}
	// Split: greedy maximal contiguous segments. Each segment extends
	// while any live machine supports all its functions; every cut pays
	// one interconnect hop.
	var plan []chainSeg
	for start := 0; start < len(names); {
		end := start
		var candidates []*Node
		for end < len(names) {
			next := b.segmentHosts(masks[start : end+1])
			if len(next) == 0 {
				break
			}
			candidates = append(candidates[:0], next...)
			end++
		}
		if end == start {
			return nil, fmt.Errorf("cluster: no machine can run %q", names[start])
		}
		plan = append(plan, chainSeg{node: b.bestSegmentHost(candidates, masks[start:end]), names: names[start:end]})
		start = end
	}
	return plan, nil
}

// wholeChainHome returns the rendezvous-preferred machine eligible for
// every chain function, preferring machines with room, or nil.
func (b *Boss) wholeChainHome(names []string, masks []kindMask) *Node {
	var home, fallback *Node
	var homeScore, fbScore uint64
	for _, n := range b.nodes {
		if n.draining || n.down {
			continue
		}
		ok := true
		for _, m := range masks {
			if n.kinds&m == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s := rendezvous(names[0], n.Domain)
		if fallback == nil || s > fbScore {
			fallback, fbScore = n, s
		}
		if !n.hasRoom() {
			continue
		}
		if home == nil || s > homeScore {
			home, homeScore = n, s
		}
	}
	if home != nil {
		return home
	}
	return fallback // saturated everywhere: locality still beats splitting
}

// segmentHosts returns the live machines supporting every mask.
func (b *Boss) segmentHosts(masks []kindMask) []*Node {
	var out []*Node
	for _, n := range b.nodes {
		if n.draining || n.down {
			continue
		}
		ok := true
		for _, m := range masks {
			if n.kinds&m == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	return out
}

// bestSegmentHost scores candidate hosts for a chain segment by the sum of
// their cheapest host→kind link latencies over the segment's required
// kinds — the intra-machine side of the asymmetry — then by load, then by
// domain order (determinism).
func (b *Boss) bestSegmentHost(candidates []*Node, masks []kindMask) *Node {
	best := candidates[0]
	bestCost, bestLoad := b.segmentCost(best, masks), nodeLoad(best)
	for _, n := range candidates[1:] {
		c, l := b.segmentCost(n, masks), nodeLoad(n)
		if c < bestCost || (c == bestCost && l < bestLoad) {
			best, bestCost, bestLoad = n, c, l
		}
	}
	return best
}

func nodeLoad(n *Node) float64 {
	if n.capacity == 0 {
		return 1
	}
	return float64(n.inflight) / float64(n.capacity)
}

// segmentCost sums the node's cheapest host-link latency to each required
// kind mask (taking the cheapest kind the mask admits on this machine).
func (b *Boss) segmentCost(n *Node, masks []kindMask) time.Duration {
	var total time.Duration
	for _, m := range masks {
		best, found := time.Duration(0), false
		for _, pu := range n.HW.PUs() {
			if !m.has(pu.Kind) {
				continue
			}
			if lat, ok := n.HW.HostLinkLat(pu.Kind); ok {
				if !found || lat < best {
					best, found = lat, true
				}
			}
		}
		if found {
			total += best
		}
	}
	return total
}

// Invoke submits one request from a client process on the boss domain and
// blocks until its reply. It satisfies loadgen.Invoker, so the same
// traffic model drives a single runtime or the whole cluster.
func (b *Boss) Invoke(p *sim.Proc, funcName string, opts molecule.InvokeOptions) (molecule.Result, error) {
	res, _, err := b.InvokeDetailed(p, funcName, opts)
	return res, err
}

// InvokeDetailed is Invoke plus the worker index that served the request.
func (b *Boss) InvokeDetailed(p *sim.Proc, funcName string, opts molecule.InvokeOptions) (molecule.Result, int, error) {
	ingress(p) // client → boss network hop
	req := &request{fn: funcName, opts: opts, done: sim.NewChan[reply](b.Env, 1)}
	if err := b.submit(req); err != nil {
		return molecule.Result{}, -1, err
	}
	rep, _ := req.done.Recv(p)
	ingress(p) // boss → client
	return rep.res, rep.machine, rep.err
}

// InvokeChain submits a chain, placed for locality and split across
// machines only when no single machine can run it. Satisfies
// loadgen.Invoker.
func (b *Boss) InvokeChain(p *sim.Proc, names []string, opts molecule.ChainOptions) (molecule.ChainResult, error) {
	if len(names) == 0 {
		return molecule.ChainResult{}, fmt.Errorf("cluster: empty chain")
	}
	ingress(p)
	req := &request{chain: names, copts: opts, done: sim.NewChan[reply](b.Env, 1)}
	if err := b.submit(req); err != nil {
		return molecule.ChainResult{}, err
	}
	rep, _ := req.done.Recv(p)
	ingress(p)
	return rep.cres, rep.err
}

// submit routes a request or queues it. Boss-domain only. A non-nil error
// means the request can never run (unregistered, or no live machine has
// the kinds).
func (b *Boss) submit(req *request) error {
	if req.chain != nil {
		plan, err := b.planChain(req.chain)
		if err != nil {
			return err
		}
		req.plan = plan
		b.dispatchChain(req)
		return nil
	}
	n, stolen, err := b.routeOne(req.fn)
	if err != nil {
		return err
	}
	if n == nil {
		b.enqueue(req)
		// A queue pumped only by completions strands the request when
		// nothing is inflight (zero-capacity cluster): pump now so the
		// saturated-idle case fails deterministically instead of parking
		// the client until quiescence.
		b.pump()
		return nil
	}
	if stolen {
		n.stolen++
		b.stolen++
	}
	b.dispatchOne(req, n)
	return nil
}

func (b *Boss) enqueue(req *request) {
	b.queue = append(b.queue, req)
	if len(b.queue) > b.queuedPeak {
		b.queuedPeak = len(b.queue)
	}
}

// dispatchOne sends a single-function request to node n over the
// interconnect.
func (b *Boss) dispatchOne(req *request, n *Node) {
	n.inflight++
	b.inflight++
	//lint:owned request handoff: req travels with the message and is next touched only by the destination node's exec callback; b's fields are mutated only by deliveries on the boss domain
	b.IC.Send(b.Env, n.Domain, requestBytes, func() {
		n.Env.Spawn("exec-"+req.fn, func(wp *sim.Proc) {
			res, err := n.invokeLocal(wp, req.fn, req.opts)
			//lint:owned reply to the boss: res/err are finalized before the send and b mutates its own state only on delivery in its domain
			b.IC.Send(n.Env, 0, replyBytes, func() {
				b.completeOne(req, n, res, err)
			})
		})
	})
}

// wakeLocal releases every parked request to re-check admission.
func (n *Node) wakeLocal() {
	ws := n.waiters
	n.waiters = nil
	for _, ch := range ws {
		ch.TrySend(struct{}{})
	}
}

// awaitLocal parks the request until a local completion advances the
// epoch. It reports false — give up — when nothing else is running on the
// machine, so no completion can ever free a slot. Waiters woken without an
// epoch advance re-park (wake-all is only an invitation to re-check), and
// a give-up cascades the wake so other parked requests also notice.
func (n *Node) awaitLocal(wp *sim.Proc) bool {
	seen := n.epoch
	for n.epoch == seen {
		if n.active == 0 {
			n.wakeLocal()
			return false
		}
		ch := sim.NewChan[struct{}](n.Env, 1)
		n.waiters = append(n.waiters, ch)
		ch.Recv(wp)
	}
	return true
}

// attemptLocal wraps one RT attempt with the admission bookkeeping: track
// active execs, bump the epoch on success, and wake parked requests after
// every attempt (success frees an instance; failure lets waiters re-check
// the give-up guard).
func attemptLocal[T any](n *Node, call func() (T, error)) (T, error) {
	n.active++
	res, err := call()
	n.active--
	if err == nil {
		n.epoch++
	}
	n.wakeLocal()
	return res, err
}

// invokeLocal runs one function on the node: machine-side deploy-on-first-
// use (deduplicated across concurrent requests), then the local runtime,
// parking on the machine's admission queue while it is at capacity.
func (n *Node) invokeLocal(wp *sim.Proc, fn string, opts molecule.InvokeOptions) (molecule.Result, error) {
	if err := n.ensureDeployedLocal(wp, fn); err != nil {
		return molecule.Result{}, err
	}
	for {
		res, err := attemptLocal(n, func() (molecule.Result, error) {
			return n.RT.Invoke(wp, fn, opts)
		})
		if err != nil && errors.Is(err, molecule.ErrNoCapacity) && n.awaitLocal(wp) {
			continue
		}
		return res, err
	}
}

// ensureDeployedLocal deploys fn on first use; concurrent requests for the
// same function wait for the in-progress deploy instead of re-deploying.
func (n *Node) ensureDeployedLocal(wp *sim.Proc, fn string) error {
	for {
		if n.deployed[fn] {
			return nil
		}
		if wg := n.deploying[fn]; wg != nil {
			wg.Wait(wp)
			continue
		}
		profiles := n.regs[fn]
		if len(profiles) == 0 {
			return fmt.Errorf("cluster: %q not deployable on machine %d", fn, n.ID())
		}
		wg := sim.NewWaitGroup(n.Env)
		wg.Add(1)
		n.deploying[fn] = wg
		err := n.RT.Deploy(wp, fn, profiles...)
		if err == nil {
			n.deployed[fn] = true
		}
		delete(n.deploying, fn)
		wg.Done()
		return err
	}
}

// dispatchChain charges every planned node's inflight window up front and
// starts segment 0; segments hop machine→machine directly over the
// interconnect, and only the final segment (or the first error) reports
// back to the boss.
func (b *Boss) dispatchChain(req *request) {
	for _, seg := range req.plan {
		seg.node.inflight += len(seg.names)
		b.inflight += len(seg.names)
	}
	first := req.plan[0].node
	//lint:owned chain kickoff: req ownership moves to segment 0's machine with the message; the boss touches it again only in the completion reply
	b.IC.Send(b.Env, first.Domain, requestBytes, func() {
		b.execSegment(req, 0, molecule.ChainResult{})
	})
}

// execSegment runs on req.plan[idx].node's domain: execute the segment
// locally, then either hop to the next segment's machine (charging the
// intermediate transfer on the chain's latency) or reply to the boss.
func (b *Boss) execSegment(req *request, idx int, acc molecule.ChainResult) {
	seg := req.plan[idx]
	n := seg.node
	n.Env.Spawn("chainseg", func(wp *sim.Proc) {
		for _, fn := range seg.names {
			if err := n.ensureDeployedLocal(wp, fn); err != nil {
				//lint:owned chain reply: acc and req are dead on the sending machine after this send; the boss consumes them on delivery in its own domain
				b.IC.Send(n.Env, 0, replyBytes, func() { b.completeChain(req, n, acc, err) })
				return
			}
		}
		var res molecule.ChainResult
		var err error
		for {
			res, err = attemptLocal(n, func() (molecule.ChainResult, error) {
				return n.RT.InvokeChainWithPolicy(wp, seg.names, molecule.PlaceChainAffinity)
			})
			if err != nil && errors.Is(err, molecule.ErrNoCapacity) && n.awaitLocal(wp) {
				continue
			}
			break
		}
		if err != nil {
			//lint:owned chain reply: acc and req are dead on the sending machine after this send; the boss consumes them on delivery in its own domain
			b.IC.Send(n.Env, 0, replyBytes, func() { b.completeChain(req, n, acc, err) })
			return
		}
		acc.Total += res.Total
		acc.EdgeLatency = append(acc.EdgeLatency, res.EdgeLatency...)
		acc.ExecTotal += res.ExecTotal
		acc.ColdStarts += res.ColdStarts
		if idx+1 == len(req.plan) {
			//lint:owned chain reply: acc and req are dead on the sending machine after this send; the boss consumes them on delivery in its own domain
			b.IC.Send(n.Env, 0, replyBytes, func() { b.completeChain(req, n, acc, nil) })
			return
		}
		// Hand the intermediate result to the next segment's machine: one
		// interconnect hop, charged on the chain's own latency.
		hop := b.IC.TransferTime(intermediateBytes)
		acc.Total += hop
		acc.EdgeLatency = append(acc.EdgeLatency, hop)
		next := req.plan[idx+1].node
		//lint:owned segment hop: acc and req move to the next machine with the message; the sending segment never touches them again
		b.IC.Send(n.Env, next.Domain, intermediateBytes, func() {
			b.execSegment(req, idx+1, acc)
		})
	})
}

// retryable reports an error class the boss handles by failing the machine
// over: the runtime exhausted recovery (ErrUnavailable) or the PU is dead.
func retryable(err error) bool {
	return errors.Is(err, molecule.ErrUnavailable) || errors.Is(err, faults.ErrPUDown)
}

// completeOne finishes a single-function request on the boss domain
// (scheduler context — never blocks): failover on machine death, requeue
// on capacity races, reply otherwise; then pump the queue.
func (b *Boss) completeOne(req *request, n *Node, res molecule.Result, err error) {
	n.inflight--
	b.inflight--
	switch {
	case err != nil && retryable(err) && req.attempts < len(b.nodes):
		// The machine is unhealthy: mark it down and try the request
		// elsewhere. Readmit() re-admits after a revive.
		n.down = true
		req.attempts++
		if rerr := b.resubmitOne(req); rerr != nil {
			req.done.TrySend(reply{machine: n.ID(), err: err})
		}
	case err != nil && errors.Is(err, molecule.ErrNoCapacity) && req.requeues < maxRequeues:
		// Admission raced a cold-start burst on the machine: park the
		// request centrally; completions pump it back out.
		req.requeues++
		b.enqueue(req)
	case err != nil:
		n.served++
		req.done.TrySend(reply{machine: n.ID(), err: err})
	default:
		n.served++
		req.done.TrySend(reply{res: res, machine: n.ID()})
	}
	b.pump()
}

// resubmitOne re-routes a failed-over request away from down machines.
func (b *Boss) resubmitOne(req *request) error {
	n, stolen, err := b.routeOne(req.fn)
	if err != nil {
		return err
	}
	if n == nil {
		b.enqueue(req)
		return nil
	}
	if stolen {
		n.stolen++
		b.stolen++
	}
	b.dispatchOne(req, n)
	return nil
}

// completeChain finishes a chain request: release every planned node's
// window, then failover/reply like completeOne.
func (b *Boss) completeChain(req *request, n *Node, acc molecule.ChainResult, err error) {
	for _, seg := range req.plan {
		seg.node.inflight -= len(seg.names)
		b.inflight -= len(seg.names)
	}
	switch {
	case err != nil && retryable(err) && req.attempts < len(b.nodes):
		n.down = true
		req.attempts++
		if plan, perr := b.planChain(req.chain); perr == nil {
			req.plan = plan
			b.dispatchChain(req)
		} else {
			req.done.TrySend(reply{machine: n.ID(), err: err})
		}
	case err != nil && errors.Is(err, molecule.ErrNoCapacity) && req.requeues < maxRequeues:
		req.requeues++
		b.enqueue(req)
	case err != nil:
		req.done.TrySend(reply{machine: n.ID(), err: err})
	default:
		n.served++
		req.done.TrySend(reply{cres: acc, machine: n.ID()})
	}
	b.pump()
}

// pump drains the central queue while machines have room. When the queue
// is non-empty but nothing is inflight and nothing has room, the queued
// requests can never be served — fail them rather than deadlock.
func (b *Boss) pump() {
	for len(b.queue) > 0 {
		req := b.queue[0]
		var err error
		var routed bool
		if req.chain != nil {
			// Chains re-plan at pump time (machines may have changed).
			if plan, perr := b.planChain(req.chain); perr != nil {
				err = perr
			} else if head := plan[0].node; head.hasRoom() {
				b.queue = b.queue[1:]
				req.plan = plan
				b.dispatchChain(req)
				routed = true
			}
		} else {
			var n *Node
			var stolen bool
			n, stolen, err = b.routeOne(req.fn)
			if err == nil && n != nil {
				b.queue = b.queue[1:]
				if stolen {
					n.stolen++
					b.stolen++
				}
				b.dispatchOne(req, n)
				routed = true
			}
		}
		if err != nil {
			// The request became unservable (e.g. its only machines died).
			b.queue = b.queue[1:]
			req.done.TrySend(reply{machine: -1, err: err})
			continue
		}
		if !routed {
			if b.inflight == 0 {
				// Nothing running, nothing admissible: fail the whole queue
				// deterministically rather than strand the clients.
				for _, q := range b.queue {
					q.done.TrySend(reply{machine: -1, err: errClusterSaturated})
				}
				b.queue = nil
			}
			return
		}
	}
}
