package storage

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func rig() (*sim.Env, *hw.Machine, *Store) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	return env, m, New(env, m, 0)
}

func TestPutGetRoundTrip(t *testing.T) {
	env, _, s := rig()
	env.Spawn("x", func(p *sim.Proc) {
		if err := s.Put(p, 0, Object{Key: "img", Data: []byte("pixels")}); err != nil {
			t.Fatal(err)
		}
		obj, err := s.Get(p, 0, "img")
		if err != nil {
			t.Fatal(err)
		}
		if string(obj.Data) != "pixels" {
			t.Errorf("data = %q", obj.Data)
		}
		gets, puts := s.Stats()
		if gets != 1 || puts != 1 {
			t.Errorf("stats = %d/%d", gets, puts)
		}
	})
	env.Run()
}

func TestErrors(t *testing.T) {
	env, _, s := rig()
	env.Spawn("x", func(p *sim.Proc) {
		if err := s.Put(p, 0, Object{}); err == nil {
			t.Error("empty key accepted")
		}
		if _, err := s.Get(p, 0, "missing"); err == nil {
			t.Error("missing object fetched")
		}
		if err := s.Delete(p, "missing"); err == nil {
			t.Error("missing object deleted")
		}
		s.Put(p, 0, Object{Key: "k", Size: 10})
		if err := s.Delete(p, "k"); err != nil {
			t.Error(err)
		}
		if len(s.List()) != 0 {
			t.Error("delete left the object listed")
		}
	})
	env.Run()
}

func TestRemoteAccessCostsMore(t *testing.T) {
	env, m, s := rig()
	dpu := m.PUsOfKind(hw.DPU)[0].ID
	var local, remote time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		s.Put(p, 0, Object{Key: "big", Size: 8 << 20})
		start := p.Now()
		s.Get(p, 0, "big")
		local = p.Now().Sub(start)
		start = p.Now()
		s.Get(p, dpu, "big")
		remote = p.Now().Sub(start)
	})
	env.Run()
	if remote <= local {
		t.Errorf("remote get (%v) not slower than local (%v)", remote, local)
	}
	// The difference is the RDMA transfer of 8MB.
	l, _ := m.LinkBetween(0, dpu)
	want := l.TransferTime(8 << 20)
	if diff := remote - local; diff != want {
		t.Errorf("remote extra = %v, want link transfer %v", diff, want)
	}
}

func TestSizeOverride(t *testing.T) {
	env, _, s := rig()
	var big, small time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		s.Put(p, 0, Object{Key: "meta", Size: 112 << 20}) // modeled, no bytes
		s.Put(p, 0, Object{Key: "tiny", Data: []byte{1}})
		start := p.Now()
		s.Get(p, 0, "meta")
		big = p.Now().Sub(start)
		start = p.Now()
		s.Get(p, 0, "tiny")
		small = p.Now().Sub(start)
	})
	env.Run()
	if big <= small {
		t.Errorf("112MB get (%v) not slower than 1B get (%v)", big, small)
	}
}

func TestMediaContention(t *testing.T) {
	env, _, s := rig()
	const size = 40 << 20 // 10ms media time each
	finishes := make([]sim.Time, 3)
	env.Spawn("seed", func(p *sim.Proc) {
		s.Put(p, 0, Object{Key: "o", Size: size})
		for i := 0; i < 3; i++ {
			i := i
			p.Env().Spawn("get", func(gp *sim.Proc) {
				if _, err := s.Get(gp, 0, "o"); err != nil {
					t.Error(err)
				}
				finishes[i] = gp.Now()
			})
		}
	})
	env.Run()
	// Media capacity 2: the third get waits for a slot.
	if !(finishes[2] > finishes[0]) {
		t.Errorf("media contention absent: finishes %v", finishes)
	}
}
