package molecule

import "errors"

// Stand-ins mirroring the real molecule acquire/release surface.

type Proc struct{ ID int }

type instance struct{ id int }

type Runtime struct{ warm []*instance }

func (rt *Runtime) acquire(p *Proc, name string) (*instance, error) {
	return &instance{}, nil
}

func (rt *Runtime) release(p *Proc, inst *instance) {}

func (rt *Runtime) destroy(p *Proc, inst *instance) {}

// AcquireHeld's own body transfers ownership with the return — no finding.
func (rt *Runtime) AcquireHeld(p *Proc, name string) (*instance, error) {
	return rt.acquire(p, name)
}

func (rt *Runtime) ReleaseHeld(p *Proc, inst *instance) { rt.release(p, inst) }

var errBusy = errors.New("busy")

func tooBusy() bool       { return false }
func use(_ []*instance)   {}
func park(_ *instance)    {}
func evicting() bool      { return false }
func fails(_ *Proc) error { return nil }

// ChainBuggy is the literal PR 8 InvokeChain shape: the cleanup defer is
// registered AFTER the acquire loop, so a mid-loop acquire error leaks
// every already-stored instance.
func ChainBuggy(rt *Runtime, p *Proc, names []string) error {
	insts := make([]*instance, len(names))
	for i, name := range names {
		inst, err := rt.acquire(p, name)
		if err != nil {
			return err
		}
		insts[i] = inst // want `releasepath: molecule instance "inst" stored into a container before its cleanup defer is registered`
	}
	defer func() {
		for _, inst := range insts {
			if inst != nil {
				rt.release(p, inst)
			}
		}
	}()
	use(insts)
	return nil
}

// ChainFixed registers the defer before the loop — the PR 8 fix shape.
func ChainFixed(rt *Runtime, p *Proc, names []string) error {
	insts := make([]*instance, len(names))
	defer func() {
		for _, inst := range insts {
			if inst != nil {
				rt.release(p, inst)
			}
		}
	}()
	for i, name := range names {
		inst, err := rt.acquire(p, name)
		if err != nil {
			return err
		}
		insts[i] = inst
	}
	use(insts)
	return nil
}

// Leaky releases on the happy path but not on the early bail-out.
func Leaky(rt *Runtime, p *Proc) error {
	inst, err := rt.acquire(p, "f") // want `releasepath: molecule instance "inst" acquired here can reach the return at`
	if err != nil {
		return err
	}
	if tooBusy() {
		return errBusy
	}
	rt.release(p, inst)
	return nil
}

// DoubleRelease is the PR 9 evict-vs-fork-error shape: the evicting branch
// destroys the instance, then the shared epilogue releases it again.
func DoubleRelease(rt *Runtime, p *Proc) error {
	inst, err := rt.acquire(p, "f")
	if err != nil {
		return err
	}
	if evicting() {
		rt.destroy(p, inst)
	}
	rt.release(p, inst) // want `releasepath: molecule instance "inst" released twice on a path`
	return nil
}

// Discarded results can never be released.
func Discard(rt *Runtime, p *Proc) {
	rt.acquire(p, "f") // want `releasepath: molecule instance result of repro/internal/molecule\.Runtime\.acquire discarded`
}

func DiscardBlank(rt *Runtime, p *Proc) error {
	_, err := rt.acquire(p, "f") // want `releasepath: molecule instance result of repro/internal/molecule\.Runtime\.acquire discarded`
	return err
}

// holder takes ownership: storing the instance into a fresh composite
// literal transfers it.
type holder struct{ inst *instance }

func TransferOK(rt *Runtime, p *Proc) (*holder, error) {
	inst, err := rt.acquire(p, "f")
	if err != nil {
		return nil, err
	}
	return &holder{inst: inst}, nil
}

// ReleaseOnEveryPath is the canonical correct shape, destroy included.
func ReleaseOnEveryPath(rt *Runtime, p *Proc) error {
	inst, err := rt.acquire(p, "f")
	if err != nil {
		return err
	}
	if ferr := fails(p); ferr != nil {
		rt.destroy(p, inst)
		return ferr
	}
	rt.release(p, inst)
	return nil
}

// HeldForever parks instances for the experiment's lifetime; the waiver
// records the non-local pairing.
func HeldForever(rt *Runtime, p *Proc) error {
	//lint:released fixture: density experiment holds the instance for the whole run
	inst, err := rt.acquire(p, "f")
	if err != nil {
		return err
	}
	park(inst)
	return nil
}

// A released-waiver on a line that acquires nothing is stale.
//lint:released the acquire this excused was deleted // want `stale //lint:released waiver: no tracked acquire on this line`
func nothingAcquired() {}
