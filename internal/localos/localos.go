// Package localos models the operating system running on one
// general-purpose processing unit (the host CPU or a DPU).
//
// Each OS instance is fully independent — its own PID space, FIFO namespace,
// namespaces/cgroups, and syscall cost model — so a machine with a host CPU
// and two DPUs is a genuine multi-OS system: the exact environment the
// paper's XPU-Shim exists to bridge. Nothing in this package can reach
// another OS instance; cross-PU interaction happens only through the
// hardware interconnect (internal/hw) driven by XPU-Shim (internal/xpu).
package localos

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/params"
	"repro/internal/sim"
)

// PID identifies a process within one OS instance.
type PID int

// Process is the OS-level bookkeeping for one process.
type Process struct {
	PID     PID
	Name    string
	AS      *mem.AddressSpace
	Threads int // live thread count (>=1)
	NS      *Namespace
	CG      *Cgroup
	exited  bool
}

// Exited reports whether the process has terminated.
func (pr *Process) Exited() bool { return pr.exited }

// Namespace is an isolation domain (a stand-in for the full set of Linux
// namespaces a container joins).
type Namespace struct {
	ID   int
	Name string
}

// Cgroup is a resource-control group.
type Cgroup struct {
	ID      int
	Name    string
	CPUSet  int // assigned cpuset width (cores)
	MemoryB int64
}

// CostModel carries the per-PU syscall latencies.
type CostModel struct {
	FIFOOp    time.Duration // one FIFO read or write
	ForkBase  time.Duration // COW fork of a single-threaded process
	SpawnBase time.Duration // fork+exec of a fresh program
	PageFault time.Duration // one COW/demand page fault
}

// CostsFor derives the cost model for a PU from the calibrated parameters.
func CostsFor(pu *hw.PU) CostModel {
	c := CostModel{
		FIFOOp:    params.FIFOOpCPU,
		ForkBase:  params.CforkOSForkTime,
		SpawnBase: params.ProcessSpawnTime,
		PageFault: 250 * time.Nanosecond,
	}
	if pu != nil && pu.Kind == hw.DPU {
		f := pu.StartupFactor
		if f <= 0 {
			f = params.DPUStartupPenalty
		}
		c.FIFOOp = params.FIFOOpDPU
		c.ForkBase = scale(c.ForkBase, f)
		c.SpawnBase = scale(c.SpawnBase, f)
		c.PageFault = scale(c.PageFault, f)
	}
	return c
}

func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// OS is one operating-system instance bound to a PU.
// FaultInjector lets a fault plan fail forks probabilistically. Declared
// consumer-side so localos need not import the faults package; *faults.Plan
// implements it.
type FaultInjector interface {
	ForkFault() error
}

type OS struct {
	Env   *sim.Env
	PU    *hw.PU
	Costs CostModel

	// Faults, when non-nil, is consulted on every Fork before any time is
	// charged. Nil keeps the fork path byte-identical.
	Faults FaultInjector

	nextPID PID
	nextNS  int
	nextCG  int
	procs   map[PID]*Process
	fifos   map[string]*FIFO
}

// New returns an OS instance for the given PU with its derived cost model.
func New(env *sim.Env, pu *hw.PU) *OS {
	return &OS{
		Env:   env,
		PU:    pu,
		Costs: CostsFor(pu),
		procs: make(map[PID]*Process),
		fifos: make(map[string]*FIFO),
	}
}

// Spawn creates a fresh process (fork+exec semantics), charging the spawn
// cost to the calling simulation process. The new process starts with an
// empty address space.
func (os *OS) Spawn(p *sim.Proc, name string) *Process {
	p.Sleep(os.Costs.SpawnBase)
	return os.newProcess(name, mem.NewAddressSpace(), 1)
}

// SpawnFromImage creates a process whose address space comes from a
// restored snapshot image, charging the spawn cost.
func (os *OS) SpawnFromImage(p *sim.Proc, name string, as *mem.AddressSpace, threads int) *Process {
	p.Sleep(os.Costs.SpawnBase)
	if threads < 1 {
		threads = 1
	}
	return os.newProcess(name, as, threads)
}

// NewDetachedProcess registers a process without charging time — used for
// bootstrapping (e.g. the init daemons present when the simulation starts).
func (os *OS) NewDetachedProcess(name string) *Process {
	return os.newProcess(name, mem.NewAddressSpace(), 1)
}

func (os *OS) newProcess(name string, as *mem.AddressSpace, threads int) *Process {
	os.nextPID++
	pr := &Process{PID: os.nextPID, Name: name, AS: as, Threads: threads}
	os.procs[pr.PID] = pr
	return pr
}

// Fork clones parent copy-on-write, Unix style: only the calling thread
// propagates, so the child starts single-threaded. Forking a multi-threaded
// process is an error — the forkable language runtime must merge threads
// first (the paper's cfork protocol, §4.2).
func (os *OS) Fork(p *sim.Proc, parent *Process, childName string) (*Process, error) {
	if parent.exited {
		return nil, fmt.Errorf("localos: fork of exited process %d", parent.PID)
	}
	if parent.Threads != 1 {
		return nil, fmt.Errorf("localos: fork of multi-threaded process %d (%d threads); merge threads first",
			parent.PID, parent.Threads)
	}
	if os.Faults != nil {
		if err := os.Faults.ForkFault(); err != nil {
			return nil, fmt.Errorf("localos: fork on PU %d: %w", os.PU.ID, err)
		}
	}
	p.Sleep(os.Costs.ForkBase)
	child := os.newProcess(childName, parent.AS.Fork(), 1)
	child.NS = parent.NS
	child.CG = parent.CG
	return child, nil
}

// Exit terminates a process and releases its memory.
func (os *OS) Exit(pr *Process) {
	if pr.exited {
		return
	}
	pr.exited = true
	pr.AS.Release()
	delete(os.procs, pr.PID)
}

// Process returns the process with the given PID, or nil.
func (os *OS) Process(pid PID) *Process { return os.procs[pid] }

// NumProcesses reports the number of live processes.
func (os *OS) NumProcesses() int { return len(os.procs) }

// Touch makes pr write n pages starting at vpn, charging page-fault time
// for every COW break or demand allocation.
func (os *OS) Touch(p *sim.Proc, pr *Process, vpn, n int) {
	faults := pr.AS.Write(vpn, n)
	if faults > 0 {
		p.Sleep(time.Duration(faults) * os.Costs.PageFault)
	}
}

// NewNamespace allocates an isolation namespace.
func (os *OS) NewNamespace(name string) *Namespace {
	os.nextNS++
	return &Namespace{ID: os.nextNS, Name: name}
}

// NewCgroup allocates a cgroup.
func (os *OS) NewCgroup(name string, cpuset int, memoryB int64) *Cgroup {
	os.nextCG++
	return &Cgroup{ID: os.nextCG, Name: name, CPUSet: cpuset, MemoryB: memoryB}
}

// startupFactor is the PU's startup-path slowdown (1.0 on the host).
func (os *OS) startupFactor() float64 {
	if os.PU != nil && os.PU.StartupFactor > 0 {
		return os.PU.StartupFactor
	}
	return 1.0
}

// JoinNamespace moves pr into ns, charging the namespace-reconfiguration
// cost from the cfork protocol.
func (os *OS) JoinNamespace(p *sim.Proc, pr *Process, ns *Namespace) {
	p.Sleep(scale(params.CforkNamespaceJoinTime, os.startupFactor()))
	pr.NS = ns
}

// JoinCgroup moves pr into cg. The cpuset reassignment cost depends on the
// kernel build: the stock semaphore-protected cpuset vs the paper's
// semaphore→mutex patch (Fig 11a "Cpuset opt").
func (os *OS) JoinCgroup(p *sim.Proc, pr *Process, cg *Cgroup, mutexPatch bool) {
	if mutexPatch {
		p.Sleep(scale(params.CgroupCpusetMutexTime, os.startupFactor()))
	} else {
		p.Sleep(scale(params.CgroupCpusetSemaphoreTime, os.startupFactor()))
	}
	pr.CG = cg
}

// --- FIFOs ------------------------------------------------------------------

// Message is one datagram carried over a FIFO. Payload sizes drive
// bandwidth-dependent latency when the message crosses PUs.
type Message struct {
	From    string // sender identity (diagnostic)
	Kind    string // application-level tag
	Payload []byte
	Meta    any // structured payload for in-simulation convenience
}

// Size returns the payload size in bytes.
func (m Message) Size() int { return len(m.Payload) }

// FIFO is a named, message-granular pipe within one OS instance.
type FIFO struct {
	Name string
	os   *OS
	ch   *sim.Chan[Message]
}

// CreateFIFO creates (or returns the existing) FIFO with the given name.
func (os *OS) CreateFIFO(name string, capacity int) *FIFO {
	if f, ok := os.fifos[name]; ok {
		return f
	}
	f := &FIFO{Name: name, os: os, ch: sim.NewChan[Message](os.Env, capacity)}
	os.fifos[name] = f
	return f
}

// OpenFIFO returns the named FIFO, or an error if it does not exist.
func (os *OS) OpenFIFO(name string) (*FIFO, error) {
	f, ok := os.fifos[name]
	if !ok {
		return nil, fmt.Errorf("localos: no FIFO %q on %s", name, os.PU.Name)
	}
	return f, nil
}

// RemoveFIFO unlinks the named FIFO. Blocked readers are woken with a
// closed-channel result.
func (os *OS) RemoveFIFO(name string) {
	if f, ok := os.fifos[name]; ok {
		f.ch.Close()
		delete(os.fifos, name)
	}
}

// Write sends a message, charging one FIFO syscall.
func (f *FIFO) Write(p *sim.Proc, m Message) {
	p.Sleep(f.os.Costs.FIFOOp)
	f.ch.Send(p, m)
}

// Read receives a message, charging one FIFO syscall. ok is false when the
// FIFO was removed.
func (f *FIFO) Read(p *sim.Proc) (Message, bool) {
	p.Sleep(f.os.Costs.FIFOOp)
	return f.ch.Recv(p)
}

// TryRead receives without blocking (the syscall is still charged only on
// success).
func (f *FIFO) TryRead(p *sim.Proc) (Message, bool) {
	m, ok, got := f.ch.TryRecv()
	if !got {
		return Message{}, false
	}
	p.Sleep(f.os.Costs.FIFOOp)
	return m, ok
}

// Len reports queued messages.
func (f *FIFO) Len() int { return f.ch.Len() }
