package loadgen_test

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// A seeded Poisson/Zipf stream against a runtime is fully reproducible.
func Example() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{})

	env.Spawn("driver", func(p *sim.Proc) {
		rt, _ := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		fns := []string{"matmul", "pyaes"}
		for _, fn := range fns {
			rt.Deploy(p, fn)
		}
		stats, err := loadgen.Run(p, rt, loadgen.Config{
			Seed: 7, Functions: fns, ZipfS: 1.2,
			RatePerSec: 20, Duration: 5 * time.Second,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("requests=%d errors=%d cold=%d\n",
			stats.Requests, stats.Errors, stats.ColdStarts)
	})
	env.Run()
	// Output:
	// requests=92 errors=0 cold=5
}
