// Package cluster implements the platform layer above single machines: the
// API Gateway (global manager) of the paper's Fig 6. Users register
// functions with their profiles once; when requests arrive, the gateway
// schedules them to a worker machine that has at least one of the required
// PU kinds (§4.1), deploying the function there on first use. Function
// chains are scheduled onto one computer whenever possible, for
// communication locality (§4.1).
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// kindMask is a bitset of hw.PUKind values — precomputed once per worker
// and once per registration so the scheduling hotpath tests eligibility
// with a single AND instead of building a map per worker per request.
type kindMask uint32

func maskOf(kinds ...hw.PUKind) kindMask {
	var m kindMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

func (m kindMask) has(k hw.PUKind) bool { return m&(1<<uint(k)) != 0 }

// Worker is one heterogeneous computer managed by the gateway.
type Worker struct {
	ID      int
	Machine *hw.Machine
	RT      *molecule.Runtime

	kinds    kindMask // PU kinds present, precomputed at AddWorker
	deployed map[string]bool
	inflight int  // requests scheduled here but not yet completed
	draining bool // excluded from scheduling (maintenance)
}

// machineKinds returns the bitset of PU kinds present on a machine.
func machineKinds(m *hw.Machine) kindMask {
	var mask kindMask
	for _, pu := range m.PUs() {
		mask |= 1 << uint(pu.Kind)
	}
	return mask
}

// load returns the worker's utilization in [0,1]: placed instances plus
// requests already scheduled here but not yet served (so simultaneous
// arrivals spread instead of piling onto one worker).
//
//molecule:hotpath
func (w *Worker) load() float64 {
	c := w.RT.Capacity()
	if c == 0 {
		return 1
	}
	return float64(w.RT.LiveInstances()+w.inflight) / float64(c)
}

// Inflight reports requests scheduled to the worker but not yet completed.
func (w *Worker) Inflight() int { return w.inflight }

// registration is a function registered with the gateway.
type registration struct {
	profiles []molecule.Profile
	mask     kindMask // union of the profiles' PU kinds
}

// Gateway is the global manager.
type Gateway struct {
	Env      *sim.Env
	Registry *workloads.Registry

	workers  []*Worker
	funcs    map[string]*registration
	inflight int // total requests inside the gateway, across all workers

	// waiters are requests parked because every eligible worker was at
	// capacity; each completion wakes all of them to retry (FIFO append
	// order keeps the wakeups deterministic).
	waiters []*sim.Chan[struct{}]
	// epoch counts events that can actually free capacity: successful
	// completions and drain/undrain. Parked requests only re-run
	// scheduling when it advances — a failed attempt wakes them solely to
	// re-check the nothing-inflight guard, never to retry, which is what
	// makes the queue livelock-free.
	epoch int
}

// NewGateway returns an empty gateway.
func NewGateway(env *sim.Env, reg *workloads.Registry) *Gateway {
	return &Gateway{Env: env, Registry: reg, funcs: make(map[string]*registration)}
}

// AddWorker builds a worker machine with its own Molecule runtime and
// attaches it to the gateway.
func (g *Gateway) AddWorker(p *sim.Proc, cfg hw.Config, opts molecule.Options) (*Worker, error) {
	m := hw.Build(g.Env, cfg)
	rt, err := molecule.New(p, m, g.Registry, opts)
	if err != nil {
		return nil, err
	}
	w := &Worker{ID: len(g.workers), Machine: m, RT: rt, kinds: machineKinds(m), deployed: make(map[string]bool)}
	g.workers = append(g.workers, w)
	return w, nil
}

// Inflight reports the total requests inside the gateway (scheduled but
// not completed). Zero when the cluster is quiescent — tests assert this
// on every error path.
func (g *Gateway) Inflight() int { return g.inflight }

// Workers returns the attached workers.
func (g *Gateway) Workers() []*Worker { return g.workers }

// Drain excludes a worker from scheduling (existing warm state stays until
// the operator retires the machine); Undrain re-admits it.
func (g *Gateway) Drain(workerID int) error {
	if workerID < 0 || workerID >= len(g.workers) {
		return fmt.Errorf("cluster: no worker %d", workerID)
	}
	g.workers[workerID].draining = true
	g.epoch++
	g.wake() // parked requests re-schedule against the shrunken worker set
	return nil
}

// Undrain re-admits a drained worker to scheduling.
func (g *Gateway) Undrain(workerID int) error {
	if workerID < 0 || workerID >= len(g.workers) {
		return fmt.Errorf("cluster: no worker %d", workerID)
	}
	g.workers[workerID].draining = false
	g.epoch++
	g.wake() // the re-admitted worker may free parked requests
	return nil
}

// Draining reports whether the worker is excluded from scheduling.
func (w *Worker) Draining() bool { return w.draining }

// Register records a function and its profiles with the platform. Nothing
// is deployed yet; deployment happens on first scheduling to each worker.
func (g *Gateway) Register(funcName string, profiles ...molecule.Profile) error {
	if _, err := g.Registry.Get(funcName); err != nil {
		return err
	}
	if len(profiles) == 0 {
		profiles = []molecule.Profile{molecule.DefaultProfile(hw.CPU)}
	}
	var mask kindMask
	for _, pr := range profiles {
		mask |= maskOf(pr.Kind)
	}
	g.funcs[funcName] = &registration{profiles: profiles, mask: mask}
	return nil
}

// scheduleOne picks the worker for one function: the least-loaded eligible
// worker that still has headroom, falling back to the least-loaded eligible
// worker outright when every one is saturated — the request then queues at
// the gateway (see awaitSlot) instead of failing, which is the fix for the
// burst-drop bug. Eligibility (§4.1: "machines with at least one of the
// required kinds of PU") is one mask AND.
//
//molecule:hotpath
func (g *Gateway) scheduleOne(name string) (*Worker, error) {
	r, ok := g.funcs[name]
	if !ok {
		return nil, fmt.Errorf("cluster: function %q not registered", name)
	}
	var best, fallback *Worker
	var bestLoad, fbLoad float64
	for _, w := range g.workers {
		if w.draining || w.kinds&r.mask == 0 {
			continue
		}
		l := w.load()
		if fallback == nil || l < fbLoad {
			fallback, fbLoad = w, l
		}
		if l >= 1 {
			continue
		}
		if best == nil || l < bestLoad {
			best, bestLoad = w, l
		}
	}
	if best != nil {
		return best, nil
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("cluster: no eligible worker for %q", name)
}

// scheduleChain picks one worker eligible for every function in the chain
// (chain locality, §4.1), least-loaded first with the same saturation
// fallback as scheduleOne.
//
//molecule:hotpath
func (g *Gateway) scheduleChain(names []string) (*Worker, error) {
	for _, name := range names {
		if _, ok := g.funcs[name]; !ok {
			return nil, fmt.Errorf("cluster: function %q not registered", name)
		}
	}
	var best, fallback *Worker
	var bestLoad, fbLoad float64
	for _, w := range g.workers {
		if w.draining {
			continue
		}
		ok := true
		for _, name := range names {
			if w.kinds&g.funcs[name].mask == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		l := w.load()
		if fallback == nil || l < fbLoad {
			fallback, fbLoad = w, l
		}
		if l >= 1 {
			continue
		}
		if best == nil || l < bestLoad {
			best, bestLoad = w, l
		}
	}
	if best != nil {
		return best, nil
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("cluster: no eligible worker for %v", names)
}

// wake releases every parked request to re-run scheduling. Called after
// each completion (success or error — either may free capacity or change
// loads) and after Drain/Undrain. Wake-all is deliberate: the woken
// requests re-check admission themselves, so no wakeup is ever lost, and
// the sim kernel resumes them in deterministic order.
func (g *Gateway) wake() {
	if len(g.waiters) == 0 {
		return
	}
	ws := g.waiters
	g.waiters = nil
	for _, ch := range ws {
		ch.TrySend(struct{}{})
	}
}

// errClusterSaturated reports a request that found no capacity and nothing
// inflight to wait for: every eligible worker's capacity is pinned by live
// instances (e.g. warm pools after SetCapacity shrank the machine). It
// wraps molecule.ErrUnavailable so gateways above (httpd) can map it to
// 503 without reaching into this package.
var errClusterSaturated = fmt.Errorf("cluster: saturated with nothing inflight: %w", molecule.ErrUnavailable)

// awaitSlot parks the calling request until capacity may genuinely have
// been freed (the epoch advanced: a success completed, or the worker set
// changed), then lets it retry scheduling. It refuses to park when nothing
// is inflight anywhere — no completion would ever arrive — so saturation
// with an idle cluster stays a hard error instead of a deadlock; and when
// one waiter gives up it wakes the rest so they re-check the same guard
// instead of waiting forever.
func (g *Gateway) awaitSlot(p *sim.Proc) error {
	seen := g.epoch
	for g.epoch == seen {
		if g.inflight == 0 {
			g.wake() // cascade: let other parked waiters give up too
			return errClusterSaturated
		}
		ch := sim.NewChan[struct{}](g.Env, 1)
		g.waiters = append(g.waiters, ch)
		ch.Recv(p)
	}
	return nil
}

// ensureDeployed deploys the function on the worker on first use.
func (g *Gateway) ensureDeployed(p *sim.Proc, w *Worker, name string) error {
	if w.deployed[name] {
		return nil
	}
	reg := g.funcs[name]
	// Only deploy the profiles the worker can satisfy.
	var profiles []molecule.Profile
	for _, pr := range reg.profiles {
		if w.kinds.has(pr.Kind) {
			profiles = append(profiles, pr)
		}
	}
	if err := w.RT.Deploy(p, name, profiles...); err != nil {
		return err
	}
	w.deployed[name] = true
	return nil
}

// ingress charges the client→gateway→worker network path one way.
func ingress(p *sim.Proc) { p.Sleep(params.NetworkBaseLatency) }

// InvokeResult pairs an invocation result with the worker that served it.
type InvokeResult struct {
	molecule.Result
	Worker  int
	Gateway time.Duration // time spent in gateway + network, not the worker
}

// Invoke schedules one request through the gateway. When every eligible
// worker is at capacity the request queues at the gateway and retries as
// completions free slots, so bursts above cluster capacity complete
// instead of erroring.
func (g *Gateway) Invoke(p *sim.Proc, funcName string, opts molecule.InvokeOptions) (InvokeResult, error) {
	start := p.Now()
	ingress(p) // client → gateway → worker
	for {
		w, err := g.scheduleOne(funcName)
		if err != nil {
			return InvokeResult{}, err
		}
		res, enter, exit, err := g.attemptOne(p, w, funcName, opts)
		if err != nil && errors.Is(err, molecule.ErrNoCapacity) {
			if waitErr := g.awaitSlot(p); waitErr == nil {
				continue // a completion freed something: re-schedule
			}
			return InvokeResult{}, err
		}
		if err != nil {
			return InvokeResult{}, err
		}
		ingress(p) // worker → gateway → client
		return InvokeResult{
			Result:  res,
			Worker:  w.ID,
			Gateway: p.Now().Sub(start) - exit.Sub(enter),
		}, nil
	}
}

// attemptOne runs one scheduling attempt against a chosen worker, keeping
// the inflight counters balanced on every exit path.
func (g *Gateway) attemptOne(p *sim.Proc, w *Worker, funcName string, opts molecule.InvokeOptions) (res molecule.Result, enter, exit sim.Time, err error) {
	w.inflight++
	g.inflight++
	defer func() {
		w.inflight--
		g.inflight--
		if err == nil {
			g.epoch++ // a success frees a warm instance: waiters may retry
		}
		g.wake() // even errors wake: waiters re-check the inflight guard
	}()
	if err = g.ensureDeployed(p, w, funcName); err != nil {
		return res, enter, exit, err
	}
	enter = p.Now()
	res, err = w.RT.Invoke(p, funcName, opts)
	exit = p.Now()
	return res, enter, exit, err
}

// InvokeChain schedules a whole chain onto one worker (chain locality) and
// runs it through the worker's direct-connect DAG engine, with the same
// queue-on-saturation behavior as Invoke.
func (g *Gateway) InvokeChain(p *sim.Proc, names []string, policy molecule.PlacementPolicy) (molecule.ChainResult, int, error) {
	ingress(p)
	for {
		w, err := g.scheduleChain(names)
		if err != nil {
			return molecule.ChainResult{}, -1, err
		}
		res, err := g.attemptChain(p, w, names, policy)
		if err != nil && errors.Is(err, molecule.ErrNoCapacity) {
			if waitErr := g.awaitSlot(p); waitErr == nil {
				continue
			}
			return molecule.ChainResult{}, -1, err
		}
		if err != nil {
			return molecule.ChainResult{}, -1, err
		}
		ingress(p)
		return res, w.ID, nil
	}
}

// attemptChain mirrors attemptOne for chains.
func (g *Gateway) attemptChain(p *sim.Proc, w *Worker, names []string, policy molecule.PlacementPolicy) (res molecule.ChainResult, err error) {
	w.inflight += len(names)
	g.inflight += len(names)
	defer func() {
		w.inflight -= len(names)
		g.inflight -= len(names)
		if err == nil {
			g.epoch++
		}
		g.wake()
	}()
	for _, name := range names {
		if err = g.ensureDeployed(p, w, name); err != nil {
			return res, err
		}
	}
	return w.RT.InvokeChainWithPolicy(p, names, policy)
}
