package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "FunctionBench, cold boot on CPU",
		Paper: "Molecule 1.01-11.12x less end-to-end latency than baseline",
		Run:   func() []*metrics.Table { return runFunctionBench("fig14a", false, false, true) },
	})
	register(Experiment{
		ID:    "fig14b",
		Title: "FunctionBench, warm boot",
		Paper: "baseline and Molecule nearly equal; cfork's COW faults cost a little",
		Run:   func() []*metrics.Table { return runFunctionBench("fig14b", false, false, false) },
	})
	register(Experiment{
		ID:    "fig14c",
		Title: "FunctionBench, cold boot on BF-1 DPU",
		Paper: "BF-1 4-7x slower than CPU; Molecule still wins every case",
		Run:   func() []*metrics.Table { return runFunctionBench("fig14c", true, false, true) },
	})
	register(Experiment{
		ID:    "fig14d",
		Title: "FunctionBench, cold boot on BF-2 DPU",
		Paper: "BF-2 3-4x better than BF-1, close to CPU performance",
		Run:   func() []*metrics.Table { return runFunctionBench("fig14d", true, true, true) },
	})
	register(Experiment{
		ID:    "fig14e",
		Title: "Chained applications (Alexa, MapReduce)",
		Paper: "Molecule 2.04-2.47x (Alexa) and 3.70-4.47x (MapReduce) less end-to-end latency",
		Run:   runFig14e,
	})
	register(Experiment{
		ID:    "fig14f",
		Title: "GZip FPGA functions",
		Paper: "FPGA wins for files >25MB, 4.8-8.3x better latency",
		Run:   runFig14f,
	})
	register(Experiment{
		ID:    "fig14g",
		Title: "Anti-MoneyL FPGA function",
		Paper: "FPGA 4.7-34.6x better across 6K-6M transaction entries",
		Run:   runFig14g,
	})
	register(Experiment{
		ID:    "fig14h",
		Title: "Matrix computation application",
		Paper: "FPGA 2.8x lower latency (CPU 2.6ms)",
		Run:   runFig14h,
	})
}

// runFunctionBench measures the eight FunctionBench applications end to end
// on the baseline (Molecule-homo) and Molecule, cold or warm, on the CPU or
// a DPU.
func runFunctionBench(id string, onDPU, bf2, cold bool) []*metrics.Table {
	where := "CPU"
	if onDPU {
		where = "BF-1 DPU"
		if bf2 {
			where = "BF-2 DPU"
		}
	}
	mode := "warm boot"
	if cold {
		mode = "cold boot"
	}
	t := &metrics.Table{
		Title:  fmt.Sprintf("Fig 14 (%s) — FunctionBench end-to-end latency, %s on %s", id, mode, where),
		Header: []string{"application", "Baseline", "Molecule", "improvement"},
	}
	for _, fname := range workloads.FunctionBenchNames() {
		var base, mol float64
		sandboxed(func(p *sim.Proc) {
			cfg := hw.Config{}
			target := hw.PUID(0)
			if onDPU {
				cfg = hw.Config{DPUs: 1, BF2: bf2}
			}
			rt := newMolecule(p, cfg, molecule.DefaultOptions())
			if onDPU {
				target = rt.Machine.PUsOfKind(hw.DPU)[0].ID
			}
			h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
			if err := rt.Deploy(p, fname,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
			rt.ContainerRuntimeOn(target).EnsureTemplate(p, lang.Python)

			if cold {
				hres, err := h.Invoke(p, fname, target, workloads.Arg{}, true)
				if err != nil {
					panic(err)
				}
				base = hres.Total.Seconds() * 1000
				mres, err := rt.Invoke(p, fname, molecule.InvokeOptions{PU: target, ForceCold: true})
				if err != nil {
					panic(err)
				}
				mol = mres.Total.Seconds() * 1000
			} else {
				// Warm boot: instances created and cached beforehand; the
				// measured request is the first served by the cached
				// instance (so Molecule's COW faults show up, §6.6).
				h.Invoke(p, fname, target, workloads.Arg{}, true)
				hres, err := h.Invoke(p, fname, target, workloads.Arg{}, false)
				if err != nil {
					panic(err)
				}
				base = hres.Total.Seconds() * 1000
				held, err := rt.AcquireHeld(p, fname, target)
				if err != nil {
					panic(err)
				}
				rt.ReleaseHeld(p, held)
				mres, err := rt.Invoke(p, fname, molecule.InvokeOptions{PU: target})
				if err != nil {
					panic(err)
				}
				mol = mres.Total.Seconds() * 1000
			}
		})
		t.AddRow(fname, fmt.Sprintf("%.1fms", base), fmt.Sprintf("%.1fms", mol), fr(base/mol))
	}
	return []*metrics.Table{t}
}

// runFig14e measures the two chained applications under CPU-only, DPU-only,
// and CrossPU placements, warmed (pre-booted instances, like the paper).
func runFig14e() []*metrics.Table {
	var tables []*metrics.Table
	apps := []struct {
		name  string
		chain []string
	}{
		{"Alexa", workloads.AlexaChain()},
		{"MapReduce", workloads.MapReduceChain()},
	}
	for _, app := range apps {
		t := &metrics.Table{
			Title:  fmt.Sprintf("Fig 14e — %s end-to-end latency (pre-booted instances)", app.name),
			Header: []string{"placement", "Baseline", "Molecule", "improvement"},
		}
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
			h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
			dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
			for _, fn := range app.chain {
				if err := rt.Deploy(p, fn,
					molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
					panic(err)
				}
			}
			place := func(kind string) []hw.PUID {
				out := make([]hw.PUID, len(app.chain))
				for i := range out {
					switch kind {
					case "cpu":
						out[i] = 0
					case "dpu":
						out[i] = dpu
					case "cross":
						// Alternate so every inter-function call crosses PUs.
						if i%2 == 0 {
							out[i] = 0
						} else {
							out[i] = dpu
						}
					}
				}
				return out
			}
			for _, tc := range []struct{ label, kind string }{
				{"CPU", "cpu"}, {"DPU", "dpu"}, {"CrossPU", "cross"},
			} {
				pl := place(tc.kind)
				// Warm both systems.
				if _, err := h.InvokeChain(p, app.chain, pl, workloads.Arg{}); err != nil {
					panic(err)
				}
				if _, err := rt.InvokeChain(p, app.chain, molecule.ChainOptions{Placement: pl}); err != nil {
					panic(err)
				}
				bres, err := h.InvokeChain(p, app.chain, pl, workloads.Arg{})
				if err != nil {
					panic(err)
				}
				mres, err := rt.InvokeChain(p, app.chain, molecule.ChainOptions{Placement: pl})
				if err != nil {
					panic(err)
				}
				t.AddRow(tc.label, fd(bres.Total), fd(mres.Total),
					fr(float64(bres.Total)/float64(mres.Total)))
			}
		})
		tables = append(tables, t)
	}
	return tables
}

func runFig14f() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 14f — GZip: CPU vs FPGA across file sizes",
		Note:   "FPGA includes DMA transfers; 112MB corresponds to the Linux source tree",
		Header: []string{"file size", "CPU", "FPGA", "CPU/FPGA"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "gzip-compression",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			panic(err)
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: 0}) // warm CPU instance
		for _, size := range []int{1 << 10, 1 << 20, 10 << 20, 25 << 20, 50 << 20, 112 << 20} {
			arg := workloads.Arg{Bytes: size}
			cpu, err := rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: 0, Arg: arg})
			if err != nil {
				panic(err)
			}
			fp, err := rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: fpga, Arg: arg})
			if err != nil {
				panic(err)
			}
			label := fmt.Sprintf("%dKB", size>>10)
			if size >= 1<<20 {
				label = fmt.Sprintf("%dMB", size>>20)
			}
			t.AddRow(label, fd(cpu.Handler), fd(fp.Handler),
				fr(float64(cpu.Handler)/float64(fp.Handler)))
		}
	})
	return []*metrics.Table{t}
}

func runFig14g() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 14g — Anti-MoneyL: CPU vs FPGA across entry counts",
		Header: []string{"entries", "CPU", "FPGA", "CPU/FPGA"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "anti-moneyl",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			panic(err)
		}
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		rt.Invoke(p, "anti-moneyl", molecule.InvokeOptions{PU: 0})
		for _, entries := range []int{6_000, 60_000, 600_000, 6_000_000} {
			arg := workloads.Arg{N: entries}
			cpu, err := rt.Invoke(p, "anti-moneyl", molecule.InvokeOptions{PU: 0, Arg: arg})
			if err != nil {
				panic(err)
			}
			fp, err := rt.Invoke(p, "anti-moneyl", molecule.InvokeOptions{PU: fpga, Arg: arg})
			if err != nil {
				panic(err)
			}
			t.AddRow(fmt.Sprintf("%d", entries), fd(cpu.Handler), fd(fp.Handler),
				fr(float64(cpu.Handler)/float64(fp.Handler)))
		}
	})
	return []*metrics.Table{t}
}

func runFig14h() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 14h — Matrix computation application",
		Header: []string{"variant", "latency", "normalized"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "matrix-comput",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			panic(err)
		}
		chain := []string{"matrix-comput"}
		rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{CPUFallback: true}) // warm
		cpu, err := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{CPUFallback: true})
		if err != nil {
			panic(err)
		}
		fp, err := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{})
		if err != nil {
			panic(err)
		}
		t.AddRow("CPU", fd(cpu.Total), "1.00")
		t.AddRow("FPGA", fd(fp.Total), fmt.Sprintf("%.2f (%.1fx better)",
			float64(fp.Total)/float64(cpu.Total), float64(cpu.Total)/float64(fp.Total)))
	})
	return []*metrics.Table{t}
}
