package sim_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Two processes exchange a value over a simulated channel; the clock
// advances only through simulated operations.
func Example() {
	env := sim.NewEnv()
	ch := sim.NewChan[string](env, 0)

	env.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond) // modeled work
		ch.Send(p, "result")
	})
	env.Spawn("consumer", func(p *sim.Proc) {
		v, _ := ch.Recv(p)
		fmt.Printf("got %q at t=%v\n", v, p.Now())
	})

	end := env.Run()
	fmt.Printf("simulation ended at %v\n", end)
	// Output:
	// got "result" at t=3ms
	// simulation ended at 3ms
}

// A Resource models contention: with one unit, the second worker waits for
// the first to release.
func ExampleResource() {
	env := sim.NewEnv()
	res := sim.NewResource(env, 1)
	worker := func(name string) {
		env.Spawn(name, func(p *sim.Proc) {
			res.Acquire(p)
			fmt.Printf("%s starts at %v\n", name, p.Now())
			p.Sleep(10 * time.Millisecond)
			res.Release()
		})
	}
	worker("first")
	worker("second")
	env.Run()
	// Output:
	// first starts at 0s
	// second starts at 10ms
}

// Events broadcast one-shot conditions to any number of waiters.
func ExampleEvent() {
	env := sim.NewEnv()
	ready := sim.NewEvent(env)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("waiter", func(p *sim.Proc) {
			payload := ready.Wait(p)
			fmt.Printf("waiter %d woke at %v with %v\n", i, p.Now(), payload)
		})
	}
	env.Spawn("trigger", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		ready.Trigger("go")
	})
	env.Run()
	// Output:
	// waiter 0 woke at 1ms with go
	// waiter 1 woke at 1ms with go
}
