package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNilness(t *testing.T) {
	linttest.Run(t, lint.Nilness,
		linttest.Package{Path: "repro/internal/nilfix", Dir: "testdata/nilness/nilfix"})
}
