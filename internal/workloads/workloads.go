// Package workloads defines the serverless functions used throughout the
// evaluation: the FunctionBench suite, the ServerlessBench applications
// (Alexa, image processing), the MapReduce chain, and the FPGA-accelerated
// applications (GZip, Anti-MoneyL, matrix computation) ported from the
// Vitis demos.
//
// Every function couples two things:
//
//   - a calibrated cost model — how long the handler takes on each PU class
//     and how big its payloads are — which drives the simulation; and
//   - optionally, a real Go compute body (actual gzip, matmul, AES, ...)
//     used by the runnable examples so outputs are genuine.
//
// CPU execution costs equal the paper's warm-boot latencies (Fig 14b);
// DepImport captures the per-function dependency import cost that separates
// a generic cold boot from the Fig 14a baseline labels. Molecule skips
// DepImport by forking from dedicated templates with code and dependencies
// preloaded for hot functions (§4.2).
package workloads

import (
	"fmt"
	"time"

	"repro/internal/lang"
)

// Arg parameterizes one invocation of a parameterized function.
type Arg struct {
	N       int // element/entry count (matrices, transactions)
	Bytes   int // input payload size
	Payload []byte
}

// Function describes one serverless function.
type Function struct {
	Name string
	Lang lang.Kind // language runtime for CPU/DPU profiles

	// ExecCPU is the handler execution time on the host CPU for the default
	// argument (Fig 14b warm latencies).
	ExecCPU time.Duration
	// DepImport is the dependency-import cost the baseline pays on cold
	// start on top of generic runtime boot (numpy, PIL, ffmpeg, ...).
	DepImport time.Duration
	// Packages names the function's direct imports in the lang package
	// catalog. The dependency closure's import cost never exceeds
	// DepImport; the remainder is the function's private init tail that no
	// shared template can pre-run. An empty manifest means the whole
	// DepImport is private (the zygote forest can't help this function).
	Packages []string

	// ArgBytes and ResultBytes size request/response payloads for the
	// default argument.
	ArgBytes    int
	ResultBytes int

	// ExecCPUFor and FabricFor override the fixed costs for parameterized
	// sweeps (gzip file sizes, AML entry counts, matrix dimensions).
	ExecCPUFor func(Arg) time.Duration
	FabricFor  func(Arg) time.Duration
	SizesFor   func(Arg) (arg, result int)

	// Fabric is the FPGA kernel time for the default argument; zero means
	// the function has no FPGA implementation.
	Fabric time.Duration
	// GPUKernel is the GPU kernel time for the default argument; zero means
	// no GPU implementation.
	GPUKernel time.Duration

	// Body is the real computation for examples (may be nil).
	Body func(Arg) (any, error)
}

// HasFPGA reports whether the function has an FPGA implementation.
func (f *Function) HasFPGA() bool { return f.Fabric > 0 || f.FabricFor != nil }

// HasGPU reports whether the function has a GPU implementation.
func (f *Function) HasGPU() bool { return f.GPUKernel > 0 }

// CPUCost returns the handler's host-CPU execution time for arg.
func (f *Function) CPUCost(arg Arg) time.Duration {
	if f.ExecCPUFor != nil && (arg.N > 0 || arg.Bytes > 0) {
		return f.ExecCPUFor(arg)
	}
	return f.ExecCPU
}

// FabricCost returns the FPGA kernel time for arg.
func (f *Function) FabricCost(arg Arg) time.Duration {
	if f.FabricFor != nil && (arg.N > 0 || arg.Bytes > 0) {
		return f.FabricFor(arg)
	}
	return f.Fabric
}

// Sizes returns (argBytes, resultBytes) for arg.
func (f *Function) Sizes(arg Arg) (int, int) {
	if f.SizesFor != nil && (arg.N > 0 || arg.Bytes > 0) {
		return f.SizesFor(arg)
	}
	return f.ArgBytes, f.ResultBytes
}

// Registry is a name-indexed function catalog.
type Registry struct {
	fns map[string]*Function
}

// NewRegistry returns a registry pre-populated with every evaluation
// function.
func NewRegistry() *Registry {
	r := &Registry{fns: make(map[string]*Function)}
	for _, f := range All() {
		r.fns[f.Name] = f
	}
	return r
}

// Get returns the named function.
func (r *Registry) Get(name string) (*Function, error) {
	f, ok := r.fns[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown function %q", name)
	}
	return f, nil
}

// MustGet returns the named function or panics; for tables of well-known
// names in benchmarks.
func (r *Registry) MustGet(name string) *Function {
	f, err := r.Get(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Add registers a custom function.
func (r *Registry) Add(f *Function) { r.fns[f.Name] = f }

// Names returns all registered function names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	return out
}

// FunctionBenchNames lists the eight FunctionBench workloads in the order
// Fig 14 plots them.
func FunctionBenchNames() []string {
	return []string{
		"image-resize", "chameleon", "linpack", "matmul",
		"pyaes", "video-processing", "dd", "gzip-compression",
	}
}

// All returns every evaluation function with calibrated costs.
func All() []*Function {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	fns := []*Function{
		// --- FunctionBench (Fig 14a-d). ExecCPU = warm latency (Fig 14b);
		// DepImport = Fig 14a label − baseline cold boot (85.55) − ExecCPU.
		{Name: "image-resize", Lang: lang.Python, ExecCPU: ms(14.1), DepImport: ms(98.35), Packages: []string{"imageops"},
			ArgBytes: 64 << 10, ResultBytes: 16 << 10, Body: bodyImageResize},
		{Name: "chameleon", Lang: lang.Python, ExecCPU: ms(10.9), DepImport: ms(165.85), Packages: []string{"templating"},
			ArgBytes: 1 << 10, ResultBytes: 32 << 10, Body: bodyChameleon},
		{Name: "linpack", Lang: lang.Python, ExecCPU: ms(95.9), DepImport: ms(280.05), Packages: []string{"blas"},
			ArgBytes: 256, ResultBytes: 256, Body: bodyLinpack},
		{Name: "matmul", Lang: lang.Python, ExecCPU: ms(1.4), DepImport: ms(211.95), Packages: []string{"blas"},
			ArgBytes: 256, ResultBytes: 256, Body: bodyMatmul},
		{Name: "pyaes", Lang: lang.Python, ExecCPU: ms(19.5), DepImport: ms(59.45), Packages: []string{"crypto"},
			ArgBytes: 4 << 10, ResultBytes: 4 << 10, Body: bodyAES},
		{Name: "video-processing", Lang: lang.Python, ExecCPU: ms(33811), DepImport: ms(357.45), Packages: []string{"ffmpeg"},
			ArgBytes: 8 << 20, ResultBytes: 2 << 20, Body: bodyVideo},
		{Name: "dd", Lang: lang.Python, ExecCPU: ms(43.1), DepImport: ms(66.25), Packages: []string{"fileio"},
			ArgBytes: 1 << 20, ResultBytes: 64, Body: bodyDD},
		{Name: "gzip-compression", Lang: lang.Python, ExecCPU: ms(182.9), DepImport: ms(67.15), Packages: []string{"zlibx"},
			ArgBytes: 4 << 20, ResultBytes: 1 << 20, Body: bodyGzip,
			// GZip FPGA sweep (Fig 14f): CPU = 42 ns/B; FPGA = 119 ms fixed
			// + 4 ns/B, giving 4.8x at 25MB and 8.3x at 112MB, with the
			// crossover near 3MB.
			ExecCPUFor: func(a Arg) time.Duration { return time.Duration(float64(a.Bytes) * 42) },
			FabricFor:  func(a Arg) time.Duration { return ms(119) + time.Duration(float64(a.Bytes)*4) },
			SizesFor:   func(a Arg) (int, int) { return a.Bytes, a.Bytes / 4 },
			Fabric:     ms(119) + time.Duration(4*(4<<20))},

		// --- ServerlessBench / chains.
		{Name: "helloworld", Lang: lang.Python, ExecCPU: ms(0.4), DepImport: ms(145), Packages: []string{"httpkit"},
			ArgBytes: 64, ResultBytes: 64, Body: bodyHello},
		{Name: "image-processing", Lang: lang.Python, ExecCPU: ms(12.0), DepImport: ms(96), Packages: []string{"imageops"},
			ArgBytes: 64 << 10, ResultBytes: 16 << 10, Body: bodyImageResize},

		// Alexa skill chain (Node.js, 5 functions; Fig 12 / Fig 14e).
		{Name: "alexa-frontend", Lang: lang.Node, ExecCPU: ms(1.0), DepImport: ms(40), Packages: []string{"alexa-sdk"}, ArgBytes: 512, ResultBytes: 512},
		{Name: "alexa-interact", Lang: lang.Node, ExecCPU: ms(3.0), DepImport: ms(40), Packages: []string{"alexa-sdk"}, ArgBytes: 512, ResultBytes: 512},
		{Name: "alexa-smarthome", Lang: lang.Node, ExecCPU: ms(3.0), DepImport: ms(40), Packages: []string{"alexa-sdk"}, ArgBytes: 512, ResultBytes: 512},
		{Name: "alexa-door", Lang: lang.Node, ExecCPU: ms(4.0), DepImport: ms(40), Packages: []string{"alexa-sdk"}, ArgBytes: 512, ResultBytes: 512},
		{Name: "alexa-light", Lang: lang.Node, ExecCPU: ms(5.2), DepImport: ms(40), Packages: []string{"alexa-sdk"}, ArgBytes: 512, ResultBytes: 512},

		// MapReduce chain (Python, 3 functions; Fig 14e).
		{Name: "mr-splitter", Lang: lang.Python, ExecCPU: ms(1.29), DepImport: ms(30), Packages: []string{"fileio"}, ArgBytes: 16 << 10, ResultBytes: 16 << 10},
		{Name: "mr-mapper", Lang: lang.Python, ExecCPU: ms(1.29), DepImport: ms(30), Packages: []string{"fileio"}, ArgBytes: 16 << 10, ResultBytes: 8 << 10},
		{Name: "mr-reducer", Lang: lang.Python, ExecCPU: ms(1.29), DepImport: ms(30), Packages: []string{"fileio"}, ArgBytes: 8 << 10, ResultBytes: 1 << 10},

		// --- Matrix operations (Fig 2b, Fig 14h). CPU latencies from Fig 2b
		// labels; fabric times calibrated so FPGA end-to-end (including DMA)
		// is 2.15-2.82x lower.
		{Name: "mscale", Lang: lang.Python, ExecCPU: 192 * time.Microsecond, DepImport: ms(210), Packages: []string{"blas"},
			ArgBytes: 64 << 10, ResultBytes: 64 << 10,
			Fabric: 26 * time.Microsecond, GPUKernel: 20 * time.Microsecond, Body: bodyMScale},
		{Name: "madd", Lang: lang.Python, ExecCPU: 324 * time.Microsecond, DepImport: ms(210), Packages: []string{"blas"},
			ArgBytes: 128 << 10, ResultBytes: 64 << 10,
			Fabric: 60 * time.Microsecond, GPUKernel: 30 * time.Microsecond, Body: bodyMAdd},
		{Name: "vmult", Lang: lang.Python, ExecCPU: 3551 * time.Microsecond, DepImport: ms(210), Packages: []string{"blas"},
			ArgBytes: 128 << 10, ResultBytes: 64 << 10,
			Fabric: 1250 * time.Microsecond, GPUKernel: 400 * time.Microsecond, Body: bodyVMult},
		{Name: "matrix-comput", Lang: lang.Python, ExecCPU: ms(2.6), DepImport: ms(210), Packages: []string{"blas"},
			ArgBytes: 64 << 10, ResultBytes: 64 << 10, Fabric: 880 * time.Microsecond},

		// Vector compute stage for the FPGA chain experiment (Fig 13):
		// 512KB payloads, 106us fabric time per stage.
		{Name: "vecstage", Lang: lang.Python, ExecCPU: ms(1.2), DepImport: ms(20), Packages: []string{"pyutils"},
			ArgBytes: 768 << 10, ResultBytes: 768 << 10, Fabric: 106 * time.Microsecond},

		// Anti-money-laundering check (Fig 14g): CPU = 4.71ms + 47.5 ns/entry;
		// FPGA = 1.05ms fixed + 1.25 ns/entry → 4.7x at 6K, ~34x at 6M.
		{Name: "anti-moneyl", Lang: lang.Python, ExecCPU: ms(4.99), DepImport: ms(55), Packages: []string{"fileio"},
			ArgBytes: 64 << 10, ResultBytes: 1 << 10,
			ExecCPUFor: func(a Arg) time.Duration { return ms(4.71) + time.Duration(float64(a.N)*47.5) },
			// The transaction files stream into FPGA DRAM as part of the
			// kernel's pipeline (the per-entry term); the request payload
			// itself is just file references.
			FabricFor: func(a Arg) time.Duration { return ms(1.05) + time.Duration(float64(a.N)*1.25) },
			SizesFor:  func(a Arg) (int, int) { return 4 << 10, 1 << 10 },
			Fabric:    ms(1.05), Body: bodyAML},
	}
	return fns
}

// AlexaChain returns the Alexa skill DAG as an ordered function chain
// (front → interact → smarthome → door → light).
func AlexaChain() []string {
	return []string{"alexa-frontend", "alexa-interact", "alexa-smarthome", "alexa-door", "alexa-light"}
}

// MapReduceChain returns the MapReduce pipeline (3 functions; the fan-out
// and fan-in edges are modeled by the DAG layer).
func MapReduceChain() []string {
	return []string{"mr-splitter", "mr-mapper", "mr-reducer"}
}
