package mem

// mem is a Sim layer without the Report flag: its map iteration feeds
// internal state, not rendered output, so maporder leaves it alone.
func Touch(pages map[uint64]int, visit func(uint64, int)) {
	for addr, refs := range pages {
		visit(addr, refs)
	}
}
