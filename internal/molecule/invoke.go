package molecule

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// instance is one warm (or in-flight) container-based function instance.
type instance struct {
	fn        string
	node      *puNode
	sandboxID string
	sb        *sandbox.ContainerSandbox
	forked    bool
}

// InvokeOptions tune one invocation.
type InvokeOptions struct {
	// PU pins the invocation to a specific processing unit; -1 lets the
	// placement policy choose. The zero value pins to PU 0 (the host), so
	// construct options with DefaultInvokeOptions when unsure.
	PU hw.PUID
	// Arg parameterizes the function's cost model.
	Arg workloads.Arg
	// ForceCold skips the warm pool (cold-start measurements).
	ForceCold bool
	// RunBody executes the function's real Go body and stores its output in
	// the result.
	RunBody bool
	// Span, when observability is attached, parents the invocation's span
	// tree under an enclosing span (e.g. the HTTP gateway's request span).
	// Nil starts a new root.
	Span *obs.Span
}

// DefaultInvokeOptions lets placement choose the PU.
func DefaultInvokeOptions() InvokeOptions { return InvokeOptions{PU: -1} }

// Result reports one invocation's outcome and latency breakdown.
type Result struct {
	Fn      string
	PU      hw.PUID
	Kind    hw.PUKind
	Cold    bool
	Startup time.Duration // sandbox acquisition (0 on warm hits)
	Exec    time.Duration // handler execution including dispatch and COW faults
	Handler time.Duration // pure handler time on the chosen PU
	Total   time.Duration
	Output  any
}

// Invoke runs one request for funcName and returns its latency breakdown.
// Accelerator profiles win placement when available (the request was priced
// for them); otherwise the general-purpose placement policy picks a PU.
// With Options.Recovery enabled, transient failures are retried with
// backoff and failover; otherwise this is a single attempt on the exact
// pre-recovery code path.
func (rt *Runtime) Invoke(p *sim.Proc, funcName string, opts InvokeOptions) (Result, error) {
	d, err := rt.Deployment(funcName)
	if err != nil {
		return Result{}, err
	}
	if !rt.Opts.Recovery.Enabled() {
		return rt.dispatch(p, d, opts, true)
	}
	return rt.invokeWithRecovery(p, d, opts)
}

// dispatch routes one attempt to the PU-kind-specific invoke path. settle
// controls whether the attempt bills and records itself on success; the
// recovery layer passes false and settles exactly one winning attempt, so
// an attempt that completes after its timeout is never billed.
func (rt *Runtime) dispatch(p *sim.Proc, d *Deployment, opts InvokeOptions, settle bool) (Result, error) {
	if opts.PU >= 0 {
		if n := rt.nodes[opts.PU]; n != nil {
			switch n.pu.Kind {
			case hw.FPGA:
				return rt.invokeFPGA(p, d, opts, settle)
			case hw.GPU:
				return rt.invokeGPU(p, d, opts, settle)
			}
		}
		return rt.invokeGeneral(p, d, opts, settle)
	}
	if d.SupportsKind(hw.FPGA) {
		return rt.invokeFPGA(p, d, opts, settle)
	}
	if d.SupportsKind(hw.GPU) {
		return rt.invokeGPU(p, d, opts, settle)
	}
	return rt.invokeGeneral(p, d, opts, settle)
}

// settleResult bills the invocation and updates its metric series — the
// exactly-once accounting step of every successful invocation.
func (rt *Runtime) settleResult(d *Deployment, res Result) {
	pr, _ := d.ProfileFor(res.Kind)
	rt.bill.Record(d.Fn.Name, res.Kind, res.Total, pr.PricePerMs)
	if pu := rt.Machine.PU(res.PU); pu != nil {
		rt.recordInvocation(d.Fn.Name, pu, res)
	}
}

// handlerCrash wraps an injected handler fault and finishes the invoke
// span with it. Kept out of invokeGeneral so the formatting lives off the
// hot path: it only runs when a fault plan fires.
func (rt *Runtime) handlerCrash(root *obs.Span, d *Deployment, inst *instance, ferr error) error {
	err := fmt.Errorf("molecule: %s handler on PU %d: %w", d.Fn.Name, inst.node.pu.ID, ferr)
	root.SetAttr("error", err.Error())
	root.Finish()
	return err
}

// invokeGeneral serves the request on a CPU or DPU container instance.
//
//molecule:hotpath
func (rt *Runtime) invokeGeneral(p *sim.Proc, d *Deployment, opts InvokeOptions, settle bool) (Result, error) {
	start := p.Now()
	// Tracef checks the env flag itself, but its variadic arguments are boxed
	// at the call site; the explicit guards keep the detached warm path
	// allocation-free.
	tracing := rt.Env.Tracing()
	root := rt.obs.Span(opts.Span, "invoke", int(rt.hostID))
	root.SetAttr("fn", d.Fn.Name)
	if tracing {
		p.Tracef("invoke %s: request accepted", d.Fn.Name)
	}
	inst, cold, err := rt.acquire(p, d, opts.PU, opts.ForceCold, root)
	if err != nil {
		root.SetAttr("error", err.Error())
		root.Finish()
		return Result{}, err
	}
	if tracing {
		if cold {
			p.Tracef("invoke %s: cold start complete on PU %d (sandbox %s)", d.Fn.Name, inst.node.pu.ID, inst.sandboxID)
		} else {
			p.Tracef("invoke %s: warm hit on PU %d (sandbox %s)", d.Fn.Name, inst.node.pu.ID, inst.sandboxID)
		}
	}
	startupDone := p.Now()

	// Deterministic scheduling noise, when configured.
	if extra := rt.jitter(startupDone.Sub(start)) - startupDone.Sub(start); extra > 0 {
		p.Sleep(extra)
		startupDone = p.Now()
	}
	execStart := p.Now()
	if !cold {
		p.Sleep(params.WarmDispatchTime)
	}
	if rt.faults != nil {
		if ferr := rt.faults.HandlerFault(); ferr != nil {
			// The handler crashed: its instance is gone, not warm.
			rt.destroy(p, inst)
			return Result{}, rt.handlerCrash(root, d, inst, ferr)
		}
	}
	hs := rt.obs.Span(root, "handler", int(inst.node.pu.ID))
	if inst.forked && inst.sb.Inst.COWPending {
		hs.SetAttr("cow", "1")
		if o := rt.obs; o != nil {
			o.Counter("sandbox_cow_faults_total", puLabel(inst.node.pu.ID)).Inc()
		}
	}
	inst.sb.Inst.Invoke(p, rt.jitter(d.Fn.CPUCost(opts.Arg)), inst.forked)
	hs.Finish()
	res := Result{
		Fn: d.Fn.Name, PU: inst.node.pu.ID, Kind: inst.node.pu.Kind, Cold: cold,
		Startup: startupDone.Sub(start),
		Exec:    p.Now().Sub(execStart),
		Handler: inst.node.pu.ComputeTime(d.Fn.CPUCost(opts.Arg)),
		Total:   p.Now().Sub(start),
	}
	if cold {
		root.SetAttr("cold", "1")
	}
	if root != nil {
		root.SetAttr("pu", strconv.Itoa(int(inst.node.pu.ID)))
	}
	root.Finish() // root span duration == res.Total by construction
	if opts.RunBody && d.Fn.Body != nil {
		out, err := d.Fn.Body(opts.Arg)
		if err != nil {
			rt.release(p, inst)
			return Result{}, err
		}
		res.Output = out
	}
	inst.node.busy += res.Exec
	rt.release(p, inst)
	if tracing {
		p.Tracef("invoke %s: done in %v (exec %v)", d.Fn.Name, res.Total, res.Exec)
	}
	if settle {
		rt.settleResult(d, res)
	}
	return res, nil
}

// recordInvocation updates the per-invocation metric series (no-op with
// observability detached).
func (rt *Runtime) recordInvocation(fn string, pu *hw.PU, res Result) {
	o := rt.obs
	if o == nil {
		return
	}
	pl := puLabel(pu.ID)
	o.Counter("molecule_invocations_total", obs.L("fn", fn), pl, obs.L("kind", pu.Kind.String())).Inc()
	o.Histogram("molecule_invoke_latency_seconds", pl).Observe(res.Total)
	o.RecordSLO(fn, res.Total)
}

// acquire returns a ready instance: a warm-pool hit, or a cold start via
// cfork (or plain boot when cfork is disabled). Each cold start refreshes
// the function's recreation cost in the greedy-dual keep-alive policy, so
// expensive-to-recreate functions win cache space.
func (rt *Runtime) acquire(p *sim.Proc, d *Deployment, pin hw.PUID, forceCold bool, parent *obs.Span) (*instance, bool, error) {
	sp := rt.obs.Span(parent, "sandbox.acquire", -1)
	if !forceCold {
		if inst := rt.popWarm(d.Fn.Name, pin); inst != nil {
			sp.SetAttr("path", "warm")
			sp.SetPU(int(inst.node.pu.ID))
			sp.Finish()
			if o := rt.obs; o != nil {
				o.Counter("molecule_warm_hits_total", puLabel(inst.node.pu.ID), obs.L("fn", d.Fn.Name)).Inc()
			}
			return inst, false, nil
		}
	}
	start := p.Now()
	inst, err := rt.coldStart(p, d, pin, sp)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.Finish()
		return nil, false, err
	}
	rt.cache.setCost(d.Fn.Name, p.Now().Sub(start).Seconds()*1000)
	sp.SetAttr("path", "cold")
	sp.SetPU(int(inst.node.pu.ID))
	sp.Finish()
	if o := rt.obs; o != nil {
		o.Counter("molecule_cold_starts_total", puLabel(inst.node.pu.ID), obs.L("fn", d.Fn.Name)).Inc()
		o.Histogram("molecule_startup_latency_seconds", puLabel(inst.node.pu.ID)).Observe(p.Now().Sub(start))
	}
	return inst, true, nil
}

// popWarm takes a warm instance for fn, honoring a PU pin. Instances whose
// sandbox was killed or deleted out-of-band are discarded rather than
// served.
//
// The fn-indexed warm counter makes the two hot cases O(1): a global miss
// (every acquire in a density run, where no instance is ever warm) returns
// without touching a single node, and a pinned lookup goes straight to its
// node. The unpinned hit path walks rt.order directly — same deterministic
// lowest-PU-first preference as before, without materializing a node slice
// per call.
//
//molecule:hotpath
func (rt *Runtime) popWarm(fn string, pin hw.PUID) *instance {
	if rt.warmTotal[fn] == 0 {
		return nil
	}
	if pin >= 0 {
		return rt.popWarmOn(rt.nodes[pin], fn)
	}
	for _, id := range rt.order {
		if inst := rt.popWarmOn(rt.nodes[id], fn); inst != nil {
			return inst
		}
	}
	return nil
}

// popWarmOn takes a warm instance for fn from one node, discarding dead
// instances along the way.
func (rt *Runtime) popWarmOn(n *puNode, fn string) *instance {
	if n == nil || rt.puDown(n.pu.ID) {
		return nil // stranded warm instances are reaped, never served
	}
	for pool := n.warm[fn]; len(pool) > 0; pool = n.warm[fn] {
		inst := pool[len(pool)-1]
		n.warm[fn] = pool[:len(pool)-1]
		rt.warmTotal[fn]--
		if inst.sb == nil || inst.sb.State != sandbox.StateRunning {
			n.liveCount-- // dead instance leaves the machine
			continue
		}
		rt.cache.hit(fn)
		return inst
	}
	return nil
}

// coldStart creates and starts a new container sandbox for the function.
// With cfork, Molecule forks from a dedicated template (code and
// dependencies preloaded, §4.2), so the per-function dependency import is
// off the critical path; plain boots pay it.
func (rt *Runtime) coldStart(p *sim.Proc, d *Deployment, pin hw.PUID, parent *obs.Span) (*instance, error) {
	ps := rt.obs.Span(parent, "placement", -1)
	n, err := rt.placeGeneral(d, pin)
	if err != nil && errors.Is(err, ErrNoCapacity) && rt.evictForPlacement(p, d, pin) {
		// Density pressure: every slot was pinned, but an idle warm
		// instance was reclaimed per keep-alive priority — retry. This
		// path only runs where placement just failed, so runs that never
		// hit capacity are byte-identical.
		n, err = rt.placeGeneral(d, pin)
	}
	if err != nil {
		ps.SetAttr("error", err.Error())
		ps.Finish()
		return nil, err
	}
	ps.SetAttr("pu", fmt.Sprintf("%d", n.pu.ID))
	ps.Finish()
	if err := rt.remoteCommand(p, n.pu.ID, parent); err != nil {
		return nil, err
	}
	if !rt.Opts.UseCfork && rt.Opts.Startup == StartupSnapshot {
		return rt.restoreFromSnapshot(p, d, n)
	}
	zygote := rt.zygoteOn()
	if rt.Opts.UseCfork {
		// Template boot is a one-time cost per (PU, language), off the
		// per-request critical path in steady state; it is charged here on
		// first use.
		if zygote {
			if _, err := n.cr.EnsureForest(p, d.Fn.Lang); err != nil {
				return nil, err
			}
		} else if _, err := n.cr.EnsureTemplate(p, d.Fn.Lang); err != nil {
			return nil, err
		}
	}
	n.sandboxSeq++
	id := fmt.Sprintf("c-%s-%d-%d", d.Fn.Name, n.pu.ID, n.sandboxSeq)
	p.Tracef("coldstart %s: creating sandbox %s on PU %d", d.Fn.Name, id, n.pu.ID)
	cs := rt.obs.Span(parent, "sandbox.create", int(n.pu.ID))
	if err := sandbox.CreateOne(p, n.cr, sandbox.Spec{ID: id, FuncID: d.Fn.Name, Lang: d.Fn.Lang, Pkgs: d.Pkgs}); err != nil {
		cs.Finish()
		return nil, err
	}
	cs.Finish()
	// Under the zygote forest, the start is a fork from the resolved
	// ancestor template; attribution splits it from the residual imports
	// paid right after, so the breakdown shows where a fitted tree saves.
	startSpan := "sandbox.start"
	if zygote {
		startSpan = "coldstart.ancestor"
	}
	ss := rt.obs.Span(parent, startSpan, int(n.pu.ID))
	if err := sandbox.StartOne(p, n.cr, id); err != nil {
		ss.Finish()
		// Don't leak the created-but-never-started sandbox: a failed start
		// (e.g. an injected fork fault) must leave no instance behind.
		sandbox.DeleteOne(p, n.cr, id)
		return nil, err
	}
	ss.Finish()
	p.Tracef("coldstart %s: sandbox %s running", d.Fn.Name, id)
	sb := n.cr.Sandbox(id)
	if zygote {
		// Pay the imports the ancestor template did not pre-run, plus the
		// function's private tail. A root-only forest (flat cfork) pays
		// the whole manifest here — exactly DepImport by calibration.
		rs := rt.obs.Span(parent, "coldstart.residual", int(n.pu.ID))
		sb.Inst.ImportResidual(p, sb.Residual, d.PkgTail)
		rs.Finish()
	}
	// Dedicated templates preload each hot function's dependencies (§4.2),
	// keeping the import off the critical path; plain boots — and cforks
	// from generic templates — pay it.
	if !rt.Opts.UseCfork || (rt.Opts.GenericTemplates && !zygote) {
		p.Sleep(n.pu.StartupTime(d.Fn.DepImport))
	}
	n.liveCount++
	// Replenish the container pool in the background so the FuncContainer
	// optimization holds for the next cold start.
	if rt.Opts.PrewarmContainers > 0 && n.cr.PoolSize() < rt.Opts.PrewarmContainers {
		cr := n.cr
		rt.Env.Spawn("prewarm", func(bg *sim.Proc) { cr.Prewarm(bg, 1) })
	}
	return &instance{fn: d.Fn.Name, node: n, sandboxID: id, sb: sb, forked: sb.Forked}, nil
}

// restoreFromSnapshot serves a cold start by restoring a per-function
// snapshot (StartupSnapshot mode). The first cold start of each function
// pays a full plain boot plus the checkpoint; later cold starts restore in
// SnapshotRestoreTime.
func (rt *Runtime) restoreFromSnapshot(p *sim.Proc, d *Deployment, n *puNode) (*instance, error) {
	snap, ok := n.snapshots[d.Fn.Name]
	if !ok {
		spec, err := lang.SpecFor(d.Fn.Lang)
		if err != nil {
			return nil, err
		}
		donor := lang.BaselineColdStart(p, n.os, spec, d.Fn.Name, "snap-donor-"+d.Fn.Name)
		p.Sleep(n.pu.StartupTime(d.Fn.DepImport))
		snap, err = lang.TakeSnapshot(p, donor)
		if err != nil {
			return nil, err
		}
		donor.Exit()
		n.snapshots[d.Fn.Name] = snap
	}
	inst := snap.Restore(p, n.os)
	n.sandboxSeq++
	id := fmt.Sprintf("s-%s-%d-%d", d.Fn.Name, n.pu.ID, n.sandboxSeq)
	// Register the restored instance under a sandbox record so the rest of
	// the lifecycle (warm pool, kill, delete) is uniform.
	sb := &sandbox.ContainerSandbox{
		Spec:  sandbox.Spec{ID: id, FuncID: d.Fn.Name, Lang: d.Fn.Lang},
		State: sandbox.StateRunning,
		Inst:  inst,
	}
	n.cr.Adopt(id, sb)
	n.liveCount++
	return &instance{fn: d.Fn.Name, node: n, sandboxID: id, sb: sb, forked: false}, nil
}

// release returns an instance to the warm pool, evicting per keep-alive
// policy.
func (rt *Runtime) release(p *sim.Proc, inst *instance) {
	n := inst.node
	n.warm[inst.fn] = append(n.warm[inst.fn], inst)
	rt.warmTotal[inst.fn]++
	evict := rt.cache.admit(inst.fn, n)
	for _, victim := range evict {
		// admit already removed the victim from its pool; settle the counter
		// here (destroy only decrements for instances it finds pooled).
		rt.warmTotal[victim.fn]--
		if o := rt.obs; o != nil {
			o.Counter("molecule_keepalive_evictions_total", puLabel(victim.node.pu.ID), obs.L("fn", victim.fn)).Inc()
		}
		rt.destroy(p, victim)
	}
}

// evictForPlacement frees one instance slot for a cold start of d that
// placement just rejected for capacity: the first supporting, live,
// capacity-full PU (same kind-then-PU-ID order as placeGeneral) with a
// non-empty warm pool gives up its keep-alive victim. Reports whether a
// slot was freed. Density-pressure reclaim — idle warm instances yield to
// demand instead of pinning the PU's instance cap forever.
func (rt *Runtime) evictForPlacement(p *sim.Proc, d *Deployment, pin hw.PUID) bool {
	try := func(n *puNode) bool {
		if n == nil || n.cr == nil || rt.puDown(n.pu.ID) || n.liveCount < n.capacity {
			return false
		}
		victim := rt.cache.victim(n)
		if victim == nil {
			return false
		}
		if o := rt.obs; o != nil {
			o.Counter("molecule_density_evictions_total", puLabel(n.pu.ID), obs.L("fn", victim.fn)).Inc()
		}
		rt.destroy(p, victim)
		return true
	}
	if pin >= 0 {
		n := rt.nodes[pin]
		if n == nil || !d.SupportsKind(n.pu.Kind) {
			return false
		}
		return try(n)
	}
	for _, kind := range generalKinds {
		if !d.SupportsKind(kind) {
			continue
		}
		for _, pu := range rt.Machine.PUsOfKind(kind) {
			if try(rt.nodes[pu.ID]) {
				return true
			}
		}
	}
	return false
}

// destroy deletes a warm instance's sandbox.
func (rt *Runtime) destroy(p *sim.Proc, inst *instance) {
	n := inst.node
	pool := n.warm[inst.fn]
	for i, cand := range pool {
		if cand == inst {
			n.warm[inst.fn] = append(pool[:i], pool[i+1:]...)
			rt.warmTotal[inst.fn]--
			break
		}
	}
	sandbox.DeleteOne(p, n.cr, inst.sandboxID)
	n.liveCount--
}

// AcquireHeld cold-starts (or reuses) an instance and keeps it allocated
// until ReleaseHeld — the building block for the Fig 2a density experiment
// and for pre-booted chain instances.
func (rt *Runtime) AcquireHeld(p *sim.Proc, funcName string, pin hw.PUID) (*instance, error) {
	d, err := rt.Deployment(funcName)
	if err != nil {
		return nil, err
	}
	inst, _, err := rt.acquire(p, d, pin, false, nil)
	return inst, err
}

// ReleaseHeld returns a held instance to the warm pool.
func (rt *Runtime) ReleaseHeld(p *sim.Proc, inst *instance) { rt.release(p, inst) }

// invokeFPGA serves the request on the function's FPGA sandbox.
func (rt *Runtime) invokeFPGA(p *sim.Proc, d *Deployment, opts InvokeOptions, settle bool) (Result, error) {
	start := p.Now()
	root := rt.obs.Span(opts.Span, "invoke", int(rt.hostID))
	root.SetAttr("fn", d.Fn.Name)
	n, id, err := rt.fpgaSandboxFor(d.Fn.Name)
	if err != nil {
		// Image miss: (re)extend the vectorized image — the cold path.
		es := rt.obs.Span(root, "fpga.extend_image", -1)
		if err := rt.extendFPGAImages(p, d.Fn.Name); err != nil {
			es.Finish()
			root.Finish()
			return Result{}, err
		}
		es.Finish()
		n, id, err = rt.fpgaSandboxFor(d.Fn.Name)
		if err != nil {
			root.Finish()
			return Result{}, err
		}
	}
	startupDone := p.Now()
	argB, resB := d.Fn.Sizes(opts.Arg)
	execStart := p.Now()
	hs := rt.obs.Span(root, "handler", int(n.pu.ID))
	if err := n.runf.Invoke(p, id, argB, resB, d.Fn.FabricCost(opts.Arg), sandbox.InvokeOptions{}); err != nil {
		hs.Finish()
		root.Finish()
		return Result{}, err
	}
	hs.Finish()
	res := Result{
		Fn: d.Fn.Name, PU: n.pu.ID, Kind: hw.FPGA,
		Cold:    startupDone != start,
		Startup: startupDone.Sub(start),
		Exec:    p.Now().Sub(execStart),
		Handler: p.Now().Sub(execStart),
		Total:   p.Now().Sub(start),
	}
	root.SetAttr("pu", fmt.Sprintf("%d", n.pu.ID))
	root.Finish() // root span duration == res.Total by construction
	n.busy += res.Exec
	if opts.RunBody && d.Fn.Body != nil {
		out, bodyErr := d.Fn.Body(opts.Arg)
		if bodyErr != nil {
			return Result{}, bodyErr
		}
		res.Output = out
	}
	if settle {
		rt.settleResult(d, res)
	}
	return res, nil
}

// invokeGPU serves the request on the function's GPU sandbox.
func (rt *Runtime) invokeGPU(p *sim.Proc, d *Deployment, opts InvokeOptions, settle bool) (Result, error) {
	start := p.Now()
	root := rt.obs.Span(opts.Span, "invoke", int(rt.hostID))
	root.SetAttr("fn", d.Fn.Name)
	n, id, err := rt.gpuSandboxFor(d.Fn.Name)
	if err != nil {
		ls := rt.obs.Span(root, "gpu.load_kernel", -1)
		if err := rt.loadGPUKernel(p, d.Fn.Name); err != nil {
			ls.Finish()
			root.Finish()
			return Result{}, err
		}
		ls.Finish()
		n, id, err = rt.gpuSandboxFor(d.Fn.Name)
		if err != nil {
			root.Finish()
			return Result{}, err
		}
	}
	startupDone := p.Now()
	argB, resB := d.Fn.Sizes(opts.Arg)
	execStart := p.Now()
	hs := rt.obs.Span(root, "handler", int(n.pu.ID))
	if err := n.rung.Invoke(p, id, argB, resB, d.Fn.GPUKernel); err != nil {
		hs.Finish()
		root.Finish()
		return Result{}, err
	}
	hs.Finish()
	res := Result{
		Fn: d.Fn.Name, PU: n.pu.ID, Kind: hw.GPU,
		Cold:    startupDone != start,
		Startup: startupDone.Sub(start),
		Exec:    p.Now().Sub(execStart),
		Handler: p.Now().Sub(execStart),
		Total:   p.Now().Sub(start),
	}
	root.SetAttr("pu", fmt.Sprintf("%d", n.pu.ID))
	root.Finish() // root span duration == res.Total by construction
	n.busy += res.Exec
	if settle {
		rt.settleResult(d, res)
	}
	return res, nil
}
