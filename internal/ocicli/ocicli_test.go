package ocicli

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

func containerShell() (*sim.Env, *Shell) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	os := localos.New(env, m.PU(0))
	cr := sandbox.NewContainerRuntime(os)
	return env, New(cr)
}

func fpgaShell() (*sim.Env, *Shell, *sandbox.RunF) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{FPGAs: 1})
	rf, err := sandbox.NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
	if err != nil {
		panic(err)
	}
	return env, New(rf), rf
}

func TestContainerLifecycleViaCLI(t *testing.T) {
	env, sh := containerShell()
	env.Spawn("x", func(p *sim.Proc) {
		out, err := sh.Script(p, `
# Table 3 OCI verbs, one-sized vectors
create s1:helloworld
state s1
start s1
state s1
kill s1 9
delete s1
state s1
`)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"created 1", "s1\tcreated", "started 1",
			"s1\trunning", "signalled 1", "deleted 1", "s1\tunknown"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
	env.Run()
}

func TestVectorizedCreateStartViaCLI(t *testing.T) {
	env, sh, rf := fpgaShell()
	env.Spawn("x", func(p *sim.Proc) {
		out, err := sh.Script(p, `
create a:madd,b:mmult,c:mscale
start a,b,c
state a,b,c
`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "created 3") || !strings.Contains(out, "started 3") {
			t.Errorf("vector verbs failed:\n%s", out)
		}
		if strings.Count(out, "running") != 3 {
			t.Errorf("want 3 running sandboxes:\n%s", out)
		}
		// One flush for the whole vector.
		if progs, _ := rf.Device().ProgramCounts(); progs != 1 {
			t.Errorf("programs = %d, want 1", progs)
		}
	})
	env.Run()
}

func TestCLIParseErrors(t *testing.T) {
	env, sh := containerShell()
	env.Spawn("x", func(p *sim.Proc) {
		for _, bad := range []string{
			"frobnicate x",
			"create noformat",
			"create",
			"start",
			"kill s1",
			"kill s1 notanumber",
			"delete",
		} {
			if _, err := sh.Execute(p, bad); err == nil {
				t.Errorf("command %q accepted", bad)
			}
		}
		// Blank lines and comments are no-ops.
		if out, err := sh.Execute(p, "   "); err != nil || out != "" {
			t.Error("blank line not a no-op")
		}
		if out, err := sh.Execute(p, "# comment"); err != nil || out != "" {
			t.Error("comment not a no-op")
		}
	})
	env.Run()
}

func TestCLILangOption(t *testing.T) {
	env, sh := containerShell()
	env.Spawn("x", func(p *sim.Proc) {
		if _, err := sh.Execute(p, "create n1:alexa-frontend lang=nodejs"); err != nil {
			t.Fatal(err)
		}
		cr := sh.Runtime.(*sandbox.ContainerRuntime)
		if sb := cr.Sandbox("n1"); sb == nil || sb.Spec.Lang != "nodejs" {
			t.Error("lang option not applied")
		}
	})
	env.Run()
}

func TestScriptStopsAtError(t *testing.T) {
	env, sh := containerShell()
	env.Spawn("x", func(p *sim.Proc) {
		_, err := sh.Script(p, "create a:f\nbogus\ncreate b:f")
		if err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("script error = %v, want line-2 failure", err)
		}
		cr := sh.Runtime.(*sandbox.ContainerRuntime)
		if cr.Sandbox("b") != nil {
			t.Error("script continued past the error")
		}
	})
	env.Run()
}
