package molecule

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// SLOObjective selects what "cheapest" means among deadline-feasible
// profiles.
type SLOObjective int

const (
	// MinimizeCharge picks the lowest estimated total charge
	// (estimated ms × rate) — the economically sound default: a premium
	// accelerator can be the cheapest when it finishes much sooner.
	MinimizeCharge SLOObjective = iota
	// MinimizeRate picks the lowest per-millisecond rate (the §4.1 user
	// intuition: DPU cheapest, FPGA priciest), regardless of duration.
	MinimizeRate
)

// SLOOptions ask the platform to pick a profile for the request (§4.1:
// "users can choose multiple settings and let the platform decide"):
// among the function's deployed profiles, choose the cheapest (per the
// objective) whose estimated latency meets the deadline; with no feasible
// profile, the fastest wins.
type SLOOptions struct {
	// Deadline bounds the estimated end-to-end latency (0 = none: pick the
	// cheapest profile outright).
	Deadline time.Duration
	// Objective defines cheapest (default MinimizeCharge).
	Objective SLOObjective
	// Arg parameterizes the cost estimate and the invocation.
	Arg workloads.Arg
}

// EstimateLatency predicts the end-to-end latency of funcName on the given
// PU kind from the cost models: warm dispatch + execution, plus the
// cold-start estimate when no warm instance (or cached image) is available.
func (rt *Runtime) EstimateLatency(funcName string, kind hw.PUKind, arg workloads.Arg) (time.Duration, error) {
	d, err := rt.Deployment(funcName)
	if err != nil {
		return 0, err
	}
	if _, ok := d.ProfileFor(kind); !ok {
		return 0, fmt.Errorf("molecule: %q has no %v profile", funcName, kind)
	}
	switch kind {
	case hw.FPGA:
		argB, resB := d.Fn.Sizes(arg)
		est := d.Fn.FabricCost(arg) + params.FPGACommandLatency
		if n, _, err := rt.fpgaSandboxFor(funcName); err == nil {
			l, _ := rt.Machine.LinkBetween(rt.hostID, n.pu.ID)
			est += l.TransferTime(argB) + l.TransferTime(resB)
		} else {
			// Image miss: reprogramming dominates.
			est += params.FPGAImageLoadTime + params.FPGASandboxPrep
		}
		return est, nil
	case hw.GPU:
		if _, _, err := rt.gpuSandboxFor(funcName); err != nil {
			est := d.Fn.GPUKernel + 200*time.Millisecond // module load class
			return est, nil
		}
		return d.Fn.GPUKernel + 2*params.DMABaseLatency + 50*time.Microsecond, nil
	default:
		// General-purpose: find a PU of this kind.
		var pu *hw.PU
		for _, cand := range rt.Machine.PUsOfKind(kind) {
			pu = cand
			break
		}
		if pu == nil {
			return 0, fmt.Errorf("molecule: machine has no %v", kind)
		}
		est := params.WarmDispatchTime + pu.ComputeTime(d.Fn.CPUCost(arg))
		if rt.peekWarm(funcName, kind) == nil {
			// Cold start: cfork or plain boot + dependency import.
			if rt.Opts.UseCfork {
				est += pu.StartupTime(30 * time.Millisecond) // cfork class
			} else {
				est += pu.StartupTime(params.ContainerCreateTime + params.PythonInitTime + d.Fn.DepImport)
			}
		}
		return est, nil
	}
}

// peekWarm reports a warm instance of fn on any PU of the kind, without
// taking it.
func (rt *Runtime) peekWarm(fn string, kind hw.PUKind) *instance {
	for _, n := range rt.orderedNodes() {
		if n.pu.Kind != kind {
			continue
		}
		for _, inst := range n.warm[fn] {
			if inst.sb != nil {
				return inst
			}
		}
	}
	return nil
}

// InvokeWithSLO picks the cheapest deployed profile whose latency estimate
// meets the deadline and invokes the function there. The chosen kind and
// the estimate are returned alongside the result.
func (rt *Runtime) InvokeWithSLO(p *sim.Proc, funcName string, slo SLOOptions) (Result, hw.PUKind, time.Duration, error) {
	d, err := rt.Deployment(funcName)
	if err != nil {
		return Result{}, 0, 0, err
	}
	type candidate struct {
		kind hw.PUKind
		cost float64 // objective value: lower is better
		est  time.Duration
	}
	var cands []candidate
	for _, pr := range d.Profiles {
		est, err := rt.EstimateLatency(funcName, pr.Kind, slo.Arg)
		if err != nil {
			continue
		}
		cost := pr.PricePerMs
		if slo.Objective == MinimizeCharge {
			cost = pr.PricePerMs * (float64(est) / float64(time.Millisecond))
		}
		cands = append(cands, candidate{kind: pr.Kind, cost: cost, est: est})
	}
	if len(cands) == 0 {
		return Result{}, 0, 0, fmt.Errorf("molecule: no usable profile for %q", funcName)
	}
	best := -1
	for i, c := range cands {
		if slo.Deadline > 0 && c.est > slo.Deadline {
			continue
		}
		if best == -1 || c.cost < cands[best].cost ||
			(c.cost == cands[best].cost && c.est < cands[best].est) {
			best = i
		}
	}
	if best == -1 {
		// Infeasible deadline: the fastest profile is the best effort.
		best = 0
		for i, c := range cands {
			if c.est < cands[best].est {
				best = i
			}
		}
	}
	chosen := cands[best]
	// Pin to a PU of the chosen kind.
	pin := hw.PUID(-1)
	for _, pu := range rt.Machine.PUsOfKind(chosen.kind) {
		pin = pu.ID
		break
	}
	res, err := rt.Invoke(p, funcName, InvokeOptions{PU: pin, Arg: slo.Arg})
	return res, chosen.kind, chosen.est, err
}
