package mem

// Stand-in for the mem address-space fork/release pairing.

type AddressSpace struct{ pages int }

func (as *AddressSpace) Fork() *AddressSpace { return &AddressSpace{} }

func (as *AddressSpace) Release() {}

func corrupt() bool { return false }

// ForkDouble is the PR 9 shape on the receiver-style release: an eviction
// branch releases, then the shared epilogue releases again.
func ForkDouble(tmpl *AddressSpace) error {
	child := tmpl.Fork()
	if corrupt() {
		child.Release()
	}
	child.Release() // want `releasepath: forked address space "child" released twice on a path`
	return nil
}

// ForkDefer is the canonical correct shape.
func ForkDefer(tmpl *AddressSpace) *AddressSpace {
	child := tmpl.Fork()
	defer child.Release()
	return tmpl.Fork() // the returned fork transfers with the value
}

// ForkLeak never releases on the bail-out path.
func ForkLeak(tmpl *AddressSpace) error {
	child := tmpl.Fork() // want `releasepath: forked address space "child" acquired here can reach the return at`
	if corrupt() {
		return nil
	}
	child.Release()
	return nil
}
