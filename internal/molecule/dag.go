package molecule

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

// ChainOptions configure a function-chain (serverless DAG) invocation.
type ChainOptions struct {
	// Placement pins each function to a PU; nil applies the chain-affinity
	// policy (§5 "Profile selections"): the whole chain lands on the host.
	// Entries of -1 fall back to the host.
	Placement []hw.PUID
	// Arg parameterizes cost models.
	Arg workloads.Arg
}

// ChainResult reports a chain invocation's end-to-end outcome.
type ChainResult struct {
	Total time.Duration
	// EdgeLatency is the per-edge request latency: caller write start →
	// callee dispatch complete (what Fig 12 plots).
	EdgeLatency []time.Duration
	// ExecTotal sums handler execution across the chain.
	ExecTotal time.Duration
	// ColdStarts counts instances that had to cold start.
	ColdStarts int
}

// pipe is one direction of a chain edge: a local FIFO when both ends share
// a PU, an XPU-FIFO otherwise.
type pipe struct {
	local *localos.FIFO
	// sender / receiver descriptors for the nIPC case.
	sendFD *xpu.FD
	recvFD *xpu.FD
}

func (pp *pipe) send(p *sim.Proc, m localos.Message) error {
	if pp.local != nil {
		pp.local.Write(p, m)
		return nil
	}
	return pp.sendFD.Write(p, m)
}

func (pp *pipe) recv(p *sim.Proc) (localos.Message, error) {
	if pp.local != nil {
		m, ok := pp.local.Read(p)
		if !ok {
			return localos.Message{}, fmt.Errorf("molecule: chain FIFO closed")
		}
		return m, nil
	}
	return pp.recvFD.Read(p)
}

// edge is the full-duplex direct connection between a caller and callee
// (§4.3 "direct connect": a pair of FIFOs, no intermediate bus or engine).
type edge struct {
	req  *pipe
	resp *pipe
}

// endpoint is one side of a chain edge: a shim node plus the OS process
// that owns the FIFO descriptors.
type endpoint struct {
	node *puNode
	proc *localos.Process
}

func instEndpoint(inst *instance) endpoint {
	return endpoint{node: inst.node, proc: inst.sb.Inst.Proc}
}

// buildEdge wires a duplex connection from caller to callee. The request
// FIFO is homed at the callee (its self_fifo); the response FIFO at the
// caller.
func (rt *Runtime) buildEdge(p *sim.Proc, caller, callee endpoint) (*edge, error) {
	if caller.node.pu.ID == callee.node.pu.ID {
		os := caller.node.os
		req := os.CreateFIFO(rt.nextFIFO("req"), 4)
		resp := os.CreateFIFO(rt.nextFIFO("resp"), 4)
		return &edge{req: &pipe{local: req}, resp: &pipe{local: resp}}, nil
	}
	callerX := caller.node.node.Register(caller.proc)
	calleeX := callee.node.node.Register(callee.proc)

	mk := func(home endpoint, homeX, peerX xpu.XPID, peerNode *xpu.Node, name string) (*pipe, error) {
		uuid := rt.nextFIFO(name)
		homeFD, err := home.node.node.FIFOInit(p, homeX, uuid, 4)
		if err != nil {
			return nil, err
		}
		obj := xpu.ObjID{Kind: "fifo", UUID: uuid}
		if err := home.node.node.GrantCap(p, homeX, peerX, obj, xpu.PermRead|xpu.PermWrite); err != nil {
			return nil, err
		}
		peerFD, err := peerNode.FIFOConnect(p, peerX, uuid)
		if err != nil {
			return nil, err
		}
		return &pipe{sendFD: peerFD, recvFD: homeFD}, nil
	}
	req, err := mk(callee, calleeX, callerX, caller.node.node, "req")
	if err != nil {
		return nil, err
	}
	resp, err := mk(caller, callerX, calleeX, callee.node.node, "resp")
	if err != nil {
		return nil, err
	}
	// In the response pipe the callee sends and the caller receives.
	return &edge{req: req, resp: resp}, nil
}

// chainMeta is the per-request metadata carried in FIFO messages.
type chainMeta struct {
	sentAt sim.Time
}

// InvokeChain runs a synchronous function chain over direct-connect
// IPC/nIPC: each function instance runs as its own process, blocked on its
// request FIFO; requests flow down the chain and the response propagates
// back up (Fig 12, Fig 14e).
func (rt *Runtime) InvokeChain(p *sim.Proc, names []string, opts ChainOptions) (ChainResult, error) {
	if len(names) == 0 {
		return ChainResult{}, fmt.Errorf("molecule: empty chain")
	}
	n := len(names)
	placement := opts.Placement
	if placement == nil {
		placement = make([]hw.PUID, n)
		for i := range placement {
			placement[i] = rt.hostID // chain affinity: co-locate the chain
		}
	}
	if len(placement) != n {
		return ChainResult{}, fmt.Errorf("molecule: placement length %d != chain length %d", len(placement), n)
	}

	// Acquire instances (warm where possible). The release defer is
	// registered before the acquire loop: when a later function's acquire
	// fails (capacity race between concurrent chains), the instances already
	// acquired must go back to the warm pool — leaking them pins liveCount
	// above capacity forever and wedges every subsequent placement.
	var res ChainResult
	insts := make([]*instance, n)
	deps := make([]*Deployment, n)
	defer func() {
		for _, inst := range insts {
			if inst != nil {
				rt.release(p, inst)
			}
		}
	}()
	for i, name := range names {
		d, err := rt.Deployment(name)
		if err != nil {
			return ChainResult{}, err
		}
		deps[i] = d
		pin := placement[i]
		if pin < 0 {
			pin = rt.hostID
		}
		inst, cold, err := rt.acquire(p, d, pin, false, nil)
		if err != nil {
			return ChainResult{}, err
		}
		if cold {
			res.ColdStarts++
		}
		insts[i] = inst
	}

	// Wire the gateway edge plus one edge per chain hop.
	hostNode := rt.nodes[rt.hostID]
	gw := endpoint{node: hostNode, proc: hostNode.os.NewDetachedProcess("gateway")}
	gwEdge, err := rt.buildEdge(p, gw, instEndpoint(insts[0]))
	if err != nil {
		return ChainResult{}, err
	}
	edges := make([]*edge, n-1)
	for i := 0; i < n-1; i++ {
		e, err := rt.buildEdge(p, instEndpoint(insts[i]), instEndpoint(insts[i+1]))
		if err != nil {
			return ChainResult{}, err
		}
		edges[i] = e
	}

	edgeLat := make([]time.Duration, n)
	execDur := make([]time.Duration, n)

	// Spawn one process per instance.
	done := sim.NewWaitGroup(rt.Env)
	done.Add(n)
	for i := n - 1; i >= 0; i-- {
		i := i
		inst, d := insts[i], deps[i]
		in := gwEdge
		if i > 0 {
			in = edges[i-1]
		}
		var out *edge
		if i < n-1 {
			out = edges[i]
		}
		rt.Env.Spawn(fmt.Sprintf("chain-%s", inst.fn), func(fp *sim.Proc) {
			defer done.Done()
			// The language runtime's per-hop dispatch work splits between
			// the sender (serialize the event) and the receiver
			// (deserialize, schedule the handler), each on its own PU.
			half := scaledDispatch(inst.node.pu) / 2
			msg, err := in.req.recv(fp)
			if err != nil {
				return
			}
			fp.Sleep(half)
			if meta, ok := msg.Meta.(chainMeta); ok {
				edgeLat[i] = time.Duration(fp.Now() - meta.sentAt)
			}
			start := fp.Now()
			inst.sb.Inst.Invoke(fp, d.Fn.CPUCost(opts.Arg), inst.forked)
			execDur[i] = fp.Now().Sub(start)
			inst.node.busy += execDur[i]

			var respPayload []byte
			_, resB := d.Fn.Sizes(opts.Arg)
			if out != nil {
				nextArg, _ := deps[i+1].Fn.Sizes(opts.Arg)
				sentAt := fp.Now()
				fp.Sleep(half) // serialize the downstream request
				if err := out.req.send(fp, localos.Message{
					From: inst.fn, Kind: "req",
					Payload: make([]byte, nextArg),
					Meta:    chainMeta{sentAt: sentAt},
				}); err != nil {
					return
				}
				resp, err := out.resp.recv(fp)
				if err != nil {
					return
				}
				fp.Sleep(half) // deserialize the downstream response
				respPayload = resp.Payload
			} else {
				respPayload = make([]byte, resB)
			}
			fp.Sleep(half) // serialize the response
			in.resp.send(fp, localos.Message{From: inst.fn, Kind: "resp", Payload: respPayload})
		})
	}

	// Drive the request from the gateway and wait for the response.
	argB, _ := deps[0].Fn.Sizes(opts.Arg)
	start := p.Now()
	if err := gwEdge.req.send(p, localos.Message{
		From: "gateway", Kind: "req",
		Payload: make([]byte, argB),
		Meta:    chainMeta{sentAt: p.Now()},
	}); err != nil {
		return ChainResult{}, err
	}
	if _, err := gwEdge.resp.recv(p); err != nil {
		return ChainResult{}, err
	}
	res.Total = p.Now().Sub(start)
	done.Wait(p)

	res.EdgeLatency = edgeLat[1:] // drop the gateway edge
	for _, d := range execDur {
		res.ExecTotal += d
	}
	for i, d := range deps {
		pr, _ := d.ProfileFor(insts[i].node.pu.Kind)
		rt.bill.Record(d.Fn.Name, insts[i].node.pu.Kind, execDur[i], pr.PricePerMs)
	}
	return res, nil
}

// AccelChainOptions configure a host-driven accelerator chain.
type AccelChainOptions struct {
	Arg workloads.Arg
	// ForceCopy disables the DRAM-retention zero-copy path even when the
	// device supports it (the Fig 13 "Copying" series).
	ForceCopy bool
	// CPUFallback executes every stage on the CPU instead (comparison
	// series of Fig 14f/g/h).
	CPUFallback bool
}

// InvokeAccelChain runs a chain whose stages may live on accelerators. The
// host executor drives the pipeline; consecutive FPGA stages on the same
// device exchange data through retained DRAM banks (zero copy, §4.3)
// unless ForceCopy is set.
func (rt *Runtime) InvokeAccelChain(p *sim.Proc, names []string, opts AccelChainOptions) (ChainResult, error) {
	if len(names) == 0 {
		return ChainResult{}, fmt.Errorf("molecule: empty chain")
	}
	var res ChainResult
	start := p.Now()

	type stage struct {
		d    *Deployment
		fpga *puNode
		id   string
	}
	stages := make([]stage, len(names))
	for i, name := range names {
		d, err := rt.Deployment(name)
		if err != nil {
			return ChainResult{}, err
		}
		stages[i].d = d
		if !opts.CPUFallback && d.SupportsKind(hw.FPGA) {
			n, id, err := rt.fpgaSandboxFor(name)
			if err != nil {
				if err := rt.extendFPGAImages(p, name); err != nil {
					return ChainResult{}, err
				}
				if n, id, err = rt.fpgaSandboxFor(name); err != nil {
					return ChainResult{}, err
				}
			}
			stages[i].fpga, stages[i].id = n, id
		}
	}

	for i, st := range stages {
		execStart := p.Now()
		if st.fpga != nil {
			prevFPGA := i > 0 && stages[i-1].fpga == st.fpga
			nextFPGA := i < len(stages)-1 && stages[i+1].fpga == st.fpga
			retention := st.fpga.pu.Device.Retention() && !opts.ForceCopy
			argB, resB := st.d.Fn.Sizes(opts.Arg)
			iopts := sandbox.InvokeOptions{
				InputRetained: prevFPGA && retention,
				RetainOutput:  nextFPGA && retention,
			}
			if iopts.InputRetained {
				if err := st.fpga.runf.MarkRetained(st.d.Fn.Name); err != nil {
					return ChainResult{}, err
				}
			}
			if err := st.fpga.runf.Invoke(p, st.id, argB, resB, st.d.Fn.FabricCost(opts.Arg), iopts); err != nil {
				return ChainResult{}, err
			}
		} else {
			// General-purpose stage on the host: warm instance + dispatch.
			inst, cold, err := rt.acquire(p, st.d, rt.hostID, false, nil)
			if err != nil {
				return ChainResult{}, err
			}
			if cold {
				res.ColdStarts++
			}
			p.Sleep(scaledDispatch(inst.node.pu))
			inst.sb.Inst.Invoke(p, st.d.Fn.CPUCost(opts.Arg), inst.forked)
			rt.release(p, inst)
		}
		d := p.Now().Sub(execStart)
		res.ExecTotal += d
		res.EdgeLatency = append(res.EdgeLatency, d)
	}
	res.Total = p.Now().Sub(start)
	return res, nil
}
