package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/sim"
)

// WindowTelemetry accumulates sim.WindowStats across a sharded run: round
// and horizon progress, per-domain event counts, barrier stalls, and the
// cumulative cross-domain flow matrix. It implements sim.WindowObserver
// (the kernel defines the interface, obs implements it — sim stays below
// obs in the layering DAG).
//
// A barrier stall is a domain-round that fired zero events: the domain had
// nothing inside [horizon, horizon+L) and spent the window blocked on the
// barrier. A high stall ratio means the lookahead is too small for the
// workload's event density — windows are opening faster than domains have
// work — which is exactly the question to answer before scaling a topology
// out. Everything here is virtual-time-deterministic: identical bytes at
// every worker count (a wall-clock stall measure would not be).
//
// The zero value is ready to use; sizes are taken from the first round.
// A nil *WindowTelemetry is safe to pass to Sharded.SetWindowObserver
// indirectly (don't: pass nil WindowObserver instead) but its methods
// no-op like the rest of obs.
type WindowTelemetry struct {
	domains   int
	rounds    int64
	delivered int64
	events    []int64 // per-domain total events
	stalls    []int64 // per-domain zero-event rounds
	flow      []int64 // cumulative D×D src→dst message counts

	first, last sim.Time // horizon at the first and latest round
	haveFirst   bool

	keep int           // max per-round samples retained for WriteChromeTrace
	kept []windowRound // per-round retained samples (copies)
}

// windowRound is one retained round sample (buffers copied out of the
// kernel's reused WindowStats slices).
type windowRound struct {
	round     int64
	horizon   sim.Time
	bound     sim.Time
	delivered int
	events    []int
}

// KeepRounds retains up to max per-round samples for the Perfetto counter
// tracks (WriteChromeTrace). 0 (the default) keeps none — the summary
// counters cost O(domains) memory regardless of run length. Nil-safe.
func (wt *WindowTelemetry) KeepRounds(max int) {
	if wt == nil {
		return
	}
	wt.keep = max
}

// WindowRound implements sim.WindowObserver. The stats' Events and Flow
// slices are the kernel's reused buffers; everything needed later is
// copied here.
func (wt *WindowTelemetry) WindowRound(ws sim.WindowStats) {
	if wt == nil {
		return
	}
	d := len(ws.Events)
	if wt.events == nil {
		wt.domains = d
		wt.events = make([]int64, d)
		wt.stalls = make([]int64, d)
		wt.flow = make([]int64, d*d)
	}
	wt.rounds++
	wt.delivered += int64(ws.Delivered)
	for i, n := range ws.Events {
		wt.events[i] += int64(n)
		if n == 0 {
			wt.stalls[i]++
		}
	}
	for i, n := range ws.Flow {
		wt.flow[i] += n
	}
	if !wt.haveFirst {
		wt.first, wt.haveFirst = ws.Horizon, true
	}
	wt.last = ws.Horizon
	if len(wt.kept) < wt.keep {
		wt.kept = append(wt.kept, windowRound{
			round: ws.Round, horizon: ws.Horizon, bound: ws.Bound,
			delivered: ws.Delivered,
			events:    append([]int(nil), ws.Events...),
		})
	}
}

// Rounds returns the number of windowed rounds observed.
func (wt *WindowTelemetry) Rounds() int64 {
	if wt == nil {
		return 0
	}
	return wt.rounds
}

// Delivered returns the total cross-domain messages observed at barriers.
func (wt *WindowTelemetry) Delivered() int64 {
	if wt == nil {
		return 0
	}
	return wt.delivered
}

// StallRatio returns stalled domain-rounds over total domain-rounds
// (0 with no rounds).
func (wt *WindowTelemetry) StallRatio() float64 {
	if wt == nil || wt.rounds == 0 || wt.domains == 0 {
		return 0
	}
	var stalls int64
	for _, s := range wt.stalls {
		stalls += s
	}
	return float64(stalls) / float64(wt.rounds*int64(wt.domains))
}

// WriteText renders the accumulated telemetry as a fixed-layout summary —
// the `molecule-bench -soak` telemetry section. Deterministic: every line
// is a pure function of virtual-time state.
func (wt *WindowTelemetry) WriteText(w io.Writer) error {
	var b strings.Builder
	b.WriteString("== Sharded-kernel window telemetry ==\n")
	if wt == nil || wt.rounds == 0 {
		b.WriteString("   no windowed rounds observed\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	advance := time.Duration(wt.last - wt.first)
	perRound := time.Duration(0)
	if wt.rounds > 1 {
		perRound = advance / time.Duration(wt.rounds-1)
	}
	var events, stalls int64
	for i := range wt.events {
		events += wt.events[i]
		stalls += wt.stalls[i]
	}
	fmt.Fprintf(&b, "   rounds          %d\n", wt.rounds)
	fmt.Fprintf(&b, "   events          %d (%.1f/window)\n", events, float64(events)/float64(wt.rounds))
	fmt.Fprintf(&b, "   horizon advance %v (%v/round)\n", advance, perRound)
	fmt.Fprintf(&b, "   delivered       %d cross-domain messages\n", wt.delivered)
	fmt.Fprintf(&b, "   barrier stalls  %d/%d domain-rounds (%.1f%%)\n",
		stalls, wt.rounds*int64(wt.domains), 100*wt.StallRatio())
	b.WriteString("   domain  events  ev/round  stalls  stall%\n")
	for i := 0; i < wt.domains; i++ {
		fmt.Fprintf(&b, "   %-6d  %-6d  %-8.1f  %-6d  %.1f%%\n",
			i, wt.events[i], float64(wt.events[i])/float64(wt.rounds),
			wt.stalls[i], 100*float64(wt.stalls[i])/float64(wt.rounds))
	}
	if wt.delivered > 0 {
		b.WriteString("   flow (src->dst messages):\n")
		for src := 0; src < wt.domains; src++ {
			fmt.Fprintf(&b, "   %5d:", src)
			for dst := 0; dst < wt.domains; dst++ {
				fmt.Fprintf(&b, " %6d", wt.flow[src*wt.domains+dst])
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteChromeTrace exports the retained rounds (KeepRounds) as Perfetto
// counter tracks: per-domain events-per-window plus a barrier-delivery
// track, one counter sample per round at the round's horizon. Load
// alongside the span trace to see which domains starve inside each window.
// Nil-safe; with no retained rounds the trace is empty but valid.
func (wt *WindowTelemetry) WriteChromeTrace(w io.Writer) error {
	type counterEvent struct {
		Name string           `json:"name"`
		Ph   string           `json:"ph"`
		Pid  int              `json:"pid"`
		Tid  int              `json:"tid"`
		Ts   float64          `json:"ts"`
		Args map[string]int64 `json:"args"`
	}
	type counterFile struct {
		TraceEvents     []counterEvent `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
	}
	file := counterFile{TraceEvents: []counterEvent{}, DisplayTimeUnit: "ms"}
	if wt != nil {
		for _, r := range wt.kept {
			ts := usec(int64(r.horizon))
			for dom, n := range r.events {
				file.TraceEvents = append(file.TraceEvents, counterEvent{
					Name: fmt.Sprintf("window events dom %d", dom),
					Ph:   "C", Pid: 1, Tid: dom + chromeTrackOffset, Ts: ts,
					Args: map[string]int64{"events": int64(n)},
				})
			}
			file.TraceEvents = append(file.TraceEvents, counterEvent{
				Name: "barrier delivered",
				Ph:   "C", Pid: 1, Tid: 0, Ts: ts,
				Args: map[string]int64{"messages": int64(r.delivered)},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
