package molecule_test

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Deploy a function with CPU and FPGA profiles and invoke it; the FPGA
// profile wins placement because the request was priced for it.
func Example() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := rt.Deploy(p, "mscale",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
			fmt.Println(err)
			return
		}
		res, err := rt.Invoke(p, "mscale", molecule.DefaultInvokeOptions())
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("served on %v, handler latency %v\n", res.Kind, res.Handler)
	})
	env.Run()
	// Output:
	// served on FPGA, handler latency 77.384µs
}

// Chains run over direct-connect FIFOs; placement nil co-locates the whole
// chain on the host (chain affinity).
func ExampleRuntime_InvokeChain() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, _ := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		chain := workloads.MapReduceChain()
		for _, fn := range chain {
			rt.Deploy(p, fn)
		}
		rt.InvokeChain(p, chain, molecule.ChainOptions{}) // boot instances
		res, _ := rt.InvokeChain(p, chain, molecule.ChainOptions{})
		fmt.Printf("3-function chain, %d cold starts, %d measured edges\n",
			res.ColdStarts, len(res.EdgeLatency))
	})
	env.Run()
	// Output:
	// 3-function chain, 0 cold starts, 2 measured edges
}

// DAGs support fan-out: both mappers run concurrently.
func ExampleRuntime_InvokeDAG() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, _ := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		for _, fn := range workloads.MapReduceChain() {
			rt.Deploy(p, fn)
		}
		dag := molecule.MapReduceDAG(2)
		rt.InvokeDAG(p, dag, molecule.DAGOptions{}) // boot
		res, _ := rt.InvokeDAG(p, dag, molecule.DAGOptions{})
		fmt.Printf("mappers finished together: %v\n",
			res.NodeFinish[1] == res.NodeFinish[2])
	})
	env.Run()
	// Output:
	// mappers finished together: true
}
