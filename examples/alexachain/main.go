// Alexa chain: the ServerlessBench Alexa skill DAG (5 Node.js functions)
// running on Molecule's direct-connect IPC/nIPC DAG engine, compared with
// the Molecule-homo baseline's network path — including a cross-PU
// placement where every inter-function call hops between the CPU and a DPU.
//
//	go run ./examples/alexachain
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{DPUs: 1})

	env.Spawn("operator", func(p *sim.Proc) {
		rt, err := molecule.New(p, machine, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		homo := baseline.NewHomo(env, machine, rt.Registry)
		chain := workloads.AlexaChain()
		for _, fn := range chain {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				log.Fatal(err)
			}
		}
		dpu := machine.PUsOfKind(hw.DPU)[0].ID

		placements := map[string][]hw.PUID{
			"all-CPU":  {0, 0, 0, 0, 0},
			"all-DPU":  {dpu, dpu, dpu, dpu, dpu},
			"cross-PU": {0, dpu, 0, dpu, 0},
		}
		for _, name := range []string{"all-CPU", "all-DPU", "cross-PU"} {
			pl := placements[name]
			// Warm both systems, then measure.
			if _, err := rt.InvokeChain(p, chain, molecule.ChainOptions{Placement: pl}); err != nil {
				log.Fatal(err)
			}
			if _, err := homo.InvokeChain(p, chain, pl, workloads.Arg{}); err != nil {
				log.Fatal(err)
			}
			mol, err := rt.InvokeChain(p, chain, molecule.ChainOptions{Placement: pl})
			if err != nil {
				log.Fatal(err)
			}
			base, err := homo.InvokeChain(p, chain, pl, workloads.Arg{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s baseline %-9v molecule %-9v (%.2fx better)\n",
				name, base.Total, mol.Total, float64(base.Total)/float64(mol.Total))
			fmt.Printf("         molecule edge latencies: %v\n", mol.EdgeLatency)
		}
	})

	env.Run()
}
