package molecule

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

var updateTrace = flag.Bool("update-trace", false, "rewrite the golden Chrome trace")

// observedInvoke runs one DPU-pinned cold invocation on a two-PU machine
// with observability attached and returns the observer and result.
func observedInvoke(t *testing.T) (*obs.Observer, Result) {
	t.Helper()
	var o *obs.Observer
	var res Result
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		o = obs.New(p.Env())
		rt.SetObserver(o)
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		if err := rt.Deploy(p, "helloworld",
			DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		var err error
		res, err = rt.Invoke(p, "helloworld", InvokeOptions{PU: dpu})
		if err != nil {
			t.Fatal(err)
		}
	})
	return o, res
}

// TestInvocationSpanTree pins the acceptance criteria for the instrumented
// invocation path: the root "invoke" span's duration equals Result.Total,
// and the tree covers placement → nIPC → sandbox → handler.
func TestInvocationSpanTree(t *testing.T) {
	o, res := observedInvoke(t)

	root, ok := o.Tracer.Find("invoke")
	if !ok {
		t.Fatal("no invoke span recorded")
	}
	if root.Parent != 0 {
		t.Errorf("invoke span is not a root (parent %d)", root.Parent)
	}
	if got := time.Duration(root.End - root.Start); got != res.Total {
		t.Errorf("root span duration %v != Result.Total %v", got, res.Total)
	}

	// The tree must include every stage of the invocation path.
	for _, name := range []string{
		"sandbox.acquire", "placement", "nipc.command",
		"sandbox.create", "sandbox.start", "handler",
	} {
		sp, ok := o.Tracer.Find(name)
		if !ok {
			t.Errorf("span %q missing from the tree", name)
			continue
		}
		if sp.Parent == 0 {
			t.Errorf("span %q has no parent", name)
		}
	}

	// The handler ran on the pinned DPU, so its span sits on that PU's
	// track; the acquire span learned the placement too.
	handler, _ := o.Tracer.Find("handler")
	if handler.PU != int(res.PU) {
		t.Errorf("handler span on PU %d, want %d", handler.PU, res.PU)
	}
	acquire, _ := o.Tracer.Find("sandbox.acquire")
	if acquire.Parent != root.ID {
		t.Errorf("sandbox.acquire parented to %d, want root %d", acquire.Parent, root.ID)
	}
	kids := o.Tracer.Children(acquire.ID)
	if len(kids) == 0 {
		t.Error("sandbox.acquire has no children (placement/sandbox.* should nest under it)")
	}

	// Cold-start metrics recorded against the DPU.
	pl := obs.L("pu", "1")
	if got := o.Metrics.Counter("molecule_cold_starts_total", pl, obs.L("fn", "helloworld")).Value(); got != 1 {
		t.Errorf("cold-start counter = %d, want 1", got)
	}
	if got := o.Metrics.Histogram("molecule_invoke_latency_seconds", pl).Count(); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}
}

// TestGoldenChromeTrace locks the exported Chrome trace of a two-PU
// invocation against a golden file: the simulation and the exporter are
// both deterministic, so any diff means the span structure or the export
// format changed. Regenerate intentionally with:
//
//	go test ./internal/molecule -run GoldenChromeTrace -update-trace
func TestGoldenChromeTrace(t *testing.T) {
	o, _ := observedInvoke(t)
	var buf bytes.Buffer
	if err := o.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Whatever else happens, the export must be valid JSON in the
	// trace_event envelope.
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}

	golden := filepath.Join("testdata", "trace.golden.json")
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace rewritten (%d bytes)", buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden trace; run with -update-trace first: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace diverges from golden (run with -update-trace if intentional):\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}

// TestObserverDetachedRecordsNothing guards the zero-cost-when-disabled
// contract at the runtime level: the same workload without SetObserver
// leaves no spans and identical results.
func TestObserverDetachedRecordsNothing(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if rt.Observer() != nil {
			t.Fatal("observer attached by default")
		}
		if err := rt.Deploy(p, "helloworld"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Invoke(p, "helloworld", DefaultInvokeOptions()); err != nil {
			t.Fatal(err)
		}
	})
}
