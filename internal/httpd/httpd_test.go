package httpd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/molecule"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServer(hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, form url.Values) (int, map[string]any) {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestDeployInvokeRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts, "/deploy", url.Values{"fn": {"helloworld"}})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	code, body = post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}, "body": {"1"}})
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	if body["cold"] != true {
		t.Error("first invoke not cold")
	}
	if body["output"] != "hello, heterogeneous world" {
		t.Errorf("output = %v", body["output"])
	}
	if body["total_ms"].(float64) <= 0 {
		t.Error("no virtual latency reported")
	}
	// Second invoke is warm.
	_, body = post(t, ts, "/invoke", url.Values{"fn": {"helloworld"}})
	if body["cold"] != false {
		t.Error("second invoke not warm")
	}
}

func TestInvokeOnFPGA(t *testing.T) {
	ts := newTestServer(t)
	if code, body := post(t, ts, "/deploy", url.Values{
		"fn": {"gzip-compression"}, "profiles": {"cpu,fpga"},
	}); code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	_, body := post(t, ts, "/invoke", url.Values{
		"fn": {"gzip-compression"}, "bytes": {"52428800"},
	})
	if body["kind"] != "FPGA" {
		t.Errorf("kind = %v, want FPGA", body["kind"])
	}
}

func TestChainEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for _, fn := range []string{"mr-splitter", "mr-mapper", "mr-reducer"} {
		post(t, ts, "/deploy", url.Values{"fn": {fn}})
	}
	code, body := post(t, ts, "/chain", url.Values{"fns": {"mr-splitter,mr-mapper,mr-reducer"}})
	if code != http.StatusOK {
		t.Fatalf("chain: %d %v", code, body)
	}
	if int(body["cold_starts"].(float64)) != 3 {
		t.Errorf("cold starts = %v", body["cold_starts"])
	}
	edges := body["edge_ms"].([]any)
	if len(edges) != 2 {
		t.Errorf("edges = %v", edges)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		path string
		form url.Values
	}{
		{"/deploy", url.Values{}},
		{"/deploy", url.Values{"fn": {"no-such"}}},
		{"/deploy", url.Values{"fn": {"matmul"}, "profiles": {"quantum"}}},
		{"/invoke", url.Values{}},
		{"/invoke", url.Values{"fn": {"undeployed"}}},
		{"/invoke", url.Values{"fn": {"matmul"}, "pu": {"abc"}}},
		{"/chain", url.Values{}},
	} {
		if code, _ := post(t, ts, tc.path, tc.form); code != http.StatusBadRequest {
			t.Errorf("%s %v returned %d, want 400", tc.path, tc.form, code)
		}
	}
}

func TestStatsAndFunctions(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, "/deploy", url.Values{"fn": {"matmul"}})
	post(t, ts, "/invoke", url.Values{"fn": {"matmul"}})
	code, body := get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if int(body["invocations"].(float64)) != 1 {
		t.Errorf("invocations = %v", body["invocations"])
	}
	if len(body["pus"].([]any)) != 3 {
		t.Errorf("pus = %v", body["pus"])
	}
	if !strings.Contains(body["virtual_time"].(string), "s") {
		t.Errorf("virtual_time = %v", body["virtual_time"])
	}
	_, fns := get(t, ts, "/functions")
	if len(fns["functions"].([]any)) < 20 {
		t.Error("registry listing too small")
	}
}

func TestConcurrentHTTPRequestsSerialize(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, "/deploy", url.Values{"fn": {"matmul"}})
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func() {
			code, _ := post(t, ts, "/invoke", url.Values{"fn": {"matmul"}})
			done <- code == http.StatusOK
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Error("concurrent invoke failed")
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts, "/experiments")
	if code != http.StatusOK {
		t.Fatalf("experiments: %d", code)
	}
	if len(body["experiments"].([]any)) < 20 {
		t.Error("experiment listing too small")
	}
	resp, err := http.Post(ts.URL+"/experiments/fig11a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run experiment: %d %v", resp.StatusCode, out)
	}
	tables := out["tables"].([]any)
	rows := tables[0].(map[string]any)["rows"].([]any)
	if len(rows) != 4 {
		t.Errorf("fig11a rows = %d, want 4", len(rows))
	}
	last := rows[3].([]any)
	if last[1] != "8.40ms" {
		t.Errorf("cpuset-opt cell = %v, want 8.40ms", last[1])
	}
	resp2, _ := http.Post(ts.URL+"/experiments/nope", "", nil)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: %d, want 404", resp2.StatusCode)
	}
}
