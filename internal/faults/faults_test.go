package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestCrashWindows(t *testing.T) {
	env := sim.NewEnv()
	pl := NewPlan(env, 1)
	pl.CrashPU(2, at(time.Second), at(3*time.Second))

	probe := func(when time.Duration, want bool) {
		env.At(at(when), func() {
			if got := pl.Down(2); got != want {
				t.Errorf("Down(2) at %v = %v, want %v", when, got, want)
			}
			if pl.Down(1) {
				t.Errorf("Down(1) at %v = true, want false", when)
			}
		})
	}
	probe(500*time.Millisecond, false)
	probe(time.Second, true) // window is inclusive of From
	probe(2*time.Second, true)
	probe(3*time.Second, false) // ...and exclusive of To
	env.Run()
}

func TestKillReviveAndOpenWindow(t *testing.T) {
	env := sim.NewEnv()
	pl := NewPlan(env, 1)
	env.At(at(time.Second), func() { pl.Kill(3) })
	env.At(at(2*time.Second), func() {
		if !pl.Down(3) {
			t.Error("PU 3 should be down after Kill")
		}
		pl.Revive(3)
		if pl.Down(3) {
			t.Error("PU 3 should be up after Revive")
		}
	})
	env.At(at(3*time.Second), func() {
		if pl.Down(3) {
			t.Error("revived PU 3 stayed down")
		}
	})
	env.Run()
}

func TestTransferFault(t *testing.T) {
	env := sim.NewEnv()
	pl := NewPlan(env, 1)
	pl.CrashPU(1, 0, 0) // down forever
	pl.PartitionLink(0, 2, at(time.Second), at(2*time.Second))
	pl.InflateLink(0, 3, 4, 0, 0)
	pl.InflateLink(0, 3, 2.5, 0, 0) // overlapping weaker window loses

	if _, err := pl.TransferFault(0, 1); !errors.Is(err, ErrPUDown) {
		t.Errorf("transfer to crashed PU: err = %v, want ErrPUDown", err)
	}
	if _, err := pl.TransferFault(1, 0); !errors.Is(err, ErrPUDown) {
		t.Errorf("transfer from crashed PU: err = %v, want ErrPUDown", err)
	}
	if inflate, err := pl.TransferFault(0, 2); err != nil || inflate != 1 {
		t.Errorf("partition window not yet open: got (%v, %v), want (1, nil)", inflate, err)
	}
	env.At(at(time.Second), func() {
		if _, err := pl.TransferFault(2, 0); !errors.Is(err, ErrPartitioned) {
			t.Errorf("partitioned link (reversed endpoints): err = %v, want ErrPartitioned", err)
		}
	})
	env.Run()
	if inflate, err := pl.TransferFault(3, 0); err != nil || inflate != 4 {
		t.Errorf("inflated link: got (%v, %v), want (4, nil)", inflate, err)
	}
	if inflate, err := pl.TransferFault(0, 4); err != nil || inflate != 1 {
		t.Errorf("healthy link: got (%v, %v), want (1, nil)", inflate, err)
	}
}

func TestProbabilisticFaultsDeterministic(t *testing.T) {
	draw := func(seed uint64) (creates, forks, handlers int) {
		pl := NewPlan(sim.NewEnv(), seed)
		pl.CreateFailProb = 0.3
		pl.ForkFailProb = 0.3
		pl.HandlerFailProb = 0.3
		for i := 0; i < 200; i++ {
			if err := pl.CreateFault(); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("CreateFault err = %v, want ErrInjected", err)
				}
				creates++
			}
			if pl.ForkFault() != nil {
				forks++
			}
			if pl.HandlerFault() != nil {
				handlers++
			}
		}
		return
	}
	c1, f1, h1 := draw(42)
	c2, f2, h2 := draw(42)
	if c1 != c2 || f1 != f2 || h1 != h2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", c1, f1, h1, c2, f2, h2)
	}
	if c1 == 0 || f1 == 0 || h1 == 0 {
		t.Errorf("p=0.3 over 200 rolls injected nothing: (%d,%d,%d)", c1, f1, h1)
	}
	// Zero probability must not draw from the stream at all, so attaching an
	// inert plan cannot perturb anything.
	pl := NewPlan(sim.NewEnv(), 42)
	before := pl.rng
	if err := pl.CreateFault(); err != nil {
		t.Errorf("CreateFault with p=0: %v", err)
	}
	if pl.rng != before {
		t.Error("CreateFault with p=0 advanced the PRNG")
	}
}

func TestParseSpec(t *testing.T) {
	env := sim.NewEnv()
	pl := NewPlan(env, 1)
	spec := "crash=1@2s+500ms, partition=0-2@1s+1s, inflate=0-3*4@0s+10s, create-fail=0.1, fork-fail=0.2, handler-fail=0.3"
	if err := ParseSpec(pl, spec); err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if pl.CreateFailProb != 0.1 || pl.ForkFailProb != 0.2 || pl.HandlerFailProb != 0.3 {
		t.Errorf("probabilities = (%v, %v, %v)", pl.CreateFailProb, pl.ForkFailProb, pl.HandlerFailProb)
	}
	env.At(at(2200*time.Millisecond), func() {
		if !pl.Down(1) {
			t.Error("crash=1@2s+500ms: PU 1 not down at 2.2s")
		}
	})
	env.At(at(1500*time.Millisecond), func() {
		if _, err := pl.TransferFault(0, 2); !errors.Is(err, ErrPartitioned) {
			t.Errorf("partition=0-2@1s+1s at 1.5s: err = %v", err)
		}
		if inflate, _ := pl.TransferFault(0, 3); inflate != 4 {
			t.Errorf("inflate=0-3*4: inflate = %v", inflate)
		}
	})
	env.At(at(3*time.Second), func() {
		if pl.Down(1) {
			t.Error("PU 1 should be back up after the 500ms crash window")
		}
	})
	env.Run()

	// Open-ended crash: no +DUR.
	pl2 := NewPlan(sim.NewEnv(), 1)
	if err := ParseSpec(pl2, "crash=0@0s"); err != nil {
		t.Fatalf("ParseSpec open-ended: %v", err)
	}
	if !pl2.Down(0) {
		t.Error("crash=0@0s should be down forever")
	}

	for _, bad := range []string{"bogus=1", "crash=x@0s", "crash=1", "inflate=0-1@0s", "create-fail=1.5", "partition=0@0s"} {
		if err := ParseSpec(NewPlan(sim.NewEnv(), 1), bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func TestPUIDNormalization(t *testing.T) {
	if linkKey(3, 1) != (linkKey(1, 3)) {
		t.Error("linkKey not symmetric")
	}
	if linkKey(2, 2) != [2]hw.PUID{2, 2} {
		t.Error("linkKey self-pair mangled")
	}
}
