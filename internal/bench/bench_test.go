package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryCoversEveryFigureAndTable(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig8", "fig9", "fig10ab", "fig10c", "tab4",
		"fig11a", "fig11bc", "fig12", "fig13", "fig14a", "fig14b", "fig14c",
		"fig14d", "fig14e", "fig14f", "fig14g", "fig14h", "fig15", "tab1", "tab5",
		"artifact", "case-gnn", "case-util",
		"abl-transport", "abl-placement", "abl-keepalive", "abl-sync",
		"abl-shimthreads", "abl-erase", "abl-startupmode", "abl-vertical",
		"abl-autoscale", "abl-pricing", "abl-throughput", "abl-slo", "abl-contention", "abl-templates",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown id resolved")
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	if len(all) < 20 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	// Paper experiments come in evaluation order, ablations after.
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if !(idx["fig2a"] < idx["fig8"] && idx["fig8"] < idx["fig14a"] && idx["fig14a"] < idx["tab5"]) {
		t.Error("evaluation-order sorting broken")
	}
	if idx["abl-transport"] < idx["tab5"] {
		t.Error("ablations sorted before paper experiments")
	}
}

func TestEveryExperimentHasMetadata(t *testing.T) {
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v missing metadata", e.ID)
		}
	}
}

// cell extracts the table cell at (row, col) by whitespace-splitting.
func lastField(row []string) string { return row[len(row)-1] }

// parseRatio parses "4.42x" into 4.42.
func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", s, err)
	}
	return v
}

func runExp(t *testing.T, id string) []*tableData {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	var out []*tableData
	for _, tab := range e.Run() {
		out = append(out, &tableData{title: tab.Title, rows: tab.Rows})
	}
	return out
}

type tableData struct {
	title string
	rows  [][]string
}

func TestFig2aTableValues(t *testing.T) {
	tabs := runExp(t, "fig2a")
	rows := tabs[0].rows
	if rows[0][1] != "1000" || rows[1][1] != "1256" || rows[2][1] != "1512" {
		t.Errorf("density rows = %v", rows)
	}
}

func TestFig2bSpeedupBand(t *testing.T) {
	for _, row := range runExp(t, "fig2b")[0].rows {
		r := parseRatio(t, lastField(row))
		if r < 2.15 || r > 2.82 {
			t.Errorf("%s speedup %.2f outside 2.15-2.82", row[0], r)
		}
	}
}

func TestFig14aImprovementBand(t *testing.T) {
	for _, row := range runExp(t, "fig14a")[0].rows {
		r := parseRatio(t, lastField(row))
		if r < 1.0 || r > 11.5 {
			t.Errorf("%s improvement %.2f outside the paper's 1.01-11.12 band", row[0], r)
		}
	}
}

func TestFig14bWarmNearParity(t *testing.T) {
	for _, row := range runExp(t, "fig14b")[0].rows {
		r := parseRatio(t, lastField(row))
		if r < 0.7 || r > 1.05 {
			t.Errorf("%s warm ratio %.2f not near parity", row[0], r)
		}
	}
}

func TestFig12ImprovementBands(t *testing.T) {
	for _, tab := range runExp(t, "fig12") {
		for _, row := range tab.rows {
			r := parseRatio(t, lastField(row))
			if r < 9 || r > 19 {
				t.Errorf("%s / %s improvement %.2f outside 9-19", tab.title, row[0], r)
			}
		}
	}
}

func TestFig13ConvergesAtOne(t *testing.T) {
	rows := runExp(t, "fig13")[0].rows
	if r := parseRatio(t, lastField(rows[0])); r != 1.0 {
		t.Errorf("1-function chain ratio %.2f, want 1.00", r)
	}
	last := parseRatio(t, lastField(rows[len(rows)-1]))
	if last < 1.8 || last > 2.2 {
		t.Errorf("5-function chain ratio %.2f, want ~1.95", last)
	}
	// Monotonically increasing benefit with chain length.
	prev := 0.0
	for _, row := range rows {
		r := parseRatio(t, lastField(row))
		if r < prev {
			t.Errorf("retention benefit not monotone: %v", rows)
		}
		prev = r
	}
}

func TestFig14fCrossover(t *testing.T) {
	rows := runExp(t, "fig14f")[0].rows
	first := parseRatio(t, lastField(rows[0]))
	if first >= 1 {
		t.Errorf("1KB ratio %.2f — CPU must win small files", first)
	}
	last := parseRatio(t, lastField(rows[len(rows)-1]))
	if last < 7.4 || last > 9.2 {
		t.Errorf("112MB ratio %.2f, want ~8.3", last)
	}
}

func TestFig14gBand(t *testing.T) {
	rows := runExp(t, "fig14g")[0].rows
	first := parseRatio(t, lastField(rows[0]))
	last := parseRatio(t, lastField(rows[len(rows)-1]))
	if first < 4.0 || first > 5.6 {
		t.Errorf("6K ratio %.2f, want ~4.7", first)
	}
	if last < 30 || last > 38 {
		t.Errorf("6M ratio %.2f, want ~34.6", last)
	}
}

func TestAblationTablesNonEmpty(t *testing.T) {
	for _, id := range []string{"abl-transport", "abl-placement", "abl-sync", "abl-shimthreads", "abl-erase"} {
		tabs := runExp(t, id)
		if len(tabs) == 0 || len(tabs[0].rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestAblKeepaliveMonotone(t *testing.T) {
	rows := runExp(t, "abl-keepalive")[0].rows
	prev := 101.0
	for _, row := range rows {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad cold-rate cell %q", row[1])
		}
		if pct > prev+0.01 {
			t.Errorf("cold-start rate not non-increasing with cache size: %v", rows)
		}
		prev = pct
	}
}

func TestRunAllRendersEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var buf bytes.Buffer
	RunAll(&buf)
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("RunAll output contains NaN/Inf")
	}
}

func TestTab1AllChecksPass(t *testing.T) {
	for _, row := range runExp(t, "tab1")[0].rows {
		if lastField(row) != "PASS" {
			t.Errorf("Table 1 claim %q: %v", row[0], row)
		}
	}
}

func TestAblVerticalRejectionsDecrease(t *testing.T) {
	rows := runExp(t, "abl-vertical")[0].rows
	prev := 1 << 30
	for _, row := range rows {
		rejected, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad rejected cell %q", row[2])
		}
		if rejected > prev {
			t.Errorf("rejections increased with more DPUs: %v", rows)
		}
		prev = rejected
	}
}

func TestAblStartupModeOrdering(t *testing.T) {
	rows := runExp(t, "abl-startupmode")[0].rows
	// plain > snapshot > cfork on steady cold start.
	get := func(i int) string { return rows[i][2] }
	if !(strings.Contains(get(0), "ms") && strings.Contains(get(1), "ms") && strings.Contains(get(2), "ms")) {
		t.Fatalf("unexpected cells: %v", rows)
	}
	ratios := make([]float64, len(rows))
	for i, row := range rows {
		ratios[i] = parseRatio(t, lastField(row))
	}
	if !(ratios[0] == 1.0 && ratios[1] > ratios[0] && ratios[2] > ratios[1]) {
		t.Errorf("startup-mode speedups not ordered: %v", ratios)
	}
}

// TestFig9RatioBands asserts the §6.3 headline ratios from the rendered
// table.
func TestFig9RatioBands(t *testing.T) {
	tabs := runExp(t, "fig9")
	// Startup table rows: Lambda, OpenWhisk, homo, Molecule; col 2 = ratio
	// vs Molecule.
	start := tabs[0].rows
	lambda := parseRatio(t, start[0][2])
	ow := parseRatio(t, start[1][2])
	if lambda < 36 || lambda > 48 || ow < 36 || ow > 48 {
		t.Errorf("startup ratios %.1f / %.1f outside the 37-46x band", lambda, ow)
	}
	comm := tabs[1].rows
	owComm := parseRatio(t, comm[1][2])
	if owComm < 60 || owComm > 120 {
		t.Errorf("OpenWhisk comm ratio %.1f outside the 68-300x class", owComm)
	}
}

// TestFig10cStaircaseCells asserts the FPGA startup staircase from the
// rendered table.
func TestFig10cStaircaseCells(t *testing.T) {
	rows := runExp(t, "fig10c")[0].rows
	want := map[string]string{
		"Baseline":     "20.30s",
		"No-Erase":     "3.80s",
		"Warm-image":   "1.90s",
		"Warm-sandbox": "53.00ms",
	}
	for _, row := range rows {
		if w, ok := want[row[0]]; ok && row[1] != w {
			t.Errorf("%s = %s, want %s", row[0], row[1], w)
		}
	}
}

func TestAblContentionScalesLinearly(t *testing.T) {
	rows := runExp(t, "abl-contention")[0].rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per-request averages stay flat: the link serializes, it does not
	// degrade.
	if rows[0][2] == "" || rows[2][2] == "" {
		t.Error("missing per-request cells")
	}
}
