package xpu

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/sim"
)

// A reader parked in FD.Read while its own node crashes must surface
// ErrNodeDown when it wakes — not the message that arrived after the crash.
// Before the post-block re-check, the Recv result was returned as a stale
// read even though every other operation on the node already failed fast.
func TestReadViaCrashedNodeReturnsNodeDown(t *testing.T) {
	r := newRig(t)
	plan := faults.NewPlan(r.env, 1)
	r.shim.Faults = plan
	readErr := errors.New("unset")
	var got localos.Message
	r.env.Spawn("setup", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 4) // home = CPU, stays alive
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.grantLocal(r.dpuXPID, ObjID{Kind: "fifo", UUID: "f"}, PermRead)
		dfd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f")
		if err != nil {
			t.Fatalf("FIFOConnect: %v", err)
		}
		r.env.Spawn("reader", func(rp *sim.Proc) {
			got, readErr = dfd.Read(rp) // parks: queue empty
		})
		p.Sleep(time.Millisecond) // let the reader park in Recv
		plan.Kill(1)              // the reader's node crashes while parked
		if err := fd.Write(p, localos.Message{Kind: "late"}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	})
	r.env.Run()
	if !errors.Is(readErr, ErrNodeDown) {
		t.Errorf("read via crashed node: msg=%q err=%v, want ErrNodeDown", got.Kind, readErr)
	}
}

// WriteBatch pays the XPUcall and the link's base latency once for the whole
// vector; k individual Writes pay both k times. With zero-byte payloads the
// bandwidth term vanishes, making the amortization exact.
func TestWriteBatchAmortizesBaseLatency(t *testing.T) {
	const k = 8
	r := newRig(t)
	o := obs.New(r.env)
	r.shim.SetMetrics(obsSink{o})
	r.env.Spawn("test", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 2*k)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.grantLocal(r.dpuXPID, ObjID{Kind: "fifo", UUID: "f"}, PermWrite)
		dfd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f")
		if err != nil {
			t.Fatalf("FIFOConnect: %v", err)
		}
		xcall := r.dpuNode.Mode.CallOverhead(hw.DPU)

		start := r.env.Now()
		for i := 0; i < k; i++ {
			if err := dfd.Write(p, localos.Message{Kind: fmt.Sprintf("seq%d", i)}); err != nil {
				t.Fatalf("Write %d: %v", i, err)
			}
		}
		perMsg := r.env.Now().Sub(start)
		if want := k * (xcall + params.RDMABaseLatency); perMsg != want {
			t.Errorf("per-message cost = %v, want %v", perMsg, want)
		}

		msgs := make([]localos.Message, k)
		for i := range msgs {
			msgs[i] = localos.Message{Kind: fmt.Sprintf("batch%d", i)}
		}
		start = r.env.Now()
		if err := dfd.WriteBatch(p, msgs); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		batched := r.env.Now().Sub(start)
		if want := xcall + params.RDMABaseLatency; batched != want {
			t.Errorf("batched cost = %v, want %v (base latency paid once)", batched, want)
		}

		// FIFO ordering holds across the mode boundary and the counters see
		// every message.
		for i := 0; i < 2*k; i++ {
			m, err := fd.Read(p)
			if err != nil {
				t.Fatalf("Read %d: %v", i, err)
			}
			want := fmt.Sprintf("seq%d", i)
			if i >= k {
				want = fmt.Sprintf("batch%d", i-k)
			}
			if m.Kind != want {
				t.Errorf("message %d = %q, want %q", i, m.Kind, want)
			}
		}
		if got := o.Counter("xpu_nipc_messages_total", obs.L("link", "1->0")).Value(); got != 2*k {
			t.Errorf("nIPC messages on 1->0 = %d, want %d", got, 2*k)
		}
	})
	r.env.Run()
}

// ReadBatch blocks for the first message, drains what is queued, and pulls
// the whole vector across the link for one base latency.
func TestReadBatchDrainsQueued(t *testing.T) {
	const k = 6
	r := newRig(t)
	r.env.Spawn("test", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 2*k)
		if err != nil {
			t.Fatalf("FIFOInit: %v", err)
		}
		r.shim.grantLocal(r.dpuXPID, ObjID{Kind: "fifo", UUID: "f"}, PermRead)
		dfd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f")
		if err != nil {
			t.Fatalf("FIFOConnect: %v", err)
		}
		for i := 0; i < k; i++ {
			if err := fd.Write(p, localos.Message{Kind: fmt.Sprintf("m%d", i)}); err != nil {
				t.Fatalf("Write %d: %v", i, err)
			}
		}

		start := r.env.Now()
		out, err := dfd.ReadBatch(p, 2*k) // max larger than queued: drains k
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		elapsed := r.env.Now().Sub(start)
		if len(out) != k {
			t.Fatalf("ReadBatch returned %d messages, want %d", len(out), k)
		}
		for i, m := range out {
			if want := fmt.Sprintf("m%d", i); m.Kind != want {
				t.Errorf("message %d = %q, want %q", i, m.Kind, want)
			}
		}
		xcall := r.dpuNode.Mode.CallOverhead(hw.DPU)
		if want := xcall + params.RDMABaseLatency; elapsed != want {
			t.Errorf("ReadBatch cost = %v, want %v", elapsed, want)
		}

		// max caps the drain.
		if err := fd.Write(p, localos.Message{Kind: "a"}); err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(p, localos.Message{Kind: "b"}); err != nil {
			t.Fatal(err)
		}
		out, err = dfd.ReadBatch(p, 1)
		if err != nil || len(out) != 1 || out[0].Kind != "a" {
			t.Errorf("ReadBatch(max=1) = %v, %v; want [a]", out, err)
		}
		if m, err := dfd.Read(p); err != nil || m.Kind != "b" {
			t.Errorf("follow-up Read = %v, %v; want b", m, err)
		}
	})
	r.env.Run()
}

// benchRig is the benchmark twin of rig: a CPU+DPU machine without the
// *testing.T plumbing.
type benchRig struct {
	env     *sim.Env
	shim    *Shim
	cpuNode *Node
	dpuNode *Node
	cpuXPID XPID
	dpuXPID XPID
}

func newBenchRig() *benchRig {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	shim := NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	dpuOS := localos.New(env, m.PU(1))
	cn := shim.AddNode(m.PU(0), cpuOS)
	dn := shim.AddNode(m.PU(1), dpuOS)
	r := &benchRig{env: env, shim: shim, cpuNode: cn, dpuNode: dn}
	r.cpuXPID = cn.Register(cpuOS.NewDetachedProcess("cpu-app"))
	r.dpuXPID = dn.Register(dpuOS.NewDetachedProcess("dpu-app"))
	return r
}

// benchFIFOWrite measures one write+drain round trip on the nIPC data path.
// remote selects a DPU writer (RDMA transfer per message); attach wires an
// Observer so the per-link counter/gauge path is on the clock too.
func benchFIFOWrite(b *testing.B, remote, attach bool) {
	r := newBenchRig()
	if attach {
		r.shim.SetMetrics(obsSink{obs.New(r.env)})
	}
	r.env.Spawn("bench", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 4)
		if err != nil {
			b.Fatalf("FIFOInit: %v", err)
		}
		wfd := fd
		if remote {
			r.shim.grantLocal(r.dpuXPID, ObjID{Kind: "fifo", UUID: "f"}, PermWrite)
			if wfd, err = r.dpuNode.FIFOConnect(p, r.dpuXPID, "f"); err != nil {
				b.Fatalf("FIFOConnect: %v", err)
			}
		}
		msg := localos.Message{Payload: make([]byte, 64)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := wfd.Write(p, msg); err != nil {
				b.Fatalf("Write: %v", err)
			}
			if _, err := fd.Read(p); err != nil {
				b.Fatalf("Read: %v", err)
			}
		}
	})
	r.env.Run()
}

func BenchmarkFIFOWriteLocal(b *testing.B)  { benchFIFOWrite(b, false, false) }
func BenchmarkFIFOWriteRemote(b *testing.B) { benchFIFOWrite(b, true, false) }

// BenchmarkFIFOWriteRemoteObserved covers the attached-observer path the
// ≥5x allocs/op criterion targets: label sets are interned per link/FIFO, so
// the counter updates cost map probes, not fmt.Sprintf.
func BenchmarkFIFOWriteRemoteObserved(b *testing.B) { benchFIFOWrite(b, true, true) }

// TestFIFOWritePathZeroAlloc pins the detached-observer write path at zero
// allocations per message — the benchmark-backed regression gate for the
// nIPC fast path.
func TestFIFOWritePathZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed")
	}
	for _, tc := range []struct {
		name   string
		remote bool
	}{{"local", false}, {"remote", true}} {
		res := testing.Benchmark(func(b *testing.B) { benchFIFOWrite(b, tc.remote, false) })
		if a := res.AllocsPerOp(); a > 0 {
			t.Errorf("%s detached write path: %d allocs/op, want 0", tc.name, a)
		}
	}
}
