package workloads

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"math"
	"strings"
)

// The compute bodies below are real implementations of the benchmark
// kernels, used by the runnable examples so their outputs are genuine.
// They execute on the host running the simulation; their latency in the
// simulated system comes from the calibrated cost models, not wall time.

func bodyHello(Arg) (any, error) { return "hello, heterogeneous world", nil }

// bodyGzip compresses the payload (or a synthetic one of a.Bytes) and
// reports the compression ratio.
func bodyGzip(a Arg) (any, error) {
	data := a.Payload
	if data == nil {
		n := a.Bytes
		if n == 0 {
			n = 1 << 16
		}
		data = synthetic(n)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return fmt.Sprintf("compressed %d -> %d bytes", len(data), buf.Len()), nil
}

// bodyAES encrypts the payload with AES-CTR, FunctionBench's pyaes stand-in.
func bodyAES(a Arg) (any, error) {
	data := a.Payload
	if data == nil {
		data = synthetic(4 << 10)
	}
	key := []byte("0123456789abcdef")
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, aes.BlockSize)
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return fmt.Sprintf("encrypted %d bytes", len(out)), nil
}

// bodyMatmul multiplies two n×n matrices and returns the trace of the
// product.
func bodyMatmul(a Arg) (any, error) {
	n := a.N
	if n == 0 {
		n = 64
	}
	A, B := seqMatrix(n, 1), seqMatrix(n, 2)
	C := matMul(A, B, n)
	return trace(C, n), nil
}

// bodyLinpack solves a dense linear system by Gaussian elimination and
// reports the residual-free solution checksum.
func bodyLinpack(a Arg) (any, error) {
	n := a.N
	if n == 0 {
		n = 64
	}
	A := make([][]float64, n)
	b := make([]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
		for j := range A[i] {
			A[i][j] = 1.0 / float64(i+j+1)
		}
		A[i][i] += float64(n)
		b[i] = 1
	}
	// Gaussian elimination with partial pivoting.
	for k := 0; k < n; k++ {
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(A[i][k]) > math.Abs(A[piv][k]) {
				piv = i
			}
		}
		A[k], A[piv] = A[piv], A[k]
		b[k], b[piv] = b[piv], b[k]
		if A[k][k] == 0 {
			return nil, fmt.Errorf("workloads: singular linpack matrix")
		}
		for i := k + 1; i < n; i++ {
			f := A[i][k] / A[k][k]
			for j := k; j < n; j++ {
				A[i][j] -= f * A[k][j]
			}
			b[i] -= f * b[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= A[i][j] * x[j]
		}
		x[i] = s / A[i][i]
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum, nil
}

// bodyImageResize box-downsamples a synthetic grayscale image by 2x.
func bodyImageResize(a Arg) (any, error) {
	w := a.N
	if w == 0 {
		w = 256
	}
	img := make([]byte, w*w)
	for i := range img {
		img[i] = byte(i)
	}
	ow := w / 2
	out := make([]byte, ow*ow)
	for y := 0; y < ow; y++ {
		for x := 0; x < ow; x++ {
			s := int(img[2*y*w+2*x]) + int(img[2*y*w+2*x+1]) +
				int(img[(2*y+1)*w+2*x]) + int(img[(2*y+1)*w+2*x+1])
			out[y*ow+x] = byte(s / 4)
		}
	}
	return fmt.Sprintf("resized %dx%d -> %dx%d", w, w, ow, ow), nil
}

// bodyChameleon renders a small HTML table, like FunctionBench's chameleon
// template benchmark.
func bodyChameleon(a Arg) (any, error) {
	rows := a.N
	if rows == 0 {
		rows = 50
	}
	var buf bytes.Buffer
	buf.WriteString("<table>")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "<tr><td>%d</td><td>%d</td></tr>", i, i*i)
	}
	buf.WriteString("</table>")
	return buf.Len(), nil
}

// bodyMScale scales a matrix by a constant.
func bodyMScale(a Arg) (any, error) {
	n := dim(a, 64)
	A := seqMatrix(n, 1)
	for i := range A {
		A[i] *= 2.5
	}
	return trace(A, n), nil
}

// bodyMAdd adds two matrices.
func bodyMAdd(a Arg) (any, error) {
	n := dim(a, 64)
	A, B := seqMatrix(n, 1), seqMatrix(n, 2)
	for i := range A {
		A[i] += B[i]
	}
	return trace(A, n), nil
}

// bodyVMult multiplies two matrices (the paper's "vector multiplication"
// matrix kernel).
func bodyVMult(a Arg) (any, error) {
	n := dim(a, 64)
	C := matMul(seqMatrix(n, 1), seqMatrix(n, 2), n)
	return trace(C, n), nil
}

// bodyAML scans synthetic transactions and flags structuring patterns
// (amounts just under a reporting threshold) — the anti-money-laundering
// kernel.
func bodyAML(a Arg) (any, error) {
	n := a.N
	if n == 0 {
		n = 6000
	}
	flagged := 0
	const threshold = 10000
	for i := 0; i < n; i++ {
		amount := (i*7919 + 13) % 12000
		if amount >= threshold-500 && amount < threshold {
			flagged++
		}
	}
	return fmt.Sprintf("flagged %d of %d transactions", flagged, n), nil
}

// --- helpers ----------------------------------------------------------------

func synthetic(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((i * 31) % 251)
	}
	return data
}

func dim(a Arg, def int) int {
	if a.N > 0 {
		return a.N
	}
	return def
}

func seqMatrix(n, seed int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = float64((i*seed)%7) - 3
	}
	return m
}

func matMul(A, B []float64, n int) []float64 {
	C := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := A[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				C[i*n+j] += aik * B[k*n+j]
			}
		}
	}
	return C
}

func trace(M []float64, n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += M[i*n+i]
	}
	return t
}

// --- MapReduce word count (real compute for the fan-out DAG example) ---------

// SplitText partitions text into n roughly equal shards on word boundaries.
func SplitText(text string, n int) []string {
	words := strings.Fields(text)
	if n < 1 {
		n = 1
	}
	shards := make([]string, 0, n)
	per := (len(words) + n - 1) / n
	for i := 0; i < len(words); i += per {
		end := i + per
		if end > len(words) {
			end = len(words)
		}
		shards = append(shards, strings.Join(words[i:end], " "))
	}
	return shards
}

// MapWordCount counts word occurrences in one shard.
func MapWordCount(shard string) map[string]int {
	counts := make(map[string]int)
	for _, w := range strings.Fields(shard) {
		w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))
		if w != "" {
			counts[w]++
		}
	}
	return counts
}

// ReduceWordCounts merges mapper outputs.
func ReduceWordCounts(parts []map[string]int) map[string]int {
	total := make(map[string]int)
	for _, part := range parts {
		for w, c := range part {
			total[w] += c
		}
	}
	return total
}

// bodyDD copies a synthetic buffer block-by-block like FunctionBench's dd,
// reporting the checksum of the copy.
func bodyDD(a Arg) (any, error) {
	n := a.Bytes
	if n == 0 {
		n = 1 << 20
	}
	src := synthetic(n)
	dst := make([]byte, n)
	const block = 4096
	for off := 0; off < n; off += block {
		end := off + block
		if end > n {
			end = n
		}
		copy(dst[off:end], src[off:end])
	}
	var sum uint32
	for _, b := range dst {
		sum = sum*31 + uint32(b)
	}
	return fmt.Sprintf("copied %d bytes, checksum %08x", n, sum), nil
}

// bodyVideo processes a synthetic clip: per frame, downsample 2x and
// accumulate a luminance histogram — the shape of FunctionBench's video
// pipeline without a codec dependency.
func bodyVideo(a Arg) (any, error) {
	frames := a.N
	if frames == 0 {
		frames = 8
	}
	const w = 64
	var hist [4]int
	for f := 0; f < frames; f++ {
		frame := make([]byte, w*w)
		for i := range frame {
			frame[i] = byte((i*7 + f*13) % 256)
		}
		for y := 0; y < w/2; y++ {
			for x := 0; x < w/2; x++ {
				s := int(frame[2*y*w+2*x]) + int(frame[2*y*w+2*x+1]) +
					int(frame[(2*y+1)*w+2*x]) + int(frame[(2*y+1)*w+2*x+1])
				hist[(s/4)/64]++
			}
		}
	}
	return fmt.Sprintf("processed %d frames, histogram %v", frames, hist), nil
}
