package bench

import (
	"runtime"
	"testing"
)

// TestColdStartZygoteBeatsFlat is the headline acceptance check: on the
// seeded Zipf stream the zygote forest must beat flat cfork on mean
// cold-start latency without spending more memory (total PSS, instances +
// templates).
func TestColdStartZygoteBeatsFlat(t *testing.T) {
	res, err := ColdStartSweep(240, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Zygote.ColdStarts != res.Flat.ColdStarts {
		t.Fatalf("arm sizes differ: flat %d vs zygote %d", res.Flat.ColdStarts, res.Zygote.ColdStarts)
	}
	if res.Zygote.MeanStartupMS >= res.Flat.MeanStartupMS {
		t.Errorf("zygote mean %.2fms not better than flat %.2fms",
			res.Zygote.MeanStartupMS, res.Flat.MeanStartupMS)
	}
	if res.Zygote.P95StartupMS > res.Flat.P95StartupMS {
		t.Errorf("zygote p95 %.2fms worse than flat %.2fms",
			res.Zygote.P95StartupMS, res.Flat.P95StartupMS)
	}
	if res.Zygote.TotalPSSMB > res.Flat.TotalPSSMB {
		t.Errorf("zygote total PSS %.1fMB exceeds flat %.1fMB",
			res.Zygote.TotalPSSMB, res.Flat.TotalPSSMB)
	}
	if res.Zygote.TreeNodes <= res.Flat.TreeNodes {
		t.Errorf("zygote grew %d nodes, flat %d — fitter never specialized",
			res.Zygote.TreeNodes, res.Flat.TreeNodes)
	}
	if res.Flat.FitRounds != 0 {
		t.Errorf("flat arm ran %d fit rounds, want 0 (budget disabled)", res.Flat.FitRounds)
	}
	t.Logf("flat  %.2fms mean / %.1fMB PSS; zygote %.2fms mean / %.1fMB PSS (%.2fx speedup)",
		res.Flat.MeanStartupMS, res.Flat.TotalPSSMB,
		res.Zygote.MeanStartupMS, res.Zygote.TotalPSSMB, res.SpeedupMean)
}

// TestColdStartDeterminism asserts the whole experiment — invocation
// latencies, final forest shapes, PSS accounting — is byte-identical
// between the classic sequential kernel and the sharded windowed kernel.
// ColdStartArmSweep itself errors on fingerprint mismatch.
func TestColdStartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-kernel sweep")
	}
	workers := []int{0, 2, runtime.NumCPU()}
	cfg := defaultColdStartConfig()
	cfg.Invocations = 160
	for _, zygote := range []bool{false, true} {
		arm, err := ColdStartArmSweep(cfg, zygote, workers)
		if err != nil {
			t.Fatal(err)
		}
		if arm.ColdStarts != cfg.Invocations {
			t.Errorf("%s: %d cold starts, want %d", arm.Mode, arm.ColdStarts, cfg.Invocations)
		}
	}
}
