package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// feedRounds drives wt with two rounds through ONE reused stats buffer —
// the same aliasing the kernel's hot loop produces — so any missing copy
// shows up as corrupted totals.
func feedRounds(wt *WindowTelemetry) {
	events := []int{3, 0}
	flow := []int64{0, 2, 1, 0}
	wt.WindowRound(sim.WindowStats{Round: 1, Horizon: 0, Bound: 1000, Delivered: 3, Events: events, Flow: flow})
	events[0], events[1] = 0, 5 // kernel reuses the buffers next round
	flow[1], flow[2] = 4, 0
	wt.WindowRound(sim.WindowStats{Round: 2, Horizon: 1000, Bound: 2000, Delivered: 4, Events: events, Flow: flow})
}

func TestWindowTelemetryAccumulates(t *testing.T) {
	wt := &WindowTelemetry{}
	feedRounds(wt)

	if wt.Rounds() != 2 || wt.Delivered() != 7 {
		t.Fatalf("rounds/delivered = %d/%d, want 2/7", wt.Rounds(), wt.Delivered())
	}
	// Domain 0 fired 3 then 0 (one stall); domain 1 fired 0 (stall) then 5.
	// 2 stalled domain-rounds out of 4.
	if got := wt.StallRatio(); got != 0.5 {
		t.Fatalf("stall ratio = %v, want 0.5", got)
	}
	if wt.events[0] != 3 || wt.events[1] != 5 {
		t.Fatalf("per-domain events = %v; reused buffer leaked through", wt.events)
	}
	if wt.flow[0*2+1] != 6 || wt.flow[1*2+0] != 1 {
		t.Fatalf("flow matrix = %v", wt.flow)
	}
}

// TestWindowTelemetryText pins the -soak telemetry section bytes.
func TestWindowTelemetryText(t *testing.T) {
	wt := &WindowTelemetry{}
	feedRounds(wt)
	var buf bytes.Buffer
	if err := wt.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== Sharded-kernel window telemetry ==",
		"rounds          2",
		"events          8 (4.0/window)",
		"delivered       7 cross-domain messages",
		"barrier stalls  2/4 domain-rounds (50.0%)",
		"flow (src->dst messages):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry text missing %q:\n%s", want, out)
		}
	}
	// Determinism: identical feed, identical bytes.
	wt2 := &WindowTelemetry{}
	feedRounds(wt2)
	var buf2 bytes.Buffer
	wt2.WriteText(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("telemetry text differs across identical runs")
	}

	// Empty and nil cases render the placeholder, not garbage.
	var empty WindowTelemetry
	var buf3 bytes.Buffer
	if err := empty.WriteText(&buf3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf3.String(), "no windowed rounds observed") {
		t.Errorf("empty telemetry text = %q", buf3.String())
	}
	var nilWT *WindowTelemetry
	if err := nilWT.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowTelemetryChromeTrace: retained rounds export as Perfetto
// counter tracks — one sample per (domain, round) plus the barrier track.
func TestWindowTelemetryChromeTrace(t *testing.T) {
	wt := &WindowTelemetry{}
	wt.KeepRounds(1) // retain only the first round
	feedRounds(wt)
	var buf bytes.Buffer
	if err := wt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Tid  int              `json:"tid"`
			Ts   float64          `json:"ts"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	if len(file.TraceEvents) != 3 { // 2 domain tracks + 1 barrier track
		t.Fatalf("events = %d, want 3", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "C" {
			t.Errorf("event %q phase = %q, want C", ev.Name, ev.Ph)
		}
	}
	if file.TraceEvents[0].Args["events"] != 3 {
		t.Errorf("dom 0 counter = %v, want 3", file.TraceEvents[0].Args)
	}
	if last := file.TraceEvents[2]; last.Name != "barrier delivered" || last.Args["messages"] != 3 {
		t.Errorf("barrier event = %+v", last)
	}

	// Nil telemetry still writes a valid empty trace.
	var nilWT *WindowTelemetry
	var buf2 bytes.Buffer
	if err := nilWT.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(buf2.Bytes(), &v); err != nil {
		t.Fatalf("nil trace invalid JSON: %v", err)
	}
}
