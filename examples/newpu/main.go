// New PU walkthrough: §6.8 says supporting a new device needs exactly three
// components — (1) a vectorized sandbox runtime, (2) an XPU-Shim attachment,
// and (3) a programming model. This example adds a computational-storage
// device (smartSSD) from scratch using only the public abstractions:
//
//  1. runS below implements sandbox.Runtime for near-data scan kernels;
//
//  2. the device gets a virtual XPU-Shim node on the host;
//
//  3. the programming model is "scan programs": predicate kernels pushed to
//     the drive, returning matching rows instead of raw blocks.
//
//     go run ./examples/newpu
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/ocicli"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/xpu"
)

// runS is the vectorized sandbox runtime for smartSSD scan kernels
// (component 1). Loading a scan program is cheap; create is vectorized —
// the whole vector installs in one firmware update, like runf's images.
type runS struct {
	pu        *hw.PU
	machine   *hw.Machine
	host      *hw.PU
	sandboxes map[string]*scanSandbox
}

type scanSandbox struct {
	spec  sandbox.Spec
	state sandbox.State
}

const (
	firmwareUpdateTime = 40 * time.Millisecond // install a scan-program vector
	scanRate           = 8e9                   // bytes/sec: internal NAND bandwidth exceeds PCIe
)

func newRunS(m *hw.Machine, ssd, host *hw.PU) *runS {
	return &runS{pu: ssd, machine: m, host: host, sandboxes: make(map[string]*scanSandbox)}
}

func (rs *runS) Create(p *sim.Proc, specs []sandbox.Spec) error {
	for _, s := range specs {
		if s.FuncID == "" {
			return fmt.Errorf("runS: sandbox %q has no scan program", s.ID)
		}
		rs.sandboxes[s.ID] = &scanSandbox{spec: s, state: sandbox.StateCreated}
	}
	p.Sleep(firmwareUpdateTime) // one update for the whole vector
	return nil
}

func (rs *runS) Start(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		sb, ok := rs.sandboxes[id]
		if !ok {
			return fmt.Errorf("runS: no sandbox %q", id)
		}
		sb.state = sandbox.StateRunning
	}
	return nil
}

func (rs *runS) Kill(p *sim.Proc, ids []string, sig int) error {
	for _, id := range ids {
		if sb, ok := rs.sandboxes[id]; ok && sb.state == sandbox.StateRunning {
			sb.state = sandbox.StateStopped
		}
	}
	return nil
}

func (rs *runS) Delete(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		if sb, ok := rs.sandboxes[id]; ok {
			sb.state = sandbox.StateDeleted
		}
	}
	return nil
}

func (rs *runS) State(ids []string) []sandbox.Status {
	if ids == nil {
		for id := range rs.sandboxes {
			ids = append(ids, id)
		}
	}
	out := make([]sandbox.Status, 0, len(ids))
	for _, id := range ids {
		st := sandbox.StateUnknown
		if sb, ok := rs.sandboxes[id]; ok {
			st = sb.state
		}
		out = append(out, sandbox.Status{ID: id, State: st})
	}
	return out
}

// Scan executes a running scan kernel over scanBytes of on-drive data,
// returning only matchBytes across the interconnect — the near-data win.
func (rs *runS) Scan(p *sim.Proc, id string, scanBytes, matchBytes int) error {
	sb, ok := rs.sandboxes[id]
	if !ok || sb.state != sandbox.StateRunning {
		return fmt.Errorf("runS: sandbox %q not running", id)
	}
	p.Sleep(time.Duration(float64(scanBytes) / scanRate * float64(time.Second)))
	_, err := rs.machine.Transfer(p, rs.pu.ID, rs.host.ID, matchBytes)
	return err
}

var _ sandbox.Runtime = (*runS)(nil)

func main() {
	env := sim.NewEnv()

	// Build the machine by hand: host CPU + one smartSSD over DMA.
	machine := hw.NewMachine(env)
	host := machine.AddPU(&hw.PU{Kind: hw.CPU, Name: "host", Cores: 8, Speed: 1, StartupFactor: 1})
	ssd := machine.AddPU(&hw.PU{Kind: hw.SmartSSD, Name: "smartssd-0", Speed: 1, StartupFactor: 1})
	machine.Connect(host.ID, ssd.ID, hw.Link{Kind: hw.LinkDMA, BaseLat: 12 * time.Microsecond, Bandwith: 3e9})

	// Component 2: the device's XPU-Shim attachment is a virtual node on
	// the host, exactly like the FPGA's.
	hostOS := localos.New(env, host)
	shim := xpu.NewShim(env, machine)
	shim.AddNode(host, hostOS)
	vnode := shim.AddVirtualNode(ssd, host, hostOS)

	rs := newRunS(machine, ssd, host)
	shell := ocicli.New(rs) // the same Table 3 verbs drive the new runtime

	env.Spawn("operator", func(p *sim.Proc) {
		fmt.Printf("machine: %v + %v (virtual shim node: %v)\n",
			host.Kind, ssd.Kind, vnode.Virtual())

		// Component 3 in action: install a vector of scan programs and run
		// a near-data scan of 1GB that returns only 2MB of matches.
		out, err := shell.Script(p, `
create flt1:select-fraud,flt2:select-vip
start flt1,flt2
state flt1,flt2`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)

		start := p.Now()
		if err := rs.Scan(p, "flt1", 1<<30, 2<<20); err != nil {
			log.Fatal(err)
		}
		nearData := p.Now().Sub(start)

		// The conventional alternative: ship the whole 1GB to the host and
		// scan there.
		start = p.Now()
		machine.Transfer(p, ssd.ID, host.ID, 1<<30)
		p.Sleep(time.Duration(float64(1<<30) / 4e9 * float64(time.Second))) // host-side scan
		shipAll := p.Now().Sub(start)

		fmt.Printf("near-data scan: %v   ship-everything: %v   (%.1fx less)\n",
			nearData, shipAll, float64(shipAll)/float64(nearData))
	})
	env.Run()
}
