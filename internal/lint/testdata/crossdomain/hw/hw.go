// Stand-in for repro/internal/hw: just enough surface for the crossdomain
// fixtures — the Interconnect cross-domain edges with their real argument
// shapes (from, to, payload size, callback).
package hw

// Proc stands in for the sending simulation process.
type Proc struct{ ID int }

// Interconnect stands in for the sharded NoC model.
type Interconnect struct{ BaseLat int64 }

// Send delivers fn on the destination domain after the modeled transfer.
func (ic *Interconnect) Send(from *Proc, to int, bytes int64, fn func()) {}

// SendAfter is Send with an extra sender-side delay.
func (ic *Interconnect) SendAfter(from *Proc, to int, bytes int64, extra int64, fn func()) {}
