package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ChaosDemo runs a seeded chaos soak — concurrent workers invoking under
// probabilistic sandbox/handler faults while a controller crashes and
// revives DPUs — and writes a human-readable report of the fault timeline,
// recovery counters, and invariant checks. The run is deterministic in its
// seed: identical seeds produce identical reports. It returns an error if a
// recovery invariant is violated (an invocation lost, or billed more than
// once). The regular experiments never attach a fault plan, so the golden
// report bytes are unaffected.
func ChaosDemo(w io.Writer, seed uint64) error {
	const (
		numWorkers    = 8
		invokesPerWkr = 25
		chaosCycles   = 6
	)
	var (
		submitted, succeeded, failed int
		events                       []string
		o                            *obs.Observer
		rt                           *molecule.Runtime
		demoErr                      error
	)
	msf := func(t sim.Time) float64 { return float64(t) / float64(time.Millisecond) }
	sandboxed(func(p *sim.Proc) {
		opts := molecule.DefaultOptions()
		opts.Recovery = molecule.RecoveryOptions{
			InvokeTimeout: 2 * time.Second,
			MaxRetries:    6,
			RetryBackoff:  2 * time.Millisecond,
		}
		rt = newMolecule(p, hw.Config{DPUs: 2}, opts)
		o = obs.New(p.Env())
		rt.SetObserver(o)
		pl := faults.NewPlan(p.Env(), seed)
		pl.CreateFailProb = 0.03
		pl.HandlerFailProb = 0.03
		rt.AttachFaults(pl)
		if demoErr = rt.Deploy(p, "pyaes",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); demoErr != nil {
			return
		}
		dpus := rt.Machine.PUsOfKind(hw.DPU)
		targets := []hw.PUID{-1, -1, dpus[0].ID, dpus[1].ID}
		env := p.Env()

		ctl := rand.New(rand.NewSource(int64(seed)))
		env.Spawn("chaos-ctl", func(cp *sim.Proc) {
			for i := 0; i < chaosCycles; i++ {
				victim := dpus[ctl.Intn(len(dpus))].ID
				pl.Kill(victim)
				events = append(events, fmt.Sprintf("  %8.1f ms  kill   PU %d", msf(cp.Now()), victim))
				cp.Sleep(time.Duration(130+ctl.Intn(60)) * time.Millisecond)
				pl.Revive(victim)
				events = append(events, fmt.Sprintf("  %8.1f ms  revive PU %d", msf(cp.Now()), victim))
				cp.Sleep(time.Duration(10+ctl.Intn(15)) * time.Millisecond)
			}
		})

		wg := sim.NewWaitGroup(env)
		for wk := 0; wk < numWorkers; wk++ {
			wg.Add(1)
			wrng := rand.New(rand.NewSource(int64(seed)*1000 + int64(wk)))
			env.Spawn(fmt.Sprintf("worker-%d", wk), func(wp *sim.Proc) {
				defer wg.Done()
				for i := 0; i < invokesPerWkr; i++ {
					wp.Sleep(time.Duration(wrng.Intn(4000)) * time.Microsecond)
					pin := targets[wrng.Intn(len(targets))]
					submitted++
					if _, err := rt.Invoke(wp, "pyaes", molecule.InvokeOptions{PU: pin}); err != nil {
						failed++
					} else {
						succeeded++
					}
				}
			})
		}
		wg.Wait(p)
	})
	if demoErr != nil {
		return fmt.Errorf("bench: chaos demo: %w", demoErr)
	}

	lbl := obs.L("fn", "pyaes")
	billed := len(rt.Billing().Entries())
	var evictions int64
	for _, pu := range rt.Machine.PUsOfKind(hw.DPU) {
		evictions += o.Counter("molecule_crash_evictions_total",
			obs.L("pu", strconv.Itoa(int(pu.ID))), lbl).Value()
	}
	var injected int64
	for _, kind := range []string{"pu_crash", "transfer_pu_down", "partition", "link_inflate", "sandbox_create", "fork", "handler"} {
		injected += o.Counter("faults_injected_total", obs.L("kind", kind)).Value()
	}

	fmt.Fprintf(w, "# chaos soak (seed %d)\n\n", seed)
	fmt.Fprintf(w, "machine: host CPU + 2 DPUs; %d workers x %d invokes of pyaes\n", numWorkers, invokesPerWkr)
	fmt.Fprintf(w, "faults:  create-fail=0.03 handler-fail=0.03 + seeded kill/revive schedule\n")
	fmt.Fprintf(w, "policy:  invoke-timeout=2s retries=6 backoff=2ms (doubling)\n\n")
	fmt.Fprintln(w, "fault timeline (virtual time):")
	for _, ev := range events {
		fmt.Fprintln(w, ev)
	}
	fmt.Fprintf(w, "\ninvocations: submitted=%d succeeded=%d failed=%d\n", submitted, succeeded, failed)
	fmt.Fprintf(w, "billing entries: %d\n", billed)
	fmt.Fprintf(w, "recovery: retries=%d failovers=%d timeouts=%d crash-evictions=%d faults-injected=%d\n",
		o.Counter("molecule_invoke_retries_total", lbl).Value(),
		o.Counter("molecule_failovers_total", lbl).Value(),
		o.Counter("molecule_invoke_timeouts_total", lbl).Value(),
		evictions, injected)

	if succeeded+failed != submitted {
		return fmt.Errorf("bench: chaos demo: INVARIANT VIOLATED: %d of %d invocations lost",
			submitted-succeeded-failed, submitted)
	}
	if billed != succeeded {
		return fmt.Errorf("bench: chaos demo: INVARIANT VIOLATED: %d billing entries for %d successes",
			billed, succeeded)
	}
	fmt.Fprintln(w, "invariants: no invocation lost; exactly one billing entry per success")
	return nil
}
