// Package linttest is an offline analysistest equivalent for the
// moleculelint analyzers.
//
// The real golang.org/x/tools/go/analysis/analysistest drives go/packages,
// which shells out to the go command per test package; this harness instead
// parses and type-checks fixture directories directly (stdlib imports are
// type-checked from source), builds an analysis.Pass by hand, and compares
// the diagnostics against analysistest-style expectations:
//
//	rand.Intn(6) // want `global rand\.Intn`
//
// Each fixture directory is type-checked under a caller-chosen import path,
// so a test can present the same file as repro/internal/sim (restricted) or
// repro/internal/bench (allowlisted). Earlier packages in a Run call are
// importable by later ones, which lets layering fixtures import stand-ins
// for obs or faults under their real paths.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Package names one fixture directory and the import path to type-check it
// under.
type Package struct {
	Path string // import path the analyzer will see (pass.Pkg.Path())
	Dir  string // directory holding the fixture's .go files
}

// chainImporter resolves fixture packages first and falls back to
// type-checking the standard library from source.
type chainImporter struct {
	fixtures map[string]*types.Package
	std      types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.fixtures[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// want matches one expected-diagnostic annotation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRx pulls the expectation strings off a `// want` comment: double- or
// back-quoted regular expressions, analysistest style.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run type-checks every fixture package in order, runs the analyzer on the
// last one, and asserts its diagnostics exactly match the fixture's
// `// want` annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Package) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("linttest.Run: no fixture packages")
	}
	fset := token.NewFileSet()
	imp := &chainImporter{
		fixtures: make(map[string]*types.Package),
		std:      importer.ForCompiler(fset, "source", nil),
	}

	var files []*ast.File // the target package's syntax
	var tpkg *types.Package
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	for _, pkg := range pkgs {
		syntax, err := parseDir(fset, pkg.Dir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		conf := types.Config{Importer: imp}
		typed, err := conf.Check(pkg.Path, fset, syntax, info)
		if err != nil {
			t.Fatalf("linttest: type-checking %s (%s): %v", pkg.Path, pkg.Dir, err)
		}
		imp.fixtures[pkg.Path] = typed
		files, tpkg = syntax, typed
	}

	var diags []analysis.Diagnostic
	pass := newPass(a, fset, files, tpkg, info)
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	if err := resolveRequires(pass, fset, files, tpkg, info); err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s failed: %v", a.Name, err)
	}

	target := pkgs[len(pkgs)-1]
	wants, err := parseWants(fset, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", target.Path, filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", target.Path, filepath.Base(w.file), w.line, w.re)
		}
	}
}

// newPass builds an analysis.Pass over the fixture package with no-op fact
// machinery: prerequisite passes like ctrlflow call ExportObjectFact /
// ImportObjectFact, which the single-package harness satisfies with stubs
// (facts only refine cross-package noReturn detection; fixtures do not
// depend on it).
func newPass(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             files,
		Pkg:               tpkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          make(map[*analysis.Analyzer]interface{}),
		Report:            func(analysis.Diagnostic) {},
		ReadFile:          os.ReadFile,
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
}

// resolveRequires runs the analyzer's transitive Requires chain over the
// fixture package and fills pass.ResultOf — the piece of the driver the
// CFG-based analyzers need (inspect feeds ctrlflow feeds releasepath).
func resolveRequires(pass *analysis.Pass, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) error {
	for _, req := range pass.Analyzer.Requires {
		if _, done := pass.ResultOf[req]; done {
			continue
		}
		if req == inspect.Analyzer {
			pass.ResultOf[inspect.Analyzer] = inspector.New(files)
			continue
		}
		sub := newPass(req, fset, files, tpkg, info)
		if err := resolveRequires(sub, fset, files, tpkg, info); err != nil {
			return err
		}
		res, err := req.Run(sub)
		if err != nil {
			return fmt.Errorf("prerequisite %s failed: %v", req.Name, err)
		}
		pass.ResultOf[req] = res
		// Share the sub-pass results upward so diamonds (inspect required
		// by both the analyzer and ctrlflow) run once.
		for k, v := range sub.ResultOf {
			if _, done := pass.ResultOf[k]; !done {
				pass.ResultOf[k] = v
			}
		}
	}
	return nil
}

// parseDir parses every .go file in dir, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// parseWants collects the `// want` annotations from the fixture files.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					// Diagnostics that land ON a comment (stale waiver
					// markers, dangling directives) carry the expectation
					// inside the same comment: `//lint:owned gone // want ...`.
					if i := strings.Index(c.Text, " // want "); i >= 0 {
						rest, ok = c.Text[i+len(" // want "):], true
					}
				}
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				exprs := wantRx.FindAllString(rest, -1)
				if len(exprs) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed // want comment: %s", p.Filename, p.Line, c.Text)
				}
				for _, q := range exprs {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						unq, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want string %s: %v", p.Filename, p.Line, q, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
					}
					wants = append(wants, &want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
