// Stand-in for repro/internal/obs in layering fixtures.
package obs

func Noop() {}
