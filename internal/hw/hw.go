// Package hw models the heterogeneous computer: processing units (host CPU,
// DPUs, FPGAs, GPUs), the interconnects between them (RDMA over PCIe,
// DMA, shared memory, and the host network stack), and the FPGA device's
// reconfiguration state machine.
//
// The model is purely structural + temporal: transfers and device operations
// advance the simulation clock of the owning sim.Env according to calibrated
// latency/bandwidth parameters (see internal/params). It knows nothing about
// serverless; the OS, shim, and runtime layers are built on top.
package hw

import (
	"fmt"
	"time"

	"repro/internal/params"
	"repro/internal/sim"
)

// PUKind classifies a processing unit.
type PUKind int

const (
	CPU PUKind = iota
	DPU
	FPGA
	GPU
	// SmartSSD is a computational-storage device (§2.1's smart I/O devices);
	// no built-in runtime ships for it — examples/newpu shows the §6.8
	// recipe for adding one.
	SmartSSD
)

var puKindNames = map[PUKind]string{
	CPU: "CPU", DPU: "DPU", FPGA: "FPGA", GPU: "GPU", SmartSSD: "SmartSSD",
}

func (k PUKind) String() string {
	if s, ok := puKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("PUKind(%d)", int(k))
}

// GeneralPurpose reports whether the PU runs a commodity OS and arbitrary
// programs (CPU and DPU) as opposed to a domain-specific accelerator.
func (k PUKind) GeneralPurpose() bool { return k == CPU || k == DPU }

// PUID identifies a processing unit within one machine.
type PUID int

// PU describes one processing unit.
type PU struct {
	ID      PUID
	Kind    PUKind
	Name    string  // e.g. "host", "bf1-0", "f1-3"
	Cores   int     // general-purpose cores (0 for accelerators)
	FreqMHz int     // core frequency
	Memory  int64   // bytes of local memory
	Speed   float64 // compute latency multiplier relative to the host CPU (1.0 = host)
	// StartupFactor scales startup-path work (process spawn, runtime init,
	// container creation): slow cores plus slow storage stretch cold boots
	// far more than steady-state compute (Fig 10b, Fig 14c/d).
	StartupFactor float64

	// Device is non-nil for FPGA PUs.
	Device *FPGADevice
}

// ComputeTime converts a baseline CPU-time cost into this PU's execution
// time by applying the PU's speed factor.
func (pu *PU) ComputeTime(cpuCost time.Duration) time.Duration {
	if pu.Speed <= 0 {
		return cpuCost
	}
	return time.Duration(float64(cpuCost) * pu.Speed)
}

// StartupTime converts baseline CPU-time startup work into this PU's time
// by applying the startup factor.
func (pu *PU) StartupTime(cpuCost time.Duration) time.Duration {
	if pu.StartupFactor <= 0 {
		return cpuCost
	}
	return time.Duration(float64(cpuCost) * pu.StartupFactor)
}

// LinkKind classifies an interconnect between two PUs.
type LinkKind int

const (
	// LinkLocal is intra-PU communication (same OS, shared memory).
	LinkLocal LinkKind = iota
	// LinkRDMA is PCIe RDMA, the CPU<->DPU path on the evaluation machine.
	LinkRDMA
	// LinkDMA is PCIe DMA, the CPU<->FPGA/GPU path.
	LinkDMA
	// LinkNetwork is the kernel TCP/HTTP path used by baseline systems and
	// by cross-PU communication when no direct interconnect is exploited.
	LinkNetwork
)

var linkKindNames = map[LinkKind]string{
	LinkLocal: "local", LinkRDMA: "rdma", LinkDMA: "dma", LinkNetwork: "network",
}

func (k LinkKind) String() string {
	if s, ok := linkKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// Link is a point-to-point interconnect with a base latency plus a
// size-proportional term.
type Link struct {
	Kind     LinkKind
	BaseLat  time.Duration
	Bandwith float64 // bytes per second; 0 means size-independent
}

// TransferTime returns the one-way latency for a message of n bytes.
func (l Link) TransferTime(n int) time.Duration {
	d := l.BaseLat
	if l.Bandwith > 0 && n > 0 {
		d += time.Duration(float64(n) / l.Bandwith * float64(time.Second))
	}
	return d
}

// FaultInjector vets transfers before they charge the interconnect. It is
// consumer-side so hw need not import the faults package; *faults.Plan
// implements it. A returned error fails the transfer without charging any
// time; inflate > 1 stretches both latency phases (a degraded link).
type FaultInjector interface {
	TransferFault(a, b PUID) (inflate float64, err error)
}

// Machine is a heterogeneous computer: a set of PUs plus the interconnect
// matrix between them.
type Machine struct {
	Env *sim.Env

	// Faults, when non-nil, is consulted on every Transfer. Nil (the
	// default) costs one pointer check and keeps timing byte-identical.
	Faults FaultInjector

	pus   []*PU
	links map[[2]PUID]Link
	// linkCh serializes the bandwidth phase of transfers on shared-medium
	// links (PCIe RDMA/DMA): concurrent bulk transfers in one direction
	// queue behind each other, while the base-latency phase (descriptor
	// setup) still overlaps.
	linkCh map[[2]PUID]*sim.Resource
}

// NewMachine returns an empty machine bound to env.
func NewMachine(env *sim.Env) *Machine {
	return &Machine{
		Env:    env,
		links:  make(map[[2]PUID]Link),
		linkCh: make(map[[2]PUID]*sim.Resource),
	}
}

// AddPU registers a PU and assigns its ID. A local (shared-memory) link to
// itself is installed automatically.
func (m *Machine) AddPU(pu *PU) *PU {
	pu.ID = PUID(len(m.pus))
	m.pus = append(m.pus, pu)
	m.links[[2]PUID{pu.ID, pu.ID}] = Link{Kind: LinkLocal, BaseLat: params.ShmHandoffLatency}
	return pu
}

// PUs returns the machine's processing units in ID order.
func (m *Machine) PUs() []*PU { return m.pus }

// PU returns the processing unit with the given ID, or nil.
func (m *Machine) PU(id PUID) *PU {
	if int(id) < 0 || int(id) >= len(m.pus) {
		return nil
	}
	return m.pus[id]
}

// PUsOfKind returns all PUs of the given kind, in ID order.
func (m *Machine) PUsOfKind(k PUKind) []*PU {
	var out []*PU
	for _, pu := range m.pus {
		if pu.Kind == k {
			out = append(out, pu)
		}
	}
	return out
}

// Connect installs a bidirectional link between two PUs. RDMA and DMA
// links are shared media: their bandwidth phase serializes per direction.
func (m *Machine) Connect(a, b PUID, l Link) {
	m.links[[2]PUID{a, b}] = l
	m.links[[2]PUID{b, a}] = l
	if l.Kind == LinkRDMA || l.Kind == LinkDMA {
		m.linkCh[[2]PUID{a, b}] = sim.NewResource(m.Env, 1)
		m.linkCh[[2]PUID{b, a}] = sim.NewResource(m.Env, 1)
	}
}

// LinkBetween returns the link between two PUs and whether one exists.
func (m *Machine) LinkBetween(a, b PUID) (Link, bool) {
	l, ok := m.links[[2]PUID{a, b}]
	return l, ok
}

// Transfer moves n bytes from PU a to PU b, sleeping the calling process
// for the link's transfer time. On shared-medium links the bandwidth phase
// contends with concurrent transfers in the same direction. It returns the
// link used.
func (m *Machine) Transfer(p *sim.Proc, a, b PUID, n int) (Link, error) {
	l, ok := m.LinkBetween(a, b)
	if !ok {
		return Link{}, fmt.Errorf("hw: no link between PU %d and PU %d", a, b)
	}
	inflate := 1.0
	if m.Faults != nil {
		var err error
		if inflate, err = m.Faults.TransferFault(a, b); err != nil {
			return l, err
		}
	}
	baseLat := l.BaseLat
	bwTime := l.TransferTime(n) - l.BaseLat
	if inflate > 1 {
		baseLat = time.Duration(float64(baseLat) * inflate)
		bwTime = time.Duration(float64(bwTime) * inflate)
	}
	p.Sleep(baseLat)
	if bwTime <= 0 {
		return l, nil
	}
	if ch, ok := m.linkCh[[2]PUID{a, b}]; ok {
		ch.Acquire(p)
		p.Sleep(bwTime)
		ch.Release()
	} else {
		p.Sleep(bwTime)
	}
	return l, nil
}

// TransferBatch moves a vector of payloads (sizes in bytes) from PU a to
// PU b as one doorbell: the link's base latency is paid once for the whole
// batch — the descriptors are posted together — while the bandwidth phase
// still charges every byte and contends on the shared medium as a single
// burst. This is the amortization that makes vectorized nIPC cheaper than
// per-message writes on high-base-latency links (RDMA/DMA); on a zero-cost
// local link it degenerates to the per-message cost. The fault plan is
// consulted once: the batch is one hardware operation.
func (m *Machine) TransferBatch(p *sim.Proc, a, b PUID, sizes []int) (Link, error) {
	l, ok := m.LinkBetween(a, b)
	if !ok {
		return Link{}, fmt.Errorf("hw: no link between PU %d and PU %d", a, b)
	}
	if len(sizes) == 0 {
		return l, nil
	}
	inflate := 1.0
	if m.Faults != nil {
		var err error
		if inflate, err = m.Faults.TransferFault(a, b); err != nil {
			return l, err
		}
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	baseLat := l.BaseLat
	bwTime := l.TransferTime(total) - l.BaseLat
	if inflate > 1 {
		baseLat = time.Duration(float64(baseLat) * inflate)
		bwTime = time.Duration(float64(bwTime) * inflate)
	}
	p.Sleep(baseLat)
	if bwTime <= 0 {
		return l, nil
	}
	if ch, ok := m.linkCh[[2]PUID{a, b}]; ok {
		ch.Acquire(p)
		p.Sleep(bwTime)
		ch.Release()
	} else {
		p.Sleep(bwTime)
	}
	return l, nil
}

// NetworkTransferTime is the latency of a message of n bytes over the
// baseline network/HTTP path between (or within) PUs, including the software
// stack penalty on slow DPU cores. Used by baseline systems that do not
// exploit the direct interconnect.
func (m *Machine) NetworkTransferTime(a, b PUID, n int) time.Duration {
	base := params.NetworkBaseLatency
	stack := func(id PUID) time.Duration {
		if pu := m.PU(id); pu != nil && pu.Kind == DPU {
			return time.Duration(float64(base) * (params.NetworkDPUPenalty - 1) / 2)
		}
		return 0
	}
	d := base + stack(a) + stack(b)
	if n > 0 {
		d += time.Duration(float64(n) / params.NetworkBandwidth * float64(time.Second))
	}
	return d
}

// Config selects the machine topologies used in the paper's evaluation.
type Config struct {
	DPUs       int  // number of Bluefield DPUs
	BF2        bool // model Bluefield-2 instead of Bluefield-1
	FPGAs      int  // number of F1 FPGAs
	GPUs       int  // number of GPUs (generality extension, §6.8)
	FPGABanks  int  // DRAM banks per FPGA (default params.FPGADRAMBanks)
	FPGARegion int  // concurrent execution regions per FPGA (default 4)
}

// Build constructs the machine: one host CPU plus the requested devices,
// fully connected with the interconnects from the paper's testbed
// (CPU<->DPU over RDMA, CPU<->FPGA/GPU over DMA, DPU<->FPGA via the host,
// which Molecule §5 notes is CPU-intercepted).
func Build(env *sim.Env, cfg Config) *Machine {
	m := NewMachine(env)
	host := m.AddPU(&PU{
		Kind: CPU, Name: "host",
		Cores: params.HostCPUCores, FreqMHz: params.HostFreqMHz,
		Memory: params.HostMemory, Speed: params.CPUSpeedFactor, StartupFactor: 1,
	})
	for i := 0; i < cfg.DPUs; i++ {
		speed, freq, startup, name := params.BF1SpeedFactor, params.BF1FreqMHz,
			params.DPUStartupPenalty, fmt.Sprintf("bf1-%d", i)
		if cfg.BF2 {
			speed, freq, startup, name = params.BF2SpeedFactor, params.BF2FreqMHz,
				params.BF2StartupPenalty, fmt.Sprintf("bf2-%d", i)
		}
		dpu := m.AddPU(&PU{
			Kind: DPU, Name: name,
			Cores: params.DPUCores, FreqMHz: freq,
			Memory: params.DPUMemory, Speed: speed, StartupFactor: startup,
		})
		m.Connect(host.ID, dpu.ID, Link{Kind: LinkRDMA, BaseLat: params.RDMABaseLatency, Bandwith: params.RDMABandwidth})
	}
	banks := cfg.FPGABanks
	if banks <= 0 {
		banks = params.FPGADRAMBanks
	}
	regions := cfg.FPGARegion
	if regions <= 0 {
		regions = 4
	}
	for i := 0; i < cfg.FPGAs; i++ {
		dev := NewFPGADevice(env, banks, regions)
		fp := m.AddPU(&PU{
			Kind: FPGA, Name: fmt.Sprintf("f1-%d", i),
			Memory: 64 << 30, Speed: 1.0, StartupFactor: 1, Device: dev,
		})
		m.Connect(host.ID, fp.ID, Link{Kind: LinkDMA, BaseLat: params.DMABaseLatency, Bandwith: params.DMABandwidth})
	}
	for i := 0; i < cfg.GPUs; i++ {
		gp := m.AddPU(&PU{
			Kind: GPU, Name: fmt.Sprintf("gpu-%d", i),
			Memory: 32 << 30, Speed: 1.0, StartupFactor: 1,
		})
		m.Connect(host.ID, gp.ID, Link{Kind: LinkDMA, BaseLat: params.DMABaseLatency, Bandwith: params.DMABandwidth})
	}
	// Device<->device pairs without a direct path route through the host:
	// model as the two-hop sum (CPU-intercepted, §5 Limitations).
	for _, a := range m.pus {
		for _, b := range m.pus {
			if a.ID == b.ID || a.ID == host.ID || b.ID == host.ID {
				continue
			}
			if _, ok := m.LinkBetween(a.ID, b.ID); ok {
				continue
			}
			la, _ := m.LinkBetween(a.ID, host.ID)
			lb, _ := m.LinkBetween(host.ID, b.ID)
			m.Connect(a.ID, b.ID, Link{
				Kind:     la.Kind,
				BaseLat:  la.BaseLat + lb.BaseLat,
				Bandwith: minBW(la.Bandwith, lb.Bandwith),
			})
		}
	}
	return m
}

func minBW(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 || a < b {
		return a
	}
	return b
}

// Describe summarizes the machine topology as human-readable rows
// (PU id, kind, name, cores/frequency, memory, link to the host).
func (m *Machine) Describe() [][]string {
	var rows [][]string
	for _, pu := range m.pus {
		compute := "-"
		if pu.Cores > 0 {
			compute = fmt.Sprintf("%d x %dMHz", pu.Cores, pu.FreqMHz)
		}
		link := "local"
		if pu.ID != 0 {
			if l, ok := m.LinkBetween(0, pu.ID); ok {
				link = fmt.Sprintf("%s (%v base)", l.Kind, l.BaseLat)
			} else {
				link = "none"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", pu.ID), pu.Kind.String(), pu.Name, compute,
			fmt.Sprintf("%dGB", pu.Memory>>30), link,
		})
	}
	return rows
}
