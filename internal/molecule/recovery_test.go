package molecule

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

func recoveryOpts(rec RecoveryOptions) Options {
	opts := DefaultOptions()
	opts.Recovery = rec
	return opts
}

// TestRetryThenSucceedBillsOnce: an invocation pinned to a crashed DPU fails
// fast, retries with failover, and succeeds on the host — producing exactly
// one billing entry and one invocation record.
func TestRetryThenSucceedBillsOnce(t *testing.T) {
	opts := recoveryOpts(RecoveryOptions{MaxRetries: 3, RetryBackoff: 5 * time.Millisecond})
	run(t, hw.Config{DPUs: 1}, opts, func(p *sim.Proc, rt *Runtime) {
		o := obs.New(rt.Env)
		rt.SetObserver(o)
		pl := faults.NewPlan(rt.Env, 1)
		rt.AttachFaults(pl)
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		pl.Kill(dpu)
		res, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu})
		if err != nil {
			t.Fatalf("invoke with recovery failed: %v", err)
		}
		if res.PU != 0 {
			t.Errorf("recovered invoke ran on PU %d, want host 0", res.PU)
		}
		if got := len(rt.Billing().Entries()); got != 1 {
			t.Errorf("billing entries = %d, want exactly 1", got)
		}
		if got := o.Counter("molecule_invoke_retries_total", obs.L("fn", "matmul")).Value(); got != 1 {
			t.Errorf("retries counter = %d, want 1", got)
		}
		if got := o.Counter("molecule_failovers_total", obs.L("fn", "matmul")).Value(); got != 1 {
			t.Errorf("failovers counter = %d, want 1", got)
		}
	})
}

// TestFailoverLandsOnLowestSurvivingPU: with the preferred DPU down, the
// re-placed invocation deterministically lands on the lowest-ordered
// surviving PU of a supported kind, and the dead PU's stranded warm
// instances are evicted rather than served.
func TestFailoverLandsOnLowestSurvivingPU(t *testing.T) {
	opts := recoveryOpts(RecoveryOptions{MaxRetries: 2, RetryBackoff: time.Millisecond})
	run(t, hw.Config{DPUs: 2}, opts, func(p *sim.Proc, rt *Runtime) {
		o := obs.New(rt.Env)
		rt.SetObserver(o)
		pl := faults.NewPlan(rt.Env, 1)
		rt.AttachFaults(pl)
		// DPU-only profile: the host CPU cannot absorb the failover, so the
		// placement scan must pick the next DPU by PU-ID order.
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpus := rt.Machine.PUsOfKind(hw.DPU)
		first, second := dpus[0].ID, dpus[1].ID
		// Warm an instance on the first DPU, then crash it.
		if _, err := rt.Invoke(p, "matmul", InvokeOptions{PU: first}); err != nil {
			t.Fatal(err)
		}
		pl.Kill(first)
		res, err := rt.Invoke(p, "matmul", InvokeOptions{PU: first})
		if err != nil {
			t.Fatalf("failover invoke failed: %v", err)
		}
		if res.PU != second {
			t.Errorf("failover landed on PU %d, want lowest surviving DPU %d", res.PU, second)
		}
		if !res.Cold {
			t.Error("failover invoke served warm on a PU that had no instance")
		}
		// The crashed DPU's warm instance was reaped, not served.
		if got := rt.Node(first).liveCount; got != 0 {
			t.Errorf("dead PU live count = %d, want 0", got)
		}
		if got := o.Counter("molecule_crash_evictions_total", puLabel(first), obs.L("fn", "matmul")).Value(); got != 1 {
			t.Errorf("crash evictions = %d, want 1", got)
		}
		// Revival restores the original placement preference.
		pl.Revive(first)
		res, err = rt.Invoke(p, "matmul", InvokeOptions{PU: first})
		if err != nil {
			t.Fatalf("post-revive invoke failed: %v", err)
		}
		if res.PU != first {
			t.Errorf("post-revive invoke on PU %d, want %d", res.PU, first)
		}
	})
}

// TestTimeoutZeroRetriesSurfacesUnavailable: a timed-out attempt with no
// retry budget returns a typed ErrUnavailable; the abandoned attempt
// finishes in the background without ever being billed.
func TestTimeoutZeroRetriesSurfacesUnavailable(t *testing.T) {
	opts := recoveryOpts(RecoveryOptions{InvokeTimeout: time.Millisecond})
	var rt2 *Runtime
	var o *obs.Observer
	run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
		rt2 = rt
		o = obs.New(rt.Env)
		rt.SetObserver(o)
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		// A cold start takes ~30ms, far beyond the 1ms budget.
		_, err := rt.Invoke(p, "matmul", DefaultInvokeOptions())
		if err == nil {
			t.Fatal("invoke succeeded despite 1ms timeout")
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("error %v does not wrap ErrUnavailable", err)
		}
		if got := o.Counter("molecule_invoke_timeouts_total", obs.L("fn", "matmul")).Value(); got != 1 {
			t.Errorf("timeouts counter = %d, want 1", got)
		}
		if got := o.Counter("molecule_invoke_unavailable_total", obs.L("fn", "matmul")).Value(); got != 1 {
			t.Errorf("unavailable counter = %d, want 1", got)
		}
	})
	// run() has drained the event loop: the abandoned attempt completed in
	// the background. It must not have produced a billing entry.
	if got := len(rt2.Billing().Entries()); got != 0 {
		t.Errorf("abandoned attempt produced %d billing entries, want 0", got)
	}
}

// TestRecoveryDisabledIsSingleAttempt: the zero-value RecoveryOptions keep
// Invoke on the single-attempt path — a pinned-down PU fails immediately
// with no retries, preserving pre-recovery behavior.
func TestRecoveryDisabledIsSingleAttempt(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		o := obs.New(rt.Env)
		rt.SetObserver(o)
		pl := faults.NewPlan(rt.Env, 1)
		rt.AttachFaults(pl)
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		pl.Kill(dpu)
		start := p.Now()
		_, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu})
		if !errors.Is(err, faults.ErrPUDown) {
			t.Errorf("error %v does not wrap ErrPUDown", err)
		}
		if p.Now() != start {
			t.Error("failed single attempt consumed virtual time")
		}
		if got := o.Counter("molecule_invoke_retries_total", obs.L("fn", "matmul")).Value(); got != 0 {
			t.Errorf("retries counter = %d with recovery disabled, want 0", got)
		}
	})
}

// TestNonTransientErrorNotRetried: a deploy-level error (no profile for the
// pinned kind) is permanent and must not burn the retry budget.
func TestNonTransientErrorNotRetried(t *testing.T) {
	opts := recoveryOpts(RecoveryOptions{MaxRetries: 5, RetryBackoff: time.Millisecond})
	run(t, hw.Config{DPUs: 1}, opts, func(p *sim.Proc, rt *Runtime) {
		o := obs.New(rt.Env)
		rt.SetObserver(o)
		if err := rt.Deploy(p, "matmul"); err != nil { // CPU profile only
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		if _, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu}); err == nil {
			t.Fatal("invoke with unsupported profile succeeded")
		}
		if got := o.Counter("molecule_invoke_retries_total", obs.L("fn", "matmul")).Value(); got != 0 {
			t.Errorf("permanent error was retried %d times", got)
		}
	})
}

// TestKeepAliveClockNeverRewinds: greedy-dual aging must be monotonic.
// Evicting a victim whose (stale) priority predates the current clock used
// to rewind the clock, deflating every later admission's priority.
func TestKeepAliveClockNeverRewinds(t *testing.T) {
	ka := newKeepAlive(1)
	ka.hit("old") // pri = 1 at clock 0
	ka.clock = 5  // prior evictions advanced the clock
	n := &puNode{warm: map[string][]*instance{
		"old": {{}},
		"new": {{}},
	}}
	evict := ka.admit("new", n)
	if len(evict) != 1 {
		t.Fatalf("evicted %d instances, want 1", len(evict))
	}
	if ka.stat("old").pri >= ka.stat("new").pri {
		t.Fatalf("victim selection wrong: old pri %.1f, new pri %.1f",
			ka.stat("old").pri, ka.stat("new").pri)
	}
	if ka.clock != 5 {
		t.Errorf("clock = %.1f after evicting a stale victim, want 5 (no rewind)", ka.clock)
	}
	// And the clock still advances normally for victims ahead of it.
	ka.setCost("rich", 100)
	ka.hit("rich") // pri = 5 + 100 = 105
	n.warm["rich"] = []*instance{{}}
	ka.admit("rich", n) // rich re-admitted; victim is "new" (pri 6)
	if ka.clock != 6 {
		t.Errorf("clock = %.1f, want 6 (advanced to victim priority)", ka.clock)
	}
}
