package workloads

import (
	"testing"

	"repro/internal/lang"
)

// Every package manifest must be consistent with the function's measured
// DepImport: the closure's import time can never exceed it (the gap is the
// function's private import tail), so a root-only zygote forest degenerates
// to exactly the flat-cfork cost and a fitted forest can only save time.
func TestManifestClosureWithinDepImport(t *testing.T) {
	n := 0
	for _, fn := range All() {
		closure, err := lang.Closure(fn.Packages)
		if err != nil {
			t.Errorf("%s: bad manifest: %v", fn.Name, err)
			continue
		}
		if len(fn.Packages) == 0 {
			continue
		}
		n++
		if cost := closure.ImportCost(); cost > fn.DepImport {
			t.Errorf("%s: closure import %v exceeds DepImport %v", fn.Name, cost, fn.DepImport)
		}
	}
	if n < 10 {
		t.Errorf("only %d functions carry package manifests; the Zipf mix needs coverage", n)
	}
}

// Manifests must reference only cataloged packages, and the catalog itself
// must be dependency-acyclic (Closure terminates and is idempotent).
func TestCatalogClosed(t *testing.T) {
	for _, name := range lang.CatalogNames() {
		c1, err := lang.Closure([]string{name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := lang.Closure(c1)
		if err != nil || !c1.Equal(c2) {
			t.Errorf("%s: closure not idempotent: %v vs %v (%v)", name, c1, c2, err)
		}
	}
}
