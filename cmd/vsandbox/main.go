// Command vsandbox drives a vectorized sandbox runtime through the paper's
// Table 3 command interface. Pass a script with -c (semicolon- or
// newline-separated); without -c a demo script runs against the selected
// runtime.
//
//	vsandbox -runtime fpga -c "create a:madd,b:mmult; start a,b; state a,b"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/ocicli"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

const demo = `# vectorized sandbox demo
create a:madd,b:mmult,c:mscale
state a,b,c
start a,b,c
state a,b,c
delete b
state a,b,c`

func main() {
	kind := flag.String("runtime", "container", "sandbox runtime: container | fpga | gpu")
	script := flag.String("c", "", "commands (';' or newline separated); default runs a demo")
	flag.Parse()

	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{FPGAs: 1, GPUs: 1})
	var rt sandbox.Runtime
	switch *kind {
	case "container":
		rt = sandbox.NewContainerRuntime(localos.New(env, m.PU(0)))
	case "fpga":
		rf, err := sandbox.NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
		if err != nil {
			log.Fatal(err)
		}
		rt = rf
	case "gpu":
		rg, err := sandbox.NewRunG(env, m, m.PUsOfKind(hw.GPU)[0], m.PU(0))
		if err != nil {
			log.Fatal(err)
		}
		rt = rg
	default:
		log.Fatalf("unknown runtime %q", *kind)
	}

	src := demo
	if *script != "" {
		src = strings.ReplaceAll(*script, ";", "\n")
	}
	sh := ocicli.New(rt)
	env.Spawn("vsandbox", func(p *sim.Proc) {
		out, err := sh.Script(p, src)
		fmt.Print(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(virtual time elapsed: %v)\n", p.Now())
	})
	env.Run()
}
