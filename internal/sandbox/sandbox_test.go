package sandbox

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

func cpuRig() (*sim.Env, *ContainerRuntime) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	os := localos.New(env, m.PU(0))
	return env, NewContainerRuntime(os)
}

func fpgaRig() (*sim.Env, *hw.Machine, *RunF) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{FPGAs: 1})
	fpga := m.PUsOfKind(hw.FPGA)[0]
	rf, err := NewRunF(m, fpga, m.PU(0))
	if err != nil {
		panic(err)
	}
	return env, m, rf
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || State(99).String() == "" {
		t.Error("State String broken")
	}
}

func TestContainerLifecycle(t *testing.T) {
	env, cr := cpuRig()
	env.Spawn("x", func(p *sim.Proc) {
		spec := Spec{ID: "s1", FuncID: "hello", Lang: lang.Python}
		if err := CreateOne(p, cr, spec); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(cr, "s1"); st.State != StateCreated {
			t.Errorf("state after create = %v", st.State)
		}
		if err := StartOne(p, cr, "s1"); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(cr, "s1"); st.State != StateRunning {
			t.Errorf("state after start = %v", st.State)
		}
		sb := cr.Sandbox("s1")
		if sb.Inst == nil || sb.Inst.FuncID != "hello" {
			t.Error("instance not loaded with function")
		}
		if err := KillOne(p, cr, "s1", 9); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(cr, "s1"); st.State != StateStopped {
			t.Errorf("state after kill = %v", st.State)
		}
		if err := DeleteOne(p, cr, "s1"); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(cr, "s1"); st.State != StateUnknown {
			t.Errorf("state after delete = %v", st.State)
		}
	})
	env.Run()
}

func TestContainerErrors(t *testing.T) {
	env, cr := cpuRig()
	env.Spawn("x", func(p *sim.Proc) {
		if err := CreateOne(p, cr, Spec{ID: "a", FuncID: "f"}); err == nil {
			t.Error("create without language accepted")
		}
		spec := Spec{ID: "a", FuncID: "f", Lang: lang.Python}
		CreateOne(p, cr, spec)
		if err := CreateOne(p, cr, spec); err == nil {
			t.Error("duplicate create accepted")
		}
		if err := StartOne(p, cr, "missing"); err == nil {
			t.Error("start of missing sandbox accepted")
		}
		StartOne(p, cr, "a")
		if err := StartOne(p, cr, "a"); err == nil {
			t.Error("double start accepted")
		}
		if err := DeleteOne(p, cr, "missing"); err == nil {
			t.Error("delete of missing sandbox accepted")
		}
		if err := KillOne(p, cr, "missing", 9); err == nil {
			t.Error("kill of missing sandbox accepted")
		}
	})
	env.Run()
}

func TestContainerColdVsCfork(t *testing.T) {
	startLatency := func(useCfork bool, prewarm bool) time.Duration {
		env, cr := cpuRig()
		cr.UseCfork = useCfork
		cr.CpusetMutexPatch = true
		var d time.Duration
		env.Spawn("x", func(p *sim.Proc) {
			if useCfork {
				cr.EnsureTemplate(p, lang.Python) // template prepared off-path
			}
			if prewarm {
				cr.Prewarm(p, 1)
			}
			start := p.Now()
			CreateOne(p, cr, Spec{ID: "s", FuncID: "f", Lang: lang.Python})
			StartOne(p, cr, "s")
			d = p.Now().Sub(start)
		})
		env.Run()
		return d
	}
	cold := startLatency(false, false)
	forked := startLatency(true, true)
	if ratio := float64(cold) / float64(forked); ratio < 8 {
		t.Errorf("cfork speedup %.1fx, want ~10x (cold=%v forked=%v)", ratio, cold, forked)
	}
	// With a prepared container pool, cfork start is <10ms (the paper's
	// headline: first container-level fork under 10ms).
	if forked > 10*time.Millisecond {
		t.Errorf("cfork start = %v, want <10ms", forked)
	}
}

func TestPrewarmPool(t *testing.T) {
	env, cr := cpuRig()
	env.Spawn("x", func(p *sim.Proc) {
		cr.Prewarm(p, 3)
		if cr.PoolSize() != 3 {
			t.Errorf("pool = %d, want 3", cr.PoolSize())
		}
		// Creates consume the pool without paying create time.
		start := p.Now()
		CreateOne(p, cr, Spec{ID: "a", FuncID: "f", Lang: lang.Python})
		if p.Now() != start {
			t.Error("create with pooled container charged time")
		}
		if cr.PoolSize() != 2 {
			t.Errorf("pool = %d, want 2", cr.PoolSize())
		}
	})
	env.Run()
}

func TestTemplateReuse(t *testing.T) {
	env, cr := cpuRig()
	env.Spawn("x", func(p *sim.Proc) {
		t1, err := cr.EnsureTemplate(p, lang.Python)
		if err != nil {
			t.Fatal(err)
		}
		mark := p.Now()
		t2, err := cr.EnsureTemplate(p, lang.Python)
		if err != nil {
			t.Fatal(err)
		}
		if t1 != t2 {
			t.Error("template rebooted")
		}
		if p.Now() != mark {
			t.Error("cached template charged boot time")
		}
		if cr.Template(lang.Node) != nil {
			t.Error("unbooted template non-nil")
		}
	})
	env.Run()
}

// --- runf -------------------------------------------------------------------

// TestFig10cStartupStaircase reproduces the FPGA startup breakdown:
// baseline (erase+load+prep) ≈ 20.3s, no-erase ≈ 3.8s, warm-image ≈ 1.9s,
// warm-sandbox ≈ 53ms.
func TestFig10cStartupStaircase(t *testing.T) {
	approx := func(got time.Duration, wantSec float64) bool {
		return math.Abs(got.Seconds()-wantSec) <= wantSec*0.1
	}

	// Baseline: erase-always policy, cold image, cold sandbox.
	env, _, rf := fpgaRig()
	var baseline, noErase, warmImage, warmSandbox time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		rf.Policy = EraseAlways
		// Pre-dirty the fabric so the baseline pays the erase.
		rf.Create(p, []Spec{{ID: "w0", FuncID: "other"}})
		start := p.Now()
		rf.Create(p, []Spec{{ID: "s1", FuncID: "vmult"}})
		rf.Start(p, []string{"s1"})
		baseline = p.Now().Sub(start)

		// No-erase: Molecule's policy.
		rf.Policy = NoErase
		start = p.Now()
		rf.Create(p, []Spec{{ID: "s2", FuncID: "vmult"}})
		rf.Start(p, []string{"s2"})
		noErase = p.Now().Sub(start)

		// Warm image: function already in the programmed image, sandbox not
		// yet prepared.
		rf.Create(p, []Spec{{ID: "s3", FuncID: "vmult"}, {ID: "s4", FuncID: "madd"}})
		rf.Start(p, []string{"s3"})
		start = p.Now()
		rf.Start(p, []string{"s4"}) // image warm, sandbox cold
		warmImage = p.Now().Sub(start)

		// Warm sandbox: invoke on a prepared sandbox.
		start = p.Now()
		if err := rf.Invoke(p, "s4", 4096, 4096, 52500*time.Microsecond, InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
		warmSandbox = p.Now().Sub(start)
	})
	env.Run()

	if !approx(baseline, 20.3) {
		t.Errorf("baseline = %v, want ~20.3s", baseline)
	}
	if !approx(noErase, 3.8) {
		t.Errorf("no-erase = %v, want ~3.8s", noErase)
	}
	if !approx(warmImage, 1.9) {
		t.Errorf("warm-image = %v, want ~1.9s", warmImage)
	}
	if warmSandbox < 50*time.Millisecond || warmSandbox > 60*time.Millisecond {
		t.Errorf("warm-sandbox = %v, want ~53ms", warmSandbox)
	}
}

func TestRunFVectorCreateCachesAll(t *testing.T) {
	env, _, rf := fpgaRig()
	env.Spawn("x", func(p *sim.Proc) {
		specs := []Spec{
			{ID: "a", FuncID: "madd"}, {ID: "b", FuncID: "mmult"}, {ID: "c", FuncID: "mscale"},
		}
		if err := rf.Create(p, specs); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"madd", "mmult", "mscale"} {
			if !rf.Cached(k) {
				t.Errorf("kernel %q not cached after vector create", k)
			}
		}
		progs, _ := rf.Device().ProgramCounts()
		if progs != 1 {
			t.Errorf("programs = %d, want 1 (one flush for the whole vector)", progs)
		}
	})
	env.Run()
}

func TestRunFDeleteIsFreeAndDeferred(t *testing.T) {
	env, _, rf := fpgaRig()
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}})
		start := p.Now()
		if err := rf.Delete(p, []string{"a"}); err != nil {
			t.Fatal(err)
		}
		if p.Now() != start {
			t.Error("FPGA delete charged time — must be free")
		}
		if StateOne(rf, "a").State != StateDeleted {
			t.Error("delete did not update state")
		}
		// The configuration is still on the fabric until the next create.
		if !rf.Cached("k1") {
			t.Error("kernel evicted by delete — destroy must be deferred to next create")
		}
		// Next create replaces it.
		rf.Create(p, []Spec{{ID: "b", FuncID: "k2"}})
		if rf.Cached("k1") {
			t.Error("old kernel survived replacement create")
		}
	})
	env.Run()
}

func TestRunFCreateReplacesLiveSandboxes(t *testing.T) {
	env, _, rf := fpgaRig()
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}})
		rf.Start(p, []string{"a"})
		rf.Create(p, []Spec{{ID: "b", FuncID: "k2"}})
		if err := rf.Start(p, []string{"a"}); err == nil {
			t.Error("start of replaced sandbox succeeded")
		}
	})
	env.Run()
}

func TestRunFInvokeRequiresPrepared(t *testing.T) {
	env, _, rf := fpgaRig()
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}})
		if err := rf.Invoke(p, "a", 1, 1, time.Millisecond, InvokeOptions{}); err == nil {
			t.Error("invoke before start succeeded")
		}
		rf.Start(p, []string{"a"})
		if err := rf.Invoke(p, "a", 1, 1, time.Millisecond, InvokeOptions{}); err != nil {
			t.Error(err)
		}
		if err := rf.Invoke(p, "missing", 1, 1, time.Millisecond, InvokeOptions{}); err == nil {
			t.Error("invoke of missing sandbox succeeded")
		}
	})
	env.Run()
}

// TestRunFRetentionZeroCopy verifies the §4.3 shared-memory chain: with
// retained input, the invoke skips the host→device transfer and is strictly
// faster for large payloads.
func TestRunFRetentionZeroCopy(t *testing.T) {
	env, _, rf := fpgaRig()
	rf.Device().SetRetention(true)
	const payload = 8 << 20
	var copied, retained time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}})
		rf.Start(p, []string{"a"})
		start := p.Now()
		if err := rf.Invoke(p, "a", payload, payload, time.Millisecond, InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
		copied = p.Now().Sub(start)

		if err := rf.MarkRetained("k1"); err != nil {
			t.Fatal(err)
		}
		start = p.Now()
		if err := rf.Invoke(p, "a", payload, payload, time.Millisecond,
			InvokeOptions{InputRetained: true, RetainOutput: true}); err != nil {
			t.Fatal(err)
		}
		retained = p.Now().Sub(start)
	})
	env.Run()
	if ratio := float64(copied) / float64(retained); ratio < 1.5 {
		t.Errorf("retention speedup %.2fx for %dB, want >1.5x (copied=%v retained=%v)",
			ratio, payload, copied, retained)
	}
}

func TestRunFRetainedInputRequiresValidBank(t *testing.T) {
	env, _, rf := fpgaRig()
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}})
		rf.Start(p, []string{"a"})
		if err := rf.Invoke(p, "a", 1, 1, time.Millisecond, InvokeOptions{InputRetained: true}); err == nil {
			t.Error("retained-input invoke with invalid bank succeeded")
		}
	})
	env.Run()
}

func TestRunFStartConcurrentPrep(t *testing.T) {
	env, _, rf := fpgaRig()
	var d time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}, {ID: "b", FuncID: "k2"}, {ID: "c", FuncID: "k3"}})
		start := p.Now()
		if err := rf.Start(p, []string{"a", "b", "c"}); err != nil {
			t.Fatal(err)
		}
		d = p.Now().Sub(start)
	})
	env.Run()
	if d != params.FPGASandboxPrep {
		t.Errorf("vector start took %v, want one concurrent prep %v", d, params.FPGASandboxPrep)
	}
}

func TestNewRunFRejectsNonFPGA(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	if _, err := NewRunF(m, m.PU(0), m.PU(0)); err == nil {
		t.Error("RunF accepted a CPU")
	}
}

// --- rung -------------------------------------------------------------------

func TestRunGLifecycleAndInvoke(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{GPUs: 1})
	gpu := m.PUsOfKind(hw.GPU)[0]
	rg, err := NewRunG(env, m, gpu, m.PU(0))
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("x", func(p *sim.Proc) {
		if err := rg.Create(p, []Spec{{ID: "a", FuncID: "gemm"}, {ID: "b", FuncID: "conv"}}); err != nil {
			t.Fatal(err)
		}
		if err := rg.Start(p, []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		if err := rg.Invoke(p, "a", 1<<20, 1<<20, 3*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		// Unlike runf, creating more sandboxes does not evict prior ones.
		if err := rg.Create(p, []Spec{{ID: "c", FuncID: "relu"}}); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(rg, "a"); st.State != StateRunning {
			t.Errorf("GPU sandbox a = %v after unrelated create, want running", st.State)
		}
		if err := rg.Delete(p, []string{"b"}); err != nil {
			t.Fatal(err)
		}
		if st := StateOne(rg, "b"); st.State != StateDeleted {
			t.Error("GPU delete did not update state")
		}
		if err := rg.Invoke(p, "b", 1, 1, time.Millisecond); err == nil {
			t.Error("invoke of deleted GPU sandbox succeeded")
		}
	})
	env.Run()
}

func TestRunGErrors(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{GPUs: 1})
	gpu := m.PUsOfKind(hw.GPU)[0]
	if _, err := NewRunG(env, m, m.PU(0), m.PU(0)); err == nil {
		t.Error("RunG accepted a CPU")
	}
	rg, _ := NewRunG(env, m, gpu, m.PU(0))
	env.Spawn("x", func(p *sim.Proc) {
		if err := rg.Create(p, []Spec{{ID: "a"}}); err == nil {
			t.Error("GPU create without func-id accepted")
		}
		rg.Create(p, []Spec{{ID: "a", FuncID: "k"}})
		if err := rg.Create(p, []Spec{{ID: "a", FuncID: "k"}}); err == nil {
			t.Error("duplicate GPU create accepted")
		}
		if err := rg.Start(p, []string{"zzz"}); err == nil {
			t.Error("start of missing GPU sandbox accepted")
		}
	})
	env.Run()
}

// TestVectorizedInterfaceUniformity drives all three runtimes through the
// same Runtime interface — the property that lets Molecule manage
// heterogeneous functions without device-specific code.
func TestVectorizedInterfaceUniformity(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1, GPUs: 1})
	cpuOS := localos.New(env, m.PU(0))
	cr := NewContainerRuntime(cpuOS)
	rf, _ := NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
	rg, _ := NewRunG(env, m, m.PUsOfKind(hw.GPU)[0], m.PU(0))

	runtimes := []Runtime{cr, rf, rg}
	env.Spawn("x", func(p *sim.Proc) {
		for i, rt := range runtimes {
			spec := Spec{ID: "u", FuncID: "f", Lang: lang.Python}
			if err := rt.Create(p, []Spec{spec}); err != nil {
				t.Fatalf("runtime %d create: %v", i, err)
			}
			if err := rt.Start(p, []string{"u"}); err != nil {
				t.Fatalf("runtime %d start: %v", i, err)
			}
			if got := StateOne(rt, "u").State; got != StateRunning {
				t.Errorf("runtime %d state = %v, want running", i, got)
			}
			if err := rt.Kill(p, []string{"u"}, 15); err != nil {
				t.Fatalf("runtime %d kill: %v", i, err)
			}
			if err := rt.Delete(p, []string{"u"}); err != nil {
				t.Fatalf("runtime %d delete: %v", i, err)
			}
			all := rt.State(nil)
			for _, st := range all {
				if st.ID == "u" && st.State == StateRunning {
					t.Errorf("runtime %d: deleted sandbox still running", i)
				}
			}
		}
	})
	env.Run()
}

// TestRunFBankSharingSerializesExecution: with a single DRAM bank, three
// cached instances share it; the wrapper's bank lock keeps sharers from
// running concurrently even when regions would allow it.
func TestRunFBankSharingSerializesExecution(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{FPGAs: 1, FPGABanks: 1, FPGARegion: 4})
	rf, err := NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	env.Spawn("setup", func(p *sim.Proc) {
		if err := rf.Create(p, []Spec{{ID: "a", FuncID: "k1"}, {ID: "b", FuncID: "k2"}}); err != nil {
			t.Fatal(err)
		}
		if err := rf.Start(p, []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		wg := sim.NewWaitGroup(env)
		for _, id := range []string{"a", "b"} {
			id := id
			wg.Add(1)
			env.Spawn("exec", func(ep *sim.Proc) {
				defer wg.Done()
				if err := rf.Invoke(ep, id, 64, 64, 10*time.Millisecond, InvokeOptions{}); err != nil {
					t.Error(err)
				}
				if ep.Now() > last {
					last = ep.Now()
				}
			})
		}
		wg.Wait(p)
	})
	env.Run()
	// Two 10ms kernels sharing one bank: the second waits for the first,
	// so the makespan covers >= 20ms of fabric time.
	if time.Duration(last) < 20*time.Millisecond {
		t.Errorf("sharers overlapped: makespan %v < 20ms of serialized fabric", time.Duration(last))
	}
	// Sanity: both kernels landed on the same (only) bank.
	if len(rf.Device().Banks()[0].Owners) != 2 {
		t.Errorf("bank owners = %v, want both kernels", rf.Device().Banks()[0].Owners)
	}
}
