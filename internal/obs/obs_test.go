package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilObserverIsFullyInert(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	// Every call on the nil chain must be a safe no-op.
	s := o.Span(nil, "root", 0)
	s.SetAttr("k", "v")
	s.SetPU(3)
	s.Finish()
	if s.Duration() != 0 {
		t.Error("nil span has duration")
	}
	o.Counter("c", L("pu", "0")).Add(5)
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Gauge("g").Add(-1)
	o.Histogram("h").Observe(time.Millisecond)
	var tr *Tracer
	tr.NamePU(0, "host")
	tr.Reset()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer records spans")
	}
	if _, ok := tr.Find("root"); ok {
		t.Error("nil tracer finds spans")
	}
	var reg *Registry
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil tracer chrome export: %v", err)
	}
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Errorf("nil-tracer export is not valid JSON: %v", err)
	}
}

// TestNilFastPathAllocs pins the disabled-path cost: a guarded call site
// must not allocate. This is the per-callsite analogue of the kernel
// microbenchmark gate (BenchmarkKernelSleep staying 0 allocs/op).
func TestNilFastPathAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		s := o.Span(nil, "invoke", 0)
		s.SetAttr("fn", "x")
		s.Finish()
	})
	if allocs != 0 {
		t.Errorf("nil-observer span path allocates %v per op, want 0", allocs)
	}
	// The obs v2 types keep the same contract: detached SLO recording and
	// window observation must stay allocation-free.
	var sk *Sketch
	var e *SLOEngine
	var wt *WindowTelemetry
	ws := sim.WindowStats{}
	allocs = testing.AllocsPerRun(100, func() {
		o.RecordSLO("f", time.Millisecond)
		sk.Observe(time.Millisecond)
		e.Record("f", time.Millisecond)
		wt.WindowRound(ws)
	})
	if allocs != 0 {
		t.Errorf("nil obs v2 fast paths allocate %v per op, want 0", allocs)
	}
}

// TestInternedLabelSet pins the interned lookup contract: a LabelSet
// resolves to the same series as the variadic lookup, survives a registry
// swap, and the hit path performs zero allocations.
func TestInternedLabelSet(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	ls := Intern("xpu_nipc_messages_total", L("link", "0->1"))

	o.CounterSet(ls).Add(3)
	if got := o.Counter("xpu_nipc_messages_total", L("link", "0->1")).Value(); got != 3 {
		t.Fatalf("interned and variadic lookups disagree: %d", got)
	}
	o.GaugeSet(Intern("g", L("a", "1"))).Set(7)
	if got := o.Gauge("g", L("a", "1")).Value(); got != 7 {
		t.Fatalf("interned gauge = %v, want 7", got)
	}
	o.HistogramSet(Intern("h")).Observe(time.Millisecond)
	if got := o.Histogram("h").Count(); got != 1 {
		t.Fatalf("interned histogram count = %d, want 1", got)
	}

	// Observer-independent: the same LabelSet addresses the equivalent
	// series in a fresh registry (caches survive SetObserver swaps).
	o2 := New(env)
	o2.CounterSet(ls).Inc()
	if got := o2.Counter("xpu_nipc_messages_total", L("link", "0->1")).Value(); got != 1 {
		t.Fatalf("LabelSet not portable across registries: %d", got)
	}

	// Nil-safe like every other lookup.
	var nilObs *Observer
	nilObs.CounterSet(ls).Inc()
	nilObs.GaugeSet(ls).Set(1)
	nilObs.HistogramSet(ls).Observe(time.Second)

	if allocs := testing.AllocsPerRun(100, func() {
		o.CounterSet(ls).Inc()
		o.GaugeSet(ls).Set(1)
	}); allocs != 0 {
		t.Errorf("interned hit path allocates %v per op, want 0", allocs)
	}
}

func TestSpanTreeAndVirtualTime(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	env.Spawn("driver", func(p *sim.Proc) {
		root := o.Span(nil, "invoke", 0)
		root.SetAttr("fn", "helloworld")
		p.Sleep(2 * time.Millisecond)
		child := o.Span(root, "handler", -1) // inherits PU 0
		p.Sleep(3 * time.Millisecond)
		child.Finish()
		root.Finish()
	})
	env.Run()

	spans := o.Tracer.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	root, child := spans[0], spans[1]
	if root.Parent != 0 || child.Parent != root.ID {
		t.Errorf("tree broken: root.Parent=%d child.Parent=%d root.ID=%d", root.Parent, child.Parent, root.ID)
	}
	if child.PU != 0 {
		t.Errorf("child did not inherit PU: %d", child.PU)
	}
	if got := root.End.Sub(root.Start); got != 5*time.Millisecond {
		t.Errorf("root duration = %v, want 5ms", got)
	}
	if got := child.End.Sub(child.Start); got != 3*time.Millisecond {
		t.Errorf("child duration = %v, want 3ms", got)
	}
	if child.Start != sim.Time(2*time.Millisecond) {
		t.Errorf("child start = %v", child.Start)
	}
	kids := o.Tracer.Children(root.ID)
	if len(kids) != 1 || kids[0].Name != "handler" {
		t.Errorf("Children(root) = %+v", kids)
	}
}

func TestSpansSnapshotIsACopy(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	s := o.Span(nil, "a", 0)
	s.SetAttr("k", "v")
	s.Finish()
	snap := o.Tracer.Spans()
	snap[0].Name = "corrupted"
	snap[0].Attrs[0].Value = "corrupted"
	again := o.Tracer.Spans()
	if again[0].Name != "a" || again[0].Attrs[0].Value != "v" {
		t.Error("Spans() aliases internal state; mutation leaked through")
	}
	got, ok := o.Tracer.Find("a")
	if !ok || got.Attrs[0].Value != "v" {
		t.Error("Find() affected by snapshot mutation")
	}
}

func TestDoubleFinishKeepsFirstEnd(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	env.Spawn("driver", func(p *sim.Proc) {
		s := o.Span(nil, "a", 0)
		p.Sleep(time.Millisecond)
		s.Finish()
		p.Sleep(time.Millisecond)
		s.Finish() // must not move End
	})
	env.Run()
	sp, _ := o.Tracer.Find("a")
	if sp.End != sim.Time(time.Millisecond) {
		t.Errorf("second Finish moved End to %v", sp.End)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("molecule_cold_starts_total", L("pu", "0"))
	c.Add(2)
	c.Inc()
	c.Add(-5) // negative adds ignored: counters are monotone
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same (name, labels) resolves to the same series regardless of label
	// order at the call site.
	if r.Counter("x", L("a", "1"), L("b", "2")) != r.Counter("x", L("b", "2"), L("a", "1")) {
		t.Error("label order created distinct series")
	}
	g := r.Gauge("depth", L("fifo", "req-1"))
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Errorf("gauge = %v, want 3", g.Value())
	}
	h := r.Histogram("lat", L("pu", "1"))
	h.Observe(500 * time.Microsecond) // bucket le=1ms
	h.Observe(30 * time.Millisecond)  // bucket le=50ms
	h.Observe(time.Hour)              // +Inf
	if h.Count() != 3 {
		t.Errorf("hist count = %d", h.Count())
	}
	if h.Sum() != time.Hour+30*time.Millisecond+500*time.Microsecond {
		t.Errorf("hist sum = %v", h.Sum())
	}
	b := h.Buckets()
	if len(b) != numHistBuckets+1 {
		t.Fatalf("buckets = %d", len(b))
	}
	if b[len(b)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", b[len(b)-1])
	}
	var total int64
	for _, n := range b {
		total += n
	}
	if total != 3 {
		t.Errorf("bucket total = %d, want 3", total)
	}
	b[0] = 99
	if h.Buckets()[0] == 99 {
		t.Error("Buckets() aliases internal state")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("molecule_cold_starts_total", "Cold starts by PU.")
	r.Counter("molecule_cold_starts_total", L("pu", "1")).Add(7)
	r.Counter("molecule_cold_starts_total", L("pu", "0")).Add(2)
	r.Gauge("xpu_fifo_depth", L("fifo", "req-1")).Set(2)
	r.Histogram("molecule_invoke_latency_seconds", L("pu", "0")).Observe(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# HELP molecule_cold_starts_total Cold starts by PU.",
		"# TYPE molecule_cold_starts_total counter",
		`molecule_cold_starts_total{pu="0"} 2`,
		`molecule_cold_starts_total{pu="1"} 7`,
		"# TYPE xpu_fifo_depth gauge",
		`xpu_fifo_depth{fifo="req-1"} 2`,
		"# TYPE molecule_invoke_latency_seconds histogram",
		`molecule_invoke_latency_seconds_bucket{pu="0",le="0.005"} 1`,
		`molecule_invoke_latency_seconds_bucket{pu="0",le="+Inf"} 1`,
		`molecule_invoke_latency_seconds_sum{pu="0"} 0.003`,
		`molecule_invoke_latency_seconds_count{pu="0"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// pu="0" series must sort before pu="1".
	if strings.Index(out, `pu="0"} 2`) > strings.Index(out, `pu="1"} 7`) {
		t.Error("series not sorted by label set")
	}
	// Cumulative buckets: a 3ms sample lands in every bucket from le=0.005 up.
	if strings.Contains(out, `le="0.0025"} 1`) {
		t.Error("3ms sample counted in the 2.5ms bucket")
	}
	// Determinism: a second render produces identical bytes.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic")
	}
}

// TestPrometheusBucketBoundaries is the regression test for two
// boundary bugs: observations exactly on a bucket's upper bound must land
// in that bucket (inclusive le semantics), and the series sort key must
// strip only the real le pair — a label whose key merely ends in "le"
// (role="edge" contains the bytes le=") used to derail bucket ordering.
func TestPrometheusBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_latency_seconds", L("role", "edge"))
	h.Observe(time.Millisecond)                 // exactly le=0.001
	h.Observe(2500 * time.Microsecond)          // exactly le=0.0025
	h.Observe(10 * time.Second)                 // exactly the last finite bucket
	h.Observe(10*time.Second + time.Nanosecond) // past every bound: +Inf
	r.Histogram("edge_latency_seconds", L("role", "core")).Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Inclusive edges and cumulative counts.
	for _, want := range []string{
		`edge_latency_seconds_bucket{role="edge",le="0.001"} 1`,
		`edge_latency_seconds_bucket{role="edge",le="0.0025"} 2`,
		`edge_latency_seconds_bucket{role="edge",le="0.005"} 2`,
		`edge_latency_seconds_bucket{role="edge",le="10"} 3`,
		`edge_latency_seconds_bucket{role="edge",le="+Inf"} 4`,
		`edge_latency_seconds_count{role="edge"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must appear in ascending-le order — lexical sorting of le
	// strings would put +Inf first and 1e-06 last.
	order := []string{
		`{role="edge",le="1e-06"}`,
		`{role="edge",le="0.001"}`,
		`{role="edge",le="10"}`,
		`{role="edge",le="+Inf"}`,
	}
	prev := -1
	for _, marker := range order {
		i := strings.Index(out, marker)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", marker, out)
		}
		if i < prev {
			t.Fatalf("bucket %q out of ascending-le order:\n%s", marker, out)
		}
		prev = i
	}
	// Cross-series ordering: the whole role="core" block sorts before
	// role="edge".
	if strings.Index(out, `{role="core",le="+Inf"}`) > strings.Index(out, `{role="edge",le="1e-06"}`) {
		t.Errorf("series not sorted by label set:\n%s", out)
	}

	// Quantiles on exact bucket edges return the edge, not the next bucket.
	if got := h.Quantile(0.25); got != time.Millisecond {
		t.Errorf("Quantile(0.25) = %v, want 1ms", got)
	}
	if got := h.Quantile(0.5); got != 2500*time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want 2.5ms", got)
	}
	if got := h.Quantile(0.75); got != 10*time.Second {
		t.Errorf("Quantile(0.75) = %v, want 10s", got)
	}
	// The +Inf bucket answers with the observed maximum, not infinity.
	if got := h.Quantile(1); got != 10*time.Second+time.Nanosecond {
		t.Errorf("Quantile(1) = %v, want the exact max", got)
	}
	if got := h.Max(); got != 10*time.Second+time.Nanosecond {
		t.Errorf("Max() = %v", got)
	}
	// A histogram whose observations all sit on one edge answers that edge
	// for every quantile.
	edge := r.Histogram("one_edge_seconds")
	for i := 0; i < 3; i++ {
		edge.Observe(time.Millisecond)
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := edge.Quantile(q); got != time.Millisecond {
			t.Errorf("one-edge Quantile(%v) = %v, want 1ms", q, got)
		}
	}
	var nilHist *Histogram
	if nilHist.Quantile(0.5) != 0 || nilHist.Max() != 0 {
		t.Error("nil histogram quantile/max not inert")
	}
}

func TestChromeTraceExport(t *testing.T) {
	env := sim.NewEnv()
	o := New(env)
	o.Tracer.NamePU(0, "PU 0 (host)")
	o.Tracer.NamePU(1, "PU 1 (bf1-0)")
	env.Spawn("driver", func(p *sim.Proc) {
		root := o.Span(nil, "invoke", 0)
		p.Sleep(time.Millisecond)
		c := o.Span(root, "handler", 1)
		c.SetAttr("fn", "matmul")
		p.Sleep(2 * time.Millisecond)
		c.Finish()
		root.Finish()
	})
	env.Run()

	var buf bytes.Buffer
	if err := o.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 4 { // 2 metadata + 2 spans
		t.Fatalf("events = %d, want 4", len(file.TraceEvents))
	}
	meta := file.TraceEvents[0]
	if meta.Ph != "M" || meta.Args["name"] != "PU 0 (host)" {
		t.Errorf("metadata event = %+v", meta)
	}
	var handler *struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Tid  int               `json:"tid"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	}
	for i := range file.TraceEvents {
		if file.TraceEvents[i].Name == "handler" {
			handler = &file.TraceEvents[i]
		}
	}
	if handler == nil {
		t.Fatal("no handler event")
	}
	if handler.Ph != "X" || handler.Tid != 1+chromeTrackOffset {
		t.Errorf("handler event = %+v", handler)
	}
	if handler.Ts != 1000 || handler.Dur != 2000 { // microseconds
		t.Errorf("handler ts/dur = %v/%v, want 1000/2000", handler.Ts, handler.Dur)
	}
	if handler.Args["fn"] != "matmul" || handler.Args["parent"] != "1" {
		t.Errorf("handler args = %v", handler.Args)
	}
}
