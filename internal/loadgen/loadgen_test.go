package loadgen

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func driveLoad(t *testing.T, cfg Config, opts molecule.Options) *Stats {
	t.Helper()
	var stats *Stats
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	env.Spawn("driver", func(p *sim.Proc) {
		rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range cfg.Functions {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}
		stats, err = Run(p, rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d procs blocked", env.LiveProcs())
	}
	return stats
}

func baseCfg() Config {
	return Config{
		Seed:       42,
		Functions:  []string{"matmul", "pyaes", "chameleon", "image-resize"},
		ZipfS:      1.2,
		RatePerSec: 50,
		Duration:   10 * time.Second,
	}
}

func TestRunProducesRequests(t *testing.T) {
	stats := driveLoad(t, baseCfg(), molecule.DefaultOptions())
	// Poisson(50/s) over 10s → ~500 requests.
	if stats.Requests < 350 || stats.Requests > 650 {
		t.Errorf("requests = %d, want ~500", stats.Requests)
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d", stats.Errors)
	}
	if stats.Latency.Count() != stats.Requests {
		t.Errorf("latency samples %d != requests %d", stats.Latency.Count(), stats.Requests)
	}
	if stats.ColdStarts == 0 || stats.ColdStarts == stats.Requests {
		t.Errorf("cold starts = %d of %d — expected a mix", stats.ColdStarts, stats.Requests)
	}
	total := 0
	for _, n := range stats.PerFunc {
		total += n
	}
	if total != stats.Requests {
		t.Error("per-function counts do not sum to total")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := driveLoad(t, baseCfg(), molecule.DefaultOptions())
	b := driveLoad(t, baseCfg(), molecule.DefaultOptions())
	if a.Requests != b.Requests || a.ColdStarts != b.ColdStarts {
		t.Errorf("same seed diverged: %d/%d vs %d/%d requests/cold",
			a.Requests, a.ColdStarts, b.Requests, b.ColdStarts)
	}
	if a.Latency.Avg() != b.Latency.Avg() {
		t.Errorf("same seed different avg latency: %v vs %v", a.Latency.Avg(), b.Latency.Avg())
	}
	c := baseCfg()
	c.Seed = 43
	other := driveLoad(t, c, molecule.DefaultOptions())
	if other.Requests == a.Requests && other.ColdStarts == a.ColdStarts &&
		other.Latency.Avg() == a.Latency.Avg() {
		t.Error("different seeds produced identical runs")
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	stats := driveLoad(t, baseCfg(), molecule.DefaultOptions())
	// The head function must dominate under s=1.2 skew.
	max, sum := 0, 0
	for _, n := range stats.PerFunc {
		if n > max {
			max = n
		}
		sum += n
	}
	if float64(max)/float64(sum) < 0.4 {
		t.Errorf("head function got %.0f%% of traffic, want >40%% under Zipf", 100*float64(max)/float64(sum))
	}
}

// TestKeepAliveCapacityControlsColdRate is the keep-alive ablation: a
// larger warm cache must produce a lower cold-start rate.
func TestKeepAliveCapacityControlsColdRate(t *testing.T) {
	rate := func(capacity int) float64 {
		opts := molecule.DefaultOptions()
		opts.KeepWarmPerPU = capacity
		return driveLoad(t, baseCfg(), opts).ColdRate()
	}
	tiny := rate(1)
	big := rate(64)
	if tiny <= big {
		t.Errorf("cold rate with cache=1 (%.2f) not above cache=64 (%.2f)", tiny, big)
	}
	if big > 0.2 {
		t.Errorf("cold rate %.2f with a large cache — keep-alive not working", big)
	}
}

func TestUniformWhenNoSkew(t *testing.T) {
	cfg := baseCfg()
	cfg.ZipfS = 0
	stats := driveLoad(t, cfg, molecule.DefaultOptions())
	for fn, n := range stats.PerFunc {
		frac := float64(n) / float64(stats.Requests)
		if frac < 0.1 || frac > 0.45 {
			t.Errorf("function %s got %.0f%% under uniform popularity", fn, frac*100)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	env.Spawn("driver", func(p *sim.Proc) {
		rt, _ := molecule.New(p, m, workloads.NewRegistry(), molecule.DefaultOptions())
		if _, err := Run(p, rt, Config{}); err == nil {
			t.Error("empty config accepted")
		}
		if _, err := Run(p, rt, Config{Functions: []string{"matmul"}, RatePerSec: 1, Duration: time.Second}); err == nil {
			t.Error("undeployed function accepted")
		}
		rt.Deploy(p, "matmul")
		if _, err := Run(p, rt, Config{Functions: []string{"matmul"}, RatePerSec: 0, Duration: time.Second}); err == nil {
			t.Error("zero rate accepted")
		}
	})
	env.Run()
}

func TestPoissonGap(t *testing.T) {
	if PoissonGap(10) != 100*time.Millisecond {
		t.Errorf("gap = %v, want 100ms", PoissonGap(10))
	}
}

func TestChainMixInStream(t *testing.T) {
	cfg := baseCfg()
	cfg.Chains = [][]string{{"mr-splitter", "mr-mapper", "mr-reducer"}}
	cfg.ChainFraction = 0.3
	var stats *Stats
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	env.Spawn("driver", func(p *sim.Proc) {
		rt, err := molecule.New(p, m, workloads.NewRegistry(), molecule.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fns := append(append([]string{}, cfg.Functions...), cfg.Chains[0]...)
		for _, fn := range fns {
			if err := rt.Deploy(p, fn); err != nil {
				t.Fatal(err)
			}
		}
		stats, err = Run(p, rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d procs", env.LiveProcs())
	}
	if stats.Chains == 0 {
		t.Fatal("no chain requests in the mix")
	}
	frac := float64(stats.Chains) / float64(stats.Requests)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("chain fraction = %.2f, want ~0.3", frac)
	}
	if stats.ChainLatency.Count() != stats.Chains-stats.Errors {
		t.Errorf("chain latencies %d != chains %d", stats.ChainLatency.Count(), stats.Chains)
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d", stats.Errors)
	}
	// Chains cost more than single invokes on average.
	if stats.ChainLatency.Avg() <= 0 {
		t.Error("no chain latency recorded")
	}
}
