package hw

import (
	"math"
	"testing"
	"time"

	"repro/internal/params"
	"repro/internal/sim"
)

func testMachine(t *testing.T, cfg Config) (*sim.Env, *Machine) {
	t.Helper()
	env := sim.NewEnv()
	return env, Build(env, cfg)
}

func TestBuildTopology(t *testing.T) {
	_, m := testMachine(t, Config{DPUs: 2, FPGAs: 1, GPUs: 1})
	if got := len(m.PUs()); got != 5 {
		t.Fatalf("PUs = %d, want 5 (host + 2 DPU + FPGA + GPU)", got)
	}
	if m.PU(0).Kind != CPU {
		t.Error("PU 0 is not the host CPU")
	}
	if got := len(m.PUsOfKind(DPU)); got != 2 {
		t.Errorf("DPUs = %d, want 2", got)
	}
	l, ok := m.LinkBetween(0, 1)
	if !ok || l.Kind != LinkRDMA {
		t.Errorf("host-DPU link = %v,%v, want RDMA", l.Kind, ok)
	}
	fpga := m.PUsOfKind(FPGA)[0]
	l, ok = m.LinkBetween(0, fpga.ID)
	if !ok || l.Kind != LinkDMA {
		t.Errorf("host-FPGA link = %v,%v, want DMA", l.Kind, ok)
	}
	if fpga.Device == nil {
		t.Error("FPGA PU has no device model")
	}
	// DPU<->FPGA must be CPU-intercepted: two-hop latency.
	dl, ok := m.LinkBetween(1, fpga.ID)
	if !ok {
		t.Fatal("no DPU-FPGA route")
	}
	if dl.BaseLat != params.RDMABaseLatency+params.DMABaseLatency {
		t.Errorf("DPU-FPGA base latency %v, want two-hop sum %v",
			dl.BaseLat, params.RDMABaseLatency+params.DMABaseLatency)
	}
}

func TestPUOutOfRange(t *testing.T) {
	_, m := testMachine(t, Config{})
	if m.PU(99) != nil || m.PU(-1) != nil {
		t.Error("out-of-range PU lookup did not return nil")
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Kind: LinkRDMA, BaseLat: 10 * time.Microsecond, Bandwith: 1e9}
	if got := l.TransferTime(0); got != 10*time.Microsecond {
		t.Errorf("empty transfer = %v, want base 10us", got)
	}
	// 1e6 bytes at 1e9 B/s = 1ms.
	if got := l.TransferTime(1e6); got != 10*time.Microsecond+time.Millisecond {
		t.Errorf("1MB transfer = %v, want 1.01ms", got)
	}
}

func TestTransferAdvancesClock(t *testing.T) {
	env, m := testMachine(t, Config{DPUs: 1})
	var took sim.Time
	env.Spawn("xfer", func(p *sim.Proc) {
		if _, err := m.Transfer(p, 0, 1, 4096); err != nil {
			t.Error(err)
		}
		took = p.Now()
	})
	env.Run()
	bw := float64(params.RDMABandwidth)
	want := params.RDMABaseLatency + time.Duration(4096/bw*float64(time.Second))
	if time.Duration(took) != want {
		t.Errorf("transfer took %v, want %v", time.Duration(took), want)
	}
}

// TestTransferBatchAmortizesBase pins the vectorized-transfer contract: one
// base latency for the whole batch, every byte still charged, and the same
// error on a missing link.
func TestTransferBatchAmortizesBase(t *testing.T) {
	env, m := testMachine(t, Config{DPUs: 1})
	sizes := []int{4096, 4096, 4096, 4096}
	var batched, single sim.Time
	env.Spawn("xfer", func(p *sim.Proc) {
		start := p.Now()
		if _, err := m.TransferBatch(p, 0, 1, sizes); err != nil {
			t.Error(err)
		}
		batched = p.Now() - start
		start = p.Now()
		for _, n := range sizes {
			if _, err := m.Transfer(p, 0, 1, n); err != nil {
				t.Error(err)
			}
		}
		single = p.Now() - start
		// Empty batches are free and still report the link.
		start = p.Now()
		if l, err := m.TransferBatch(p, 0, 1, nil); err != nil || l.Kind != LinkRDMA {
			t.Errorf("empty batch: link %v err %v", l.Kind, err)
		}
		if p.Now() != start {
			t.Error("empty batch charged time")
		}
	})
	env.Run()
	l := Link{Kind: LinkRDMA, BaseLat: params.RDMABaseLatency, Bandwith: params.RDMABandwidth}
	if want := l.TransferTime(4 * 4096); time.Duration(batched) != want {
		t.Errorf("batched transfer took %v, want %v", time.Duration(batched), want)
	}
	if want := 4 * l.TransferTime(4096); time.Duration(single) != want {
		t.Errorf("per-message transfers took %v, want %v", time.Duration(single), want)
	}
	if batched >= single {
		t.Errorf("batching did not amortize: %v >= %v", batched, single)
	}

	env2 := sim.NewEnv()
	m2 := NewMachine(env2)
	m2.AddPU(&PU{Kind: CPU})
	m2.AddPU(&PU{Kind: DPU})
	env2.Spawn("x", func(p *sim.Proc) {
		if _, err := m2.TransferBatch(p, 0, 1, []int{1}); err == nil {
			t.Error("batch over missing link succeeded")
		}
	})
	env2.Run()
}

func TestTransferNoLink(t *testing.T) {
	env := sim.NewEnv()
	m := NewMachine(env)
	m.AddPU(&PU{Kind: CPU})
	m.AddPU(&PU{Kind: DPU})
	env.Spawn("x", func(p *sim.Proc) {
		if _, err := m.Transfer(p, 0, 1, 1); err == nil {
			t.Error("transfer over missing link succeeded")
		}
	})
	env.Run()
}

func TestComputeTimeSpeedFactor(t *testing.T) {
	cpu := &PU{Kind: CPU, Speed: 1.0}
	bf1 := &PU{Kind: DPU, Speed: params.BF1SpeedFactor}
	base := 100 * time.Millisecond
	if cpu.ComputeTime(base) != base {
		t.Error("CPU compute time scaled")
	}
	ratio := float64(bf1.ComputeTime(base)) / float64(base)
	if ratio < 4 || ratio > 7 {
		t.Errorf("BF-1 slowdown %.2fx outside the paper's 4-7x band", ratio)
	}
	zero := &PU{Speed: 0}
	if zero.ComputeTime(base) != base {
		t.Error("zero speed factor did not default to 1x")
	}
}

func TestNetworkTransferDPUPenalty(t *testing.T) {
	_, m := testMachine(t, Config{DPUs: 1})
	cpu := m.NetworkTransferTime(0, 0, 100)
	mixed := m.NetworkTransferTime(0, 1, 100)
	dpu := m.NetworkTransferTime(1, 1, 100)
	if !(cpu < mixed && mixed < dpu) {
		t.Errorf("network latency ordering cpu=%v mixed=%v dpu=%v violated", cpu, mixed, dpu)
	}
	ratio := float64(dpu) / float64(cpu)
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("DPU-DPU network penalty %.2fx, want ~%.1fx", ratio, params.NetworkDPUPenalty)
	}
}

func TestPUKindStrings(t *testing.T) {
	if CPU.String() != "CPU" || FPGA.String() != "FPGA" || PUKind(9).String() == "" {
		t.Error("PUKind String broken")
	}
	if LinkRDMA.String() != "rdma" || LinkKind(9).String() == "" {
		t.Error("LinkKind String broken")
	}
	if !CPU.GeneralPurpose() || !DPU.GeneralPurpose() || FPGA.GeneralPurpose() {
		t.Error("GeneralPurpose classification wrong")
	}
}

// --- FPGA device -----------------------------------------------------------

func TestBuildImageResources(t *testing.T) {
	img, err := BuildImage("v1", []string{"madd", "mmult", "mscale"})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Has("madd") || img.Has("nope") {
		t.Error("image membership wrong")
	}
	want := WrapperBase().Add(PerInstance()).Add(PerInstance()).Add(PerInstance())
	if img.Resources != want {
		t.Errorf("resources = %+v, want %+v", img.Resources, want)
	}
}

func TestBuildImageOverflow(t *testing.T) {
	many := make([]string, 300) // 300 instances exceed BRAM budget
	for i := range many {
		many[i] = "k"
	}
	if _, err := BuildImage("huge", many); err == nil {
		t.Error("oversized image synthesized successfully")
	}
}

// TestTable4Utilization verifies the Table 4 reproduction: a 12-instance
// wrapper takes ~10.1% LUT, ~8.3% REG, ~22.5% BRAM, ~11.5% DSP of an F1.
func TestTable4Utilization(t *testing.T) {
	kernels := make([]string, 12)
	for i := range kernels {
		kernels[i] = "k"
	}
	img, err := BuildImage("tab4", kernels)
	if err != nil {
		t.Fatal(err)
	}
	util := img.Resources.Utilization(F1Resources())
	want := [4]float64{0.101, 0.083, 0.225, 0.115}
	for i, w := range want {
		if math.Abs(util[i]-w) > 0.01 {
			t.Errorf("resource %d utilization = %.3f, want ~%.3f", i, util[i], w)
		}
	}
}

func TestProgramEraseTimings(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 2, 2)
	img, _ := BuildImage("a", []string{"k1"})
	img2, _ := BuildImage("b", []string{"k2"})
	var coldT, reprogT sim.Time
	env.Spawn("prog", func(p *sim.Proc) {
		start := p.Now()
		dev.Program(p, img, true) // device starts erased: no erase needed
		coldT = sim.Time(p.Now().Sub(start))

		start = p.Now()
		dev.Program(p, img2, true) // baseline path: erase + load
		reprogT = sim.Time(p.Now().Sub(start))
	})
	env.Run()
	if time.Duration(coldT) != params.FPGAImageLoadTime {
		t.Errorf("first program took %v, want load time %v", time.Duration(coldT), params.FPGAImageLoadTime)
	}
	if time.Duration(reprogT) != params.FPGAEraseTime+params.FPGAImageLoadTime {
		t.Errorf("erase+program took %v, want %v", time.Duration(reprogT), params.FPGAEraseTime+params.FPGAImageLoadTime)
	}
	if progs, erases := dev.ProgramCounts(); progs != 2 || erases != 1 {
		t.Errorf("counts = (%d,%d), want (2,1)", progs, erases)
	}
}

func TestNoEraseReprogramSkipsEraseTime(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 2, 2)
	img, _ := BuildImage("a", []string{"k1"})
	img2, _ := BuildImage("b", []string{"k2"})
	var d time.Duration
	env.Spawn("prog", func(p *sim.Proc) {
		dev.Program(p, img, false)
		start := p.Now()
		dev.Program(p, img2, false) // Molecule's no-erase delete/replace
		d = p.Now().Sub(start)
	})
	env.Run()
	if d != params.FPGAImageLoadTime {
		t.Errorf("no-erase reprogram took %v, want %v", d, params.FPGAImageLoadTime)
	}
}

func TestExecuteRequiresProgrammedKernel(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 1, 1)
	img, _ := BuildImage("a", []string{"k1"})
	env.Spawn("x", func(p *sim.Proc) {
		if err := dev.Execute(p, "k1", time.Millisecond); err == nil {
			t.Error("execute on blank device succeeded")
		}
		dev.Program(p, img, false)
		if err := dev.Execute(p, "k1", time.Millisecond); err != nil {
			t.Errorf("execute failed: %v", err)
		}
		if err := dev.Execute(p, "other", time.Millisecond); err == nil {
			t.Error("execute of unprogrammed kernel succeeded")
		}
	})
	env.Run()
}

func TestRegionsLimitConcurrency(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 4, 2) // 2 regions
	img, _ := BuildImage("a", []string{"k"})
	var last sim.Time
	env.Spawn("setup", func(p *sim.Proc) {
		dev.Program(p, img, false)
		for i := 0; i < 4; i++ {
			p.Env().Spawn("exec", func(p *sim.Proc) {
				if err := dev.Execute(p, "k", 10*time.Millisecond); err != nil {
					t.Error(err)
				}
				last = p.Now()
			})
		}
	})
	env.Run()
	// 4 executions, 2 regions → 2 waves of 10ms after programming.
	want := sim.Time(params.FPGAImageLoadTime + 20*time.Millisecond)
	if last != want {
		t.Errorf("last execution finished at %v, want %v", last, want)
	}
}

func TestDRAMBankAssignment(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 2, 1)
	b1, err := dev.AssignBank("f1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := dev.AssignBank("f1")
	if err != nil || again != b1 {
		t.Error("re-assign did not return the same bank")
	}
	if _, err := dev.AssignBank("f2"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AssignBank("f3"); err == nil {
		t.Error("assignment beyond bank count succeeded")
	}
	dev.ReleaseBank("f1")
	if _, err := dev.AssignBank("f3"); err != nil {
		t.Error("bank not reusable after release")
	}
	if dev.BankFor("f2") == nil || dev.BankFor("f1") != nil {
		t.Error("BankFor lookup wrong")
	}
}

func TestDataRetentionAcrossReprogram(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 2, 1)
	imgA, _ := BuildImage("a", []string{"prod"})
	imgB, _ := BuildImage("b", []string{"prod", "cons"})
	env.Spawn("x", func(p *sim.Proc) {
		// Without retention: data lost on reprogram.
		dev.Program(p, imgA, false)
		bank, _ := dev.AssignBank("prod")
		bank.Data = []byte("payload")
		bank.Valid = true
		dev.Program(p, imgB, false)
		if bank.Valid {
			t.Error("bank survived reprogram without retention")
		}

		// With retention: data persists (the §4.3 zero-copy optimization).
		dev.SetRetention(true)
		bank, _ = dev.AssignBank("prod")
		bank.Data = []byte("payload")
		bank.Valid = true
		dev.Program(p, imgA, false)
		if !bank.Valid || string(bank.Data) != "payload" {
			t.Error("bank did not retain data with retention enabled")
		}
	})
	env.Run()
}

func TestBankOwnershipFollowsImage(t *testing.T) {
	env := sim.NewEnv()
	dev := NewFPGADevice(env, 2, 1)
	dev.SetRetention(true)
	imgA, _ := BuildImage("a", []string{"k1"})
	imgB, _ := BuildImage("b", []string{"k2"}) // k1 evicted
	env.Spawn("x", func(p *sim.Proc) {
		dev.Program(p, imgA, false)
		dev.AssignBank("k1")
		dev.Program(p, imgB, false)
		if dev.BankFor("k1") != nil {
			t.Error("bank still owned by evicted kernel")
		}
	})
	env.Run()
}

// TestLinkContentionSerializesBandwidth: two concurrent bulk DMA transfers
// in the same direction share the PCIe medium, so the second finishes
// roughly one bandwidth-phase later; small control messages (base latency
// only) are unaffected.
func TestLinkContentionSerializesBandwidth(t *testing.T) {
	env, m := testMachine(t, Config{FPGAs: 1})
	fpga := m.PUsOfKind(FPGA)[0].ID
	const size = 80 << 20 // 80MB: 10ms of bandwidth at 8GB/s
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("xfer", func(p *sim.Proc) {
			if _, err := m.Transfer(p, 0, fpga, size); err != nil {
				t.Error(err)
			}
			finish[i] = p.Now()
		})
	}
	env.Run()
	l, _ := m.LinkBetween(0, fpga)
	one := l.TransferTime(size)
	if time.Duration(finish[0]) != one {
		t.Errorf("first transfer took %v, want %v", time.Duration(finish[0]), one)
	}
	want := one + (one - l.BaseLat) // second waits for the first's bandwidth phase
	if time.Duration(finish[1]) != want {
		t.Errorf("second transfer finished at %v, want %v (serialized)", time.Duration(finish[1]), want)
	}

	// Opposite directions do not contend (full duplex).
	env2, m2 := testMachine(t, Config{FPGAs: 1})
	fp2 := m2.PUsOfKind(FPGA)[0].ID
	var aDone, bDone sim.Time
	env2.Spawn("fwd", func(p *sim.Proc) {
		m2.Transfer(p, 0, fp2, size)
		aDone = p.Now()
	})
	env2.Spawn("rev", func(p *sim.Proc) {
		m2.Transfer(p, fp2, 0, size)
		bDone = p.Now()
	})
	env2.Run()
	if aDone != bDone || time.Duration(aDone) != one {
		t.Errorf("duplex transfers = %v/%v, want both %v", time.Duration(aDone), time.Duration(bDone), one)
	}
}

func TestDescribe(t *testing.T) {
	_, m := testMachine(t, Config{DPUs: 1, FPGAs: 1})
	rows := m.Describe()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][1] != "CPU" || rows[1][1] != "DPU" || rows[2][1] != "FPGA" {
		t.Errorf("kinds wrong: %v", rows)
	}
	if rows[1][5] == "local" || rows[0][5] != "local" {
		t.Errorf("links wrong: %v", rows)
	}
}
