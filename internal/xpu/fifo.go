package xpu

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sim"
)

// nipcSeries holds the cached counter handles for one directed link's nIPC
// traffic, built once per link instead of fmt.Sprintf-ing a label (and
// probing the registry) per message.
type nipcSeries struct {
	msgs  Counter
	bytes Counter
}

// linkSeries returns (creating on first use) the cached series for the
// directed link src->dst. Callers check s.metrics != nil first.
func (s *Shim) linkSeries(src, dst hw.PUID) *nipcSeries {
	k := [2]hw.PUID{src, dst}
	ls := s.nipcLS[k]
	if ls == nil {
		link := fmt.Sprintf("%d->%d", src, dst)
		ls = &nipcSeries{
			msgs:  s.metrics.Counter("xpu_nipc_messages_total", "link", link),
			bytes: s.metrics.Counter("xpu_nipc_bytes_total", "link", link),
		}
		s.nipcLS[k] = ls
	}
	return ls
}

// recordNIPC counts n cross-PU FIFO payloads totalling bytes on the directed
// link src->dst.
//
//molecule:hotpath
func (s *Shim) recordNIPC(src, dst hw.PUID, n, bytes int) {
	if s.metrics == nil {
		return
	}
	ls := s.linkSeries(src, dst)
	ls.msgs.Add(int64(n))
	ls.bytes.Add(int64(bytes))
}

// recordDepth tracks a FIFO's queue depth after a send or receive. The
// gauge handle materializes on first use with a sink attached, matching the
// lazy series creation of the registry itself.
//
//molecule:hotpath
func (s *Shim) recordDepth(f *XPUFIFO) {
	m := s.metrics
	if m == nil {
		return
	}
	if f.depth == nil {
		f.depth = m.Gauge("xpu_fifo_depth", "fifo", f.UUID)
	}
	f.depth.Set(float64(f.ch.Len()))
}

// XPUFIFO is the neighbor-IPC object: a FIFO whose endpoints may live on
// different PUs. The queue is hosted on the creating PU; writes from another
// PU traverse the direct interconnect (RDMA for DPUs, DMA for accelerators),
// and remote reads pull the payload across the same link. This gives
// functions the exact FIFO interface they use locally (§3.3) while the shim
// handles placement.
type XPUFIFO struct {
	UUID  string
	Home  hw.PUID // PU hosting the queue
	Owner XPID

	// homeHost is the physical PU holding the queue's memory: the home
	// node's host PU. For FIFOs homed on an accelerator's virtual node the
	// queue lives in the neighbor host's memory, so that is where transfers
	// terminate. A FIFO's home never changes, so this is resolved once at
	// FIFOInit instead of a nodes-map lookup per Write/Read.
	homeHost hw.PUID

	depth  Gauge // cached xpu_fifo_depth handle, built on first record
	ch     *sim.Chan[localos.Message]
	closed bool
}

// Len reports queued messages.
func (f *XPUFIFO) Len() int { return f.ch.Len() }

// Closed reports whether the FIFO has been closed.
func (f *XPUFIFO) Closed() bool { return f.closed }

// FD is a process-local descriptor for a connected XPU-FIFO.
type FD struct {
	fifo *XPUFIFO
	node *Node // the node through which the holder accesses the FIFO
	pid  XPID
	obj  ObjID // the FIFO's capability object, built once

	// Capability-check cache: the shim's replicated capability state changes
	// only through grant/revoke, each of which bumps Shim.capGen. Between
	// mutations the descriptor's effective permission is stable, so the hot
	// path replays the cached bitmask instead of two map lookups per message.
	// The check itself stays local either way (§5); this only removes the
	// redundant lookup work, not any modeled synchronization.
	capPerm Perm
	capGen  uint64
}

// UUID returns the global UUID of the underlying FIFO.
func (fd *FD) UUID() string { return fd.fifo.UUID }

// hasCap is the descriptor-cached equivalent of Shim.HasCap for the FIFO's
// own capability object.
func (fd *FD) hasCap(perm Perm) bool {
	s := fd.node.Shim
	if fd.capGen != s.capGen {
		fd.capPerm = s.caps[fd.pid][fd.obj]
		fd.capGen = s.capGen
	}
	return fd.capPerm.Has(perm)
}

// FIFOInit implements xfifo_init: create an XPU-FIFO with the given global
// UUID, owned by caller, hosted on this node's PU. Global UUIDs must be
// unique machine-wide, so creation synchronizes immediately with all other
// nodes (§5 "Immediate synchronization").
func (n *Node) FIFOInit(p *sim.Proc, caller XPID, uuid string, capacity int) (*FD, error) {
	if err := n.failfast(); err != nil {
		return nil, err
	}
	n.xcall(p)
	if _, exists := n.Shim.fifos[uuid]; exists {
		return nil, fmt.Errorf("xpu: FIFO UUID %q already in use", uuid)
	}
	f := &XPUFIFO{
		UUID:     uuid,
		Home:     n.PU.ID,
		Owner:    caller,
		homeHost: n.Host.ID,
		ch:       sim.NewChan[localos.Message](n.Shim.Env, capacity),
	}
	n.Shim.fifos[uuid] = f
	obj := ObjID{Kind: "fifo", UUID: uuid}
	n.Shim.grantLocal(caller, obj, PermRead|PermWrite|PermOwner)
	n.broadcast(p) // UUID uniqueness + owner capability propagate eagerly
	return &FD{fifo: f, node: n, pid: caller, obj: obj}, nil
}

// FIFOConnect implements xfifo_connect: attach to an existing XPU-FIFO by
// global UUID. The caller must hold read or write permission.
func (n *Node) FIFOConnect(p *sim.Proc, caller XPID, uuid string) (*FD, error) {
	if err := n.failfast(); err != nil {
		return nil, err
	}
	n.xcall(p)
	f, ok := n.Shim.fifos[uuid]
	if !ok || f.closed {
		return nil, fmt.Errorf("xpu: no FIFO %q", uuid)
	}
	obj := ObjID{Kind: "fifo", UUID: uuid}
	if !n.Shim.HasCap(caller, obj, PermRead) && !n.Shim.HasCap(caller, obj, PermWrite) {
		return nil, fmt.Errorf("xpu: %v lacks permission on FIFO %q", caller, uuid)
	}
	return &FD{fifo: f, node: n, pid: caller, obj: obj}, nil
}

// Write implements xfifo_write. The caller must hold write permission.
// When the writer's hosting PU is not the PU hosting the FIFO's queue, the
// payload crosses the interconnect link between those two physical PUs —
// the same PU the remote-path guard tests, so a virtual node whose FIFO
// lives on its own host charges nothing, and one whose host differs from
// its logical PU charges the actual host-to-home link.
//
//molecule:hotpath
func (fd *FD) Write(p *sim.Proc, m localos.Message) error {
	n := fd.node
	if err := n.failfast(); err != nil {
		return err
	}
	if n.Shim.down(fd.fifo.Home) {
		return fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	n.xcall(p)
	if !fd.hasCap(PermWrite) {
		return fmt.Errorf("xpu: %v lacks write permission on FIFO %q", fd.pid, fd.fifo.UUID)
	}
	if fd.fifo.closed {
		return fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
	}
	home := fd.fifo.homeHost
	if n.Host.ID != home {
		if _, err := n.Shim.Machine.Transfer(p, n.Host.ID, home, m.Size()); err != nil {
			return err
		}
		n.Shim.recordNIPC(n.Host.ID, home, 1, m.Size())
	}
	if !fd.fifo.ch.SendOrClosed(p, m) {
		return fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
	}
	n.Shim.recordDepth(fd.fifo)
	return nil
}

// Read implements xfifo_read, blocking until a message is available. The
// caller must hold read permission. Readers hosted away from the queue's
// physical home pull the payload across the interconnect.
//
//molecule:hotpath
func (fd *FD) Read(p *sim.Proc) (localos.Message, error) {
	n := fd.node
	if err := n.failfast(); err != nil {
		return localos.Message{}, err
	}
	if n.Shim.down(fd.fifo.Home) {
		return localos.Message{}, fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	n.xcall(p)
	if !fd.hasCap(PermRead) {
		return localos.Message{}, fmt.Errorf("xpu: %v lacks read permission on FIFO %q", fd.pid, fd.fifo.UUID)
	}
	m, ok := fd.fifo.ch.Recv(p)
	if !ok {
		return localos.Message{}, fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
	}
	// The Recv may have blocked for arbitrary virtual time; re-run the
	// fail-fast checks so a reader whose node (or the queue's home) crashed
	// while it was parked surfaces ErrNodeDown instead of a stale read.
	if err := n.failfast(); err != nil {
		return localos.Message{}, err
	}
	if n.Shim.down(fd.fifo.Home) {
		return localos.Message{}, fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	n.Shim.recordDepth(fd.fifo)
	home := fd.fifo.homeHost
	if n.Host.ID != home {
		if _, err := n.Shim.Machine.Transfer(p, home, n.Host.ID, m.Size()); err != nil {
			return localos.Message{}, err
		}
		n.Shim.recordNIPC(home, n.Host.ID, 1, m.Size())
	}
	return m, nil
}

// WriteBatch implements vectorized xfifo_write: it enqueues msgs in order,
// paying the user↔shim XPUcall and the capability check once, and — when the
// writer is remote from the queue's home — crossing the interconnect as one
// batched transfer whose base latency is amortized over the whole vector
// (hw.TransferBatch). Simulated time therefore differs from len(msgs)
// individual Writes by design; per-message Write is untouched and the
// default, which is why the golden report only moves when a caller opts in.
func (fd *FD) WriteBatch(p *sim.Proc, msgs []localos.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	n := fd.node
	if err := n.failfast(); err != nil {
		return err
	}
	if n.Shim.down(fd.fifo.Home) {
		return fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	n.xcall(p)
	if !fd.hasCap(PermWrite) {
		return fmt.Errorf("xpu: %v lacks write permission on FIFO %q", fd.pid, fd.fifo.UUID)
	}
	if fd.fifo.closed {
		return fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
	}
	home := fd.fifo.homeHost
	if n.Host.ID != home {
		sizes := make([]int, len(msgs))
		total := 0
		for i := range msgs {
			sizes[i] = msgs[i].Size()
			total += sizes[i]
		}
		if _, err := n.Shim.Machine.TransferBatch(p, n.Host.ID, home, sizes); err != nil {
			return err
		}
		n.Shim.recordNIPC(n.Host.ID, home, len(msgs), total)
	}
	for i := range msgs {
		if !fd.fifo.ch.SendOrClosed(p, msgs[i]) {
			return fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
		}
	}
	n.Shim.recordDepth(fd.fifo)
	return nil
}

// ReadBatch implements vectorized xfifo_read: it blocks for the first
// message, then drains whatever else is already queued (up to max), paying
// the XPUcall once and pulling the vector across the interconnect as one
// batched transfer. A closed FIFO with no queued messages returns an error;
// a crash while parked surfaces ErrNodeDown exactly like Read.
func (fd *FD) ReadBatch(p *sim.Proc, max int) ([]localos.Message, error) {
	if max < 1 {
		max = 1
	}
	n := fd.node
	if err := n.failfast(); err != nil {
		return nil, err
	}
	if n.Shim.down(fd.fifo.Home) {
		return nil, fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	n.xcall(p)
	if !fd.hasCap(PermRead) {
		return nil, fmt.Errorf("xpu: %v lacks read permission on FIFO %q", fd.pid, fd.fifo.UUID)
	}
	first, ok := fd.fifo.ch.Recv(p)
	if !ok {
		return nil, fmt.Errorf("xpu: FIFO %q closed", fd.fifo.UUID)
	}
	if err := n.failfast(); err != nil {
		return nil, err
	}
	if n.Shim.down(fd.fifo.Home) {
		return nil, fmt.Errorf("xpu: FIFO %q home PU %d: %w", fd.fifo.UUID, fd.fifo.Home, ErrNodeDown)
	}
	out := make([]localos.Message, 1, max)
	out[0] = first
	for len(out) < max {
		m, _, got := fd.fifo.ch.TryRecv()
		if !got {
			break
		}
		out = append(out, m)
	}
	n.Shim.recordDepth(fd.fifo)
	home := fd.fifo.homeHost
	if n.Host.ID != home {
		sizes := make([]int, len(out))
		total := 0
		for i := range out {
			sizes[i] = out[i].Size()
			total += sizes[i]
		}
		if _, err := n.Shim.Machine.TransferBatch(p, home, n.Host.ID, sizes); err != nil {
			return nil, err
		}
		n.Shim.recordNIPC(home, n.Host.ID, len(out), total)
	}
	return out, nil
}

// Close implements xfifo_close: the owner tears the FIFO down; the UUID
// reclamation propagates lazily to other nodes — stale knowledge of a dead
// UUID is harmless (§5 "Lazy synchronization").
func (fd *FD) Close(p *sim.Proc) error {
	n := fd.node
	if err := n.failfast(); err != nil {
		return err
	}
	n.xcall(p)
	obj := ObjID{Kind: "fifo", UUID: fd.fifo.UUID}
	if !n.Shim.HasCap(fd.pid, obj, PermOwner) {
		// Non-owners just drop their descriptor.
		return nil
	}
	if !fd.fifo.closed {
		fd.fifo.closed = true
		fd.fifo.ch.Close()
		delete(n.Shim.fifos, fd.fifo.UUID)
		n.lazySync(p)
	}
	return nil
}

// SpawnBody is the program run by an xSpawn'd process: it executes as a
// simulation process on the target PU with its OS-level process handle.
type SpawnBody func(p *sim.Proc, node *Node, self *localos.Process)

// XSpawn implements xSpawn: start a new program on another PU (Table 2).
// The request travels over the interconnect to the target node, whose OS
// spawns the process; capv capabilities are granted to the child explicitly
// (no implicit permission inheritance, §3.4). It returns the child's
// xpu_pid.
func (n *Node) XSpawn(p *sim.Proc, targetPU hw.PUID, name string, capv map[ObjID]Perm, body SpawnBody) (XPID, error) {
	if err := n.failfast(); err != nil {
		return XPID{}, err
	}
	if n.Shim.down(targetPU) {
		return XPID{}, fmt.Errorf("xpu: spawn target PU %d: %w", targetPU, ErrNodeDown)
	}
	n.xcall(p)
	target := n.Shim.Node(targetPU)
	if target == nil {
		return XPID{}, fmt.Errorf("xpu: no shim node on PU %d", targetPU)
	}
	if n.PU.ID != targetPU {
		if _, err := n.Shim.Machine.Transfer(p, n.Host.ID, target.Host.ID, 256); err != nil {
			return XPID{}, err
		}
	}
	child := target.OS.Spawn(p, name)
	x := target.Register(child)
	for obj, perm := range capv {
		n.Shim.grantLocal(x, obj, perm)
	}
	if body != nil {
		n.Shim.Env.Spawn(fmt.Sprintf("%s@pu%d", name, targetPU), func(sp *sim.Proc) {
			body(sp, target, child)
		})
	}
	return x, nil
}
