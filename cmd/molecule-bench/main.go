// Command molecule-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	molecule-bench                # run every experiment
//	molecule-bench -exp fig10c    # run one experiment
//	molecule-bench -list          # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id(s) to run, comma separated (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	md := flag.Bool("md", false, "emit the full report as markdown")
	flag.Parse()

	if *md {
		bench.RunAllMarkdown(os.Stdout)
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		bench.RunAll(os.Stdout)
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows available ids\n", id)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s\n    paper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range e.Run() {
			t.Fprint(os.Stdout)
		}
	}
}
