package cluster

import (
	"repro/internal/hw"
	"repro/internal/sim"
)

// node stands in for per-machine state owned by its own domain.
type node struct {
	Domain int
	inbox  []int64
}

// sendToOwner targets the destination's own state: the closure only touches
// n, and the `to` argument is rooted at n — destination-owned, allowed.
func sendToOwner(ic *hw.Interconnect, p *hw.Proc, n *node, sz int64) {
	ic.Send(p, n.Domain, sz, func() {
		n.inbox = append(n.inbox, sz)
	})
}

// sendValueCopy captures only read-only value copies: allowed.
func sendValueCopy(ic *hw.Interconnect, p *hw.Proc, to int, seq uint64, sink *node) {
	ic.Send(p, to, 1, func() {
		_ = seq
	})
	_ = sink
}

// sendSharedSlice leaks the sender's slice across the domain boundary.
func sendSharedSlice(ic *hw.Interconnect, p *hw.Proc, to int, buf []int64) {
	ic.Send(p, to, int64(len(buf)), func() { // want `crossdomain: closure passed to Interconnect\.Send captures "buf" of type \[\]int64 \(shared mutable state\)`
		buf[0] = 1
	})
}

// sendWrittenValue captures an int by reference and writes it — the write
// aliases the sender's variable even though int is a value type.
func sendWrittenValue(ic *hw.Interconnect, p *hw.Proc, to int) {
	sent := 0
	ic.Send(p, to, 1, func() { // want `crossdomain: closure passed to Interconnect\.Send captures "sent" of type int \(value type, but the closure writes it`
		sent++
	})
	_ = sent
}

// sendAfterLeak: SendAfter is an edge too, and a pointer to a node that is
// NOT the destination is rejected even though some node pointer would be.
func sendAfterLeak(ic *hw.Interconnect, p *hw.Proc, a, b *node) {
	ic.SendAfter(p, a.Domain, 1, 0, func() { // want `crossdomain: closure passed to Interconnect\.SendAfter captures "b"`
		b.inbox = append(b.inbox, 1)
	})
}

// shardedLeak: the raw kernel primitive is covered as well.
func shardedLeak(sh *sim.Sharded, env *sim.Env, to int, counts map[string]int) {
	sh.Send(env, to, 0, func() { // want `crossdomain: closure passed to Sharded\.Send captures "counts"`
		counts["arrived"]++
	})
}

// forwarding: a wrapper passing its own callback parameter through is
// checked at the caller that constructs the literal, not here.
func forwarding(ic *hw.Interconnect, p *hw.Proc, to int, fn func()) {
	ic.Send(p, to, 1, fn)
}

// opaque: a callback the analyzer cannot see into needs a literal or a
// waiver.
func opaque(ic *hw.Interconnect, p *hw.Proc, to int) {
	cb := makeCb()
	ic.Send(p, to, 1, cb) // want `crossdomain: cannot prove the Interconnect\.Send callback is capture-free`
}

func makeCb() func() { return func() {} }

// waived: the request-lifecycle protocol makes the capture safe; the waiver
// records why.
func waived(ic *hw.Interconnect, p *hw.Proc, to int, buf []int64) {
	//lint:owned fixture: delivery happens after the sender stops touching buf
	ic.Send(p, to, 1, func() {
		buf[0] = 2
	})
}

// bareWaiver: a marker without a reason is itself a violation.
func bareWaiver(ic *hw.Interconnect, p *hw.Proc, to int, buf []int64) {
	//lint:owned
	ic.Send(p, to, 1, func() { // want `owned: //lint:owned marker needs a reason`
		buf[0] = 3
	})
}

// A marker on a line with no cross-domain send is stale.
//lint:owned the send this excused is long gone // want `stale //lint:owned waiver: no cross-domain send on this line`
func noSendHere() {}
