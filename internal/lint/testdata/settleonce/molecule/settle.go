package molecule

import "errors"

// Stand-ins mirroring the dispatch/settle surface. The analyzer only runs
// on package repro/internal/molecule, which this fixture type-checks as.

type Proc struct{ ID int }

type Deployment struct{ Name string }

type Result struct{ LatencyUS int64 }

type Runtime struct{ settled int }

func (rt *Runtime) settleResult(d *Deployment, res Result) { rt.settled++ }

var errFlaky = errors.New("flaky")

func run(p *Proc, d *Deployment) (Result, error) { return Result{}, nil }
func flaky() bool                                { return false }

// invokeGood settles exactly once when asked to, never when not.
func (rt *Runtime) invokeGood(p *Proc, d *Deployment, settle bool) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	if settle {
		rt.settleResult(d, res)
	}
	return res, nil
}

// invokeNever returns success without ever settling: the invocation is
// never billed.
func (rt *Runtime) invokeNever(p *Proc, d *Deployment, settle bool) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	return res, nil // want `settleonce: path returns success without settling`
}

// invokeTwice double-bills.
func (rt *Runtime) invokeTwice(p *Proc, d *Deployment, settle bool) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	if settle {
		rt.settleResult(d, res)
	}
	if settle {
		rt.settleResult(d, res) // want `settleonce: path can settle twice`
	}
	return res, nil
}

// invokeAlways ignores the guard: a losing recovery attempt would bill.
func (rt *Runtime) invokeAlways(p *Proc, d *Deployment, settle bool) error {
	res, err := run(p, d)
	if err != nil {
		return err
	}
	rt.settleResult(d, res) // want `settleonce: path settles although the caller passed settle=false`
	return nil
}

// dispatchGood forwards the obligation with tail calls — neutral.
func (rt *Runtime) dispatchGood(p *Proc, d *Deployment, settle bool) (Result, error) {
	if d.Name == "fast" {
		return rt.invokeGood(p, d, settle)
	}
	return rt.invokeGood(p, d, settle)
}

// settleThenFail settles and then reports failure: the settled attempt is
// billed but the caller sees an error.
func (rt *Runtime) settleThenFail(p *Proc, d *Deployment) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	rt.settleResult(d, res)
	if flaky() {
		return Result{}, errFlaky // want `settleonce: every path to this error return has already settled`
	}
	return res, nil
}

// settleThenForward settles locally AND delegates: the callee settles again.
func (rt *Runtime) settleThenForward(p *Proc, d *Deployment, settle bool) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	if settle {
		rt.settleResult(d, res)
	}
	return rt.invokeGood(p, d, settle) // want `settleonce: path settles and then forwards the settle obligation`
}

// spawnSettle: function literals are held to the double-settle rule.
func (rt *Runtime) spawnSettle(p *Proc, d *Deployment) {
	go func() {
		res, err := run(p, d)
		if err != nil {
			return
		}
		rt.settleResult(d, res)
		rt.settleResult(d, res) // want `settleonce: path can settle twice`
	}()
}

// waived: a re-settle the analysis cannot see through, with the reason on
// record.
func (rt *Runtime) waived(p *Proc, d *Deployment) (Result, error) {
	res, err := run(p, d)
	if err != nil {
		return Result{}, err
	}
	rt.settleResult(d, res)
	//lint:settled fixture: rollback verified before the re-settle, so only one lands
	rt.settleResult(d, res)
	return res, nil
}

// A settled-waiver on a line the analysis no longer flags is stale.
//lint:settled the double settle this excused is gone // want `stale //lint:settled waiver: no settle finding on this line`
func noSettleHere() {}
