package molecule

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// chaosSummary is everything the soak observed, rendered to a single string
// so two runs with the same seed can be compared bit-for-bit.
type chaosSummary struct {
	submitted  int
	succeeded  int
	failed     int
	billed     int
	retries    int64
	failovers  int64
	timeouts   int64
	evictions  int64
	injected   int64
	finalClock sim.Time
}

func (s chaosSummary) String() string {
	return fmt.Sprintf("submitted=%d succeeded=%d failed=%d billed=%d retries=%d failovers=%d timeouts=%d evictions=%d injected=%d clock=%d",
		s.submitted, s.succeeded, s.failed, s.billed, s.retries, s.failovers,
		s.timeouts, s.evictions, s.injected, s.finalClock)
}

// runChaos drives a fixed workload against a host + 2 DPU machine while a
// seeded chaos controller crashes and revives DPUs and the fault plan
// injects probabilistic sandbox-create and handler failures. It returns the
// run's observed summary after asserting the core recovery invariants.
func runChaos(t *testing.T, seed uint64) chaosSummary {
	t.Helper()
	const (
		workers       = 8
		invokesPerWkr = 25
		chaosCycles   = 6
	)
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 2})
	reg := workloads.NewRegistry()
	opts := DefaultOptions()
	opts.Recovery = RecoveryOptions{
		InvokeTimeout: 2 * time.Second,
		MaxRetries:    6,
		RetryBackoff:  2 * time.Millisecond,
	}
	var sum chaosSummary
	var rt *Runtime
	var o *obs.Observer
	// settled records, per settle instant, the Result.Total of every
	// successful invoke — the caller-visible latencies the attribution pass
	// must reproduce from the span tree alone.
	settled := make(map[sim.Time][]time.Duration)
	env.Spawn("chaos-driver", func(p *sim.Proc) {
		var err error
		rt, err = New(p, m, reg, opts)
		if err != nil {
			t.Fatal(err)
		}
		o = obs.New(env)
		rt.SetObserver(o)
		pl := faults.NewPlan(env, seed)
		pl.CreateFailProb = 0.03
		pl.HandlerFailProb = 0.03
		rt.AttachFaults(pl)
		if err := rt.Deploy(p, "pyaes", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpus := rt.Machine.PUsOfKind(hw.DPU)
		targets := []hw.PUID{-1, -1, dpus[0].ID, dpus[1].ID}

		// Chaos controller: kill a random DPU, let the system limp, revive
		// it, breathe, repeat. Everything is up again by the end.
		ctl := rand.New(rand.NewSource(int64(seed)))
		env.Spawn("chaos-ctl", func(cp *sim.Proc) {
			for i := 0; i < chaosCycles; i++ {
				victim := dpus[ctl.Intn(len(dpus))].ID
				pl.Kill(victim)
				cp.Tracef("chaos: killed PU %d", victim)
				cp.Sleep(time.Duration(130+ctl.Intn(60)) * time.Millisecond)
				pl.Revive(victim)
				cp.Tracef("chaos: revived PU %d", victim)
				cp.Sleep(time.Duration(10+ctl.Intn(15)) * time.Millisecond)
			}
		})

		wg := sim.NewWaitGroup(env)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			wrng := rand.New(rand.NewSource(int64(seed)*1000 + int64(w)))
			env.Spawn(fmt.Sprintf("worker-%d", w), func(wp *sim.Proc) {
				defer wg.Done()
				for i := 0; i < invokesPerWkr; i++ {
					wp.Sleep(time.Duration(wrng.Intn(4000)) * time.Microsecond)
					pin := targets[wrng.Intn(len(targets))]
					sum.submitted++
					if res, err := rt.Invoke(wp, "pyaes", InvokeOptions{PU: pin}); err != nil {
						sum.failed++
					} else {
						sum.succeeded++
						settled[wp.Now()] = append(settled[wp.Now()], res.Total)
					}
				}
			})
		}
		wg.Wait(p)
	})
	env.Run()
	if got := env.BlockedProcs(); len(got) != 0 {
		t.Fatalf("chaos run leaked %d blocked processes: %v", len(got), got)
	}

	sum.billed = len(rt.Billing().Entries())
	lbl := obs.L("fn", "pyaes")
	sum.retries = o.Counter("molecule_invoke_retries_total", lbl).Value()
	sum.failovers = o.Counter("molecule_failovers_total", lbl).Value()
	sum.timeouts = o.Counter("molecule_invoke_timeouts_total", lbl).Value()
	for _, pu := range m.PUsOfKind(hw.DPU) {
		sum.evictions += o.Counter("molecule_crash_evictions_total", puLabel(pu.ID), lbl).Value()
	}
	for _, kind := range []string{"pu_crash", "transfer_pu_down", "partition", "link_inflate", "sandbox_create", "fork", "handler"} {
		sum.injected += o.Counter("faults_injected_total", obs.L("kind", kind)).Value()
	}
	sum.finalClock = env.Now()

	// Invariant 1: no invocation lost — every submitted invoke resolved.
	if sum.submitted != workers*invokesPerWkr {
		t.Errorf("submitted = %d, want %d", sum.submitted, workers*invokesPerWkr)
	}
	if sum.succeeded+sum.failed != sum.submitted {
		t.Errorf("lost invocations: %d submitted, %d resolved",
			sum.submitted, sum.succeeded+sum.failed)
	}
	// Invariant 2: no double billing — exactly one ledger entry per success,
	// none for failures or abandoned timed-out attempts.
	if sum.billed != sum.succeeded {
		t.Errorf("billing entries = %d, want %d (one per success)", sum.billed, sum.succeeded)
	}
	// Sanity: the chaos actually exercised the recovery machinery.
	if sum.retries == 0 {
		t.Error("soak produced no retries — faults not reaching the recovery path")
	}
	if sum.injected == 0 {
		t.Error("soak injected no faults")
	}

	// Invariant 3: attribution exactness. Every settled invocation's stage
	// decomposition must sum to its root span duration to the nanosecond —
	// including invocations whose abandoned timed-out attempts kept running
	// in the background, overlapping the backoff and retry spans that
	// followed — and the winning attempt's duration must be exactly the
	// Result.Total the caller saw.
	an := attrib.Analyze(o.Tracer.Spans(), attrib.Options{
		PUKind: func(pu int) string {
			if u := m.PU(hw.PUID(pu)); u != nil {
				return u.Kind.String()
			}
			return ""
		},
	})
	if got := len(an.Invocations); got != sum.submitted {
		t.Errorf("attributed %d invocations, want %d", got, sum.submitted)
	}
	var attribErrs int
	var backoffTime time.Duration
	for i := range an.Invocations {
		inv := &an.Invocations[i]
		if r := inv.Residue(); r != 0 {
			t.Errorf("invocation %d (%s): residue %v — total %v vs stage sum %v",
				inv.Root.ID, inv.Fn, r, inv.Total, inv.Stages.Sum())
		}
		if other := inv.Stages.Get(attrib.StageOther); other != 0 {
			t.Errorf("invocation %d: %v charged to %q — unclassified span in the tree",
				inv.Root.ID, other, attrib.StageOther)
		}
		backoffTime += inv.Stages.Get(attrib.StageRetryBackoff)
		if inv.Err {
			attribErrs++
			continue
		}
		winDur := time.Duration(inv.Win.End.Sub(inv.Win.Start))
		matched := false
		list := settled[inv.Root.End]
		for j, d := range list {
			if d == winDur {
				settled[inv.Root.End] = append(list[:j], list[j+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("invocation %d: winning-attempt duration %v matches no Result.Total settled at t=%d",
				inv.Root.ID, winDur, inv.Root.End)
		}
	}
	if attribErrs != sum.failed {
		t.Errorf("attribution saw %d errored invocations, summary says %d failed", attribErrs, sum.failed)
	}
	for at, rest := range settled {
		if len(rest) > 0 {
			t.Errorf("%d settled Result.Totals at t=%d never matched a winning attempt", len(rest), at)
		}
	}
	if sum.retries > 0 && backoffTime == 0 {
		t.Error("retries occurred but no invocation shows retry.backoff time")
	}
	return sum
}

// TestChaosSoak is the seeded kill/revive soak: under PU crashes and
// probabilistic create/handler failures, no invocation is lost and no
// invocation is double-billed, and the whole run is bit-for-bit reproducible
// from its seed.
func TestChaosSoak(t *testing.T) {
	first := runChaos(t, 42)
	if t.Failed() {
		t.Fatalf("invariants violated: %s", first)
	}
	t.Logf("chaos soak: %s", first)
	second := runChaos(t, 42)
	if first != second {
		t.Errorf("same seed diverged:\n  run 1: %s\n  run 2: %s", first, second)
	}
	other := runChaos(t, 7)
	if other == first {
		t.Error("different seeds produced identical runs — chaos not actually seeded")
	}
}
