package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotPath checks functions annotated with a //molecule:hotpath directive —
// the paths whose 0 allocs/op the microbenchmarks pin (the nIPC FIFO write,
// the warm invoke, the obs fast paths). Inside such a function it flags the
// constructs that quietly reintroduce allocations:
//
//   - fmt.Sprintf / fmt.Errorf / fmt.Sprint / fmt.Sprintln and runtime
//     string concatenation, unless they sit inside a return statement —
//     building an error on the bail-out exit is fine, the pinned path is
//     the success path;
//   - closures that capture enclosing variables (the capture forces a heap
//     allocation per call);
//   - Tracef calls not guarded by a tracing/nil check: Tracef itself checks
//     the env flag, but its variadic arguments are boxed at the call site
//     before the check runs.
//
// The check is syntactic and per-function; callees are not followed. It
// keeps the shape of the pinned paths honest between benchmark runs — the
// alloc-counting benchmarks remain the ground truth.
var HotPath = &analysis.Analyzer{
	Name:     "hotpath",
	Doc:      "flag allocation-introducing constructs (fmt, string concat, capturing closures, unguarded Tracef) in //molecule:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPath,
}

// hotPathMarker is the directive that opts a function into the check.
const hotPathMarker = "//molecule:hotpath"

// fmtAllocFuncs are the fmt formatters that always allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
}

func isHotPath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == hotPathMarker || strings.HasPrefix(c.Text, hotPathMarker+" ") {
			return true
		}
	}
	return false
}

// guardCond reports whether an if condition looks like a tracing or
// attachment guard: it mentions a tracing flag, calls Tracing()/Enabled(),
// or nil-checks something.
func guardCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "trac") {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Tracing" || n.Sel.Name == "Enabled" {
				found = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.NEQ || n.Op == token.EQL {
				for _, e := range []ast.Expr{n.X, n.Y} {
					if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// stackCtx derives, from an inspector stack, the enclosing hotpath function
// (nil if none) and whether the node sits inside a return statement or a
// guarded if within it.
func stackCtx(stack []ast.Node) (decl *ast.FuncDecl, inReturn, guarded bool) {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if isHotPath(n) {
				decl = n
			}
		case *ast.ReturnStmt:
			if decl != nil {
				inReturn = true
			}
		case *ast.IfStmt:
			if decl != nil && guardCond(n.Cond) {
				guarded = true
			}
		}
	}
	return decl, inReturn, guarded
}

// auditHotPathDirectives reports //molecule:hotpath directives that are not
// the doc comment of a function declaration: the function was renamed,
// deleted, or the comment drifted into a body, so the directive opts
// nothing into the check while still reading as if an invariant holds.
func auditHotPathDirectives(pass *analysis.Pass) {
	for _, f := range pass.Files {
		attached := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					attached[c] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != hotPathMarker && !strings.HasPrefix(c.Text, hotPathMarker+" ") {
					continue
				}
				if attached[c] {
					continue
				}
				if isTestFile(pass, pass.Fset.Position(c.Pos()).Filename) {
					continue
				}
				pass.Reportf(c.Pos(),
					"hotpath: stale %s directive: not attached to a function declaration — the function it pinned is gone; delete or re-attach it",
					hotPathMarker)
			}
		}
	}
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	auditHotPathDirectives(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeTypes := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.BinaryExpr)(nil),
		(*ast.FuncLit)(nil),
	}
	insp.WithStack(nodeTypes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		decl, inReturn, guarded := stackCtx(stack[:len(stack)-1])
		if decl == nil {
			return true
		}
		if isTestFile(pass, pass.Fset.Position(n.Pos()).Filename) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, decl, n, inReturn, guarded)
		case *ast.BinaryExpr:
			checkHotConcat(pass, decl, n, stack, inReturn)
		case *ast.FuncLit:
			checkHotClosure(pass, decl, n)
		}
		return true
	})
	return nil, nil
}

func checkHotCall(pass *analysis.Pass, decl *ast.FuncDecl, call *ast.CallExpr, inReturn, guarded bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
		fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		if inReturn {
			return // error construction on a bail-out exit
		}
		pass.Reportf(call.Pos(),
			"hotpath: fmt.%s allocates on the success path of //molecule:hotpath %s; precompute it, or move it into the error return",
			fn.Name(), decl.Name.Name)
		return
	}
	if sel.Sel.Name == "Tracef" && !guarded {
		pass.Reportf(call.Pos(),
			"hotpath: unguarded Tracef in //molecule:hotpath %s boxes its arguments even when tracing is off; wrap it in an `if tracing { ... }` guard",
			decl.Name.Name)
	}
}

func checkHotConcat(pass *analysis.Pass, decl *ast.FuncDecl, bin *ast.BinaryExpr, stack []ast.Node, inReturn bool) {
	if bin.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return
	}
	if inReturn {
		return
	}
	// Report only the topmost + of a chain: a+b+c parses as (a+b)+c.
	if len(stack) >= 2 {
		if parent, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok && parent.Op == token.ADD {
			if ptv, ok := pass.TypesInfo.Types[parent]; ok && ptv.Value == nil {
				if pb, ok := ptv.Type.Underlying().(*types.Basic); ok && pb.Info()&types.IsString != 0 {
					return
				}
			}
		}
	}
	pass.Reportf(bin.Pos(),
		"hotpath: string concatenation allocates in //molecule:hotpath %s; precompute the string outside the hot path",
		decl.Name.Name)
}

func checkHotClosure(pass *analysis.Pass, decl *ast.FuncDecl, lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal itself.
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		pass.Reportf(lit.Pos(),
			"hotpath: closure captures %q in //molecule:hotpath %s; a capturing closure heap-allocates per call — hoist it or pass state explicitly",
			captured, decl.Name.Name)
	}
}
