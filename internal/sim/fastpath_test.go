package sim

// Tests for the kernel fast path: pooled/recycled events, the dedicated
// resume event kind, the lone-sleeper Sleep shortcut, and spawned-slice
// compaction. These are in-package so they can assert on kernel internals
// (free list, spawned slice) that the public API deliberately hides.

import (
	"fmt"
	"testing"
	"time"
)

// TestPooledEventOrdering stresses event recycling: many interleaved
// sleepers and same-instant callbacks across several Run cycles must still
// fire in exact (time, seq) order.
func TestPooledEventOrdering(t *testing.T) {
	env := NewEnv()
	var got []string
	// Same-instant events: FIFO by seq.
	for i := 0; i < 5; i++ {
		i := i
		env.At(Time(time.Millisecond), func() { got = append(got, fmt.Sprintf("cb%d", i)) })
	}
	// Sleepers waking between and exactly at the callback instant.
	for _, d := range []Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond} {
		d := d
		env.Spawn(fmt.Sprintf("s%v", d), func(p *Proc) {
			p.Sleep(d)
			got = append(got, fmt.Sprintf("wake%v", d))
		})
	}
	env.Run()
	want := []string{"wake500µs", "cb0", "cb1", "cb2", "cb3", "cb4", "wake1ms", "wake2ms"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("first cycle order = %v, want %v", got, want)
	}

	// Second cycle on the same Env: recycled events must behave identically.
	if len(env.free) == 0 {
		t.Fatal("no events were recycled into the pool")
	}
	got = nil
	for i := 0; i < 3; i++ {
		i := i
		env.AfterFunc(Duration(i)*time.Millisecond, func() { got = append(got, fmt.Sprintf("r%d", i)) })
	}
	env.Run()
	if fmt.Sprint(got) != fmt.Sprint([]string{"r0", "r1", "r2"}) {
		t.Fatalf("recycled-event order = %v", got)
	}
}

// TestInterruptDuringSleep pins the interaction the fast path must not
// break: an Interrupt scheduled while a process sleeps fires before the
// wake event, the stale wake event then resumes an exited proc as a no-op,
// and later events still run.
func TestInterruptDuringSleep(t *testing.T) {
	env := NewEnv()
	var events []string
	p := env.Spawn("sleeper", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				events = append(events, fmt.Sprintf("interrupted@%v", p.Now()))
				panic(r) // re-panic Interrupted for the kernel
			}
		}()
		p.Sleep(10 * time.Millisecond)
		events = append(events, "woke") // must not happen
	})
	env.At(Time(time.Millisecond), func() { p.Interrupt() })
	env.At(Time(20*time.Millisecond), func() { events = append(events, "late-cb") })
	env.Run()

	want := []string{"interrupted@1ms", "late-cb"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	if env.LiveProcs() != 0 {
		t.Fatalf("interrupted proc still live: %v", env.BlockedProcs())
	}
}

// TestSleepFastPathSkipsQueueWhenAlone verifies the lone-sleeper shortcut
// fires (no event queued during the sleep) and that it is disabled whenever
// another event is due first, under a RunUntil horizon, or after Stop.
func TestSleepFastPathSkipsQueueWhenAlone(t *testing.T) {
	env := NewEnv()
	env.Spawn("lone", func(p *Proc) {
		for i := 0; i < 3; i++ {
			before := len(p.env.events)
			p.Sleep(time.Millisecond)
			if len(p.env.events) != before {
				t.Errorf("lone sleep %d queued an event", i)
			}
		}
	})
	env.Run()
	if env.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v, want 3ms", env.Now())
	}

	// With a pending earlier callback the same sleep must park normally.
	env2 := NewEnv()
	var order []string
	env2.At(Time(time.Millisecond), func() { order = append(order, "cb") })
	env2.Spawn("s", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, "woke")
	})
	env2.Run()
	if fmt.Sprint(order) != fmt.Sprint([]string{"cb", "woke"}) {
		t.Fatalf("order = %v, want [cb woke]", order)
	}

	// Under RunUntil, a sleep past the horizon must park so the run stops
	// at the horizon instead of jumping past it.
	env3 := NewEnv()
	env3.Spawn("s", func(p *Proc) { p.Sleep(10 * time.Second) })
	if end := env3.RunUntil(Time(time.Second)); end != Time(time.Second) {
		t.Fatalf("RunUntil ended at %v, want 1s", end)
	}
}

// TestSpawnedCompaction checks that Env.spawned stays bounded by the live
// process count on churn-heavy runs, while BlockedProcs still reports
// exactly the parked processes.
func TestSpawnedCompaction(t *testing.T) {
	env := NewEnv()
	const churn = 10000
	env.Spawn("driver", func(p *Proc) {
		for i := 0; i < churn; i++ {
			p.Env().Spawn("child", func(c *Proc) {})
			p.Yield()
		}
	})
	// One deliberately parked-forever process.
	blocker := NewEvent(env)
	env.Spawn("stuck", func(p *Proc) { blocker.Wait(p) })
	env.Run()

	if len(env.spawned) > 256 {
		t.Fatalf("spawned grew to %d entries after %d exits; compaction failed", len(env.spawned), churn)
	}
	if got := env.BlockedProcs(); len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("BlockedProcs = %v, want [stuck]", got)
	}
}

// TestEventPoolBounded ensures the recycle pool respects its cap.
func TestEventPoolBounded(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 4*maxFreeEvents; i++ {
		env.AfterFunc(Duration(i), func() {})
	}
	env.Run()
	if len(env.free) > maxFreeEvents {
		t.Fatalf("free list grew to %d, cap is %d", len(env.free), maxFreeEvents)
	}
}
