// Package storage models the object storage service serverless applications
// pull their inputs from (§4.1: "a frontend function (on DPU) to pull an
// image from storage services, and then transfer the image to an FPGA
// function gzip to compress the image").
//
// The store itself runs as a service on one general-purpose PU; accesses
// from functions on other PUs pay the interconnect (or network) cost for
// metadata plus a bandwidth-dominated payload transfer. Objects carry real
// bytes, so example pipelines operate on genuine data.
package storage

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Object is one stored blob.
type Object struct {
	Key  string
	Data []byte
	// Size overrides len(Data) for cost purposes, letting large objects be
	// modeled without materializing bytes.
	Size int
}

func (o Object) size() int {
	if o.Size > 0 {
		return o.Size
	}
	return len(o.Data)
}

// Service latency constants: metadata lookup plus media throughput (NVMe
// array class).
const (
	lookupLatency  = 180 * time.Microsecond
	mediaBandwidth = 4e9 // bytes/sec
)

// Store is an object store hosted on one PU of the machine.
type Store struct {
	Machine *hw.Machine
	Home    hw.PUID

	objects map[string]Object
	// media serializes access to the backing media.
	media *sim.Resource

	gets, puts int
}

// New creates a store hosted on the given PU.
func New(env *sim.Env, m *hw.Machine, home hw.PUID) *Store {
	return &Store{
		Machine: m,
		Home:    home,
		objects: make(map[string]Object),
		media:   sim.NewResource(env, 2),
	}
}

// Stats reports lifetime (gets, puts).
func (s *Store) Stats() (gets, puts int) { return s.gets, s.puts }

// mediaTime is the backing-media time for n bytes.
func mediaTime(n int) time.Duration {
	return time.Duration(float64(n) / mediaBandwidth * float64(time.Second))
}

// Put stores an object from a client on PU `from`, charging the transfer to
// the store's PU plus media write time.
func (s *Store) Put(p *sim.Proc, from hw.PUID, obj Object) error {
	if obj.Key == "" {
		return fmt.Errorf("storage: empty key")
	}
	p.Sleep(lookupLatency)
	if from != s.Home {
		if _, err := s.Machine.Transfer(p, from, s.Home, obj.size()); err != nil {
			return err
		}
	}
	s.media.Acquire(p)
	p.Sleep(mediaTime(obj.size()))
	s.media.Release()
	s.objects[obj.Key] = obj
	s.puts++
	return nil
}

// Get fetches an object to a client on PU `to`, charging media read time
// plus the transfer from the store's PU.
func (s *Store) Get(p *sim.Proc, to hw.PUID, key string) (Object, error) {
	p.Sleep(lookupLatency)
	obj, ok := s.objects[key]
	if !ok {
		return Object{}, fmt.Errorf("storage: no object %q", key)
	}
	s.media.Acquire(p)
	p.Sleep(mediaTime(obj.size()))
	s.media.Release()
	if to != s.Home {
		if _, err := s.Machine.Transfer(p, s.Home, to, obj.size()); err != nil {
			return Object{}, err
		}
	}
	s.gets++
	return obj, nil
}

// Delete removes an object.
func (s *Store) Delete(p *sim.Proc, key string) error {
	p.Sleep(lookupLatency)
	if _, ok := s.objects[key]; !ok {
		return fmt.Errorf("storage: no object %q", key)
	}
	delete(s.objects, key)
	return nil
}

// List returns the stored keys (no cost model; control-plane call).
func (s *Store) List() []string {
	out := make([]string, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	return out
}
