package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
)

// newTestBoss builds a small cluster and registers the given functions on
// the default CPU profile.
func newTestBoss(t *testing.T, machines int, cfg hw.Config, capacity int, fns ...string) *Boss {
	t.Helper()
	b, err := NewBoss(BossConfig{Machines: machines, HW: cfg, Opts: molecule.DefaultOptions(), Capacity: capacity})
	if err != nil {
		t.Fatalf("NewBoss: %v", err)
	}
	for _, fn := range fns {
		if err := b.Register(fn); err != nil {
			t.Fatalf("Register(%q): %v", fn, err)
		}
	}
	return b
}

func TestBossInvokeCompletes(t *testing.T) {
	b := newTestBoss(t, 2, hw.Config{}, 0, "pyaes")
	var res molecule.Result
	var worker int
	var err error
	b.Env.Spawn("client", func(p *sim.Proc) {
		res, worker, err = b.InvokeDetailed(p, "pyaes", molecule.InvokeOptions{PU: -1})
	})
	b.Run(1)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Total <= 0 {
		t.Fatalf("want positive total latency, got %v", res.Total)
	}
	if worker < 0 || worker >= 2 {
		t.Fatalf("served by machine %d, want 0 or 1", worker)
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after run = %d, want 0", got)
	}
}

// TestBossWarmAffinity: repeat invocations of the same function must land
// on the same machine (rendezvous home), so the second request reuses the
// first's warm instance instead of cold-starting a second machine.
func TestBossWarmAffinity(t *testing.T) {
	b := newTestBoss(t, 4, hw.Config{}, 0, "pyaes")
	workers := make([]int, 0, 6)
	colds := 0
	b.Env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			res, w, err := b.InvokeDetailed(p, "pyaes", molecule.InvokeOptions{PU: -1})
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
			if res.Cold {
				colds++
			}
			workers = append(workers, w)
		}
	})
	b.Run(1)
	for _, w := range workers[1:] {
		if w != workers[0] {
			t.Fatalf("affinity broken: requests served by machines %v", workers)
		}
	}
	if colds != 1 {
		t.Fatalf("cold starts = %d, want exactly 1 (warm reuse on the home machine)", colds)
	}
}

// TestBossWorkStealing: saturate the home machine and verify overflow is
// stolen by another machine rather than queued or failed.
func TestBossWorkStealing(t *testing.T) {
	const machines, cap = 3, 2
	b := newTestBoss(t, machines, hw.Config{}, cap, "pyaes")
	const n = machines * cap // enough to need every machine
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		b.Env.Spawn(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			_, errs[i] = b.Invoke(p, "pyaes", molecule.InvokeOptions{PU: -1})
		})
	}
	b.Run(1)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if b.Stolen() == 0 {
		t.Fatalf("no requests stolen despite %d concurrent requests on home capacity %d", n, cap)
	}
	busy := 0
	for _, node := range b.Nodes() {
		if node.Served() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("work stealing did not spread load: served=%v", servedOf(b))
	}
}

// TestBossCentralQueue: more concurrent requests than cluster-wide
// capacity must queue at the boss and drain, with zero failures.
func TestBossCentralQueue(t *testing.T) {
	const machines, cap = 2, 1
	b := newTestBoss(t, machines, hw.Config{}, cap, "pyaes")
	const n = 3 * machines * cap // 3x cluster capacity
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		b.Env.Spawn(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			_, errs[i] = b.Invoke(p, "pyaes", molecule.InvokeOptions{PU: -1})
		})
	}
	b.Run(1)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if b.QueuedPeak() == 0 {
		t.Fatalf("queue never used at 3x overload (peak=0)")
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after run = %d, want 0", got)
	}
}

// TestBossChainLocality: a chain whose functions all fit one machine must
// run on one machine — zero interconnect hops inside the chain.
func TestBossChainLocality(t *testing.T) {
	b := newTestBoss(t, 3, hw.Config{DPUs: 1}, 0, "mr-splitter", "mr-mapper", "mr-reducer")
	var res molecule.ChainResult
	var err error
	b.Env.Spawn("client", func(p *sim.Proc) {
		res, err = b.InvokeChain(p, []string{"mr-splitter", "mr-mapper", "mr-reducer"}, molecule.ChainOptions{})
	})
	b.Run(1)
	if err != nil {
		t.Fatalf("InvokeChain: %v", err)
	}
	// A split chain appends the interconnect hop (ms-scale) to EdgeLatency;
	// a local chain's edges are all intra-machine (µs-scale).
	for i, e := range res.EdgeLatency {
		if e >= b.IC.Lookahead() {
			t.Fatalf("edge %d latency %v >= interconnect base %v: chain was split", i, e, b.IC.Lookahead())
		}
	}
	served := 0
	for _, n := range b.Nodes() {
		if n.Served() > 0 {
			served++
		}
	}
	if served != 1 {
		t.Fatalf("local chain touched %d machines, want 1 (served=%v)", served, servedOf(b))
	}
}

// TestBossChainSplitHetero forces the chain-split path: two machines with
// hand-restricted kind masks (emulating a heterogeneous fleet) so the
// chain pyaes→matmul has no single eligible home and must run as two
// segments with an interconnect hop between them.
func TestBossChainSplitHetero(t *testing.T) {
	b := newTestBoss(t, 2, hw.Config{DPUs: 1}, 0)
	if err := b.Register("pyaes", molecule.DefaultProfile(hw.CPU)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := b.Register("matmul", molecule.DefaultProfile(hw.DPU)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Restrict machine 0 to CPU-only and machine 1 to DPU-only eligibility:
	// the chain pyaes→matmul then has no single home and must split 0→1.
	b.nodes[0].kinds = maskOf(hw.CPU)
	b.nodes[1].kinds = maskOf(hw.DPU)
	// Re-push kind-filtered registrations under the new masks.
	b.nodes[0].regs = map[string][]molecule.Profile{"pyaes": {molecule.DefaultProfile(hw.CPU)}}
	b.nodes[1].regs = map[string][]molecule.Profile{"matmul": {molecule.DefaultProfile(hw.DPU)}}

	var res molecule.ChainResult
	var err error
	b.Env.Spawn("client", func(p *sim.Proc) {
		res, err = b.InvokeChain(p, []string{"pyaes", "matmul"}, molecule.ChainOptions{})
	})
	b.Run(1)
	if err != nil {
		t.Fatalf("InvokeChain: %v", err)
	}
	split := false
	for _, e := range res.EdgeLatency {
		if e >= b.IC.Lookahead() {
			split = true
		}
	}
	if !split {
		t.Fatalf("chain did not pay an interconnect hop despite disjoint machine kinds (edges=%v)", res.EdgeLatency)
	}
	for i, n := range b.Nodes() {
		if n.Served() == 0 && i == len(b.Nodes())-1 {
			t.Fatalf("split chain completion not attributed (served=%v)", servedOf(b))
		}
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after run = %d, want 0", got)
	}
}

// TestBossFailover: kill a machine's PUs mid-run; its traffic must fail
// over to the surviving machine via the boss, and after Revive+Readmit the
// machine serves again.
func TestBossFailover(t *testing.T) {
	b := newTestBoss(t, 2, hw.Config{}, 0, "pyaes")
	// Find the rendezvous home so we kill the machine actually serving.
	var home *Node
	var score uint64
	for _, n := range b.Nodes() {
		if s := rendezvous("pyaes", n.Domain); home == nil || s > score {
			home, score = n, s
		}
	}
	other := b.Nodes()[0]
	if other == home {
		other = b.Nodes()[1]
	}

	// The fault plan lives on the home machine's own domain: the kill fires
	// there at a scheduled virtual time, never as a cross-domain mutation.
	pl := faults.NewPlan(home.Env, 1)
	home.RT.AttachFaults(pl)
	killAt := sim.Time(2 * time.Second)
	home.Env.At(killAt, func() {
		for _, pu := range home.HW.PUs() {
			pl.Kill(pu.ID)
		}
	})

	var warmErr, postErr error
	var warmWorker, postWorker int
	b.Env.Spawn("client", func(p *sim.Proc) {
		if _, warmWorker, warmErr = b.InvokeDetailed(p, "pyaes", molecule.InvokeOptions{PU: -1}); warmErr != nil {
			return
		}
		p.Sleep(time.Duration(killAt) - time.Duration(p.Now()) + time.Second)
		_, postWorker, postErr = b.InvokeDetailed(p, "pyaes", molecule.InvokeOptions{PU: -1})
	})
	b.Run(1)
	if warmErr != nil {
		t.Fatalf("warm-up invoke: %v", warmErr)
	}
	if warmWorker != home.ID() {
		t.Fatalf("warm-up served by machine %d, want rendezvous home %d", warmWorker, home.ID())
	}
	if postErr != nil {
		t.Fatalf("post-kill invoke did not fail over: %v", postErr)
	}
	if postWorker != other.ID() {
		t.Fatalf("post-kill request served by machine %d, want survivor %d", postWorker, other.ID())
	}
	if !home.Down() {
		t.Fatalf("boss did not mark the killed machine down")
	}

	// Revive at quiescence (the group is idle between runs), readmit, and
	// verify the home serves again.
	for _, pu := range home.HW.PUs() {
		pl.Revive(pu.ID)
	}
	if err := b.Readmit(home.ID()); err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	var revivedWorker int
	var revivedErr error
	b.Env.Spawn("client2", func(p *sim.Proc) {
		_, revivedWorker, revivedErr = b.InvokeDetailed(p, "pyaes", molecule.InvokeOptions{PU: -1})
	})
	b.Run(1)
	if revivedErr != nil {
		t.Fatalf("post-revive invoke: %v", revivedErr)
	}
	if revivedWorker != home.ID() {
		t.Fatalf("post-revive request served by machine %d, want readmitted home %d", revivedWorker, home.ID())
	}
}

// TestBossDrainUnderLoad: draining a machine mid-burst must not strand its
// inflight requests, and new requests must avoid it.
func TestBossDrainUnderLoad(t *testing.T) {
	const n = 8
	b := newTestBoss(t, 2, hw.Config{}, 2, "pyaes")
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		b.Env.Spawn(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			_, errs[i] = b.Invoke(p, "pyaes", molecule.InvokeOptions{PU: -1})
		})
	}
	b.Env.At(sim.Time(50*time.Millisecond), func() {
		if err := b.Drain(0); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	b.Run(1)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed across drain: %v", i, err)
		}
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after drain run = %d, want 0", got)
	}
}

// TestBossDeterministicAcrossWorkers is the tentpole's core invariant: the
// cluster soak fingerprint and the loadgen stats must be byte-identical at
// every OS worker count.
func TestBossDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultSoakConfig(3)
	cfg.RatePerSec = 120
	cfg.Duration = 1 * time.Second
	cfg.Capacity = 8

	counts := []int{0, 1, 2, 4, runtime.NumCPU()}
	var want string
	for _, w := range counts {
		res, err := Soak(cfg, w)
		if err != nil {
			t.Fatalf("Soak(workers=%d): %v", w, err)
		}
		fp := res.Fingerprint()
		if want == "" {
			want = fp
			if res.Stats.Requests == 0 {
				t.Fatalf("soak produced no requests")
			}
			if res.Stats.Errors != 0 {
				t.Fatalf("soak produced %d errors: %s", res.Stats.Errors, fp)
			}
			continue
		}
		if fp != want {
			t.Fatalf("workers=%d fingerprint diverged:\n  got  %s\n  want %s", w, fp, want)
		}
	}
}

// TestBossSaturatedIdleFailsQueue: a cluster with zero capacity must fail
// queued requests deterministically instead of deadlocking.
func TestBossSaturatedIdleFailsQueue(t *testing.T) {
	b := newTestBoss(t, 1, hw.Config{}, 0, "pyaes")
	b.nodes[0].capacity = 0 // hasRoom() is always false
	var err error
	b.Env.Spawn("client", func(p *sim.Proc) {
		_, err = b.Invoke(p, "pyaes", molecule.InvokeOptions{PU: -1})
	})
	b.Run(1)
	if !errors.Is(err, errClusterSaturated) {
		t.Fatalf("want errClusterSaturated, got %v", err)
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestBossUnregisteredFunction: a request for an unknown function errors
// without charging any inflight window.
func TestBossUnregisteredFunction(t *testing.T) {
	b := newTestBoss(t, 1, hw.Config{}, 0)
	var err error
	b.Env.Spawn("client", func(p *sim.Proc) {
		_, err = b.Invoke(p, "nope", molecule.InvokeOptions{PU: -1})
	})
	b.Run(1)
	if err == nil {
		t.Fatalf("want error for unregistered function")
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func servedOf(b *Boss) []int {
	out := make([]int, len(b.Nodes()))
	for i, n := range b.Nodes() {
		out[i] = n.Served()
	}
	return out
}
