// moleculelint runs the moleculelint analyzer suite (internal/lint): eight
// go/analysis analyzers that machine-check this repository's determinism,
// layering, zero-allocation, domain-ownership, release-path, and
// exactly-once-billing invariants, plus the stock copylocks pass and a
// definitely-nil nilness subset.
//
// Two modes:
//
//	go vet -vettool=$(which moleculelint) ./...   # unitchecker protocol
//	moleculelint [-json] [packages]               # standalone; default ./...
//
// Standalone mode re-executes itself under `go vet -vettool`, so both modes
// analyze packages exactly as the build does (per package, with full type
// information). -json emits the stable machine-readable report documented in
// report.go (schema, analyzer, position, message, waiver eligibility) on
// stdout; the exit status is non-zero when any analyzer reports a
// diagnostic.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

// suite is every analyzer the driver runs: the repo's own eight plus the
// stock-derived passes, in both driver modes.
func suite() []*analysis.Analyzer {
	all := make([]*analysis.Analyzer, 0, len(lint.Analyzers)+len(lint.Stock))
	all = append(all, lint.Analyzers...)
	all = append(all, lint.Stock...)
	return all
}

func main() {
	args := os.Args[1:]
	// go vet drives the unitchecker protocol: -flags and -V=full probe
	// queries, then one invocation per package with a *.cfg argument.
	if len(args) > 0 && (args[0] == "-flags" || strings.HasPrefix(args[0], "-V") || strings.HasSuffix(args[len(args)-1], ".cfg")) {
		unitchecker.Main(suite()...) // does not return
	}

	fs := flag.NewFlagSet("moleculelint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a stable JSON report (see cmd/moleculelint/report.go)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: moleculelint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range suite() {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "moleculelint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs = append(vetArgs, patterns...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdin = os.Stdin
	if !*jsonOut {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "moleculelint: go vet: %v\n", err)
			os.Exit(2)
		}
		return
	}

	// -json: capture the raw go vet -json stream and re-emit it as the
	// stable report. go vet may route the JSON to stdout or stderr depending
	// on version — capture both and parse the combined stream; '#' status
	// lines are skipped by the parser.
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	runErr := cmd.Run()
	wd, _ := os.Getwd()
	raw := append(out.Bytes(), errOut.Bytes()...)
	rep, perr := buildReport(raw, wd)
	if perr != nil {
		// Not diagnostics — a build failure or protocol error. Surface it.
		os.Stderr.Write(errOut.Bytes())
		fmt.Fprintf(os.Stderr, "moleculelint: %v\n", perr)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "moleculelint: %v\n", err)
		os.Exit(2)
	}
	if len(rep.Diagnostics) > 0 {
		os.Exit(1)
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "moleculelint: go vet: %v\n", runErr)
		os.Exit(2)
	}
}
