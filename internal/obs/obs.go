// Package obs is the observability layer for the Molecule reproduction: a
// hierarchical span tracer and a metrics registry, both operating in virtual
// (simulated) time.
//
// The paper's key claims — Fig 8 startup, Fig 11 nIPC, Tab 4 breakdowns —
// are latency decompositions across layers (gateway → runtime placement →
// XPU-Shim → sandbox → handler). Endpoint timings alone cannot audit those
// decompositions; spans and per-PU counters recorded at each layer can.
//
// Everything is zero-cost when disabled: the runtime layers hold a
// *Observer that is nil by default, and every method on a nil *Observer,
// *Span, *Counter, *Gauge, or *Histogram is a no-op that returns
// immediately. Call sites therefore need no conditional — the nil check is
// the guard, exactly like sim.Env's tracing flag. The existing kernel
// microbenchmarks (0 allocs/op) and the golden experiment report both run
// with observability disabled and are the regression gates for this
// property.
//
// Two exporters ship with the package:
//
//   - Chrome trace_event JSON (Tracer.WriteChromeTrace), loadable in
//     Perfetto / chrome://tracing, one track per PU;
//   - Prometheus text exposition (Registry.WritePrometheus), served at
//     /metrics by internal/httpd and dumpable from the CLIs.
package obs

import "repro/internal/sim"

// Observer bundles a span tracer and a metrics registry. A nil *Observer is
// the disabled state: every method no-ops.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry

	// SLO is the optional latency-objective engine. Nil means no objectives
	// are tracked; RecordSLO then no-ops even on an enabled Observer.
	SLO *SLOEngine
}

// New returns an enabled Observer recording in env's virtual time.
func New(env *sim.Env) *Observer {
	return &Observer{Tracer: NewTracer(env), Metrics: NewRegistry()}
}

// Enabled reports whether o records anything (o != nil).
func (o *Observer) Enabled() bool { return o != nil }

// Span starts a span under parent (nil parent = root). On a nil Observer it
// returns a nil *Span, whose methods all no-op — the zero-cost fast path.
func (o *Observer) Span(parent *Span, name string, pu int) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(parent, name, pu)
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram returns the named virtual-time histogram, creating it on first
// use. Nil-safe.
func (o *Observer) Histogram(name string, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, labels...)
}

// CounterSet is Counter for a pre-interned LabelSet: one map probe, no
// per-call sort or string building. Nil-safe.
//
//molecule:hotpath
func (o *Observer) CounterSet(ls LabelSet) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.CounterSet(ls)
}

// GaugeSet is Gauge for a pre-interned LabelSet. Nil-safe.
//
//molecule:hotpath
func (o *Observer) GaugeSet(ls LabelSet) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.GaugeSet(ls)
}

// HistogramSet is Histogram for a pre-interned LabelSet. Nil-safe.
//
//molecule:hotpath
func (o *Observer) HistogramSet(ls LabelSet) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.HistogramSet(ls)
}

// RecordSLO feeds one settled invocation's end-to-end latency into the SLO
// engine, if one is attached. Nil-safe on both the Observer and the engine —
// the detached fast path is two nil checks.
//
//molecule:hotpath
func (o *Observer) RecordSLO(fn string, d sim.Duration) {
	if o == nil || o.SLO == nil {
		return
	}
	o.SLO.Record(fn, d)
}
