package sim

import (
	"fmt"
	"io"
)

// TraceEvent is one recorded occurrence in virtual time.
type TraceEvent struct {
	T     Time
	Proc  string // name of the emitting process ("" for scheduler context)
	Event string
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%12v  %-24s %s", e.T, e.Proc, e.Event)
}

// EnableTrace starts recording trace events. Tracing is off by default and
// costs nothing when disabled.
func (e *Env) EnableTrace() { e.tracing = true }

// DisableTrace stops recording (the log is kept).
func (e *Env) DisableTrace() { e.tracing = false }

// Tracing reports whether tracing is enabled.
func (e *Env) Tracing() bool { return e.tracing }

// TraceLog returns a copy of the recorded events in order. Callers may keep
// or mutate the slice freely; it never aliases the live log, which later
// Tracef calls keep appending to.
func (e *Env) TraceLog() []TraceEvent {
	if e.trace == nil {
		return nil
	}
	out := make([]TraceEvent, len(e.trace))
	copy(out, e.trace)
	return out
}

// ClearTrace drops recorded events.
func (e *Env) ClearTrace() { e.trace = nil }

// Tracef records a formatted event from scheduler context.
func (e *Env) Tracef(format string, args ...any) {
	if !e.tracing {
		return
	}
	proc := ""
	if e.running != nil {
		proc = e.running.name
	}
	e.trace = append(e.trace, TraceEvent{T: e.now, Proc: proc, Event: fmt.Sprintf(format, args...)})
}

// Tracef records a formatted event attributed to the process.
func (p *Proc) Tracef(format string, args ...any) {
	if !p.env.tracing {
		return
	}
	p.env.trace = append(p.env.trace, TraceEvent{
		T: p.env.now, Proc: p.name, Event: fmt.Sprintf(format, args...),
	})
}

// DumpTrace writes the trace log to w, one event per line.
func (e *Env) DumpTrace(w io.Writer) {
	for _, ev := range e.trace {
		fmt.Fprintln(w, ev.String())
	}
}
