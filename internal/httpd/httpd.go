// Package httpd exposes a simulated Molecule platform over real HTTP: a
// thin REST facade so the library can be driven like a serverless service
// (deploy, invoke, chains, stats) from curl or any client. Latencies in
// responses are virtual (simulated) times; function outputs are real when
// the workload has a compute body.
//
// One simulation environment backs the server; requests serialize on it
// (the environment is single-threaded by design), each running as a fresh
// driver process in virtual time.
package httpd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Server is the REST facade over one simulated machine.
type Server struct {
	mu  sync.Mutex
	env *sim.Env
	rt  *molecule.Runtime
}

// NewServer builds the simulated machine and its Molecule runtime.
func NewServer(cfg hw.Config, opts molecule.Options) (*Server, error) {
	env := sim.NewEnv()
	m := hw.Build(env, cfg)
	var rt *molecule.Runtime
	var err error
	env.Spawn("boot", func(p *sim.Proc) {
		rt, err = molecule.New(p, m, workloads.NewRegistry(), opts)
	})
	env.Run()
	if err != nil {
		return nil, err
	}
	return &Server{env: env, rt: rt}, nil
}

// AttachFaults parses a fault-plan spec (see faults.ParseSpec) and wires the
// resulting plan through every layer of the server's runtime. Times in the
// spec are virtual and measured from the simulation epoch.
func (s *Server) AttachFaults(seed uint64, spec string) error {
	pl := faults.NewPlan(s.env, seed)
	if err := faults.ParseSpec(pl, spec); err != nil {
		return err
	}
	s.rt.AttachFaults(pl)
	return nil
}

// EnableObservability attaches a span tracer and metrics registry to the
// server's runtime and returns it. /metrics and /trace serve its state;
// without this call both endpoints return 404 and invocations record
// nothing.
func (s *Server) EnableObservability() *obs.Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := obs.New(s.env)
	s.rt.SetObserver(o)
	return o
}

// EnableSLO attaches a latency-objective engine (default objective def) to
// the server's observer, enabling observability first if needed. GET /slo
// serves the engine's scored state; /metrics gains the slo_* gauge
// families. Deploys may override the default per function with the
// slo/slo_target form values.
func (s *Server) EnableSLO(def obs.SLOConfig) *obs.SLOEngine {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.rt.Observer()
	if o == nil {
		o = obs.New(s.env)
		s.rt.SetObserver(o)
	}
	if o.SLO == nil {
		o.SLO = obs.NewSLOEngine(def)
	}
	return o.SLO
}

// LoadFunctions registers custom JSON-defined workloads (see
// workloads.FunctionSpec).
func (s *Server) LoadFunctions(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Registry.LoadJSON(data)
}

// drive runs body as a driver process to completion, serialized against
// other requests.
func (s *Server) drive(body func(p *sim.Proc)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env.Spawn("http-driver", func(p *sim.Proc) { body(p) })
	s.env.Run()
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /deploy", s.handleDeploy)
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("POST /chain", s.handleChain)
	mux.HandleFunc("GET /functions", s.handleFunctions)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /experiments/{id}", s.handleRunExperiment)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /slo", s.handleSLO)
	return mux
}

// handleMetrics serves the metrics registry in the Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.rt.Observer()
	if o == nil {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	o.SLO.Export(o.Metrics) // nil-safe; mirrors SLO state into slo_* gauges
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.Metrics.WritePrometheus(w)
}

// handleSLO serves the latency-objective engine's scored state as JSON:
// per-function attainment, error-budget burn, and sketch quantiles. 404
// until EnableSLO is called.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.rt.Observer()
	if o == nil || o.SLO == nil {
		http.Error(w, "slo engine disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.SLO.WriteJSON(w)
}

// handleTrace serves the recorded span tree as Chrome trace_event JSON
// (loadable in Perfetto or chrome://tracing).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.rt.Observer()
	if o == nil {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.Tracer.WriteChromeTrace(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseProfiles maps "cpu,dpu,fpga,gpu" to profiles.
func parseProfiles(s string) ([]molecule.Profile, error) {
	if s == "" {
		return nil, nil
	}
	var out []molecule.Profile
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "cpu":
			out = append(out, molecule.DefaultProfile(hw.CPU))
		case "dpu":
			out = append(out, molecule.DefaultProfile(hw.DPU))
		case "fpga":
			out = append(out, molecule.DefaultProfile(hw.FPGA))
		case "gpu":
			out = append(out, molecule.DefaultProfile(hw.GPU))
		case "":
		default:
			return nil, fmt.Errorf("httpd: unknown profile %q", part)
		}
	}
	return out, nil
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	fn := r.FormValue("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fn parameter required"))
		return
	}
	profiles, err := parseProfiles(r.FormValue("profiles"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var sloCfg *obs.SLOConfig
	if v := r.FormValue("slo"); v != "" {
		obj, err := time.ParseDuration(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad slo %q: %w", v, err))
			return
		}
		cfg := obs.SLOConfig{Objective: obj, Target: 0.999}
		if tv := r.FormValue("slo_target"); tv != "" {
			t, err := strconv.ParseFloat(tv, 64)
			if err != nil || t <= 0 || t > 1 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad slo_target %q", tv))
				return
			}
			cfg.Target = t
		}
		s.mu.Lock()
		o := s.rt.Observer()
		s.mu.Unlock()
		if o == nil || o.SLO == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: slo engine disabled (EnableSLO / moleculed -slo)"))
			return
		}
		sloCfg = &cfg
	}
	var depErr error
	s.drive(func(p *sim.Proc) { depErr = s.rt.Deploy(p, fn, profiles...) })
	if depErr != nil {
		writeErr(w, http.StatusBadRequest, depErr)
		return
	}
	if sloCfg != nil {
		s.mu.Lock()
		if o := s.rt.Observer(); o != nil {
			o.SLO.SetObjective(fn, *sloCfg)
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"deployed": fn, "profiles": r.FormValue("profiles")})
}

// InvokeResponse is the /invoke reply.
type InvokeResponse struct {
	Fn        string  `json:"fn"`
	PU        int     `json:"pu"`
	Kind      string  `json:"kind"`
	Cold      bool    `json:"cold"`
	StartupMs float64 `json:"startup_ms"`
	ExecMs    float64 `json:"exec_ms"`
	TotalMs   float64 `json:"total_ms"`
	Output    any     `json:"output,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	fn := r.FormValue("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fn parameter required"))
		return
	}
	opts := molecule.DefaultInvokeOptions()
	if v := r.FormValue("pu"); v != "" {
		pu, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad pu %q", v))
			return
		}
		opts.PU = hw.PUID(pu)
	}
	if v := r.FormValue("bytes"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad bytes %q", v))
			return
		}
		opts.Arg.Bytes = b
	}
	if v := r.FormValue("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad n %q", v))
			return
		}
		opts.Arg.N = n
	}
	opts.RunBody = r.FormValue("body") == "1"

	var res molecule.Result
	var invErr error
	s.drive(func(p *sim.Proc) {
		gw := s.rt.Observer().Span(nil, "gateway.request", int(s.rt.HostID()))
		gw.SetAttr("fn", fn)
		opts.Span = gw
		res, invErr = s.rt.Invoke(p, fn, opts)
		gw.Finish()
	})
	if invErr != nil {
		// Exhausted recovery (timeouts, crashed PUs) is the platform's
		// fault, not the client's: a gateway answers 503, not 400.
		status := http.StatusBadRequest
		if errors.Is(invErr, molecule.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, invErr)
		return
	}
	writeJSON(w, http.StatusOK, InvokeResponse{
		Fn: res.Fn, PU: int(res.PU), Kind: res.Kind.String(), Cold: res.Cold,
		StartupMs: ms(res.Startup), ExecMs: ms(res.Exec), TotalMs: ms(res.Total),
		Output: res.Output,
	})
}

// ChainResponse is the /chain reply.
type ChainResponse struct {
	Fns        []string  `json:"fns"`
	TotalMs    float64   `json:"total_ms"`
	EdgeMs     []float64 `json:"edge_ms"`
	ColdStarts int       `json:"cold_starts"`
}

func (s *Server) handleChain(w http.ResponseWriter, r *http.Request) {
	raw := r.FormValue("fns")
	if raw == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fns parameter required"))
		return
	}
	fns := strings.Split(raw, ",")
	var res molecule.ChainResult
	var chErr error
	s.drive(func(p *sim.Proc) { res, chErr = s.rt.InvokeChain(p, fns, molecule.ChainOptions{}) })
	if chErr != nil {
		writeErr(w, http.StatusBadRequest, chErr)
		return
	}
	edges := make([]float64, len(res.EdgeLatency))
	for i, e := range res.EdgeLatency {
		edges[i] = ms(e)
	}
	writeJSON(w, http.StatusOK, ChainResponse{
		Fns: fns, TotalMs: ms(res.Total), EdgeMs: edges, ColdStarts: res.ColdStarts,
	})
}

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"functions": s.rt.Registry.Names()})
}

// handleExperiments lists the paper's reproducible experiments.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []exp
	for _, e := range bench.All() {
		out = append(out, exp{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// handleRunExperiment runs one experiment and returns its tables as JSON.
// Experiments build their own simulated machines, so they do not touch the
// server's runtime state.
func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := bench.ByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpd: no experiment %q", id))
		return
	}
	type table struct {
		Title  string     `json:"title"`
		Note   string     `json:"note,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	var tables []table
	for _, t := range e.Run() {
		tables = append(tables, table{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": e.ID, "title": e.Title, "paper": e.Paper, "tables": tables,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pus := make([]map[string]any, 0)
	for _, n := range s.rt.Snapshot() {
		entry := map[string]any{
			"id": int(n.PU), "kind": n.Kind.String(), "name": n.Name,
			"capacity": n.Capacity, "live": n.Live,
			"executor_alive": n.ExecutorAlive,
		}
		if len(n.WarmPerFunc) > 0 {
			entry["warm"] = n.WarmPerFunc
		}
		if len(n.FPGAImage) > 0 {
			entry["fpga_image"] = n.FPGAImage
		}
		pus = append(pus, entry)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"virtual_time":   s.env.Now().String(),
		"pus":            pus,
		"capacity":       s.rt.Capacity(),
		"live_instances": s.rt.LiveInstances(),
		"billed_units":   s.rt.Billing().Total(),
		"invocations":    len(s.rt.Billing().Entries()),
	})
}
