package repro

// Integration tests exercise the full stack — hardware model, per-PU
// operating systems, XPU-Shim, vectorized sandboxes, the Molecule runtime,
// and the baselines — together, including failure injection and concurrent
// load.

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/molecule"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// withRuntime builds a Molecule runtime on the given machine config and
// runs body as the driver process, asserting the simulation drains cleanly.
func withRuntime(t *testing.T, cfg hw.Config, opts molecule.Options, body func(p *sim.Proc, rt *molecule.Runtime)) {
	t.Helper()
	env := sim.NewEnv()
	m := hw.Build(env, cfg)
	env.Spawn("driver", func(p *sim.Proc) {
		rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
		if err != nil {
			t.Fatal(err)
		}
		body(p, rt)
	})
	env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("simulation left %d processes blocked", env.LiveProcs())
	}
}

// TestFullHeterogeneousMachineUnderLoad drives a Zipf/Poisson request
// stream against a machine with every PU class while FPGA and GPU
// invocations interleave, and checks global accounting stays consistent.
func TestFullHeterogeneousMachineUnderLoad(t *testing.T) {
	withRuntime(t, hw.Config{DPUs: 2, FPGAs: 1, GPUs: 1}, molecule.DefaultOptions(),
		func(p *sim.Proc, rt *molecule.Runtime) {
			general := []string{"matmul", "pyaes", "image-resize", "chameleon"}
			for _, fn := range general {
				if err := rt.Deploy(p, fn,
					molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
					t.Fatal(err)
				}
			}
			if err := rt.Deploy(p, "mscale",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
				t.Fatal(err)
			}
			if err := rt.Deploy(p, "vmult",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.GPU)); err != nil {
				t.Fatal(err)
			}

			stats, err := loadgen.Run(p, rt, loadgen.Config{
				Seed: 1, Functions: general, ZipfS: 1.3,
				RatePerSec: 80, Duration: 5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Errors != 0 {
				t.Errorf("%d request errors under load", stats.Errors)
			}
			// Accelerator invocations interleaved with the stream.
			for i := 0; i < 5; i++ {
				if _, err := rt.Invoke(p, "mscale", molecule.DefaultInvokeOptions()); err != nil {
					t.Fatal(err)
				}
				if _, err := rt.Invoke(p, "vmult", molecule.DefaultInvokeOptions()); err != nil {
					t.Fatal(err)
				}
			}
			if got := len(rt.Billing().Entries()); got != stats.Requests+10 {
				t.Errorf("billing entries = %d, want %d", got, stats.Requests+10)
			}
			if rt.LiveInstances() > rt.Capacity() {
				t.Errorf("live instances %d exceed capacity %d", rt.LiveInstances(), rt.Capacity())
			}
		})
}

// TestKilledSandboxNotServedWarm injects a failure: a cached warm instance
// is killed out-of-band; the next request must not be routed to the corpse.
func TestKilledSandboxNotServedWarm(t *testing.T) {
	withRuntime(t, hw.Config{}, molecule.DefaultOptions(), func(p *sim.Proc, rt *molecule.Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Invoke(p, "matmul", molecule.DefaultInvokeOptions()); err != nil {
			t.Fatal(err)
		}
		// Kill every running container sandbox behind Molecule's back.
		cr := rt.ContainerRuntimeOn(0)
		for _, st := range cr.State(nil) {
			if st.State == sandbox.StateRunning {
				if err := cr.Kill(p, []string{st.ID}, 9); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := rt.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Error("request served by a killed sandbox")
		}
	})
}

// TestConcurrentChainsShareWarmPools runs several chains at once over the
// same functions; every chain must complete and later rounds must be warm.
func TestConcurrentChainsShareWarmPools(t *testing.T) {
	withRuntime(t, hw.Config{DPUs: 1}, molecule.DefaultOptions(), func(p *sim.Proc, rt *molecule.Runtime) {
		chain := workloads.MapReduceChain()
		for _, fn := range chain {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}
		env := p.Env()
		wg := sim.NewWaitGroup(env)
		results := make([]molecule.ChainResult, 6)
		for i := 0; i < 6; i++ {
			i := i
			wg.Add(1)
			env.Spawn("chain", func(cp *sim.Proc) {
				defer wg.Done()
				res, err := rt.InvokeChain(cp, chain, molecule.ChainOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = res
			})
		}
		wg.Wait(p)
		for i, res := range results {
			if res.Total <= 0 {
				t.Errorf("chain %d produced no result", i)
			}
		}
		// A final run over the now-populated pools must be fully warm.
		res, err := rt.InvokeChain(p, chain, molecule.ChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ColdStarts != 0 {
			t.Errorf("final chain still cold-started %d instances", res.ColdStarts)
		}
	})
}

// TestMoleculeBeatsBaselineEverywhere is the paper's bottom line as one
// assertion: on the same machine and workloads, Molecule's cold start,
// warm chains, and FPGA offload all beat Molecule-homo.
func TestMoleculeBeatsBaselineEverywhere(t *testing.T) {
	withRuntime(t, hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions(),
		func(p *sim.Proc, rt *molecule.Runtime) {
			h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
			if err := rt.Deploy(p, "image-processing"); err != nil {
				t.Fatal(err)
			}
			rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")

			// Cold start.
			mres, err := rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				t.Fatal(err)
			}
			bres, err := h.Invoke(p, "image-processing", 0, workloads.Arg{}, true)
			if err != nil {
				t.Fatal(err)
			}
			if mres.Startup >= bres.Startup {
				t.Errorf("Molecule cold start %v not below baseline %v", mres.Startup, bres.Startup)
			}

			// Warm chain.
			chain := workloads.AlexaChain()
			for _, fn := range chain {
				if err := rt.Deploy(p, fn); err != nil {
					t.Fatal(err)
				}
			}
			rt.InvokeChain(p, chain, molecule.ChainOptions{})
			h.InvokeChain(p, chain, nil, workloads.Arg{})
			mc, _ := rt.InvokeChain(p, chain, molecule.ChainOptions{})
			bc, _ := h.InvokeChain(p, chain, nil, workloads.Arg{})
			if mc.Total >= bc.Total {
				t.Errorf("Molecule chain %v not below baseline %v", mc.Total, bc.Total)
			}

			// FPGA offload for a large gzip.
			if err := rt.Deploy(p, "gzip-compression",
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA)); err != nil {
				t.Fatal(err)
			}
			arg := workloads.Arg{Bytes: 50 << 20}
			fres, err := rt.Invoke(p, "gzip-compression", molecule.InvokeOptions{PU: -1, Arg: arg})
			if err != nil {
				t.Fatal(err)
			}
			if fres.Kind != hw.FPGA {
				t.Errorf("large gzip placed on %v, want FPGA", fres.Kind)
			}
			cres, err := h.Invoke(p, "gzip-compression", 0, arg, false)
			if err != nil {
				t.Fatal(err)
			}
			if fres.Exec >= cres.Exec {
				t.Errorf("FPGA gzip %v not below CPU %v", fres.Exec, cres.Exec)
			}
		})
}

// TestDensityEndToEnd fills the whole paper topology (2 DPUs) to its
// capacity with real placements — the Fig 2a experiment as a test.
func TestDensityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("1512 real placements in -short mode")
	}
	withRuntime(t, hw.Config{DPUs: 2}, molecule.DefaultOptions(), func(p *sim.Proc, rt *molecule.Runtime) {
		if err := rt.Deploy(p, "image-processing",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		placed := 0
		for {
			if _, err := rt.AcquireHeld(p, "image-processing", -1); err != nil {
				break
			}
			placed++
		}
		if placed != 1512 {
			t.Errorf("placed %d instances, want 1512", placed)
		}
	})
}
