package repro

// Property-based tests (testing/quick) on the core invariants of the
// simulation kernel, the distributed capability system, the keep-alive
// cache, and the FPGA resource model.

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/molecule"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

// TestSimClockMonotoneProperty: for any set of processes doing any sleeps,
// every observation of the clock is non-decreasing and the final time equals
// the largest completion time.
func TestSimClockMonotoneProperty(t *testing.T) {
	f := func(delays [][]uint16) bool {
		if len(delays) > 16 {
			delays = delays[:16]
		}
		env := sim.NewEnv()
		var observations []sim.Time
		var maxEnd sim.Time
		for _, seq := range delays {
			seq := seq
			if len(seq) > 16 {
				seq = seq[:16]
			}
			env.Spawn("p", func(p *sim.Proc) {
				for _, d := range seq {
					p.Sleep(time.Duration(d) * time.Microsecond)
					observations = append(observations, p.Now())
				}
				if p.Now() > maxEnd {
					maxEnd = p.Now()
				}
			})
		}
		end := env.Run()
		prev := sim.Time(0)
		for _, o := range observations {
			if o < prev {
				return false
			}
			prev = o
		}
		return end == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestShardedDeterminismProperty: for any workload of random sleeps plus
// cross-domain sends, the sharded kernel produces bit-identical
// observations (per-domain clock samples, delivery counts, total scheduled
// events, final time) at worker counts 1, 2, 4, and NumCPU, and every
// domain's clock is monotone throughout.
func TestShardedDeterminismProperty(t *testing.T) {
	f := func(delays [][]uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 12 {
			delays = delays[:12]
		}
		doms := len(delays)%4 + 1
		run := func(workers int) (string, bool) {
			sh := sim.NewSharded(doms)
			sh.LimitLookahead(time.Microsecond)
			obs := make([][]sim.Time, doms)
			recv := make([]int, doms)
			for i, seq := range delays {
				if len(seq) > 16 {
					seq = seq[:16]
				}
				d := i % doms
				env := sh.Domain(d)
				env.Spawn("p", func(p *sim.Proc) {
					for j, del := range seq {
						p.Sleep(time.Duration(del) * time.Microsecond)
						obs[d] = append(obs[d], p.Now())
						if j%3 == 0 {
							to := (d + 1) % doms
							sh.Send(p.Env(), to,
								time.Microsecond+time.Duration(del)*time.Nanosecond,
								func() { recv[to]++ })
						}
					}
				})
			}
			sh.Run(workers)
			for _, o := range obs {
				for k := 1; k < len(o); k++ {
					if o[k] < o[k-1] {
						return "", false
					}
				}
			}
			return fmt.Sprintf("%v %v %d %d", obs, recv, sh.Scheduled(), sh.Now()), true
		}
		ref, ok := run(1)
		if !ok {
			return false
		}
		for _, w := range []int{2, 4, runtime.NumCPU()} {
			got, ok := run(w)
			if !ok || got != ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSimChannelConservationProperty: everything sent is received exactly
// once, in FIFO order per channel, regardless of buffering.
func TestSimChannelConservationProperty(t *testing.T) {
	f := func(capacity uint8, count uint8) bool {
		n := int(count%64) + 1
		env := sim.NewEnv()
		ch := sim.NewChan[int](env, int(capacity%8))
		received := make([]int, 0, n)
		env.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				received = append(received, v)
			}
		})
		env.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				ch.Send(p, i)
			}
		})
		env.Run()
		if len(received) != n {
			return false
		}
		for i, v := range received {
			if v != i {
				return false
			}
		}
		return env.LiveProcs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// capOp is one random capability operation.
type capOp struct {
	Grant  bool
	Target uint8
	Obj    uint8
	Perm   uint8
}

// TestCapabilityModelProperty: the distributed capability system agrees
// with a reference map under arbitrary grant/revoke sequences issued by the
// owner, and non-owners can never mutate permissions.
func TestCapabilityModelProperty(t *testing.T) {
	f := func(ops []capOp) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{DPUs: 1})
		shim := xpu.NewShim(env, m)
		cpuOS := localos.New(env, m.PU(0))
		node := shim.AddNode(m.PU(0), cpuOS)
		owner := node.Register(cpuOS.NewDetachedProcess("owner"))
		targets := make([]xpu.XPID, 4)
		for i := range targets {
			targets[i] = node.Register(cpuOS.NewDetachedProcess("t"))
		}
		objs := make([]xpu.ObjID, 4)
		ok := true
		reference := make(map[xpu.XPID]map[xpu.ObjID]xpu.Perm)
		env.Spawn("driver", func(p *sim.Proc) {
			for i := range objs {
				uuid := "obj-" + string(rune('a'+i))
				if _, err := node.FIFOInit(p, owner, uuid, 1); err != nil {
					ok = false
					return
				}
				objs[i] = xpu.ObjID{Kind: "fifo", UUID: uuid}
			}
			for _, op := range ops {
				target := targets[int(op.Target)%len(targets)]
				obj := objs[int(op.Obj)%len(objs)]
				perm := xpu.Perm(op.Perm) & (xpu.PermRead | xpu.PermWrite)
				if perm == 0 {
					perm = xpu.PermRead
				}
				if reference[target] == nil {
					reference[target] = make(map[xpu.ObjID]xpu.Perm)
				}
				if op.Grant {
					if err := node.GrantCap(p, owner, target, obj, perm); err != nil {
						ok = false
						return
					}
					reference[target][obj] |= perm
				} else {
					if err := node.RevokeCap(p, owner, target, obj, perm); err != nil {
						ok = false
						return
					}
					reference[target][obj] &^= perm
				}
				// A non-owner must never be able to grant.
				if err := node.GrantCap(p, target, target, obj, xpu.PermOwner); err == nil {
					ok = false
					return
				}
			}
			// Compare the shim's view with the reference.
			for target, perms := range reference {
				for obj, perm := range perms {
					for _, bit := range []xpu.Perm{xpu.PermRead, xpu.PermWrite} {
						if shim.HasCap(target, obj, bit) != perm.Has(bit) {
							ok = false
							return
						}
					}
				}
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestKeepAliveBoundProperty: for any invocation sequence, a node's warm
// pool never exceeds the configured capacity, and live-instance accounting
// never goes negative.
func TestKeepAliveBoundProperty(t *testing.T) {
	fns := []string{"matmul", "pyaes", "chameleon", "image-resize", "dd"}
	f := func(seq []uint8, capacity uint8) bool {
		capN := int(capacity%6) + 1
		if len(seq) > 24 {
			seq = seq[:24]
		}
		ok := true
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{})
		env.Spawn("driver", func(p *sim.Proc) {
			opts := molecule.DefaultOptions()
			opts.KeepWarmPerPU = capN
			rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
			if err != nil {
				ok = false
				return
			}
			for _, fn := range fns {
				if err := rt.Deploy(p, fn); err != nil {
					ok = false
					return
				}
			}
			for _, s := range seq {
				fn := fns[int(s)%len(fns)]
				if _, err := rt.Invoke(p, fn, molecule.DefaultInvokeOptions()); err != nil {
					ok = false
					return
				}
				if rt.LiveInstances() < 0 || rt.LiveInstances() > capN {
					ok = false
					return
				}
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFPGAResourceAdditivityProperty: image resources grow linearly with
// the instance vector and Fits is monotone (a subset of a fitting vector
// fits).
func TestFPGAResourceAdditivityProperty(t *testing.T) {
	f := func(count uint8) bool {
		n := int(count%40) + 1
		kernels := make([]string, n)
		for i := range kernels {
			kernels[i] = "k"
		}
		img, err := hw.BuildImage("p", kernels)
		if err != nil {
			// Oversized: removing instances must eventually fit.
			return n > 1
		}
		want := hw.WrapperBase()
		for i := 0; i < n; i++ {
			want = want.Add(hw.PerInstance())
		}
		if img.Resources != want {
			return false
		}
		if n > 1 {
			smaller, err := hw.BuildImage("q", kernels[:n-1])
			if err != nil || !smaller.Resources.Fits(hw.F1Resources()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBillingCeilingProperty: every charge bills at least 1ms and exactly
// ceil(duration/1ms) units times the rate.
func TestBillingCeilingProperty(t *testing.T) {
	f := func(durUS uint32, rateC uint8) bool {
		b := molecule.NewBilling()
		d := time.Duration(durUS) * time.Microsecond
		rate := float64(rateC%10) + 0.5
		b.Record("f", hw.CPU, d, rate)
		e := b.Entries()[0]
		if e.BilledMs < 1 {
			return false
		}
		wantMs := int64((d + time.Millisecond - 1) / time.Millisecond)
		if wantMs < 1 {
			wantMs = 1
		}
		return e.BilledMs == wantMs && e.Charge == float64(wantMs)*rate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDAGValidateProperty: for random dependency structures, Validate
// either rejects the graph or returns a complete topological order where
// every node appears after all of its dependencies.
func TestDAGValidateProperty(t *testing.T) {
	f := func(edges []uint16, nNodes uint8) bool {
		n := int(nNodes%12) + 1
		dag := molecule.DAG{Nodes: make([]molecule.DAGNode, n)}
		for i := range dag.Nodes {
			dag.Nodes[i].Fn = "f"
		}
		for _, e := range edges {
			from := int(e>>8) % n
			to := int(e&0xff) % n
			dag.Nodes[to].Deps = append(dag.Nodes[to].Deps, from)
		}
		order, err := dag.Validate()
		if err != nil {
			return true // rejected (cycle or self-dep) is a valid outcome
		}
		if len(order) != n {
			return false
		}
		pos := make(map[int]int, n)
		for i, node := range order {
			pos[node] = i
		}
		for i, node := range dag.Nodes {
			for _, dep := range node.Deps {
				if pos[dep] >= pos[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// runfOp is one random operation against the FPGA sandbox runtime.
type runfOp struct {
	Kind uint8 // create / start / kill / delete / invoke
	A    uint8 // sandbox selector
}

// TestRunFStateMachineProperty: arbitrary op sequences against runf keep a
// reference state machine in agreement — created vectors replace prior
// sandboxes, start only succeeds on live sandboxes, delete never frees the
// fabric, and invoke only works on running, prepared sandboxes.
func TestRunFStateMachineProperty(t *testing.T) {
	f := func(ops []runfOp) bool {
		if len(ops) > 20 {
			ops = ops[:20]
		}
		ok := true
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{FPGAs: 1})
		rf, err := sandbox.NewRunF(m, m.PUsOfKind(hw.FPGA)[0], m.PU(0))
		if err != nil {
			return false
		}
		// Reference: which IDs exist and their state.
		type refState int
		const (
			refMissing refState = iota
			refCreated
			refRunning
			refStopped
			refDeleted
		)
		ref := make(map[string]refState)
		seq := 0
		env.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				id := string(rune('a' + op.A%4))
				switch op.Kind % 5 {
				case 0: // vector create of two sandboxes (replaces everything)
					seq++
					id2 := id + "x"
					if err := rf.Create(p, []sandbox.Spec{
						{ID: id, FuncID: "k" + id}, {ID: id2, FuncID: "k2" + id},
					}); err != nil {
						ok = false
						return
					}
					// Create replaces the whole vector: prior sandboxes
					// disappear from runf's tables entirely.
					for k := range ref {
						delete(ref, k)
					}
					ref[id], ref[id2] = refCreated, refCreated
				case 1: // start
					err := rf.Start(p, []string{id})
					switch ref[id] {
					case refCreated, refRunning, refStopped:
						if err != nil {
							ok = false
							return
						}
						ref[id] = refRunning
					default:
						if err == nil {
							ok = false
							return
						}
					}
				case 2: // kill
					err := rf.Kill(p, []string{id}, 9)
					if (ref[id] == refMissing) != (err != nil) {
						ok = false
						return
					}
					if ref[id] == refRunning {
						ref[id] = refStopped
					}
				case 3: // delete: free, state-only
					before := p.Now()
					err := rf.Delete(p, []string{id})
					if (ref[id] == refMissing) != (err != nil) {
						ok = false
						return
					}
					if p.Now() != before {
						ok = false // delete must be free
						return
					}
					if ref[id] != refMissing {
						ref[id] = refDeleted
					}
				case 4: // invoke
					err := rf.Invoke(p, id, 64, 64, time.Millisecond, sandbox.InvokeOptions{})
					if (ref[id] == refRunning) != (err == nil) {
						ok = false
						return
					}
				}
				// Cross-check reported states.
				for k, want := range ref {
					if want == refMissing {
						continue
					}
					got := sandbox.StateOne(rf, k).State
					expected := map[refState]sandbox.State{
						refCreated: sandbox.StateCreated,
						refRunning: sandbox.StateRunning,
						refStopped: sandbox.StateStopped,
						refDeleted: sandbox.StateDeleted,
					}[want]
					if got != expected {
						ok = false
						return
					}
				}
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
