// Package params centralizes every calibration constant used by the
// simulated substrate, with the paper measurement each value is sourced from.
//
// The reproduction does not try to match the paper's absolute numbers exactly
// (our substrate is a simulator, not the authors' testbed); these constants
// anchor the model so the *shape* of every result — who wins, by what factor,
// where crossovers fall — matches the paper. Each constant names the figure
// or section of "Serverless Computing on Heterogeneous Computers"
// (ASPLOS'22) it was calibrated against.
package params

import "time"

// ---------------------------------------------------------------------------
// Local OS syscall / IPC costs (§5, Fig 7, Fig 8).
// ---------------------------------------------------------------------------

const (
	// FIFOOpCPU is the one-way latency of a local Linux FIFO operation on the
	// host CPU. Fig 8 shows Linux (CPU) around 8us for small messages.
	FIFOOpCPU = 8 * time.Microsecond

	// FIFOOpDPU is the same on the Bluefield-1 DPU's slow ARM cores. Fig 8
	// shows Linux (DPU) around 30us; nIPC-Poll (25us) beats it by bypassing
	// the slow device kernel.
	FIFOOpDPU = 30 * time.Microsecond

	// XPUCallIPCRoundTripCPU is one FIFO round trip between a process and the
	// XPU-Shim on the CPU. §5: "the costs in host CPU is about 20us" for the
	// naive two-round-trip XPUcall, i.e. ~10us per round trip.
	XPUCallIPCRoundTripCPU = 10 * time.Microsecond

	// XPUCallIPCRoundTripDPU is one FIFO round trip on the BF-1 DPU. §5: the
	// naive two-round-trip XPUcall costs ~100us on Bluefield-1, i.e. ~50us
	// per round trip.
	XPUCallIPCRoundTripDPU = 50 * time.Microsecond

	// XPUCallMPSCEnqueue is the cost of posting a request into the shared
	// MPSC queue polled by XPU-Shim (Fig 7-b/c): a couple of cache-line
	// writes plus the poll pickup delay.
	XPUCallMPSCEnqueue = 2 * time.Microsecond

	// XPUCallPollResponse is the cost of the caller polling shared memory
	// for the response (Fig 7-c), replacing the response IPC entirely.
	XPUCallPollResponse = 1 * time.Microsecond

	// XPUCallShimHandling is XPU-Shim's internal request handling time
	// (capability check, object lookup) per XPUcall.
	XPUCallShimHandling = 3 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Interconnect (§3.3, §5, Fig 8, Fig 13).
// ---------------------------------------------------------------------------

const (
	// RDMABaseLatency is the base one-way latency of an RDMA message between
	// CPU and DPU over PCIe. Calibrated so nIPC-Poll lands near 25us for
	// small messages (Fig 8) once queue and polling costs are added.
	RDMABaseLatency = 18 * time.Microsecond

	// RDMABandwidth is the CPU<->DPU RDMA payload bandwidth (100Gbps NIC,
	// PCIe-limited in practice).
	RDMABandwidth = 10e9 // bytes/sec

	// DMABaseLatency is the base latency of a raw DMA transfer between host
	// and FPGA (descriptor setup + doorbell + completion).
	DMABaseLatency = 10 * time.Microsecond

	// FPGACommandLatency is issuing an execute command to the wrapper and
	// receiving its completion interrupt.
	FPGACommandLatency = 15 * time.Microsecond

	// DMABandwidth is host<->FPGA DMA bandwidth (PCIe gen3 x16 practical).
	DMABandwidth = 8e9 // bytes/sec

	// NetworkBaseLatency is the one-way latency of an HTTP request between
	// co-located processes through the kernel network stack plus web
	// framework (Express/Flask) handling. Fig 12: baseline DAG edges are
	// ~2.5-3.5ms on the CPU.
	NetworkBaseLatency = 2800 * time.Microsecond

	// NetworkBandwidth is the loopback/host network bandwidth.
	NetworkBandwidth = 3e9 // bytes/sec

	// NetworkDPUPenalty multiplies the network software-stack cost on the
	// slow BF-1 cores (Fig 12-b: DPU-DPU baseline hops are ~2x CPU ones).
	NetworkDPUPenalty = 2.2

	// ShmHandoffLatency is the cost of passing a message through shared
	// memory between co-located processes (pointer swap + cache transfer).
	ShmHandoffLatency = 2 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Processing units (§6 experimental setup).
// ---------------------------------------------------------------------------

const (
	// CPUSpeedFactor is the normalization anchor: execution cost models are
	// expressed as CPU time, so the CPU factor is 1.
	CPUSpeedFactor = 1.0

	// BF1SpeedFactor scales compute latency on Bluefield-1 (16x 800MHz ARM
	// vs 2.1GHz Xeon). Fig 14c labels are 4-7x the CPU ones; 6.3 matches
	// the per-function ratios closely.
	BF1SpeedFactor = 6.3

	// BF2SpeedFactor scales compute on Bluefield-2 (2.75GHz cores). Fig 14d:
	// 3-4x better than BF-1, near CPU performance.
	BF2SpeedFactor = 1.75

	// HostCPUCores and HostMemory describe the Xeon 8160 host
	// (96 cores, evaluation server).
	HostCPUCores = 96
	HostMemory   = 384 << 30 // bytes
	DPUCores     = 16
	DPUMemory    = 16 << 30
	HostFreqMHz  = 2100
	BF1FreqMHz   = 800
	BF2FreqMHz   = 2750
	FPGACount    = 8 // AWS F1.x16large
)

// ---------------------------------------------------------------------------
// FPGA device (§3.5, §6.4 Fig 10c, Table 4).
// ---------------------------------------------------------------------------

const (
	// FPGAEraseTime: Fig 10c baseline spends most of >20s erasing. Erase +
	// load + sandbox prep = 16.5 + 1.9 + 1.9 = 20.3s.
	FPGAEraseTime = 16500 * time.Millisecond

	// FPGAImageLoadTime is flashing the target image onto the fabric.
	// Fig 10c "No-Erase" = load + sandbox prep = 3.8s.
	FPGAImageLoadTime = 1900 * time.Millisecond

	// FPGASandboxPrep is preparing the software sandbox that fronts a cached
	// FPGA instance. Fig 10c "Warm-image" (image already flushed) = 1.9s.
	FPGASandboxPrep = 1900 * time.Millisecond

	// FPGAWarmSandboxInvoke: with a warmed sandbox, invoking the function
	// (argument transfer + command + result) costs ~53ms (Fig 10c best case,
	// vector multiplication).
	FPGAWarmSandboxInvoke = 53 * time.Millisecond
)

// AWS F1 UltraScale+ totals (Table 4).
const (
	F1TotalLUTs  = 1181768
	F1TotalREGs  = 2364480
	F1TotalBRAMs = 2160
	F1TotalDSPs  = 6840
)

// Per-instance wrapper resource costs, calibrated so a 12-instance vectorized
// image reproduces Table 4 (10.1% LUT, 8.3% REG, 22.5% BRAM, 11.5% DSP) with
// a ~5% LUT base overhead for the wrapper shell itself (§6.4).
const (
	FPGAWrapperBaseLUTs  = 59088 // ~5% of F1 total
	FPGAWrapperBaseREGs  = 98249
	FPGAWrapperBaseBRAMs = 126
	FPGAWrapperBaseDSPs  = 67
	FPGAPerInstLUTs      = 5036 // (119517-59088)/12
	FPGAPerInstREGs      = 8229
	FPGAPerInstBRAMs     = 30
	FPGAPerInstDSPs      = 60
	FPGADRAMBanks        = 4 // DDR banks per F1 FPGA usable by the wrapper
)

// ---------------------------------------------------------------------------
// Container / language runtime startup (§4.2, §6.4, Fig 10a/b, Fig 11a).
// ---------------------------------------------------------------------------

// The cfork constants decompose the Fig 11a breakdown exactly:
//
//	Baseline    = container create + spawn + runtime init + func load
//	            = 17.2 + 2.55 + 62.8 + 3.0                     = 85.55 ms
//	Naive cfork = merge + fork + ns join + cgroup(sem) + expand(x2)
//	              + load + COW faults + connect + container create
//	            = 0.3 + 1.2 + 1.3 + 22.55 + 1.0 + 3.0 + 0.4 + 0.3 + 17.2
//	            = 47.25 ms
//	+FuncContainer (pre-created container, drop create)        = 30.05 ms
//	+Cpuset opt    (cgroup semaphore → mutex, 22.55 → 0.9)     =  8.40 ms
const (
	// ContainerCreateTime is the cost of creating a runc-style container
	// (rootfs mount, namespaces, cgroup). Removed from the cfork path by
	// the pre-initialized FuncContainer optimization.
	ContainerCreateTime = 17200 * time.Microsecond

	// PythonInitTime / NodeInitTime are cold language-runtime initialization
	// costs (interpreter boot + serverless wrapper import) on the CPU.
	PythonInitTime = 62800 * time.Microsecond
	NodeInitTime   = 180 * time.Millisecond

	// ProcessSpawnTime is the OS fork+exec of a fresh program.
	ProcessSpawnTime = 2550 * time.Microsecond

	// FuncLoadTime is loading the function's code and deps into a prepared
	// runtime (generic template → function specialization).
	FuncLoadTime = 3000 * time.Microsecond

	// CforkOSForkTime is the OS-level COW fork of the merged single-thread
	// template process.
	CforkOSForkTime = 1200 * time.Microsecond

	// CforkThreadMergeTime / CforkThreadExpandTime: forkable runtime merging
	// runtime threads pre-fork and re-expanding them post-fork (§4.2),
	// per auxiliary thread.
	CforkThreadMergeTime  = 150 * time.Microsecond
	CforkThreadExpandTime = 250 * time.Microsecond

	// CforkNamespaceJoinTime is re-joining the function container's
	// namespaces after fork.
	CforkNamespaceJoinTime = 1300 * time.Microsecond

	// CgroupCpusetSemaphoreTime is the cgroup cpuset reassignment cost with
	// the stock kernel's semaphore-protected cpuset (Fig 11a "FuncContainer"
	// stage: 30.05ms total), most of which the mutex patch removes.
	CgroupCpusetSemaphoreTime = 22550 * time.Microsecond

	// CgroupCpusetMutexTime is the same operation with the paper's
	// semaphore→mutex kernel patch (Fig 11a "Cpuset opt": 8.40ms total).
	CgroupCpusetMutexTime = 900 * time.Microsecond

	// CforkConnectTime is the forked child establishing its nIPC connection
	// back to Molecule.
	CforkConnectTime = 300 * time.Microsecond

	// CforkCOWFaultPenalty is the per-request copy-on-write page-fault
	// overhead of forked instances vs plainly-booted warm instances
	// (§6.6 warm-boot discussion).
	CforkCOWFaultPenalty = 600 * time.Microsecond

	// WarmDispatchTime is the cost of dispatching a request to an
	// already-warm instance (queueing + FIFO wakeup).
	WarmDispatchTime = 350 * time.Microsecond

	// SnapshotTakeTime serializes a loaded instance's state to a snapshot
	// image (the checkpoint side of Replayable/FireCracker-style startup,
	// Fig 15 design space).
	SnapshotTakeTime = 130 * time.Millisecond

	// SnapshotRestoreTime rehydrates an instance from a snapshot through
	// the page cache — the ~45ms class of Replayable Execution, an order of
	// magnitude above cfork but far below a cold boot.
	SnapshotRestoreTime = 42 * time.Millisecond
)

// DPUStartupPenalty scales container/runtime startup work on BF-1 DPUs
// (Fig 10b baselines are ~6-7x the CPU ones: slow cores + slow eMMC I/O).
const DPUStartupPenalty = 6.5

// BF2StartupPenalty is the same for Bluefield-2 (Fig 14d: near-CPU).
const BF2StartupPenalty = 1.25

// ---------------------------------------------------------------------------
// Function DAG communication (§4.3, Fig 12, Fig 14e).
// ---------------------------------------------------------------------------

const (
	// DAGDispatchCPU is the language-runtime work per DAG hop (event
	// serialization, callback scheduling) on the host CPU. Together with the
	// FIFO/nIPC transport it forms Molecule's ~0.2ms hop (Fig 12-a).
	DAGDispatchCPU = 180 * time.Microsecond

	// DAGDispatchDPU is the same on BF-1 cores (Fig 12-b: Molecule's DPU
	// hops are ~0.4-0.6ms).
	DAGDispatchDPU = 420 * time.Microsecond

	// FlaskHopPenalty scales the baseline network edge for Python chains:
	// Flask's per-request handling is heavier than Express's (Fig 14e:
	// MapReduce's baseline hops are ~4ms vs Alexa's ~2.8ms).
	FlaskHopPenalty = 4.0 / 2.8

	// ExecutorCommandOverhead is the control-plane cost of sending a sandbox
	// command (create/start/...) to an executor on a neighbor PU and
	// receiving its completion, beyond the raw nIPC transfer. Fig 10a/b:
	// a remote cfork adds "about 1-3 ms".
	ExecutorCommandOverhead = 1500 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Page/memory model (Fig 11b/c).
// ---------------------------------------------------------------------------

const (
	// PageSize is the simulated page size.
	PageSize = 4096

	// PythonRuntimePages is the resident footprint of an idle forkable
	// Python runtime (template): ~12MB (Fig 11b baseline RSS floor).
	PythonRuntimePages = (12 << 20) / PageSize

	// NodeRuntimePages is the same for Node.js (~30MB).
	NodeRuntimePages = (30 << 20) / PageSize

	// FuncPrivatePages is the per-instance private working set a function
	// dirties during load + execution (~4MB).
	FuncPrivatePages = (4 << 20) / PageSize

	// TemplateSharedFraction is the fraction of template pages that remain
	// shared (never written) in forked children. Calibrated to Fig 11c's
	// 34% PSS saving at 16 instances.
	TemplateSharedFraction = 0.48
)

// ---------------------------------------------------------------------------
// Zygote forest (package-aware cfork templates — SOCK/Forklift lineage).
// These extend the Fig 11a model: dependency import decomposes per package
// (catalog in internal/lang/packages.go), and a fitted tree of specialized
// templates lets a cold start skip the imports its ancestor already ran.
// ---------------------------------------------------------------------------

const (
	// ZygoteBudgetMB caps the summed *residual* (incremental, unshared)
	// pages of specialized templates per (runtime, PU). The Python catalog
	// totals ~71MB; 48MB forces the fitter to choose.
	ZygoteBudgetMB = 48

	// ZygoteFitInterval is how many observed cold starts trigger one
	// background fit round.
	ZygoteFitInterval = 16

	// ZygoteMinHits is the observed-demand floor below which a candidate
	// package set is not worth a template.
	ZygoteMinHits = 3

	// ZygoteMaxGrowPerFit bounds how many templates one fit round boots,
	// keeping each round's background work small and incremental.
	ZygoteMaxGrowPerFit = 4
)

// ---------------------------------------------------------------------------
// Commercial baselines (Fig 9). Closed platforms modeled by their reported
// latency; ratios in §6.3: Molecule 37-46x startup, 68-300x comms better;
// Molecule-homo 5-6x startup, 4-19x comms better.
// ---------------------------------------------------------------------------

const (
	AWSLambdaStartup  = 1150 * time.Millisecond
	OpenWhiskStartup  = 1390 * time.Millisecond
	AWSLambdaStepComm = 65 * time.Millisecond // step-function hop
	OpenWhiskComm     = 16 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Function density (Fig 2a).
// ---------------------------------------------------------------------------

const (
	// DensityInstanceMemory is the per-instance memory reservation of the
	// Python image-processing function used in the density test. The host
	// supports 1000 concurrent instances (CPU resources bound), each DPU
	// adds ~256 (Fig 2a: 1000 → 1256 → 1512).
	DensityCPUInstances    = 1000
	DensityPerDPUInstances = 256
)
