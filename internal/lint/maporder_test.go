package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder,
		linttest.Package{Path: "repro/internal/obs", Dir: "testdata/maporder/obs"})
}

func TestMapOrderSkipsNonReportLayers(t *testing.T) {
	linttest.Run(t, lint.MapOrder,
		linttest.Package{Path: "repro/internal/mem", Dir: "testdata/maporder/mem"})
}
