package localos

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

type failingForks struct{ err error }

func (f failingForks) ForkFault() error { return f.err }

func TestForkFault(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{})
	os := New(env, m.PU(0))
	injected := errors.New("boom")
	env.Spawn("test", func(p *sim.Proc) {
		parent := os.Spawn(p, "parent")
		os.Faults = failingForks{err: injected}
		start := p.Now()
		if _, err := os.Fork(p, parent, "child"); !errors.Is(err, injected) {
			t.Errorf("Fork err = %v, want injected fault", err)
		}
		if p.Now() != start {
			t.Error("failed fork charged virtual time")
		}
		if got := os.NumProcesses(); got != 1 {
			t.Errorf("failed fork left %d processes, want 1", got)
		}
		os.Faults = failingForks{} // nil error: fork succeeds again
		if _, err := os.Fork(p, parent, "child"); err != nil {
			t.Errorf("fork with inert injector: %v", err)
		}
	})
	env.Run()
}
