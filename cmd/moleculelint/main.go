// moleculelint runs the moleculelint analyzer suite (internal/lint): five
// go/analysis analyzers that machine-check this repository's determinism,
// layering, and zero-allocation invariants.
//
// Two modes:
//
//	go vet -vettool=$(which moleculelint) ./...   # unitchecker protocol
//	moleculelint [-json] [packages]               # standalone; default ./...
//
// Standalone mode re-executes itself under `go vet -vettool`, so both modes
// analyze packages exactly as the build does (per package, with full type
// information). -json forwards go vet's machine-readable diagnostic output
// for tooling consumers. The exit status is non-zero when any analyzer
// reports a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	// go vet drives the unitchecker protocol: -flags and -V=full probe
	// queries, then one invocation per package with a *.cfg argument.
	if len(args) > 0 && (args[0] == "-flags" || strings.HasPrefix(args[0], "-V") || strings.HasSuffix(args[len(args)-1], ".cfg")) {
		unitchecker.Main(lint.Analyzers...) // does not return
	}

	fs := flag.NewFlagSet("moleculelint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (go vet -json format)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: moleculelint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "moleculelint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs = append(vetArgs, patterns...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "moleculelint: go vet: %v\n", err)
		os.Exit(2)
	}
}
