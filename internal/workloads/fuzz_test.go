package workloads

import (
	"strings"
	"testing"
)

// FuzzWordCount: splitting into any shard count and reducing must conserve
// the total word count.
func FuzzWordCount(f *testing.F) {
	f.Add("hello world hello", 2)
	f.Add("", 3)
	f.Add("a", 0)
	f.Fuzz(func(t *testing.T, text string, n int) {
		if n < 0 {
			n = -n
		}
		n = n%8 + 1
		shards := SplitText(text, n)
		parts := make([]map[string]int, len(shards))
		for i, s := range shards {
			parts[i] = MapWordCount(s)
		}
		total := 0
		for _, c := range ReduceWordCounts(parts) {
			total += c
		}
		direct := 0
		for _, c := range MapWordCount(strings.Join(shards, " ")) {
			direct += c
		}
		if total != direct {
			t.Errorf("split/map/reduce lost words: %d vs %d", total, direct)
		}
	})
}

// FuzzLoadJSON: arbitrary bytes must never panic the loader, and a failed
// load must register nothing.
func FuzzLoadJSON(f *testing.F) {
	f.Add([]byte(`[{"name":"x","exec_us":100}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[{"name":"y","exec_us":-5}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRegistry()
		before := len(r.Names())
		if err := r.LoadJSON(data); err != nil {
			if len(r.Names()) != before {
				t.Error("failed load registered functions")
			}
		}
	})
}
