package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// ReleasePath walks the control-flow graph from every acquire of a
// refcounted or pooled resource (the pairings in ReleaseTable) and checks
// the discipline the PR 8 InvokeChain leak and the PR 9 AddressSpace
// double-release both violated:
//
//   - every path from the acquire must reach a release (or transfer
//     ownership: return the resource, store it into a composite literal,
//     or pass the acquire result directly to another call);
//   - a resource stored into a pre-existing container (insts[i] = inst)
//     must have its cleanup defer registered BEFORE the store — the
//     defer-after-acquire-loop shape leaks every stored instance when a
//     later iteration fails;
//   - no path may release the same resource twice.
//
// The walk prunes the acquire's own error branch (`if err != nil` after the
// acquire: nothing was acquired there) until the error variable is
// reassigned, and treats a class-matching `defer` as covering every
// subsequent exit. Closures capturing the resource, aliases, and
// address-taking are conservatively treated as ownership transfers — the
// analyzer stops tracking rather than guess.
//
// Sites where the pairing is genuinely non-local (a density experiment that
// holds instances for the run's lifetime, a fanout released in a later
// batch) carry a //lint:released <reason> waiver on the acquire line.
var ReleasePath = &analysis.Analyzer{
	Name:     "releasepath",
	Doc:      "acquired refcounted/pooled resources must be released on every path, with the defer registered before fallible steps",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runReleasePath,
}

// methodRef resolves a call to ("pkgpath.Type", method). ok is false for
// non-method calls.
func methodRef(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), fn.Name(), true
}

// acquirePair returns the table entry a call acquires under, or nil.
func acquirePair(pass *analysis.Pass, call *ast.CallExpr) *ReleasePair {
	recv, method, ok := methodRef(pass, call)
	if !ok {
		return nil
	}
	for i := range ReleaseTable {
		p := &ReleaseTable[i]
		if p.Acquire.Recv == recv && p.Acquire.Method == method {
			return p
		}
	}
	return nil
}

// releaseRefFor returns the matching release entry of pair for a call, or
// nil.
func releaseRefFor(pass *analysis.Pass, pair *ReleasePair, call *ast.CallExpr) *releaseRef {
	recv, method, ok := methodRef(pass, call)
	if !ok {
		return nil
	}
	for i := range pair.Releases {
		r := &pair.Releases[i]
		if r.Recv == recv && r.Method == method {
			return r
		}
	}
	return nil
}

// identVar resolves an identifier to the variable it uses or defines.
func identVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// rpEvent is one thing the path walk reacts to, in block order.
type rpKind uint8

const (
	rpAcquire rpKind = iota // the tracked acquire itself (re-entry = rebind, stop)
	rpRelease               // release of the tracked resource
	rpDefer                 // defer covering this resource class
	rpStore                 // tracked var stored into a pre-existing container
	rpTransfer              // ownership moved: alias, composite literal, &v, closure capture
	rpErrKill               // the acquire's error variable was reassigned
	rpReturn                // return statement
)

type rpEvent struct {
	kind     rpKind
	pos      token.Pos
	mentions bool // rpReturn: the results mention the tracked var
}

// rpSite is one tracked acquire within one function.
type rpSite struct {
	pair   *ReleasePair
	call   *ast.CallExpr
	bind   ast.Stmt // statement binding the result (nil for pin-style)
	resVar *types.Var
	errVar *types.Var
}

// collectEvents extracts the site's events from one CFG block node.
// Closure bodies are not descended into except to look for the tracked
// variable (capture = transfer); defers are classified whole.
func (s *rpSite) collectEvents(pass *analysis.Pass, n ast.Node, out *[]rpEvent) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if s.deferCovers(pass, n) {
			*out = append(*out, rpEvent{kind: rpDefer, pos: n.Pos()})
		} else if s.mentionsVar(pass, n.Call) {
			*out = append(*out, rpEvent{kind: rpTransfer, pos: n.Pos()})
		}
		return
	case *ast.ReturnStmt:
		ev := rpEvent{kind: rpReturn, pos: n.Pos()}
		for _, r := range n.Results {
			if s.mentionsVar(pass, r) {
				ev.mentions = true
			}
		}
		*out = append(*out, ev)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt, *ast.ReturnStmt:
			s.collectEvents(pass, m, out)
			return false
		case *ast.FuncLit:
			// A closure capturing the resource escapes our tracking.
			if s.mentionsVar(pass, m.Body) {
				*out = append(*out, rpEvent{kind: rpTransfer, pos: m.Pos()})
			}
			return false
		case *ast.CallExpr:
			if m == s.call {
				*out = append(*out, rpEvent{kind: rpAcquire, pos: m.Pos()})
				return false
			}
			if ref := releaseRefFor(pass, s.pair, m); ref != nil && s.releaseTarget(pass, m, ref) {
				*out = append(*out, rpEvent{kind: rpRelease, pos: m.Pos()})
				return false
			}
		case *ast.AssignStmt:
			if m == s.bind {
				*out = append(*out, rpEvent{kind: rpAcquire, pos: m.Pos()})
				return false
			}
			s.collectAssign(pass, m, out)
			return false
		case *ast.UnaryExpr:
			if m.Op == token.AND && identVar(pass, ast.Unparen(m.X)) == s.resVar {
				*out = append(*out, rpEvent{kind: rpTransfer, pos: m.Pos()})
				return false
			}
		case *ast.CompositeLit:
			if s.compositeStoresVar(pass, m) {
				*out = append(*out, rpEvent{kind: rpTransfer, pos: m.Pos()})
				return false
			}
		}
		return true
	})
}

// compositeStoresVar reports whether a composite literal stores the tracked
// variable itself (or its address) as an element — ownership moving into
// the new value. Expressions merely derived from it (inst.node.pu.ID) are
// reads, not transfers.
func (s *rpSite) compositeStoresVar(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		e := elt
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if identVar(pass, e) == s.resVar {
			return true
		}
		if nested, ok := e.(*ast.CompositeLit); ok && s.compositeStoresVar(pass, nested) {
			return true
		}
	}
	return false
}

// collectAssign classifies an assignment's events: stores of the tracked
// var into containers, aliases, and error-variable reassignment — then
// descends into the RHS for nested calls.
func (s *rpSite) collectAssign(pass *analysis.Pass, m *ast.AssignStmt, out *[]rpEvent) {
	for i, rhs := range m.Rhs {
		// Nested events (a release call in the RHS, a composite literal).
		ast.Inspect(rhs, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if n == s.call {
					*out = append(*out, rpEvent{kind: rpAcquire, pos: n.Pos()})
					return false
				}
				if ref := releaseRefFor(pass, s.pair, n); ref != nil && s.releaseTarget(pass, n, ref) {
					*out = append(*out, rpEvent{kind: rpRelease, pos: n.Pos()})
					return false
				}
			case *ast.FuncLit:
				if s.mentionsVar(pass, n.Body) {
					*out = append(*out, rpEvent{kind: rpTransfer, pos: n.Pos()})
				}
				return false
			case *ast.CompositeLit:
				if s.compositeStoresVar(pass, n) {
					*out = append(*out, rpEvent{kind: rpTransfer, pos: n.Pos()})
				}
				return false
			}
			return true
		})
		if identVar(pass, rhs) == s.resVar && i < len(m.Lhs) {
			switch m.Lhs[i].(type) {
			case *ast.Ident:
				*out = append(*out, rpEvent{kind: rpTransfer, pos: m.Pos()}) // alias
			case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
				*out = append(*out, rpEvent{kind: rpStore, pos: m.Pos()})
			}
		}
	}
	if s.errVar != nil {
		for _, lhs := range m.Lhs {
			if identVar(pass, lhs) == s.errVar {
				*out = append(*out, rpEvent{kind: rpErrKill, pos: m.Pos()})
			}
		}
	}
}

// releaseTarget reports whether a release-ref call disposes the tracked var.
func (s *rpSite) releaseTarget(pass *analysis.Pass, call *ast.CallExpr, ref *releaseRef) bool {
	if ref.Arg >= 0 {
		return ref.Arg < len(call.Args) && identVar(pass, call.Args[ref.Arg]) == s.resVar
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && identVar(pass, sel.X) == s.resVar
}

// deferCovers reports whether a defer releases this resource class: a
// direct deferred release call, or a deferred closure whose body contains
// one (the InvokeChain cleanup-loop shape — the loop variable differs from
// the tracked var, so the match is by class, not identity).
func (s *rpSite) deferCovers(pass *analysis.Pass, d *ast.DeferStmt) bool {
	if releaseRefFor(pass, s.pair, d.Call) != nil {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	covers := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && releaseRefFor(pass, s.pair, call) != nil {
			covers = true
		}
		return !covers
	})
	return covers
}

// mentionsVar reports whether the tracked variable appears anywhere in n.
func (s *rpSite) mentionsVar(pass *analysis.Pass, n ast.Node) bool {
	if s.resVar == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == s.resVar {
			found = true
		}
		return !found
	})
	return found
}

// panicky reports whether a no-successor block that lacks a return ends the
// program rather than the function: panic, Fatal*, Exit. Leaks are not
// reported on crash paths.
func panicky(pass *analysis.Pass, b *cfg.Block) bool {
	for _, n := range b.Nodes {
		stop := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					stop = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fatal") || name == "Exit" || name == "Goexit" {
					stop = true
				}
			}
			return !stop
		})
		if stop {
			return true
		}
	}
	return false
}

// rpState is one DFS configuration of the path walk.
type rpState struct {
	block   int32
	ev      int
	held    bool
	armed   bool
	errLive bool
}

// maxStates bounds the walk per acquire site; real functions stay far
// below it, and hitting the cap silently under-reports rather than hangs.
const maxStates = 20000

// checkSite walks every path from one acquire site.
func checkSite(pass *analysis.Pass, g *cfg.CFG, site *rpSite, report func(pos token.Pos, format string, args ...interface{})) {
	// Per-block event lists for this site.
	events := make([][]rpEvent, len(g.Blocks))
	start := rpState{block: -1}
	for bi, b := range g.Blocks {
		for _, n := range b.Nodes {
			site.collectEvents(pass, n, &events[bi])
		}
		for ei, ev := range events[bi] {
			if ev.kind == rpAcquire && ev.pos == site.acquirePos() {
				start = rpState{block: int32(bi), ev: ei + 1, held: true, errLive: site.errVar != nil}
			}
		}
	}
	if start.block < 0 {
		return // acquire in dead code or a position the CFG does not carry
	}
	// A class defer lexically before the acquire is treated as already
	// armed: the straight-line prefix registered the cleanup first (the
	// fixed InvokeChain shape).
	for _, evs := range events {
		for _, ev := range evs {
			if ev.kind == rpDefer && ev.pos < site.acquirePos() {
				start.armed = true
			}
		}
	}
	acqPosn := pass.Fset.Position(site.acquirePos())

	visited := map[rpState]bool{}
	stack := []rpState{start}
	for len(stack) > 0 && len(visited) < maxStates {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[st] {
			continue
		}
		visited[st] = true
		b := g.Blocks[st.block]
		evs := events[st.block]
		terminal := false
		for i := st.ev; i < len(evs) && !terminal; i++ {
			ev := evs[i]
			switch ev.kind {
			case rpAcquire:
				terminal = true // back edge re-binds the variable
			case rpRelease:
				if !st.held {
					report(ev.pos,
						"releasepath: %s %s released twice on a path from the acquire at %s (the evict-vs-fork-error double-release shape); make exactly one owner responsible",
						site.pair.Class, site.varName(), acqPosn)
					terminal = true
					break
				}
				st.held = false
			case rpDefer:
				st.armed = true
			case rpStore:
				if st.held && !st.armed {
					report(ev.pos,
						"releasepath: %s %s stored into a container before its cleanup defer is registered — a later acquire error leaks every stored instance (the InvokeChain defer-after-acquire shape); register the defer before the loop",
						site.pair.Class, site.varName())
				}
				terminal = true // ownership now lives in the container
			case rpTransfer:
				terminal = true
			case rpErrKill:
				st.errLive = false
			case rpReturn:
				if st.held && !st.armed && !ev.mentions {
					report(site.acquirePos(),
						"releasepath: %s %s acquired here can reach the return at %s without being released; release on every path or register the release defer before the first fallible step",
						site.pair.Class, site.varName(), pass.Fset.Position(ev.pos))
				}
				terminal = true
			}
		}
		if terminal {
			continue
		}
		if len(b.Succs) == 0 {
			if st.held && !st.armed && !panicky(pass, b) {
				report(site.acquirePos(),
					"releasepath: %s %s acquired here can reach the end of the function without being released; release on every path or register the release defer before the first fallible step",
					site.pair.Class, site.varName())
			}
			continue
		}
		skip := -1
		if st.errLive && len(b.Succs) == 2 && len(b.Nodes) > 0 {
			if cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr); ok {
				if bin, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok {
					if errNilCompare(pass, bin, site.errVar) {
						if bin.Op == token.NEQ {
							skip = 0 // err != nil: nothing was acquired on the true branch
						} else if bin.Op == token.EQL {
							skip = 1
						}
					}
				}
			}
		}
		for si, succ := range b.Succs {
			if si == skip {
				continue
			}
			stack = append(stack, rpState{block: succ.Index, ev: 0, held: st.held, armed: st.armed, errLive: st.errLive})
		}
	}
}

// errNilCompare matches `errVar ==/!= nil` in either operand order.
func errNilCompare(pass *analysis.Pass, bin *ast.BinaryExpr, errVar *types.Var) bool {
	if errVar == nil || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	return (identVar(pass, x) == errVar && isNil(y)) || (identVar(pass, y) == errVar && isNil(x))
}

func (s *rpSite) acquirePos() token.Pos {
	if s.bind != nil {
		return s.bind.Pos()
	}
	return s.call.Pos()
}

func (s *rpSite) varName() string {
	if s.resVar != nil {
		return "\"" + s.resVar.Name() + "\""
	}
	return "result"
}

// innermostFuncCFG finds the function (decl or literal) immediately
// enclosing the call on the inspector stack and returns its CFG.
func innermostFuncCFG(cfgs *ctrlflow.CFGs, stack []ast.Node) *cfg.CFG {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			if f.Body == nil {
				return nil
			}
			return cfgs.FuncDecl(f)
		case *ast.FuncLit:
			return cfgs.FuncLit(f)
		}
	}
	return nil
}

func runReleasePath(pass *analysis.Pass) (interface{}, error) {
	waivers := collectWaivers(pass, releasedMarker)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	reported := map[string]bool{}
	report := func(pos token.Pos, format string, args ...interface{}) {
		key := pass.Fset.Position(pos).String() + "|" + format
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, format, args...)
	}
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		pair := acquirePair(pass, call)
		if pair == nil {
			return true
		}
		posn := pass.Fset.Position(call.Pos())
		if isTestFile(pass, posn.Filename) {
			return true
		}
		if reason, found := waivers.lookup(posn.Filename, posn.Line); found {
			if reason == "" {
				waivers.reportBare(pass, call)
			}
			return true
		}
		site := classifyAcquire(pass, pair, call, stack, report)
		if site == nil {
			return true
		}
		g := innermostFuncCFG(cfgs, stack[:len(stack)-1])
		if g == nil {
			return true
		}
		checkSite(pass, g, site, report)
		return true
	})
	waivers.reportStale(pass, "tracked acquire")
	return nil, nil
}

// classifyAcquire determines how the acquire's resource is bound, reporting
// binding-level violations (discarded result) directly. It returns nil when
// the site needs no path walk: ownership transferred at the call itself, or
// nothing trackable.
func classifyAcquire(pass *analysis.Pass, pair *ReleasePair, call *ast.CallExpr, stack []ast.Node, report func(pos token.Pos, format string, args ...interface{})) *rpSite {
	parent := ast.Node(nil)
	if len(stack) >= 2 {
		parent = stack[len(stack)-2]
	}
	if pair.Result < 0 {
		// Pin-style: the resource is an argument of the call.
		if pair.PinArg >= len(call.Args) {
			return nil
		}
		v := identVar(pass, call.Args[pair.PinArg])
		if v == nil {
			report(call.Pos(),
				"releasepath: %s pinned via a non-variable expression; pin a named variable so the release pairing is checkable",
				pair.Class)
			return nil
		}
		return &rpSite{pair: pair, call: call, resVar: v}
	}
	assign, ok := parent.(*ast.AssignStmt)
	if !ok {
		if _, isExpr := parent.(*ast.ExprStmt); isExpr {
			report(call.Pos(),
				"releasepath: %s result of %s.%s discarded — the acquired resource can never be released",
				pair.Class, pair.Acquire.Recv, pair.Acquire.Method)
		}
		// Direct use as an argument, composite-literal value, or return
		// expression: ownership transfers with the value.
		return nil
	}
	if len(assign.Rhs) != 1 || assign.Rhs[0] != call || pair.Result >= len(assign.Lhs) {
		return nil
	}
	lhs := assign.Lhs[pair.Result]
	if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
		report(call.Pos(),
			"releasepath: %s result of %s.%s discarded — the acquired resource can never be released",
			pair.Class, pair.Acquire.Recv, pair.Acquire.Method)
		return nil
	}
	v := identVar(pass, lhs)
	if v == nil {
		return nil // bound straight into a container: tracked no further
	}
	site := &rpSite{pair: pair, call: call, bind: assign, resVar: v}
	// The acquire's own error result, when bound, prunes the error branch.
	if sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok && sig.Results().Len() == len(assign.Lhs) {
		last := sig.Results().Len() - 1
		if last >= 0 && types.Identical(sig.Results().At(last).Type(), errorType) && last != pair.Result {
			site.errVar = identVar(pass, assign.Lhs[last])
		}
	}
	return site
}
