// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per experiment id) and additionally
// report the headline *virtual* latencies as custom metrics: since the
// substrate is a discrete-event simulator, wall-clock ns/op measures harness
// cost, while "vlat-ms" metrics carry the simulated latencies the paper
// reports.
package repro

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tables := e.Run(); len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkFig2aDensity(b *testing.B)       { benchExperiment(b, "fig2a") }
func BenchmarkFig2bMatrixFPGA(b *testing.B)    { benchExperiment(b, "fig2b") }
func BenchmarkFig8NIPC(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9Commercial(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10StartupCPUDPU(b *testing.B) { benchExperiment(b, "fig10ab") }
func BenchmarkFig10cFPGAStartup(b *testing.B)  { benchExperiment(b, "fig10c") }
func BenchmarkTable4FPGAUtil(b *testing.B)     { benchExperiment(b, "tab4") }
func BenchmarkFig11aCforkBreakdown(b *testing.B) {
	benchExperiment(b, "fig11a")
}
func BenchmarkFig11bcMemory(b *testing.B)  { benchExperiment(b, "fig11bc") }
func BenchmarkFig12DAGComm(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13FPGAChain(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14aColdCPU(b *testing.B)  { benchExperiment(b, "fig14a") }
func BenchmarkFig14bWarm(b *testing.B)     { benchExperiment(b, "fig14b") }
func BenchmarkFig14cColdBF1(b *testing.B)  { benchExperiment(b, "fig14c") }
func BenchmarkFig14dColdBF2(b *testing.B)  { benchExperiment(b, "fig14d") }
func BenchmarkFig14eChained(b *testing.B)  { benchExperiment(b, "fig14e") }
func BenchmarkFig14fGzip(b *testing.B)     { benchExperiment(b, "fig14f") }
func BenchmarkFig14gAML(b *testing.B)      { benchExperiment(b, "fig14g") }
func BenchmarkFig14hMatrix(b *testing.B)   { benchExperiment(b, "fig14h") }
func BenchmarkTable5Generality(b *testing.B) {
	benchExperiment(b, "tab5")
}

// --- headline virtual-latency benchmarks -------------------------------------

// vms converts a virtual duration to milliseconds for ReportMetric.
func vms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkCforkColdStart reports Molecule's cfork cold-start latency
// (Fig 11a "+Cpuset opt" and the <10ms headline claim).
func BenchmarkCforkColdStart(b *testing.B) {
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{})
		env.Spawn("driver", func(p *sim.Proc) {
			os := localos.New(env, m.PU(0))
			spec, _ := lang.SpecFor(lang.Python)
			tmpl := lang.BootCold(p, os, spec, "tmpl", true)
			start := p.Now()
			if _, err := lang.Cfork(p, tmpl, "f", lang.CforkOptions{
				PreparedContainer: true, CpusetMutexPatch: true,
			}); err != nil {
				b.Error(err)
			}
			lat = p.Now().Sub(start)
		})
		env.Run()
	}
	b.ReportMetric(vms(lat), "vlat-ms")
}

// BenchmarkWarmInvoke reports Molecule's warm-start dispatch+exec latency.
func BenchmarkWarmInvoke(b *testing.B) {
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{})
		env.Spawn("driver", func(p *sim.Proc) {
			rt, err := molecule.New(p, m, workloads.NewRegistry(), molecule.DefaultOptions())
			if err != nil {
				b.Error(err)
				return
			}
			rt.Deploy(p, "matmul")
			rt.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
			res, err := rt.Invoke(p, "matmul", molecule.DefaultInvokeOptions())
			if err != nil {
				b.Error(err)
				return
			}
			lat = res.Total
		})
		env.Run()
	}
	b.ReportMetric(vms(lat), "vlat-ms")
}

// BenchmarkNIPCWrite reports the nIPC-Poll xfifo_write latency from a DPU
// (the Fig 8 ~25us headline).
func BenchmarkNIPCWrite(b *testing.B) {
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{DPUs: 1})
		shim := xpu.NewShim(env, m)
		cpuOS := localos.New(env, m.PU(0))
		dpuOS := localos.New(env, m.PU(1))
		cn := shim.AddNode(m.PU(0), cpuOS)
		dn := shim.AddNode(m.PU(1), dpuOS)
		cpuX := cn.Register(cpuOS.NewDetachedProcess("r"))
		dpuX := dn.Register(dpuOS.NewDetachedProcess("w"))
		env.Spawn("reader", func(p *sim.Proc) {
			fd, err := cn.FIFOInit(p, cpuX, "f", 4)
			if err != nil {
				b.Error(err)
				return
			}
			cn.GrantCap(p, cpuX, dpuX, xpu.ObjID{Kind: "fifo", UUID: "f"}, xpu.PermWrite)
			fd.Read(p)
		})
		env.SpawnAfter(time.Millisecond, "writer", func(p *sim.Proc) {
			fd, err := dn.FIFOConnect(p, dpuX, "f")
			if err != nil {
				b.Error(err)
				return
			}
			start := p.Now()
			fd.Write(p, localos.Message{Payload: make([]byte, 64)})
			lat = p.Now().Sub(start)
		})
		env.Run()
	}
	b.ReportMetric(float64(lat)/1e3, "vlat-us")
}

// BenchmarkAlexaChainWarm reports the warm Molecule Alexa chain end-to-end
// latency (Fig 14e).
func BenchmarkAlexaChainWarm(b *testing.B) {
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{})
		env.Spawn("driver", func(p *sim.Proc) {
			rt, err := molecule.New(p, m, workloads.NewRegistry(), molecule.DefaultOptions())
			if err != nil {
				b.Error(err)
				return
			}
			chain := workloads.AlexaChain()
			for _, fn := range chain {
				rt.Deploy(p, fn)
			}
			rt.InvokeChain(p, chain, molecule.ChainOptions{})
			res, err := rt.InvokeChain(p, chain, molecule.ChainOptions{})
			if err != nil {
				b.Error(err)
				return
			}
			lat = res.Total
		})
		env.Run()
	}
	b.ReportMetric(vms(lat), "vlat-ms")
}

// BenchmarkSimKernelThroughput measures raw discrete-event kernel
// throughput: events processed per wall second.
func BenchmarkSimKernelThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		ch := sim.NewChan[int](env, 0)
		const msgs = 1000
		env.Spawn("recv", func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				ch.Recv(p)
			}
		})
		env.Spawn("send", func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				ch.Send(p, j)
			}
		})
		env.Run()
	}
}
