package lang_test

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/sim"
)

// cfork produces a loaded function instance from a template in single-digit
// milliseconds, sharing the template's memory copy-on-write.
func ExampleCfork() {
	env := sim.NewEnv()
	pu := &hw.PU{Kind: hw.CPU, Name: "host", Speed: 1, StartupFactor: 1}
	os := localos.New(env, pu)

	env.Spawn("runtime", func(p *sim.Proc) {
		spec, _ := lang.SpecFor(lang.Python)
		tmpl := lang.BootCold(p, os, spec, "python-template", true)

		start := p.Now()
		child, err := lang.Cfork(p, tmpl, "image-processing", lang.CforkOptions{
			PreparedContainer: true,
			CpusetMutexPatch:  true,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("cfork took %v; child shares %d pages with the template\n",
			p.Now().Sub(start), child.Proc.AS.SharedPages())
	})
	env.Run()
	// Output:
	// cfork took 8.39925ms; child shares 1475 pages with the template
}
