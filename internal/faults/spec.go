package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

// ParseSpec loads a comma-separated fault-plan specification into pl — the
// form the CLIs accept on the command line. Directives:
//
//	crash=PU@START+DUR        crash PU over [START, START+DUR); omit +DUR for forever
//	partition=A-B@START+DUR   drop all transfers on link A<->B over the window
//	inflate=A-B*F@START+DUR   stretch link A<->B latency by factor F over the window
//	create-fail=P             sandbox creation fails with probability P
//	fork-fail=P               OS fork fails with probability P
//	handler-fail=P            handler invocation crashes with probability P
//
// Times and durations use Go duration syntax ("1s", "250ms"). Example:
//
//	crash=1@2s+500ms,inflate=0-1*4@1s+3s,handler-fail=0.02
func ParseSpec(pl *Plan, spec string) error {
	for _, raw := range strings.Split(spec, ",") {
		d := strings.TrimSpace(raw)
		if d == "" {
			continue
		}
		key, val, ok := strings.Cut(d, "=")
		if !ok {
			return fmt.Errorf("faults: directive %q: want key=value", d)
		}
		var err error
		switch key {
		case "crash":
			err = parseCrash(pl, val)
		case "partition":
			err = parseLink(pl, val, true)
		case "inflate":
			err = parseLink(pl, val, false)
		case "create-fail":
			pl.CreateFailProb, err = parseProb(val)
		case "fork-fail":
			pl.ForkFailProb, err = parseProb(val)
		case "handler-fail":
			pl.HandlerFailProb, err = parseProb(val)
		default:
			return fmt.Errorf("faults: unknown directive %q", key)
		}
		if err != nil {
			return fmt.Errorf("faults: directive %q: %w", d, err)
		}
	}
	return nil
}

// parseWindow parses "START" or "START+DUR" into a Window.
func parseWindow(s string) (Window, error) {
	start, durStr, hasDur := strings.Cut(s, "+")
	from, err := time.ParseDuration(start)
	if err != nil {
		return Window{}, fmt.Errorf("bad start time %q: %w", start, err)
	}
	w := Window{From: sim.Time(from)}
	if hasDur {
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return Window{}, fmt.Errorf("bad duration %q: %w", durStr, err)
		}
		w.To = w.From.After(dur)
	}
	return w, nil
}

// parseCrash parses "PU@START[+DUR]".
func parseCrash(pl *Plan, val string) error {
	puStr, winStr, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want PU@START[+DUR]")
	}
	pu, err := strconv.Atoi(puStr)
	if err != nil {
		return fmt.Errorf("bad PU id %q: %w", puStr, err)
	}
	w, err := parseWindow(winStr)
	if err != nil {
		return err
	}
	pl.CrashPU(hw.PUID(pu), w.From, w.To)
	return nil
}

// parseLink parses "A-B@START[+DUR]" (partition) or "A-B*F@START[+DUR]"
// (inflate).
func parseLink(pl *Plan, val string, partition bool) error {
	endStr, winStr, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want A-B@START[+DUR]")
	}
	factor := 1.0
	if !partition {
		pair, fStr, ok := strings.Cut(endStr, "*")
		if !ok {
			return fmt.Errorf("want A-B*FACTOR@START[+DUR]")
		}
		f, err := strconv.ParseFloat(fStr, 64)
		if err != nil {
			return fmt.Errorf("bad factor %q: %w", fStr, err)
		}
		endStr, factor = pair, f
	}
	aStr, bStr, ok := strings.Cut(endStr, "-")
	if !ok {
		return fmt.Errorf("bad link %q: want A-B", endStr)
	}
	a, err := strconv.Atoi(aStr)
	if err != nil {
		return fmt.Errorf("bad PU id %q: %w", aStr, err)
	}
	b, err := strconv.Atoi(bStr)
	if err != nil {
		return fmt.Errorf("bad PU id %q: %w", bStr, err)
	}
	w, err := parseWindow(winStr)
	if err != nil {
		return err
	}
	if partition {
		pl.PartitionLink(hw.PUID(a), hw.PUID(b), w.From, w.To)
	} else {
		pl.InflateLink(hw.PUID(a), hw.PUID(b), factor, w.From, w.To)
	}
	return nil
}

// parseProb parses a probability in [0, 1].
func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q: %w", val, err)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0, 1]", p)
	}
	return p, nil
}
