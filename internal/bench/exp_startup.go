package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/params"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig10ab",
		Title: "Function startup latency on CPU and DPU",
		Paper: "cfork far below baseline cold boot; remote cfork (cfork-XPU) adds only ~1-3ms",
		Run:   runFig10ab,
	})
	register(Experiment{
		ID:    "fig10c",
		Title: "Function startup latency on FPGA",
		Paper: "baseline >20s; no-erase 3.8s; warm image 1.9s; warm sandbox 53ms",
		Run:   runFig10c,
	})
	register(Experiment{
		ID:    "tab4",
		Title: "FPGA resource utilization",
		Paper: "12-instance wrapper: 10.1% LUTs, 8.3% REGs, 22.5% BRAMs, 11.5% DSPs of an F1",
		Run:   runTab4,
	})
	register(Experiment{
		ID:    "fig11a",
		Title: "cfork optimization breakdown",
		Paper: "85.55 -> 47.25 -> 30.05 -> 8.40 ms",
		Run:   runFig11a,
	})
	register(Experiment{
		ID:    "fig11bc",
		Title: "Memory usage (RSS / PSS) under concurrent instances",
		Paper: "cfork yields ~34% lower PSS at 16 instances; slightly higher RSS (template)",
		Run:   runFig11bc,
	})
}

// runFig10ab measures baseline-local, cfork-local, and cfork-XPU startup
// for Python and Node on the host CPU and a BF-1 DPU. Per the paper's
// desktop methodology (Fig 10/11), cfork runs with the full optimization
// stack (prepared containers + cpuset patch).
func runFig10ab() []*metrics.Table {
	var tables []*metrics.Table
	for _, puKind := range []hw.PUKind{hw.CPU, hw.DPU} {
		t := &metrics.Table{
			Title:  fmt.Sprintf("Fig 10 — Startup at %v", puKind),
			Header: []string{"runtime", "Baseline-local", "cfork-local", "cfork-XPU"},
		}
		for _, lk := range []lang.Kind{lang.Python, lang.Node} {
			var base, local, remote time.Duration
			sandboxed(func(p *sim.Proc) {
				opts := molecule.DefaultOptions()
				opts.CpusetMutexPatch = true
				rt := newMolecule(p, hw.Config{DPUs: 1}, opts)
				target := hw.PUID(0)
				if puKind == hw.DPU {
					target = rt.Machine.PUsOfKind(hw.DPU)[0].ID
				}
				targetOS := localos.New(p.Env(), rt.Machine.PU(target))
				spec, err := lang.SpecFor(lk)
				if err != nil {
					panic(err)
				}
				// Baseline-local: conventional cold boot on the target PU.
				start := p.Now()
				lang.BaselineColdStart(p, targetOS, spec, "bench", "bench")
				base = p.Now().Sub(start)

				// cfork-local: fork on the target PU, commanded locally. Use
				// the container runtime directly so no cross-PU command cost
				// is charged.
				cr := rt.ContainerRuntimeOn(target)
				cr.CpusetMutexPatch = true
				cr.EnsureTemplate(p, lk)
				cr.Prewarm(p, 2)
				fn := "image-processing"
				if lk == lang.Node {
					fn = "alexa-frontend"
				}
				start = p.Now()
				if err := sandbox.CreateOne(p, cr, sandbox.Spec{ID: "l", FuncID: fn, Lang: lk}); err != nil {
					panic(err)
				}
				if err := sandbox.StartOne(p, cr, "l"); err != nil {
					panic(err)
				}
				local = p.Now().Sub(start)

				// cfork-XPU: the same fork commanded from a neighbor PU over
				// XPU-Shim (nIPC command + executor handling + response).
				if err := rt.Deploy(p, fn,
					molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
					panic(err)
				}
				neighbor := rt.Machine.PUsOfKind(hw.DPU)[0].ID
				if puKind == hw.DPU {
					neighbor = 0
				}
				start = p.Now()
				rt.Machine.Transfer(p, neighbor, target, 256)
				p.Sleep(params.ExecutorCommandOverhead)
				res, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: target, ForceCold: true})
				if err != nil {
					panic(err)
				}
				rt.Machine.Transfer(p, target, neighbor, 128)
				remote = p.Now().Sub(start) - res.Exec
			})
			t.AddRow(string(lk), fd(base), fd(local), fd(remote))
		}
		tables = append(tables, t)
	}
	return tables
}

// runFig10c reproduces the FPGA startup staircase with its stage breakdown.
func runFig10c() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 10c — Startup at FPGA (vector multiplication)",
		Note:   "stages: erase / load image / prepare sandbox; warm-sandbox is a single invoke",
		Header: []string{"configuration", "latency", "erase", "load image", "prep sandbox"},
	}
	sandboxed(func(p *sim.Proc) {
		env := p.Env()
		m := hw.Build(env, hw.Config{FPGAs: 1})
		fpga := m.PUsOfKind(hw.FPGA)[0]
		rf, err := sandbox.NewRunF(m, fpga, m.PU(0))
		if err != nil {
			panic(err)
		}

		// Baseline: erase-always, cold everything (fabric pre-dirtied).
		rf.Policy = sandbox.EraseAlways
		rf.Create(p, []sandbox.Spec{{ID: "warmup", FuncID: "other"}})
		start := p.Now()
		rf.Create(p, []sandbox.Spec{{ID: "b", FuncID: "vmult"}})
		rf.Start(p, []string{"b"})
		baselineT := p.Now().Sub(start)
		t.AddRow("Baseline", fd(baselineT), fd(params.FPGAEraseTime),
			fd(params.FPGAImageLoadTime), fd(params.FPGASandboxPrep))

		// No-Erase.
		rf.Policy = sandbox.NoErase
		start = p.Now()
		rf.Create(p, []sandbox.Spec{{ID: "n", FuncID: "vmult"}})
		rf.Start(p, []string{"n"})
		noErase := p.Now().Sub(start)
		t.AddRow("No-Erase", fd(noErase), "-", fd(params.FPGAImageLoadTime), fd(params.FPGASandboxPrep))

		// Warm image: vectorized image already contains the function.
		rf.Create(p, []sandbox.Spec{{ID: "w1", FuncID: "vmult"}, {ID: "w2", FuncID: "madd"}})
		rf.Start(p, []string{"w1"})
		start = p.Now()
		rf.Start(p, []string{"w2"})
		warmImage := p.Now().Sub(start)
		t.AddRow("Warm-image", fd(warmImage), "-", "-", fd(params.FPGASandboxPrep))

		// Warm sandbox: invoke only.
		start = p.Now()
		fabric := params.FPGAWarmSandboxInvoke - 2*params.DMABaseLatency -
			params.FPGACommandLatency - 20*time.Microsecond
		if err := rf.Invoke(p, "w2", 64<<10, 64<<10, fabric, sandbox.InvokeOptions{}); err != nil {
			panic(err)
		}
		warmSandbox := p.Now().Sub(start)
		t.AddRow("Warm-sandbox", fd(warmSandbox), "-", "-", "-")
	})
	return []*metrics.Table{t}
}

func runTab4() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Table 4 — FPGA resource utilization (AWS F1)",
		Note:   "vectorized wrapper with 12 function instances (4x madd, mmult, mscale)",
		Header: []string{"", "# LUTs", "# REGs", "# BRAMs", "# DSPs"},
	}
	total := hw.F1Resources()
	t.AddRow("AWS F1 Total",
		fmt.Sprintf("%d", total.LUTs), fmt.Sprintf("%d", total.REGs),
		fmt.Sprintf("%d", total.BRAMs), fmt.Sprintf("%d", total.DSPs))
	kernels := make([]string, 0, 12)
	for i := 0; i < 4; i++ {
		kernels = append(kernels, "madd", "mmult", "mscale")
	}
	img, err := hw.BuildImage("tab4", kernels)
	if err != nil {
		panic(err)
	}
	u := img.Resources.Utilization(total)
	t.AddRow("Wrapper (12 func.)",
		fmt.Sprintf("%d (%.1f%%)", img.Resources.LUTs, u[0]*100),
		fmt.Sprintf("%d (%.1f%%)", img.Resources.REGs, u[1]*100),
		fmt.Sprintf("%d (%.1f%%)", img.Resources.BRAMs, u[2]*100),
		fmt.Sprintf("%d (%.1f%%)", img.Resources.DSPs, u[3]*100))
	return []*metrics.Table{t}
}

func runFig11a() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 11a — cfork breakdown (Python image-processing)",
		Header: []string{"configuration", "startup latency"},
	}
	measure := func(f func(p *sim.Proc, os *localos.OS, tmpl *lang.Instance)) time.Duration {
		var d time.Duration
		sandboxed(func(p *sim.Proc) {
			m := hw.Build(p.Env(), hw.Config{})
			os := localos.New(p.Env(), m.PU(0))
			spec, _ := lang.SpecFor(lang.Python)
			tmpl := lang.BootCold(p, os, spec, "tmpl", true)
			start := p.Now()
			f(p, os, tmpl)
			d = p.Now().Sub(start)
		})
		return d
	}
	spec, _ := lang.SpecFor(lang.Python)
	t.AddRow("Baseline", fd(measure(func(p *sim.Proc, os *localos.OS, _ *lang.Instance) {
		lang.BaselineColdStart(p, os, spec, "f", "fn")
	})))
	t.AddRow("+Naive cfork", fd(measure(func(p *sim.Proc, os *localos.OS, tmpl *lang.Instance) {
		lang.Cfork(p, tmpl, "f", lang.CforkOptions{})
	})))
	t.AddRow("+FuncContainer", fd(measure(func(p *sim.Proc, os *localos.OS, tmpl *lang.Instance) {
		lang.Cfork(p, tmpl, "f", lang.CforkOptions{PreparedContainer: true})
	})))
	t.AddRow("+Cpuset opt", fd(measure(func(p *sim.Proc, os *localos.OS, tmpl *lang.Instance) {
		lang.Cfork(p, tmpl, "f", lang.CforkOptions{PreparedContainer: true, CpusetMutexPatch: true})
	})))
	return []*metrics.Table{t}
}

// runFig11bc reports average per-instance RSS and PSS (template amortized
// for Molecule) for 1..16 concurrent image-resize instances.
func runFig11bc() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 11b/c — Memory usage of concurrent instances (image resize)",
		Note:   "average per instance; Molecule's numbers include the template container's share",
		Header: []string{"instances", "Baseline RSS", "Molecule RSS", "Baseline PSS", "Molecule PSS", "PSS saving"},
	}
	mb := func(b float64) string { return fmt.Sprintf("%.1fMB", b/(1<<20)) }
	for _, n := range []int{1, 2, 4, 8, 16} {
		var baseRSS, basePSS, molRSS, molPSS float64
		sandboxed(func(p *sim.Proc) {
			m := hw.Build(p.Env(), hw.Config{})
			os := localos.New(p.Env(), m.PU(0))
			spec, _ := lang.SpecFor(lang.Python)
			// Baseline: n plainly booted instances.
			for i := 0; i < n; i++ {
				inst := lang.BootCold(p, os, spec, "b", false)
				inst.LoadFunction(p, "image-resize")
				baseRSS += float64(inst.RSSBytes())
				basePSSi := inst.PSSBytes()
				basePSS += basePSSi
			}
			baseRSS /= float64(n)
			basePSS /= float64(n)

			// Molecule: template + n cfork'd instances; template resources
			// amortized across instances (the paper's accounting).
			tmpl := lang.BootCold(p, os, spec, "tmpl", true)
			insts := make([]*lang.Instance, n)
			for i := range insts {
				c, err := lang.Cfork(p, tmpl, "image-resize",
					lang.CforkOptions{PreparedContainer: true, CpusetMutexPatch: true})
				if err != nil {
					panic(err)
				}
				insts[i] = c
			}
			var rss, pss float64
			for _, c := range insts {
				rss += float64(c.RSSBytes())
				pss += c.PSSBytes()
			}
			rss += float64(tmpl.RSSBytes())
			pss += tmpl.PSSBytes()
			molRSS = rss / float64(n)
			molPSS = pss / float64(n)
		})
		saving := 1 - molPSS/basePSS
		t.AddRow(fmt.Sprintf("%d", n), mb(baseRSS), mb(molRSS), mb(basePSS), mb(molPSS),
			fmt.Sprintf("%.0f%%", saving*100))
	}
	return []*metrics.Table{t}
}
