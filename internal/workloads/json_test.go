package workloads

import (
	"testing"
	"time"
)

const sampleJSON = `[
  {"name": "thumbnail", "exec_us": 9000, "dep_import_us": 80000,
   "arg_bytes": 262144, "result_bytes": 32768,
   "per_byte_ns": 30,
   "fpga_us": 500, "fpga_per_byte_ns": 2},
  {"name": "router", "lang": "nodejs", "exec_us": 800, "gpu_us": 100}
]`

func TestLoadJSON(t *testing.T) {
	r := NewRegistry()
	if err := r.LoadJSON([]byte(sampleJSON)); err != nil {
		t.Fatal(err)
	}
	th := r.MustGet("thumbnail")
	if th.ExecCPU != 9*time.Millisecond || th.DepImport != 80*time.Millisecond {
		t.Errorf("thumbnail costs wrong: %v %v", th.ExecCPU, th.DepImport)
	}
	if !th.HasFPGA() {
		t.Error("thumbnail FPGA model missing")
	}
	// Linear model: 1MB adds 30ms of per-byte cost.
	got := th.CPUCost(Arg{Bytes: 1 << 20})
	want := 9*time.Millisecond + time.Duration(30*(1<<20))*time.Nanosecond
	if got != want {
		t.Errorf("linear CPU cost = %v, want %v", got, want)
	}
	fgot := th.FabricCost(Arg{Bytes: 1 << 20})
	fwant := 500*time.Microsecond + time.Duration(2*(1<<20))*time.Nanosecond
	if fgot != fwant {
		t.Errorf("linear fabric cost = %v, want %v", fgot, fwant)
	}
	router := r.MustGet("router")
	if router.Lang != "nodejs" || !router.HasGPU() {
		t.Errorf("router spec wrong: %+v", router)
	}
}

func TestLoadJSONValidation(t *testing.T) {
	r := NewRegistry()
	cases := []string{
		`not json`,
		`[{"exec_us": 100}]`, // no name
		`[{"name": "x"}]`,    // no exec
		`[{"name": "x", "exec_us": 1, "lang": "rust"}]`, // bad lang
	}
	for _, c := range cases {
		if err := r.LoadJSON([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// All-or-nothing: a bad entry after a good one registers neither.
	bad := `[{"name": "good", "exec_us": 10}, {"name": "", "exec_us": 10}]`
	if err := r.LoadJSON([]byte(bad)); err == nil {
		t.Fatal("partial batch accepted")
	}
	if _, err := r.Get("good"); err == nil {
		t.Error("partial batch registered the valid entry")
	}
}
