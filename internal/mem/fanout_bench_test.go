package mem_test

import (
	"testing"

	"repro/internal/sim/simbench"
)

// BenchmarkAddressSpaceForkFanout runs the shared simbench body (also
// exported into BENCH_kernel.json by molecule-bench -json): fork 64
// children off a 3072-page template, COW-break a small private working set
// in each, and release them. External test package because simbench itself
// imports mem.
func BenchmarkAddressSpaceForkFanout(b *testing.B) { simbench.AddressSpaceForkFanout(b) }
