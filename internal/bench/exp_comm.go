package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Serverless DAG communication latency (Alexa skills)",
		Paper: "IPC-based DAG 15-18x better than baseline; nIPC 10-13x",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "FPGA function chain end-to-end latency",
		Paper: "DRAM-retention (shm) chains ~1.95x faster than copying for 5 functions",
		Run:   runFig13,
	})
}

// alexaEdges names the four measured edges of the Alexa skill DAG.
var alexaEdges = []string{"front-interact", "interact-smarthome", "smarthome-door", "smarthome-light"}

// runFig12 measures per-edge latency for the four Alexa edges under four
// placements: CPU→CPU, DPU→DPU, CPU→DPU, DPU→CPU, comparing the baseline
// (network) with Molecule (IPC / nIPC).
func runFig12() []*metrics.Table {
	var tables []*metrics.Table
	chain := workloads.AlexaChain()
	cases := []struct {
		name string
		// edge placement: caller PU kind, callee PU kind
		callerDPU, calleeDPU bool
	}{
		{"CPU to CPU", false, false},
		{"DPU to DPU", true, true},
		{"CPU to DPU", false, true},
		{"DPU to CPU", true, false},
	}
	for _, tc := range cases {
		t := &metrics.Table{
			Title:  fmt.Sprintf("Fig 12 — DAG communication latency, %s", tc.name),
			Header: []string{"edge", "Baseline", "Molecule", "improvement"},
		}
		sandboxed(func(p *sim.Proc) {
			rt := newMolecule(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
			h := baseline.NewHomo(p.Env(), rt.Machine, rt.Registry)
			dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
			pu := func(isDPU bool) hw.PUID {
				if isDPU {
					return dpu
				}
				return 0
			}
			for _, fn := range chain {
				if err := rt.Deploy(p, fn,
					molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
					panic(err)
				}
			}
			for i, edge := range alexaEdges {
				caller, callee := chain[i], chain[i+1]
				placement := []hw.PUID{pu(tc.callerDPU), pu(tc.calleeDPU)}
				pair := []string{caller, callee}
				// Warm instances, then measure the request edge.
				if _, err := rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: placement}); err != nil {
					panic(err)
				}
				res, err := rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: placement})
				if err != nil {
					panic(err)
				}
				mol := res.EdgeLatency[0]
				fn := rt.Registry.MustGet(callee)
				base := h.EdgeLatencyOneWay(placement[0], placement[1], fn.Lang, fn.ArgBytes)
				t.AddRow(edge, fd(base), fd(mol), fr(float64(base)/float64(mol)))
			}
		})
		tables = append(tables, t)
	}
	return tables
}

// runFig13 sweeps FPGA chains of 1..5 vector-compute functions, comparing
// host-copy data movement with DRAM-retention shared memory.
func runFig13() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Fig 13 — FPGA function chain (end-to-end) latency",
		Note:   "vector computation stages; Copying moves data through host DRAM, Shm uses FPGA DRAM retention",
		Header: []string{"chain length", "Copying", "Shm", "improvement"},
	}
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{FPGAs: 1}, molecule.DefaultOptions())
		if err := rt.Deploy(p, "vecstage", molecule.DefaultProfile(hw.FPGA)); err != nil {
			panic(err)
		}
		for n := 1; n <= 5; n++ {
			chain := make([]string, n)
			for i := range chain {
				chain[i] = "vecstage"
			}
			copied, err := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{ForceCopy: true})
			if err != nil {
				panic(err)
			}
			shm, err := rt.InvokeAccelChain(p, chain, molecule.AccelChainOptions{})
			if err != nil {
				panic(err)
			}
			t.AddRow(fmt.Sprintf("%d", n), fd(copied.Total), fd(shm.Total),
				fr(float64(copied.Total)/float64(shm.Total)))
		}
	})
	return []*metrics.Table{t}
}
