package molecule

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// PlacementPolicy selects a PU for each function of an application when a
// multi-setting request arrives (§5 "Profile selections"): users may deploy
// a function under several profiles, and the control plane chooses among
// them by platform policy.
type PlacementPolicy int

const (
	// PlaceChainAffinity locates every function of a chain on the same PU
	// (the paper's default: co-location minimizes communication latency).
	PlaceChainAffinity PlacementPolicy = iota
	// PlaceCheapest picks the lowest-price profile with free capacity
	// (DPU first) for each function independently.
	PlaceCheapest
	// PlaceFastest picks the highest-performance general-purpose profile
	// (CPU first), falling back to DPUs when the CPU is full.
	PlaceFastest
	// PlaceScatter round-robins functions across PUs — the adversarial
	// placement used as the ablation against chain affinity.
	PlaceScatter
)

var policyNames = map[PlacementPolicy]string{
	PlaceChainAffinity: "chain-affinity",
	PlaceCheapest:      "cheapest",
	PlaceFastest:       "fastest",
	PlaceScatter:       "scatter",
}

func (p PlacementPolicy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// candidatePUs returns the general-purpose PUs (in preference order) that
// can host deployment d under the policy.
func (rt *Runtime) candidatePUs(d *Deployment, policy PlacementPolicy) []hw.PUID {
	var cpus, dpus []hw.PUID
	for _, pu := range rt.Machine.PUs() {
		n := rt.nodes[pu.ID]
		if n == nil || n.cr == nil || !d.SupportsKind(pu.Kind) {
			continue
		}
		if n.liveCount >= n.capacity {
			continue
		}
		if pu.Kind == hw.CPU {
			cpus = append(cpus, pu.ID)
		} else {
			dpus = append(dpus, pu.ID)
		}
	}
	switch policy {
	case PlaceCheapest:
		return append(dpus, cpus...)
	default:
		return append(cpus, dpus...)
	}
}

// PlaceChain assigns each function of a chain to a PU according to the
// policy, respecting capacity and profile support. It returns one PUID per
// function.
func (rt *Runtime) PlaceChain(names []string, policy PlacementPolicy) ([]hw.PUID, error) {
	out := make([]hw.PUID, len(names))
	deps := make([]*Deployment, len(names))
	for i, name := range names {
		d, err := rt.Deployment(name)
		if err != nil {
			return nil, err
		}
		deps[i] = d
	}
	switch policy {
	case PlaceChainAffinity:
		// Find one PU every function supports, preferring the host.
		for _, cand := range rt.candidatePUs(deps[0], PlaceFastest) {
			ok := true
			kind := rt.Machine.PU(cand).Kind
			for _, d := range deps {
				if !d.SupportsKind(kind) {
					ok = false
					break
				}
			}
			if ok {
				for i := range out {
					out[i] = cand
				}
				return out, nil
			}
		}
		return nil, fmt.Errorf("molecule: no single PU supports the whole chain")
	case PlaceScatter:
		// Round-robin across every eligible PU per function.
		rot := 0
		for i, d := range deps {
			cands := rt.candidatePUs(d, PlaceFastest)
			if len(cands) == 0 {
				return nil, fmt.Errorf("molecule: no capacity for %q", names[i])
			}
			out[i] = cands[rot%len(cands)]
			rot++
		}
		return out, nil
	default: // PlaceCheapest, PlaceFastest
		for i, d := range deps {
			cands := rt.candidatePUs(d, policy)
			if len(cands) == 0 {
				return nil, fmt.Errorf("molecule: no capacity for %q", names[i])
			}
			out[i] = cands[0]
		}
		return out, nil
	}
}

// InvokeChainWithPolicy places the chain under the policy and invokes it.
func (rt *Runtime) InvokeChainWithPolicy(p *sim.Proc, names []string, policy PlacementPolicy) (ChainResult, error) {
	placement, err := rt.PlaceChain(names, policy)
	if err != nil {
		return ChainResult{}, err
	}
	return rt.InvokeChain(p, names, ChainOptions{Placement: placement})
}
