package lang

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestClosureSortedDepClosed(t *testing.T) {
	s, err := Closure([]string{"blas"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Key(); got != "blas,numpy,pyutils" {
		t.Errorf("Closure(blas) = %q, want blas,numpy,pyutils", got)
	}
	// Duplicates and already-present deps collapse.
	s2, err := Closure([]string{"numpy", "blas", "numpy"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(s2) {
		t.Errorf("closure not canonical: %q vs %q", s.Key(), s2.Key())
	}
	if _, err := Closure([]string{"left-pad"}); err == nil {
		t.Error("unknown package accepted")
	}
	if s, err := Closure(nil); err != nil || len(s) != 0 {
		t.Errorf("empty closure = %v, %v", s, err)
	}
}

func TestPkgSetOps(t *testing.T) {
	img, _ := Closure([]string{"imageops"}) // imageops pillow numpy pyutils
	blas, _ := Closure([]string{"blas"})    // blas numpy pyutils
	np, _ := Closure([]string{"numpy"})     // numpy pyutils

	if !img.Covers(np) || !blas.Covers(np) {
		t.Error("numpy closure not covered by its supersets")
	}
	if img.Covers(blas) || blas.Covers(img) {
		t.Error("disjoint-tip sets claim coverage")
	}
	if got := img.Intersect(blas).Key(); got != np.Key() {
		t.Errorf("imageops ∩ blas = %q, want %q", got, np.Key())
	}
	res := blas.Residual(np)
	if got := res.Key(); got != "blas" {
		t.Errorf("blas residual over numpy = %q, want blas", got)
	}
	if got := np.ImportCost() + res.ImportCost(); got != blas.ImportCost() {
		t.Errorf("residual cost does not decompose: %v + %v != %v",
			np.ImportCost(), res.ImportCost(), blas.ImportCost())
	}
	if blas.ImportPages() <= np.ImportPages() {
		t.Error("superset has no extra pages")
	}
}

func TestZygoteResolveDeepestSubset(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		root := BootCold(p, os, spec, "tmpl", true)
		tr := NewZygoteTree(os, root, ZygoteTreeConfig{BudgetPages: 1 << 20, Seed: 1})

		np, _ := Closure([]string{"numpy"})
		blas, _ := Closure([]string{"blas"})
		img, _ := Closure([]string{"imageops"})

		nNp, err := tr.Grow(p, np)
		if err != nil || nNp == nil {
			t.Fatalf("grow numpy: %v %v", nNp, err)
		}
		nBlas, err := tr.Grow(p, blas)
		if err != nil || nBlas == nil {
			t.Fatalf("grow blas: %v %v", nBlas, err)
		}
		if nBlas.Parent != nNp {
			t.Errorf("blas node parent = %v, want the numpy node", nBlas.Parent.ID)
		}
		if nBlas.Depth() != 2 {
			t.Errorf("blas depth = %d, want 2", nBlas.Depth())
		}

		// Exact hit resolves to the deepest node.
		if got := tr.Resolve(blas); got != nBlas {
			t.Errorf("Resolve(blas) = #%d, want #%d", got.ID, nBlas.ID)
		}
		// A superset of numpy but not of blas stops at numpy: forking from
		// blas would run imports imageops never asked for.
		if got := tr.Resolve(img); got != nNp {
			t.Errorf("Resolve(imageops) = #%d, want numpy node #%d", got.ID, nNp.ID)
		}
		// Nothing in common with the tree: generic root.
		crypto, _ := Closure([]string{"crypto"})
		if got := tr.Resolve(crypto); got != tr.Root {
			t.Errorf("Resolve(crypto) = #%d, want root", got.ID)
		}

		// Budget accounting: blas node charges only its residual.
		if nBlas.residualPages >= blas.ImportPages() {
			t.Errorf("blas residual pages %d not smaller than full closure %d",
				nBlas.residualPages, blas.ImportPages())
		}
		if tr.UsedPages() != nNp.residualPages+nBlas.residualPages {
			t.Errorf("used pages %d != %d + %d", tr.UsedPages(), nNp.residualPages, nBlas.residualPages)
		}
	})
	env.Run()
}

func TestZygoteColdStartCheaperFromAncestor(t *testing.T) {
	spec, _ := SpecFor(Python)
	blas, _ := Closure([]string{"blas"})

	// Arm A: fork from the generic root, import the full closure.
	costFrom := func(grow bool) time.Duration {
		env, os := newOS(hw.CPU)
		var d time.Duration
		env.Spawn("x", func(p *sim.Proc) {
			root := BootCold(p, os, spec, "tmpl", true)
			tr := NewZygoteTree(os, root, ZygoteTreeConfig{BudgetPages: 1 << 20, Seed: 1})
			if grow {
				np, _ := Closure([]string{"numpy"})
				if _, err := tr.Grow(p, np); err != nil {
					t.Errorf("grow: %v", err)
				}
			}
			node := tr.Resolve(blas)
			start := p.Now()
			inst, err := Cfork(p, node.Inst, "fn", CforkOptions{KeepTemplateMerged: true})
			if err != nil {
				t.Errorf("cfork: %v", err)
				return
			}
			inst.ImportResidual(p, blas.Residual(node.Pkgs), 0)
			d = time.Duration(p.Now() - start)
		})
		env.Run()
		return d
	}
	flat, zyg := costFrom(false), costFrom(true)
	// The ancestor fork saves at least the prewarmed numpy closure's import
	// time; it also skips the root's merge (zygote nodes park merged), so
	// the saving is strictly larger than the import delta alone.
	np, _ := Closure([]string{"numpy"})
	if saved := flat - zyg; saved < np.ImportCost() {
		t.Errorf("ancestor fork saved %v, want at least the numpy closure %v (flat %v, zygote %v)",
			saved, np.ImportCost(), flat, zyg)
	}
}

func TestZygoteFitDeterministicShape(t *testing.T) {
	spec, _ := SpecFor(Python)
	mix := [][]string{
		{"blas"}, {"imageops"}, {"blas"}, {"crypto"}, {"imageops"},
		{"blas"}, {"templating"}, {"imageops"}, {"blas"}, {"crypto"},
		{"imageops"}, {"blas"}, {"blas"}, {"imageops"}, {"crypto"}, {"blas"},
	}
	run := func(seed uint64) (string, int) {
		env, os := newOS(hw.CPU)
		var shape string
		var rounds int
		env.Spawn("x", func(p *sim.Proc) {
			root := BootCold(p, os, spec, "tmpl", true)
			tr := NewZygoteTree(os, root, ZygoteTreeConfig{
				BudgetPages: mbPages(96), FitInterval: 8, MinHits: 2, MaxGrowPerFit: 4, Seed: seed,
			})
			for _, names := range mix {
				s, _ := Closure(names)
				tr.Resolve(s)
				tr.Observe(s)
				if tr.NeedsFit() {
					tr.BeginFit()
					tr.Fit(p)
				}
			}
			shape, rounds = tr.ShapeString(), tr.Rounds()
		})
		env.Run()
		return shape, rounds
	}
	s1, r1 := run(7)
	s2, r2 := run(7)
	if s1 != s2 || r1 != r2 {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", s1, s2)
	}
	if !strings.Contains(s1, "blas") {
		t.Errorf("dominant blas mix grew no blas node:\n%s", s1)
	}
	// The shared numpy prefix of blas and imageops should be hoisted into an
	// interior node (pairwise-intersection candidate).
	if !strings.Contains(s1, "{numpy,pyutils}") {
		t.Errorf("shared numpy prefix not hoisted:\n%s", s1)
	}
}

func TestZygoteRetirePinnedDefersExit(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		root := BootCold(p, os, spec, "tmpl", true)
		tr := NewZygoteTree(os, root, ZygoteTreeConfig{BudgetPages: 1 << 20, Seed: 1})
		np, _ := Closure([]string{"numpy"})
		n, err := tr.Grow(p, np)
		if err != nil || n == nil {
			t.Fatalf("grow: %v %v", n, err)
		}
		procs := os.NumProcesses()

		tr.Pin(n) // an in-flight fork holds the node
		tr.Retire(n)
		tr.Retire(n) // double retire must not double-reap
		if n.dead {
			t.Fatal("pinned node reaped immediately")
		}
		if os.NumProcesses() != procs {
			t.Fatal("pinned node's process exited early")
		}
		if tr.LeakedNodes() != 1 {
			t.Errorf("LeakedNodes = %d, want 1 while pinned", tr.LeakedNodes())
		}
		tr.Unpin(n)
		if !n.dead {
			t.Error("node not reaped when last pin dropped")
		}
		if got := os.NumProcesses(); got != procs-1 {
			t.Errorf("processes = %d, want %d (exactly one exit)", got, procs-1)
		}
		if tr.LeakedNodes() != 0 {
			t.Errorf("LeakedNodes = %d, want 0 after unpin", tr.LeakedNodes())
		}
		if tr.LiveNodes() != 0 || tr.UsedPages() != 0 {
			t.Errorf("live=%d used=%d after reap, want 0/0", tr.LiveNodes(), tr.UsedPages())
		}
	})
	env.Run()
}

func TestZygoteResetAbortsInFlightGrow(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	var tr *ZygoteTree
	var baseline int
	env.Spawn("grower", func(p *sim.Proc) {
		root := BootCold(p, os, spec, "tmpl", true)
		tr = NewZygoteTree(os, root, ZygoteTreeConfig{BudgetPages: 1 << 20, Seed: 1})
		baseline = os.NumProcesses()
		ff, _ := Closure([]string{"ffmpeg"}) // 290ms import: plenty of sleep to race with
		n, err := tr.Grow(p, ff)
		if err != nil {
			t.Errorf("grow: %v", err)
		}
		if n != nil {
			t.Error("grow inserted into a reset tree")
		}
	})
	env.Spawn("resetter", func(p *sim.Proc) {
		// Fire mid-import: the grower is asleep inside ImportResidual.
		p.Sleep(150 * time.Millisecond)
		if tr == nil {
			t.Fatal("resetter ran before grower")
		}
		tr.Reset()
	})
	env.Run()
	if got := os.NumProcesses(); got != baseline {
		t.Errorf("processes = %d, want %d (discarded template must exit exactly once)", got, baseline)
	}
	if tr.LiveNodes() != 0 || tr.UsedPages() != 0 || tr.LeakedNodes() != 0 {
		t.Errorf("tree not clean after aborted grow: live=%d used=%d leaked=%d",
			tr.LiveNodes(), tr.UsedPages(), tr.LeakedNodes())
	}
}
