package sandbox

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

// GPU runtime timings. Unlike FPGAs, GPUs load kernels in milliseconds and
// naturally support vectorized sandboxes: one wrapper process (Nvidia MPS in
// the paper, §6.8) hosts many kernels concurrently.
const (
	// gpuModuleLoadTime is loading a CUDA module (cubin) into the wrapper.
	gpuModuleLoadTime = 180 * time.Millisecond
	// gpuContextPrepTime is preparing a per-function stream/context.
	gpuContextPrepTime = 9 * time.Millisecond
	// gpuLaunchOverhead is the kernel-launch command overhead per request.
	gpuLaunchOverhead = 25 * time.Microsecond
)

// GPUSandbox is one GPU kernel function managed by RunG.
type GPUSandbox struct {
	Spec     Spec
	State    State
	Prepared bool
}

// RunG is the GPU sandbox runtime demonstrating the generality of the
// vectorized sandbox abstraction (§6.8, Table 5): it implements the same
// five verbs over the CUDA-style wrapper. GPUs support the vector forms
// natively — a single wrapper serves multiple kernels via MPS — so create
// simply loads all modules and start preps their contexts.
type RunG struct {
	Machine *hw.Machine
	PU      *hw.PU // the GPU
	Host    *hw.PU

	streams   *sim.Resource // concurrent kernel slots
	sandboxes map[string]*GPUSandbox
}

// NewRunG returns a GPU sandbox runtime.
func NewRunG(env *sim.Env, m *hw.Machine, gpu, host *hw.PU) (*RunG, error) {
	if gpu.Kind != hw.GPU {
		return nil, fmt.Errorf("sandbox: PU %q is not a GPU", gpu.Name)
	}
	return &RunG{
		Machine:   m,
		PU:        gpu,
		Host:      host,
		streams:   sim.NewResource(env, 8),
		sandboxes: make(map[string]*GPUSandbox),
	}, nil
}

// Create implements Runtime: load the vector's CUDA modules into the
// wrapper. Unlike runf, creating more sandboxes does not evict existing
// ones (GPU memory permitting).
func (rg *RunG) Create(p *sim.Proc, specs []Spec) error {
	for _, s := range specs {
		if _, exists := rg.sandboxes[s.ID]; exists {
			return fmt.Errorf("sandbox: GPU sandbox %q already exists", s.ID)
		}
		if s.FuncID == "" {
			return fmt.Errorf("sandbox: GPU sandbox %q has no func-id", s.ID)
		}
		rg.sandboxes[s.ID] = &GPUSandbox{Spec: s, State: StateCreated}
	}
	p.Sleep(gpuModuleLoadTime) // modules load in one batch
	return nil
}

// Start implements Runtime: prepare streams/contexts concurrently.
func (rg *RunG) Start(p *sim.Proc, ids []string) error {
	prep := false
	for _, id := range ids {
		sb, ok := rg.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no GPU sandbox %q", id)
		}
		if !sb.Prepared {
			sb.Prepared = true
			prep = true
		}
		sb.State = StateRunning
	}
	if prep {
		p.Sleep(gpuContextPrepTime)
	}
	return nil
}

// Kill implements Runtime.
func (rg *RunG) Kill(p *sim.Proc, ids []string, sig int) error {
	for _, id := range ids {
		sb, ok := rg.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no GPU sandbox %q", id)
		}
		if sb.State == StateRunning {
			sb.State = StateStopped
		}
	}
	return nil
}

// Delete implements Runtime: unload is deferred like runf's — the wrapper
// reclaims module memory lazily — so delete only updates state.
func (rg *RunG) Delete(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		sb, ok := rg.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no GPU sandbox %q", id)
		}
		sb.State = StateDeleted
	}
	return nil
}

// State implements Runtime.
func (rg *RunG) State(ids []string) []Status {
	if ids == nil {
		for id := range rg.sandboxes {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic order for nil queries
	}
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		st := StateUnknown
		if sb, ok := rg.sandboxes[id]; ok {
			st = sb.State
		}
		out = append(out, Status{ID: id, State: st})
	}
	return out
}

// Sandbox returns the GPU sandbox with the given ID, or nil.
func (rg *RunG) Sandbox(id string) *GPUSandbox { return rg.sandboxes[id] }

// Invoke handles one request: DMA the arguments, launch the kernel, and DMA
// the results back.
func (rg *RunG) Invoke(p *sim.Proc, id string, argBytes, resultBytes int, kernelTime time.Duration) error {
	sb, ok := rg.sandboxes[id]
	if !ok {
		return fmt.Errorf("sandbox: no GPU sandbox %q", id)
	}
	if sb.State != StateRunning {
		return fmt.Errorf("sandbox: GPU sandbox %q not running", id)
	}
	if _, err := rg.Machine.Transfer(p, rg.Host.ID, rg.PU.ID, argBytes); err != nil {
		return err
	}
	p.Sleep(gpuLaunchOverhead + params.DMABaseLatency)
	rg.streams.Acquire(p)
	p.Sleep(kernelTime)
	rg.streams.Release()
	if _, err := rg.Machine.Transfer(p, rg.PU.ID, rg.Host.ID, resultBytes); err != nil {
		return err
	}
	return nil
}

var _ Runtime = (*RunG)(nil)
