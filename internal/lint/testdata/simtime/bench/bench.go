package bench

import "time"

// bench measures the host machine, not the simulation: wall-clock use is
// the whole point and the layer table leaves it unflagged.
func Stamp() time.Time { return time.Now() }
