package molecule

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// DAGNode is one vertex of a general serverless DAG: a function plus the
// indices of the nodes whose outputs it consumes.
type DAGNode struct {
	Fn   string
	Deps []int
}

// DAG is a directed acyclic graph of functions — the general form of the
// paper's "function chain (or DAG)" (§4.1). Fan-out (one producer, many
// consumers) and fan-in (a consumer joining several producers) both work;
// independent branches execute concurrently.
type DAG struct {
	Nodes []DAGNode
}

// Chain builds a linear DAG from a function list.
func Chain(names ...string) DAG {
	d := DAG{}
	for i, n := range names {
		node := DAGNode{Fn: n}
		if i > 0 {
			node.Deps = []int{i - 1}
		}
		d.Nodes = append(d.Nodes, node)
	}
	return d
}

// MapReduceDAG builds the fan-out/fan-in MapReduce application: one
// splitter, `mappers` parallel mappers, one reducer.
func MapReduceDAG(mappers int) DAG {
	d := DAG{Nodes: []DAGNode{{Fn: "mr-splitter"}}}
	var mapIdx []int
	for i := 0; i < mappers; i++ {
		d.Nodes = append(d.Nodes, DAGNode{Fn: "mr-mapper", Deps: []int{0}})
		mapIdx = append(mapIdx, i+1)
	}
	d.Nodes = append(d.Nodes, DAGNode{Fn: "mr-reducer", Deps: mapIdx})
	return d
}

// Validate checks acyclicity and dependency bounds, returning a topological
// order.
func (d DAG) Validate() ([]int, error) {
	n := len(d.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("molecule: empty DAG")
	}
	indeg := make([]int, n)
	for i, node := range d.Nodes {
		for _, dep := range node.Deps {
			if dep < 0 || dep >= n {
				return nil, fmt.Errorf("molecule: node %d depends on out-of-range node %d", i, dep)
			}
			if dep == i {
				return nil, fmt.Errorf("molecule: node %d depends on itself", i)
			}
			indeg[i]++
		}
	}
	var order []int
	queue := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	consumers := make([][]int, n)
	for i, node := range d.Nodes {
		for _, dep := range node.Deps {
			consumers[dep] = append(consumers[dep], i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, c := range consumers[i] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("molecule: DAG contains a cycle")
	}
	return order, nil
}

// DAGOptions configure one DAG invocation.
type DAGOptions struct {
	// Placement pins each node to a PU (nil → host for every node).
	Placement []hw.PUID
	Arg       workloads.Arg
}

// DAGResult reports one DAG invocation.
type DAGResult struct {
	// Total is the end-to-end makespan: first node's trigger to last sink's
	// completion.
	Total time.Duration
	// NodeFinish is each node's completion time relative to the start.
	NodeFinish []time.Duration
	// ExecTotal sums all handlers' execution time (CPU work, not makespan).
	ExecTotal  time.Duration
	ColdStarts int
}

// InvokeDAG executes a general DAG: every node runs as its own simulation
// process that waits for all of its producers, pays the edge communication
// cost from each producer's PU, executes, and signals its consumers.
// Independent branches overlap in time, so fan-out genuinely parallelizes.
func (rt *Runtime) InvokeDAG(p *sim.Proc, dag DAG, opts DAGOptions) (DAGResult, error) {
	order, err := dag.Validate()
	if err != nil {
		return DAGResult{}, err
	}
	n := len(dag.Nodes)
	placement := opts.Placement
	if placement == nil {
		placement = make([]hw.PUID, n)
		for i := range placement {
			placement[i] = rt.hostID
		}
	}
	if len(placement) != n {
		return DAGResult{}, fmt.Errorf("molecule: placement length %d != %d nodes", len(placement), n)
	}

	var res DAGResult
	insts := make([]*instance, n)
	deps := make([]*Deployment, n)
	// The cleanup defer is registered BEFORE the acquire loop: a Deployment
	// or acquire error mid-loop must still release every already-acquired
	// instance (the InvokeChain defer-after-acquire leak, caught by
	// moleculelint's releasepath analyzer).
	defer func() {
		for _, inst := range insts {
			if inst != nil {
				rt.release(p, inst)
			}
		}
	}()
	for _, i := range order {
		d, err := rt.Deployment(dag.Nodes[i].Fn)
		if err != nil {
			return DAGResult{}, err
		}
		deps[i] = d
		pin := placement[i]
		if pin < 0 {
			pin = rt.hostID
		}
		inst, cold, err := rt.acquire(p, d, pin, false, nil)
		if err != nil {
			return DAGResult{}, err
		}
		if cold {
			res.ColdStarts++
		}
		insts[i] = inst
	}

	// One completion event per node; consumers wait on their producers'.
	doneEv := make([]*sim.Event, n)
	for i := range doneEv {
		doneEv[i] = sim.NewEvent(rt.Env)
	}
	finish := make([]sim.Time, n)
	execDur := make([]time.Duration, n)
	all := sim.NewWaitGroup(rt.Env)
	all.Add(n)
	start := p.Now()

	for i := 0; i < n; i++ {
		i := i
		node := dag.Nodes[i]
		inst, d := insts[i], deps[i]
		rt.Env.Spawn(fmt.Sprintf("dag-%d-%s", i, node.Fn), func(fp *sim.Proc) {
			defer all.Done()
			// Join all producers, paying each edge's transport.
			for _, dep := range node.Deps {
				doneEv[dep].Wait(fp)
				rt.chargeEdge(fp, insts[dep], inst, deps[dep].Fn.Name, opts.Arg)
			}
			fp.Sleep(scaledDispatch(inst.node.pu) / 2)
			t0 := fp.Now()
			inst.sb.Inst.Invoke(fp, d.Fn.CPUCost(opts.Arg), inst.forked)
			execDur[i] = fp.Now().Sub(t0)
			inst.node.busy += execDur[i]
			fp.Sleep(scaledDispatch(inst.node.pu) / 2)
			finish[i] = fp.Now()
			doneEv[i].Trigger(nil)
		})
	}
	all.Wait(p)

	res.NodeFinish = make([]time.Duration, n)
	for i := range finish {
		res.NodeFinish[i] = time.Duration(finish[i] - start)
		if res.NodeFinish[i] > res.Total {
			res.Total = res.NodeFinish[i]
		}
		res.ExecTotal += execDur[i]
	}
	for i, d := range deps {
		pr, _ := d.ProfileFor(insts[i].node.pu.Kind)
		rt.bill.Record(d.Fn.Name, insts[i].node.pu.Kind, execDur[i], pr.PricePerMs)
	}
	return res, nil
}

// chargeEdge charges the one-way data movement of a DAG edge from producer
// to consumer: local FIFO ops when co-located, nIPC transfer otherwise.
func (rt *Runtime) chargeEdge(p *sim.Proc, from, to *instance, producerFn string, arg workloads.Arg) {
	fn, err := rt.Registry.Get(producerFn)
	var payload int
	if err == nil {
		_, payload = fn.Sizes(arg)
	}
	if from.node.pu.ID == to.node.pu.ID {
		// Local FIFO: producer write + consumer read.
		p.Sleep(2 * from.node.os.Costs.FIFOOp)
		return
	}
	// nIPC: XPUcall on both sides + interconnect transfer.
	p.Sleep(from.node.node.Mode.CallOverhead(from.node.pu.Kind))
	rt.Machine.Transfer(p, from.node.pu.ID, to.node.pu.ID, payload)
	p.Sleep(to.node.node.Mode.CallOverhead(to.node.pu.Kind))
}
