package lang

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

func newOS(kind hw.PUKind) (*sim.Env, *localos.OS) {
	env := sim.NewEnv()
	pu := &hw.PU{Kind: kind, Name: "t", Speed: 1}
	if kind == hw.DPU {
		pu.Speed = params.BF1SpeedFactor
	}
	return env, localos.New(env, pu)
}

func TestSpecFor(t *testing.T) {
	py, err := SpecFor(Python)
	if err != nil || py.InitCost != params.PythonInitTime {
		t.Fatalf("python spec wrong: %+v, %v", py, err)
	}
	nd, err := SpecFor(Node)
	if err != nil || nd.AuxThreads <= py.AuxThreads {
		t.Fatalf("node spec wrong: %+v, %v", nd, err)
	}
	if _, err := SpecFor("ruby"); err == nil {
		t.Error("unsupported runtime accepted")
	}
}

func TestBootColdCostAndFootprint(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		inst := BootCold(p, os, spec, "tmpl", true)
		want := os.Costs.SpawnBase + spec.InitCost
		if p.Now() != sim.Time(want) {
			t.Errorf("cold boot took %v, want %v", p.Now(), want)
		}
		if inst.Proc.AS.RSSPages() != spec.BasePages {
			t.Errorf("RSS pages = %d, want %d", inst.Proc.AS.RSSPages(), spec.BasePages)
		}
		if inst.Proc.Threads != 1+spec.AuxThreads {
			t.Errorf("threads = %d, want %d", inst.Proc.Threads, 1+spec.AuxThreads)
		}
	})
	env.Run()
}

func TestBootColdSlowerOnDPU(t *testing.T) {
	spec, _ := SpecFor(Python)
	boot := func(kind hw.PUKind) time.Duration {
		env, os := newOS(kind)
		var d time.Duration
		env.Spawn("x", func(p *sim.Proc) {
			BootCold(p, os, spec, "t", false)
			d = time.Duration(p.Now())
		})
		env.Run()
		return d
	}
	cpu, dpu := boot(hw.CPU), boot(hw.DPU)
	ratio := float64(dpu) / float64(cpu)
	if ratio < 5 || ratio > 8 {
		t.Errorf("DPU cold boot %.1fx CPU, want ~%.1fx", ratio, params.DPUStartupPenalty)
	}
}

func TestMergeExpandThreads(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Node)
	env.Spawn("x", func(p *sim.Proc) {
		inst := BootCold(p, os, spec, "t", true)
		inst.MergeThreads(p)
		if inst.Proc.Threads != 1 {
			t.Errorf("threads after merge = %d, want 1", inst.Proc.Threads)
		}
		inst.MergeThreads(p) // idempotent
		inst.ExpandThreads(p)
		if inst.Proc.Threads != 1+spec.AuxThreads {
			t.Errorf("threads after expand = %d, want %d", inst.Proc.Threads, 1+spec.AuxThreads)
		}
		inst.ExpandThreads(p) // idempotent, no cost
	})
	env.Run()
}

func TestCforkRequiresTemplate(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		inst := BootCold(p, os, spec, "t", false) // not a template
		if _, err := Cfork(p, inst, "f", CforkOptions{}); err == nil {
			t.Error("cfork from non-template succeeded")
		}
	})
	env.Run()
}

// TestFig11aBreakdown verifies the cfork optimization stack reproduces the
// paper's latency staircase: baseline 85.55ms → naive cfork 47.25ms →
// +FuncContainer 30.05ms → +Cpuset opt 8.40ms.
func TestFig11aBreakdown(t *testing.T) {
	spec, _ := SpecFor(Python)
	measure := func(run func(p *sim.Proc, os *localos.OS, tmpl *Instance)) time.Duration {
		env, os := newOS(hw.CPU)
		var d time.Duration
		env.Spawn("x", func(p *sim.Proc) {
			tmpl := BootCold(p, os, spec, "tmpl", true)
			start := p.Now()
			run(p, os, tmpl)
			d = p.Now().Sub(start)
		})
		env.Run()
		return d
	}

	baseline := measure(func(p *sim.Proc, os *localos.OS, _ *Instance) {
		BaselineColdStart(p, os, spec, "f", "fn")
	})
	naive := measure(func(p *sim.Proc, os *localos.OS, tmpl *Instance) {
		if _, err := Cfork(p, tmpl, "f", CforkOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	funcContainer := measure(func(p *sim.Proc, os *localos.OS, tmpl *Instance) {
		if _, err := Cfork(p, tmpl, "f", CforkOptions{PreparedContainer: true}); err != nil {
			t.Fatal(err)
		}
	})
	cpusetOpt := measure(func(p *sim.Proc, os *localos.OS, tmpl *Instance) {
		if _, err := Cfork(p, tmpl, "f", CforkOptions{PreparedContainer: true, CpusetMutexPatch: true}); err != nil {
			t.Fatal(err)
		}
	})

	check := func(name string, got time.Duration, wantMS float64) {
		if math.Abs(got.Seconds()*1000-wantMS) > wantMS*0.12 {
			t.Errorf("%s = %v, want ~%.2fms", name, got, wantMS)
		}
	}
	check("baseline", baseline, 85.55)
	check("naive cfork", naive, 47.25)
	check("+FuncContainer", funcContainer, 30.05)
	check("+Cpuset opt", cpusetOpt, 8.40)
	if !(cpusetOpt < funcContainer && funcContainer < naive && naive < baseline) {
		t.Error("optimization stack ordering violated")
	}
	if ratio := float64(baseline) / float64(cpusetOpt); ratio < 10 {
		t.Errorf("full stack speedup %.1fx, paper reports >10x", ratio)
	}
}

func TestCforkSharesTemplateMemory(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		tmpl := BootCold(p, os, spec, "tmpl", true)
		child, err := Cfork(p, tmpl, "f", CforkOptions{PreparedContainer: true, CpusetMutexPatch: true})
		if err != nil {
			t.Fatal(err)
		}
		if child.Proc.AS.SharedPages() == 0 {
			t.Error("forked child shares no pages with template")
		}
		// PSS must be strictly below RSS thanks to sharing.
		if child.PSSBytes() >= float64(child.RSSBytes()) {
			t.Errorf("child PSS %.0f >= RSS %d — no sharing benefit", child.PSSBytes(), child.RSSBytes())
		}
	})
	env.Run()
}

// TestFig11cPSSSaving checks that 16 cfork'd instances average ~34% lower
// PSS than 16 cold-booted instances.
func TestFig11cPSSSaving(t *testing.T) {
	spec, _ := SpecFor(Python)
	const n = 16

	avgPSS := func(forked bool) float64 {
		env, os := newOS(hw.CPU)
		var total float64
		env.Spawn("x", func(p *sim.Proc) {
			var tmpl *Instance
			if forked {
				tmpl = BootCold(p, os, spec, "tmpl", true)
			}
			insts := make([]*Instance, n)
			for i := range insts {
				if forked {
					c, err := Cfork(p, tmpl, "f", CforkOptions{PreparedContainer: true, CpusetMutexPatch: true})
					if err != nil {
						t.Fatal(err)
					}
					insts[i] = c
				} else {
					c := BootCold(p, os, spec, "fn", false)
					c.LoadFunction(p, "f")
					insts[i] = c
				}
			}
			for _, c := range insts {
				total += c.PSSBytes()
			}
		})
		env.Run()
		return total / n
	}

	base := avgPSS(false)
	fork := avgPSS(true)
	saving := 1 - fork/base
	if saving < 0.25 || saving > 0.45 {
		t.Errorf("PSS saving at 16 instances = %.0f%%, paper reports ~34%%", saving*100)
	}
}

func TestInvokeForkPenaltyOnceAndSpeed(t *testing.T) {
	env, os := newOS(hw.DPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		tmpl := BootCold(p, os, spec, "tmpl", true)
		child, err := Cfork(p, tmpl, "f", CforkOptions{PreparedContainer: true, CpusetMutexPatch: true})
		if err != nil {
			t.Fatal(err)
		}
		cost := 10 * time.Millisecond
		start := p.Now()
		child.Invoke(p, cost, true)
		first := p.Now().Sub(start)
		start = p.Now()
		child.Invoke(p, cost, true)
		later := p.Now().Sub(start)
		if first-later != params.CforkCOWFaultPenalty {
			t.Errorf("first-request COW penalty = %v, want %v", first-later, params.CforkCOWFaultPenalty)
		}
		wantPlain := time.Duration(float64(cost) * params.BF1SpeedFactor)
		if later != wantPlain {
			t.Errorf("DPU invoke = %v, want %v", later, wantPlain)
		}
		// Plainly-booted instances never pay the penalty.
		plain := BootCold(p, os, spec, "fn", false)
		start = p.Now()
		plain.Invoke(p, cost, false)
		if got := p.Now().Sub(start); got != wantPlain {
			t.Errorf("plain boot invoke = %v, want %v", got, wantPlain)
		}
	})
	env.Run()
}

func TestExitReleasesMemory(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		inst := BootCold(p, os, spec, "fn", false)
		inst.Exit()
		if !inst.Proc.Exited() {
			t.Error("process not exited")
		}
	})
	env.Run()
	if os.NumProcesses() != 0 {
		t.Errorf("processes = %d, want 0", os.NumProcesses())
	}
}

func TestSnapshotTakeRestore(t *testing.T) {
	env, os := newOS(hw.CPU)
	spec, _ := SpecFor(Python)
	env.Spawn("x", func(p *sim.Proc) {
		donor := BootCold(p, os, spec, "donor", false)
		if _, err := TakeSnapshot(p, donor); err == nil {
			t.Error("snapshot of unloaded instance accepted")
		}
		donor.LoadFunction(p, "f")
		snap, err := TakeSnapshot(p, donor)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		inst := snap.Restore(p, os)
		restoreTime := p.Now().Sub(start)
		// Restore ≈ SnapshotRestoreTime + spawn + connect; far below a boot.
		if restoreTime > 60*time.Millisecond {
			t.Errorf("restore took %v, want ~45ms", restoreTime)
		}
		if inst.FuncID != "f" {
			t.Errorf("restored FuncID = %q", inst.FuncID)
		}
		if inst.Proc.AS.SharedPages() == 0 {
			t.Error("restored instance shares no pages with the image")
		}
		if inst.Proc.Threads != 1+spec.AuxThreads {
			t.Errorf("restored threads = %d", inst.Proc.Threads)
		}
		// Two restores share with each other through the image.
		inst2 := snap.Restore(p, os)
		if inst2.PSSBytes() >= float64(inst2.RSSBytes()) {
			t.Error("second restore has no sharing benefit")
		}
		// Donor writes after the checkpoint do not leak into restores: the
		// image was frozen copy-on-write.
		before := inst.Proc.AS.SharedPages()
		os.Touch(p, donor.Proc, 0, 64)
		if got := inst.Proc.AS.SharedPages(); got != before {
			t.Errorf("donor write changed restore sharing: %d -> %d", before, got)
		}
	})
	env.Run()
}
