package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, lint.HotPath,
		linttest.Package{Path: "repro/internal/xpu", Dir: "testdata/hotpath/hot"})
}
