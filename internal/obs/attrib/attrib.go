// Package attrib is the critical-path attribution analyzer: a post-hoc pass
// over an obs span tree that decomposes every invocation's end-to-end
// latency into exhaustive, non-overlapping stages.
//
// The paper's argument (Tab 4, Fig 8, Fig 11) is a latency decomposition —
// serverless latency on heterogeneous hardware is dominated by *where* time
// goes: cold-start fork vs. dependency init vs. nIPC transfer vs. queueing.
// Raw spans can show the tree but not answer "what fraction of p99 is
// queue-wait, per PU kind". This package answers that, with a hard
// invariant: for every invocation, the per-stage durations sum to the root
// span's duration to the nanosecond. Nothing is sampled, nothing is
// estimated, nothing is double-counted.
//
// # Attribution model
//
// Every nanosecond of a root span's interval is attributed to exactly one
// stage by a recursive preemption sweep. Within a parent's interval its
// children are visited in (start, id) order; each child owns
//
//	[max(childStart, cursor), min(childEnd, nextSiblingStart, parentEnd))
//
// so a later-starting sibling clips an earlier one. That rule is what makes
// the decomposition exact under recovery: a timed-out attempt is abandoned,
// not interrupted — its spans keep running in the background and overlap
// the backoff and retry spans that follow. The sweep charges the abandoned
// attempt only up to the instant its successor begins; everything after is
// the successor's. Gaps between children are the parent's self-time and map
// to the parent's own stage (e.g. gateway self-time is queue-wait, the
// sandbox.acquire tail after sandbox.start is dependency init). Open
// (never-finished) spans extend to the parent's clip boundary.
//
// Determinism: the sweep is a pure function of the span snapshot, iterates
// slices in recorded order, and keeps stage totals in fixed arrays — output
// is byte-identical across runs and shard worker counts.
package attrib

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Stage is one bucket of the latency taxonomy. Stages are exhaustive and
// non-overlapping: every nanosecond of an invocation lands in exactly one.
type Stage string

const (
	// StageQueueWait is gateway time before the runtime accepts the request
	// (the gateway.request span's self-time).
	StageQueueWait Stage = "queue.wait"
	// StageDispatch is runtime bookkeeping inside the invoke path: warm
	// dispatch, jitter, scheduling — the invoke span's self-time.
	StageDispatch Stage = "dispatch"
	// StagePlacement is the placement policy's PU selection.
	StagePlacement Stage = "placement"
	// StageColdFork is sandbox creation (cfork or plain create).
	StageColdFork Stage = "coldstart.fork"
	// StageColdInit is sandbox start plus dependency import and accelerator
	// image/kernel loading — cold-start time that is not the fork itself.
	StageColdInit Stage = "coldstart.init"
	// StageColdAncestor is zygote-forest start time: the fork from the
	// resolved ancestor template (resolution + cfork + container join).
	// Zero unless the runtime runs with ZygoteTree.
	StageColdAncestor Stage = "coldstart.ancestor"
	// StageColdResidual is the residual package imports a zygote cold
	// start pays beyond its ancestor, plus the function's private tail.
	// The fitter's whole job is moving time out of this bucket.
	StageColdResidual Stage = "coldstart.residual"
	// StageNIPCLocal is reserved for same-PU IPC transfer time. No current
	// span site emits it: local FIFO hops inside chains are not spanned, and
	// remoteCommand only spans cross-link commands. It stays in the taxonomy
	// so chain-edge instrumentation lands in a stable bucket.
	StageNIPCLocal Stage = "nipc.local"
	// StageNIPCCross is nIPC command/transfer time across an interconnect
	// link (XPU-Shim remote commands).
	StageNIPCCross Stage = "nipc.crosslink"
	// StageHandler is function execution on the chosen PU.
	StageHandler Stage = "handler"
	// StageRetryBackoff is recovery overhead: backoff sleeps between
	// attempts plus the recovery wrapper's own bookkeeping.
	StageRetryBackoff Stage = "retry.backoff"
	// StageOther catches spans the taxonomy does not know — a non-zero
	// value here means a new span name needs classifying.
	StageOther Stage = "other"
)

// stageOrder is the canonical presentation order. Index into it is the
// storage index of StageDurations.
var stageOrder = [...]Stage{
	StageQueueWait, StageDispatch, StagePlacement, StageColdFork,
	StageColdInit, StageColdAncestor, StageColdResidual,
	StageNIPCLocal, StageNIPCCross, StageHandler,
	StageRetryBackoff, StageOther,
}

// NumStages is the size of the taxonomy.
const NumStages = len(stageOrder)

// AllStages returns the stages in canonical presentation order.
func AllStages() []Stage {
	out := make([]Stage, NumStages)
	copy(out, stageOrder[:])
	return out
}

func stageIndex(s Stage) int {
	for i, st := range stageOrder {
		if st == s {
			return i
		}
	}
	return NumStages - 1 // other
}

// StageDurations is a fixed per-stage duration vector, indexed in
// canonical stage order. A value type so aggregation is plain addition;
// no map iteration anywhere near the output path.
type StageDurations [NumStages]time.Duration

// Get returns the duration attributed to stage s.
func (sd *StageDurations) Get(s Stage) time.Duration { return sd[stageIndex(s)] }

// Sum returns the total attributed time across all stages.
func (sd *StageDurations) Sum() time.Duration {
	var t time.Duration
	for _, d := range sd {
		t += d
	}
	return t
}

func (sd *StageDurations) add(other *StageDurations) {
	for i, d := range other {
		sd[i] += d
	}
}

// selfStage maps a span name to the stage its *self-time* (interval minus
// children) belongs to. Leaf spans contribute their whole interval here.
func selfStage(name string) Stage {
	switch name {
	case "gateway.request":
		return StageQueueWait
	case "invoke":
		return StageDispatch
	case "invoke.recover", "retry.backoff":
		return StageRetryBackoff
	case "placement":
		return StagePlacement
	case "sandbox.create":
		return StageColdFork
	case "sandbox.acquire", "sandbox.start", "fpga.extend_image", "gpu.load_kernel":
		return StageColdInit
	case "coldstart.ancestor":
		return StageColdAncestor
	case "coldstart.residual":
		return StageColdResidual
	case "nipc.command":
		return StageNIPCCross
	case "handler":
		return StageHandler
	default:
		return StageOther
	}
}

// invocationRoot reports whether a span of this name can head an
// invocation's attribution tree.
func invocationRoot(name string) bool {
	return name == "gateway.request" || name == "invoke.recover" || name == "invoke"
}

// Options configure an analysis.
type Options struct {
	// PUKind names the hardware kind of a PU track (e.g. "CPU", "DPU");
	// nil leaves Invocation.Kind empty. PU -1 (never placed) always yields
	// an empty kind.
	PUKind func(pu int) string
}

// Invocation is one attributed invocation: a root span plus the exhaustive
// stage decomposition of its interval.
type Invocation struct {
	Root obs.Span // the attribution root (gateway.request, invoke.recover, or invoke)
	Win  obs.Span // the winning attempt span (== Root for single-attempt roots)
	Fn   string
	PU   int    // final placement; -1 if the invocation never placed
	Kind string // PU kind via Options.PUKind ("" when unknown)
	Err  bool   // the invocation settled with an error

	Total  time.Duration // Root duration; == Stages.Sum() (the exactness invariant)
	Stages StageDurations
}

// Residue is Total minus the sum of all stages. The exactness invariant is
// Residue() == 0 for every invocation; tests enforce it to the nanosecond.
func (inv *Invocation) Residue() time.Duration { return inv.Total - inv.Stages.Sum() }

// Row is a per-(fn, PU kind) aggregate over invocations.
type Row struct {
	Fn     string
	Kind   string
	Count  int
	Errors int
	Total  time.Duration
	Stages StageDurations
}

// Analysis is the result of attributing one span snapshot.
type Analysis struct {
	Invocations []Invocation

	spans    []obs.Span
	children map[obs.SpanID][]int // span index -> child indices, (start, id)-sorted
	folded   map[string]int64     // folded stack path -> virtual ns (self-time)
}

// Analyze attributes every finished invocation in the span snapshot.
// In-flight roots (still open at snapshot time) are skipped — an unfinished
// interval cannot be decomposed exactly.
func Analyze(spans []obs.Span, opts Options) *Analysis {
	a := &Analysis{
		spans:    spans,
		children: make(map[obs.SpanID][]int, len(spans)),
		folded:   make(map[string]int64),
	}
	byID := make(map[obs.SpanID]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	for i := range spans {
		if p := spans[i].Parent; p != 0 {
			a.children[p] = append(a.children[p], i)
		}
	}
	for _, kids := range a.children { //lint:unordered in-place per-value sort is commutative over iteration order
		k := kids
		sort.SliceStable(k, func(x, y int) bool {
			sx, sy := &spans[k[x]], &spans[k[y]]
			if sx.Start != sy.Start {
				return sx.Start < sy.Start
			}
			return sx.ID < sy.ID
		})
	}
	for i := range spans {
		s := &spans[i]
		if !invocationRoot(s.Name) || s.Open() {
			continue
		}
		if p := s.Parent; p != 0 {
			if pi, ok := byID[p]; ok && invocationRoot(spans[pi].Name) {
				continue // interior node of a larger invocation tree
			}
		}
		a.Invocations = append(a.Invocations, a.attribute(i, opts))
	}
	return a
}

// attribute extracts the invocation's identity (fn, final PU, error state,
// winning attempt) and runs the preemption sweep from root index ri.
func (a *Analysis) attribute(ri int, opts Options) Invocation {
	root := &a.spans[ri]
	inv := Invocation{Root: *root, Win: *root, PU: -1, Total: time.Duration(root.End.Sub(root.Start))}

	// Identity lives on the topmost runtime invocation span: the root
	// itself, or — under a gateway root — its single invoke/invoke.recover
	// child. Attempts below a recover root carry their own fn/pu/error
	// attrs (an abandoned attempt may even record a pu after settling in
	// the background), so only the topmost span's settled attrs count.
	top := root
	if root.Name == "gateway.request" {
		for _, ci := range a.children[root.ID] {
			if invocationRoot(a.spans[ci].Name) {
				top = &a.spans[ci]
				break
			}
		}
	}
	for _, at := range top.Attrs {
		switch at.Key {
		case "fn":
			inv.Fn = at.Value
		case "pu":
			var pu int
			if _, err := fmt.Sscanf(at.Value, "%d", &pu); err == nil {
				inv.PU = pu
			}
		case "error":
			inv.Err = true
		}
	}
	if inv.Fn == "" { // gateway roots also carry fn; prefer top's but fall back
		for _, at := range root.Attrs {
			if at.Key == "fn" {
				inv.Fn = at.Value
			}
		}
	}
	// The winning attempt under recovery is the settled invoke child that
	// closes the recover root: same end instant, finished, no error.
	inv.Win = *top
	if top.Name == "invoke.recover" && !inv.Err {
		for _, ci := range a.children[top.ID] {
			s := &a.spans[ci]
			if s.Name == "invoke" && !s.Open() && s.End == top.End && !hasAttr(s, "error") {
				inv.Win = *s
			}
		}
	}
	if inv.PU >= 0 && opts.PUKind != nil {
		inv.Kind = opts.PUKind(inv.PU)
	}

	prefix := inv.Fn
	if prefix == "" {
		prefix = "?"
	}
	a.sweep(ri, root.Start, root.End, &inv, prefix+";"+root.Name)
	return inv
}

func hasAttr(s *obs.Span, key string) bool {
	for _, at := range s.Attrs {
		if at.Key == key {
			return true
		}
	}
	return false
}

// sweep attributes [lo, hi) of span index si: children own their effective
// windows (clipped by the cursor, the next sibling, and hi), gaps are the
// span's self-time. Every nanosecond of [lo, hi) is charged exactly once.
func (a *Analysis) sweep(si int, lo, hi sim.Time, inv *Invocation, path string) {
	s := &a.spans[si]
	kids := a.children[s.ID]
	cur := lo
	var self time.Duration
	for ki, ci := range kids {
		c := &a.spans[ci]
		if c.Start >= hi {
			break // fully clipped: started after this window closed
		}
		ce := hi
		if !c.Open() && c.End < ce {
			ce = c.End
		}
		if ki+1 < len(kids) {
			if ns := a.spans[kids[ki+1]].Start; ns < ce {
				ce = ns // a later-starting sibling preempts this one
			}
		}
		cs := c.Start
		if cs < cur {
			cs = cur
		}
		if ce <= cs {
			continue // zero width after clipping
		}
		if cs > cur {
			self += time.Duration(cs.Sub(cur))
		}
		a.sweep(ci, cs, ce, inv, path+";"+c.Name)
		cur = ce
	}
	if hi > cur {
		self += time.Duration(hi.Sub(cur))
	}
	if self > 0 {
		inv.Stages[stageIndex(selfStage(s.Name))] += self
		a.folded[path] += int64(self)
	}
}

// Rows aggregates invocations per (fn, PU kind), sorted by fn then kind.
func (a *Analysis) Rows() []Row {
	type key struct{ fn, kind string }
	agg := make(map[key]*Row)
	for i := range a.Invocations {
		inv := &a.Invocations[i]
		k := key{inv.Fn, inv.Kind}
		r := agg[k]
		if r == nil {
			r = &Row{Fn: inv.Fn, Kind: inv.Kind}
			agg[k] = r
		}
		r.Count++
		if inv.Err {
			r.Errors++
		}
		r.Total += inv.Total
		r.Stages.add(&inv.Stages)
	}
	rows := make([]Row, 0, len(agg))
	for _, r := range agg { //lint:unordered collected then sorted below
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Fn != rows[j].Fn {
			return rows[i].Fn < rows[j].Fn
		}
		return rows[i].Kind < rows[j].Kind
	})
	return rows
}

// BreakdownTable renders the per-(fn, kind) stage decomposition. Stage
// columns that are zero across every row are elided; column choice is a
// pure function of the data, so the table is deterministic.
func (a *Analysis) BreakdownTable() *metrics.Table {
	rows := a.Rows()
	var present [NumStages]bool
	for i := range rows {
		for si, d := range rows[i].Stages {
			if d != 0 {
				present[si] = true
			}
		}
	}
	t := &metrics.Table{
		Title: "Critical-path attribution (per fn x PU kind)",
		Note:  "virtual time; stage columns sum to total exactly",
	}
	t.Header = []string{"fn", "kind", "n", "err", "total"}
	for si, st := range stageOrder {
		if present[si] {
			t.Header = append(t.Header, string(st))
		}
	}
	for i := range rows {
		r := &rows[i]
		cells := []string{
			r.Fn, r.Kind,
			fmt.Sprintf("%d", r.Count), fmt.Sprintf("%d", r.Errors),
			metrics.FmtDur(r.Total),
		}
		for si := range stageOrder {
			if present[si] {
				cells = append(cells, metrics.FmtDur(r.Stages[si]))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// WriteFolded emits the analysis as a folded-stack profile — one line per
// span path with its aggregate self-time in virtual nanoseconds — the
// input format of flamegraph.pl / inferno / speedscope. Lines are sorted,
// so output is byte-stable.
func (a *Analysis) WriteFolded(w io.Writer) error {
	paths := make([]string, 0, len(a.folded))
	for p := range a.folded { //lint:unordered collected then sorted below
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s %d\n", p, a.folded[p])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
