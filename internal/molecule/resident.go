package molecule

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Resident is a warm instance running as a resident server process: it
// blocks on its self_fifo, serves requests one at a time (so concurrent
// callers queue, like a real single-threaded handler), and responds over
// the duplex connection — the steady-state data plane of §4.2's "Molecule
// can assign requests to the child instance".
type Resident struct {
	rt   *Runtime
	fn   string
	inst *instance
	edge *edge
	d    *Deployment

	served  int
	stopped bool
}

// StartResident acquires an instance of fn on the given PU (cold-starting
// if needed) and runs it as a resident server. The caller owns the instance
// until Stop.
func (rt *Runtime) StartResident(p *sim.Proc, fn string, pu hw.PUID) (*Resident, error) {
	d, err := rt.Deployment(fn)
	if err != nil {
		return nil, err
	}
	inst, _, err := rt.acquire(p, d, pu, false, nil)
	if err != nil {
		return nil, err
	}
	hostNode := rt.nodes[rt.hostID]
	gw := endpoint{node: hostNode, proc: hostNode.os.NewDetachedProcess("resident-gw")}
	e, err := rt.buildEdge(p, gw, instEndpoint(inst))
	if err != nil {
		rt.release(p, inst)
		return nil, err
	}
	r := &Resident{rt: rt, fn: fn, inst: inst, edge: e, d: d}

	rt.Env.Spawn("resident-"+fn, func(sp *sim.Proc) {
		for {
			msg, err := e.req.recv(sp)
			if err != nil {
				return // connection closed: shut down
			}
			if msg.Kind == "shutdown" {
				return
			}
			sp.Sleep(scaledDispatch(inst.node.pu))
			arg, _ := msg.Meta.(workloads.Arg)
			inst.sb.Inst.Invoke(sp, d.Fn.CPUCost(arg), inst.forked)
			_, resB := d.Fn.Sizes(arg)
			e.resp.send(sp, localos.Message{Kind: "resp", Payload: make([]byte, resB)})
		}
	})
	return r, nil
}

// Call sends one request to the resident instance and waits for its
// response, returning the request latency. Concurrent callers are served in
// FIFO order by the single-threaded handler.
func (r *Resident) Call(p *sim.Proc, arg workloads.Arg) (time.Duration, error) {
	if r.stopped {
		return 0, fmt.Errorf("molecule: resident %s stopped", r.fn)
	}
	argB, _ := r.d.Fn.Sizes(arg)
	start := p.Now()
	if err := r.edge.req.send(p, localos.Message{
		Kind: "req", Payload: make([]byte, argB), Meta: arg,
	}); err != nil {
		return 0, err
	}
	if _, err := r.edge.resp.recv(p); err != nil {
		return 0, err
	}
	r.served++
	lat := p.Now().Sub(start)
	pr, _ := r.d.ProfileFor(r.inst.node.pu.Kind)
	r.rt.bill.Record(r.fn, r.inst.node.pu.Kind, lat, pr.PricePerMs)
	return lat, nil
}

// Served reports the number of completed requests.
func (r *Resident) Served() int { return r.served }

// PU reports where the resident instance runs.
func (r *Resident) PU() hw.PUID { return r.inst.node.pu.ID }

// Stop shuts the server process down and returns the instance to the warm
// pool.
func (r *Resident) Stop(p *sim.Proc) {
	if r.stopped {
		return
	}
	r.stopped = true
	r.edge.req.send(p, localos.Message{Kind: "shutdown"})
	r.rt.release(p, r.inst)
}
