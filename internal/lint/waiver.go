package lint

import (
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Waiver markers. Each analyzer that admits waivers recognizes exactly one
// marker; the reason after the marker is mandatory (a bare marker is itself
// a violation), and a marker attached to a line the analyzer no longer
// flags is reported as stale — dead waivers rot the invariant story.
const (
	unorderedMarker = "//lint:unordered" // maporder: order cannot be observed
	ownedMarker     = "//lint:owned"     // crossdomain: capture ownership argument
	releasedMarker  = "//lint:released"  // releasepath: release happens elsewhere
	settledMarker   = "//lint:settled"   // settleonce: settlement argument
)

// waiverEligible maps analyzer name -> the waiver marker it honors. It is
// the single source for the -json report's waiver-eligible flag and for the
// README's marker table.
var waiverEligible = map[string]string{
	"maporder":    unorderedMarker,
	"crossdomain": ownedMarker,
	"releasepath": releasedMarker,
	"settleonce":  settledMarker,
}

// WaiverMarkerFor returns the //lint: waiver marker the named analyzer
// honors, if any. It is the -json report's source for the waiver-eligible
// flag.
func WaiverMarkerFor(analyzer string) (marker string, ok bool) {
	marker, ok = waiverEligible[analyzer]
	return marker, ok
}

// waiver is one marker comment: its reason text and whether an analyzer
// consumed it for a construct it actually flags.
type waiver struct {
	reason string
	pos    analysis.Range
	used   bool
}

// waiverSet indexes one marker's comments by file and line.
type waiverSet struct {
	marker string
	byFile map[string]map[int]*waiver
}

// collectWaivers gathers every comment starting with marker across the
// package, keyed by file and line, for lookup + stale auditing.
func collectWaivers(pass *analysis.Pass, marker string) *waiverSet {
	ws := &waiverSet{marker: marker, byFile: make(map[string]map[int]*waiver)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, marker) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if ws.byFile[p.Filename] == nil {
					ws.byFile[p.Filename] = make(map[int]*waiver)
				}
				ws.byFile[p.Filename][p.Line] = &waiver{
					reason: strings.TrimSpace(strings.TrimPrefix(c.Text, marker)),
					pos:    c,
				}
			}
		}
	}
	return ws
}

// lookup finds a waiver on the given line or the line above (marker on the
// flagged line, or on its own line immediately before), marking it used.
// The bool reports whether a waiver exists; an empty reason is the caller's
// cue to reject it as bare.
func (ws *waiverSet) lookup(file string, line int) (reason string, ok bool) {
	lines := ws.byFile[file]
	if lines == nil {
		return "", false
	}
	w, found := lines[line]
	if !found {
		w, found = lines[line-1]
	}
	if !found {
		return "", false
	}
	w.used = true
	return w.reason, true
}

// reportBare reports a waiver that carries no reason, at the waived
// construct's position.
func (ws *waiverSet) reportBare(pass *analysis.Pass, rng analysis.Range) {
	pass.Reportf(rng.Pos(), "%s: %s marker needs a reason", ws.marker[len("//lint:"):], ws.marker)
}

// reportStale reports every waiver no analyzer consumed: the construct it
// once excused is gone (or moved), so the marker is dead weight that would
// silently waive a future, different violation. Waivers in test files are
// exempt, mirroring the analyzers' own test-file exemption.
func (ws *waiverSet) reportStale(pass *analysis.Pass, what string) {
	var stale []*waiver
	for file, lines := range ws.byFile {
		if isTestFile(pass, file) {
			continue
		}
		for _, w := range lines {
			if !w.used {
				stale = append(stale, w)
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].pos.Pos() < stale[j].pos.Pos() })
	for _, w := range stale {
		pass.Reportf(w.pos.Pos(), "stale %s waiver: no %s on this line — delete the marker", ws.marker, what)
	}
}
